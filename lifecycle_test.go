package simpush

import (
	"context"
	"errors"
	"testing"
	"time"
)

func TestClientCloseFailsNewQueriesFast(t *testing.T) {
	g, err := SyntheticWebGraph(500, 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewClient(g, Options{Epsilon: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	v, err := c.View(context.Background()) // pinned before close
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}

	ctx := context.Background()
	if _, err := c.SingleSource(ctx, 1); !errors.Is(err, ErrClientClosed) {
		t.Fatalf("SingleSource after close: %v", err)
	}
	if _, err := c.TopK(ctx, 1, 5); !errors.Is(err, ErrClientClosed) {
		t.Fatalf("TopK after close: %v", err)
	}
	if _, err := c.Pair(ctx, 1, 2); !errors.Is(err, ErrClientClosed) {
		t.Fatalf("Pair after close: %v", err)
	}
	if _, err := c.BatchSingleSource(ctx, []int32{1, 2}, 2); !errors.Is(err, ErrClientClosed) {
		t.Fatalf("BatchSingleSource after close: %v", err)
	}
	if _, err := c.TopKAdaptive(ctx, 1, 5, 0, 0); !errors.Is(err, ErrClientClosed) {
		t.Fatalf("TopKAdaptive after close: %v", err)
	}
	// Queries through a view taken before the close fail the same way.
	if _, err := v.SingleSource(ctx, 1); !errors.Is(err, ErrClientClosed) {
		t.Fatalf("View.SingleSource after close: %v", err)
	}
	// Close is idempotent.
	if err := c.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	// Non-query accessors keep working.
	if c.Graph() == nil {
		t.Fatal("Graph() nil after close")
	}
	if got := c.Stats(); got.InFlight != 0 {
		t.Fatalf("InFlight after close = %d", got.InFlight)
	}
}

// TestClientCloseDrainsInFlight: Close must wait for a running query, not
// interrupt it.
func TestClientCloseDrainsInFlight(t *testing.T) {
	g, err := SyntheticWebGraph(3000, 8, 2)
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewClient(g, Options{Epsilon: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	type outcome struct {
		res *Result
		err error
	}
	started := make(chan struct{})
	queryDone := make(chan outcome, 1)
	go func() {
		close(started)
		res, err := c.SingleSource(context.Background(), 7)
		queryDone <- outcome{res, err}
	}()
	<-started
	// Wait until the query registers as in-flight (or finishes on a fast
	// machine — then Close trivially drains).
	deadline := time.Now().Add(5 * time.Second)
	for c.Stats().InFlight == 0 && c.Stats().Queries == 0 {
		if time.Now().After(deadline) {
			t.Fatal("query never started")
		}
		time.Sleep(100 * time.Microsecond)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	// Close returned, so the query must already be complete — and
	// successfully: a drain never cancels work it waited for.
	select {
	case out := <-queryDone:
		if out.err != nil {
			t.Fatalf("in-flight query failed during close: %v", out.err)
		}
		if out.res.Scores[7] != 1 {
			t.Fatal("in-flight query returned a corrupt result")
		}
	default:
		t.Fatal("Close returned before the in-flight query completed")
	}
}

func TestClientStatsCounters(t *testing.T) {
	g, err := SyntheticWebGraph(600, 5, 3)
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewClient(g, Options{Epsilon: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx := context.Background()

	if st := c.Stats(); st.Queries != 0 || st.Errors != 0 || st.InFlight != 0 {
		t.Fatalf("fresh client stats = %+v", st)
	}
	if _, err := c.SingleSource(ctx, 1); err != nil {
		t.Fatal(err)
	}
	if st := c.Stats(); st.Queries != 1 {
		t.Fatalf("after one query: %+v", st)
	}
	if _, err := c.BatchSingleSource(ctx, []int32{1, 2, 3}, 2); err != nil {
		t.Fatal(err)
	}
	if st := c.Stats(); st.Queries != 4 {
		t.Fatalf("batch items must count individually: %+v", st)
	}
	if _, err := c.SingleSource(ctx, 99999); err == nil {
		t.Fatal("out-of-range accepted")
	}
	if st := c.Stats(); st.Errors != 1 {
		t.Fatalf("failed query not counted: %+v", st)
	}
	if st := c.Stats(); st.InFlight != 0 {
		t.Fatalf("in-flight not back to zero: %+v", st)
	}
}
