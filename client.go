package simpush

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"github.com/simrank/simpush/internal/core"
	"github.com/simrank/simpush/internal/eval"
)

// Typed error taxonomy of the query API. Every validation failure returned
// by this package wraps one of these sentinels; classify with errors.Is
// rather than matching message text.
var (
	// ErrNodeOutOfRange reports a query or target node id outside [0, n).
	ErrNodeOutOfRange = core.ErrNodeOutOfRange
	// ErrInvalidOptions reports out-of-domain engine options or per-query
	// overrides (ε, δ or c outside (0,1), k < 0, bad parallelism, …).
	ErrInvalidOptions = core.ErrInvalidOptions
	// ErrClientClosed reports a query issued after Client.Close. Closed
	// clients fail fast instead of touching the engine pool, so a serving
	// layer can drain gracefully: stop admitting, let in-flight queries
	// finish, then Close.
	ErrClientClosed = errors.New("simpush: client closed")
)

// A QueryOption overrides one engine parameter for a single query. The
// derived quantities (ε_h, L*, walk counts) are recomputed from the merged
// options per query; the engine scratch is sized to the graph and is
// reused unchanged, so per-query options cost no allocation.
type QueryOption func(*core.QueryOpts)

// WithEpsilon overrides the absolute error bound ε for one query.
func WithEpsilon(eps float64) QueryOption {
	return func(q *core.QueryOpts) { q.Epsilon = eps }
}

// WithDelta overrides the failure probability δ for one query.
func WithDelta(delta float64) QueryOption {
	return func(q *core.QueryOpts) { q.Delta = delta }
}

// WithSeed reseeds the level-detection walk stream at the start of one
// query, making its result deterministic in (graph, options, seed) alone —
// independent of which pooled engine serves it or what ran before.
func WithSeed(seed uint64) QueryOption {
	return func(q *core.QueryOpts) { q.Seed = seed; q.HasSeed = true }
}

// WithMaxWalks overrides the cap on level-detection walk samples for one
// query (0 removes the cap). Capping voids the δ guarantee.
func WithMaxWalks(n int) QueryOption {
	return func(q *core.QueryOpts) { q.MaxWalks = n; q.HasMaxWalks = true }
}

// WithParallelism sets the intra-query worker count for one query: walk
// sampling, the γ loop, and Reverse-Push level sweeps fan out across k
// goroutines (0 or 1 = serial, the default). Results are deterministic in
// (seed, k) — independent of GOMAXPROCS — but different k values yield
// slightly different (equally valid within ε) estimates, so pin k along
// with the seed when reproducibility matters. Combine with the client's
// Options.Parallelism field to set an engine-wide default instead.
//
// Parallelism multiplies a query's CPU footprint; when queries already
// run concurrently (BatchSingleSource, a serving layer), keep
// concurrency × k within the core budget. BatchSingleSource's default
// worker count divides GOMAXPROCS by k automatically.
func WithParallelism(k int) QueryOption {
	return func(q *core.QueryOpts) { q.Parallelism = k; q.HasParallelism = true }
}

func buildQueryOpts(opts []QueryOption) core.QueryOpts {
	var qo core.QueryOpts
	for _, o := range opts {
		o(&qo)
	}
	return qo
}

// Client is the concurrency-safe entry point for SimRank queries: one
// Client per graph source serves any number of goroutines. It owns a
// sync.Pool of per-worker core engines, so concurrent queries never share
// scratch and sequential queries reuse it — there is no per-query engine
// construction.
//
// A Client is bound to a GraphSource, not to one frozen graph. At the
// start of every query it takes the source's current snapshot and rebinds
// the checked-out engine to it in place (reusing the engine's O(n)
// scratch), so a Client over a *DynamicGraph always answers on the newest
// committed edges with no caller-side snapshotting and no Client rebuild —
// the serving half of the paper's index-free claim. Over a static *Graph
// this reduces to the fixed-graph behavior. Multi-call workflows that need
// one consistent state across several queries pin it with View.
//
// All query methods take a context; cancellation and deadlines are
// honored inside the algorithm stages (between walk batches, Source-Push
// levels, γ computations and Reverse-Push sweeps), so a slow query is
// interrupted mid-flight and returns ctx.Err().
//
// Determinism: each pooled engine carries a decorrelated walk stream, and
// which engine serves a concurrent query depends on scheduling. For
// reproducible single queries pass WithSeed (seeded queries run in a
// bounded seed scope and never perturb other streams). A single-goroutine
// stream always runs on the client's pinned primary engine, so it is
// reproducible in (snapshot sequence, options, query order) exactly like
// a v1 Engine.
type Client struct {
	src GraphSource
	opt Options

	// cur is the highest-epoch snapshot successfully observed from the
	// source (advanced epoch-forward-only by snapshot(), never by
	// pinned-view queries, so it cannot regress to a stale pin or to a
	// racing older observation); pool.New constructs overflow engines
	// against it so their scratch is born at the right size (acquire
	// rebinds them anyway), and Graph() falls back to it when the source
	// cannot materialize.
	cur atomic.Pointer[observedSnap]

	// primary is the engine carrying the client's base seed. It is pinned
	// for the client's lifetime (a sync.Pool may drop idle entries at any
	// GC, which would silently swap in a differently-seeded engine), so a
	// single-goroutine query stream is reproducible exactly like a v1
	// Engine. primaryFree hands it out to at most one query at a time.
	primary     *core.SimPush
	primaryFree atomic.Pointer[core.SimPush]

	pool sync.Pool // overflow engines beyond the primary: *core.SimPush
	seq  atomic.Uint64

	// Lifecycle: closeMu orders the closed flag against in-flight
	// registration so Close never misses a racing query; inflight counts
	// running top-level query calls and lets Close drain them.
	closeMu  sync.RWMutex
	closed   bool
	inflight sync.WaitGroup

	stats clientCounters
}

// clientCounters is the always-on instrumentation behind Client.Stats.
// Counters are atomics: queries touch them on the hot path and /statsz
// readers must not contend with them.
type clientCounters struct {
	queries  atomic.Uint64 // engine query executions
	errors   atomic.Uint64 // top-level query calls that returned an error
	inFlight atomic.Int64  // top-level query calls currently running
}

// NewClient validates opt and returns a Client bound to src. Both *Graph
// (static) and *DynamicGraph (live, versioned) are graph sources, so
// existing NewClient(g, opt) calls keep working unchanged. Construction is
// index-free: it takes one snapshot, allocates one engine's O(n) scratch
// and nothing else.
func NewClient(src GraphSource, opt Options) (*Client, error) {
	c := &Client{src: src, opt: opt}
	g, _, err := c.snapshot()
	if err != nil {
		return nil, err
	}
	first, err := core.New(g, c.workerOptions(0))
	if err != nil {
		return nil, err
	}
	c.primary = first
	c.primaryFree.Store(first)
	c.pool.New = func() any {
		eng, err := core.New(c.cur.Load().g, c.workerOptions(c.seq.Add(1)))
		if err != nil {
			// Options were validated at NewClient, so this is effectively
			// unreachable — but if it ever fires, hand the real error to
			// acquire instead of a nil that would masquerade as something
			// else.
			return err
		}
		return eng
	}
	return c, nil
}

// workerOptions decorrelates the walk streams of pooled engines while
// keeping them deterministic in the client seed.
func (c *Client) workerOptions(worker uint64) Options {
	opt := c.opt
	opt.Seed += worker * 0x9e3779b97f4a7c15
	return opt
}

// observedSnap pairs a successfully observed snapshot with its epoch, so
// cur can be advanced forward-only under racing observations.
type observedSnap struct {
	g     *Graph
	epoch uint64
}

// snapshot observes the source's current committed state and remembers it
// as the client's freshest known graph.
func (c *Client) snapshot() (*Graph, uint64, error) {
	g, epoch, err := c.src.GraphSnapshot()
	if err != nil {
		return nil, 0, fmt.Errorf("simpush: graph snapshot: %w", err)
	}
	if g == nil {
		return nil, 0, fmt.Errorf("simpush: %w: graph source returned a nil snapshot", ErrInvalidOptions)
	}
	// Advance cur only forward: a descheduled older observation must not
	// overwrite a newer one another goroutine already recorded.
	next := &observedSnap{g: g, epoch: epoch}
	for {
		old := c.cur.Load()
		if old != nil && old.epoch >= epoch {
			break
		}
		if c.cur.CompareAndSwap(old, next) {
			break
		}
	}
	return g, epoch, nil
}

// acquireAt checks an engine out and rebinds it to the given snapshot —
// the pinned primary when it is free (keeping sequential streams on one
// deterministic engine), otherwise an overflow engine from the pool;
// release must be called when the query is done.
func (c *Client) acquireAt(g *Graph) (*core.SimPush, error) {
	if eng := c.primaryFree.Swap(nil); eng != nil {
		eng.Rebind(g)
		return eng, nil
	}
	switch v := c.pool.Get().(type) {
	case *core.SimPush:
		v.Rebind(g)
		return v, nil
	case error:
		return nil, fmt.Errorf("simpush: pooled engine construction: %w", v)
	default:
		return nil, fmt.Errorf("simpush: pooled engine construction returned %T", v)
	}
}

func (c *Client) release(eng *core.SimPush) {
	// Park the engine on the freshest observed snapshot so an idle engine
	// never keeps a superseded O(n+m) graph alive between queries (the
	// engine is still exclusively owned here; acquire rebinds again
	// anyway).
	eng.Rebind(c.cur.Load().g)
	if eng == c.primary {
		c.primaryFree.Store(eng)
		return
	}
	c.pool.Put(eng)
}

// Source returns the graph source the client serves.
func (c *Client) Source() GraphSource { return c.src }

// Graph returns the source's current snapshot. If the source cannot
// materialize one (e.g. a pending deletion of a nonexistent edge), the
// most recent successfully observed snapshot is returned instead; query
// methods surface such errors. For a static source this is always the
// graph the client was built on.
func (c *Client) Graph() *Graph {
	if g, _, err := c.snapshot(); err == nil {
		return g
	}
	return c.cur.Load().g
}

// Epoch returns the epoch of the source's current committed state (0 for
// a static source). Like any unpinned observation it may be stale by the
// time it returns; use View for an epoch that stays attached to a graph.
func (c *Client) Epoch() (uint64, error) {
	_, epoch, err := c.snapshot()
	return epoch, err
}

// Options returns the engine-level options the client was built with.
func (c *Client) Options() Options { return c.opt }

// SingleSource estimates s(u, v) for every v, with |s−s̃| ≤ ε holding for
// every v with probability at least 1−δ (Theorem 1 of the paper). The
// query runs on the source's newest committed snapshot.
func (c *Client) SingleSource(ctx context.Context, u int32, opts ...QueryOption) (*Result, error) {
	g, _, err := c.snapshot()
	if err != nil {
		return nil, err
	}
	return c.singleSourceOn(ctx, g, u, opts)
}

func (c *Client) singleSourceOn(ctx context.Context, g *Graph, u int32, opts []QueryOption) (res *Result, err error) {
	if err := c.begin(); err != nil {
		return nil, err
	}
	defer func() { c.end(err) }()
	eng, err := c.acquireAt(g)
	if err != nil {
		return nil, err
	}
	defer c.release(eng)
	c.stats.queries.Add(1)
	return eng.QueryCtx(ctx, u, buildQueryOpts(opts))
}

// TopK runs a single-source query and returns the k most similar nodes
// (excluding u itself) in descending score order, ties broken by node id.
// k is clamped to the candidate count; k <= 0 yields an empty result.
func (c *Client) TopK(ctx context.Context, u int32, k int, opts ...QueryOption) ([]Ranked, error) {
	res, err := c.SingleSource(ctx, u, opts...)
	if err != nil {
		return nil, err
	}
	ids := eval.TopK(res.Scores, k, u)
	return rankedFrom(res.Scores, ids, k), nil
}

// Pair estimates the single SimRank value s(u, v). It runs a full
// single-source query from u (SimPush has no cheaper primitive — the
// paper's problem is inherently one-to-all) and reads off v, so prefer
// SingleSource when several targets share a source node. Both endpoints
// are validated against the same snapshot the query runs on.
func (c *Client) Pair(ctx context.Context, u, v int32, opts ...QueryOption) (float64, error) {
	g, _, err := c.snapshot()
	if err != nil {
		return 0, err
	}
	return c.pairOn(ctx, g, u, v, opts)
}

func (c *Client) pairOn(ctx context.Context, g *Graph, u, v int32, opts []QueryOption) (float64, error) {
	if !g.HasNode(v) {
		return 0, fmt.Errorf("simpush: %w: target node %d not in [0, %d)", ErrNodeOutOfRange, v, g.N())
	}
	res, err := c.singleSourceOn(ctx, g, u, opts)
	if err != nil {
		return 0, err
	}
	return res.Scores[v], nil
}

// BatchSingleSource answers many single-source queries concurrently over
// the client's engine pool; results[i] corresponds to queries[i]. The
// whole batch is pinned to one snapshot — every query in it observes the
// same committed graph state even while the source keeps mutating.
// Workers check engines out of the shared pool, so back-to-back batches
// reuse the same scratch. A failed or cancelled query cancels the rest of
// the batch.
//
// parallelism <= 0 selects GOMAXPROCS workers.
func (c *Client) BatchSingleSource(ctx context.Context, queries []int32, parallelism int, opts ...QueryOption) ([]*Result, error) {
	g, _, err := c.snapshot()
	if err != nil {
		return nil, err
	}
	return c.batchSingleSourceOn(ctx, g, queries, parallelism, opts)
}

func (c *Client) batchSingleSourceOn(ctx context.Context, g *Graph, queries []int32, parallelism int, opts []QueryOption) (_ []*Result, err error) {
	if err := c.begin(); err != nil {
		return nil, err
	}
	defer func() { c.end(err) }()
	qo := buildQueryOpts(opts)
	if parallelism <= 0 {
		// Divide the core budget between batch workers and intra-query
		// workers: a batch of queries that each fan out k-wide must not
		// oversubscribe GOMAXPROCS² goroutines' worth of work.
		intra := c.opt.Parallelism
		if qo.HasParallelism {
			intra = qo.Parallelism
		}
		if intra < 1 {
			intra = 1
		}
		parallelism = runtime.GOMAXPROCS(0) / intra
	}
	if parallelism > len(queries) {
		parallelism = len(queries)
	}
	if parallelism < 1 {
		parallelism = 1
	}
	for _, u := range queries {
		if !g.HasNode(u) {
			return nil, fmt.Errorf("simpush: %w: query node %d not in [0, %d)", ErrNodeOutOfRange, u, g.N())
		}
	}
	bctx, cancel := context.WithCancel(ctx)
	defer cancel()

	results := make([]*Result, len(queries))
	errs := make([]error, parallelism)
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < parallelism; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			eng, err := c.acquireAt(g)
			if err != nil {
				errs[w] = err
				cancel()
				return
			}
			defer c.release(eng)
			for {
				i := next.Add(1) - 1
				if int(i) >= len(queries) {
					return
				}
				c.stats.queries.Add(1)
				res, err := eng.QueryCtx(bctx, queries[i], qo)
				if err != nil {
					errs[w] = err
					cancel()
					return
				}
				results[i] = res
			}
		}(w)
	}
	wg.Wait()
	var firstErr error
	for _, err := range errs {
		if err == nil {
			continue
		}
		if firstErr == nil {
			firstErr = err
		}
		// Workers that lost the race see the derived context cancelled;
		// report the root cause instead.
		if !errors.Is(err, context.Canceled) {
			firstErr = err
			break
		}
	}
	if firstErr != nil {
		// Prefer the caller's own cancellation over the derived one.
		if ctxErr := ctx.Err(); ctxErr != nil {
			return nil, ctxErr
		}
		return nil, firstErr
	}
	return results, nil
}
