package simpush

import (
	"testing"
)

func TestBatchSingleSource(t *testing.T) {
	g, err := SyntheticWebGraph(5000, 8, 11)
	if err != nil {
		t.Fatal(err)
	}
	queries := []int32{0, 17, 512, 4999, 17}
	results, err := BatchSingleSource(g, queries, Options{Epsilon: 0.05, Seed: 3}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(queries) {
		t.Fatalf("results = %d", len(results))
	}
	for i, res := range results {
		if res == nil {
			t.Fatalf("missing result %d", i)
		}
		if res.Scores[queries[i]] != 1 {
			t.Fatalf("query %d: self score %v", i, res.Scores[queries[i]])
		}
	}
}

func TestBatchValidatesNodes(t *testing.T) {
	g, err := SyntheticWebGraph(1000, 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := BatchSingleSource(g, []int32{5, 99999}, Options{}, 0); err == nil {
		t.Fatal("out-of-range query accepted")
	}
}

func TestBatchEmptyAndDefaults(t *testing.T) {
	g, err := SyntheticWebGraph(1000, 5, 2)
	if err != nil {
		t.Fatal(err)
	}
	res, err := BatchSingleSource(g, nil, Options{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 0 {
		t.Fatal("nonempty result for empty batch")
	}
	// parallelism larger than batch clamps
	res, err = BatchSingleSource(g, []int32{1}, Options{Epsilon: 0.1}, 64)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 {
		t.Fatal("single query batch")
	}
}

func TestBatchMatchesSingleAccuracy(t *testing.T) {
	g, err := SyntheticWebGraph(1500, 6, 5)
	if err != nil {
		t.Fatal(err)
	}
	exactRow, err := ExactSingleSource(g, 7, 0.6)
	if err != nil {
		t.Fatal(err)
	}
	results, err := BatchSingleSource(g, []int32{7}, Options{Epsilon: 0.02, Seed: 9}, 2)
	if err != nil {
		t.Fatal(err)
	}
	for v := int32(0); v < g.N(); v++ {
		if v == 7 {
			continue
		}
		if d := exactRow[v] - results[0].Scores[v]; d > 0.02 || d < -1e-6 {
			t.Fatalf("batch result out of bound at %d: %v", v, d)
		}
	}
}

func TestDynamicGraphFlow(t *testing.T) {
	d := NewDynamicGraph(0, 16)
	if err := d.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := d.AddEdge(0, 2); err != nil {
		t.Fatal(err)
	}
	g, err := d.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	eng, err := New(g, Options{Epsilon: 0.01, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.SingleSource(1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Scores[2] < 0.55 || res.Scores[2] > 0.61 {
		t.Fatalf("s(1,2) = %v, want ~0.6", res.Scores[2])
	}
	// evolve: node 2 loses its link from 0, gains one from 3
	d.RemoveEdge(0, 2)
	if err := d.AddEdge(3, 2); err != nil {
		t.Fatal(err)
	}
	g2, err := d.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	eng2, err := New(g2, Options{Epsilon: 0.01, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	res2, err := eng2.SingleSource(1)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Scores[2] != 0 {
		t.Fatalf("after update s(1,2) = %v, want 0", res2.Scores[2])
	}
}

func TestDynamicFromGraph(t *testing.T) {
	g, err := SyntheticWebGraph(1000, 5, 3)
	if err != nil {
		t.Fatal(err)
	}
	d := DynamicFromGraph(g)
	snap, err := d.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if snap.M() != g.M() || snap.N() != g.N() {
		t.Fatal("seeded dynamic graph differs")
	}
}

func TestBatchInvalidOptions(t *testing.T) {
	g, err := SyntheticWebGraph(1000, 5, 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := BatchSingleSource(g, []int32{1, 2}, Options{Epsilon: 5}, 2); err == nil {
		t.Fatal("invalid epsilon accepted")
	}
}

// TestBatchReusesCachedClient verifies the deprecated wrapper no longer
// constructs (and abandons) an engine pool per call: repeated batches on
// the same (graph, options) share one package-cached Client.
func TestBatchReusesCachedClient(t *testing.T) {
	g, err := SyntheticWebGraph(800, 5, 4)
	if err != nil {
		t.Fatal(err)
	}
	opt := Options{Epsilon: 0.1, Seed: 21}
	if _, err := BatchSingleSource(g, []int32{1, 2}, opt, 2); err != nil {
		t.Fatal(err)
	}
	batchMu.Lock()
	first := batchClients[batchKey{g: g, opt: opt}]
	batchMu.Unlock()
	if first == nil {
		t.Fatal("no client cached after first batch")
	}
	if _, err := BatchSingleSource(g, []int32{3}, opt, 1); err != nil {
		t.Fatal(err)
	}
	batchMu.Lock()
	second := batchClients[batchKey{g: g, opt: opt}]
	batchMu.Unlock()
	if second != first {
		t.Fatal("second batch did not reuse the cached client")
	}
	// Different options are a different pool.
	if _, err := BatchSingleSource(g, []int32{1}, Options{Epsilon: 0.2, Seed: 21}, 1); err != nil {
		t.Fatal(err)
	}
	batchMu.Lock()
	entries := len(batchClients)
	batchMu.Unlock()
	if entries < 2 {
		t.Fatalf("distinct options share a client: %d entries", entries)
	}
}

// TestBatchClientCacheBounded fills the cache beyond its bound and checks
// eviction keeps it at the cap.
func TestBatchClientCacheBounded(t *testing.T) {
	g, err := SyntheticWebGraph(500, 4, 8)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2*maxCachedBatchClients; i++ {
		opt := Options{Epsilon: 0.1 + float64(i)*0.01, Seed: 5}
		if _, err := BatchSingleSource(g, []int32{1}, opt, 1); err != nil {
			t.Fatal(err)
		}
	}
	batchMu.Lock()
	entries := len(batchClients)
	order := len(batchOrder)
	batchMu.Unlock()
	if entries > maxCachedBatchClients || order != entries {
		t.Fatalf("cache holds %d clients (order %d), bound %d", entries, order, maxCachedBatchClients)
	}
}
