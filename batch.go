package simpush

import (
	"context"
	"sync"
)

// The deprecated top-level BatchSingleSource used to construct — and
// abandon — a full engine pool on every call. Batch callers loop, so the
// package keeps a small bound of Clients keyed by (graph, options):
// back-to-back batches on the same graph reuse one pool and its scratch.
type batchKey struct {
	g   *Graph
	opt Options
}

const maxCachedBatchClients = 4

var (
	batchMu      sync.Mutex
	batchClients = map[batchKey]*Client{}
	batchOrder   []batchKey // LRU order, oldest first
)

// cachedBatchClient returns the package-cached Client for (g, opt),
// constructing and memoizing it on first use. Construction happens
// outside batchMu — it allocates an engine's O(n) scratch, and holding
// the global lock across it would serialize unrelated callers (even pure
// cache hits on other graphs); a lost construction race just discards
// the extra client. Eviction drops the reference without Close: an
// evicted client may still be serving an earlier caller's batch, and
// dropping it lets that batch finish while the garbage collector
// reclaims the pool afterwards.
func cachedBatchClient(g *Graph, opt Options) (*Client, error) {
	key := batchKey{g: g, opt: opt}
	if c := lookupBatchClient(key); c != nil {
		return c, nil
	}
	c, err := NewClient(g, opt)
	if err != nil {
		return nil, err
	}
	batchMu.Lock()
	defer batchMu.Unlock()
	if winner, ok := batchClients[key]; ok {
		return winner, nil // raced: keep the first, drop ours
	}
	if len(batchOrder) >= maxCachedBatchClients {
		oldest := batchOrder[0]
		batchOrder = batchOrder[1:]
		delete(batchClients, oldest)
	}
	batchClients[key] = c
	batchOrder = append(batchOrder, key)
	return c, nil
}

// lookupBatchClient returns the cached client for key, refreshing its
// LRU position, or nil.
func lookupBatchClient(key batchKey) *Client {
	batchMu.Lock()
	defer batchMu.Unlock()
	c, ok := batchClients[key]
	if !ok {
		return nil
	}
	for i, k := range batchOrder {
		if k == key {
			batchOrder = append(batchOrder[:i], batchOrder[i+1:]...)
			break
		}
	}
	batchOrder = append(batchOrder, key)
	return c
}

// BatchSingleSource answers many single-source queries concurrently — the
// batch-processing mode the paper lists as future work. It runs over a
// package-cached Client per (graph, options), so repeated calls reuse one
// engine pool instead of rebuilding O(n) scratch every time; results[i]
// corresponds to queries[i].
//
// Because the Client is memoized at package level, the graph and its
// engine pool stay reachable after the call returns (up to
// maxCachedBatchClients combinations, oldest evicted first). One-shot
// callers on very large graphs that need the memory back promptly should
// use an explicit Client and Close it instead.
//
// parallelism <= 0 selects GOMAXPROCS workers.
//
// Deprecated: use Client.BatchSingleSource, which makes the pooling
// explicit and honors a context.
func BatchSingleSource(g *Graph, queries []int32, opt Options, parallelism int) ([]*Result, error) {
	c, err := cachedBatchClient(g, opt)
	if err != nil {
		return nil, err
	}
	return c.BatchSingleSource(context.Background(), queries, parallelism)
}
