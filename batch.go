package simpush

import (
	"fmt"
	"runtime"
	"sync"

	"github.com/simrank/simpush/internal/core"
	"github.com/simrank/simpush/internal/graph"
)

// BatchSingleSource answers many single-source queries concurrently — the
// batch-processing mode the paper lists as future work. Each worker owns a
// private SimPush engine (queries are index-free, so engines are cheap),
// and results[i] corresponds to queries[i].
//
// parallelism <= 0 selects GOMAXPROCS workers.
func BatchSingleSource(g *Graph, queries []int32, opt Options, parallelism int) ([]*Result, error) {
	if parallelism <= 0 {
		parallelism = runtime.GOMAXPROCS(0)
	}
	if parallelism > len(queries) {
		parallelism = len(queries)
	}
	if parallelism < 1 {
		parallelism = 1
	}
	for _, u := range queries {
		if !g.HasNode(u) {
			return nil, fmt.Errorf("simpush: query node %d out of range [0, %d)", u, g.N())
		}
	}
	results := make([]*Result, len(queries))
	errs := make([]error, parallelism)
	var next int64
	var mu sync.Mutex
	var wg sync.WaitGroup
	for w := 0; w < parallelism; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			wopt := opt
			// Decorrelate worker walk streams while keeping the batch
			// deterministic for a fixed (opt.Seed, parallelism).
			wopt.Seed = opt.Seed + uint64(w)*0x9e3779b97f4a7c15 + 1
			eng, err := core.New(g, wopt)
			if err != nil {
				errs[w] = err
				return
			}
			for {
				mu.Lock()
				i := next
				next++
				mu.Unlock()
				if int(i) >= len(queries) {
					return
				}
				res, err := eng.Query(queries[i])
				if err != nil {
					errs[w] = err
					return
				}
				results[i] = res
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return results, nil
}

// DynamicGraph is a mutable graph for evolving workloads: edges are added
// and removed over time and Snapshot returns an immutable graph for
// querying. Because SimPush is index-free, a fresh engine on the snapshot
// reflects every update with no maintenance beyond the CSR rebuild —
// the realtime scenario of the paper's introduction.
type DynamicGraph = graph.Dynamic

// NewDynamicGraph returns an empty dynamic graph with capacity hints.
func NewDynamicGraph(nHint int32, mHint int) *DynamicGraph {
	return graph.NewDynamic(nHint, mHint)
}

// DynamicFromGraph seeds a dynamic graph from an immutable one.
func DynamicFromGraph(g *Graph) *DynamicGraph {
	return graph.FromGraph(g)
}
