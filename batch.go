package simpush

import (
	"context"
)

// BatchSingleSource answers many single-source queries concurrently — the
// batch-processing mode the paper lists as future work. It is a thin
// wrapper that builds a temporary Client and runs the batch over its
// engine pool; results[i] corresponds to queries[i].
//
// parallelism <= 0 selects GOMAXPROCS workers.
//
// Deprecated: use Client.BatchSingleSource, which reuses the pool across
// batches and honors a context.
func BatchSingleSource(g *Graph, queries []int32, opt Options, parallelism int) ([]*Result, error) {
	c, err := NewClient(g, opt)
	if err != nil {
		return nil, err
	}
	return c.BatchSingleSource(context.Background(), queries, parallelism)
}
