package simpush

import (
	"context"

	"github.com/simrank/simpush/internal/graph"
)

// BatchSingleSource answers many single-source queries concurrently — the
// batch-processing mode the paper lists as future work. It is a thin
// wrapper that builds a temporary Client and runs the batch over its
// engine pool; results[i] corresponds to queries[i].
//
// parallelism <= 0 selects GOMAXPROCS workers.
//
// Deprecated: use Client.BatchSingleSource, which reuses the pool across
// batches and honors a context.
func BatchSingleSource(g *Graph, queries []int32, opt Options, parallelism int) ([]*Result, error) {
	c, err := NewClient(g, opt)
	if err != nil {
		return nil, err
	}
	return c.BatchSingleSource(context.Background(), queries, parallelism)
}

// DynamicGraph is a mutable graph for evolving workloads: edges are added
// and removed over time and Snapshot returns an immutable graph for
// querying. Because SimPush is index-free, a fresh client on the snapshot
// reflects every update with no maintenance beyond the CSR rebuild —
// the realtime scenario of the paper's introduction.
type DynamicGraph = graph.Dynamic

// NewDynamicGraph returns an empty dynamic graph with capacity hints.
func NewDynamicGraph(nHint int32, mHint int) *DynamicGraph {
	return graph.NewDynamic(nHint, mHint)
}

// DynamicFromGraph seeds a dynamic graph from an immutable one.
func DynamicFromGraph(g *Graph) *DynamicGraph {
	return graph.FromGraph(g)
}
