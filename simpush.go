// Package simpush is a realtime, index-free single-source SimRank library
// for web-scale graphs — a Go implementation of
//
//	Jieming Shi, Tianyuan Jin, Renchi Yang, Xiaokui Xiao, Yin Yang:
//	"Realtime Index-Free Single Source SimRank Processing on Web-Scale
//	Graphs", PVLDB 13, 2020 (arXiv:2002.08082).
//
// Given a query node u, a single-source SimRank query estimates the
// SimRank similarity s(u, v) for every node v with an absolute error
// guarantee ε that holds with probability 1−δ — with no precomputation,
// so graphs can change between queries at zero maintenance cost.
//
// The entry point is Client, which is safe for concurrent use by any
// number of goroutines (it pools per-worker engines internally) and whose
// query methods take a context.Context and per-query options:
//
//	g, _ := simpush.LoadEdgeList("graph.txt", false)
//	c, _ := simpush.NewClient(g, simpush.Options{Epsilon: 0.02})
//	res, _ := c.SingleSource(ctx, 42)
//	top, _ := c.TopK(ctx, 42, 10, simpush.WithEpsilon(0.005))
//
// A Client is bound to a GraphSource rather than one frozen graph. A
// static *Graph is a source, and so is the mutable, versioned
// *DynamicGraph — hand one to NewClient and every query automatically
// observes the newest committed edges, with engines rebound in place (no
// snapshot-and-rebuild orchestration). Client.View pins one epoch when a
// multi-call workflow needs a consistent state:
//
//	d := simpush.NewDynamicGraph(0, 0)
//	c, _ := simpush.NewClient(d, simpush.Options{})
//	d.AddEdge(0, 1)
//	res, _ := c.SingleSource(ctx, 0)  // sees the new edge
//	v, _ := c.View(ctx)               // pinned epoch for consistent reads
//
// Deadlines interrupt queries mid-stage (ctx.Err() is returned), and
// validation failures wrap the sentinel errors ErrNodeOutOfRange and
// ErrInvalidOptions for errors.Is classification. The v1 Engine API is
// still available as a deprecated wrapper; see README.md for the
// migration table.
//
// Besides SimPush itself, the library ships faithful implementations of
// the six baselines the paper evaluates against (ProbeSim, PRSim, SLING,
// READS, TSF, TopSim) behind a common Method interface, exact and
// Monte-Carlo oracles, synthetic dataset generators, and the complete
// benchmark harness reproducing every table and figure of the paper
// (see cmd/simbench and EXPERIMENTS.md).
package simpush

import (
	"context"
	"fmt"
	"sort"

	"github.com/simrank/simpush/internal/core"
	"github.com/simrank/simpush/internal/engine"
	"github.com/simrank/simpush/internal/eval"
	"github.com/simrank/simpush/internal/exact"
	"github.com/simrank/simpush/internal/gen"
	"github.com/simrank/simpush/internal/graph"
	"github.com/simrank/simpush/internal/mc"
)

// Graph is a directed graph in dual-CSR form (out- and in-adjacency).
// Build one with LoadEdgeList, FromEdges or the synthetic generators.
type Graph = graph.Graph

// Options configures a SimPush client: decay factor C (default 0.6),
// error bound Epsilon (default 0.02), failure probability Delta
// (default 1e-4), the level-detection mode, and Parallelism (intra-query
// workers; 0 or 1 = serial). Per-query deviations are expressed with
// QueryOption values instead of new clients.
type Options = core.Options

// Result is a single-source answer: Scores[v] ≈ s(u, v), plus the source
// graph diagnostics (max level L, attention nodes, stage timings).
type Result = core.Result

// AttentionInfo describes one attention node of a query.
type AttentionInfo = core.AttentionInfo

// StageDurations breaks a query into the four timed engine stages
// (walk sampling, source-push, γ, reverse-push).
type StageDurations = core.StageDurations

// Clock supplies the stage timestamps behind Result.Durations; set
// Options.Clock to inject one (nil reads the process clock). It is an
// interface, not a func type, so Options stays comparable.
type Clock = core.Clock

// Method is the uniform interface over SimPush and the six baselines:
// Build (preprocessing, if any) then Query. Use NewMethod to construct
// baselines for comparison studies.
type Method = engine.Engine

// Engine is the deprecated v1 single-goroutine query API, kept as a thin
// wrapper so existing code compiles. Every method delegates to a Client
// with context.Background().
//
// Deprecated: use Client, whose methods are concurrency-safe, take a
// context and accept per-query options.
type Engine struct {
	c *Client
}

// New creates a v1 engine for g.
//
// Deprecated: use NewClient.
func New(g *Graph, opt Options) (*Engine, error) {
	c, err := NewClient(g, opt)
	if err != nil {
		return nil, err
	}
	return &Engine{c: c}, nil
}

// Client returns the v2 client backing this engine.
func (e *Engine) Client() *Client { return e.c }

// SingleSource estimates s(u, v) for every v, with |s−s̃| ≤ ε holding for
// every v with probability at least 1−δ (Theorem 1 of the paper).
//
// Deprecated: use Client.SingleSource.
func (e *Engine) SingleSource(u int32) (*Result, error) {
	return e.c.SingleSource(context.Background(), u)
}

// TopK runs a single-source query and returns the k most similar nodes
// (excluding u itself) in descending score order.
//
// Deprecated: use Client.TopK.
func (e *Engine) TopK(u int32, k int) ([]Ranked, error) {
	return e.c.TopK(context.Background(), u, k)
}

// Pair estimates the single SimRank value s(u, v).
//
// Deprecated: use Client.Pair.
func (e *Engine) Pair(u, v int32) (float64, error) {
	return e.c.Pair(context.Background(), u, v)
}

// Graph returns the engine's graph.
func (e *Engine) Graph() *Graph { return e.c.Graph() }

// Ranked is one entry of a top-k result.
type Ranked struct {
	Node  int32
	Score float64
}

// LoadEdgeList reads a whitespace-separated "from to" edge list file
// ('#'/'%' comment lines are skipped). If undirected is true every edge is
// symmetrized, following the paper's convention.
func LoadEdgeList(path string, undirected bool) (*Graph, error) {
	return graph.LoadEdgeListFile(path, graph.BuildOptions{Undirected: undirected})
}

// FromEdges builds a graph from parallel from/to slices.
func FromEdges(from, to []int32, undirected bool) (*Graph, error) {
	return graph.FromEdgeList(from, to, graph.BuildOptions{Undirected: undirected})
}

// TopK returns the k highest-scoring nodes of a score vector, excluding
// `exclude` (pass a negative value to exclude nothing). k is clamped to
// the candidate count; k <= 0 yields an empty result.
func TopK(scores []float64, k int, exclude int32) []Ranked {
	ids := eval.TopK(scores, k, exclude)
	return rankedFrom(scores, ids, k)
}

// Baselines lists the six baseline method names accepted by NewMethod,
// in the paper's legend order, plus "SimPush" itself.
func Baselines() []string {
	return append([]string(nil), engine.MethodNames...)
}

// NewMethod constructs any of the seven methods by name at one of the
// paper's five parameter settings (rank 0 = coarsest/fastest … rank 4 =
// finest/slowest). Index-based methods must be Built before querying.
func NewMethod(name string, g *Graph, rank int, seed uint64) (Method, error) {
	if rank < 0 || rank > 4 {
		return nil, fmt.Errorf("simpush: %w: setting rank %d out of range [0,4]", ErrInvalidOptions, rank)
	}
	cfgs, err := engine.Sweep(name, engine.Caps{})
	if err != nil {
		return nil, err
	}
	return cfgs[rank].Make(g, seed)
}

// ExactSingleSource computes the exact SimRank row of u with the power
// method. Θ(n²) memory: intended for validation on graphs up to a few
// thousand nodes.
func ExactSingleSource(g *Graph, u int32, c float64) ([]float64, error) {
	return exact.SingleSource(g, u, exact.Options{C: c})
}

// MonteCarloPair estimates s(u, v) by sampling paired √c-walks — the
// unbiased ground-truth estimator of the paper's evaluation protocol.
func MonteCarloPair(g *Graph, u, v int32, c float64, samples int, seed uint64) float64 {
	return mc.New(g, c).PairParallel(u, v, samples, seed)
}

// SyntheticWebGraph generates a power-law web graph (Kumar et al. copying
// model) with roughly avgDeg out-links per page.
func SyntheticWebGraph(n int32, avgDeg int, seed uint64) (*Graph, error) {
	return gen.CopyingModel(n, avgDeg, 0.3, seed)
}

// SyntheticSocialGraph generates a directed follower network with heavy
// in-degree tails (preferential attachment).
func SyntheticSocialGraph(n int32, avgDeg int, seed uint64) (*Graph, error) {
	return gen.PreferentialAttachment(n, avgDeg, 0.85, seed)
}

// Dataset generates one of the nine named dataset stand-ins used by the
// benchmark suite (see DESIGN.md §6); scale 1.0 is the default size.
func Dataset(name string, scale float64) (*Graph, error) {
	ds, err := gen.ByName(name)
	if err != nil {
		return nil, err
	}
	return ds.Generate(scale)
}

// DatasetNames lists the nine dataset stand-ins in Table 4 order.
func DatasetNames() []string {
	names := make([]string, len(gen.Roster))
	for i, d := range gen.Roster {
		names[i] = d.Name
	}
	return names
}

// GraphStats summarizes structural properties of a graph: size, degree
// distribution, directedness, dangling nodes, and a power-law tail fit.
type GraphStats = graph.Stats

// Stats computes GraphStats for g.
func Stats(g *Graph) GraphStats {
	return graph.ComputeStats(g)
}

// LargestComponent returns the node count of g's largest weakly connected
// component. Query nodes outside it have near-empty similarity rows.
func LargestComponent(g *Graph) int64 {
	return graph.LargestComponent(g)
}

// SortRankedStable orders a Ranked slice by descending score with node id
// tie-breaks; convenience for presenting merged result sets.
func SortRankedStable(rs []Ranked) {
	sort.SliceStable(rs, func(i, j int) bool {
		if rs[i].Score != rs[j].Score {
			return rs[i].Score > rs[j].Score
		}
		return rs[i].Node < rs[j].Node
	})
}
