package simpush

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"testing"
)

// A single Client over a DynamicGraph must observe post-construction edge
// insertions and deletions in subsequent queries, with no caller-side
// snapshot and no Client rebuild — the acceptance behavior of the live
// serving API.
func TestClientObservesLiveMutations(t *testing.T) {
	ctx := context.Background()
	d := NewDynamicGraph(0, 8)
	if err := d.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	c, err := NewClient(d, Options{Epsilon: 0.005, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.SingleSource(ctx, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Scores) != 2 {
		t.Fatalf("initial n = %d, want 2", len(res.Scores))
	}

	// Insert a sibling: 1 and 2 now share parent 0, so s(1,2) = c = 0.6.
	if err := d.AddEdge(0, 2); err != nil {
		t.Fatal(err)
	}
	s, err := c.Pair(ctx, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s-0.6) > 0.01 {
		t.Fatalf("s(1,2) after live insert = %v, want ~0.6", s)
	}

	// Delete the edge again: the sibling relation disappears on the very
	// next query. Node 2 still exists (ids are never reclaimed), so the
	// score is 0 rather than out-of-range.
	d.RemoveEdge(0, 2)
	s, err = c.Pair(ctx, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if s != 0 {
		t.Fatalf("s(1,2) after live delete = %v, want 0", s)
	}

	// Growth is visible to every query flavor without a new client.
	if err := d.AddEdge(2, 3); err != nil {
		t.Fatal(err)
	}
	batch, err := c.BatchSingleSource(ctx, []int32{0, 3}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(batch[0].Scores) != 4 || len(batch[1].Scores) != 4 {
		t.Fatalf("batch did not observe growth: n = %d", len(batch[0].Scores))
	}
	if _, err := c.TopKAdaptive(ctx, 3, 2, 0, 0); err != nil {
		t.Fatal(err)
	}
}

// A bad RemoveEdge fails exactly one query and is then discarded: the
// long-lived client recovers instead of being poisoned forever.
func TestClientRecoversFromBadRemoval(t *testing.T) {
	ctx := context.Background()
	d := NewDynamicGraph(0, 4)
	if err := d.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	c, err := NewClient(d, Options{Epsilon: 0.01, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	d.RemoveEdge(5, 6) // no such edge
	if _, err := c.SingleSource(ctx, 0); err == nil {
		t.Fatal("bad removal not reported")
	}
	res, err := c.SingleSource(ctx, 0)
	if err != nil {
		t.Fatalf("client did not recover: %v", err)
	}
	if len(res.Scores) != 2 {
		t.Fatalf("recovered n = %d, want 2", len(res.Scores))
	}
	// The recovery snapshot is a real commit: Graph() serves it too.
	if c.Graph().M() != 1 {
		t.Fatalf("recovered m = %d, want 1", c.Graph().M())
	}
}

// A View must pin one epoch: queries through it keep answering on the
// snapshot taken at View time while the client chases newer commits, and
// Epoch reports the pinned stamp.
func TestViewPinsEpoch(t *testing.T) {
	ctx := context.Background()
	d := NewDynamicGraph(0, 8)
	if err := d.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	c, err := NewClient(d, Options{Epsilon: 0.01, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	view, err := c.View(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if view.Epoch() != d.Epoch() {
		t.Fatalf("view epoch %d != source epoch %d", view.Epoch(), d.Epoch())
	}
	pinned := view.Epoch()

	// Mutate past the view: the client sees n=5, the view still n=2.
	for _, e := range [][2]int32{{0, 2}, {2, 3}, {3, 4}} {
		if err := d.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	fresh, err := c.SingleSource(ctx, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(fresh.Scores) != 5 {
		t.Fatalf("client stuck at old snapshot: n = %d", len(fresh.Scores))
	}
	old, err := view.SingleSource(ctx, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(old.Scores) != 2 {
		t.Fatalf("view leaked a newer epoch: n = %d", len(old.Scores))
	}
	if view.Epoch() != pinned {
		t.Fatalf("view epoch drifted: %d -> %d", pinned, view.Epoch())
	}
	// Pair/TopK/Batch through the view stay on the pinned snapshot too:
	// node 4 exists for the client but is out of range for the view.
	if _, err := view.Pair(ctx, 1, 4); !errors.Is(err, ErrNodeOutOfRange) {
		t.Fatalf("view Pair(1,4) err = %v, want ErrNodeOutOfRange", err)
	}
	if _, err := view.BatchSingleSource(ctx, []int32{4}, 1); !errors.Is(err, ErrNodeOutOfRange) {
		t.Fatalf("view Batch err = %v, want ErrNodeOutOfRange", err)
	}
	if _, err := c.Pair(ctx, 1, 4); err != nil {
		t.Fatalf("client Pair(1,4): %v", err)
	}

	// A new view advances to the newer committed epoch.
	view2, err := c.View(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if view2.Epoch() <= pinned {
		t.Fatalf("new view epoch %d not past pinned %d", view2.Epoch(), pinned)
	}
	if view2.Graph().N() != 5 {
		t.Fatalf("new view n = %d", view2.Graph().N())
	}

	// Client-level epoch observation matches the source.
	if e, err := c.Epoch(); err != nil || e != d.Epoch() {
		t.Fatalf("Client.Epoch = (%d, %v), source %d", e, err, d.Epoch())
	}

	// A pre-cancelled context stops View before it materializes anything.
	cctx, cancel := context.WithCancel(ctx)
	cancel()
	if _, err := c.View(cctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled View err = %v", err)
	}
}

// Static sources serve epoch 0 and behave exactly like the fixed-graph
// client: View is free and pins the same graph.
func TestViewOnStaticSource(t *testing.T) {
	ctx := context.Background()
	g, err := SyntheticWebGraph(500, 6, 3)
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewClient(g, Options{Epsilon: 0.05, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if c.Graph() != g {
		t.Fatal("static client graph accessor")
	}
	if c.Source() != GraphSource(g) {
		t.Fatal("static client source accessor")
	}
	view, err := c.View(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if view.Epoch() != 0 || view.Graph() != g || view.Client() != c {
		t.Fatalf("static view = {epoch %d, graph %v}", view.Epoch(), view.Graph())
	}
	res, err := view.SingleSource(ctx, 42)
	if err != nil || res.Scores[42] != 1 {
		t.Fatalf("static view query: %v", err)
	}
	if _, err := view.TopK(ctx, 42, 5); err != nil {
		t.Fatal(err)
	}
	if _, err := view.TopKAdaptive(ctx, 42, 5, 0.08, 0.02); err != nil {
		t.Fatal(err)
	}
}

// erroringSource fails GraphSnapshot after a configurable number of
// successes, exercising the snapshot error path end to end.
type erroringSource struct {
	g    *Graph
	left atomic.Int64
}

var errSourceDown = errors.New("source down")

func (s *erroringSource) GraphSnapshot() (*Graph, uint64, error) {
	if s.left.Add(-1) < 0 {
		return nil, 0, errSourceDown
	}
	return s.g, 1, nil
}

// Snapshot failures must surface the source's real error from every query
// method — not a misleading options error.
func TestSnapshotErrorPropagation(t *testing.T) {
	ctx := context.Background()
	g, err := FromEdges([]int32{0, 0}, []int32{1, 2}, false)
	if err != nil {
		t.Fatal(err)
	}
	src := &erroringSource{g: g}
	src.left.Store(2) // NewClient takes one snapshot, first query one more
	c, err := NewClient(src, Options{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.SingleSource(ctx, 0); err != nil {
		t.Fatalf("first query: %v", err)
	}
	for name, call := range map[string]func() error{
		"SingleSource": func() error { _, err := c.SingleSource(ctx, 0); return err },
		"Pair":         func() error { _, err := c.Pair(ctx, 0, 1); return err },
		"Batch":        func() error { _, err := c.BatchSingleSource(ctx, []int32{0}, 1); return err },
		"TopKAdaptive": func() error { _, err := c.TopKAdaptive(ctx, 0, 1, 0, 0); return err },
		"View":         func() error { _, err := c.View(ctx); return err },
		"Epoch":        func() error { _, err := c.Epoch(); return err },
	} {
		if err := call(); !errors.Is(err, errSourceDown) {
			t.Fatalf("%s err = %v, want errSourceDown", name, err)
		}
		if err := call(); errors.Is(err, ErrInvalidOptions) {
			t.Fatalf("%s masked the source error as ErrInvalidOptions", name)
		}
	}
	// Graph() degrades to the last good snapshot instead of nil.
	if c.Graph() != g {
		t.Fatal("Graph() lost the last good snapshot")
	}
	// NewClient itself reports a source that is down from the start.
	if _, err := NewClient(src, Options{}); !errors.Is(err, errSourceDown) {
		t.Fatalf("NewClient err = %v", err)
	}
}

// Concurrent mutation and querying on one Client must be race-free (run
// under -race) and every answer must be internally consistent: a result's
// score vector matches the node count of one committed snapshot, never a
// torn state, and a pinned View never observes a snapshot newer (or other)
// than the one it pinned.
func TestConcurrentMutationAndQuery(t *testing.T) {
	ctx := context.Background()
	const baseN = 400
	d := NewDynamicGraph(baseN, 4*baseN)
	for i := int32(0); i < baseN; i++ {
		if err := d.AddEdge(i, (i+1)%baseN); err != nil {
			t.Fatal(err)
		}
		if err := d.AddEdge(i, (i*7+3)%baseN); err != nil {
			t.Fatal(err)
		}
	}
	c, err := NewClient(d, Options{Epsilon: 0.1, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	view, err := c.View(ctx)
	if err != nil {
		t.Fatal(err)
	}
	pinnedN, pinnedEpoch := view.Graph().N(), view.Epoch()

	const (
		mutators  = 3
		queriers  = 3
		rounds    = 40
		perRound  = 5
		batchSize = 4
	)
	var wg sync.WaitGroup
	errs := make(chan error, mutators+queriers+1)

	// Mutators: interleave inserts and deletes. Deletes only target edges
	// this goroutine added earlier, so program order on the shared buffer
	// guarantees they exist at every snapshot.
	for m := 0; m < mutators; m++ {
		wg.Add(1)
		go func(m int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				f := int32(baseN + m*rounds + r) // grow the id range too
				tgt := int32((m*131 + r*17) % baseN)
				if err := d.AddEdge(f, tgt); err != nil {
					errs <- err
					return
				}
				if err := d.AddEdge(tgt, f); err != nil {
					errs <- err
					return
				}
				if r%3 == 0 {
					d.RemoveEdge(tgt, f)
				}
			}
		}(m)
	}

	// Queriers: single-source and batches while the graph moves.
	for q := 0; q < queriers; q++ {
		wg.Add(1)
		go func(q int) {
			defer wg.Done()
			for r := 0; r < rounds*perRound; r++ {
				u := int32((q*257 + r*31) % baseN)
				res, err := c.SingleSource(ctx, u)
				if err != nil {
					errs <- err
					return
				}
				if res.Scores[u] != 1 {
					errs <- fmt.Errorf("self score %v at u=%d", res.Scores[u], u)
					return
				}
				if n := len(res.Scores); n < baseN {
					errs <- fmt.Errorf("torn result: n = %d < base %d", n, baseN)
					return
				}
				if r%perRound == 0 {
					queries := make([]int32, batchSize)
					for i := range queries {
						queries[i] = int32((u + int32(i)*13) % baseN)
					}
					batch, err := c.BatchSingleSource(ctx, queries, 2)
					if err != nil {
						errs <- err
						return
					}
					// The batch pins one snapshot: all results agree on n.
					for _, res := range batch {
						if len(res.Scores) != len(batch[0].Scores) {
							errs <- fmt.Errorf("batch straddled snapshots: %d vs %d",
								len(res.Scores), len(batch[0].Scores))
							return
						}
					}
				}
			}
		}(q)
	}

	// View querier: every answer must be exactly the pinned snapshot.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for r := 0; r < rounds*perRound; r++ {
			res, err := view.SingleSource(ctx, int32(r%baseN))
			if err != nil {
				errs <- err
				return
			}
			if int32(len(res.Scores)) != pinnedN {
				errs <- fmt.Errorf("view observed n=%d, pinned %d", len(res.Scores), pinnedN)
				return
			}
			if view.Epoch() != pinnedEpoch {
				errs <- fmt.Errorf("view epoch drifted to %d", view.Epoch())
				return
			}
		}
	}()

	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	// Quiesced: the client lands on the final committed state.
	g, err := d.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.SingleSource(ctx, 0)
	if err != nil {
		t.Fatal(err)
	}
	if int32(len(res.Scores)) != g.N() {
		t.Fatalf("final query n = %d, snapshot n = %d", len(res.Scores), g.N())
	}
}
