package tsf

import (
	"context"
	"errors"
	"math"
	"testing"

	"github.com/simrank/simpush/internal/exact"
	"github.com/simrank/simpush/internal/gen"
	"github.com/simrank/simpush/internal/graph"
	"github.com/simrank/simpush/internal/limits"
)

const c = 0.6

func built(t testing.TB, g *graph.Graph, p Params) *Engine {
	t.Helper()
	e, err := New(g, p)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Build(); err != nil {
		t.Fatal(err)
	}
	return e
}

func TestValidation(t *testing.T) {
	g := gen.Cycle(4)
	if _, err := New(g, Params{C: 3}); err == nil {
		t.Fatal("c=3 accepted")
	}
	if _, err := New(g, Params{Rg: -1}); err == nil {
		t.Fatal("Rg=-1 accepted")
	}
	e, err := New(g, Params{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Query(context.Background(), 0); err == nil {
		t.Fatal("query before build accepted")
	}
}

func TestMetadata(t *testing.T) {
	e := built(t, gen.Cycle(5), Params{Rg: 10, Rq: 2, Seed: 1})
	if e.Name() != "TSF" || !e.Indexed() || e.Setting() == "" {
		t.Fatal("metadata wrong")
	}
	if e.IndexBytes() <= 0 {
		t.Fatal("index bytes missing")
	}
	if _, err := e.Query(context.Background(), 55); err == nil {
		t.Fatal("bad node accepted")
	}
}

func TestOneWayGraphStructure(t *testing.T) {
	g := graph.MustFromPairs([2]int32{0, 1}, [2]int32{0, 2}) // I(1)=I(2)={0}
	e := built(t, g, Params{Rg: 5, Rq: 1, Seed: 2})
	for _, ow := range e.graphs {
		if ow.parent[1] != 0 || ow.parent[2] != 0 {
			t.Fatal("forced parent not sampled")
		}
		if ow.parent[0] != -1 {
			t.Fatal("dangling node got a parent")
		}
		kids := ow.children[ow.childOff[0]:ow.childOff[1]]
		if len(kids) != 2 {
			t.Fatalf("children of 0 = %v", kids)
		}
	}
}

func TestSharedParent(t *testing.T) {
	g := graph.MustFromPairs([2]int32{0, 1}, [2]int32{0, 2})
	e := built(t, g, Params{Rg: 300, Rq: 20, Seed: 3})
	s, err := e.Query(context.Background(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s[2]-c) > 0.03 {
		t.Fatalf("s(1,2) = %v, want %v", s[2], c)
	}
}

func TestCycleZero(t *testing.T) {
	e := built(t, gen.Cycle(10), Params{Rg: 50, Rq: 5, Seed: 4})
	s, err := e.Query(context.Background(), 0)
	if err != nil {
		t.Fatal(err)
	}
	for v := 1; v < 10; v++ {
		if s[v] != 0 {
			t.Fatalf("cycle s(0,%d) = %v", v, s[v])
		}
	}
}

// TSF's known bias: repeated meetings inflate scores. On graphs where
// walks can re-meet, TSF should track exact SimRank loosely from above on
// average; we only assert a loose band (the paper's Figure 4 shows TSF is
// the least accurate method).
func TestLooseAccuracy(t *testing.T) {
	g, err := gen.CopyingModel(100, 4, 0.3, 5)
	if err != nil {
		t.Fatal(err)
	}
	ex, err := exact.AllPairs(g, exact.Options{C: c})
	if err != nil {
		t.Fatal(err)
	}
	e := built(t, g, Params{Rg: 300, Rq: 20, Seed: 6})
	u := int32(11)
	s, err := e.Query(context.Background(), u)
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for v := int32(0); v < g.N(); v++ {
		if v != u {
			sum += math.Abs(ex.At(u, v) - s[v])
		}
	}
	if avg := sum / float64(g.N()-1); avg > 0.05 {
		t.Fatalf("avg error %v unreasonably large even for TSF", avg)
	}
}

func TestIndexCap(t *testing.T) {
	g, err := gen.ErdosRenyi(1000, 5000, 7)
	if err != nil {
		t.Fatal(err)
	}
	e, err := New(g, Params{Rg: 600, Rq: 80, MaxIndexBytes: 1 << 10})
	if err != nil {
		t.Fatal(err)
	}
	err = e.Build()
	var tooBig *limits.ErrIndexTooLarge
	if !errors.As(err, &tooBig) {
		t.Fatalf("expected ErrIndexTooLarge, got %v", err)
	}
}
