// Package tsf implements TSF (Shao et al., PVLDB 2015 [28]), the one-way
// graph index baseline.
//
// Build samples Rg one-way graphs: each assigns every node at most one
// uniformly random in-neighbor (its "parent"). The deterministic parent
// chains of a one-way graph simultaneously encode one random walk for
// every node. A query samples Rq fresh √c-walks from u per one-way graph;
// when u's walk sits at node w at step ℓ, every node v whose parent chain
// reaches w in exactly ℓ hops (the depth-ℓ descendants of w in the reversed
// one-way graph) is counted as meeting u with weight √c^ℓ — the decay of
// v's deterministic walk; u's own decay is realized by the walk's stopping.
//
// As the SimPush paper notes, TSF allows two walks to meet multiple times
// and assumes walks never cycle, so it overestimates SimRank — visible in
// its error curves.
package tsf

import (
	"context"
	"fmt"
	"math"
	"time"

	"github.com/simrank/simpush/internal/graph"
	"github.com/simrank/simpush/internal/limits"
	"github.com/simrank/simpush/internal/rnd"
	"github.com/simrank/simpush/internal/walk"
)

// Params configures TSF. The paper sweeps (Rg, Rq) over
// {(10,2), (100,20), (200,30), (300,40), (600,80)}.
type Params struct {
	C    float64
	Rg   int // number of one-way graphs; default 100
	Rq   int // reuse per one-way graph at query time; default 20
	T    int // max walk depth; default 10
	Seed uint64
	// MaxIndexBytes aborts Build with limits.ErrIndexTooLarge (0 = off).
	MaxIndexBytes int64
}

func (p *Params) fill() {
	if p.C == 0 {
		p.C = 0.6
	}
	if p.Rg == 0 {
		p.Rg = 100
	}
	if p.Rq == 0 {
		p.Rq = 20
	}
	if p.T == 0 {
		p.T = 10
	}
}

// oneWay is a single one-way graph: parent pointers plus the reversed
// child adjacency in CSR form for descendant harvesting.
type oneWay struct {
	parent   []int32 // sampled in-neighbor, or -1
	childOff []int32
	children []int32
}

// Engine is a TSF engine; Build must run before Query.
type Engine struct {
	g      *graph.Graph
	p      Params
	built  bool
	graphs []oneWay
	walker *walk.Walker
	// BFS scratch for descendant harvesting
	frontier, nextFrontier []int32
	timeout                time.Duration
}

// SetQueryTimeout arms a cooperative per-query deadline (0 disables);
// a query that exceeds it returns limits.ErrQueryTimeout.
func (e *Engine) SetQueryTimeout(budget time.Duration) { e.timeout = budget }

// New returns an unbuilt TSF engine.
func New(g *graph.Graph, p Params) (*Engine, error) {
	p.fill()
	if p.C <= 0 || p.C >= 1 {
		return nil, fmt.Errorf("tsf: c must be in (0,1), got %v", p.C)
	}
	if p.Rg < 1 || p.Rq < 1 {
		return nil, fmt.Errorf("tsf: need Rg >= 1 and Rq >= 1")
	}
	return &Engine{g: g, p: p}, nil
}

// Name implements engine.Engine.
func (e *Engine) Name() string { return "TSF" }

// Setting implements engine.Engine.
func (e *Engine) Setting() string { return fmt.Sprintf("Rg=%d,Rq=%d", e.p.Rg, e.p.Rq) }

// Indexed implements engine.Engine.
func (e *Engine) Indexed() bool { return true }

// IndexBytes implements engine.Engine.
func (e *Engine) IndexBytes() int64 {
	var b int64
	for i := range e.graphs {
		b += int64(len(e.graphs[i].parent))*4 +
			int64(len(e.graphs[i].childOff))*4 +
			int64(len(e.graphs[i].children))*4
	}
	return b
}

// Build samples the one-way graphs.
func (e *Engine) Build() error {
	n := e.g.N()
	projected := int64(e.p.Rg) * int64(n) * 12
	if e.p.MaxIndexBytes > 0 && projected > e.p.MaxIndexBytes {
		return &limits.ErrIndexTooLarge{Need: projected, Cap: e.p.MaxIndexBytes}
	}
	r := rnd.New(e.p.Seed ^ 0x7af5c0ffee15900d)
	e.graphs = make([]oneWay, e.p.Rg)
	for i := 0; i < e.p.Rg; i++ {
		ow := oneWay{
			parent:   make([]int32, n),
			childOff: make([]int32, n+1),
		}
		for v := int32(0); v < n; v++ {
			in := e.g.In(v)
			if len(in) == 0 {
				ow.parent[v] = -1
				continue
			}
			p := in[r.Intn(len(in))]
			ow.parent[v] = p
			ow.childOff[p+1]++
		}
		for v := int32(0); v < n; v++ {
			ow.childOff[v+1] += ow.childOff[v]
		}
		ow.children = make([]int32, ow.childOff[n])
		cursor := make([]int32, n)
		for v := int32(0); v < n; v++ {
			p := ow.parent[v]
			if p < 0 {
				continue
			}
			ow.children[ow.childOff[p]+cursor[p]] = v
			cursor[p]++
		}
		e.graphs[i] = ow
	}
	e.walker = walk.NewWalker(e.g, e.p.C, rnd.New(e.p.Seed^0xfeedfacecafebeef))
	e.built = true
	return nil
}

// Query samples Rq walks from u per one-way graph and harvests descendant
// sets. Cancellation is checked between one-way graphs.
func (e *Engine) Query(ctx context.Context, u int32) ([]float64, error) {
	if !e.built {
		return nil, fmt.Errorf("tsf: Query before Build")
	}
	if !e.g.HasNode(u) {
		return nil, fmt.Errorf("tsf: %w: node %d not in [0, %d)", limits.ErrNodeOutOfRange, u, e.g.N())
	}
	n := e.g.N()
	scores := make([]float64, n)
	sqrtC := math.Sqrt(e.p.C)
	norm := 1 / float64(e.p.Rg*e.p.Rq)
	var deadline time.Time
	if e.timeout > 0 {
		deadline = time.Now().Add(e.timeout)
	}
	for gi := range e.graphs {
		ow := &e.graphs[gi]
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if e.timeout > 0 && time.Now().After(deadline) {
			return nil, limits.ErrQueryTimeout
		}
		for rep := 0; rep < e.p.Rq; rep++ {
			steps := e.walker.SampleTruncated(u, e.p.T)
			decay := 1.0
			for l, w := range steps {
				decay *= sqrtC
				// All depth-(l+1) descendants of w in the one-way graph
				// have their deterministic walk at w at step l+1.
				weight := norm * decay
				e.harvest(ow, w, l+1, u, weight, scores)
			}
		}
	}
	scores[u] = 1
	return scores, nil
}

// harvest adds weight to every node at exactly `depth` hops below w in the
// reversed one-way graph.
func (e *Engine) harvest(ow *oneWay, w int32, depth int, u int32, weight float64, scores []float64) {
	cur := e.frontier[:0]
	nxt := e.nextFrontier[:0]
	cur = append(cur, w)
	for d := 0; d < depth && len(cur) > 0; d++ {
		nxt = nxt[:0]
		for _, x := range cur {
			nxt = append(nxt, ow.children[ow.childOff[x]:ow.childOff[x+1]]...)
		}
		cur, nxt = nxt, cur
	}
	for _, v := range cur {
		if v != u {
			scores[v] += weight
		}
	}
	e.frontier, e.nextFrontier = cur[:0], nxt[:0]
}
