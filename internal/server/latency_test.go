package server

import (
	"math"
	"testing"
	"time"
)

func TestBucketForBounds(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want int
	}{
		{0, 0},
		{50 * time.Microsecond, 0},
		{100 * time.Microsecond, 0},
		{101 * time.Microsecond, 1},
		{200 * time.Microsecond, 1},
		{time.Millisecond, 4}, // bounds 0.1,0.2,0.4,0.8,1.6 → 1ms lands in bucket 4
		{time.Hour, latencyBucketCount - 1},
	}
	for _, c := range cases {
		if got := bucketFor(c.d); got != c.want {
			t.Errorf("bucketFor(%v) = %d, want %d", c.d, got, c.want)
		}
	}
	// Every bound is its own bucket's inclusive upper edge.
	for i, ub := range latencyBoundsMs {
		d := time.Duration(ub * float64(time.Millisecond))
		if got := bucketFor(d); got != i {
			t.Errorf("bucketFor(bound %d = %gms) = %d, want %d", i, ub, got, i)
		}
	}
}

func TestHistogramSnapshotQuantiles(t *testing.T) {
	var h latencyHist
	if h.snapshot() != nil {
		t.Fatal("empty histogram must snapshot to nil")
	}
	// 90 fast observations at 1ms, 10 slow at 100ms: p50 must sit in the
	// fast bucket, p99 in the slow one.
	for i := 0; i < 90; i++ {
		h.observe(time.Millisecond)
	}
	for i := 0; i < 10; i++ {
		h.observe(100 * time.Millisecond)
	}
	s := h.snapshot()
	if s == nil || s.Count != 100 {
		t.Fatalf("snapshot = %+v, want count 100", s)
	}
	wantMean := (90*1.0 + 10*100.0) / 100
	if math.Abs(s.MeanMs-wantMean) > 0.01 {
		t.Errorf("mean = %.3f ms, want %.3f", s.MeanMs, wantMean)
	}
	if s.P50Ms <= 0 || s.P50Ms > 1.6 {
		t.Errorf("p50 = %.3f ms, want within the ≤1.6ms bucket", s.P50Ms)
	}
	if s.P99Ms < 51.2 || s.P99Ms > 102.4 {
		t.Errorf("p99 = %.3f ms, want inside the (51.2, 102.4] bucket", s.P99Ms)
	}
	if s.P50Ms > s.P90Ms || s.P90Ms > s.P99Ms {
		t.Errorf("quantiles not monotone: p50 %.3f p90 %.3f p99 %.3f", s.P50Ms, s.P90Ms, s.P99Ms)
	}
	if len(s.Counts) != latencyBucketCount {
		t.Errorf("counts length %d, want %d", len(s.Counts), latencyBucketCount)
	}
}

func TestHistQuantileSingleBucket(t *testing.T) {
	var h latencyHist
	h.observe(500 * time.Microsecond)
	s := h.snapshot()
	if s == nil {
		t.Fatal("nil snapshot after observe")
	}
	// One sample in the (0.4, 0.8] bucket: every quantile must stay inside.
	for _, q := range []float64{s.P50Ms, s.P90Ms, s.P99Ms} {
		if q <= 0.4 || q > 0.8 {
			t.Errorf("quantile %.3f ms outside its only occupied bucket (0.4, 0.8]", q)
		}
	}
}

// TestHistQuantileBoundarySample pins the order-statistic estimator on
// the degenerate inputs the old interpolation got wrong: a lone sample
// exactly on a bucket's upper edge must give the same in-bucket estimate
// for every quantile (there is only one sample — the quantile cannot
// depend on q), and it must stay strictly inside the bucket.
func TestHistQuantileBoundarySample(t *testing.T) {
	var h latencyHist
	h.observe(100 * time.Microsecond) // exactly the first bucket's bound
	s := h.snapshot()
	if s == nil {
		t.Fatal("nil snapshot after observe")
	}
	want := 0.05 // midpoint of (0, 0.1]
	for name, q := range map[string]float64{"p50": s.P50Ms, "p90": s.P90Ms, "p99": s.P99Ms} {
		if math.Abs(q-want) > 1e-9 {
			t.Errorf("%s = %.4f ms, want the bucket midpoint %.4f for a single sample", name, q, want)
		}
	}
}

// TestHistQuantileOverflowBucket: the overflow bucket has no upper
// bound, so quantiles landing there must report the last finite bound
// (a lower bound), not a fabricated interpolation beyond it.
func TestHistQuantileOverflowBucket(t *testing.T) {
	var h latencyHist
	h.observe(time.Hour)
	s := h.snapshot()
	if s == nil {
		t.Fatal("nil snapshot after observe")
	}
	last := latencyBoundsMs[len(latencyBoundsMs)-1]
	for name, q := range map[string]float64{"p50": s.P50Ms, "p99": s.P99Ms} {
		if q != last {
			t.Errorf("%s = %.4f ms, want the last finite bound %.4f", name, q, last)
		}
	}
}

// TestHistQuantileTwoSamples: with one sample in each of the first two
// buckets, p50 selects the first sample (rank ceil(0.5·2)=1) at its
// bucket midpoint, and higher quantiles move monotonically into the
// second bucket.
func TestHistQuantileTwoSamples(t *testing.T) {
	counts := make([]uint64, latencyBucketCount)
	counts[0], counts[1] = 1, 1
	if got := histQuantile(counts, 2, 0.50); math.Abs(got-0.05) > 1e-9 {
		t.Errorf("p50 = %.4f, want 0.05 (midpoint of the first bucket)", got)
	}
	if got := histQuantile(counts, 2, 0.99); got <= 0.1 || got > 0.2 {
		t.Errorf("p99 = %.4f, want inside the second bucket (0.1, 0.2]", got)
	}
	// Monotone in q across the bucket boundary.
	prev := 0.0
	for _, q := range []float64{0.1, 0.25, 0.5, 0.75, 0.9, 0.99} {
		v := histQuantile(counts, 2, q)
		if v < prev {
			t.Errorf("quantile decreased: q=%.2f gave %.4f after %.4f", q, v, prev)
		}
		prev = v
	}
}

func TestLatencyBucketsMsIsCopy(t *testing.T) {
	a := LatencyBucketsMs()
	a[0] = -1
	if b := LatencyBucketsMs(); b[0] == -1 {
		t.Fatal("LatencyBucketsMs returned shared backing storage")
	}
}
