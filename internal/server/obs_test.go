package server

import (
	"bytes"
	"encoding/json"
	"log/slog"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/simrank/simpush/internal/obs"
)

// TestRequestIDEcho: every response — success and error alike — carries
// X-Request-Id; a client-supplied id is echoed verbatim, errors include
// it in the JSON body, and a hostile id is replaced rather than
// reflected.
func TestRequestIDEcho(t *testing.T) {
	s := newStaticServer(t, Config{})

	rec := doReq(s, "GET", "/v1/single-source?node=1", "")
	if rec.Code != 200 {
		t.Fatalf("status = %d: %s", rec.Code, rec.Body.String())
	}
	if id := rec.Header().Get(obs.RequestIDHeader); id == "" {
		t.Error("success response missing a minted X-Request-Id")
	}

	req := httptest.NewRequest("GET", "/v1/single-source?node=999999", nil)
	req.Header.Set(obs.RequestIDHeader, "client-id-42")
	rec = httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != 404 {
		t.Fatalf("status = %d, want 404", rec.Code)
	}
	if id := rec.Header().Get(obs.RequestIDHeader); id != "client-id-42" {
		t.Errorf("echoed id = %q, want the client's", id)
	}
	var body map[string]string
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatal(err)
	}
	if body["request_id"] != "client-id-42" {
		t.Errorf("error body request_id = %q, want client-id-42", body["request_id"])
	}

	req = httptest.NewRequest("GET", "/healthz", nil)
	req.Header.Set(obs.RequestIDHeader, "bad\"id with spaces")
	rec = httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	got := rec.Header().Get(obs.RequestIDHeader)
	if got == "" || strings.ContainsAny(got, "\" ") {
		t.Errorf("hostile id not replaced: %q", got)
	}
}

// TestTraceRingAndSpans: with TraceRing set, a computed query lands in
// /debug/queries with its id, epoch, cache outcome and the engine-stage
// spans; a repeat of the same query records a hit with no engine spans.
func TestTraceRingAndSpans(t *testing.T) {
	s := newStaticServer(t, Config{TraceRing: 8})

	req := httptest.NewRequest("GET", "/v1/topk?node=3&k=5", nil)
	req.Header.Set(obs.RequestIDHeader, "trace-me")
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != 200 {
		t.Fatalf("topk status = %d: %s", rec.Code, rec.Body.String())
	}
	doReq(s, "GET", "/v1/topk?node=3&k=5", "") // cache hit

	dbg := doReq(s, "GET", "/debug/queries", "")
	if dbg.Code != 200 {
		t.Fatalf("/debug/queries status = %d", dbg.Code)
	}
	var snap struct {
		Enabled bool              `json:"enabled"`
		Count   int               `json:"count"`
		Queries []obs.TraceRecord `json:"queries"`
	}
	if err := json.Unmarshal(dbg.Body.Bytes(), &snap); err != nil {
		t.Fatal(err)
	}
	if !snap.Enabled || snap.Count != 2 {
		t.Fatalf("snapshot enabled=%v count=%d, want enabled with 2 traces", snap.Enabled, snap.Count)
	}
	// Newest first: queries[1] is the computed leader, queries[0] the hit.
	lead, hit := snap.Queries[1], snap.Queries[0]
	if lead.RequestID != "trace-me" || lead.Endpoint != "topk" || lead.Status != 200 {
		t.Errorf("leader trace = %+v", lead)
	}
	if lead.Cache != "computed" {
		t.Errorf("leader cache outcome = %q, want computed", lead.Cache)
	}
	if lead.Epoch != s.lastEpoch.Load() {
		t.Errorf("leader trace epoch = %d, want the pinned epoch %d", lead.Epoch, s.lastEpoch.Load())
	}
	names := map[string]bool{}
	for _, sp := range lead.Spans {
		names[sp.Name] = true
		if sp.DurMs < 0 {
			t.Errorf("span %s has negative duration %v", sp.Name, sp.DurMs)
		}
	}
	for _, want := range []string{"snapshot", "cache", "walk", "source_push", "gamma", "reverse_push"} {
		if !names[want] {
			t.Errorf("leader trace missing span %q (has %v)", want, names)
		}
	}
	if hit.Cache != "hit" {
		t.Errorf("second trace cache outcome = %q, want hit", hit.Cache)
	}
	for _, sp := range hit.Spans {
		if sp.Name == "walk" {
			t.Error("cache hit must not carry engine-stage spans")
		}
	}
}

// TestSlowQueryLog: with a sub-query threshold every computed query
// emits one WARN line carrying the request id and duration.
func TestSlowQueryLog(t *testing.T) {
	var buf bytes.Buffer
	logger := slog.New(slog.NewJSONHandler(&buf, &slog.HandlerOptions{Level: slog.LevelWarn}))
	s := newStaticServer(t, Config{SlowQuery: time.Nanosecond, Logger: logger})

	req := httptest.NewRequest("GET", "/v1/pair?u=1&v=2", nil)
	req.Header.Set(obs.RequestIDHeader, "slow-1")
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != 200 {
		t.Fatalf("pair status = %d: %s", rec.Code, rec.Body.String())
	}
	line := buf.String()
	if !strings.Contains(line, `"msg":"slow query"`) || !strings.Contains(line, `"request_id":"slow-1"`) {
		t.Fatalf("slow-query log line missing fields: %q", line)
	}
	if !strings.Contains(line, "reverse_push") {
		t.Errorf("slow-query line carries no engine spans: %q", line)
	}
}

// TestTracingDisabledByDefault: without TraceRing/SlowQuery the ring is
// off and /debug/queries reports so.
func TestTracingDisabledByDefault(t *testing.T) {
	s := newStaticServer(t, Config{})
	if s.tracing() {
		t.Fatal("tracing() = true on a default config")
	}
	doReq(s, "GET", "/v1/single-source?node=1", "")
	dbg := decodeBody(t, doReq(s, "GET", "/debug/queries", ""))
	if dbg["enabled"] != false || dbg["count"] != float64(0) {
		t.Errorf("/debug/queries = %v, want disabled and empty", dbg)
	}
}

// TestMetricsz scrapes the exposition endpoint after live traffic and
// checks it parses, carries the core families, and agrees with /statsz.
func TestMetricsz(t *testing.T) {
	s := newStaticServer(t, Config{})
	doReq(s, "GET", "/v1/single-source?node=1", "")
	doReq(s, "GET", "/v1/single-source?node=1", "") // hit
	doReq(s, "GET", "/v1/topk?node=2&k=3", "")

	rec := doReq(s, "GET", "/metricsz", "")
	if rec.Code != 200 {
		t.Fatalf("/metricsz status = %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); ct != obs.ContentType {
		t.Errorf("content type = %q", ct)
	}
	samples, err := obs.ParseProm(rec.Body)
	if err != nil {
		t.Fatalf("parsing exposition: %v", err)
	}
	if v, ok := obs.FindSample(samples, "simrankd_cache_hits_total", nil); !ok || v != 1 {
		t.Errorf("cache_hits_total = %v (found %v), want 1", v, ok)
	}
	if v, ok := obs.FindSample(samples, "simrankd_requests_total", map[string]string{"endpoint": "single-source"}); !ok || v != 2 {
		t.Errorf("requests_total{single-source} = %v (found %v), want 2", v, ok)
	}
	stages := 0.0
	for _, name := range stageNames {
		v, ok := obs.FindSample(samples, "simrankd_engine_stage_seconds_total", map[string]string{"stage": name})
		if !ok {
			t.Errorf("missing stage series %q", name)
		}
		stages += v
	}
	if stages <= 0 {
		t.Error("engine stage totals are all zero after computed queries")
	}
	if v, ok := obs.FindSample(samples, "simrankd_request_duration_seconds_count",
		map[string]string{"endpoint": "single-source", "path": "engine"}); !ok || v != 1 {
		t.Errorf("duration histogram count{single-source,engine} = %v (found %v), want 1", v, ok)
	}
	// Histogram buckets must be cumulative: +Inf equals _count.
	inf, ok := obs.FindSample(samples, "simrankd_request_duration_seconds_bucket",
		map[string]string{"endpoint": "single-source", "path": "engine", "le": "+Inf"})
	if !ok || inf != 1 {
		t.Errorf("+Inf bucket = %v (found %v), want 1", inf, ok)
	}
}
