package server

import (
	"context"
	"errors"
	"math"
	"sync/atomic"
	"time"
)

// errSaturated is returned by acquire when the in-flight limit is reached
// and the wait queue is full; handlers translate it to 429 + Retry-After.
var errSaturated = errors.New("server: saturated: in-flight limit reached and wait queue full")

// admission bounds the number of engine computations running at once and
// the number of requests allowed to wait for a slot. Beyond both bounds
// requests are rejected immediately — under overload the server sheds
// load with a fast 429 instead of building an unbounded goroutine queue
// whose tail latency nobody survives.
type admission struct {
	slots    chan struct{} // buffered to the in-flight limit
	maxQueue int64
	queued   atomic.Int64
	rejected atomic.Uint64

	// Slow-path accounting: how many acquisitions had to wait for a slot
	// and how long they waited in total. Fast-path acquisitions (a slot
	// was free) cost no clock read.
	waits     atomic.Uint64
	waitNanos atomic.Uint64

	// Observed service process, feeding the Retry-After estimate: how
	// many slot-holding computations finished and how long they held
	// their slots in total.
	completed atomic.Uint64
	busyNanos atomic.Uint64
}

func newAdmission(maxInFlight, maxQueue int) *admission {
	return &admission{
		slots:    make(chan struct{}, maxInFlight),
		maxQueue: int64(maxQueue),
	}
}

// acquire takes a slot, waiting in the bounded queue if none is free,
// and reports how long it waited (0 on the uncontended fast path, which
// never reads the clock). It returns errSaturated when the queue is
// full, and ctx.Err() if the request deadline expires while waiting.
func (a *admission) acquire(ctx context.Context) (time.Duration, error) {
	select {
	case a.slots <- struct{}{}:
		return 0, nil
	default:
	}
	if a.queued.Add(1) > a.maxQueue {
		a.queued.Add(-1)
		a.rejected.Add(1)
		return 0, errSaturated
	}
	defer a.queued.Add(-1)
	t0 := time.Now()
	select {
	case a.slots <- struct{}{}:
		wait := time.Since(t0)
		a.waits.Add(1)
		a.waitNanos.Add(uint64(max(wait, 0)))
		return wait, nil
	case <-ctx.Done():
		return time.Since(t0), ctx.Err()
	}
}

func (a *admission) release() { <-a.slots }

// acquireUpTo takes one slot (waiting in the bounded queue like acquire)
// plus up to n-1 more without waiting, and returns how many it holds and
// how long the first slot took. The extra slots are best-effort on
// purpose: a multi-slot caller that blocked while holding slots could
// deadlock against another multi-slot caller, so beyond the first slot
// it only ever takes what is free now.
func (a *admission) acquireUpTo(ctx context.Context, n int) (int, time.Duration, error) {
	wait, err := a.acquire(ctx)
	if err != nil {
		return 0, wait, err
	}
	held := 1
	for held < n {
		select {
		case a.slots <- struct{}{}:
			held++
		default:
			return held, wait, nil
		}
	}
	return held, wait, nil
}

func (a *admission) releaseN(n int) {
	for i := 0; i < n; i++ {
		<-a.slots
	}
}

// inFlight reports the number of held slots.
func (a *admission) inFlight() int { return len(a.slots) }

// queueDepth reports the number of requests waiting for a slot.
func (a *admission) queueDepth() int64 { return a.queued.Load() }

// recordService notes that a computation held n slots for d each. The
// running totals give the mean per-slot occupancy time, the service-rate
// half of the Retry-After estimate.
func (a *admission) recordService(d time.Duration, n int) {
	if d < 0 || n <= 0 {
		return
	}
	a.completed.Add(uint64(n))
	a.busyNanos.Add(uint64(d) * uint64(n))
}

// avgServiceNanos is the observed mean slot-occupancy time (0 before any
// computation has finished).
func (a *admission) avgServiceNanos() uint64 {
	done := a.completed.Load()
	if done == 0 {
		return 0
	}
	return a.busyNanos.Load() / done
}

// estimateRetryAfter derives the 429 Retry-After from the current
// backlog and the observed service rate: a rejected request would stand
// behind everything running plus everything queued, drained by
// maxInFlight parallel slots at the observed mean service time. Before
// any observation exists it falls back to the configured constant;
// the result is clamped to [1, maxSec] so one pathological slow query
// cannot tell clients to go away for an hour.
func (a *admission) estimateRetryAfter(fallbackSec, maxSec int) int {
	avg := a.avgServiceNanos()
	if avg == 0 {
		return fallbackSec
	}
	ahead := int64(len(a.slots)) + a.queued.Load() + 1
	workers := int64(cap(a.slots))
	if workers < 1 {
		workers = 1
	}
	drainNanos := float64(ahead) * float64(avg) / float64(workers)
	secs := int(math.Ceil(drainNanos / 1e9))
	if secs < 1 {
		secs = 1
	}
	if secs > maxSec {
		secs = maxSec
	}
	return secs
}
