package server

import (
	"math"
	"sync/atomic"
	"time"
)

// Per-endpoint latency histograms, split by serving path, so operators
// (and simload) can compute server-side percentiles and cross-check the
// client-observed ones: a gap between the two is network/queueing, not
// engine time.
//
// Buckets are fixed at process start — exponential, 100µs doubling up to
// ~200s plus an overflow bucket — so snapshots are a pair of small
// arrays, merging across scrapes is trivial, and recording is two atomic
// adds on the request path.

// latencyBucketCount includes the overflow bucket.
const latencyBucketCount = 22

// latencyBoundsMs holds the inclusive upper bound of each bucket in
// milliseconds; the last bucket is unbounded.
var latencyBoundsMs = func() [latencyBucketCount - 1]float64 {
	var b [latencyBucketCount - 1]float64
	v := 0.1
	for i := range b {
		b[i] = v
		v *= 2
	}
	return b
}()

// LatencyBucketsMs exposes the bucket upper bounds (ms) once per stats
// snapshot; every histogram's Counts array aligns with it, with one
// extra trailing overflow bucket.
func LatencyBucketsMs() []float64 {
	out := make([]float64, len(latencyBoundsMs))
	copy(out, latencyBoundsMs[:])
	return out
}

// bucketFor maps a duration to its bucket index.
func bucketFor(d time.Duration) int {
	ms := d.Seconds() * 1000
	// The bounds double, so a linear scan over 21 floats beats the
	// branch-mispredict cost of binary search at this size.
	for i, ub := range latencyBoundsMs {
		if ms <= ub {
			return i
		}
	}
	return latencyBucketCount - 1
}

// latencyHist is a fixed-bucket concurrent histogram. The zero value is
// ready to use.
type latencyHist struct {
	counts   [latencyBucketCount]atomic.Uint64
	total    atomic.Uint64
	sumNanos atomic.Uint64
}

func (h *latencyHist) observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	h.counts[bucketFor(d)].Add(1)
	h.total.Add(1)
	h.sumNanos.Add(uint64(d))
}

// HistogramSnapshot is the JSON form of one (endpoint, path) histogram.
// Counts aligns with the top-level latency_buckets_ms bounds plus a
// final overflow bucket. Percentiles are estimated by linear
// interpolation inside the containing bucket, so they carry bucket-width
// error — for exact client-side numbers use simload, which times every
// request individually.
type HistogramSnapshot struct {
	Count  uint64   `json:"count"`
	MeanMs float64  `json:"mean_ms"`
	P50Ms  float64  `json:"p50_ms"`
	P90Ms  float64  `json:"p90_ms"`
	P99Ms  float64  `json:"p99_ms"`
	Counts []uint64 `json:"counts"`
}

// snapshot returns nil when nothing was recorded, so idle paths are
// omitted from /statsz instead of rendering 22 zeroes.
func (h *latencyHist) snapshot() *HistogramSnapshot {
	total := h.total.Load()
	if total == 0 {
		return nil
	}
	s := &HistogramSnapshot{
		Count:  total,
		MeanMs: float64(h.sumNanos.Load()) / float64(total) / 1e6,
		Counts: make([]uint64, latencyBucketCount),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	// Concurrent observes can make the per-bucket sum drift from the
	// loaded total; quantiles use the sum actually captured.
	var captured uint64
	for _, c := range s.Counts {
		captured += c
	}
	if captured == 0 {
		return nil
	}
	s.Count = captured
	s.P50Ms = histQuantile(s.Counts, captured, 0.50)
	s.P90Ms = histQuantile(s.Counts, captured, 0.90)
	s.P99Ms = histQuantile(s.Counts, captured, 0.99)
	return s
}

// histQuantile estimates quantile q from bucket counts as an order
// statistic: the quantile sample has rank ceil(q·total) (clamped to
// [1, total]), and a sample that is the j-th of c in its bucket is
// placed at the bucket midpoint position (j−0.5)/c — the unbiased spot
// under the uniform-within-bucket assumption. This keeps every estimate
// strictly inside its bucket: the previous formula interpolated with the
// raw rank q·total, so a lone sample sitting exactly on a bucket edge
// fanned out across the whole bucket as q varied, and the overflow
// bucket fabricated a finite width of lo·2. The overflow bucket has no
// upper bound, so an estimate landing there reports the last finite
// bound — a clearly-labeled lower bound rather than an invented value.
func histQuantile(counts []uint64, total uint64, q float64) float64 {
	if total == 0 {
		return 0
	}
	rank := math.Ceil(q * float64(total))
	if rank < 1 {
		rank = 1
	}
	if rank > float64(total) {
		rank = float64(total)
	}
	cum := 0.0
	for i, c := range counts {
		if c == 0 {
			continue
		}
		if cum+float64(c) >= rank {
			if i >= len(latencyBoundsMs) {
				return latencyBoundsMs[len(latencyBoundsMs)-1]
			}
			lo := 0.0
			if i > 0 {
				lo = latencyBoundsMs[i-1]
			}
			hi := latencyBoundsMs[i]
			frac := (rank - cum - 0.5) / float64(c)
			if frac < 0 {
				frac = 0
			} else if frac > 1 {
				frac = 1
			}
			return lo + frac*(hi-lo)
		}
		cum += float64(c)
	}
	return latencyBoundsMs[len(latencyBoundsMs)-1]
}

// Serving paths a request can resolve through. Engine latencies include
// admission queueing; cache latencies are hits and coalesced waits.
const (
	pathEngine = iota
	pathCache
	pathCount
)

// EndpointLatency pairs the two path histograms of one endpoint.
type EndpointLatency struct {
	Engine   *HistogramSnapshot `json:"engine,omitempty"`
	CacheHit *HistogramSnapshot `json:"cache_hit,omitempty"`
}

// observeLatency records one successful request's duration under its
// endpoint and serving path.
func (s *Server) observeLatency(kind, path int, d time.Duration) {
	s.lat[kind][path].observe(d)
}

// latencyStats assembles the /statsz latency block: endpoint →
// {engine, cache_hit}, omitting endpoints that served nothing.
func (s *Server) latencyStats() map[string]*EndpointLatency {
	out := make(map[string]*EndpointLatency)
	for kind := range s.lat {
		engine := s.lat[kind][pathEngine].snapshot()
		cached := s.lat[kind][pathCache].snapshot()
		if engine == nil && cached == nil {
			continue
		}
		out[kindNames[kind]] = &EndpointLatency{Engine: engine, CacheHit: cached}
	}
	if len(out) == 0 {
		return nil
	}
	return out
}
