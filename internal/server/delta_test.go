package server

import (
	"context"
	"fmt"
	"math/rand"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"github.com/simrank/simpush"
)

// clusteredDyn builds `clusters` disconnected directed rings of `size`
// nodes each. Disconnection is the point: a mutation inside one cluster
// has an affected set confined to that cluster, so entries for every
// other cluster are provably carriable — the geometry the carry-forward
// path exists for. (A well-connected 300-node web graph is covered
// entirely by the depth-L* BFS, which degenerates to drop-everything.)
func clusteredDyn(t *testing.T, clusters, size int32) *simpush.DynamicGraph {
	t.Helper()
	dyn := simpush.NewDynamicGraph(clusters*size, int(clusters*size)*2)
	for c := int32(0); c < clusters; c++ {
		base := c * size
		for i := int32(0); i < size; i++ {
			if err := dyn.AddEdge(base+i, base+(i+1)%size); err != nil {
				t.Fatal(err)
			}
		}
		// Hub edges give every in-cluster pair a shared in-neighbor and
		// hence positive SimRank, so top-k support stays inside the
		// cluster (a bare ring has all-zero off-diagonal scores, and
		// TopK would pad with zero-score nodes from other clusters).
		for i := int32(2); i < size; i++ {
			if err := dyn.AddEdge(base, base+i); err != nil {
				t.Fatal(err)
			}
		}
	}
	return dyn
}

func newClusteredServer(t *testing.T, cfg Config) (*Server, *simpush.DynamicGraph) {
	t.Helper()
	dyn := clusteredDyn(t, 12, 25)
	cfg.Client = newClient(t, dyn)
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s, dyn
}

// TestCarryForwardBitIdenticalProperty is the tentpole property test:
// across a randomized mutation sequence, every response served after
// carry-forward — hit, carried or computed — must be bit-identical to a
// fresh engine computation on the committed graph at that epoch. Run
// under -race, with each round's queries issued concurrently so the
// commit hook races real request traffic.
func TestCarryForwardBitIdenticalProperty(t *testing.T) {
	const clusters, size = int32(12), int32(25)
	// Room for the whole sample at once: admission must not 429 the
	// concurrent rounds (GOMAXPROCS-derived defaults are too small under
	// -race on small machines).
	s, dyn := newClusteredServer(t, Config{MaxInFlight: int(clusters), MaxQueue: int(clusters)})
	rng := rand.New(rand.NewSource(41))

	// One sample node per cluster, queried with a fixed seed so engine
	// runs are deterministic and bit-comparison is meaningful.
	sample := make([]int32, clusters)
	for c := int32(0); c < clusters; c++ {
		sample[c] = c*size + rng.Int31n(size)
	}
	var added [][2]int32 // standalone-applied edges eligible for removal

	hits := 0
	for round := 0; round < 5; round++ {
		if round > 0 {
			// Random mutation in a random cluster: add a chord, or remove
			// a previously added one.
			if len(added) > 0 && rng.Intn(3) == 0 {
				e := added[len(added)-1]
				added = added[:len(added)-1]
				rec := doReq(s, "DELETE", "/v1/edges", fmt.Sprintf(`{"from":%d,"to":%d}`, e[0], e[1]))
				if rec.Code != 200 {
					t.Fatalf("round %d delete: %d %s", round, rec.Code, rec.Body.String())
				}
			} else {
				c := rng.Int31n(clusters)
				e := [2]int32{c*size + rng.Int31n(size), c*size + rng.Int31n(size)}
				rec := doReq(s, "POST", "/v1/edges", fmt.Sprintf(`{"from":%d,"to":%d}`, e[0], e[1]))
				if rec.Code != 200 {
					t.Fatalf("round %d add: %d %s", round, rec.Code, rec.Body.String())
				}
				added = append(added, e)
			}
		}

		// Fire the whole sample concurrently; the first arrivals race the
		// lazy rebuild (and its carry-forward hook) against each other.
		recs := make([]*httptest.ResponseRecorder, len(sample))
		var wg sync.WaitGroup
		for i, node := range sample {
			wg.Add(1)
			go func(i int, node int32) {
				defer wg.Done()
				recs[i] = doReq(s, "GET", fmt.Sprintf("/v1/single-source?node=%d&seed=11&dense=1", node), "")
			}(i, node)
		}
		wg.Wait()
		bodies := make([]map[string]any, len(sample))
		for i, rec := range recs {
			if rec.Code != 200 {
				t.Fatalf("node %d: %d %s", sample[i], rec.Code, rec.Body.String())
			}
			bodies[i] = decodeBody(t, rec)
		}

		// Fresh oracle: an independent client on the committed snapshot.
		snap, epoch, err := dyn.SnapshotEpoch()
		if err != nil {
			t.Fatal(err)
		}
		fresh := newClient(t, snap)
		for i, node := range sample {
			body := bodies[i]
			if got := uint64(body["epoch"].(float64)); got != epoch {
				t.Fatalf("round %d node %d pinned epoch %d, want %d", round, node, got, epoch)
			}
			if round > 0 && body["cache"] == "hit" {
				hits++
			}
			res, err := fresh.SingleSource(context.Background(), node, simpush.WithSeed(11))
			if err != nil {
				t.Fatal(err)
			}
			served := body["dense_scores"].([]any)
			if len(served) != len(res.Scores) {
				t.Fatalf("round %d node %d: served %d scores, fresh %d", round, node, len(served), len(res.Scores))
			}
			for v := range res.Scores {
				if served[v].(float64) != res.Scores[v] {
					t.Fatalf("round %d node %d: served s(%d,%d)=%v, fresh computation %v — carried entry is not bit-identical",
						round, node, node, v, served[v], res.Scores[v])
				}
			}
		}
	}

	st := s.Cache().Stats()
	if st.Carried == 0 {
		t.Fatalf("no entries were ever carried across an epoch (stats %+v) — the property was tested vacuously", st)
	}
	if hits == 0 {
		t.Fatal("no post-mutation request was served from a carried entry")
	}
}

// TestSweepOrderingKeepsCarriedEntries is the regression test for the
// carry/sweep race: the epoch-advance Sweep must run after carry-forward
// and must never reclaim a just-carried entry. If the order ever
// inverted (sweep at the new epoch before entries are re-stamped), the
// final request here would come back "computed".
func TestSweepOrderingKeepsCarriedEntries(t *testing.T) {
	s, _ := newClusteredServer(t, Config{})
	const witness = 30 // cluster 1; mutations stay in cluster 0

	if got := decodeBody(t, doReq(s, "GET", "/v1/single-source?node=30&seed=4", ""))["cache"]; got != "computed" {
		t.Fatalf("first query = %v", got)
	}
	rec := doReq(s, "POST", "/v1/edges", `{"from":0,"to":12}`)
	if rec.Code != 200 {
		t.Fatalf("edges: %d %s", rec.Code, rec.Body.String())
	}
	// This query commits the new epoch (rebuild + carry, both before the
	// epoch is visible) and then triggers noteEpoch's Sweep at the new
	// epoch — with the witness entry carried but not yet re-requested.
	other := decodeBody(t, doReq(s, "GET", "/v1/single-source?node=55&seed=4", ""))
	if other["cache"] != "computed" {
		t.Fatalf("post-mutation probe = %v, want computed", other["cache"])
	}
	after := decodeBody(t, doReq(s, "GET", "/v1/single-source?node=30&seed=4", ""))
	if after["cache"] != "hit" {
		t.Fatalf("carried witness = %v, want hit (sweep must not reclaim carried entries)", after["cache"])
	}
	if after["epoch"].(float64) == other["epoch"].(float64)-1 {
		t.Fatal("witness served at the old epoch")
	}
	if st := s.Cache().Stats(); st.Carried == 0 {
		t.Fatalf("stats %+v: nothing carried", st)
	}
}

// Mutated-cluster entries must drop; per-query ε overrides deeper than
// the delta BFS must refuse to carry, shallower ones may.
func TestCarryRespectsAffectedSetAndEpsOverrides(t *testing.T) {
	s, _ := newClusteredServer(t, Config{})
	for _, q := range []string{
		"/v1/single-source?node=3&seed=2",           // cluster 0: will be affected
		"/v1/single-source?node=28&seed=2",          // cluster 1: carriable
		"/v1/single-source?node=53&seed=2&eps=0.01", // deeper L* than the delta BFS
		"/v1/single-source?node=78&seed=2&eps=0.1",  // shallower L*: still carriable
		"/v1/pair?u=103&v=110&seed=2",               // cluster 4 pair: carriable
		"/v1/pair?u=128&v=3&seed=2",                 // target in the mutated cluster: drop
		"/v1/topk?node=153&k=5&seed=2",              // cluster 6 topk: support stays in-cluster
	} {
		if rec := doReq(s, "GET", q, ""); rec.Code != 200 {
			t.Fatalf("%s: %d %s", q, rec.Code, rec.Body.String())
		}
	}
	if rec := doReq(s, "POST", "/v1/edges", `{"from":0,"to":12}`); rec.Code != 200 {
		t.Fatalf("edges: %d %s", rec.Code, rec.Body.String())
	}
	cases := []struct {
		query string
		want  string
	}{
		{"/v1/single-source?node=3&seed=2", "computed"},
		{"/v1/single-source?node=28&seed=2", "hit"},
		{"/v1/single-source?node=53&seed=2&eps=0.01", "computed"},
		{"/v1/single-source?node=78&seed=2&eps=0.1", "hit"},
		{"/v1/pair?u=103&v=110&seed=2", "hit"},
		{"/v1/pair?u=128&v=3&seed=2", "computed"},
		{"/v1/topk?node=153&k=5&seed=2", "hit"},
	}
	for _, tc := range cases {
		body := decodeBody(t, doReq(s, "GET", tc.query, ""))
		if body["cache"] != tc.want {
			t.Errorf("%s after mutation: cache = %v, want %v", tc.query, body["cache"], tc.want)
		}
	}
}

func TestCarryForwardDisabled(t *testing.T) {
	s, _ := newClusteredServer(t, Config{DisableCarryForward: true})
	doReq(s, "GET", "/v1/single-source?node=30&seed=4", "")
	if rec := doReq(s, "POST", "/v1/edges", `{"from":0,"to":12}`); rec.Code != 200 {
		t.Fatalf("edges: %d %s", rec.Code, rec.Body.String())
	}
	body := decodeBody(t, doReq(s, "GET", "/v1/single-source?node=30&seed=4", ""))
	if body["cache"] != "computed" {
		t.Fatalf("with carry disabled, post-mutation query = %v, want computed", body["cache"])
	}
	if st := s.Stats(); st.Delta != nil {
		t.Fatalf("stats delta block = %+v, want absent when disabled", st.Delta)
	}
}

// The leader mutation path commits eagerly inside the request — the
// carry must happen there, not at the next query.
func TestLeaderMutationCarriesCache(t *testing.T) {
	s, _ := newClusteredServer(t, Config{Role: RoleLeader})
	if got := decodeBody(t, doReq(s, "GET", "/v1/single-source?node=30&seed=4", ""))["cache"]; got != "computed" {
		t.Fatalf("first query = %v", got)
	}
	if rec := doReq(s, "POST", "/v1/edges", `{"from":0,"to":12}`); rec.Code != 200 {
		t.Fatalf("edges: %d %s", rec.Code, rec.Body.String())
	}
	// The commit already happened inside the POST: the carried entry is
	// reachable at the new epoch with no further rebuild in between.
	body := decodeBody(t, doReq(s, "GET", "/v1/single-source?node=30&seed=4", ""))
	if body["cache"] != "hit" {
		t.Fatalf("post-commit query = %v, want hit from the carried entry", body["cache"])
	}
	st := s.Stats()
	if st.Delta == nil || st.Delta.Commits == 0 || st.Cache.Carried == 0 {
		t.Fatalf("stats = delta %+v cache %+v", st.Delta, st.Cache)
	}
}

func TestStatszAndMetricszExposeDeltaCounters(t *testing.T) {
	s, _ := newClusteredServer(t, Config{})
	doReq(s, "GET", "/v1/single-source?node=30&seed=4", "")
	// A removal of a never-existing edge: lazily discarded, surfaced as a
	// counted no-op. Exactly one query pays the snapshot error.
	if rec := doReq(s, "DELETE", "/v1/edges", `{"from":3,"to":7}`); rec.Code != 200 {
		t.Fatalf("delete: %d %s", rec.Code, rec.Body.String())
	}
	if rec := doReq(s, "GET", "/v1/single-source?node=30&seed=4", ""); rec.Code != 500 {
		t.Fatalf("query after bad removal = %d, want the one-time snapshot error", rec.Code)
	}
	if rec := doReq(s, "GET", "/v1/single-source?node=55&seed=4", ""); rec.Code != 200 {
		t.Fatalf("recovery query = %d %s", rec.Code, rec.Body.String())
	}

	stats := decodeBody(t, doReq(s, "GET", "/statsz", ""))
	if got := stats["graph_discarded_deletions"].(float64); got != 1 {
		t.Fatalf("graph_discarded_deletions = %v, want 1", got)
	}
	delta, ok := stats["delta"].(map[string]any)
	if !ok {
		t.Fatalf("statsz has no delta block: %v", stats)
	}
	if delta["commits"].(float64) == 0 || delta["depth"].(float64) <= 0 {
		t.Fatalf("delta block = %v", delta)
	}
	cacheStats := stats["cache"].(map[string]any)
	for _, field := range []string{"carried", "carry_dropped"} {
		if _, ok := cacheStats[field]; !ok {
			t.Fatalf("statsz cache block missing %q: %v", field, cacheStats)
		}
	}

	metrics := doReq(s, "GET", "/metricsz", "").Body.String()
	for _, series := range []string{
		"simrankd_cache_carried_total",
		"simrankd_cache_carry_dropped_total",
		"simrankd_delta_affected_nodes",
		"simrankd_delta_commits_total",
		"simrankd_delta_total_fallbacks_total",
		"simrankd_graph_discarded_deletions_total",
	} {
		if !strings.Contains(metrics, series) {
			t.Errorf("/metricsz missing %s", series)
		}
	}
}
