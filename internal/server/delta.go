package server

import (
	"strconv"
	"strings"

	"github.com/simrank/simpush"
	"github.com/simrank/simpush/internal/cache"
)

// This file wires graph epoch deltas into cache carry-forward: the
// dynamic source's commit hook delivers the affected-node set of every
// committed mutation batch, and the server re-keys all cache entries the
// mutation provably cannot have changed to the new epoch — instead of
// letting the epoch advance orphan the entire cache.
//
// The hook runs with the graph's mutex held, before the new epoch is
// observable by any request, so a request can never pin the new epoch
// (and trigger noteEpoch's Sweep) while carry-forward is still running:
// Sweep(new) then sees carried entries already stamped with the new
// epoch and leaves them alone. That ordering is the whole correctness
// story for the sweep/carry race — there is no window in which a
// just-carried entry is sweepable.

// installCarryForward resolves the delta depth and budget and registers
// the commit hook on the dynamic source. Called once from New.
func (s *Server) installCarryForward() {
	s.engineOpts = s.client.Options()
	depth := s.cfg.DeltaDepth
	if depth <= 0 {
		depth = s.engineOpts.MaxLevelBound()
	}
	budget := s.cfg.DeltaBudget
	if budget == 0 {
		// Auto: half the graph (at startup). Past that point most of the
		// cache is affected anyway and the BFS costs graph-sized work for
		// little carried value, so falling back to Total is the better
		// trade.
		budget = int(s.client.Graph().N()) / 2
		if budget < 1024 {
			budget = 1024
		}
	} else if budget < 0 {
		budget = 0 // explicit "unbounded"
	}
	s.deltaDepth, s.deltaBudget = depth, budget
	// An entry computed with the engine-default ε is only safe to carry
	// if the delta BFS ran at least as deep as the engine reads. True
	// unless Config.DeltaDepth was forced below the engine's own bound.
	s.carryDefaultSafe = s.engineOpts.MaxLevelBound() <= depth
	s.dyn.SetCommitHook(s.onEpochDelta, depth, budget)
}

// onEpochDelta is the commit hook: it records the delta counters and
// carries the cache forward across the epoch advance. It runs under the
// graph mutex (see SetCommitHook) and must not call back into the
// dynamic source.
func (s *Server) onEpochDelta(d simpush.EpochDelta) {
	s.deltas.Add(1)
	s.deltaAffectedLast.Store(uint64(len(d.Affected)))
	s.deltaAffectedSum.Add(uint64(len(d.Affected)))
	cd := cache.Delta{FromEpoch: d.FromEpoch, ToEpoch: d.ToEpoch}
	if d.Total {
		s.deltaTotals.Add(1)
		// Nothing is provably unchanged: drop every superseded entry (a
		// nil keep carries none), exactly the pre-carry-forward behavior.
		s.cache.CarryForward(cd, nil)
		return
	}
	aff := make(map[int32]struct{}, len(d.Affected))
	for _, v := range d.Affected {
		aff[v] = struct{}{}
	}
	s.cache.CarryForward(cd, s.carryKeep(aff))
}

// carryKeep builds the per-entry carry judgment for one delta: true only
// if the entry is bit-identical to a fresh computation at the new epoch.
// A single-source result from u is untouched by the mutation iff u is
// outside the affected set (the engine then reads only adjacency,
// in-degrees and walk transitions the mutation did not perturb); pair
// and top-k entries additionally require their target / ranked support
// nodes to be unaffected. The callback runs under a cache shard lock —
// pure map lookups and arithmetic only.
func (s *Server) carryKeep(aff map[int32]struct{}) func(cache.Key, any) bool {
	return func(k cache.Key, v any) bool {
		if !s.paramsCarrySafe(k.Params) {
			return false
		}
		if _, hit := aff[k.Node]; hit {
			return false
		}
		switch k.Kind {
		case "single-source":
			return true
		case "pair":
			_, hit := aff[int32(k.Aux)]
			return !hit
		case "topk":
			rs, ok := v.([]simpush.Ranked)
			if !ok {
				return false
			}
			for _, r := range rs {
				if _, hit := aff[r.Node]; hit {
					return false
				}
			}
			return true
		default:
			// Unknown kinds get no carry until someone audits their read
			// set; dropping is always safe.
			return false
		}
	}
}

// paramsCarrySafe guards per-query ε overrides: the delta BFS ran at
// depth s.deltaDepth, so an entry computed with a smaller ε — a deeper
// walk-depth bound L* — may have read adjacency outside the affected
// set's coverage and must not be carried. The canonical params encoding
// always leads with "eps=<g>" (0 = engine default), so the override is
// recoverable from the key alone.
func (s *Server) paramsCarrySafe(params string) bool {
	const pfx = "eps="
	if !strings.HasPrefix(params, pfx) {
		return false // unknown encoding: refuse rather than guess
	}
	rest := params[len(pfx):]
	if i := strings.IndexByte(rest, ';'); i >= 0 {
		rest = rest[:i]
	}
	eps, err := strconv.ParseFloat(rest, 64)
	if err != nil {
		return false
	}
	if eps == 0 {
		return s.carryDefaultSafe
	}
	opt := s.engineOpts
	opt.Epsilon = eps
	return opt.MaxLevelBound() <= s.deltaDepth
}

// DeltaCarryStats is the /statsz "delta" block: how epoch-delta cache
// carry-forward has behaved since startup. Present only when a dynamic
// source is being served with carry-forward enabled.
type DeltaCarryStats struct {
	// Depth and Budget are the resolved affected-set BFS depth and size
	// budget the commit hook runs with.
	Depth  int `json:"depth"`
	Budget int `json:"budget"`
	// Commits counts committed epoch advances seen by the hook;
	// TotalFallbacks counts those that degraded to a whole-cache drop.
	Commits        uint64 `json:"commits"`
	TotalFallbacks uint64 `json:"total_fallbacks"`
	// LastAffectedNodes is the affected-set size of the most recent
	// delta; AffectedNodesSum accumulates across all deltas.
	LastAffectedNodes uint64 `json:"last_affected_nodes"`
	AffectedNodesSum  uint64 `json:"affected_nodes_sum"`
}

// deltaStats assembles the /statsz block, or nil when carry-forward is
// not installed (static source or explicitly disabled).
func (s *Server) deltaStats() *DeltaCarryStats {
	if s.dyn == nil || s.cfg.DisableCarryForward {
		return nil
	}
	return &DeltaCarryStats{
		Depth:             s.deltaDepth,
		Budget:            s.deltaBudget,
		Commits:           s.deltas.Load(),
		TotalFallbacks:    s.deltaTotals.Load(),
		LastAffectedNodes: s.deltaAffectedLast.Load(),
		AffectedNodesSum:  s.deltaAffectedSum.Load(),
	}
}
