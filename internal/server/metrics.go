package server

import (
	"net/http"

	"github.com/simrank/simpush/internal/obs"
)

// GET /metricsz renders the serving counters in Prometheus text
// exposition format (version 0.0.4) under the simrankd_* namespace.
// Everything here is assembled from the same always-on atomics /statsz
// reads, so scraping costs no locks on the request path.
func (s *Server) handleMetricsz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeMethodNotAllowed(w, http.MethodGet)
		return
	}
	st := s.Stats()
	w.Header().Set("Content-Type", obs.ContentType)
	mw := obs.NewMetricsWriter(w)

	mw.Gauge("simrankd_uptime_seconds", "Seconds since the server started.")
	mw.Sample("simrankd_uptime_seconds", nil, st.UptimeSeconds)
	mw.Gauge("simrankd_epoch", "Highest committed graph epoch observed by a request.")
	mw.Sample("simrankd_epoch", nil, float64(st.Epoch))
	mw.Gauge("simrankd_graph_nodes", "Node count of the current graph.")
	mw.Sample("simrankd_graph_nodes", nil, float64(st.GraphN))
	mw.Gauge("simrankd_graph_edges", "Edge count of the current graph.")
	mw.Sample("simrankd_graph_edges", nil, float64(st.GraphM))
	mw.Gauge("simrankd_draining", "1 while Drain has flipped /healthz to 503.")
	mw.Sample("simrankd_draining", nil, b2f(st.Draining))

	mw.Counter("simrankd_requests_total", "HTTP requests by endpoint.")
	for i, name := range kindNames {
		mw.Sample("simrankd_requests_total", obs.L("endpoint", name), float64(s.byKind[i].Load()))
	}
	mw.Counter("simrankd_error_responses_total", "HTTP responses with status >= 400.")
	mw.Sample("simrankd_error_responses_total", nil, float64(st.ErrorCount))

	mw.Counter("simrankd_cache_hits_total", "Result-cache hits.")
	mw.Sample("simrankd_cache_hits_total", nil, float64(st.Cache.Hits))
	mw.Counter("simrankd_cache_misses_total", "Result-cache misses (engine computations started).")
	mw.Sample("simrankd_cache_misses_total", nil, float64(st.Cache.Misses))
	mw.Counter("simrankd_cache_coalesced_total", "Requests that joined an in-flight identical computation.")
	mw.Sample("simrankd_cache_coalesced_total", nil, float64(st.Cache.Coalesced))
	mw.Counter("simrankd_cache_evictions_total", "Result-cache evictions.")
	mw.Sample("simrankd_cache_evictions_total", nil, float64(st.Cache.Evictions))
	mw.Gauge("simrankd_cache_entries", "Live result-cache entries.")
	mw.Sample("simrankd_cache_entries", nil, float64(st.Cache.Entries))
	mw.Counter("simrankd_cache_carried_total", "Cache entries re-keyed to a new epoch by carry-forward.")
	mw.Sample("simrankd_cache_carried_total", nil, float64(st.Cache.Carried))
	mw.Counter("simrankd_cache_carry_dropped_total", "Carry-forward candidates dropped (affected, raced, or Total fallback).")
	mw.Sample("simrankd_cache_carry_dropped_total", nil, float64(st.Cache.CarryDropped))

	if d := st.Delta; d != nil {
		mw.Gauge("simrankd_delta_affected_nodes", "Affected-set size of the most recent epoch delta.")
		mw.Sample("simrankd_delta_affected_nodes", nil, float64(d.LastAffectedNodes))
		mw.Counter("simrankd_delta_commits_total", "Committed epoch advances seen by the carry-forward hook.")
		mw.Sample("simrankd_delta_commits_total", nil, float64(d.Commits))
		mw.Counter("simrankd_delta_total_fallbacks_total", "Epoch deltas that degraded to a whole-cache drop.")
		mw.Sample("simrankd_delta_total_fallbacks_total", nil, float64(d.TotalFallbacks))
	}
	mw.Counter("simrankd_graph_discarded_deletions_total", "Removals of never-existing edges discarded by the dynamic source.")
	mw.Sample("simrankd_graph_discarded_deletions_total", nil, float64(st.GraphDiscardedDeletions))

	adm := st.Admission
	mw.Gauge("simrankd_admission_in_flight", "Engine computations currently holding a slot.")
	mw.Sample("simrankd_admission_in_flight", nil, float64(adm.InFlight))
	mw.Gauge("simrankd_admission_queue_depth", "Requests waiting for an engine slot.")
	mw.Sample("simrankd_admission_queue_depth", nil, float64(adm.QueueDepth))
	mw.Counter("simrankd_admission_rejected_total", "Requests shed with 429 (queue full).")
	mw.Sample("simrankd_admission_rejected_total", nil, float64(adm.Rejected))
	mw.Counter("simrankd_admission_waits_total", "Slot acquisitions that had to queue.")
	mw.Sample("simrankd_admission_waits_total", nil, float64(adm.Waits))
	mw.Counter("simrankd_admission_wait_seconds_total", "Cumulative time spent queued for a slot.")
	mw.Sample("simrankd_admission_wait_seconds_total", nil, adm.WaitTotalSeconds)
	mw.Gauge("simrankd_admission_retry_after_seconds", "Retry-After a 429 issued now would carry.")
	mw.Sample("simrankd_admission_retry_after_seconds", nil, float64(adm.RetryAfterS))

	mw.Counter("simrankd_client_queries_total", "Engine queries run by the embedded client.")
	mw.Sample("simrankd_client_queries_total", nil, float64(st.Client.Queries))
	mw.Counter("simrankd_client_errors_total", "Engine queries that returned an error.")
	mw.Sample("simrankd_client_errors_total", nil, float64(st.Client.Errors))

	mw.Counter("simrankd_engine_stage_seconds_total", "Cumulative engine wall time by stage.")
	for i, name := range stageNames {
		mw.Sample("simrankd_engine_stage_seconds_total", obs.L("stage", name),
			float64(s.stageNanos[i].Load())/1e9)
	}

	if rep := st.Replication; rep != nil {
		mw.Gauge("simrankd_replication_lag", "Leader epoch minus applied epoch (followers; 0 on the leader).")
		mw.Sample("simrankd_replication_lag", nil, float64(rep.Lag))
		mw.Gauge("simrankd_replication_synced", "1 once the replica has replayed to its subscribe-time target.")
		mw.Sample("simrankd_replication_synced", nil, b2f(rep.Synced))
		mw.Gauge("simrankd_replication_diverged", "1 if the replica hit an unrecoverable replication error.")
		mw.Sample("simrankd_replication_diverged", nil, b2f(rep.Diverged))
	}

	// One histogram per (endpoint, serving path) that served anything,
	// sharing the /statsz bucket layout (converted to seconds by the
	// writer). The overflow bucket folds into +Inf.
	mw.HistogramType("simrankd_request_duration_seconds", "Request duration by endpoint and serving path.")
	bounds := LatencyBucketsMs()
	pathNames := [pathCount]string{pathEngine: "engine", pathCache: "cache"}
	for kind := range s.lat {
		for path := range s.lat[kind] {
			h := s.lat[kind][path].snapshot()
			if h == nil {
				continue
			}
			labels := obs.L("endpoint", kindNames[kind]).L("path", pathNames[path])
			mw.Histogram("simrankd_request_duration_seconds", labels,
				bounds, h.Counts, h.MeanMs*float64(h.Count))
		}
	}

	if err := mw.Err(); err != nil {
		s.logger.Warn("writing /metricsz", "error", err)
	}
}

func b2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// GET /debug/queries returns the most recent completed query traces
// (newest first) as JSON. Empty unless Config.TraceRing is set.
func (s *Server) handleDebugQueries(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeMethodNotAllowed(w, http.MethodGet)
		return
	}
	recs := s.ring.Snapshot()
	writeJSON(w, http.StatusOK, map[string]any{
		"enabled": s.ring.Enabled(),
		"count":   len(recs),
		"queries": recs,
	})
}
