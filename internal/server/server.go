// Package server is the HTTP serving subsystem behind cmd/simrankd: it
// exposes the full simpush query surface over HTTP/JSON and implements
// the three serving layers that turn the library into a daemon able to
// absorb heavy repeated traffic:
//
//  1. an epoch-aware result cache (internal/cache) keyed by
//     (epoch, kind, node, params) — entries computed on a superseded graph
//     epoch become structurally unreachable when the source advances, so
//     a cached result can never be served stale;
//  2. single-flight coalescing — N concurrent identical queries on one
//     epoch run the engine once and share the result;
//  3. admission control — a bounded in-flight limit plus a bounded wait
//     queue around engine computations; beyond both the server sheds load
//     with 429 + Retry-After instead of queueing unboundedly.
//
// Every request carries a deadline (the ?timeout parameter, clamped to a
// configured maximum) that is propagated as a context timeout into the
// engine stages, so overload cannot strand goroutines in long queries.
package server

import (
	"encoding/json"
	"fmt"
	"log/slog"
	"net/http"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/simrank/simpush"
	"github.com/simrank/simpush/internal/cache"
	"github.com/simrank/simpush/internal/obs"
)

// Config parameterizes a Server. The zero value of every field selects a
// sensible default; only Client is required.
type Config struct {
	// Client serves the queries. Required.
	Client *simpush.Client

	// CacheEntries bounds the result cache. 0 (the default) auto-sizes
	// the bound from a ~256 MB budget divided by the graph's row cost, so
	// web-scale graphs don't admit thousands of O(n) rows. Negative
	// disables result storage while keeping single-flight coalescing.
	CacheEntries int

	// MaxInFlight bounds concurrently running engine computations
	// (default 2×GOMAXPROCS).
	MaxInFlight int

	// MaxParallelism caps the per-request ?parallelism parameter (intra-
	// query workers; default GOMAXPROCS). Requests above the cap are
	// clamped, like ?timeout against MaxTimeout. Note the product
	// MaxInFlight × MaxParallelism bounds worst-case runnable goroutines;
	// see docs/performance.md for sizing guidance.
	MaxParallelism int

	// MaxQueue bounds requests waiting for an engine slot (default
	// 4×MaxInFlight). Requests beyond it receive 429 with Retry-After.
	MaxQueue int

	// DefaultTimeout is the per-request deadline when the request does not
	// set ?timeout (default 10s).
	DefaultTimeout time.Duration

	// MaxTimeout clamps the ?timeout parameter (default 60s).
	MaxTimeout time.Duration

	// MaxBatch bounds the node count of one /v1/batch request
	// (default 256).
	MaxBatch int

	// RetryAfter is the fallback Retry-After on 429 responses, in seconds
	// (default 1), used until the server has observed enough completed
	// computations to estimate queue drain time from the backlog and the
	// measured service rate.
	RetryAfter int

	// Role places the server in a replicated cluster: RoleLeader serves
	// the mutation feed at /v1/replication, RoleFollower replays one (see
	// LeaderURL) and rejects direct writes. The default, RoleStandalone,
	// is the single-process mode with no replication endpoints. Both
	// replicated roles require a *DynamicGraph source.
	Role Role

	// LeaderURL is the base URL of the leader's HTTP API (required when
	// Role is RoleFollower, ignored otherwise).
	LeaderURL string

	// ReplicationLog bounds the leader's in-memory mutation log, in
	// batches (default 1024). A follower further behind than the retained
	// window cannot catch up incrementally and must restart from the
	// leader's base graph.
	ReplicationLog int

	// DisableCarryForward turns off epoch-delta cache carry-forward for
	// dynamic sources: every epoch advance then abandons the whole cache
	// again (the pre-carry behavior). Escape hatch for debugging; the
	// default (carry enabled) is strictly better under mutation.
	DisableCarryForward bool

	// DeltaDepth overrides the affected-set BFS depth used to judge which
	// cached results a mutation can have changed. 0 (the default) uses
	// the engine's own walk-depth truncation bound L*, which covers
	// everything a default-ε query reads; setting it lower trades carry
	// coverage for cheaper deltas (entries needing deeper reads are
	// dropped instead of carried).
	DeltaDepth int

	// DeltaBudget caps the affected-set size before a delta falls back
	// to dropping the whole cache (EpochDelta.Total). 0 (the default)
	// auto-sizes to half the graph's startup node count (min 1024);
	// negative means unbounded.
	DeltaBudget int

	// TraceRing retains the last N completed query traces for GET
	// /debug/queries. 0 (the default) keeps no ring. Tracing — span
	// recording on the request path — is active when TraceRing or
	// SlowQuery is set; otherwise handlers carry a nil trace and every
	// span call is a free pointer test.
	TraceRing int

	// SlowQuery, when positive, emits one structured log line (level
	// WARN, with the request id, cache outcome and per-stage spans) for
	// every query endpoint request at least this slow. 0 disables it.
	SlowQuery time.Duration

	// Logger receives the server's structured logs (slow queries). nil
	// discards them.
	Logger *slog.Logger
}

// A cached single-source row is a dense length-n []float64 (~8n bytes),
// so a fixed entry count would admit entries × O(n) bytes on web-scale
// graphs. The default bound targets a byte budget instead.
const defaultCacheBudgetBytes = 256 << 20

func defaultCacheEntries(n int32) int {
	per := 16 * int64(n) // dense row + result metadata, with margin
	if per < 1 {
		per = 1
	}
	e := defaultCacheBudgetBytes / per
	if e > 4096 {
		e = 4096
	}
	if e < 16 {
		e = 16
	}
	return int(e)
}

func (c Config) withDefaults() Config {
	if c.CacheEntries < 0 {
		c.CacheEntries = 0
	}
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = 2 * runtime.GOMAXPROCS(0)
	}
	if c.MaxQueue <= 0 {
		c.MaxQueue = 4 * c.MaxInFlight
	}
	if c.MaxParallelism <= 0 {
		c.MaxParallelism = runtime.GOMAXPROCS(0)
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 10 * time.Second
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = 60 * time.Second
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 256
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = 1
	}
	if c.Role == "" {
		c.Role = RoleStandalone
	}
	if c.ReplicationLog <= 0 {
		c.ReplicationLog = 1024
	}
	if c.TraceRing < 0 {
		c.TraceRing = 0
	}
	if c.Logger == nil {
		c.Logger = obs.Discard()
	}
	return c
}

// Server handles the simrankd HTTP API. Construct with New, mount via
// Handler (it implements http.Handler itself), and call Drain before
// shutting the listener down so load balancers see /healthz flip first.
type Server struct {
	cfg      Config
	client   *simpush.Client
	dyn      *simpush.DynamicGraph // nil when the source is static
	cache    *cache.Cache
	adm      *admission
	mux      *http.ServeMux
	draining atomic.Bool
	start    time.Time
	rep      replication
	mutMu    sync.Mutex // leader: keeps log append order = epoch order

	ring   *obs.Ring    // last-N completed traces (nil = disabled)
	logger *slog.Logger // slow-query and serving logs

	requests   atomic.Uint64
	errors     atomic.Uint64 // responses with status >= 400
	byKind     [kindCount]atomic.Uint64
	lat        [kindCount][pathCount]latencyHist
	lastEpoch  atomic.Uint64             // highest epoch seen; drives opportunistic sweeps
	stageNanos [stageCount]atomic.Uint64 // cumulative engine-stage wall time

	// Epoch-delta carry-forward state (see delta.go). The resolved depth,
	// budget and engine options are written once in New and read-only
	// afterwards; the counters are updated by the commit hook.
	engineOpts        simpush.Options
	deltaDepth        int
	deltaBudget       int
	carryDefaultSafe  bool
	deltas            atomic.Uint64
	deltaTotals       atomic.Uint64
	deltaAffectedLast atomic.Uint64
	deltaAffectedSum  atomic.Uint64
}

// Engine stage indices for the cumulative stage-time counters surfaced
// in /statsz and /metricsz; order matches simpush.StageDurations.
const (
	stageWalk = iota
	stageSourcePush
	stageGamma
	stageReversePush
	stageCount
)

var stageNames = [stageCount]string{"walk", "source_push", "gamma", "reverse_push"}

// recordStages folds one computed result's stage durations into the
// cumulative per-stage counters (a few atomic adds — always on, even
// with tracing disabled).
func (s *Server) recordStages(d simpush.StageDurations) {
	s.stageNanos[stageWalk].Add(uint64(max(d.Walk, 0)))
	s.stageNanos[stageSourcePush].Add(uint64(max(d.SourcePush, 0)))
	s.stageNanos[stageGamma].Add(uint64(max(d.Gamma, 0)))
	s.stageNanos[stageReversePush].Add(uint64(max(d.ReversePush, 0)))
}

// endpoint indices for the per-kind request counters.
const (
	kSingleSource = iota
	kTopK
	kPair
	kBatch
	kEdges
	kReplication
	kHealth
	kStats
	kMetrics
	kDebug
	kindCount
)

var kindNames = [kindCount]string{
	"single-source", "topk", "pair", "batch", "edges", "replication", "healthz", "statsz",
	"metricsz", "debug-queries",
}

// New builds a Server around an existing Client. If the client's graph
// source is a *DynamicGraph the mutation endpoints are live; against a
// static source they answer 501.
func New(cfg Config) (*Server, error) {
	if cfg.Client == nil {
		return nil, fmt.Errorf("server: Config.Client is required")
	}
	if cfg.CacheEntries == 0 {
		cfg.CacheEntries = defaultCacheEntries(cfg.Client.Graph().N())
	}
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:    cfg,
		client: cfg.Client,
		cache:  cache.New(cfg.CacheEntries),
		adm:    newAdmission(cfg.MaxInFlight, cfg.MaxQueue),
		mux:    http.NewServeMux(),
		start:  time.Now(),
		ring:   obs.NewRing(cfg.TraceRing),
		logger: cfg.Logger,
	}
	if dyn, ok := cfg.Client.Source().(*simpush.DynamicGraph); ok {
		s.dyn = dyn
		if !cfg.DisableCarryForward {
			s.installCarryForward()
		}
	}
	if err := validateRole(cfg.Role); err != nil {
		return nil, err
	}
	s.rep.role = cfg.Role
	if cfg.Role == RoleLeader || cfg.Role == RoleFollower {
		if s.dyn == nil {
			return nil, fmt.Errorf("server: role %s requires a *DynamicGraph source", cfg.Role)
		}
		// Commit the base graph before serving: both sides of a
		// replication stream must start from epoch 1 = the loaded graph,
		// so mutation batches map 1:1 onto epochs 2, 3, ... on each.
		if _, epoch, err := s.dyn.SnapshotEpoch(); err != nil {
			return nil, fmt.Errorf("server: committing base snapshot: %w", err)
		} else {
			s.lastEpoch.Store(epoch)
		}
	}
	switch cfg.Role {
	case RoleLeader:
		s.rep.log = newRepLog(cfg.ReplicationLog)
	case RoleFollower:
		if cfg.LeaderURL == "" {
			return nil, fmt.Errorf("server: role follower requires LeaderURL")
		}
		s.rep.leaderURL = strings.TrimRight(cfg.LeaderURL, "/")
	}
	s.mux.HandleFunc("/v1/single-source", s.count(kSingleSource, s.handleSingleSource))
	s.mux.HandleFunc("/v1/topk", s.count(kTopK, s.handleTopK))
	s.mux.HandleFunc("/v1/pair", s.count(kPair, s.handlePair))
	s.mux.HandleFunc("/v1/batch", s.count(kBatch, s.handleBatch))
	s.mux.HandleFunc("/v1/edges", s.count(kEdges, s.handleEdges))
	s.mux.HandleFunc("/v1/replication", s.count(kReplication, s.handleReplication))
	s.mux.HandleFunc("/healthz", s.count(kHealth, s.handleHealthz))
	s.mux.HandleFunc("/statsz", s.count(kStats, s.handleStatsz))
	s.mux.HandleFunc("/metricsz", s.count(kMetrics, s.handleMetricsz))
	s.mux.HandleFunc("/debug/queries", s.count(kDebug, s.handleDebugQueries))
	return s, nil
}

// Handler returns the root handler of the API.
func (s *Server) Handler() http.Handler { return s }

func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// Drain flips /healthz to 503 so load balancers stop routing here, while
// all other endpoints keep serving. Call it before http.Server.Shutdown;
// pair with Client.Close once the listener has drained.
func (s *Server) Drain() { s.draining.Store(true) }

// Draining reports whether Drain has been called.
func (s *Server) Draining() bool { return s.draining.Load() }

// Cache exposes the result cache (used by tests and stats).
func (s *Server) Cache() *cache.Cache { return s.cache }

// tracing reports whether requests record spans (ring or slow-query log
// configured). When false the per-request trace stays nil and every span
// call on the request path is a free pointer test.
func (s *Server) tracing() bool {
	return s.ring != nil || s.cfg.SlowQuery > 0
}

// count is the per-endpoint middleware: request counters, the
// X-Request-Id echo (satellite of the trace layer — every response,
// including 4xx/5xx, carries the correlation id), and — for the query
// endpoints when tracing is on — the request-scoped trace with its
// /debug/queries record and slow-query log line.
func (s *Server) count(kind int, h http.HandlerFunc) http.HandlerFunc {
	traced := kind <= kEdges // query endpoints only; probes stay out of the ring
	return func(w http.ResponseWriter, r *http.Request) {
		s.requests.Add(1)
		s.byKind[kind].Add(1)
		sw := &statusWriter{ResponseWriter: w, server: s}
		id := obs.SanitizeRequestID(r.Header.Get(obs.RequestIDHeader))
		if id == "" {
			id = obs.NewRequestID()
		}
		// Set before the handler runs so error paths inherit it too.
		w.Header().Set(obs.RequestIDHeader, id)
		if !traced || !s.tracing() {
			h(sw, r)
			return
		}
		tr := obs.NewTrace(id, kindNames[kind], r.Method+" "+r.URL.RequestURI())
		h(sw, r.WithContext(obs.WithTrace(r.Context(), tr)))
		rec := tr.Finish(sw.status())
		s.ring.Add(rec)
		if s.cfg.SlowQuery > 0 && rec.DurationMs >= float64(s.cfg.SlowQuery)/float64(time.Millisecond) {
			s.logger.Warn("slow query",
				"request_id", rec.RequestID,
				"endpoint", rec.Endpoint,
				"query", rec.Query,
				"status", rec.Status,
				"epoch", rec.Epoch,
				"cache", rec.Cache,
				"duration_ms", rec.DurationMs,
				"spans", rec.Spans,
			)
		}
	}
}

// statusWriter counts error responses and remembers the status code for
// the trace record without wrapping every handler in its own
// bookkeeping.
type statusWriter struct {
	http.ResponseWriter
	server *Server
	wrote  bool
	code   int
}

func (sw *statusWriter) WriteHeader(status int) {
	if !sw.wrote {
		sw.wrote = true
		sw.code = status
		if status >= 400 {
			sw.server.errors.Add(1)
		}
	}
	sw.ResponseWriter.WriteHeader(status)
}

// status returns the response status (200 when the handler wrote a body
// without an explicit WriteHeader).
func (sw *statusWriter) status() int {
	if !sw.wrote {
		return http.StatusOK
	}
	return sw.code
}

// noteEpoch records the epoch a request pinned and opportunistically
// sweeps superseded entries when it advances. Correctness does not depend
// on the sweep (epochs are in the cache key); it only reclaims memory
// promptly on fast-mutating sources.
func (s *Server) noteEpoch(epoch uint64) {
	for {
		old := s.lastEpoch.Load()
		if old >= epoch {
			return
		}
		if s.lastEpoch.CompareAndSwap(old, epoch) {
			s.cache.Sweep(epoch)
			return
		}
	}
}

// StatsSnapshot is the /statsz payload.
type StatsSnapshot struct {
	UptimeSeconds float64           `json:"uptime_seconds"`
	Epoch         uint64            `json:"epoch"`
	GraphN        int32             `json:"graph_n"`
	GraphM        int64             `json:"graph_m"`
	Draining      bool              `json:"draining"`
	Requests      uint64            `json:"requests"`
	ErrorCount    uint64            `json:"error_responses"`
	ByEndpoint    map[string]uint64 `json:"requests_by_endpoint"`
	Cache         cache.Stats       `json:"cache"`
	Admission     AdmissionStats    `json:"admission"`
	Client        ClientStats       `json:"client"`
	Replication   *ReplicationStats `json:"replication,omitempty"`
	Delta         *DeltaCarryStats  `json:"delta,omitempty"`

	// GraphDiscardedDeletions counts RemoveEdge calls naming a
	// never-existing edge that the dynamic source discarded after failing
	// exactly one snapshot — silent no-ops surfaced for operators. Always
	// 0 for static sources.
	GraphDiscardedDeletions uint64 `json:"graph_discarded_deletions"`

	// EngineStageSeconds is the cumulative engine wall time by stage
	// (walk, source_push, gamma, reverse_push) over every computed query.
	EngineStageSeconds map[string]float64 `json:"engine_stage_seconds"`

	// LatencyBucketsMs holds the shared histogram bucket upper bounds
	// (ms); every histogram under Latency appends one overflow bucket.
	// Both fields are omitted until the server has served a request.
	LatencyBucketsMs []float64                   `json:"latency_buckets_ms,omitempty"`
	Latency          map[string]*EndpointLatency `json:"latency,omitempty"`
}

// AdmissionStats describes the admission controller's current state.
type AdmissionStats struct {
	MaxInFlight int    `json:"max_in_flight"`
	InFlight    int    `json:"in_flight"`
	MaxQueue    int    `json:"max_queue"`
	QueueDepth  int64  `json:"queue_depth"`
	Rejected    uint64 `json:"rejected"`
	// Waits counts acquisitions that found no free slot and queued;
	// WaitTotalSeconds is their cumulative queueing time.
	Waits            uint64  `json:"waits"`
	WaitTotalSeconds float64 `json:"wait_total_seconds"`
	// AvgServiceMs is the observed mean engine-slot occupancy time, and
	// RetryAfterS the Retry-After a 429 issued right now would carry
	// (backlog ÷ observed service rate, clamped).
	AvgServiceMs float64 `json:"avg_service_ms"`
	RetryAfterS  int     `json:"retry_after_s"`
}

// ClientStats mirrors simpush.ClientStats with JSON tags.
type ClientStats struct {
	Queries  uint64 `json:"queries"`
	Errors   uint64 `json:"errors"`
	InFlight int64  `json:"in_flight"`
}

// Stats assembles a point-in-time snapshot of every serving counter.
func (s *Server) Stats() StatsSnapshot {
	g := s.client.Graph()
	cs := s.client.Stats()
	snap := StatsSnapshot{
		UptimeSeconds: time.Since(s.start).Seconds(),
		Epoch:         s.lastEpoch.Load(),
		Draining:      s.draining.Load(),
		Requests:      s.requests.Load(),
		ErrorCount:    s.errors.Load(),
		ByEndpoint:    make(map[string]uint64, kindCount),
		Cache:         s.cache.Stats(),
		Admission: AdmissionStats{
			MaxInFlight:      s.cfg.MaxInFlight,
			InFlight:         s.adm.inFlight(),
			MaxQueue:         s.cfg.MaxQueue,
			QueueDepth:       s.adm.queueDepth(),
			Rejected:         s.adm.rejected.Load(),
			Waits:            s.adm.waits.Load(),
			WaitTotalSeconds: float64(s.adm.waitNanos.Load()) / 1e9,
			AvgServiceMs:     float64(s.adm.avgServiceNanos()) / 1e6,
			RetryAfterS:      s.adm.estimateRetryAfter(s.cfg.RetryAfter, maxRetryAfterSec),
		},
		Client:      ClientStats{Queries: cs.Queries, Errors: cs.Errors, InFlight: cs.InFlight},
		Replication: s.replicationStats(),
		Delta:       s.deltaStats(),
	}
	if s.dyn != nil {
		snap.GraphDiscardedDeletions = s.dyn.DiscardedDeletions()
	}
	if g != nil {
		snap.GraphN = g.N()
		snap.GraphM = g.M()
	}
	for i, name := range kindNames {
		snap.ByEndpoint[name] = s.byKind[i].Load()
	}
	snap.EngineStageSeconds = make(map[string]float64, stageCount)
	for i, name := range stageNames {
		snap.EngineStageSeconds[name] = float64(s.stageNanos[i].Load()) / 1e9
	}
	if lat := s.latencyStats(); lat != nil {
		snap.Latency = lat
		snap.LatencyBucketsMs = LatencyBucketsMs()
	}
	return snap
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeMethodNotAllowed(w, http.MethodGet)
		return
	}
	if s.draining.Load() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{"status": "draining"})
		return
	}
	if s.rep.role == RoleFollower {
		if s.rep.diverged.Load() {
			writeJSON(w, http.StatusServiceUnavailable, map[string]any{
				"status": "diverged", "error": s.rep.lastError(),
			})
			return
		}
		// A follower is not ready until it has replayed up to the leader's
		// epoch at subscribe time — routers must never see a cold follower
		// as healthy and send it traffic that expects the leader's state.
		if !s.rep.synced.Load() {
			writeJSON(w, http.StatusServiceUnavailable, map[string]any{
				"status":        "catching_up",
				"applied_epoch": s.dyn.Epoch(),
				"target_epoch":  s.rep.syncTarget.Load(),
			})
			return
		}
	}
	epoch, err := s.client.Epoch()
	if err != nil {
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{
			"status": "degraded", "error": err.Error(),
		})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"status": "ok", "epoch": epoch, "role": s.role()})
}

func (s *Server) handleStatsz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeMethodNotAllowed(w, http.MethodGet)
		return
	}
	writeJSON(w, http.StatusOK, s.Stats())
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}
