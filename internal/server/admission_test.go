package server

import (
	"testing"
	"time"
)

// TestRetryAfterAdaptsToBacklog: before any observation the fallback is
// served; once service times are known, the estimate scales with queue
// depth and in-flight load, and clamps at both ends.
func TestRetryAfterAdaptsToBacklog(t *testing.T) {
	a := newAdmission(2, 8)

	if got := a.estimateRetryAfter(3, 60); got != 3 {
		t.Fatalf("no observations: Retry-After = %d, want fallback 3", got)
	}

	// Observe a 1s mean service time.
	a.recordService(time.Second, 1)

	// Idle server: one request ahead of the newcomer at most (itself),
	// drained by 2 workers → ceil(1·1s/2) = 1s.
	if got := a.estimateRetryAfter(3, 60); got != 1 {
		t.Fatalf("idle: Retry-After = %d, want 1", got)
	}

	// Fill both slots and fake a queue: ahead = 2 in-flight + 6 queued + 1,
	// drained by 2 workers at 1s each → ceil(9/2) = 5s.
	a.slots <- struct{}{}
	a.slots <- struct{}{}
	a.queued.Store(6)
	if got := a.estimateRetryAfter(3, 60); got != 5 {
		t.Fatalf("loaded: Retry-After = %d, want 5", got)
	}

	// The cap bounds pathological estimates.
	if got := a.estimateRetryAfter(3, 4); got != 4 {
		t.Fatalf("capped: Retry-After = %d, want 4", got)
	}
	a.queued.Store(0)
	<-a.slots
	<-a.slots
}

// TestRetryAfterTracksServiceRate: faster observed service times shrink
// the estimate for the same backlog.
func TestRetryAfterTracksServiceRate(t *testing.T) {
	slow := newAdmission(1, 8)
	fast := newAdmission(1, 8)
	slow.recordService(4*time.Second, 1)
	fast.recordService(10*time.Millisecond, 1)
	slow.queued.Store(3)
	fast.queued.Store(3)

	s := slow.estimateRetryAfter(1, 60)
	f := fast.estimateRetryAfter(1, 60)
	if s <= f {
		t.Fatalf("slow service estimate %ds not above fast %ds", s, f)
	}
	if f != 1 {
		t.Fatalf("fast service: Retry-After = %d, want floor 1", f)
	}
	// 3 queued + 1 = 4 ahead at 4s each on one worker → 16s.
	if s != 16 {
		t.Fatalf("slow service: Retry-After = %d, want 16", s)
	}
}

// TestRecordServiceAveragesSlots: multi-slot completions weight the mean
// by slots held, and invalid inputs are ignored.
func TestRecordServiceAveragesSlots(t *testing.T) {
	a := newAdmission(4, 4)
	a.recordService(2*time.Second, 3)
	a.recordService(-time.Second, 1) // ignored
	a.recordService(time.Second, 0)  // ignored
	if got := a.avgServiceNanos(); got != uint64(2*time.Second) {
		t.Fatalf("avg = %d ns, want %d", got, uint64(2*time.Second))
	}
	a.recordService(0, 1)
	want := uint64(6*time.Second) / 4
	if got := a.avgServiceNanos(); got != want {
		t.Fatalf("avg after zero-duration completion = %d ns, want %d", got, want)
	}
}
