package server

import (
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// Role selects a simrankd's position in a replicated cluster.
//
// A leader applies every /v1/edges batch atomically (one batch = exactly
// one epoch advance) and records it in a bounded in-memory mutation log
// served at GET /v1/replication. A follower rejects direct writes and
// instead long-polls a leader's log, replaying each batch through the
// same atomic primitive — because both sides start from the same base
// graph and apply identical batches in identical order, their (graph,
// epoch) sequences are bit-identical, which is what lets a router treat
// "same epoch" as "same answers".
type Role string

const (
	// RoleStandalone is the default single-process mode: mutations apply
	// lazily (buffered until the next snapshot), no replication endpoints.
	RoleStandalone Role = "standalone"
	// RoleLeader serves the replication feed and applies writes eagerly.
	RoleLeader Role = "leader"
	// RoleFollower replays a leader's feed and rejects direct writes.
	RoleFollower Role = "follower"
)

// repEntry is one committed mutation batch: the edges applied and the
// epoch the batch committed at on the leader.
type repEntry struct {
	Epoch  uint64     `json:"epoch"`
	Add    [][2]int32 `json:"add,omitempty"`
	Remove [][2]int32 `json:"remove,omitempty"`
}

// replicationResponse is the GET /v1/replication payload.
type replicationResponse struct {
	Role        Role       `json:"role"`
	LeaderEpoch uint64     `json:"leader_epoch"`
	Entries     []repEntry `json:"entries"`
}

// repLog is the leader's bounded in-memory mutation log. Entries hold
// strictly increasing epochs; when the log overflows its capacity the
// oldest entries are dropped, after which a follower further behind than
// the retained window cannot catch up incrementally (it gets 410 Gone
// and must restart from the leader's base graph).
type repLog struct {
	mu      sync.Mutex
	cap     int
	entries []repEntry
	trimmed bool
	wake    chan struct{} // closed and replaced on every append
}

func newRepLog(capacity int) *repLog {
	return &repLog{cap: capacity, wake: make(chan struct{})}
}

func (l *repLog) append(e repEntry) {
	l.mu.Lock()
	l.entries = append(l.entries, e)
	if len(l.entries) > l.cap {
		drop := len(l.entries) - l.cap
		l.entries = append(l.entries[:0], l.entries[drop:]...)
		l.trimmed = true
	}
	close(l.wake)
	l.wake = make(chan struct{})
	l.mu.Unlock()
}

// wait returns a channel closed at the next append.
func (l *repLog) wait() <-chan struct{} {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.wake
}

func (l *repLog) len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.entries)
}

// collect returns the entries with epoch > since, in order. ok is false
// when the log no longer reaches back to since+1 — the caller is behind
// the retained window and cannot be served incrementally.
func (l *repLog) collect(since, leaderEpoch uint64) (out []repEntry, ok bool) {
	if since >= leaderEpoch {
		return nil, true
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	first := leaderEpoch + 1 // log empty: nothing needed below leaderEpoch+1
	if len(l.entries) > 0 {
		first = l.entries[0].Epoch
	}
	if since+1 < first {
		return nil, false
	}
	for _, e := range l.entries {
		if e.Epoch > since {
			out = append(out, e)
		}
	}
	return out, true
}

// replication is the server's role-dependent replication state.
type replication struct {
	role      Role
	log       *repLog // leader only
	leaderURL string  // follower only

	leaderEpoch atomicMaxU64 // follower: highest leader epoch seen
	syncTarget  atomicMaxU64 // follower: leader epoch at subscribe time
	synced      atomic.Bool
	diverged    atomic.Bool

	errMu   sync.Mutex
	lastErr string
}

func (r *replication) setErr(err error) {
	r.errMu.Lock()
	r.lastErr = err.Error()
	r.errMu.Unlock()
}

func (r *replication) lastError() string {
	r.errMu.Lock()
	defer r.errMu.Unlock()
	return r.lastErr
}

// ReplicationStats is the /statsz replication block (present when the
// server runs with a leader or follower role).
type ReplicationStats struct {
	Role         Role   `json:"role"`
	LeaderEpoch  uint64 `json:"leader_epoch"`
	AppliedEpoch uint64 `json:"applied_epoch"`
	Lag          int64  `json:"lag"`
	Synced       bool   `json:"synced"`
	Diverged     bool   `json:"diverged,omitempty"`
	LogLen       int    `json:"log_len,omitempty"`
	LastError    string `json:"last_error,omitempty"`
}

// replicationStats assembles the /statsz block; nil for standalone.
func (s *Server) replicationStats() *ReplicationStats {
	switch s.rep.role {
	case RoleLeader:
		epoch := s.dyn.Epoch()
		return &ReplicationStats{
			Role:         RoleLeader,
			LeaderEpoch:  epoch,
			AppliedEpoch: epoch,
			Synced:       true,
			LogLen:       s.rep.log.len(),
		}
	case RoleFollower:
		applied := s.dyn.Epoch()
		leader := s.rep.leaderEpoch.Load()
		if leader < applied {
			leader = applied
		}
		return &ReplicationStats{
			Role:         RoleFollower,
			LeaderEpoch:  leader,
			AppliedEpoch: applied,
			Lag:          int64(leader - applied),
			Synced:       s.rep.synced.Load(),
			Diverged:     s.rep.diverged.Load(),
			LastError:    s.rep.lastError(),
		}
	default:
		return nil
	}
}

// applyLeaderBatch commits one mutation batch on a leader: apply + epoch
// advance + log append happen in one critical section, so the log's entry
// order always matches the epoch order followers will replay.
func (s *Server) applyLeaderBatch(adds, removes [][2]int32) (uint64, error) {
	s.mutMu.Lock()
	_, epoch, err := s.dyn.ApplyEdges(adds, removes)
	if err == nil {
		s.rep.log.append(repEntry{Epoch: epoch, Add: adds, Remove: removes})
	}
	s.mutMu.Unlock()
	if err != nil {
		return 0, err
	}
	s.noteEpoch(epoch)
	return epoch, nil
}

// maxReplicationWait caps the ?wait long-poll parameter.
const maxReplicationWait = 55 * time.Second

// GET /v1/replication?since=epoch&wait=duration — the leader's mutation
// feed. Returns every logged batch with epoch > since; with wait > 0 and
// nothing to send, blocks until a batch commits or the wait expires
// (returning an empty entry list, which doubles as a leader heartbeat).
func (s *Server) handleReplication(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeMethodNotAllowed(w, http.MethodGet)
		return
	}
	if s.rep.role != RoleLeader {
		s.writeError(w, httpErrf(http.StatusNotImplemented, "not_leader",
			"replication feed is only served by a leader (role=%s)", s.role()))
		return
	}
	var since uint64
	if v := r.URL.Query().Get("since"); v != "" {
		u, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			s.writeError(w, httpErrf(http.StatusBadRequest, "bad_parameter", "since: %v", err))
			return
		}
		since = u
	}
	var wait time.Duration
	if v := r.URL.Query().Get("wait"); v != "" {
		d, err := time.ParseDuration(v)
		if err != nil || d < 0 {
			s.writeError(w, httpErrf(http.StatusBadRequest, "bad_parameter", "wait: must be a non-negative duration"))
			return
		}
		if d > maxReplicationWait {
			d = maxReplicationWait
		}
		wait = d
	}

	deadline := time.Now().Add(wait)
	for {
		wake := s.rep.log.wait()
		leaderEpoch := s.dyn.Epoch()
		entries, ok := s.rep.log.collect(since, leaderEpoch)
		if !ok {
			s.writeError(w, httpErrf(http.StatusGone, "log_trimmed",
				"replication log no longer reaches epoch %d (oldest retained batch is newer); restart the follower from the leader's base graph", since))
			return
		}
		remaining := time.Until(deadline)
		if len(entries) > 0 || remaining <= 0 {
			writeJSON(w, http.StatusOK, replicationResponse{
				Role: RoleLeader, LeaderEpoch: leaderEpoch, Entries: entries,
			})
			return
		}
		timer := time.NewTimer(remaining)
		select {
		case <-wake:
			timer.Stop()
		case <-timer.C:
		case <-r.Context().Done():
			timer.Stop()
			return
		}
	}
}

// role returns the server's replication role (RoleStandalone when
// replication is off).
func (s *Server) role() Role {
	if s.rep.role == "" {
		return RoleStandalone
	}
	return s.rep.role
}

// atomicMaxU64 is a monotonic uint64: Raise only ever increases it.
type atomicMaxU64 struct{ v atomic.Uint64 }

func (a *atomicMaxU64) Load() uint64 { return a.v.Load() }
func (a *atomicMaxU64) Raise(x uint64) {
	for {
		old := a.v.Load()
		if old >= x || a.v.CompareAndSwap(old, x) {
			return
		}
	}
}

func validateRole(r Role) error {
	switch r {
	case "", RoleStandalone, RoleLeader, RoleFollower:
		return nil
	}
	return fmt.Errorf("server: unknown role %q (want leader, follower or standalone)", r)
}
