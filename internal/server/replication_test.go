package server

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"github.com/simrank/simpush"
)

// newLeaderServer builds a leader over a deterministic test graph.
func newLeaderServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	cfg.Role = RoleLeader
	dyn := simpush.DynamicFromGraph(testGraph(t))
	cfg.Client = newClient(t, dyn)
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// newFollowerServer builds a follower of leaderURL over the same base
// graph the leader started from.
func newFollowerServer(t *testing.T, leaderURL string) *Server {
	t.Helper()
	dyn := simpush.DynamicFromGraph(testGraph(t))
	s, err := New(Config{Client: newClient(t, dyn), Role: RoleFollower, LeaderURL: leaderURL})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestRepLogCollectAndTrim(t *testing.T) {
	l := newRepLog(3)
	for e := uint64(2); e <= 6; e++ { // epochs 2..6; cap 3 keeps 4,5,6
		l.append(repEntry{Epoch: e})
	}
	if got := l.len(); got != 3 {
		t.Fatalf("log len = %d, want 3", got)
	}
	if entries, ok := l.collect(3, 6); !ok || len(entries) != 3 || entries[0].Epoch != 4 {
		t.Fatalf("collect(3) = %v ok=%v, want epochs 4..6", entries, ok)
	}
	if _, ok := l.collect(2, 6); ok {
		t.Fatal("collect(2) must report a trimmed gap (epoch 3 is gone)")
	}
	if entries, ok := l.collect(6, 6); !ok || len(entries) != 0 {
		t.Fatalf("caught-up collect = %v ok=%v, want empty ok", entries, ok)
	}
}

func TestReplicationRoleValidation(t *testing.T) {
	if _, err := New(Config{Client: newClient(t, testGraph(t)), Role: RoleLeader}); err == nil {
		t.Fatal("leader over a static source must be rejected")
	}
	dyn := simpush.DynamicFromGraph(testGraph(t))
	if _, err := New(Config{Client: newClient(t, dyn), Role: RoleFollower}); err == nil {
		t.Fatal("follower without LeaderURL must be rejected")
	}
	if _, err := New(Config{Client: newClient(t, dyn), Role: "observer"}); err == nil {
		t.Fatal("unknown role must be rejected")
	}
}

// TestLeaderMutationIsAtomicAndLogged: a leader batch advances the epoch
// exactly once, reports it in the response, and lands in the feed; an
// invalid batch applies nothing.
func TestLeaderMutationIsAtomicAndLogged(t *testing.T) {
	s := newLeaderServer(t, Config{})

	rec := doReq(s, http.MethodPost, "/v1/edges", `{"edges":[{"from":0,"to":9},{"from":9,"to":0}]}`)
	if rec.Code != 200 {
		t.Fatalf("leader edge batch = %d (%s)", rec.Code, rec.Body)
	}
	body := decodeBody(t, rec)
	if body["epoch"].(float64) != 2 {
		t.Fatalf("batch committed at epoch %v, want 2 (boot=1)", body["epoch"])
	}

	// An unmatched removal rejects the whole batch without mutating.
	rec = doReq(s, http.MethodDelete, "/v1/edges", `{"edges":[{"from":0,"to":9},{"from":7,"to":7}]}`)
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("bad removal batch = %d, want 400", rec.Code)
	}
	if epoch := s.dyn.Epoch(); epoch != 2 {
		t.Fatalf("rejected batch advanced epoch to %d", epoch)
	}

	rec = doReq(s, http.MethodGet, "/v1/replication?since=1", "")
	if rec.Code != 200 {
		t.Fatalf("replication feed = %d (%s)", rec.Code, rec.Body)
	}
	feed := decodeBody(t, rec)
	if feed["leader_epoch"].(float64) != 2 {
		t.Fatalf("leader_epoch = %v, want 2", feed["leader_epoch"])
	}
	entries := feed["entries"].([]any)
	if len(entries) != 1 {
		t.Fatalf("feed has %d entries, want 1", len(entries))
	}
}

func TestReplicationFeedOnlyOnLeader(t *testing.T) {
	s, _ := newDynamicServer(t, Config{})
	if rec := doReq(s, http.MethodGet, "/v1/replication?since=0", ""); rec.Code != http.StatusNotImplemented {
		t.Fatalf("standalone replication feed = %d, want 501", rec.Code)
	}
}

func TestReplicationLongPollWakesOnCommit(t *testing.T) {
	s := newLeaderServer(t, Config{})
	done := make(chan map[string]any, 1)
	go func() {
		rec := doReq(s, http.MethodGet, "/v1/replication?since=1&wait=10s", "")
		done <- decodeBody(t, rec)
	}()
	time.Sleep(50 * time.Millisecond) // let the poll park
	if rec := doReq(s, http.MethodPost, "/v1/edges", `{"from":1,"to":2}`); rec.Code != 200 {
		t.Fatalf("edge add = %d", rec.Code)
	}
	select {
	case feed := <-done:
		if len(feed["entries"].([]any)) != 1 {
			t.Fatalf("long-poll returned %v, want the committed batch", feed)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("long-poll did not wake on commit")
	}
}

func TestFollowerRejectsDirectWrites(t *testing.T) {
	f := newFollowerServer(t, "http://leader.invalid")
	rec := doReq(f, http.MethodPost, "/v1/edges", `{"from":0,"to":1}`)
	if rec.Code != http.StatusConflict {
		t.Fatalf("write on follower = %d, want 409", rec.Code)
	}
	if body := decodeBody(t, rec); body["code"] != "not_leader" {
		t.Fatalf("code = %v, want not_leader", body["code"])
	}
}

// TestFollowerConvergesToLeader is the end-to-end replication contract:
// mutations on the leader reach the follower, epochs advance
// monotonically to the leader's, and same-epoch scores are bit-identical.
func TestFollowerConvergesToLeader(t *testing.T) {
	leader := newLeaderServer(t, Config{})
	lts := httptest.NewServer(leader.Handler())
	defer lts.Close()

	// Mutate the leader before the follower subscribes, so the follower
	// starts genuinely behind.
	for i := 0; i < 3; i++ {
		rec := doReq(leader, http.MethodPost, "/v1/edges", fmt.Sprintf(`{"from":%d,"to":%d}`, i, i+50))
		if rec.Code != 200 {
			t.Fatalf("leader mutation %d = %d", i, rec.Code)
		}
	}

	follower := newFollowerServer(t, lts.URL)
	if rec := doReq(follower, http.MethodGet, "/healthz", ""); rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("cold follower healthz = %d, want 503 catching_up", rec.Code)
	} else if body := decodeBody(t, rec); body["status"] != "catching_up" {
		t.Fatalf("cold follower status = %v, want catching_up", body["status"])
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	follower.StartReplication(ctx)

	deadline := time.Now().Add(10 * time.Second)
	for {
		if rec := doReq(follower, http.MethodGet, "/healthz", ""); rec.Code == 200 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("follower never caught up: %+v", follower.replicationStats())
		}
		time.Sleep(20 * time.Millisecond)
	}

	// One more leader batch after sync: the long-poll should deliver it
	// promptly and epochs must match exactly.
	rec := doReq(leader, http.MethodPost, "/v1/edges", `{"from":5,"to":99}`)
	if rec.Code != 200 {
		t.Fatalf("post-sync mutation = %d", rec.Code)
	}
	wantEpoch := uint64(decodeBody(t, rec)["epoch"].(float64))
	for follower.dyn.Epoch() != wantEpoch {
		if time.Now().After(deadline) {
			t.Fatalf("follower lag never drained: at %d, leader at %d", follower.dyn.Epoch(), wantEpoch)
		}
		time.Sleep(20 * time.Millisecond)
	}

	// Bit-identical same-epoch scores: identical seeded query on both.
	const q = "/v1/single-source?node=1&seed=42&dense=1"
	lrec := doReq(leader, http.MethodGet, q, "")
	frec := doReq(follower, http.MethodGet, q, "")
	if lrec.Code != 200 || frec.Code != 200 {
		t.Fatalf("query: leader=%d follower=%d", lrec.Code, frec.Code)
	}
	lb, fb := decodeBody(t, lrec), decodeBody(t, frec)
	if lb["epoch"].(float64) != fb["epoch"].(float64) {
		t.Fatalf("epoch diverged: leader=%v follower=%v", lb["epoch"], fb["epoch"])
	}
	ls, fs := lb["dense_scores"].([]any), fb["dense_scores"].([]any)
	if len(ls) != len(fs) {
		t.Fatalf("score lengths diverge: %d vs %d", len(ls), len(fs))
	}
	for i := range ls {
		if ls[i].(float64) != fs[i].(float64) {
			t.Fatalf("scores diverge at node %d: %v vs %v", i, ls[i], fs[i])
		}
	}

	// Replication stats reflect the steady state.
	stats := follower.replicationStats()
	if stats.Role != RoleFollower || stats.Lag != 0 || !stats.Synced {
		t.Fatalf("follower stats = %+v, want synced role=follower lag=0", stats)
	}
	if lstats := leader.replicationStats(); lstats.Role != RoleLeader || lstats.LogLen != 4 {
		t.Fatalf("leader stats = %+v, want role=leader log_len=4", lstats)
	}
}

// TestFollowerBehindTrimmedLogDiverges: a follower asking for history the
// bounded log no longer holds gets 410 and marks itself diverged (503
// from /healthz) instead of serving quietly stale data as healthy.
func TestFollowerBehindTrimmedLogDiverges(t *testing.T) {
	leader := newLeaderServer(t, Config{ReplicationLog: 2})
	lts := httptest.NewServer(leader.Handler())
	defer lts.Close()
	for i := 0; i < 5; i++ { // epochs 2..6; log keeps 5,6
		rec := doReq(leader, http.MethodPost, "/v1/edges", fmt.Sprintf(`{"from":%d,"to":%d}`, i, i+40))
		if rec.Code != 200 {
			t.Fatalf("mutation %d = %d", i, rec.Code)
		}
	}
	follower := newFollowerServer(t, lts.URL)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	follower.StartReplication(ctx)

	deadline := time.Now().Add(5 * time.Second)
	for !follower.rep.diverged.Load() {
		if time.Now().After(deadline) {
			t.Fatal("follower behind a trimmed log never marked itself diverged")
		}
		time.Sleep(10 * time.Millisecond)
	}
	rec := doReq(follower, http.MethodGet, "/healthz", "")
	if rec.Code != http.StatusServiceUnavailable || decodeBody(t, rec)["status"] != "diverged" {
		t.Fatalf("diverged follower healthz = %d %s, want 503 diverged", rec.Code, rec.Body)
	}
}

// TestStatszReplicationBlock: standalone omits the block; leader and
// follower report it.
func TestStatszReplicationBlock(t *testing.T) {
	s, _ := newDynamicServer(t, Config{})
	if body := decodeBody(t, doReq(s, http.MethodGet, "/statsz", "")); body["replication"] != nil {
		t.Fatalf("standalone statsz has replication block: %v", body["replication"])
	}
	l := newLeaderServer(t, Config{})
	body := decodeBody(t, doReq(l, http.MethodGet, "/statsz", ""))
	repBlock, ok := body["replication"].(map[string]any)
	if !ok || repBlock["role"] != "leader" {
		t.Fatalf("leader statsz replication = %v", body["replication"])
	}
}
