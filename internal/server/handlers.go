package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"

	"github.com/simrank/simpush"
	"github.com/simrank/simpush/internal/cache"
	"github.com/simrank/simpush/internal/obs"
)

// httpError carries an HTTP status plus a stable machine-readable code;
// every error response has the shape {"error": msg, "code": code}.
type httpError struct {
	status int
	code   string
	msg    string
}

func (e *httpError) Error() string { return e.msg }

func httpErrf(status int, code, format string, args ...any) *httpError {
	return &httpError{status: status, code: code, msg: fmt.Sprintf(format, args...)}
}

// mapError classifies an error from the query path into an HTTP response.
func mapError(err error) *httpError {
	var he *httpError
	switch {
	case errors.As(err, &he):
		return he
	case errors.Is(err, simpush.ErrNodeOutOfRange):
		return httpErrf(http.StatusNotFound, "node_not_found", "%v", err)
	case errors.Is(err, simpush.ErrInvalidOptions):
		return httpErrf(http.StatusBadRequest, "invalid_options", "%v", err)
	case errors.Is(err, errSaturated):
		return httpErrf(http.StatusTooManyRequests, "saturated", "%v", err)
	case errors.Is(err, simpush.ErrClientClosed):
		return httpErrf(http.StatusServiceUnavailable, "shutting_down", "%v", err)
	case errors.Is(err, context.DeadlineExceeded):
		return httpErrf(http.StatusGatewayTimeout, "deadline_exceeded", "request deadline exceeded")
	case errors.Is(err, context.Canceled):
		// 499: nginx's "client closed request"; the client is gone, the
		// status is for the access log.
		return httpErrf(499, "client_closed_request", "client closed request")
	default:
		return httpErrf(http.StatusInternalServerError, "internal", "%v", err)
	}
}

// maxRetryAfterSec clamps the adaptive Retry-After estimate so a burst of
// pathologically slow queries cannot tell clients to stay away for hours.
const maxRetryAfterSec = 60

func (s *Server) writeError(w http.ResponseWriter, he *httpError) {
	if he.status == http.StatusTooManyRequests {
		// Derived from the live backlog and observed service rate, not a
		// constant: under a shallow queue clients come back almost at once,
		// under a deep one they actually wait long enough to find a slot.
		sec := s.adm.estimateRetryAfter(s.cfg.RetryAfter, maxRetryAfterSec)
		w.Header().Set("Retry-After", strconv.Itoa(sec))
	}
	writeJSON(w, he.status, errorBody(w, he.msg, he.code))
}

// errorBody builds the standard error payload, echoing the request id
// (set on the response header by the middleware before the handler ran)
// so a client holding only the error JSON can still quote the id.
func errorBody(w http.ResponseWriter, msg, code string) map[string]string {
	body := map[string]string{"error": msg, "code": code}
	if id := w.Header().Get(obs.RequestIDHeader); id != "" {
		body["request_id"] = id
	}
	return body
}

func writeMethodNotAllowed(w http.ResponseWriter, allow ...string) {
	w.Header().Set("Allow", strings.Join(allow, ", "))
	writeJSON(w, http.StatusMethodNotAllowed, errorBody(w, "method not allowed", "method_not_allowed"))
}

// queryParams is the parsed, canonicalized per-query parameter set. Its
// canonical encoding doubles as the cache-key params component, so two
// requests spelled differently ("eps=0.05" vs "eps=5e-2") share an entry.
type queryParams struct {
	eps, delta  float64
	seed        uint64
	hasSeed     bool
	maxWalks    int
	hasWalks    bool
	parallelism int
}

func (s *Server) parseQueryParams(r *http.Request) (queryParams, *httpError) {
	var p queryParams
	q := r.URL.Query()
	if v := q.Get("eps"); v != "" {
		f, err := strconv.ParseFloat(v, 64)
		if err != nil {
			return p, httpErrf(http.StatusBadRequest, "bad_parameter", "eps: %v", err)
		}
		p.eps = f
	}
	if v := q.Get("delta"); v != "" {
		f, err := strconv.ParseFloat(v, 64)
		if err != nil {
			return p, httpErrf(http.StatusBadRequest, "bad_parameter", "delta: %v", err)
		}
		p.delta = f
	}
	if v := q.Get("seed"); v != "" {
		u, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			return p, httpErrf(http.StatusBadRequest, "bad_parameter", "seed: %v", err)
		}
		p.seed, p.hasSeed = u, true
	}
	if v := q.Get("max_walks"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil {
			return p, httpErrf(http.StatusBadRequest, "bad_parameter", "max_walks: %v", err)
		}
		p.maxWalks, p.hasWalks = n, true
	}
	if v := q.Get("parallelism"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil {
			return p, httpErrf(http.StatusBadRequest, "bad_parameter", "parallelism: %v", err)
		}
		if n < 0 {
			return p, httpErrf(http.StatusBadRequest, "bad_parameter", "parallelism must be >= 0")
		}
		// Clamp to the server-side cap (like ?timeout against MaxTimeout);
		// the clamped value is what forms the cache key, since the worker
		// count is part of the result's determinism contract.
		if n > s.cfg.MaxParallelism {
			n = s.cfg.MaxParallelism
		}
		if n == 1 {
			n = 0 // k=1 is the serial default; share its cache entries
		}
		p.parallelism = n
	}
	return p, nil
}

func (p queryParams) options() []simpush.QueryOption {
	var opts []simpush.QueryOption
	if p.eps != 0 {
		opts = append(opts, simpush.WithEpsilon(p.eps))
	}
	if p.delta != 0 {
		opts = append(opts, simpush.WithDelta(p.delta))
	}
	if p.hasSeed {
		opts = append(opts, simpush.WithSeed(p.seed))
	}
	if p.hasWalks {
		opts = append(opts, simpush.WithMaxWalks(p.maxWalks))
	}
	if p.parallelism > 1 {
		opts = append(opts, simpush.WithParallelism(p.parallelism))
	}
	return opts
}

func (p queryParams) canonical() string {
	var b strings.Builder
	fmt.Fprintf(&b, "eps=%g;delta=%g", p.eps, p.delta)
	if p.hasSeed {
		fmt.Fprintf(&b, ";seed=%d", p.seed)
	}
	if p.hasWalks {
		fmt.Fprintf(&b, ";walks=%d", p.maxWalks)
	}
	if p.parallelism > 1 {
		// Part of the key: different worker counts give bitwise-different
		// (equally valid) results, which must not share an entry.
		fmt.Fprintf(&b, ";par=%d", p.parallelism)
	}
	return b.String()
}

func parseNode(r *http.Request, name string) (int32, *httpError) {
	v := r.URL.Query().Get(name)
	if v == "" {
		return 0, httpErrf(http.StatusBadRequest, "missing_parameter", "missing required parameter %q", name)
	}
	n, err := strconv.ParseInt(v, 10, 32)
	if err != nil {
		return 0, httpErrf(http.StatusBadRequest, "bad_parameter", "%s: %v", name, err)
	}
	return int32(n), nil
}

// requestCtx derives the per-request deadline context: ?timeout= (clamped
// to MaxTimeout) or the configured default. The deadline propagates into
// the engine stages, interrupting walks and pushes mid-query.
func (s *Server) requestCtx(r *http.Request) (context.Context, context.CancelFunc, *httpError) {
	d := s.cfg.DefaultTimeout
	if v := r.URL.Query().Get("timeout"); v != "" {
		parsed, err := time.ParseDuration(v)
		if err != nil {
			return nil, nil, httpErrf(http.StatusBadRequest, "bad_parameter", "timeout: %v", err)
		}
		if parsed <= 0 {
			return nil, nil, httpErrf(http.StatusBadRequest, "bad_parameter", "timeout must be positive")
		}
		d = parsed
	}
	if d > s.cfg.MaxTimeout {
		d = s.cfg.MaxTimeout
	}
	ctx, cancel := context.WithTimeout(r.Context(), d)
	return ctx, cancel, nil
}

// scoreEntry is one sparse score-vector entry.
type scoreEntry struct {
	Node  int32   `json:"node"`
	Score float64 `json:"score"`
}

func sparseScores(scores []float64) []scoreEntry {
	out := make([]scoreEntry, 0, 64)
	for v, sc := range scores {
		if sc != 0 {
			out = append(out, scoreEntry{Node: int32(v), Score: sc})
		}
	}
	return out
}

func rankedEntries(rs []simpush.Ranked) []scoreEntry {
	out := make([]scoreEntry, len(rs))
	for i, r := range rs {
		out[i] = scoreEntry{Node: r.Node, Score: r.Score}
	}
	return out
}

// pinView snapshots the source once for this request, pinning the epoch
// every cache key and computation of the request uses, and records the
// snapshot span plus the pinned epoch on the request trace.
func (s *Server) pinView(ctx context.Context) (*simpush.View, *httpError) {
	tr := obs.FromContext(ctx)
	t0 := tr.Now()
	view, err := s.client.View(ctx)
	if err != nil {
		return nil, mapError(err)
	}
	tr.SpanSince("snapshot", t0)
	tr.SetEpoch(view.Epoch())
	s.noteEpoch(view.Epoch())
	return view, nil
}

// admitted wraps an engine computation in admission control: it consumes
// one in-flight slot (possibly waiting in the bounded queue) for the
// duration of compute. A queued wait becomes an admission_wait span.
//
// The trace is passed explicitly rather than read from ctx: a coalesced
// computation runs under the cache's flight context, which is detached
// from any single request, so only the leader's captured trace reaches
// this point.
func admitted[T any](s *Server, ctx context.Context, tr *obs.Trace, compute func() (T, error)) (T, error) {
	var zero T
	wait, err := s.adm.acquire(ctx)
	if err != nil {
		return zero, err
	}
	if wait > 0 && tr.Enabled() {
		tr.Span("admission_wait", time.Now().Add(-wait), wait)
	}
	t0 := time.Now()
	defer func() {
		s.adm.recordService(time.Since(t0), 1)
		s.adm.release()
	}()
	return compute()
}

// flightCompute wraps a coalesced engine computation: the flight context
// the cache supplies (cancelled only when every interested caller has
// left) is capped by the server-side maximum timeout, and the work runs
// under admission control.
func flightCompute[T any](s *Server, fctx context.Context, tr *obs.Trace, compute func(context.Context) (T, error)) (any, error) {
	cctx, cancel := context.WithTimeout(fctx, s.cfg.MaxTimeout)
	defer cancel()
	return admitted(s, cctx, tr, func() (T, error) {
		return compute(cctx)
	})
}

// noteEngineResult folds one computed result's stage durations into the
// cumulative stage counters and, when tracing, into the leader's trace
// as four engine-stage spans.
func (s *Server) noteEngineResult(tr *obs.Trace, d simpush.StageDurations) {
	s.recordStages(d)
	tr.EngineStages(d.Walk, d.SourcePush, d.Gamma, d.ReversePush)
}

// outcomePath maps a cache outcome to a latency-histogram path: only the
// caller that actually ran the engine is an engine sample; hits and
// coalesced shares both measure the cache/wait path.
func outcomePath(o cache.Outcome) int {
	if o == cache.Computed {
		return pathEngine
	}
	return pathCache
}

// GET /v1/single-source?node=&eps=&delta=&seed=&max_walks=&timeout=&dense=
func (s *Server) handleSingleSource(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeMethodNotAllowed(w, http.MethodGet)
		return
	}
	start := time.Now()
	u, herr := parseNode(r, "node")
	if herr != nil {
		s.writeError(w, herr)
		return
	}
	qp, herr := s.parseQueryParams(r)
	if herr != nil {
		s.writeError(w, herr)
		return
	}
	ctx, cancel, herr := s.requestCtx(r)
	if herr != nil {
		s.writeError(w, herr)
		return
	}
	defer cancel()
	view, herr := s.pinView(ctx)
	if herr != nil {
		s.writeError(w, herr)
		return
	}

	tr := obs.FromContext(r.Context())
	key := cache.Key{Epoch: view.Epoch(), Kind: "single-source", Node: u, Params: qp.canonical()}
	cStart := tr.Now()
	v, outcome, err := s.cache.Do(ctx, key, func(fctx context.Context) (any, error) {
		return flightCompute(s, fctx, tr, func(cctx context.Context) (*simpush.Result, error) {
			res, err := view.SingleSource(cctx, u, qp.options()...)
			if err != nil {
				return nil, err
			}
			s.noteEngineResult(tr, res.Durations)
			return res, nil
		})
	})
	tr.SpanSince("cache", cStart)
	if err != nil {
		s.writeError(w, mapError(err))
		return
	}
	tr.SetCache(outcome.String())
	s.observeLatency(kSingleSource, outcomePath(outcome), time.Since(start))
	res := v.(*simpush.Result)

	resp := map[string]any{
		"node":  u,
		"epoch": view.Epoch(),
		"cache": outcome.String(),
		"n":     len(res.Scores),
		"l":     res.L,
		"walks": res.Walks,
	}
	if r.URL.Query().Get("dense") == "1" {
		resp["dense_scores"] = res.Scores
	} else {
		sp := sparseScores(res.Scores)
		resp["nnz"] = len(sp)
		resp["scores"] = sp
	}
	writeJSON(w, http.StatusOK, resp)
}

// GET /v1/topk?node=&k=&eps=&delta=&seed=&max_walks=&timeout=
func (s *Server) handleTopK(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeMethodNotAllowed(w, http.MethodGet)
		return
	}
	start := time.Now()
	u, herr := parseNode(r, "node")
	if herr != nil {
		s.writeError(w, herr)
		return
	}
	k := 10
	if v := r.URL.Query().Get("k"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			s.writeError(w, httpErrf(http.StatusBadRequest, "bad_parameter", "k must be a positive integer"))
			return
		}
		k = n
	}
	qp, herr := s.parseQueryParams(r)
	if herr != nil {
		s.writeError(w, herr)
		return
	}
	ctx, cancel, herr := s.requestCtx(r)
	if herr != nil {
		s.writeError(w, herr)
		return
	}
	defer cancel()
	view, herr := s.pinView(ctx)
	if herr != nil {
		s.writeError(w, herr)
		return
	}

	tr := obs.FromContext(r.Context())
	key := cache.Key{Epoch: view.Epoch(), Kind: "topk", Node: u, Aux: int64(k), Params: qp.canonical()}
	cStart := tr.Now()
	v, outcome, err := s.cache.Do(ctx, key, func(fctx context.Context) (any, error) {
		return flightCompute(s, fctx, tr, func(cctx context.Context) ([]simpush.Ranked, error) {
			// Run the underlying single-source query directly (View.TopK is
			// exactly this) so the stage durations are available for the
			// trace and the cumulative counters.
			res, err := view.SingleSource(cctx, u, qp.options()...)
			if err != nil {
				return nil, err
			}
			s.noteEngineResult(tr, res.Durations)
			return simpush.TopK(res.Scores, k, u), nil
		})
	})
	tr.SpanSince("cache", cStart)
	if err != nil {
		s.writeError(w, mapError(err))
		return
	}
	tr.SetCache(outcome.String())
	s.observeLatency(kTopK, outcomePath(outcome), time.Since(start))
	writeJSON(w, http.StatusOK, map[string]any{
		"node":    u,
		"k":       k,
		"epoch":   view.Epoch(),
		"cache":   outcome.String(),
		"results": rankedEntries(v.([]simpush.Ranked)),
	})
}

// GET /v1/pair?u=&v=&eps=&delta=&seed=&max_walks=&timeout=
func (s *Server) handlePair(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeMethodNotAllowed(w, http.MethodGet)
		return
	}
	start := time.Now()
	u, herr := parseNode(r, "u")
	if herr != nil {
		s.writeError(w, herr)
		return
	}
	vNode, herr := parseNode(r, "v")
	if herr != nil {
		s.writeError(w, herr)
		return
	}
	qp, herr := s.parseQueryParams(r)
	if herr != nil {
		s.writeError(w, herr)
		return
	}
	ctx, cancel, herr := s.requestCtx(r)
	if herr != nil {
		s.writeError(w, herr)
		return
	}
	defer cancel()
	view, herr := s.pinView(ctx)
	if herr != nil {
		s.writeError(w, herr)
		return
	}

	tr := obs.FromContext(r.Context())
	key := cache.Key{Epoch: view.Epoch(), Kind: "pair", Node: u, Aux: int64(vNode), Params: qp.canonical()}
	cStart := tr.Now()
	val, outcome, err := s.cache.Do(ctx, key, func(fctx context.Context) (any, error) {
		return flightCompute(s, fctx, tr, func(cctx context.Context) (float64, error) {
			// Inline View.Pair (target check + single-source + read-off) so
			// the stage durations are available for the trace and counters.
			if g := view.Graph(); !g.HasNode(vNode) {
				return 0, fmt.Errorf("simpush: %w: target node %d not in [0, %d)",
					simpush.ErrNodeOutOfRange, vNode, g.N())
			}
			res, err := view.SingleSource(cctx, u, qp.options()...)
			if err != nil {
				return 0, err
			}
			s.noteEngineResult(tr, res.Durations)
			return res.Scores[vNode], nil
		})
	})
	tr.SpanSince("cache", cStart)
	if err != nil {
		s.writeError(w, mapError(err))
		return
	}
	tr.SetCache(outcome.String())
	s.observeLatency(kPair, outcomePath(outcome), time.Since(start))
	writeJSON(w, http.StatusOK, map[string]any{
		"u":     u,
		"v":     vNode,
		"epoch": view.Epoch(),
		"cache": outcome.String(),
		"score": val.(float64),
	})
}

// batchRequest is the POST /v1/batch body.
type batchRequest struct {
	Nodes       []int32 `json:"nodes"`
	K           int     `json:"k"`
	Parallelism int     `json:"parallelism"`
	Eps         float64 `json:"eps"`
	Delta       float64 `json:"delta"`
	Seed        *uint64 `json:"seed"`
	MaxWalks    *int    `json:"max_walks"`
}

// POST /v1/batch — many single-source queries pinned to one epoch. The
// batch reads and fills the same per-node single-source cache entries the
// GET endpoint uses: cached nodes are reused, the rest run over the
// engine pool under one admission slot.
func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeMethodNotAllowed(w, http.MethodPost)
		return
	}
	start := time.Now()
	var req batchRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		s.writeError(w, httpErrf(http.StatusBadRequest, "bad_body", "decoding JSON body: %v", err))
		return
	}
	if len(req.Nodes) == 0 {
		s.writeError(w, httpErrf(http.StatusBadRequest, "missing_parameter", "body must name at least one node"))
		return
	}
	if len(req.Nodes) > s.cfg.MaxBatch {
		s.writeError(w, httpErrf(http.StatusRequestEntityTooLarge, "batch_too_large",
			"batch of %d nodes exceeds the limit of %d", len(req.Nodes), s.cfg.MaxBatch))
		return
	}
	if req.K < 0 {
		s.writeError(w, httpErrf(http.StatusBadRequest, "bad_parameter", "k must be >= 0"))
		return
	}
	qp := queryParams{eps: req.Eps, delta: req.Delta}
	if req.Seed != nil {
		qp.seed, qp.hasSeed = *req.Seed, true
	}
	if req.MaxWalks != nil {
		qp.maxWalks, qp.hasWalks = *req.MaxWalks, true
	}
	ctx, cancel, herr := s.requestCtx(r)
	if herr != nil {
		s.writeError(w, herr)
		return
	}
	defer cancel()
	view, herr := s.pinView(ctx)
	if herr != nil {
		s.writeError(w, herr)
		return
	}

	// Split the batch into cache hits and misses on this epoch; duplicate
	// nodes within one batch are computed once.
	tr := obs.FromContext(r.Context())
	params := qp.canonical()
	rows := make([]*simpush.Result, len(req.Nodes))
	idxByNode := make(map[int32][]int)
	var missing []int32
	cached := 0
	for i, node := range req.Nodes {
		key := cache.Key{Epoch: view.Epoch(), Kind: "single-source", Node: node, Params: params}
		if v, ok := s.cache.Get(key); ok {
			rows[i] = v.(*simpush.Result)
			cached++
			continue
		}
		if _, dup := idxByNode[node]; !dup {
			missing = append(missing, node)
		}
		idxByNode[node] = append(idxByNode[node], i)
	}

	if len(missing) > 0 {
		// Admission holds one slot per batch worker, so concurrent batches
		// cannot multiply engine concurrency past MaxInFlight: the batch
		// waits (bounded) for its first slot and widens only by the slots
		// that are free right now.
		want := req.Parallelism
		if want <= 0 || want > s.cfg.MaxInFlight {
			want = s.cfg.MaxInFlight
		}
		if want > len(missing) {
			want = len(missing)
		}
		held, wait, err := s.adm.acquireUpTo(ctx, want)
		if err != nil {
			s.writeError(w, mapError(err))
			return
		}
		if wait > 0 && tr.Enabled() {
			tr.Span("admission_wait", time.Now().Add(-wait), wait)
		}
		t0 := time.Now()
		computed, err := view.BatchSingleSource(ctx, missing, held, qp.options()...)
		s.adm.recordService(time.Since(t0), held)
		s.adm.releaseN(held)
		// One span for the whole engine batch (per-row stage spans would
		// swamp the trace); the cumulative stage counters still see every
		// computed row.
		tr.SpanSince("engine_batch", t0)
		if err != nil {
			s.writeError(w, mapError(err))
			return
		}
		for j, res := range computed {
			s.recordStages(res.Durations)
			for _, i := range idxByNode[missing[j]] {
				rows[i] = res
			}
			key := cache.Key{Epoch: view.Epoch(), Kind: "single-source", Node: missing[j], Params: params}
			s.cache.Put(key, res)
		}
	}

	results := make([]map[string]any, len(req.Nodes))
	for i, node := range req.Nodes {
		entry := map[string]any{"node": node}
		if req.K > 0 {
			entry["results"] = rankedEntries(simpush.TopK(rows[i].Scores, req.K, node))
		} else {
			sp := sparseScores(rows[i].Scores)
			entry["nnz"] = len(sp)
			entry["scores"] = sp
		}
		results[i] = entry
	}
	// A batch is an engine sample iff it computed at least one row;
	// fully-cached batches measure the lookup path.
	path := pathCache
	if len(missing) > 0 {
		path = pathEngine
	}
	s.observeLatency(kBatch, path, time.Since(start))
	writeJSON(w, http.StatusOK, map[string]any{
		"epoch":   view.Epoch(),
		"count":   len(req.Nodes),
		"cached":  cached,
		"results": results,
	})
}

// edgeSpec is one edge of a mutation request.
type edgeSpec struct {
	From int32 `json:"from"`
	To   int32 `json:"to"`
}

// edgesRequest accepts either a single edge ({"from":u,"to":v}) or a
// list ({"edges":[...]}).
type edgesRequest struct {
	From  *int32     `json:"from"`
	To    *int32     `json:"to"`
	Edges []edgeSpec `json:"edges"`
}

// POST /v1/edges adds edges; DELETE /v1/edges marks them for removal.
// Removal validation is lazy (the dynamic graph's contract): removing a
// nonexistent edge surfaces as an error on the next snapshot — that is,
// the next query — and the source then recovers.
func (s *Server) handleEdges(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost && r.Method != http.MethodDelete {
		writeMethodNotAllowed(w, http.MethodPost, http.MethodDelete)
		return
	}
	start := time.Now()
	if s.dyn == nil {
		s.writeError(w, httpErrf(http.StatusNotImplemented, "static_source",
			"graph source is static; serve a DynamicGraph to enable mutations"))
		return
	}
	var req edgesRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		s.writeError(w, httpErrf(http.StatusBadRequest, "bad_body", "decoding JSON body: %v", err))
		return
	}
	edges := req.Edges
	if req.From != nil || req.To != nil {
		if req.From == nil || req.To == nil {
			s.writeError(w, httpErrf(http.StatusBadRequest, "bad_body", `"from" and "to" must be set together`))
			return
		}
		edges = append(edges, edgeSpec{From: *req.From, To: *req.To})
	}
	if len(edges) == 0 {
		s.writeError(w, httpErrf(http.StatusBadRequest, "missing_parameter", "body names no edges"))
		return
	}
	if r.Method == http.MethodDelete {
		// Lazy removal validation is for edges that may have existed and
		// raced away — ids that can never exist must not poison the next
		// snapshot (a 500 on some unrelated user's query); reject them
		// eagerly like POST does.
		for _, e := range edges {
			if e.From < 0 || e.To < 0 {
				s.writeError(w, httpErrf(http.StatusBadRequest, "bad_edge",
					"negative node id (%d, %d)", e.From, e.To))
				return
			}
		}
	}
	switch s.rep.role {
	case RoleFollower:
		// Mutations flow leader → follower only; accepting a direct write
		// here would fork the follower's epoch sequence off the leader's.
		s.writeError(w, httpErrf(http.StatusConflict, "not_leader",
			"this replica is a follower; send mutations to the leader at %s", s.rep.leaderURL))
		return
	case RoleLeader:
		// Leader mutations are atomic (all-or-nothing, exactly one epoch
		// advance per request) and recorded in the replication log.
		pairs := make([][2]int32, len(edges))
		for i, e := range edges {
			pairs[i] = [2]int32{e.From, e.To}
		}
		var adds, removes [][2]int32
		if r.Method == http.MethodPost {
			adds = pairs
		} else {
			removes = pairs
		}
		epoch, err := s.applyLeaderBatch(adds, removes)
		if err != nil {
			s.writeError(w, httpErrf(http.StatusBadRequest, "bad_edge", "%v (batch rejected, nothing applied)", err))
			return
		}
		s.observeLatency(kEdges, pathEngine, time.Since(start))
		writeJSON(w, http.StatusOK, map[string]any{"applied": len(edges), "epoch": epoch})
		return
	}
	applied := 0
	for _, e := range edges {
		if r.Method == http.MethodPost {
			if err := s.dyn.AddEdge(e.From, e.To); err != nil {
				s.writeError(w, httpErrf(http.StatusBadRequest, "bad_edge", "%v (applied %d of %d)", err, applied, len(edges)))
				return
			}
		} else {
			s.dyn.RemoveEdge(e.From, e.To)
		}
		applied++
	}
	s.observeLatency(kEdges, pathEngine, time.Since(start))
	writeJSON(w, http.StatusOK, map[string]any{"applied": applied})
}
