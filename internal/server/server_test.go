package server

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/simrank/simpush"
)

func newClient(t *testing.T, src simpush.GraphSource) *simpush.Client {
	t.Helper()
	c, err := simpush.NewClient(src, simpush.Options{Epsilon: 0.05, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func testGraph(t *testing.T) *simpush.Graph {
	t.Helper()
	g, err := simpush.SyntheticWebGraph(300, 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func newStaticServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	cfg.Client = newClient(t, testGraph(t))
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func newDynamicServer(t *testing.T, cfg Config) (*Server, *simpush.DynamicGraph) {
	t.Helper()
	dyn := simpush.DynamicFromGraph(testGraph(t))
	cfg.Client = newClient(t, dyn)
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s, dyn
}

// doReq runs one request through the handler without a network listener.
func doReq(s *Server, method, target, body string) *httptest.ResponseRecorder {
	var rd io.Reader
	if body != "" {
		rd = strings.NewReader(body)
	}
	req := httptest.NewRequest(method, target, rd)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	return rec
}

func decodeBody(t *testing.T, rec *httptest.ResponseRecorder) map[string]any {
	t.Helper()
	var m map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &m); err != nil {
		t.Fatalf("decoding %q: %v", rec.Body.String(), err)
	}
	return m
}

// TestHandlerTable covers request validation across every endpoint: bad
// nodes, bad parameters, method mismatches, bodies.
func TestHandlerTable(t *testing.T) {
	s := newStaticServer(t, Config{MaxBatch: 4})
	cases := []struct {
		name       string
		method     string
		target     string
		body       string
		wantStatus int
		wantCode   string
	}{
		{"missing node", "GET", "/v1/single-source", "", 400, "missing_parameter"},
		{"unparseable node", "GET", "/v1/single-source?node=abc", "", 400, "bad_parameter"},
		{"node out of range", "GET", "/v1/single-source?node=99999", "", 404, "node_not_found"},
		{"negative node", "GET", "/v1/single-source?node=-3", "", 404, "node_not_found"},
		{"bad eps", "GET", "/v1/single-source?node=1&eps=oops", "", 400, "bad_parameter"},
		{"eps out of domain", "GET", "/v1/single-source?node=1&eps=7", "", 400, "invalid_options"},
		{"bad timeout", "GET", "/v1/single-source?node=1&timeout=soon", "", 400, "bad_parameter"},
		{"negative timeout", "GET", "/v1/single-source?node=1&timeout=-5s", "", 400, "bad_parameter"},
		{"method mismatch single-source", "POST", "/v1/single-source?node=1", "", 405, "method_not_allowed"},
		{"method mismatch topk", "DELETE", "/v1/topk?node=1", "", 405, "method_not_allowed"},
		{"bad k", "GET", "/v1/topk?node=1&k=zero", "", 400, "bad_parameter"},
		{"k < 1", "GET", "/v1/topk?node=1&k=0", "", 400, "bad_parameter"},
		{"pair missing v", "GET", "/v1/pair?u=1", "", 400, "missing_parameter"},
		{"pair bad target", "GET", "/v1/pair?u=1&v=12345", "", 404, "node_not_found"},
		{"batch via GET", "GET", "/v1/batch", "", 405, "method_not_allowed"},
		{"batch bad body", "POST", "/v1/batch", "{", 400, "bad_body"},
		{"batch empty", "POST", "/v1/batch", `{"nodes":[]}`, 400, "missing_parameter"},
		{"batch too large", "POST", "/v1/batch", `{"nodes":[1,2,3,4,5]}`, 413, "batch_too_large"},
		{"batch negative k", "POST", "/v1/batch", `{"nodes":[1],"k":-1}`, 400, "bad_parameter"},
		{"batch bad node", "POST", "/v1/batch", `{"nodes":[1,88888]}`, 404, "node_not_found"},
		{"edges on static source", "POST", "/v1/edges", `{"from":1,"to":2}`, 501, "static_source"},
		{"edges method mismatch", "GET", "/v1/edges", "", 405, "method_not_allowed"},
		{"healthz method mismatch", "POST", "/healthz", "", 405, "method_not_allowed"},
		{"statsz method mismatch", "DELETE", "/statsz", "", 405, "method_not_allowed"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rec := doReq(s, tc.method, tc.target, tc.body)
			if rec.Code != tc.wantStatus {
				t.Fatalf("status = %d, want %d (body %s)", rec.Code, tc.wantStatus, rec.Body.String())
			}
			if tc.wantCode != "" {
				body := decodeBody(t, rec)
				if body["code"] != tc.wantCode {
					t.Fatalf("code = %v, want %q", body["code"], tc.wantCode)
				}
			}
			if rec.Code == 405 && rec.Header().Get("Allow") == "" {
				t.Fatal("405 without Allow header")
			}
		})
	}
}

func TestQueryEndpointsServe(t *testing.T) {
	s := newStaticServer(t, Config{})

	rec := doReq(s, "GET", "/v1/single-source?node=7&seed=3", "")
	if rec.Code != 200 {
		t.Fatalf("single-source: %d %s", rec.Code, rec.Body.String())
	}
	body := decodeBody(t, rec)
	if body["epoch"].(float64) != 0 {
		t.Fatalf("static source epoch = %v", body["epoch"])
	}
	found := false
	for _, e := range body["scores"].([]any) {
		entry := e.(map[string]any)
		if entry["node"].(float64) == 7 && entry["score"].(float64) == 1 {
			found = true
		}
	}
	if !found {
		t.Fatal("sparse scores missing the self entry s(u,u)=1")
	}

	rec = doReq(s, "GET", "/v1/single-source?node=7&seed=3&dense=1", "")
	body = decodeBody(t, rec)
	dense := body["dense_scores"].([]any)
	if len(dense) != 300 {
		t.Fatalf("dense scores length = %d", len(dense))
	}

	rec = doReq(s, "GET", "/v1/topk?node=7&k=5&seed=3", "")
	if rec.Code != 200 {
		t.Fatalf("topk: %d %s", rec.Code, rec.Body.String())
	}
	body = decodeBody(t, rec)
	results := body["results"].([]any)
	if len(results) > 5 {
		t.Fatalf("topk returned %d results for k=5", len(results))
	}
	prev := 2.0
	for _, e := range results {
		sc := e.(map[string]any)["score"].(float64)
		if sc > prev {
			t.Fatal("topk results not in descending score order")
		}
		prev = sc
	}

	rec = doReq(s, "GET", "/v1/pair?u=7&v=9&seed=3", "")
	if rec.Code != 200 {
		t.Fatalf("pair: %d %s", rec.Code, rec.Body.String())
	}

	// Warm node 1 through the GET endpoint, then batch over it: the batch
	// reads the same per-node cache entries the GET endpoint fills (the
	// canonical params of ?seed=3 and {"seed":3} coincide).
	queriesBefore := s.cfg.Client.Stats().Queries
	rec = doReq(s, "GET", "/v1/single-source?node=1&seed=3", "")
	if rec.Code != 200 {
		t.Fatalf("warm single-source: %d", rec.Code)
	}
	rec = doReq(s, "POST", "/v1/batch", `{"nodes":[1,2,1],"k":3,"seed":3}`)
	if rec.Code != 200 {
		t.Fatalf("batch: %d %s", rec.Code, rec.Body.String())
	}
	body = decodeBody(t, rec)
	if body["count"].(float64) != 3 {
		t.Fatalf("batch count = %v", body["count"])
	}
	if body["cached"].(float64) != 2 {
		t.Fatalf("batch cached = %v, want 2 (both occurrences of the warmed node)", body["cached"])
	}
	// Three batch rows, but only node 2 actually ran: node 1 was cached
	// and its duplicate deduped.
	if got := s.cfg.Client.Stats().Queries - queriesBefore; got != 2 {
		t.Fatalf("engine ran %d times for warm+batch, want 2", got)
	}

	rec = doReq(s, "GET", "/healthz", "")
	if rec.Code != 200 {
		t.Fatalf("healthz: %d", rec.Code)
	}
	rec = doReq(s, "GET", "/statsz", "")
	if rec.Code != 200 {
		t.Fatalf("statsz: %d", rec.Code)
	}
	var stats StatsSnapshot
	if err := json.Unmarshal(rec.Body.Bytes(), &stats); err != nil {
		t.Fatal(err)
	}
	if stats.Requests == 0 || stats.Client.Queries == 0 {
		t.Fatalf("statsz counters empty: %+v", stats)
	}

	// The latency block must be present after traffic, with the engine and
	// cache-hit paths separated: single-source served both a computed and a
	// cached request above.
	if len(stats.LatencyBucketsMs) != latencyBucketCount-1 {
		t.Fatalf("latency_buckets_ms has %d bounds, want %d", len(stats.LatencyBucketsMs), latencyBucketCount-1)
	}
	ss := stats.Latency["single-source"]
	if ss == nil || ss.Engine == nil || ss.Engine.Count == 0 {
		t.Fatalf("single-source engine histogram missing: %+v", stats.Latency)
	}
	if ss.CacheHit == nil || ss.CacheHit.Count == 0 {
		t.Fatalf("single-source cache-hit histogram missing: %+v", ss)
	}
	if ss.Engine.P99Ms < ss.Engine.P50Ms {
		t.Fatalf("engine p99 %.3f below p50 %.3f", ss.Engine.P99Ms, ss.Engine.P50Ms)
	}
	if stats.Latency["batch"] == nil || stats.Latency["topk"] == nil {
		t.Fatalf("batch/topk latency missing: %+v", stats.Latency)
	}
	if stats.Admission.AvgServiceMs <= 0 || stats.Admission.RetryAfterS < 1 {
		t.Fatalf("admission service stats not populated: %+v", stats.Admission)
	}
}

func TestCacheHitOnRepeatedQuery(t *testing.T) {
	s := newStaticServer(t, Config{})
	first := decodeBody(t, doReq(s, "GET", "/v1/single-source?node=3&seed=5", ""))
	if first["cache"] != "computed" {
		t.Fatalf("first query cache = %v", first["cache"])
	}
	second := decodeBody(t, doReq(s, "GET", "/v1/single-source?node=3&seed=5", ""))
	if second["cache"] != "hit" {
		t.Fatalf("second identical query cache = %v, want hit", second["cache"])
	}
	// Equivalent spellings of the same parameters share the entry.
	third := decodeBody(t, doReq(s, "GET", "/v1/single-source?node=3&seed=5&eps=0", ""))
	if third["cache"] != "hit" {
		t.Fatalf("canonicalized query cache = %v, want hit", third["cache"])
	}
	// Different params are a different entry.
	fourth := decodeBody(t, doReq(s, "GET", "/v1/single-source?node=3&seed=5&eps=0.1", ""))
	if fourth["cache"] != "computed" {
		t.Fatalf("distinct-params query cache = %v, want computed", fourth["cache"])
	}
	st := s.Cache().Stats()
	if st.Hits < 2 || st.Misses < 2 {
		t.Fatalf("cache stats = %+v", st)
	}
}

func TestEpochAdvanceMakesCacheEntriesUnreachable(t *testing.T) {
	s, _ := newDynamicServer(t, Config{})
	first := decodeBody(t, doReq(s, "GET", "/v1/topk?node=1&k=3&seed=9", ""))
	if first["cache"] != "computed" {
		t.Fatalf("first query cache = %v", first["cache"])
	}
	epoch0 := first["epoch"].(float64)
	if decodeBody(t, doReq(s, "GET", "/v1/topk?node=1&k=3&seed=9", ""))["cache"] != "hit" {
		t.Fatal("repeat on same epoch should hit")
	}

	rec := doReq(s, "POST", "/v1/edges", `{"edges":[{"from":1,"to":299},{"from":299,"to":1}]}`)
	if rec.Code != 200 {
		t.Fatalf("edges: %d %s", rec.Code, rec.Body.String())
	}

	third := decodeBody(t, doReq(s, "GET", "/v1/topk?node=1&k=3&seed=9", ""))
	if third["cache"] != "computed" {
		t.Fatalf("post-mutation query cache = %v, want computed (old epoch unreachable)", third["cache"])
	}
	if third["epoch"].(float64) <= epoch0 {
		t.Fatalf("epoch did not advance: %v -> %v", epoch0, third["epoch"])
	}

	// Removing the edges works and advances the epoch again.
	rec = doReq(s, "DELETE", "/v1/edges", `{"edges":[{"from":1,"to":299},{"from":299,"to":1}]}`)
	if rec.Code != 200 {
		t.Fatalf("delete edges: %d %s", rec.Code, rec.Body.String())
	}
	fourth := decodeBody(t, doReq(s, "GET", "/v1/topk?node=1&k=3&seed=9", ""))
	if fourth["cache"] != "computed" || fourth["epoch"].(float64) <= third["epoch"].(float64) {
		t.Fatalf("post-deletion query = cache %v epoch %v", fourth["cache"], fourth["epoch"])
	}
}

// TestSingleFlight proves one engine run for N identical concurrent
// requests: whether a request coalesces onto the in-flight computation or
// lands after it and hits the cache, the engine must run exactly once.
func TestSingleFlight(t *testing.T) {
	s := newStaticServer(t, Config{})
	ts := httptest.NewServer(s)
	defer ts.Close()

	before := s.cfg.Client.Stats().Queries
	const n = 16
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Get(ts.URL + "/v1/single-source?node=42&seed=1&eps=0.01")
			if err != nil {
				errs[i] = err
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode != 200 {
				b, _ := io.ReadAll(resp.Body)
				errs[i] = fmt.Errorf("status %d: %s", resp.StatusCode, b)
			}
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	if got := s.cfg.Client.Stats().Queries - before; got != 1 {
		t.Fatalf("engine ran %d times for %d identical concurrent requests", got, n)
	}
	st := s.Cache().Stats()
	if st.Misses != 1 {
		t.Fatalf("cache misses = %d, want 1", st.Misses)
	}
	if st.Hits+st.Coalesced != n-1 {
		t.Fatalf("hits %d + coalesced %d != %d", st.Hits, st.Coalesced, n-1)
	}
}

// TestAdmissionControl drives the controller to saturation and checks the
// HTTP surface: a request that cannot even queue gets 429 + Retry-After.
func TestAdmissionControl(t *testing.T) {
	s := newStaticServer(t, Config{MaxInFlight: 1, MaxQueue: 1, RetryAfter: 3})

	// Occupy the only slot, then park a waiter in the only queue seat.
	if _, err := s.adm.acquire(t.Context()); err != nil {
		t.Fatal(err)
	}
	waiterIn := make(chan error, 1)
	go func() {
		_, err := s.adm.acquire(t.Context())
		waiterIn <- err
	}()
	deadline := time.Now().Add(2 * time.Second)
	for s.adm.queueDepth() != 1 {
		if time.Now().After(deadline) {
			t.Fatal("queued waiter never registered")
		}
		time.Sleep(time.Millisecond)
	}

	rec := doReq(s, "GET", "/v1/single-source?node=5", "")
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("saturated request status = %d %s", rec.Code, rec.Body.String())
	}
	if got := rec.Header().Get("Retry-After"); got != "3" {
		t.Fatalf("Retry-After = %q, want \"3\"", got)
	}
	if decodeBody(t, rec)["code"] != "saturated" {
		t.Fatal("saturated request must carry code \"saturated\"")
	}
	if s.adm.rejected.Load() == 0 {
		t.Fatal("rejection not counted")
	}

	// Release the slot: the queued waiter takes it; once it releases too,
	// queries flow again.
	s.adm.release()
	if err := <-waiterIn; err != nil {
		t.Fatalf("queued waiter: %v", err)
	}
	s.adm.release()
	rec = doReq(s, "GET", "/v1/single-source?node=5", "")
	if rec.Code != 200 {
		t.Fatalf("post-saturation request = %d %s", rec.Code, rec.Body.String())
	}
}

func TestDrainFlipsHealthzOnly(t *testing.T) {
	s := newStaticServer(t, Config{})
	if rec := doReq(s, "GET", "/healthz", ""); rec.Code != 200 {
		t.Fatalf("healthz before drain: %d", rec.Code)
	}
	s.Drain()
	rec := doReq(s, "GET", "/healthz", "")
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("healthz after drain = %d, want 503", rec.Code)
	}
	if rec := doReq(s, "GET", "/v1/single-source?node=1", ""); rec.Code != 200 {
		t.Fatalf("query during drain = %d, want 200 (drain only flips healthz)", rec.Code)
	}
}

func TestClosedClientMapsToShuttingDown(t *testing.T) {
	g := testGraph(t)
	c, err := simpush.NewClient(g, simpush.Options{Epsilon: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(Config{Client: c})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	rec := doReq(s, "GET", "/v1/single-source?node=1", "")
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("query on closed client = %d, want 503", rec.Code)
	}
	if decodeBody(t, rec)["code"] != "shutting_down" {
		t.Fatal("closed client must map to code shutting_down")
	}
}

// TestConcurrentQueriesAndMutations is the stale-epoch race test: HTTP
// queries and edge mutations run concurrently, and because every query is
// seeded, two responses carrying the same epoch must have identical
// scores — a cache entry served across epochs would show up as a
// same-epoch fingerprint mismatch or as an epoch regression. Run with
// -race.
func TestConcurrentQueriesAndMutations(t *testing.T) {
	dyn := simpush.DynamicFromGraph(testGraph(t))
	c := newClient(t, dyn)
	s, err := New(Config{Client: c})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	defer ts.Close()

	const (
		queryWorkers = 4
		mutWorkers   = 2
		iters        = 25
	)
	var (
		mu           sync.Mutex
		fingerprints = map[uint64]string{} // epoch -> scores body
		maxEpochSeen uint64
	)
	var wg sync.WaitGroup
	errCh := make(chan error, queryWorkers+mutWorkers)

	for w := 0; w < mutWorkers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			client := ts.Client()
			for i := 0; i < iters; i++ {
				from := int32(w)
				to := int32(100 + (i % 50))
				body := fmt.Sprintf(`{"from":%d,"to":%d}`, from, to)
				resp, err := client.Post(ts.URL+"/v1/edges", "application/json", strings.NewReader(body))
				if err != nil {
					errCh <- err
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != 200 {
					errCh <- fmt.Errorf("add edge: status %d", resp.StatusCode)
					return
				}
				// Remove the edge we just added (always matched, so no
				// snapshot failures).
				req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/edges", strings.NewReader(body))
				resp, err = client.Do(req)
				if err != nil {
					errCh <- err
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != 200 {
					errCh <- fmt.Errorf("remove edge: status %d", resp.StatusCode)
					return
				}
			}
		}(w)
	}

	for w := 0; w < queryWorkers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			client := ts.Client()
			for i := 0; i < iters; i++ {
				mu.Lock()
				epochBefore := maxEpochSeen
				mu.Unlock()
				resp, err := client.Get(ts.URL + "/v1/single-source?node=0&seed=11")
				if err != nil {
					errCh <- err
					return
				}
				raw, err := io.ReadAll(resp.Body)
				resp.Body.Close()
				if err != nil {
					errCh <- err
					return
				}
				if resp.StatusCode != 200 {
					errCh <- fmt.Errorf("query: status %d: %s", resp.StatusCode, raw)
					return
				}
				var body struct {
					Epoch  uint64          `json:"epoch"`
					Scores json.RawMessage `json:"scores"`
				}
				if err := json.Unmarshal(raw, &body); err != nil {
					errCh <- err
					return
				}
				mu.Lock()
				// No response may be older than an epoch this goroutine
				// already knew was committed before it sent the request.
				if body.Epoch < epochBefore {
					mu.Unlock()
					errCh <- fmt.Errorf("stale epoch: response %d after observing %d", body.Epoch, epochBefore)
					return
				}
				if body.Epoch > maxEpochSeen {
					maxEpochSeen = body.Epoch
				}
				fp := string(bytes.TrimSpace(body.Scores))
				if prev, ok := fingerprints[body.Epoch]; ok {
					if prev != fp {
						mu.Unlock()
						errCh <- fmt.Errorf("two different results for epoch %d — a cache entry crossed epochs", body.Epoch)
						return
					}
				} else {
					fingerprints[body.Epoch] = fp
				}
				mu.Unlock()
			}
		}(w)
	}

	wg.Wait()
	close(errCh)
	for err := range errCh {
		if err != nil {
			t.Fatal(err)
		}
	}
	if len(fingerprints) < 2 {
		t.Logf("warning: only %d distinct epochs observed; race coverage thin", len(fingerprints))
	}
}

// TestErrSaturatedMapping pins the error taxonomy used by mapError.
func TestErrSaturatedMapping(t *testing.T) {
	if he := mapError(errSaturated); he.status != 429 || he.code != "saturated" {
		t.Fatalf("errSaturated -> %d %s", he.status, he.code)
	}
	if he := mapError(simpush.ErrClientClosed); he.status != 503 {
		t.Fatalf("ErrClientClosed -> %d", he.status)
	}
	if he := mapError(errors.New("boom")); he.status != 500 || he.code != "internal" {
		t.Fatalf("unknown -> %d %s", he.status, he.code)
	}
}

// TestAcquireUpTo pins the multi-slot admission semantics behind /v1/batch:
// the first slot may wait, extras are taken only if free, and the total
// held across callers never exceeds the in-flight limit.
func TestAcquireUpTo(t *testing.T) {
	a := newAdmission(4, 8)
	held, _, err := a.acquireUpTo(t.Context(), 3)
	if err != nil || held != 3 {
		t.Fatalf("first batch: held %d, err %v", held, err)
	}
	// One slot left: a second wide request gets its guaranteed first slot
	// and no extras — engine concurrency stays within the limit.
	held2, _, err := a.acquireUpTo(t.Context(), 3)
	if err != nil || held2 != 1 {
		t.Fatalf("second batch: held %d, err %v", held2, err)
	}
	if a.inFlight() != 4 {
		t.Fatalf("in-flight = %d, want 4", a.inFlight())
	}
	a.releaseN(held)
	a.releaseN(held2)
	if a.inFlight() != 0 {
		t.Fatalf("in-flight after release = %d", a.inFlight())
	}
}

// TestDeleteEdgeRejectsImpossibleIds: removal validation is lazy for
// edges that may have raced away, but ids that can never exist must be
// rejected eagerly — otherwise the poisoned snapshot fails an unrelated
// user's next query.
func TestDeleteEdgeRejectsImpossibleIds(t *testing.T) {
	s, _ := newDynamicServer(t, Config{})
	rec := doReq(s, "DELETE", "/v1/edges", `{"from":-5,"to":3}`)
	if rec.Code != 400 || decodeBody(t, rec)["code"] != "bad_edge" {
		t.Fatalf("negative-id delete = %d %s, want 400 bad_edge", rec.Code, rec.Body.String())
	}
	// The rejected removal must not have been recorded: the next query
	// succeeds.
	if rec := doReq(s, "GET", "/v1/single-source?node=1", ""); rec.Code != 200 {
		t.Fatalf("query after rejected delete = %d %s", rec.Code, rec.Body.String())
	}
}

// The parallelism parameter is validated, clamped to the server cap, and
// participates in the cache key (distinct worker counts give distinct,
// equally valid results; k=1 shares the serial default's entries).
func TestParallelismParameter(t *testing.T) {
	s := newStaticServer(t, Config{MaxParallelism: 2})

	if rec := doReq(s, "GET", "/v1/single-source?node=3&parallelism=bad", ""); rec.Code != http.StatusBadRequest {
		t.Fatalf("bad parallelism -> %d", rec.Code)
	}
	if rec := doReq(s, "GET", "/v1/single-source?node=3&parallelism=-1", ""); rec.Code != http.StatusBadRequest {
		t.Fatalf("negative parallelism -> %d", rec.Code)
	}

	serial := decodeBody(t, doReq(s, "GET", "/v1/single-source?node=3&seed=5", ""))
	if serial["cache"] != "computed" {
		t.Fatalf("serial query cache = %v", serial["cache"])
	}
	// parallelism=1 is the serial path and shares its cache entries.
	if m := decodeBody(t, doReq(s, "GET", "/v1/single-source?node=3&seed=5&parallelism=1", "")); m["cache"] != "hit" {
		t.Fatalf("parallelism=1 cache = %v, want hit", m["cache"])
	}
	// parallelism=2 is a distinct entry...
	par := decodeBody(t, doReq(s, "GET", "/v1/single-source?node=3&seed=5&parallelism=2", ""))
	if par["cache"] != "computed" {
		t.Fatalf("parallelism=2 cache = %v, want computed", par["cache"])
	}
	// ...and values above the cap clamp onto it.
	clamped := decodeBody(t, doReq(s, "GET", "/v1/single-source?node=3&seed=5&parallelism=64", ""))
	if clamped["cache"] != "hit" {
		t.Fatalf("clamped parallelism cache = %v, want hit", clamped["cache"])
	}
}
