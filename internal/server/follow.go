package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"time"
)

// followWait is the long-poll window a follower asks the leader for; the
// leader responds immediately when a batch commits, so this only bounds
// how often an idle follower re-issues the poll (heartbeat cadence).
const followWait = 20 * time.Second

// errDiverged terminates the follow loop: the follower's state can no
// longer converge to the leader's by replaying the feed (apply failure,
// epoch mismatch, or a trimmed log). The follower keeps serving reads at
// its last good epoch but reports 503 from /healthz so routers drop it.
var errDiverged = errors.New("server: follower diverged from leader")

// StartReplication launches the follower's replication loop; it is a
// no-op for the other roles. The loop stops when ctx is cancelled.
func (s *Server) StartReplication(ctx context.Context) {
	if s.rep.role != RoleFollower {
		return
	}
	go s.followLoop(ctx)
}

// followLoop long-polls the leader's /v1/replication feed and replays
// every batch through the same atomic primitive the leader used, keeping
// the follower's (graph, epoch) sequence identical to the leader's. Feed
// errors back off and retry — a follower outliving a leader restart keeps
// serving its last epoch and re-syncs when the feed returns.
func (s *Server) followLoop(ctx context.Context) {
	client := &http.Client{} // per-request deadlines below; none globally
	backoff := time.Duration(0)
	for ctx.Err() == nil {
		if backoff > 0 {
			select {
			case <-time.After(backoff):
			case <-ctx.Done():
				return
			}
		}
		err := s.pollLeaderOnce(ctx, client)
		switch {
		case err == nil:
			backoff = 0
		case errors.Is(err, errDiverged):
			return
		case ctx.Err() != nil:
			return
		default:
			s.rep.setErr(err)
			backoff = min(max(2*backoff, 250*time.Millisecond), 5*time.Second)
		}
	}
}

// pollLeaderOnce issues one long-poll against the leader and applies
// whatever batches it returns.
func (s *Server) pollLeaderOnce(ctx context.Context, client *http.Client) error {
	since := s.dyn.Epoch()
	q := url.Values{}
	q.Set("since", fmt.Sprint(since))
	// The first poll must not park: until a response arrives the follower
	// doesn't know the leader's epoch, so it can't tell "caught up" from
	// "behind" and /healthz would sit at catching_up for a full long-poll
	// window on an idle leader. Ask for an immediate answer once, then
	// settle into long-polling.
	if s.rep.synced.Load() || s.rep.syncTarget.Load() > 0 {
		q.Set("wait", followWait.String())
	} else {
		q.Set("wait", "0")
	}
	rctx, cancel := context.WithTimeout(ctx, followWait+10*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(rctx, http.MethodGet,
		s.rep.leaderURL+"/v1/replication?"+q.Encode(), nil)
	if err != nil {
		return err
	}
	resp, err := client.Do(req)
	if err != nil {
		return fmt.Errorf("polling leader: %w", err)
	}
	defer func() {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	if resp.StatusCode == http.StatusGone {
		err := fmt.Errorf("leader trimmed the replication log past epoch %d; restart this follower from the leader's base graph", since)
		s.rep.setErr(err)
		s.rep.diverged.Store(true)
		return errDiverged
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("polling leader: status %d", resp.StatusCode)
	}
	var feed replicationResponse
	if err := json.NewDecoder(resp.Body).Decode(&feed); err != nil {
		return fmt.Errorf("decoding replication feed: %w", err)
	}

	s.rep.leaderEpoch.Raise(feed.LeaderEpoch)
	// The leader's epoch at subscribe time is the readiness bar: /healthz
	// answers catching_up until the follower has replayed up to it.
	s.rep.syncTarget.Raise(max(feed.LeaderEpoch, 1))

	for _, e := range feed.Entries {
		if e.Epoch <= s.dyn.Epoch() {
			continue // already applied (duplicate delivery is harmless)
		}
		_, epoch, err := s.dyn.ApplyEdges(e.Add, e.Remove)
		if err != nil {
			s.rep.setErr(fmt.Errorf("applying batch for epoch %d: %w", e.Epoch, err))
			s.rep.diverged.Store(true)
			return errDiverged
		}
		if epoch != e.Epoch {
			s.rep.setErr(fmt.Errorf("epoch diverged: batch committed locally at %d, leader committed it at %d", epoch, e.Epoch))
			s.rep.diverged.Store(true)
			return errDiverged
		}
		s.noteEpoch(epoch)
	}
	if !s.rep.synced.Load() && s.dyn.Epoch() >= s.rep.syncTarget.Load() {
		s.rep.synced.Store(true)
	}
	return nil
}
