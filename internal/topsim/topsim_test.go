package topsim

import (
	"context"
	"math"
	"testing"

	"github.com/simrank/simpush/internal/exact"
	"github.com/simrank/simpush/internal/gen"
	"github.com/simrank/simpush/internal/graph"
)

const c = 0.6

func TestValidation(t *testing.T) {
	g := gen.Cycle(4)
	if _, err := New(g, Params{C: 2}); err == nil {
		t.Fatal("c=2 accepted")
	}
	if _, err := New(g, Params{T: -1}); err == nil {
		t.Fatal("T=-1 accepted")
	}
}

func TestMetadata(t *testing.T) {
	e, err := New(gen.Cycle(4), Params{})
	if err != nil {
		t.Fatal(err)
	}
	if e.Name() != "TopSim" || e.Indexed() {
		t.Fatal("metadata wrong")
	}
	if err := e.Build(); err != nil {
		t.Fatal(err)
	}
	if e.Setting() == "" || e.IndexBytes() <= 0 {
		t.Fatal("setting/memory missing")
	}
	if _, err := e.Query(context.Background(), 9); err == nil {
		t.Fatal("bad node accepted")
	}
}

func TestSharedParent(t *testing.T) {
	g := graph.MustFromPairs([2]int32{0, 1}, [2]int32{0, 2})
	e, err := New(g, Params{T: 3, InvH: 10000, H: 100, Eta: 1e-6})
	if err != nil {
		t.Fatal(err)
	}
	s, err := e.Query(context.Background(), 1)
	if err != nil {
		t.Fatal(err)
	}
	// Deterministic: meeting mass at the parent = c; TopSim has no γ
	// correction but there are no repeated meetings here.
	if math.Abs(s[2]-c) > 1e-9 {
		t.Fatalf("s(1,2) = %v, want %v", s[2], c)
	}
}

func TestCycleZero(t *testing.T) {
	e, err := New(gen.Cycle(10), Params{T: 4})
	if err != nil {
		t.Fatal(err)
	}
	s, err := e.Query(context.Background(), 0)
	if err != nil {
		t.Fatal(err)
	}
	for v := 1; v < 10; v++ {
		if s[v] != 0 {
			t.Fatalf("cycle s(0,%d) = %v", v, s[v])
		}
	}
}

// Truncated, uncorrected scores should still track exact SimRank loosely;
// TopSim overestimates pairs with repeated meetings and misses deep mass.
func TestLooseAccuracy(t *testing.T) {
	g, err := gen.CopyingModel(100, 4, 0.3, 5)
	if err != nil {
		t.Fatal(err)
	}
	ex, err := exact.AllPairs(g, exact.Options{C: c})
	if err != nil {
		t.Fatal(err)
	}
	e, err := New(g, Params{T: 4, InvH: 10000, H: 1000, Eta: 1e-5})
	if err != nil {
		t.Fatal(err)
	}
	u := int32(17)
	s, err := e.Query(context.Background(), u)
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for v := int32(0); v < g.N(); v++ {
		if v != u {
			sum += math.Abs(ex.At(u, v) - s[v])
		}
	}
	if avg := sum / float64(g.N()-1); avg > 0.05 {
		t.Fatalf("avg error %v too large", avg)
	}
}

func TestHighDegreeTrimming(t *testing.T) {
	// Star: hub 0 has in-degree 49; with InvH=10 the hub is not expanded,
	// so a query from a leaf... leaves have no in-neighbors; query from the
	// hub: level 1 = leaves? I(0) = leaves (49 of them) > InvH -> trimmed.
	e, err := New(gen.Star(50), Params{T: 3, InvH: 10})
	if err != nil {
		t.Fatal(err)
	}
	s, err := e.Query(context.Background(), 0)
	if err != nil {
		t.Fatal(err)
	}
	for v := 1; v < 50; v++ {
		if s[v] != 0 {
			t.Fatalf("trimmed expansion still produced score at %d", v)
		}
	}
	// With a large threshold the same query sees its neighborhood.
	e2, err := New(gen.Star(50), Params{T: 3, InvH: 1000})
	if err != nil {
		t.Fatal(err)
	}
	s2, err := e2.Query(context.Background(), 0)
	if err != nil {
		t.Fatal(err)
	}
	_ = s2 // hub query: leaves are dangling; just ensure no crash
}

func TestTopHKeepsStrongest(t *testing.T) {
	g, err := gen.BarabasiAlbert(300, 4, 9)
	if err != nil {
		t.Fatal(err)
	}
	small, err := New(g, Params{T: 3, H: 5, InvH: 100000})
	if err != nil {
		t.Fatal(err)
	}
	large, err := New(g, Params{T: 3, H: 5000, InvH: 100000})
	if err != nil {
		t.Fatal(err)
	}
	ss, err := small.Query(context.Background(), 7)
	if err != nil {
		t.Fatal(err)
	}
	sl, err := large.Query(context.Background(), 7)
	if err != nil {
		t.Fatal(err)
	}
	var sumS, sumL float64
	for v := range ss {
		sumS += ss[v]
		sumL += sl[v]
	}
	if sumS > sumL+1e-9 {
		t.Fatalf("H-trimmed run found more mass: %v vs %v", sumS, sumL)
	}
}
