// Package topsim implements a TopSim-SM style baseline (Lee et al., ICDE
// 2012 [15]): deterministic truncated local search, index-free.
//
// TopSim expands reverse-walk prefixes from the query node up to depth T,
// merging prefixes per node (the "stochastic merging" variant) and
// applying its three prioritization knobs: prefixes with probability below
// η are trimmed, expansion through nodes with in-degree above 1/h is
// skipped (high-degree trimming), and at most H prefixes are kept per
// level. Scores are then accumulated by pushing each level's mass back
// along out-edges for the same number of steps:
//
//	s̃(u,v) = Σ_{ℓ≤T} Σ_w ĥ^(ℓ)(u,w)·ĥ^(ℓ)(v,w),
//
// with no last-meeting correction — the truncation-based quality issues
// that [21, 33] point out (and our error figures reproduce).
package topsim

import (
	"context"
	"fmt"
	"math"
	"sort"

	"github.com/simrank/simpush/internal/graph"
	"github.com/simrank/simpush/internal/limits"
	"github.com/simrank/simpush/internal/push"
)

// Params configures TopSim. The paper sweeps (T, 1/h) over
// {(1,10), (3,100), (3,1000), (3,10000), (4,10000)} with H=100, η=0.001.
type Params struct {
	C         float64
	T         int     // walk depth; default 3
	InvH      int32   // high-degree threshold 1/h; default 1000
	H         int     // max prefixes kept per level; default 100
	Eta       float64 // prefix trimming threshold; default 0.001
	ScoreEps  float64 // reverse-push pruning threshold; default Eta/4
	QueryNode int32
}

func (p *Params) fill() {
	if p.C == 0 {
		p.C = 0.6
	}
	if p.T == 0 {
		p.T = 3
	}
	if p.InvH == 0 {
		p.InvH = 1000
	}
	if p.H == 0 {
		p.H = 100
	}
	if p.Eta == 0 {
		p.Eta = 0.001
	}
	if p.ScoreEps == 0 {
		p.ScoreEps = p.Eta / 4
	}
}

// Engine is a TopSim engine (index-free).
type Engine struct {
	g      *graph.Graph
	p      Params
	prober *push.Prober
	// expansion scratch
	mass    []float64
	touched []int32
}

// New returns a TopSim engine for g.
func New(g *graph.Graph, p Params) (*Engine, error) {
	p.fill()
	if p.C <= 0 || p.C >= 1 {
		return nil, fmt.Errorf("topsim: c must be in (0,1), got %v", p.C)
	}
	if p.T < 1 || p.H < 1 || p.InvH < 1 {
		return nil, fmt.Errorf("topsim: need T, H, 1/h >= 1")
	}
	return &Engine{
		g:      g,
		p:      p,
		prober: push.NewProber(g, p.C),
		mass:   make([]float64, g.N()),
	}, nil
}

// Name implements engine.Engine.
func (e *Engine) Name() string { return "TopSim" }

// Setting implements engine.Engine.
func (e *Engine) Setting() string { return fmt.Sprintf("T=%d,1/h=%d", e.p.T, e.p.InvH) }

// Indexed implements engine.Engine.
func (e *Engine) Indexed() bool { return false }

// Build implements engine.Engine (no preprocessing).
func (e *Engine) Build() error { return nil }

// IndexBytes implements engine.Engine.
func (e *Engine) IndexBytes() int64 {
	return e.prober.MemoryBytes() + int64(len(e.mass))*8
}

// Query estimates s(u, ·). Cancellation is checked once per expansion
// level.
func (e *Engine) Query(ctx context.Context, u int32) ([]float64, error) {
	if !e.g.HasNode(u) {
		return nil, fmt.Errorf("topsim: %w: node %d not in [0, %d)", limits.ErrNodeOutOfRange, u, e.g.N())
	}
	scores := make([]float64, e.g.N())
	sqrtC := math.Sqrt(e.p.C)

	// Level-wise reverse expansion with TopSim's trimming rules.
	type frontierEntry struct {
		node int32
		mass float64
	}
	frontier := []frontierEntry{{u, 1}}
	for l := 1; l <= e.p.T && len(frontier) > 0; l++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		for _, fe := range frontier {
			in := e.g.In(fe.node)
			if len(in) == 0 {
				continue
			}
			if int32(len(in)) > e.p.InvH {
				continue // high-degree trimming
			}
			w := sqrtC * fe.mass / float64(len(in))
			for _, vp := range in {
				if e.mass[vp] == 0 {
					e.touched = append(e.touched, vp)
				}
				e.mass[vp] += w
			}
		}
		next := make([]frontierEntry, 0, len(e.touched))
		for _, v := range e.touched {
			if m := e.mass[v]; m >= e.p.Eta {
				next = append(next, frontierEntry{v, m})
			}
			e.mass[v] = 0
		}
		e.touched = e.touched[:0]
		// Keep the H most probable prefixes (prioritized expansion).
		if len(next) > e.p.H {
			sort.Slice(next, func(a, b int) bool { return next[a].mass > next[b].mass })
			next = next[:e.p.H]
		}
		frontier = next

		// Score this level: push the level mass back ℓ steps.
		seeds := make([]int32, len(frontier))
		masses := make([]float64, len(frontier))
		for i, fe := range frontier {
			seeds[i] = fe.node
			masses[i] = fe.mass
		}
		e.prober.PushSeeds(seeds, masses, l, e.p.ScoreEps, nil, func(d int, nodes []int32, vals []float64) {
			if d != l {
				return
			}
			for i, v := range nodes {
				scores[v] += vals[i]
			}
		})
	}
	scores[u] = 1
	return scores, nil
}
