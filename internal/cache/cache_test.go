package cache

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func key(epoch uint64, node int32) Key {
	return Key{Epoch: epoch, Kind: "single-source", Node: node, Params: "eps=0.02"}
}

func TestGetPutAndEpochKeying(t *testing.T) {
	c := New(64)
	k0 := key(0, 42)
	k1 := key(1, 42) // same query, newer epoch: a distinct entry

	if _, ok := c.Get(k0); ok {
		t.Fatal("empty cache reported a hit")
	}
	c.Put(k0, "old")
	c.Put(k1, "new")
	if v, ok := c.Get(k0); !ok || v != "old" {
		t.Fatalf("Get(k0) = %v, %v", v, ok)
	}
	if v, ok := c.Get(k1); !ok || v != "new" {
		t.Fatalf("Get(k1) = %v, %v", v, ok)
	}
	// A request pinned to epoch 2 can never see either value: the epoch is
	// part of the key, so stale results are structurally unreachable.
	if _, ok := c.Get(key(2, 42)); ok {
		t.Fatal("entry from a superseded epoch was reachable at a newer epoch")
	}
}

func TestBoundAndEviction(t *testing.T) {
	const bound = 32
	c := New(bound)
	for i := int32(0); i < 10*bound; i++ {
		c.Put(key(0, i), i)
	}
	st := c.Stats()
	// The bound is enforced per shard; the total never exceeds the
	// requested size rounded up to a shard multiple.
	if st.Entries > 2*bound {
		t.Fatalf("cache holds %d entries, bound %d", st.Entries, bound)
	}
	if st.Evictions == 0 {
		t.Fatal("no evictions recorded despite overflow")
	}
}

func TestLRUKeepsRecentlyUsed(t *testing.T) {
	c := New(4) // small: collapses to one shard of 4
	if len(c.shards) != 1 {
		t.Fatalf("expected 1 shard for tiny cache, got %d", len(c.shards))
	}
	for i := int32(0); i < 4; i++ {
		c.Put(key(0, i), i)
	}
	c.Get(key(0, 0)) // refresh node 0
	c.Put(key(0, 99), 99)
	if _, ok := c.Get(key(0, 0)); !ok {
		t.Fatal("recently used entry was evicted")
	}
	if _, ok := c.Get(key(0, 1)); ok {
		t.Fatal("least recently used entry survived eviction")
	}
}

func TestDoSingleFlight(t *testing.T) {
	c := New(16)
	const n = 8
	var computes atomic.Int32
	arrived := make(chan struct{}, n)
	release := make(chan struct{})

	var wg sync.WaitGroup
	results := make([]any, n)
	outcomes := make([]Outcome, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, out, err := c.Do(context.Background(), key(3, 7), func(context.Context) (any, error) {
				computes.Add(1)
				arrived <- struct{}{}
				<-release // hold the flight open so others must coalesce
				return "value", nil
			})
			if err != nil {
				t.Error(err)
			}
			results[i], outcomes[i] = v, out
		}(i)
	}
	<-arrived // leader is inside compute
	// Give followers a moment to reach the flight wait, then release.
	time.Sleep(20 * time.Millisecond)
	close(release)
	wg.Wait()

	if got := computes.Load(); got != 1 {
		t.Fatalf("compute ran %d times for %d concurrent identical calls", got, n)
	}
	computed := 0
	for i := 0; i < n; i++ {
		if results[i] != "value" {
			t.Fatalf("caller %d got %v", i, results[i])
		}
		if outcomes[i] == Computed {
			computed++
		}
	}
	if computed != 1 {
		t.Fatalf("%d callers report Computed, want exactly 1", computed)
	}
}

func TestDoErrorNotCached(t *testing.T) {
	c := New(16)
	boom := errors.New("boom")
	calls := 0
	compute := func(context.Context) (any, error) {
		calls++
		if calls == 1 {
			return nil, boom
		}
		return "ok", nil
	}
	if _, _, err := c.Do(context.Background(), key(0, 1), compute); !errors.Is(err, boom) {
		t.Fatalf("first Do err = %v", err)
	}
	v, out, err := c.Do(context.Background(), key(0, 1), compute)
	if err != nil || v != "ok" || out != Computed {
		t.Fatalf("second Do = %v, %v, %v — the error must not have been cached", v, out, err)
	}
}

func TestDoWaiterHonorsContext(t *testing.T) {
	c := New(16)
	inFlight := make(chan struct{})
	release := make(chan struct{})
	defer close(release)
	go c.Do(context.Background(), key(0, 5), func(context.Context) (any, error) {
		close(inFlight)
		<-release
		return "late", nil
	})
	<-inFlight

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, err := c.Do(ctx, key(0, 5), func(context.Context) (any, error) { return nil, nil })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("waiter err = %v, want context.Canceled", err)
	}
}

func TestDoLeaderPanicReleasesWaiters(t *testing.T) {
	c := New(16)
	inFlight := make(chan struct{})
	go func() {
		defer func() { recover() }()
		c.Do(context.Background(), key(0, 9), func(context.Context) (any, error) {
			close(inFlight)
			panic("leader died")
		})
	}()
	<-inFlight
	// The waiter must be released with an error, not blocked forever; and
	// nothing must be cached, so a retry recomputes.
	done := make(chan error, 1)
	go func() {
		_, _, err := c.Do(context.Background(), key(0, 9), func(context.Context) (any, error) { return "retry", nil })
		done <- err
	}()
	select {
	case err := <-done:
		if err != nil {
			// The waiter may have joined the doomed flight (shared error) or
			// recomputed cleanly; either way it must terminate. A retry after
			// a shared error must succeed.
			v, _, err2 := c.Do(context.Background(), key(0, 9), func(context.Context) (any, error) { return "retry", nil })
			if err2 != nil || v != "retry" {
				t.Fatalf("retry after leader panic = %v, %v", v, err2)
			}
		}
	case <-time.After(5 * time.Second):
		t.Fatal("waiter blocked forever after leader panic")
	}
}

func TestDisabledCacheStillCoalesces(t *testing.T) {
	c := New(0)
	v, out, err := c.Do(context.Background(), key(0, 1), func(context.Context) (any, error) { return "x", nil })
	if err != nil || v != "x" || out != Computed {
		t.Fatalf("Do on disabled cache = %v, %v, %v", v, out, err)
	}
	// Nothing is stored...
	if _, ok := c.Get(key(0, 1)); ok {
		t.Fatal("disabled cache stored an entry")
	}
	// ...but concurrent identical calls still collapse to one compute.
	var computes atomic.Int32
	inFlight := make(chan struct{})
	release := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		c.Do(context.Background(), key(0, 2), func(context.Context) (any, error) {
			computes.Add(1)
			close(inFlight)
			<-release
			return "y", nil
		})
	}()
	<-inFlight
	wg.Add(1)
	go func() {
		defer wg.Done()
		c.Do(context.Background(), key(0, 2), func(context.Context) (any, error) {
			computes.Add(1)
			return "y", nil
		})
	}()
	time.Sleep(10 * time.Millisecond)
	close(release)
	wg.Wait()
	if got := computes.Load(); got != 1 {
		t.Fatalf("compute ran %d times, want 1", got)
	}
}

func TestSweep(t *testing.T) {
	c := New(128)
	for i := int32(0); i < 20; i++ {
		c.Put(key(1, i), i)
		c.Put(key(2, i), i)
	}
	removed := c.Sweep(2)
	if removed != 20 {
		t.Fatalf("Sweep removed %d, want 20", removed)
	}
	st := c.Stats()
	if st.Entries != 20 {
		t.Fatalf("entries after sweep = %d, want 20", st.Entries)
	}
	if _, ok := c.Get(key(2, 3)); !ok {
		t.Fatal("current-epoch entry removed by sweep")
	}
}

// TestConcurrentMixed hammers every operation from many goroutines; its
// value is under -race.
func TestConcurrentMixed(t *testing.T) {
	c := New(64)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				k := key(uint64(i%3), int32(i%40))
				switch i % 4 {
				case 0:
					c.Put(k, i)
				case 1:
					c.Get(k)
				case 2:
					c.Do(context.Background(), k, func(context.Context) (any, error) {
						return fmt.Sprintf("w%d-%d", w, i), nil
					})
				default:
					if i%100 == 0 {
						c.Sweep(uint64(i % 3))
					}
					c.Stats()
				}
			}
		}(w)
	}
	wg.Wait()
}

// TestFlightSurvivesInitiatorCancel is the serving-path regression test
// for coalescing: the caller that started a flight disconnects, but a
// healthy follower is still waiting — the computation must complete and
// the follower must receive the value, not the initiator's context error.
func TestFlightSurvivesInitiatorCancel(t *testing.T) {
	c := New(16)
	var computes atomic.Int32
	inFlight := make(chan struct{})
	release := make(chan struct{})

	leaderCtx, cancelLeader := context.WithCancel(context.Background())
	leaderDone := make(chan error, 1)
	go func() {
		_, _, err := c.Do(leaderCtx, key(0, 77), func(context.Context) (any, error) {
			computes.Add(1)
			close(inFlight)
			<-release
			return "survivor", nil
		})
		leaderDone <- err
	}()
	<-inFlight

	followerDone := make(chan struct{})
	var followerVal any
	var followerErr error
	go func() {
		defer close(followerDone)
		followerVal, _, followerErr = c.Do(context.Background(), key(0, 77), func(context.Context) (any, error) {
			computes.Add(1)
			return "recomputed", nil
		})
	}()
	// Let the follower reach the flight wait, then kill the initiator.
	time.Sleep(10 * time.Millisecond)
	cancelLeader()
	if err := <-leaderDone; !errors.Is(err, context.Canceled) {
		t.Fatalf("initiator err = %v, want its own context.Canceled", err)
	}
	close(release)
	<-followerDone
	if followerErr != nil {
		t.Fatalf("follower err = %v — it inherited the initiator's cancellation", followerErr)
	}
	if followerVal != "survivor" {
		t.Fatalf("follower got %v, want the shared flight's value", followerVal)
	}
	if got := computes.Load(); got != 1 {
		t.Fatalf("compute ran %d times, want 1", got)
	}
}

// TestAbandonedFlightCancelsCompute: when the last interested caller
// gives up, the flight context must be cancelled so the engine stops.
func TestAbandonedFlightCancelsCompute(t *testing.T) {
	c := New(16)
	started := make(chan struct{})
	cancelled := make(chan struct{})
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, _, err := c.Do(ctx, key(0, 88), func(fctx context.Context) (any, error) {
			close(started)
			<-fctx.Done() // the engine observing its context
			close(cancelled)
			return nil, fctx.Err()
		})
		done <- err
	}()
	<-started
	cancel() // sole caller leaves: waiters drop to zero
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("caller err = %v", err)
	}
	select {
	case <-cancelled:
	case <-time.After(5 * time.Second):
		t.Fatal("flight context was never cancelled after the last caller left")
	}
	// The failed flight must not be cached; a new call recomputes.
	v, out, err := c.Do(context.Background(), key(0, 88), func(context.Context) (any, error) {
		return "fresh", nil
	})
	if err != nil || v != "fresh" || out != Computed {
		t.Fatalf("recompute after abandoned flight = %v, %v, %v", v, out, err)
	}
}
