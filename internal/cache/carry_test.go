package cache

import "testing"

func TestCarryForwardRekeysUnaffected(t *testing.T) {
	c := New(64)
	for node := int32(0); node < 6; node++ {
		c.Put(key(1, node), node)
	}
	// Keep even nodes: odd ones play the "affected" role.
	carried := c.CarryForward(Delta{FromEpoch: 1, ToEpoch: 2}, func(k Key, v any) bool {
		if v.(int32) != k.Node {
			t.Fatalf("keep saw value %v for key %v", v, k)
		}
		return k.Node%2 == 0
	})
	if carried != 3 {
		t.Fatalf("carried = %d, want 3", carried)
	}
	for node := int32(0); node < 6; node++ {
		_, okNew := c.Get(key(2, node))
		if want := node%2 == 0; okNew != want {
			t.Fatalf("node %d at epoch 2: present=%v want=%v", node, okNew, want)
		}
		if _, okOld := c.Get(key(1, node)); okOld {
			t.Fatalf("node %d still reachable at epoch 1 after carry", node)
		}
	}
	st := c.Stats()
	if st.Carried != 3 || st.CarryDropped != 3 || st.Entries != 3 {
		t.Fatalf("stats = %+v, want 3 carried / 3 dropped / 3 entries", st)
	}
}

func TestCarryForwardFreshEntryWins(t *testing.T) {
	c := New(64)
	c.Put(key(1, 7), "stale")
	c.Put(key(2, 7), "fresh") // a query raced ahead and computed at epoch 2
	carried := c.CarryForward(Delta{FromEpoch: 1, ToEpoch: 2}, func(Key, any) bool { return true })
	if carried != 0 {
		t.Fatalf("carried = %d, want 0 (target key taken)", carried)
	}
	v, ok := c.Get(key(2, 7))
	if !ok || v != "fresh" {
		t.Fatalf("epoch-2 entry = %v/%v, want the fresh computation", v, ok)
	}
	if st := c.Stats(); st.CarryDropped != 1 {
		t.Fatalf("stats = %+v, want the stale candidate counted dropped", st)
	}
}

func TestCarryForwardNilKeepDropsEverything(t *testing.T) {
	c := New(64)
	for node := int32(0); node < 4; node++ {
		c.Put(key(3, node), node)
	}
	if carried := c.CarryForward(Delta{FromEpoch: 3, ToEpoch: 4}, nil); carried != 0 {
		t.Fatalf("nil keep carried %d entries", carried)
	}
	if st := c.Stats(); st.Entries != 0 || st.CarryDropped != 4 {
		t.Fatalf("stats = %+v, want empty cache with 4 carry-drops", st)
	}
}

func TestCarryForwardLeavesOtherEpochsForSweep(t *testing.T) {
	c := New(64)
	c.Put(key(1, 1), "ancient")
	c.Put(key(5, 2), "current")
	c.CarryForward(Delta{FromEpoch: 5, ToEpoch: 6}, func(Key, any) bool { return true })
	// The epoch-1 entry is not a FromEpoch candidate: untouched, awaiting
	// Sweep.
	if _, ok := c.Get(key(1, 1)); !ok {
		t.Fatal("non-candidate epoch was touched by CarryForward")
	}
	if _, ok := c.Get(key(6, 2)); !ok {
		t.Fatal("candidate was not carried to the new epoch")
	}
}

// TestSweepAfterCarryKeepsCarriedEntries is the cache-level half of the
// sweep-ordering contract: carry first, then Sweep(new) — the sweep must
// see carried entries already stamped with the new epoch and only drop
// genuinely superseded ones.
func TestSweepAfterCarryKeepsCarriedEntries(t *testing.T) {
	c := New(64)
	c.Put(key(1, 1), "old-old") // superseded long ago
	c.Put(key(5, 2), "keep")
	c.Put(key(5, 3), "drop")
	c.CarryForward(Delta{FromEpoch: 5, ToEpoch: 6}, func(k Key, _ any) bool { return k.Node == 2 })
	removed := c.Sweep(6)
	if removed != 1 {
		t.Fatalf("sweep removed %d, want 1 (only the ancient entry remains to reclaim)", removed)
	}
	if _, ok := c.Get(key(6, 2)); !ok {
		t.Fatal("sweep after carry dropped a just-carried entry")
	}
	if st := c.Stats(); st.Entries != 1 {
		t.Fatalf("stats = %+v, want exactly the carried entry", st)
	}
}

// Re-keying must stay within one shard: the hash deliberately ignores the
// epoch. This would fail (entry unreachable at the new epoch) if Epoch
// were ever mixed back into Key.hash.
func TestEpochNotInShardHash(t *testing.T) {
	for e := uint64(0); e < 32; e++ {
		a := key(e, 9).hash()
		b := key(e+1, 9).hash()
		if a != b {
			t.Fatalf("hash differs across epochs (%d vs %d): re-keyed entries would change shard", e, e+1)
		}
	}
}
