// Package cache is the serving-side result cache of simrankd: a bounded,
// sharded, epoch-aware map with single-flight coalescing.
//
// Epoch awareness is structural, not event-driven: the graph epoch is part
// of the key, so a result computed on epoch e can only ever be returned to
// a request that pinned epoch e. When the source advances, entries for
// superseded epochs simply stop being reachable — correctness never
// depends on an invalidation message arriving, which is what keeps the
// design index-free in spirit: there is nothing to maintain, only garbage
// to reclaim (LRU pressure or an explicit Sweep).
//
// Single-flight coalescing recovers the other half of repeated-query work:
// N concurrent identical queries on one epoch run the underlying engine
// once, and the result fans out to every waiter.
package cache

import (
	"container/list"
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
)

// A Key identifies one cacheable result: the graph epoch the result was
// computed on, the query kind, the source node, a kind-specific auxiliary
// dimension (top-k's k, pair's target node), and the canonical encoding of
// the per-query parameters.
type Key struct {
	Epoch  uint64
	Kind   string
	Node   int32
	Aux    int64
	Params string
}

func (k Key) String() string {
	return fmt.Sprintf("%s@%d(%d,%d)%s", k.Kind, k.Epoch, k.Node, k.Aux, k.Params)
}

const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

// hash is FNV-1a over the key fields; it picks the shard.
func (k Key) hash() uint64 {
	h := uint64(fnvOffset)
	mix := func(x uint64) {
		for i := 0; i < 8; i++ {
			h ^= x & 0xff
			h *= fnvPrime
			x >>= 8
		}
	}
	// Epoch is deliberately NOT mixed in: CarryForward re-keys entries
	// from epoch e to e+1 in place, and leaving the epoch out of the hash
	// pins a key to one shard across epochs, so re-keying never has to
	// move an entry between shards (each shard carries forward
	// independently under its own lock). Epoch remains part of the map
	// key, so correctness — a result is only returned to a request that
	// pinned its epoch — is untouched; only shard placement ignores it.
	mix(uint64(uint32(k.Node)))
	mix(uint64(k.Aux))
	for i := 0; i < len(k.Kind); i++ {
		h ^= uint64(k.Kind[i])
		h *= fnvPrime
	}
	for i := 0; i < len(k.Params); i++ {
		h ^= uint64(k.Params[i])
		h *= fnvPrime
	}
	return h
}

// Outcome reports how a Do call obtained its value.
type Outcome int

const (
	// Computed: this caller ran the compute function.
	Computed Outcome = iota
	// Hit: the value was already cached.
	Hit
	// Shared: an identical concurrent call was in flight; its result was
	// shared without running compute again.
	Shared
)

func (o Outcome) String() string {
	switch o {
	case Hit:
		return "hit"
	case Shared:
		return "shared"
	default:
		return "computed"
	}
}

// Cache is a bounded, sharded result cache with single-flight coalescing.
// All methods are safe for concurrent use.
type Cache struct {
	shards []shard
	mask   uint64
	cap    int // max entries per shard; 0 disables storage (coalescing only)

	hits         atomic.Uint64
	misses       atomic.Uint64
	coalesced    atomic.Uint64
	evictions    atomic.Uint64
	carried      atomic.Uint64
	carryDropped atomic.Uint64
}

type shard struct {
	mu      sync.Mutex
	entries map[Key]*list.Element
	lru     *list.List // front = most recently used; values are *entry
	flights map[Key]*flight
}

type entry struct {
	key Key
	val any
}

// flight is one in-progress computation; waiters block on done. waiters
// counts the callers interested in the result; when the last of them
// gives up, cancel stops the computation — work nobody is waiting for is
// abandoned instead of burning an engine to completion.
type flight struct {
	done    chan struct{}
	val     any
	err     error
	waiters atomic.Int64
	cancel  context.CancelFunc
}

// New returns a cache bounded to roughly maxEntries results (the bound is
// enforced per shard, so the worst-case total is maxEntries rounded up to
// a multiple of the shard count). maxEntries <= 0 disables storage
// entirely while keeping single-flight coalescing — concurrent identical
// queries still collapse to one engine run, but nothing is retained.
func New(maxEntries int) *Cache {
	nShards := 16
	for nShards > 1 && nShards*4 > maxEntries && maxEntries > 0 {
		nShards /= 2
	}
	if maxEntries <= 0 {
		nShards = 1
	}
	c := &Cache{
		shards: make([]shard, nShards),
		mask:   uint64(nShards - 1),
	}
	if maxEntries > 0 {
		c.cap = (maxEntries + nShards - 1) / nShards
	}
	for i := range c.shards {
		c.shards[i].entries = make(map[Key]*list.Element)
		c.shards[i].lru = list.New()
		c.shards[i].flights = make(map[Key]*flight)
	}
	return c
}

func (c *Cache) shardFor(k Key) *shard {
	return &c.shards[k.hash()&c.mask]
}

// Get returns the cached value for k, if present, and refreshes its LRU
// position. It does not join in-flight computations; use Do for that.
func (c *Cache) Get(k Key) (any, bool) {
	s := c.shardFor(k)
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.entries[k]; ok {
		s.lru.MoveToFront(el)
		c.hits.Add(1)
		return el.Value.(*entry).val, true
	}
	c.misses.Add(1)
	return nil, false
}

// Put stores v under k, evicting the least recently used entry of the
// shard if it is full. A nil cache capacity makes Put a no-op.
func (c *Cache) Put(k Key, v any) {
	if c.cap == 0 {
		return
	}
	s := c.shardFor(k)
	s.mu.Lock()
	defer s.mu.Unlock()
	s.put(c, k, v)
}

// put inserts with the shard lock held.
func (s *shard) put(c *Cache, k Key, v any) {
	if c.cap == 0 {
		return
	}
	if el, ok := s.entries[k]; ok {
		el.Value.(*entry).val = v
		s.lru.MoveToFront(el)
		return
	}
	s.entries[k] = s.lru.PushFront(&entry{key: k, val: v})
	if s.lru.Len() > c.cap {
		oldest := s.lru.Back()
		s.lru.Remove(oldest)
		delete(s.entries, oldest.Value.(*entry).key)
		c.evictions.Add(1)
	}
}

// Do returns the value for k: from the cache if present, by joining an
// identical in-flight computation if one is running, and otherwise by
// starting compute and caching its result. Errors are never cached.
//
// compute runs in its own goroutine under a context Do supplies, detached
// from any single caller: every caller — including the one that started
// the flight — waits under its own ctx, so one caller's disconnect or
// short deadline never fails the identical requests coalesced onto the
// flight. The flight context is cancelled only when the last interested
// caller has given up, abandoning work nobody wants; compute should apply
// its own ceiling (e.g. a server-side maximum timeout) on top. A caller
// that joined a flight cancelled by others' departure re-enters and
// computes for itself, so a live request never inherits a dead caller's
// context error.
func (c *Cache) Do(ctx context.Context, k Key, compute func(context.Context) (any, error)) (any, Outcome, error) {
	for {
		s := c.shardFor(k)
		s.mu.Lock()
		if el, ok := s.entries[k]; ok {
			s.lru.MoveToFront(el)
			s.mu.Unlock()
			c.hits.Add(1)
			return el.Value.(*entry).val, Hit, nil
		}
		if f, ok := s.flights[k]; ok {
			f.waiters.Add(1)
			s.mu.Unlock()
			c.coalesced.Add(1)
			select {
			case <-f.done:
				if errors.Is(f.err, context.Canceled) && ctx.Err() == nil {
					// The flight died because every earlier caller left,
					// not because of anything wrong with this one: retry
					// (the flight is unregistered by now, so the next pass
					// becomes the leader).
					continue
				}
				return f.val, Shared, f.err
			case <-ctx.Done():
				if f.waiters.Add(-1) == 0 {
					f.cancel()
				}
				return nil, Shared, ctx.Err()
			}
		}
		fctx, cancel := context.WithCancel(context.WithoutCancel(ctx))
		f := &flight{done: make(chan struct{}), cancel: cancel}
		f.waiters.Store(1)
		s.flights[k] = f
		s.mu.Unlock()
		c.misses.Add(1)

		go func() {
			completed := false
			defer func() {
				// Recover is load-bearing twice over: waiters must never
				// block forever on a flight whose compute died, and a panic
				// in this detached goroutine would otherwise kill the
				// process.
				if !completed {
					f.err = fmt.Errorf("cache: compute for %v panicked", k)
				}
				s.mu.Lock()
				delete(s.flights, k)
				if f.err == nil {
					s.put(c, k, f.val)
				}
				s.mu.Unlock()
				close(f.done)
				cancel()
				if !completed {
					recover()
				}
			}()
			f.val, f.err = compute(fctx)
			completed = true
		}()

		select {
		case <-f.done:
			return f.val, Computed, f.err
		case <-ctx.Done():
			if f.waiters.Add(-1) == 0 {
				f.cancel()
			}
			return nil, Computed, ctx.Err()
		}
	}
}

// Delta is the cache-facing view of one committed epoch advance: entries
// keyed at FromEpoch are candidates to survive as ToEpoch entries. The
// cache knows nothing about graphs or affected sets — the caller encodes
// that judgment in the keep callback passed to CarryForward.
type Delta struct {
	FromEpoch uint64
	ToEpoch   uint64
}

// CarryForward re-keys every entry from d.FromEpoch to d.ToEpoch for
// which keep returns true, and drops the rest of the FromEpoch entries.
// Entries at other epochs are untouched (a later Sweep reclaims them).
// It returns the number of entries carried.
//
// keep is called with the entry's key and stored value while the shard
// lock is held: it must be fast, must not call back into the cache, and
// must return true only if the value is guaranteed bit-identical to a
// fresh computation at d.ToEpoch (the caller's affected-set judgment).
// A nil keep carries nothing (every FromEpoch entry is dropped).
//
// The work is O(stored entries) per call and allocation-free on the
// payloads: re-keying rewrites the entry's key in place and moves the
// map pointer — the cached result itself is never copied. If a fresh
// ToEpoch entry already exists under the target key (a query raced ahead
// and computed at the new epoch), the fresh entry wins and the stale
// candidate is dropped.
func (c *Cache) CarryForward(d Delta, keep func(Key, any) bool) int {
	carried := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		for el := s.lru.Front(); el != nil; {
			next := el.Next()
			e := el.Value.(*entry)
			if e.key.Epoch == d.FromEpoch {
				nk := e.key
				nk.Epoch = d.ToEpoch
				_, taken := s.entries[nk]
				if !taken && keep != nil && keep(e.key, e.val) {
					delete(s.entries, e.key)
					e.key = nk // same hash (epoch is not mixed in): stays in this shard
					s.entries[nk] = el
					carried++
				} else {
					s.lru.Remove(el)
					delete(s.entries, e.key)
					c.carryDropped.Add(1)
				}
			}
			el = next
		}
		s.mu.Unlock()
	}
	if carried > 0 {
		c.carried.Add(uint64(carried))
	}
	return carried
}

// Sweep drops every stored entry whose epoch differs from current and
// returns how many were removed. Entries from superseded epochs are
// already unreachable (the epoch is in the key), so Sweep is purely a
// memory-hygiene accelerant for sources that mutate faster than LRU
// pressure would recycle their shards.
func (c *Cache) Sweep(current uint64) int {
	removed := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		for el := s.lru.Front(); el != nil; {
			next := el.Next()
			e := el.Value.(*entry)
			if e.key.Epoch != current {
				s.lru.Remove(el)
				delete(s.entries, e.key)
				removed++
			}
			el = next
		}
		s.mu.Unlock()
	}
	if removed > 0 {
		c.evictions.Add(uint64(removed))
	}
	return removed
}

// Stats is a point-in-time snapshot of the cache counters.
type Stats struct {
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Coalesced uint64 `json:"coalesced"`
	Evictions uint64 `json:"evictions"`
	// Carried counts entries re-keyed to a new epoch by CarryForward;
	// CarryDropped counts the candidates it refused (affected by the
	// mutation, raced by a fresh entry, or a Total-fallback delta).
	Carried      uint64 `json:"carried"`
	CarryDropped uint64 `json:"carry_dropped"`
	Entries      int    `json:"entries"`
}

// Stats returns current counters and the live entry count.
func (c *Cache) Stats() Stats {
	st := Stats{
		Hits:         c.hits.Load(),
		Misses:       c.misses.Load(),
		Coalesced:    c.coalesced.Load(),
		Evictions:    c.evictions.Load(),
		Carried:      c.carried.Load(),
		CarryDropped: c.carryDropped.Load(),
	}
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		st.Entries += s.lru.Len()
		s.mu.Unlock()
	}
	return st
}
