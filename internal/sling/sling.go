// Package sling implements SLING (Tian & Xiao, SIGMOD 2016 [31]), the
// index-based baseline built on the decomposition
//
//	s(u,v) = Σ_ℓ Σ_w h^(ℓ)(u,w) · η(w) · h^(ℓ)(v,w)   (Eq. 3)
//
// The index materializes (i) η(w) — the probability that two independent
// √c-walks from w never meet — estimated by paired-walk sampling for every
// node, and (ii) per-node reverse lists {(ℓ, v, h^(ℓ)(v,w)) : h ≥ ε_a}
// computed by backward pushes. Queries run a forward push from u and join
// the lists. As the paper observes, the index is an order of magnitude
// larger than the graph and must be rebuilt on every update — the
// motivation for index-free SimPush.
package sling

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"sync"

	"github.com/simrank/simpush/internal/graph"
	"github.com/simrank/simpush/internal/limits"
	"github.com/simrank/simpush/internal/push"
	"github.com/simrank/simpush/internal/rnd"
	"github.com/simrank/simpush/internal/walk"
)

// Params configures SLING. EpsA is the absolute error knob swept by the
// paper ({0.5, 0.1, 0.05, 0.01, 0.005}).
type Params struct {
	C     float64 // decay factor; default 0.6
	EpsA  float64 // error parameter; default 0.1
	Delta float64 // failure probability; default 1e-4
	Seed  uint64
	// EtaSamples caps the paired-walk sample size per node for η
	// estimation. The theoretical count (∝1/ε²) is impractical for every
	// node of a large graph — the exact reason SLING preprocessing is
	// heavy; default 5000.
	EtaSamples int
	// MaxIndexBytes aborts Build with limits.ErrIndexTooLarge when the
	// reverse lists exceed the cap (0 = unlimited). Mirrors the paper's
	// exclusion of out-of-memory configurations.
	MaxIndexBytes int64
}

func (p *Params) fill() {
	if p.C == 0 {
		p.C = 0.6
	}
	if p.EpsA == 0 {
		p.EpsA = 0.1
	}
	if p.Delta == 0 {
		p.Delta = 1e-4
	}
	if p.EtaSamples == 0 {
		p.EtaSamples = 5000
	}
}

// entry is one reverse-list element: h^(level)(v, w) for the owning w.
type entry struct {
	level int32
	v     int32
	h     float64
}

// Engine is a SLING engine; Build must be called before Query.
type Engine struct {
	g *graph.Graph
	p Params

	maxDepth int
	built    bool

	eta []float64 // η(w) per node
	// reverse lists in CSR form: entries[off[w]:off[w+1]] belong to w.
	off     []int64
	entries []entry

	// query scratch
	cur, nxt   []float64
	curT, nxtT []int32
}

// New returns an unbuilt SLING engine.
func New(g *graph.Graph, p Params) (*Engine, error) {
	p.fill()
	if p.C <= 0 || p.C >= 1 {
		return nil, fmt.Errorf("sling: c must be in (0,1), got %v", p.C)
	}
	if p.EpsA <= 0 || p.EpsA >= 1 {
		return nil, fmt.Errorf("sling: eps_a must be in (0,1), got %v", p.EpsA)
	}
	return &Engine{g: g, p: p, maxDepth: push.MaxLevels(p.C, p.EpsA)}, nil
}

// Name implements engine.Engine.
func (e *Engine) Name() string { return "SLING" }

// Setting implements engine.Engine.
func (e *Engine) Setting() string { return fmt.Sprintf("eps_a=%g", e.p.EpsA) }

// Indexed implements engine.Engine.
func (e *Engine) Indexed() bool { return true }

// IndexBytes implements engine.Engine.
func (e *Engine) IndexBytes() int64 {
	return int64(len(e.eta))*8 + int64(len(e.off))*8 + int64(len(e.entries))*16 +
		int64(len(e.cur)+len(e.nxt))*8
}

// etaSampleCount returns the paired-walk samples per node: the Hoeffding
// count for ±ε_a/2 capped at EtaSamples.
func (e *Engine) etaSampleCount() int {
	n := float64(e.g.N())
	if n < 2 {
		n = 2
	}
	half := e.p.EpsA / 2
	cnt := int(math.Ceil(math.Log(2*n/e.p.Delta) / (2 * half * half)))
	if cnt > e.p.EtaSamples {
		cnt = e.p.EtaSamples
	}
	if cnt < 16 {
		cnt = 16
	}
	return cnt
}

// Build constructs the η table and the reverse lists. It parallelizes
// across nodes (preprocessing time is reported separately from queries).
func (e *Engine) Build() error {
	n := e.g.N()
	e.eta = make([]float64, n)
	etaCnt := e.etaSampleCount()

	workers := runtime.GOMAXPROCS(0)
	var wg sync.WaitGroup
	chunk := int(n)/workers + 1
	for k := 0; k < workers; k++ {
		lo := int32(k * chunk)
		hi := lo + int32(chunk)
		if hi > n {
			hi = n
		}
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(lo, hi int32, seed uint64) {
			defer wg.Done()
			w := walk.NewWalker(e.g, e.p.C, rnd.New(seed))
			for v := lo; v < hi; v++ {
				never := 0
				for s := 0; s < etaCnt; s++ {
					if !meetAfterSplit(w, v) {
						never++
					}
				}
				e.eta[v] = float64(never) / float64(etaCnt)
			}
		}(lo, hi, e.p.Seed+uint64(k)*0x9e3779b97f4a7c15+7)
	}
	wg.Wait()

	// Reverse lists via per-node backward pushes, parallel with private
	// probers, then stitched into CSR.
	lists := make([][]entry, n)
	var sizeApprox int64
	var sizeMu sync.Mutex
	var buildErr error
	var next int32
	var nextMu sync.Mutex
	wg = sync.WaitGroup{}
	for k := 0; k < workers; k++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			pr := push.NewProber(e.g, e.p.C)
			for {
				nextMu.Lock()
				v := next
				next++
				nextMu.Unlock()
				if v >= n {
					return
				}
				var list []entry
				pr.Push(v, e.maxDepth, e.p.EpsA, nil, func(d int, nodes []int32, vals []float64) {
					for i, node := range nodes {
						if vals[i] >= e.p.EpsA {
							list = append(list, entry{level: int32(d), v: node, h: vals[i]})
						}
					}
				})
				lists[v] = list
				sizeMu.Lock()
				sizeApprox += int64(len(list)) * 16
				if e.p.MaxIndexBytes > 0 && sizeApprox > e.p.MaxIndexBytes && buildErr == nil {
					buildErr = &limits.ErrIndexTooLarge{Need: sizeApprox, Cap: e.p.MaxIndexBytes}
				}
				over := buildErr != nil
				sizeMu.Unlock()
				if over {
					return
				}
			}
		}()
	}
	wg.Wait()
	if buildErr != nil {
		e.eta, e.entries, e.off = nil, nil, nil
		return buildErr
	}

	e.off = make([]int64, n+1)
	total := 0
	for v := int32(0); v < n; v++ {
		total += len(lists[v])
		e.off[v+1] = int64(total)
	}
	e.entries = make([]entry, 0, total)
	for v := int32(0); v < n; v++ {
		e.entries = append(e.entries, lists[v]...)
	}
	e.cur = make([]float64, n)
	e.nxt = make([]float64, n)
	e.built = true
	return nil
}

// meetAfterSplit simulates two independent √c-walks from v and reports
// whether they ever coincide at the same step (after step 0).
func meetAfterSplit(w *walk.Walker, v int32) bool {
	a, b := v, v
	for {
		na, okA := w.Next(a)
		nb, okB := w.Next(b)
		if !okA || !okB {
			return false
		}
		a, b = na, nb
		if a == b {
			return true
		}
	}
}

// Query runs a forward push from u and joins the reverse lists.
// Cancellation is checked once per forward-push level.
func (e *Engine) Query(ctx context.Context, u int32) ([]float64, error) {
	if !e.built {
		return nil, fmt.Errorf("sling: Query before Build")
	}
	if !e.g.HasNode(u) {
		return nil, fmt.Errorf("sling: %w: node %d not in [0, %d)", limits.ErrNodeOutOfRange, u, e.g.N())
	}
	scores := make([]float64, e.g.N())
	cur, nxt := e.cur, e.nxt
	curT, nxtT := e.curT[:0], e.nxtT[:0]
	cur[u] = 1
	curT = append(curT, u)
	for l := 1; l <= e.maxDepth && len(curT) > 0; l++ {
		if err := ctx.Err(); err != nil {
			// Zero the shared scratch before aborting.
			for _, v := range curT {
				cur[v] = 0
			}
			e.cur, e.nxt = cur, nxt
			e.curT, e.nxtT = curT[:0], nxtT[:0]
			return nil, err
		}
		// advance the forward push one level: h^(l)(u, ·)
		for _, v := range curT {
			hv := cur[v]
			cur[v] = 0
			if hv < e.p.EpsA && l > 1 {
				continue
			}
			in := e.g.In(v)
			if len(in) == 0 {
				continue
			}
			wgt := math.Sqrt(e.p.C) * hv / float64(len(in))
			for _, vp := range in {
				if nxt[vp] == 0 {
					nxtT = append(nxtT, vp)
				}
				nxt[vp] += wgt
			}
		}
		curT = curT[:0]
		cur, nxt = nxt, cur
		curT, nxtT = nxtT, curT
		// join: for each significant w at level l, add h_u·η(w)·h_v
		for _, w := range curT {
			hu := cur[w]
			if hu < e.p.EpsA {
				continue
			}
			factor := hu * e.eta[w]
			for _, ent := range e.entries[e.off[w]:e.off[w+1]] {
				if ent.level == int32(l) {
					scores[ent.v] += factor * ent.h
				}
			}
		}
	}
	for _, v := range curT {
		cur[v] = 0
	}
	e.cur, e.nxt = cur, nxt
	e.curT, e.nxtT = curT[:0], nxtT[:0]
	scores[u] = 1
	return scores, nil
}
