package sling

import (
	"context"
	"errors"
	"math"
	"testing"

	"github.com/simrank/simpush/internal/exact"
	"github.com/simrank/simpush/internal/gen"
	"github.com/simrank/simpush/internal/graph"
	"github.com/simrank/simpush/internal/limits"
)

const c = 0.6

func built(t testing.TB, g *graph.Graph, p Params) *Engine {
	t.Helper()
	e, err := New(g, p)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Build(); err != nil {
		t.Fatal(err)
	}
	return e
}

func TestValidation(t *testing.T) {
	g := gen.Cycle(4)
	if _, err := New(g, Params{C: 2}); err == nil {
		t.Fatal("c=2 accepted")
	}
	if _, err := New(g, Params{EpsA: -1}); err == nil {
		t.Fatal("eps=-1 accepted")
	}
	e, err := New(g, Params{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Query(context.Background(), 0); err == nil {
		t.Fatal("query before build accepted")
	}
}

func TestMetadata(t *testing.T) {
	e := built(t, gen.Cycle(5), Params{EpsA: 0.1, Seed: 1})
	if e.Name() != "SLING" || !e.Indexed() || e.Setting() == "" {
		t.Fatal("metadata wrong")
	}
	if e.IndexBytes() <= 0 {
		t.Fatal("index bytes missing")
	}
	if _, err := e.Query(context.Background(), 77); err == nil {
		t.Fatal("bad node accepted")
	}
}

func TestEtaOnCycle(t *testing.T) {
	// On a directed cycle, two walks from the same node move in lockstep
	// and meet at step 1 with probability c (both survive), so
	// η = 1 - c/(1-?)... both walks always coincide while both alive:
	// they meet at step 1 iff both take a step: probability c. If one
	// stops first they never meet. η = 1 - c.
	e := built(t, gen.Cycle(8), Params{EpsA: 0.05, Seed: 2})
	for v := int32(0); v < 8; v++ {
		if math.Abs(e.eta[v]-(1-c)) > 0.03 {
			t.Fatalf("η(%d) = %v, want %v", v, e.eta[v], 1-c)
		}
	}
}

func TestSharedParent(t *testing.T) {
	g := graph.MustFromPairs([2]int32{0, 1}, [2]int32{0, 2})
	e := built(t, g, Params{EpsA: 0.01, Seed: 3})
	s, err := e.Query(context.Background(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s[2]-c) > 0.03 {
		t.Fatalf("s(1,2) = %v, want %v", s[2], c)
	}
	if s[1] != 1 {
		t.Fatal("self score")
	}
}

func TestAccuracyVsExact(t *testing.T) {
	g, err := gen.CopyingModel(120, 5, 0.3, 4)
	if err != nil {
		t.Fatal(err)
	}
	ex, err := exact.AllPairs(g, exact.Options{C: c})
	if err != nil {
		t.Fatal(err)
	}
	const epsA = 0.02
	e := built(t, g, Params{EpsA: epsA, Seed: 5})
	for _, u := range []int32{3, 40, 99} {
		s, err := e.Query(context.Background(), u)
		if err != nil {
			t.Fatal(err)
		}
		var worst, sum float64
		for v := int32(0); v < g.N(); v++ {
			if v == u {
				continue
			}
			d := math.Abs(ex.At(u, v) - s[v])
			sum += d
			if d > worst {
				worst = d
			}
		}
		avg := sum / float64(g.N()-1)
		if avg > epsA {
			t.Fatalf("u=%d: avg error %v exceeds eps_a %v", u, avg, epsA)
		}
		if worst > 5*epsA {
			t.Fatalf("u=%d: worst error %v too large", u, worst)
		}
	}
}

func TestIndexCap(t *testing.T) {
	g, err := gen.CopyingModel(500, 6, 0.3, 7)
	if err != nil {
		t.Fatal(err)
	}
	e, err := New(g, Params{EpsA: 0.005, MaxIndexBytes: 1024})
	if err != nil {
		t.Fatal(err)
	}
	err = e.Build()
	var tooBig *limits.ErrIndexTooLarge
	if !errors.As(err, &tooBig) {
		t.Fatalf("expected ErrIndexTooLarge, got %v", err)
	}
}

func TestIndexGrowsWithPrecision(t *testing.T) {
	g, err := gen.CopyingModel(300, 5, 0.3, 9)
	if err != nil {
		t.Fatal(err)
	}
	coarse := built(t, g, Params{EpsA: 0.2, Seed: 1})
	fine := built(t, g, Params{EpsA: 0.02, Seed: 1})
	if fine.IndexBytes() <= coarse.IndexBytes() {
		t.Fatalf("finer eps should grow index: %d vs %d", fine.IndexBytes(), coarse.IndexBytes())
	}
}
