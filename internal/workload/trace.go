package workload

import (
	"fmt"
	"sort"
	"time"

	"github.com/simrank/simpush/internal/rnd"
)

// Request is one entry of a generated trace: what to send and when
// (relative to the run's start). The JSON encoding is the replayability
// artifact — two runs of the same (spec, seed) must produce byte-equal
// encodings (property-tested in trace_test.go).
type Request struct {
	At    time.Duration `json:"at_ns"`
	Class string        `json:"class"`
	Op    Op            `json:"op"`
	Node  int32         `json:"node"`
	Node2 int32         `json:"node2,omitempty"` // pair's v / mutation's "to"
	K     int           `json:"k,omitempty"`
	Nodes []int32       `json:"nodes,omitempty"` // batch bodies
	Seed  uint64        `json:"seed,omitempty"`  // 0 = no ?seed parameter
	Eps   float64       `json:"eps,omitempty"`
}

// classStreams holds one class's derived random substreams. Each concern
// (arrival times, node popularity, op mix, fresh seeds) draws from its
// own substream so adding draws to one cannot shift another — the same
// isolation the parallel engine gets from Walker.DeriveSeed.
type classStreams struct {
	arrival *rnd.Source
	node    *rnd.Source
	mix     *rnd.Source
	seed    *rnd.Source
}

// deriveStreams builds each class's substreams from the spec seed. The
// k-th class's streams depend only on (spec.Seed, k), never on how much
// randomness other classes consumed.
func deriveStreams(seed uint64, classes int) []classStreams {
	root := rnd.New(seed)
	out := make([]classStreams, classes)
	for i := range out {
		cls := rnd.New(root.Uint64())
		out[i] = classStreams{
			arrival: cls.Split(),
			node:    cls.Split(),
			mix:     cls.Split(),
			seed:    cls.Split(),
		}
	}
	return out
}

// classSampler turns one class spec plus its substreams into concrete
// requests.
type classSampler struct {
	spec    *ClassSpec
	streams classStreams
	nodes   nodeSampler
	mix     []OpMix // cumulative weights
	mixSum  float64
	n       int32

	// addedEdges is the FIFO of edges this class has inserted and not
	// yet removed; remove-edge always takes the oldest one, so replayed
	// removals (in trace order) can never miss — an unmatched removal
	// would poison the server's next snapshot for unrelated queries.
	addedEdges [][2]int32
}

func newClassSampler(spec *ClassSpec, streams classStreams, n int32) *classSampler {
	cum := make([]OpMix, len(spec.Mix))
	sum := 0.0
	for i, m := range spec.Mix {
		sum += m.Weight
		cum[i] = OpMix{Op: m.Op, Weight: sum}
	}
	return &classSampler{
		spec:    spec,
		streams: streams,
		nodes:   newNodeSampler(&spec.Popularity, n),
		mix:     cum,
		mixSum:  sum,
		n:       n,
	}
}

func (c *classSampler) sampleOp() Op {
	x := c.streams.mix.Float64() * c.mixSum
	for _, m := range c.mix {
		if x < m.Weight {
			return m.Op
		}
	}
	return c.mix[len(c.mix)-1].Op
}

// pinnedSeed derives a per-node seed: a pure function of the node id, so
// every request for one node is cache-identical across classes and runs.
func pinnedSeed(node int32) uint64 {
	x := uint64(node)*0x9e3779b97f4a7c15 + 1
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

func (c *classSampler) requestSeed(node int32, hot bool) uint64 {
	switch c.spec.SeedPolicy {
	case "fresh":
		return c.streams.seed.Uint64()
	case "hot-pinned":
		if hot {
			return pinnedSeed(node)
		}
		return c.streams.seed.Uint64()
	default: // "", "pinned"
		return pinnedSeed(node)
	}
}

// next generates this class's next request. All randomness comes from
// the class substreams, so the i-th request of a class is deterministic
// in (spec, seed, i).
func (c *classSampler) next(at time.Duration) Request {
	req := Request{At: at, Class: c.spec.Name, Eps: c.spec.Eps}
	switch op := c.sampleOp(); op {
	case OpSingleSource:
		node, hot := c.nodes.sample(c.streams.node)
		req.Op, req.Node, req.Seed = op, node, c.requestSeed(node, hot)
	case OpTopK:
		node, hot := c.nodes.sample(c.streams.node)
		k := c.spec.K
		if k <= 0 {
			k = 10
		}
		req.Op, req.Node, req.K, req.Seed = op, node, k, c.requestSeed(node, hot)
	case OpPair:
		u, hot := c.nodes.sample(c.streams.node)
		v, _ := c.nodes.sample(c.streams.node)
		req.Op, req.Node, req.Node2, req.Seed = op, u, v, c.requestSeed(u, hot)
	case OpBatch:
		size := c.spec.Batch
		if size <= 0 {
			size = 16
		}
		nodes := make([]int32, size)
		for i := range nodes {
			nodes[i], _ = c.nodes.sample(c.streams.node)
		}
		req.Op, req.Nodes, req.K = op, nodes, c.spec.K
		req.Node = nodes[0]
		req.Seed = c.requestSeed(nodes[0], false)
	case OpAddEdge:
		req = c.addEdge(req)
	case OpRemoveEdge:
		if len(c.addedEdges) == 0 {
			// Nothing of ours to remove yet; insert instead so the trace
			// never issues a removal the server must reject.
			req = c.addEdge(req)
			break
		}
		e := c.addedEdges[0]
		c.addedEdges = c.addedEdges[1:]
		req.Op, req.Node, req.Node2 = OpRemoveEdge, e[0], e[1]
	}
	return req
}

func (c *classSampler) addEdge(req Request) Request {
	from := c.streams.node.Int31n(c.n)
	to := c.streams.node.Int31n(c.n)
	if to == from {
		to = (to + 1) % c.n
	}
	c.addedEdges = append(c.addedEdges, [2]int32{from, to})
	req.Op, req.Node, req.Node2 = OpAddEdge, from, to
	return req
}

// Trace generates the full open-loop request trace of the spec against a
// graph of n nodes: every class's timed arrivals, merged into one
// ascending timeline. Ties are broken by class order (and, within a
// class, generation order), so the merge is deterministic.
//
// Closed-loop specs have no pregenerated trace; Trace returns an error
// for them (the runner paces those from the same per-class samplers).
func (s *Spec) Trace(n int32) ([]Request, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if n <= 0 {
		return nil, fmt.Errorf("workload %s: graph size must be positive (got %d)", s.Name, n)
	}
	closed, err := s.closed()
	if err != nil {
		return nil, err
	}
	if closed {
		return nil, fmt.Errorf("workload %s: closed-loop specs have no pregenerated trace", s.Name)
	}
	streams := deriveStreams(s.Seed, len(s.Classes))
	var all []Request
	for i := range s.Classes {
		cls := &s.Classes[i]
		sampler := newClassSampler(cls, streams[i], n)
		for _, at := range cls.Arrival.arrivalTimes(time.Duration(s.Duration), streams[i].arrival) {
			all = append(all, sampler.next(at))
		}
	}
	// Each class's slice is already time-ordered; a stable sort on At
	// alone keeps intra-class order and breaks cross-class ties by the
	// deterministic append order above.
	sort.SliceStable(all, func(i, j int) bool { return all[i].At < all[j].At })
	return all, nil
}
