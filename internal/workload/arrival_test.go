package workload

import (
	"math"
	"testing"
	"time"

	"github.com/simrank/simpush/internal/rnd"
)

func meanVar(xs []float64) (mean, variance float64) {
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	for _, x := range xs {
		variance += (x - mean) * (x - mean)
	}
	variance /= float64(len(xs))
	return mean, variance
}

func interarrivals(times []time.Duration) []float64 {
	out := make([]float64, 0, len(times))
	prev := 0.0
	for _, t := range times {
		s := t.Seconds()
		out = append(out, s-prev)
		prev = s
	}
	return out
}

// TestPoissonInterarrivalMoments checks the open-loop Poisson process
// against its analytic moments: Exp(λ) interarrivals have mean 1/λ and
// variance 1/λ².
func TestPoissonInterarrivalMoments(t *testing.T) {
	const rate = 200.0
	a := &ArrivalSpec{Process: "poisson", RateRPS: rate}
	times := a.arrivalTimes(300*time.Second, rnd.New(42))
	if len(times) < 50000 {
		t.Fatalf("want a large sample, got %d arrivals", len(times))
	}
	gaps := interarrivals(times)
	mean, variance := meanVar(gaps)
	if math.Abs(mean-1/rate) > 0.05/rate {
		t.Errorf("Poisson interarrival mean = %.6f, want %.6f ±5%%", mean, 1/rate)
	}
	if math.Abs(variance-1/(rate*rate)) > 0.10/(rate*rate) {
		t.Errorf("Poisson interarrival variance = %.3e, want %.3e ±10%%", variance, 1/(rate*rate))
	}
}

// TestBurstyRateBetweenPhases checks the Markov-modulated process: the
// long-run rate must match the phase-weighted mixture of the baseline
// and burst rates, and must exceed what the baseline alone would give —
// i.e. the bursts are really there.
func TestBurstyRateBetweenPhases(t *testing.T) {
	a := &ArrivalSpec{
		Process: "bursty",
		RateRPS: 10, BurstRateRPS: 200,
		OnMean:  Duration(time.Second),
		OffMean: Duration(3 * time.Second),
	}
	// A long window: the on-time fraction of ~N cycles has ~1/√N relative
	// noise, so hundreds of cycles are needed for a ±10% assertion.
	window := 4000 * time.Second
	times := a.arrivalTimes(window, rnd.New(7))
	rate := float64(len(times)) / window.Seconds()

	// Expected long-run rate: (offMean·base + onMean·burst)/(onMean+offMean).
	want := (3.0*10 + 1.0*200) / 4.0
	if math.Abs(rate-want) > 0.10*want {
		t.Errorf("bursty long-run rate = %.1f rps, want %.1f ±10%%", rate, want)
	}

	// Burstiness: interarrival variance must exceed a plain Poisson's at
	// the same mean rate (the index of dispersion of an MMPP is > 1).
	gaps := interarrivals(times)
	mean, variance := meanVar(gaps)
	if variance <= mean*mean {
		t.Errorf("bursty interarrivals look Poisson: var %.3e <= mean² %.3e", variance, mean*mean)
	}
}

// TestDiurnalRateCurve checks the thinned non-homogeneous process: the
// total count matches the integral of the rate curve, and the trough
// half of the period sees measurably less traffic than the peak half.
func TestDiurnalRateCurve(t *testing.T) {
	peak, minFrac := 120.0, 0.2
	period := 100 * time.Second
	a := &ArrivalSpec{Process: "diurnal", RateRPS: peak, Period: Duration(period), MinFrac: minFrac}
	times := a.arrivalTimes(period, rnd.New(3)) // exactly one period

	rate := float64(len(times)) / period.Seconds()
	want := peak * (minFrac + (1-minFrac)/2) // mean of the sinusoid
	if math.Abs(rate-want) > 0.10*want {
		t.Errorf("diurnal mean rate = %.1f rps, want %.1f ±10%%", rate, want)
	}

	// First and last quarters surround the trough (cosine starts there);
	// the middle half holds the peak.
	quarter := period.Seconds() / 4
	var trough, peakCount int
	for _, at := range times {
		s := at.Seconds()
		if s < quarter || s > 3*quarter {
			trough++
		} else {
			peakCount++
		}
	}
	if float64(peakCount) < 1.5*float64(trough) {
		t.Errorf("diurnal curve too flat: peak half %d vs trough half %d arrivals", peakCount, trough)
	}
}

// TestArrivalsSortedAndInWindow: every process must emit ascending
// offsets strictly inside the run window.
func TestArrivalsSortedAndInWindow(t *testing.T) {
	window := 20 * time.Second
	specs := []*ArrivalSpec{
		{Process: "poisson", RateRPS: 50},
		{Process: "bursty", RateRPS: 5, BurstRateRPS: 100, OnMean: Duration(time.Second), OffMean: Duration(2 * time.Second)},
		{Process: "diurnal", RateRPS: 50, Period: Duration(10 * time.Second), MinFrac: 0.1},
	}
	for _, a := range specs {
		times := a.arrivalTimes(window, rnd.New(11))
		if len(times) == 0 {
			t.Fatalf("%s: no arrivals", a.Process)
		}
		prev := time.Duration(-1)
		for i, at := range times {
			if at < prev {
				t.Fatalf("%s: arrivals not ascending at %d: %v after %v", a.Process, i, at, prev)
			}
			if at < 0 || at >= window {
				t.Fatalf("%s: arrival %v outside [0, %v)", a.Process, at, window)
			}
			prev = at
		}
	}
}
