package workload

import (
	"math"
	"time"

	"github.com/simrank/simpush/internal/rnd"
)

// arrivalTimes generates every request offset of one open-loop class in
// [0, d), in ascending order, deterministically from rng. Closed-loop
// classes have no pregenerated times (the server paces them).
func (a *ArrivalSpec) arrivalTimes(d time.Duration, rng *rnd.Source) []time.Duration {
	switch a.Process {
	case "poisson":
		return poissonTimes(d, a.RateRPS, rng)
	case "bursty":
		return burstyTimes(d, a, rng)
	case "diurnal":
		return diurnalTimes(d, a, rng)
	}
	return nil
}

// expSeconds draws an Exp(rate) interarrival in seconds. Float64 is in
// [0, 1), so 1-u is in (0, 1] and the log is finite.
func expSeconds(rate float64, rng *rnd.Source) float64 {
	return -math.Log(1-rng.Float64()) / rate
}

// poissonTimes is the open-loop Poisson process: i.i.d. exponential
// interarrivals at a fixed rate.
func poissonTimes(d time.Duration, rate float64, rng *rnd.Source) []time.Duration {
	out := make([]time.Duration, 0, int(rate*d.Seconds())+16)
	t := 0.0
	end := d.Seconds()
	for {
		t += expSeconds(rate, rng)
		if t >= end {
			return out
		}
		out = append(out, time.Duration(t*float64(time.Second)))
	}
}

// burstyTimes is a Markov-modulated Poisson process: the class
// alternates between an off-phase at RateRPS and an on-phase at
// BurstRateRPS, with exponentially distributed phase lengths. Because
// the exponential is memoryless, redrawing the interarrival from each
// phase boundary samples the MMPP exactly, not approximately.
func burstyTimes(d time.Duration, a *ArrivalSpec, rng *rnd.Source) []time.Duration {
	var out []time.Duration
	end := d.Seconds()
	t := 0.0    // current time, seconds
	on := false // start in the baseline phase
	phaseEnd := expSeconds(1/seconds(a.OffMean), rng)
	for t < end {
		rate := a.RateRPS
		if on {
			rate = a.BurstRateRPS
		}
		if rate <= 0 {
			// Silent phase: jump straight to the phase boundary.
			t = phaseEnd
		} else {
			next := t + expSeconds(rate, rng)
			if next < phaseEnd {
				t = next
				if t < end {
					out = append(out, time.Duration(t*float64(time.Second)))
				}
				continue
			}
			t = phaseEnd
		}
		on = !on
		mean := seconds(a.OffMean)
		if on {
			mean = seconds(a.OnMean)
		}
		phaseEnd = t + expSeconds(1/mean, rng)
	}
	return out
}

// diurnalTimes samples a non-homogeneous Poisson process whose rate
// follows one sinusoid per Period between MinFrac×RateRPS and RateRPS,
// via Lewis–Shedler thinning against the peak rate.
func diurnalTimes(d time.Duration, a *ArrivalSpec, rng *rnd.Source) []time.Duration {
	var out []time.Duration
	peak := a.RateRPS
	period := seconds(a.Period)
	end := d.Seconds()
	t := 0.0
	for {
		t += expSeconds(peak, rng)
		if t >= end {
			return out
		}
		if rng.Float64()*peak < diurnalRate(t, peak, a.MinFrac, period) {
			out = append(out, time.Duration(t*float64(time.Second)))
		}
	}
}

// diurnalRate is the instantaneous rate at second t: a cosine curve
// starting at the trough, peaking mid-period.
func diurnalRate(t, peak, minFrac float64, period float64) float64 {
	phase := 0.5 - 0.5*math.Cos(2*math.Pi*t/period)
	return peak * (minFrac + (1-minFrac)*phase)
}

// seconds converts the spec's Duration to float seconds.
func seconds(d Duration) float64 { return time.Duration(d).Seconds() }
