package workload

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"sync"
	"time"

	"github.com/simrank/simpush/internal/rnd"
)

// RunOptions parameterizes one workload run against a live target.
type RunOptions struct {
	// Target is the base URL of a simrankd or simproxy.
	Target string

	// Timeout is the per-request client timeout (default 30s).
	Timeout time.Duration

	// MaxOutstanding bounds concurrently outstanding open-loop requests
	// (default 256). When the bound is hit the scheduler falls behind
	// instead of spawning unboundedly; the resulting lateness is charged
	// to request latency (measured from the scheduled send time), so
	// overload is visible in the SLO numbers rather than hidden.
	MaxOutstanding int

	// HTTPClient overrides the transport (tests).
	HTTPClient *http.Client
}

// targetStats is the subset of /statsz the runner reads. simproxy
// mirrors these field names, so the same decode works against a single
// daemon or a whole cluster.
type targetStats struct {
	GraphN int32  `json:"graph_n"`
	Epoch  uint64 `json:"epoch"`
	Cache  struct {
		Hits      uint64 `json:"hits"`
		Misses    uint64 `json:"misses"`
		Coalesced uint64 `json:"coalesced"`
	} `json:"cache"`
	Client struct {
		Queries uint64 `json:"queries"`
	} `json:"client"`
	Admission struct {
		Rejected uint64 `json:"rejected"`
	} `json:"admission"`
}

func fetchTargetStats(client *http.Client, base string) (targetStats, error) {
	var st targetStats
	resp, err := client.Get(base + "/statsz")
	if err != nil {
		return st, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return st, fmt.Errorf("statsz: status %d", resp.StatusCode)
	}
	if err := json.NewDecoder(io.LimitReader(resp.Body, 4<<20)).Decode(&st); err != nil {
		return st, err
	}
	return st, nil
}

// Run executes the spec against the target and scores the result. The
// spec's traffic is fully determined by (spec, seed); the measured
// latencies and statuses are whatever the live server did with it.
func Run(ctx context.Context, spec *Spec, opt RunOptions) (*Report, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	base := strings.TrimRight(opt.Target, "/")
	if base == "" {
		return nil, fmt.Errorf("workload: RunOptions.Target is required")
	}
	if opt.Timeout <= 0 {
		opt.Timeout = 30 * time.Second
	}
	if opt.MaxOutstanding <= 0 {
		opt.MaxOutstanding = 256
	}
	client := opt.HTTPClient
	if client == nil {
		client = &http.Client{Timeout: opt.Timeout}
	}

	before, err := fetchTargetStats(client, base)
	if err != nil {
		return nil, fmt.Errorf("workload: reaching target: %w", err)
	}
	if before.GraphN < 1 {
		return nil, fmt.Errorf("workload: target reports an empty graph (n=%d)", before.GraphN)
	}

	closed, err := spec.closed()
	if err != nil {
		return nil, err
	}

	rec := &recorder{}
	start := time.Now()
	if closed {
		err = runClosed(ctx, spec, before.GraphN, base, client, rec)
	} else {
		err = runOpen(ctx, spec, before.GraphN, base, client, opt.MaxOutstanding, rec)
	}
	elapsed := time.Since(start)
	if err != nil {
		return nil, err
	}

	after, err := fetchTargetStats(client, base)
	if err != nil {
		return nil, fmt.Errorf("workload: reading final stats: %w", err)
	}
	return score(spec, base, elapsed, rec.samples, before, after), nil
}

// recorder collects samples from concurrent senders.
type recorder struct {
	mu      sync.Mutex
	samples []sample
}

func (r *recorder) add(s sample) {
	r.mu.Lock()
	r.samples = append(r.samples, s)
	r.mu.Unlock()
}

// send issues one request and records the observation. Latency is
// measured from t0 — the *scheduled* send time for open-loop traffic —
// so local queueing delay under overload counts against the SLO instead
// of being silently omitted.
func send(client *http.Client, base string, req Request, t0 time.Time, rec *recorder) {
	httpReq, err := buildHTTP(base, req)
	s := sample{class: req.Class, op: req.Op}
	if err == nil {
		var resp *http.Response
		resp, err = client.Do(httpReq)
		if err == nil {
			s.status = resp.StatusCode
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
	}
	if err != nil {
		s.transport = true
	}
	s.latency = time.Since(t0)
	rec.add(s)
}

// buildHTTP maps a trace Request onto the simrankd HTTP surface.
func buildHTTP(base string, req Request) (*http.Request, error) {
	v := url.Values{}
	if req.Seed != 0 {
		v.Set("seed", fmt.Sprint(req.Seed))
	}
	if req.Eps > 0 {
		v.Set("eps", fmt.Sprint(req.Eps))
	}
	switch req.Op {
	case OpSingleSource:
		v.Set("node", fmt.Sprint(req.Node))
		return http.NewRequest(http.MethodGet, base+"/v1/single-source?"+v.Encode(), nil)
	case OpTopK:
		v.Set("node", fmt.Sprint(req.Node))
		v.Set("k", fmt.Sprint(req.K))
		return http.NewRequest(http.MethodGet, base+"/v1/topk?"+v.Encode(), nil)
	case OpPair:
		v.Set("u", fmt.Sprint(req.Node))
		v.Set("v", fmt.Sprint(req.Node2))
		return http.NewRequest(http.MethodGet, base+"/v1/pair?"+v.Encode(), nil)
	case OpBatch:
		body := map[string]any{"nodes": req.Nodes}
		if req.K > 0 {
			body["k"] = req.K
		}
		if req.Seed != 0 {
			body["seed"] = req.Seed
		}
		if req.Eps > 0 {
			body["eps"] = req.Eps
		}
		raw, err := json.Marshal(body)
		if err != nil {
			return nil, err
		}
		return http.NewRequest(http.MethodPost, base+"/v1/batch", bytes.NewReader(raw))
	case OpAddEdge, OpRemoveEdge:
		raw, err := json.Marshal(map[string]int32{"from": req.Node, "to": req.Node2})
		if err != nil {
			return nil, err
		}
		method := http.MethodPost
		if req.Op == OpRemoveEdge {
			method = http.MethodDelete
		}
		return http.NewRequest(method, base+"/v1/edges", bytes.NewReader(raw))
	}
	return nil, fmt.Errorf("workload: unknown op %q", req.Op)
}

// runOpen replays the pregenerated trace on its schedule. Queries fan
// out concurrently (bounded by maxOutstanding); mutations flow through
// one serialized lane in trace order, so a remove-edge can never race
// ahead of the add-edge it refers to.
func runOpen(ctx context.Context, spec *Spec, n int32, base string, client *http.Client, maxOutstanding int, rec *recorder) error {
	trace, err := spec.Trace(n)
	if err != nil {
		return err
	}

	type timed struct {
		req Request
		t0  time.Time
	}
	var wg sync.WaitGroup
	mutCh := make(chan timed, 1024)
	wg.Add(1)
	go func() {
		defer wg.Done()
		for t := range mutCh {
			send(client, base, t.req, t.t0, rec)
		}
	}()

	sem := make(chan struct{}, maxOutstanding)
	start := time.Now()
	timer := time.NewTimer(0)
	if !timer.Stop() {
		<-timer.C
	}
	defer timer.Stop()
dispatch:
	for _, req := range trace {
		t0 := start.Add(req.At)
		if wait := time.Until(t0); wait > 0 {
			timer.Reset(wait)
			select {
			case <-timer.C:
			case <-ctx.Done():
				break dispatch
			}
		}
		if ctx.Err() != nil {
			break dispatch
		}
		if req.Op.isMutation() {
			mutCh <- timed{req: req, t0: t0}
			continue
		}
		select {
		case sem <- struct{}{}:
		case <-ctx.Done():
			break dispatch
		}
		wg.Add(1)
		go func(req Request, t0 time.Time) {
			defer wg.Done()
			defer func() { <-sem }()
			send(client, base, req, t0, rec)
		}(req, t0)
	}
	close(mutCh)
	wg.Wait()
	return nil
}

// runClosed drives closed-loop classes: each worker sends its next
// request the moment the previous response returns, for the spec's
// duration. Worker w of class c samples from a substream deterministic
// in (seed, c, w), so the per-worker request sequence is replayable even
// though issue times depend on the server.
func runClosed(ctx context.Context, spec *Spec, n int32, base string, client *http.Client, rec *recorder) error {
	runCtx, cancel := context.WithTimeout(ctx, time.Duration(spec.Duration))
	defer cancel()

	root := rnd.New(spec.Seed)
	var wg sync.WaitGroup
	for i := range spec.Classes {
		cls := &spec.Classes[i]
		classSeed := root.Uint64()
		workerRoot := rnd.New(classSeed)
		for w := 0; w < cls.Arrival.Concurrency; w++ {
			workerSeed := workerRoot.Uint64()
			wg.Add(1)
			go func(cls *ClassSpec, workerSeed uint64) {
				defer wg.Done()
				src := rnd.New(workerSeed)
				streams := classStreams{
					arrival: src.Split(),
					node:    src.Split(),
					mix:     src.Split(),
					seed:    src.Split(),
				}
				sampler := newClassSampler(cls, streams, n)
				for runCtx.Err() == nil {
					req := sampler.next(0)
					send(client, base, req, time.Now(), rec)
				}
			}(cls, workerSeed)
		}
	}
	wg.Wait()
	return nil
}
