package workload

import (
	"bytes"
	"encoding/json"
	"runtime"
	"testing"
	"time"
)

func testSpec(seed uint64) *Spec {
	return &Spec{
		Name:     "trace-test",
		Duration: Duration(5 * time.Second),
		Seed:     seed,
		Classes: []ClassSpec{
			{
				Name:       "readers",
				Arrival:    ArrivalSpec{Process: "poisson", RateRPS: 120},
				Popularity: PopularitySpec{Dist: "zipf", S: 1.1},
				Mix: []OpMix{
					{Op: OpTopK, Weight: 0.5},
					{Op: OpSingleSource, Weight: 0.3},
					{Op: OpPair, Weight: 0.1},
					{Op: OpBatch, Weight: 0.1},
				},
				K: 5, Batch: 4,
			},
			{
				Name:       "writers",
				Arrival:    ArrivalSpec{Process: "bursty", RateRPS: 2, BurstRateRPS: 40, OnMean: Duration(time.Second), OffMean: Duration(time.Second)},
				Popularity: PopularitySpec{Dist: "uniform"},
				Mix: []OpMix{
					{Op: OpAddEdge, Weight: 0.7},
					{Op: OpRemoveEdge, Weight: 0.3},
				},
			},
		},
		SLO: SLO{P99TargetMs: 100, AttainMs: 100, AttainTargetPct: 90, MaxErrorPct: 5},
	}
}

func encodeTrace(t *testing.T, trace []Request) []byte {
	t.Helper()
	raw, err := json.Marshal(trace)
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

// TestTraceReplayDeterminism is the acceptance property: the same
// (spec, seed) must produce a byte-identical request trace on every run
// and at every GOMAXPROCS.
func TestTraceReplayDeterminism(t *testing.T) {
	spec := testSpec(0xfeed)
	first, err := spec.Trace(500)
	if err != nil {
		t.Fatal(err)
	}
	if len(first) == 0 {
		t.Fatal("empty trace")
	}
	ref := encodeTrace(t, first)

	for run := 0; run < 3; run++ {
		again, err := spec.Trace(500)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(ref, encodeTrace(t, again)) {
			t.Fatalf("run %d: trace differs from first run", run)
		}
	}

	// GOMAXPROCS must be irrelevant: generation draws from explicit
	// substreams, never from scheduler-ordered shared state.
	old := runtime.GOMAXPROCS(1)
	defer runtime.GOMAXPROCS(old)
	again, err := spec.Trace(500)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ref, encodeTrace(t, again)) {
		t.Fatal("trace differs under GOMAXPROCS=1")
	}
}

// TestTraceSeedSensitivity: different seeds must give different traces
// (the spec alone does not pin the traffic).
func TestTraceSeedSensitivity(t *testing.T) {
	a, err := testSpec(1).Trace(500)
	if err != nil {
		t.Fatal(err)
	}
	b, err := testSpec(2).Trace(500)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(encodeTrace(t, a), encodeTrace(t, b)) {
		t.Fatal("different seeds produced identical traces")
	}
}

// TestTraceClassIsolation: adding a class must not disturb the requests
// an existing class generates — each class owns substreams derived only
// from (seed, class index).
func TestTraceClassIsolation(t *testing.T) {
	solo := testSpec(0xabc)
	solo.Classes = solo.Classes[:1]
	soloTrace, err := solo.Trace(500)
	if err != nil {
		t.Fatal(err)
	}
	both, err := testSpec(0xabc).Trace(500)
	if err != nil {
		t.Fatal(err)
	}
	var readersOnly []Request
	for _, r := range both {
		if r.Class == "readers" {
			readersOnly = append(readersOnly, r)
		}
	}
	if !bytes.Equal(encodeTrace(t, soloTrace), encodeTrace(t, readersOnly)) {
		t.Fatal("adding a second class changed the first class's requests")
	}
}

// TestTraceOrderedAndValid: the merged trace is time-ordered, every
// request names in-range nodes, and every remove-edge was preceded by
// its exact add-edge (so replay can never poison the server with an
// unmatched removal).
func TestTraceOrderedAndValid(t *testing.T) {
	const n = 300
	trace, err := testSpec(0x77).Trace(n)
	if err != nil {
		t.Fatal(err)
	}
	added := map[[2]int32]int{}
	prev := time.Duration(-1)
	for i, r := range trace {
		if r.At < prev {
			t.Fatalf("trace out of order at %d: %v after %v", i, r.At, prev)
		}
		prev = r.At
		nodes := append([]int32{r.Node}, r.Nodes...)
		if r.Op == OpPair || r.Op.isMutation() {
			nodes = append(nodes, r.Node2)
		}
		for _, node := range nodes {
			if node < 0 || node >= n {
				t.Fatalf("request %d (%s) names out-of-range node %d", i, r.Op, node)
			}
		}
		switch r.Op {
		case OpAddEdge:
			added[[2]int32{r.Node, r.Node2}]++
		case OpRemoveEdge:
			key := [2]int32{r.Node, r.Node2}
			if added[key] == 0 {
				t.Fatalf("request %d removes edge (%d,%d) that was never added", i, r.Node, r.Node2)
			}
			added[key]--
		case OpBatch:
			if len(r.Nodes) == 0 {
				t.Fatalf("request %d: empty batch", i)
			}
		case OpTopK:
			if r.K <= 0 {
				t.Fatalf("request %d: topk without k", i)
			}
		}
	}
}

// TestTraceRejectsClosedLoop: closed-loop specs have no pregenerated
// trace.
func TestTraceRejectsClosedLoop(t *testing.T) {
	spec := &Spec{
		Name:     "closed",
		Duration: Duration(time.Second),
		Classes: []ClassSpec{{
			Name:       "c",
			Arrival:    ArrivalSpec{Process: "closed", Concurrency: 4},
			Popularity: PopularitySpec{Dist: "uniform"},
			Mix:        []OpMix{{Op: OpSingleSource, Weight: 1}},
		}},
	}
	if _, err := spec.Trace(100); err == nil {
		t.Fatal("closed-loop spec produced a trace")
	}
}

// TestSpecValidation exercises the structural error paths.
func TestSpecValidation(t *testing.T) {
	bad := []func(*Spec){
		func(s *Spec) { s.Name = "" },
		func(s *Spec) { s.Duration = 0 },
		func(s *Spec) { s.Classes = nil },
		func(s *Spec) { s.Classes[0].Name = s.Classes[1].Name },
		func(s *Spec) { s.Classes[0].Arrival.Process = "sawtooth" },
		func(s *Spec) { s.Classes[0].Arrival.RateRPS = 0 },
		func(s *Spec) { s.Classes[0].Popularity.Dist = "pareto" },
		func(s *Spec) { s.Classes[0].Popularity = PopularitySpec{Dist: "zipf", S: 0} },
		func(s *Spec) { s.Classes[0].Mix = nil },
		func(s *Spec) { s.Classes[0].Mix[0].Weight = -1 },
		func(s *Spec) { s.Classes[0].Mix[0].Op = "gossip" },
		func(s *Spec) { s.Classes[0].SeedPolicy = "lucky" },
		func(s *Spec) { s.Classes[1].Arrival.BurstRateRPS = 1 }, // <= base rate
	}
	for i, mutate := range bad {
		spec := testSpec(1)
		mutate(spec)
		if err := spec.Validate(); err == nil {
			t.Errorf("mutation %d: invalid spec validated", i)
		}
	}
	if err := testSpec(1).Validate(); err != nil {
		t.Errorf("valid spec rejected: %v", err)
	}
}

// TestSpecJSONRoundTrip: a spec survives marshal → unmarshal, including
// the human-readable duration encoding.
func TestSpecJSONRoundTrip(t *testing.T) {
	spec := testSpec(0x123)
	raw, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(raw, []byte(`"duration":"5s"`)) {
		t.Fatalf("duration not encoded as a duration string: %s", raw)
	}
	var back Spec
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if err := back.Validate(); err != nil {
		t.Fatal(err)
	}
	a, err := spec.Trace(100)
	if err != nil {
		t.Fatal(err)
	}
	b, err := back.Trace(100)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(encodeTrace(t, a), encodeTrace(t, b)) {
		t.Fatal("round-tripped spec generates a different trace")
	}
}

// TestScenarioPresets: every shipped preset validates, generates a
// non-empty deterministic trace, and carries a complete SLO.
func TestScenarioPresets(t *testing.T) {
	names := ScenarioNames()
	if len(names) < 3 {
		t.Fatalf("want >= 3 presets, have %v", names)
	}
	for _, name := range names {
		spec, err := Scenario(name, 10*time.Second, 0, 1)
		if err != nil {
			t.Fatal(err)
		}
		if spec.Seed != DefaultSeed {
			t.Errorf("%s: seed 0 not defaulted", name)
		}
		slo := spec.SLO
		if slo.P50TargetMs <= 0 || slo.P99TargetMs <= 0 || slo.AttainMs <= 0 || slo.AttainTargetPct <= 0 {
			t.Errorf("%s: incomplete SLO %+v", name, slo)
		}
		a, err := spec.Trace(1000)
		if err != nil {
			t.Fatal(err)
		}
		if len(a) == 0 {
			t.Fatalf("%s: empty trace", name)
		}
		b, err := spec.Trace(1000)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(encodeTrace(t, a), encodeTrace(t, b)) {
			t.Fatalf("%s: preset trace not deterministic", name)
		}
	}
	if _, err := Scenario("no-such", 0, 0, 0); err == nil {
		t.Fatal("unknown scenario accepted")
	}
}
