package workload

import (
	"math"

	"github.com/simrank/simpush/internal/rnd"
)

// nodeSampler draws query nodes for one class. The boolean reports
// whether the draw came from the "hot" region (the hotset's hot nodes,
// or a Zipf draw landing in the head) — the hot-pinned seed policy keys
// off it.
type nodeSampler interface {
	sample(rng *rnd.Source) (int32, bool)
}

func newNodeSampler(p *PopularitySpec, n int32) nodeSampler {
	switch p.Dist {
	case "zipf":
		return newZipfSampler(n, p.S)
	case "hotset":
		hot := int32(p.Hot)
		if hot > n {
			hot = n
		}
		return &hotsetSampler{n: n, hot: hot, hotFrac: p.HotFrac}
	default:
		return uniformSampler{n: n}
	}
}

type uniformSampler struct{ n int32 }

func (u uniformSampler) sample(rng *rnd.Source) (int32, bool) {
	return rng.Int31n(u.n), false
}

// hotsetSampler mirrors the historical simbench -http workload: a draw
// comes uniformly from the hot prefix [0, hot) with probability hotFrac,
// otherwise uniformly from the whole graph.
type hotsetSampler struct {
	n, hot  int32
	hotFrac float64
}

func (h *hotsetSampler) sample(rng *rnd.Source) (int32, bool) {
	if rng.Float64() < h.hotFrac {
		return rng.Int31n(h.hot), true
	}
	return rng.Int31n(h.n), false
}

// zipfSampler draws ranks from a bounded Zipf(s) distribution over
// [0, n) by Hörmann–Derflinger rejection inversion — O(1) per sample
// with no O(n) tables, valid for any skew s > 0 (unlike math/rand's
// Zipf, which requires s > 1). Rank r maps to node id r, so low node
// ids are the head of the popularity curve, matching the hot-prefix
// convention of the hotset sampler and the cluster bench scripts.
type zipfSampler struct {
	n                 int32
	s                 float64
	hMax, hHalf, sDiv float64
	headBound         int32 // ranks below this count as "hot" draws
}

func newZipfSampler(n int32, s float64) *zipfSampler {
	z := &zipfSampler{n: n, s: s}
	z.hMax = z.h(1.5) - 1 // ranks are 1-based internally: [1, n]
	z.hHalf = z.h(float64(n) + 0.5)
	z.sDiv = 2 - z.hInv(z.h(2.5)-math.Pow(2, -s))
	// The "head" is the top ~1% of ranks (at least 1): a rough hotness
	// marker for the hot-pinned seed policy, not a distribution property.
	z.headBound = n / 100
	if z.headBound < 1 {
		z.headBound = 1
	}
	return z
}

// h is the integral of the unnormalized density x^-s, shifted so the
// rejection envelope is exact at the integer points.
func (z *zipfSampler) h(x float64) float64 {
	if z.s == 1 {
		return math.Log(x)
	}
	return math.Pow(x, 1-z.s) / (1 - z.s)
}

func (z *zipfSampler) hInv(x float64) float64 {
	if z.s == 1 {
		return math.Exp(x)
	}
	return math.Pow(x*(1-z.s), 1/(1-z.s))
}

func (z *zipfSampler) sample(rng *rnd.Source) (int32, bool) {
	for {
		u := z.hHalf + rng.Float64()*(z.hMax-z.hHalf)
		x := z.hInv(u)
		k := math.Floor(x + 0.5)
		if k < 1 {
			k = 1
		} else if k > float64(z.n) {
			k = float64(z.n)
		}
		if k-x <= z.sDiv || u >= z.h(k+0.5)-math.Pow(k, -z.s) {
			r := int32(k)
			return r - 1, r <= z.headBound
		}
	}
}
