package workload

import (
	"math"
	"testing"

	"github.com/simrank/simpush/internal/rnd"
)

// headMass estimates the probability mass the sampler puts on the top
// 1% of node ids.
func headMass(s nodeSampler, n int32, draws int, rng *rnd.Source) float64 {
	head := n / 100
	if head < 1 {
		head = 1
	}
	hits := 0
	for i := 0; i < draws; i++ {
		node, _ := s.sample(rng)
		if node < 0 || node >= n {
			panic("sample out of range")
		}
		if node < head {
			hits++
		}
	}
	return float64(hits) / float64(draws)
}

// TestZipfSkewMonotone: the mass on the head of the distribution must
// grow strictly with the skew exponent s — the satellite's monotonicity
// property — spanning s < 1 (where math/rand's Zipf gives up) and s > 1.
func TestZipfSkewMonotone(t *testing.T) {
	const n, draws = 10000, 200000
	prev := -1.0
	for _, s := range []float64{0.5, 0.8, 1.0, 1.3, 1.8} {
		mass := headMass(newZipfSampler(n, s), n, draws, rnd.New(5))
		if mass <= prev {
			t.Fatalf("head mass not monotone in skew: s=%.1f gives %.4f, previous %.4f", s, mass, prev)
		}
		prev = mass
	}
}

// TestZipfMatchesAnalyticMass compares the sampled head mass at s=1
// against the harmonic-number analytic value.
func TestZipfMatchesAnalyticMass(t *testing.T) {
	const n, draws = 1000, 400000
	harmonic := func(k int) float64 {
		h := 0.0
		for i := 1; i <= k; i++ {
			h += 1 / float64(i)
		}
		return h
	}
	want := harmonic(10) / harmonic(n) // mass of the top-10 ranks
	z := newZipfSampler(n, 1.0)
	rng := rnd.New(9)
	hits := 0
	for i := 0; i < draws; i++ {
		node, _ := z.sample(rng)
		if node < 10 {
			hits++
		}
	}
	got := float64(hits) / float64(draws)
	if math.Abs(got-want) > 0.03*want+0.002 {
		t.Errorf("Zipf(1.0) top-10 mass = %.4f, analytic %.4f", got, want)
	}
}

// TestZipfRange: samples stay in [0, n) even for tiny n and extreme s.
func TestZipfRange(t *testing.T) {
	for _, n := range []int32{1, 2, 5, 100} {
		for _, s := range []float64{0.3, 1.0, 3.0} {
			z := newZipfSampler(n, s)
			rng := rnd.New(uint64(n) * 31)
			for i := 0; i < 2000; i++ {
				node, _ := z.sample(rng)
				if node < 0 || node >= n {
					t.Fatalf("zipf(n=%d, s=%.1f) sampled %d out of range", n, s, node)
				}
			}
		}
	}
}

// TestHotsetFractions: the hotset sampler must respect hot_frac and mark
// hot draws as hot.
func TestHotsetFractions(t *testing.T) {
	const n = 1000
	h := &hotsetSampler{n: n, hot: 10, hotFrac: 0.8}
	rng := rnd.New(17)
	hot := 0
	const draws = 100000
	for i := 0; i < draws; i++ {
		node, isHot := h.sample(rng)
		if isHot {
			hot++
			if node >= 10 {
				t.Fatalf("hot draw returned node %d outside the hot set", node)
			}
		}
		if node < 0 || node >= n {
			t.Fatalf("sample %d out of range", node)
		}
	}
	frac := float64(hot) / draws
	if math.Abs(frac-0.8) > 0.01 {
		t.Errorf("hot fraction = %.3f, want 0.80 ±0.01", frac)
	}
}

// TestHotsetClampsToGraph: a hot set larger than the graph degrades to
// uniform instead of sampling out of range.
func TestHotsetClampsToGraph(t *testing.T) {
	s := newNodeSampler(&PopularitySpec{Dist: "hotset", Hot: 50, HotFrac: 1}, 5)
	rng := rnd.New(3)
	for i := 0; i < 1000; i++ {
		node, _ := s.sample(rng)
		if node < 0 || node >= 5 {
			t.Fatalf("clamped hotset sampled %d out of range", node)
		}
	}
}
