package workload_test

import (
	"context"
	"net/http/httptest"
	"testing"
	"time"

	"github.com/simrank/simpush"
	"github.com/simrank/simpush/internal/server"
	"github.com/simrank/simpush/internal/workload"
)

// newTestTarget boots a live serving stack (dynamic graph, so the
// mutation ops work) and returns its base URL.
func newTestTarget(t *testing.T) string {
	t.Helper()
	g, err := simpush.SyntheticWebGraph(400, 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	client, err := simpush.NewClient(simpush.DynamicFromGraph(g), simpush.Options{Epsilon: 0.1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { client.Close() })
	srv, err := server.New(server.Config{Client: client})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return ts.URL
}

// TestRunOpenLoopScoresSLO replays a small mixed open-loop workload —
// queries plus mutations — against a live server and checks the report:
// requests landed, percentiles and attainment are populated, mutations
// advanced the epoch, and repeated pinned-seed queries hit the cache.
func TestRunOpenLoopScoresSLO(t *testing.T) {
	base := newTestTarget(t)
	spec := &workload.Spec{
		Name:     "runner-open",
		Duration: workload.Duration(1200 * time.Millisecond),
		Seed:     0x5eed,
		Classes: []workload.ClassSpec{
			{
				Name:       "readers",
				Arrival:    workload.ArrivalSpec{Process: "poisson", RateRPS: 60},
				Popularity: workload.PopularitySpec{Dist: "hotset", Hot: 4, HotFrac: 0.9},
				Mix: []workload.OpMix{
					{Op: workload.OpTopK, Weight: 0.6},
					{Op: workload.OpSingleSource, Weight: 0.4},
				},
				K: 5,
			},
			{
				Name:       "writers",
				Arrival:    workload.ArrivalSpec{Process: "poisson", RateRPS: 3},
				Popularity: workload.PopularitySpec{Dist: "uniform"},
				Mix:        []workload.OpMix{{Op: workload.OpAddEdge, Weight: 1}},
			},
		},
		SLO: workload.SLO{
			P50TargetMs: 5000, P99TargetMs: 10000,
			AttainMs: 10000, AttainTargetPct: 50, MaxErrorPct: 50,
		},
	}
	rep, err := workload.Run(context.Background(), spec, workload.RunOptions{Target: base})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Requests < 20 {
		t.Fatalf("too few requests: %d", rep.Requests)
	}
	if rep.OK == 0 {
		t.Fatalf("no successful requests: %+v", rep)
	}
	if rep.Latency.P50Ms <= 0 || rep.Latency.P99Ms < rep.Latency.P50Ms {
		t.Fatalf("implausible percentiles: %+v", rep.Latency)
	}
	if rep.SLO.AttainmentPct <= 0 {
		t.Fatalf("attainment not computed: %+v", rep.SLO)
	}
	if rep.EpochAdvances == 0 {
		t.Fatalf("writer class issued mutations but epoch never advanced: %+v", rep)
	}
	if rep.Cache.Hits == 0 {
		t.Fatal("pinned hot-set repeats produced zero cache hits")
	}
	if len(rep.Classes) != 2 {
		t.Fatalf("want 2 class reports, got %d", len(rep.Classes))
	}
	for _, c := range rep.Classes {
		if c.Requests == 0 {
			t.Fatalf("class %s sent nothing", c.Class)
		}
	}
	mutations := rep.Classes[1].Mutations
	if mutations == 0 {
		t.Fatal("writer class recorded no mutations")
	}
	// Loose generosity bounds make the SLO scoring itself deterministic
	// here: everything under 10s must pass.
	if !rep.SLO.Pass {
		t.Fatalf("generous SLO scored as a miss: %+v", rep.SLO)
	}
}

// TestRunClosedLoop drives the closed-loop mode (the simbench -http
// shim's path): fixed workers, hot-set popularity, cache hits expected.
func TestRunClosedLoop(t *testing.T) {
	base := newTestTarget(t)
	spec := &workload.Spec{
		Name:     "runner-closed",
		Duration: workload.Duration(500 * time.Millisecond),
		Seed:     99,
		Classes: []workload.ClassSpec{{
			Name:       "load",
			Arrival:    workload.ArrivalSpec{Process: "closed", Concurrency: 4},
			Popularity: workload.PopularitySpec{Dist: "hotset", Hot: 4, HotFrac: 1},
			Mix:        []workload.OpMix{{Op: workload.OpSingleSource, Weight: 1}},
			SeedPolicy: "hot-pinned",
		}},
		SLO: workload.SLO{AttainMs: 10000, AttainTargetPct: 1},
	}
	rep, err := workload.Run(context.Background(), spec, workload.RunOptions{Target: base})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Requests == 0 || rep.OK == 0 {
		t.Fatalf("closed loop sent nothing: %+v", rep)
	}
	if rep.Cache.HitRate == 0 {
		t.Fatalf("pure hot closed loop reported zero hit rate: %+v", rep.Cache)
	}
}

// TestRunValidation covers the runner's fast-fail paths.
func TestRunValidation(t *testing.T) {
	spec := &workload.Spec{
		Name:     "v",
		Duration: workload.Duration(time.Second),
		Classes: []workload.ClassSpec{{
			Name:       "c",
			Arrival:    workload.ArrivalSpec{Process: "poisson", RateRPS: 1},
			Popularity: workload.PopularitySpec{Dist: "uniform"},
			Mix:        []workload.OpMix{{Op: workload.OpSingleSource, Weight: 1}},
		}},
	}
	if _, err := workload.Run(context.Background(), spec, workload.RunOptions{}); err == nil {
		t.Fatal("missing target accepted")
	}
	if _, err := workload.Run(context.Background(), spec, workload.RunOptions{Target: "http://127.0.0.1:1"}); err == nil {
		t.Fatal("unreachable target accepted")
	}
	bad := *spec
	bad.Classes = nil
	if _, err := workload.Run(context.Background(), &bad, workload.RunOptions{Target: "http://127.0.0.1:1"}); err == nil {
		t.Fatal("invalid spec accepted")
	}
}

// TestRunHonorsContext: cancelling mid-run returns promptly with the
// partial result rather than hanging until the window lapses.
func TestRunHonorsContext(t *testing.T) {
	base := newTestTarget(t)
	spec := &workload.Spec{
		Name:     "cancel",
		Duration: workload.Duration(30 * time.Second),
		Seed:     7,
		Classes: []workload.ClassSpec{{
			Name:       "slow",
			Arrival:    workload.ArrivalSpec{Process: "poisson", RateRPS: 20},
			Popularity: workload.PopularitySpec{Dist: "uniform"},
			Mix:        []workload.OpMix{{Op: workload.OpSingleSource, Weight: 1}},
		}},
	}
	ctx, cancel := context.WithTimeout(context.Background(), 300*time.Millisecond)
	defer cancel()
	done := make(chan error, 1)
	go func() {
		_, err := workload.Run(ctx, spec, workload.RunOptions{Target: base})
		done <- err
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("run did not stop after context cancellation")
	}
}
