package workload

import (
	"fmt"
	"io"
	"sort"
	"time"
)

// sample is one completed request observation.
type sample struct {
	class     string
	op        Op
	latency   time.Duration
	status    int  // 0 on transport error
	transport bool // request never got a response
}

// LatencySummary is a percentile digest of client-observed latencies.
type LatencySummary struct {
	P50Ms float64 `json:"p50_ms"`
	P90Ms float64 `json:"p90_ms"`
	P99Ms float64 `json:"p99_ms"`
	MaxMs float64 `json:"max_ms"`
}

// SLOResult scores a run against its spec's SLO.
type SLOResult struct {
	SLO             SLO     `json:"slo"`
	P50WithinTarget bool    `json:"p50_within_target"`
	P99WithinTarget bool    `json:"p99_within_target"`
	AttainmentPct   float64 `json:"attainment_pct"`
	AttainmentMet   bool    `json:"attainment_met"`
	ErrorPct        float64 `json:"error_pct"`
	ErrorBudgetMet  bool    `json:"error_budget_met"`
	Pass            bool    `json:"pass"`
}

// CacheDelta is the server-side cache movement over the run window,
// from /statsz before/after.
type CacheDelta struct {
	Hits      uint64  `json:"hits"`
	Misses    uint64  `json:"misses"`
	Coalesced uint64  `json:"coalesced"`
	HitRate   float64 `json:"hit_rate"`
}

// MetricsDelta is the server-side movement over the run window as seen
// through /metricsz — where the engine spent its time and how hard
// admission had to work, counters /statsz does not break out. simload
// scrapes the target before and after each scenario and attaches the
// difference; nil when the target does not expose /metricsz.
type MetricsDelta struct {
	EngineStageSeconds   map[string]float64 `json:"engine_stage_seconds,omitempty"`
	EngineQueries        uint64             `json:"engine_queries"`
	AdmissionWaits       uint64             `json:"admission_waits"`
	AdmissionWaitSeconds float64            `json:"admission_wait_seconds"`
	AdmissionRejected    uint64             `json:"admission_rejected"`
	CacheHits            uint64             `json:"cache_hits"`
	CacheMisses          uint64             `json:"cache_misses"`
}

// ClassReport is the per-traffic-class slice of a Report.
type ClassReport struct {
	Class     string         `json:"class"`
	Requests  int            `json:"requests"`
	OK        int            `json:"ok"`
	Errors    int            `json:"errors"`
	Latency   LatencySummary `json:"latency"`
	Mutations int            `json:"mutations"`
}

// Report is the scored outcome of one workload run — the per-scenario
// record BENCH_PR8.json aggregates.
type Report struct {
	Scenario        string  `json:"scenario"`
	Description     string  `json:"description,omitempty"`
	Seed            uint64  `json:"seed"`
	Target          string  `json:"target"`
	DurationSeconds float64 `json:"duration_seconds"`

	Requests        int     `json:"requests"`
	ThroughputRPS   float64 `json:"throughput_rps"`
	OK              int     `json:"ok"`
	Rejected429     int     `json:"rejected_429"`
	Errors5xx       int     `json:"errors_5xx"`
	Errors4xx       int     `json:"errors_4xx"`
	TransportErrors int     `json:"transport_errors"`
	Rate429         float64 `json:"rate_429"`
	Rate5xx         float64 `json:"rate_5xx"`

	Latency LatencySummary `json:"latency"`
	SLO     SLOResult      `json:"slo"`

	Cache             CacheDelta    `json:"cache"`
	EngineQueries     uint64        `json:"engine_queries"`
	EpochAdvances     uint64        `json:"epoch_advances"`
	AdmissionRejected uint64        `json:"admission_rejected"`
	ServerEpoch       uint64        `json:"server_epoch"`
	Metrics           *MetricsDelta `json:"metrics_delta,omitempty"`
	Classes           []ClassReport `json:"classes"`
}

func percentile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(q * float64(len(sorted)-1))
	return sorted[idx]
}

func summarize(latsMs []float64) LatencySummary {
	sort.Float64s(latsMs)
	s := LatencySummary{
		P50Ms: percentile(latsMs, 0.50),
		P90Ms: percentile(latsMs, 0.90),
		P99Ms: percentile(latsMs, 0.99),
	}
	if len(latsMs) > 0 {
		s.MaxMs = latsMs[len(latsMs)-1]
	}
	return s
}

// score builds the Report from raw samples plus the server stats delta.
func score(spec *Spec, target string, elapsed time.Duration, samples []sample, before, after targetStats) *Report {
	r := &Report{
		Scenario:        spec.Name,
		Description:     spec.Description,
		Seed:            spec.Seed,
		Target:          target,
		DurationSeconds: elapsed.Seconds(),
		SLO:             SLOResult{SLO: spec.SLO},
	}

	classIdx := make(map[string]int, len(spec.Classes))
	for i := range spec.Classes {
		classIdx[spec.Classes[i].Name] = i
		r.Classes = append(r.Classes, ClassReport{Class: spec.Classes[i].Name})
	}

	var okLats []float64
	classLats := make([][]float64, len(spec.Classes))
	attained := 0
	for _, s := range samples {
		r.Requests++
		ci := classIdx[s.class]
		cr := &r.Classes[ci]
		cr.Requests++
		if s.op.isMutation() {
			cr.Mutations++
		}
		switch {
		case s.transport:
			r.TransportErrors++
			cr.Errors++
		case s.status == 200:
			r.OK++
			cr.OK++
			ms := s.latency.Seconds() * 1000
			okLats = append(okLats, ms)
			classLats[ci] = append(classLats[ci], ms)
			if spec.SLO.AttainMs <= 0 || ms <= spec.SLO.AttainMs {
				attained++
			}
		case s.status == 429:
			r.Rejected429++
			cr.Errors++
		case s.status >= 500:
			r.Errors5xx++
			cr.Errors++
		default:
			r.Errors4xx++
			cr.Errors++
		}
	}
	if elapsed > 0 {
		r.ThroughputRPS = float64(r.Requests) / elapsed.Seconds()
	}
	r.Latency = summarize(okLats)
	for i := range r.Classes {
		r.Classes[i].Latency = summarize(classLats[i])
	}
	if r.Requests > 0 {
		r.Rate429 = float64(r.Rejected429) / float64(r.Requests)
		r.Rate5xx = float64(r.Errors5xx) / float64(r.Requests)
	}

	// SLO scoring. Attainment is over successful requests; the error
	// budget is over everything sent.
	slo := &r.SLO
	if r.OK > 0 {
		slo.AttainmentPct = 100 * float64(attained) / float64(r.OK)
	}
	slo.P50WithinTarget = spec.SLO.P50TargetMs <= 0 || r.Latency.P50Ms <= spec.SLO.P50TargetMs
	slo.P99WithinTarget = spec.SLO.P99TargetMs <= 0 || r.Latency.P99Ms <= spec.SLO.P99TargetMs
	slo.AttainmentMet = slo.AttainmentPct >= spec.SLO.AttainTargetPct
	if r.Requests > 0 {
		errs := r.Rejected429 + r.Errors5xx + r.TransportErrors
		slo.ErrorPct = 100 * float64(errs) / float64(r.Requests)
	}
	slo.ErrorBudgetMet = slo.ErrorPct <= spec.SLO.MaxErrorPct
	slo.Pass = r.OK > 0 && slo.P50WithinTarget && slo.P99WithinTarget && slo.AttainmentMet && slo.ErrorBudgetMet

	// Server-side deltas.
	hits := after.Cache.Hits - before.Cache.Hits
	misses := after.Cache.Misses - before.Cache.Misses
	r.Cache = CacheDelta{
		Hits:      hits,
		Misses:    misses,
		Coalesced: after.Cache.Coalesced - before.Cache.Coalesced,
	}
	if hits+misses > 0 {
		r.Cache.HitRate = float64(hits) / float64(hits+misses)
	}
	r.EngineQueries = after.Client.Queries - before.Client.Queries
	r.EpochAdvances = after.Epoch - before.Epoch
	r.AdmissionRejected = after.Admission.Rejected - before.Admission.Rejected
	r.ServerEpoch = after.Epoch
	return r
}

// WriteSummary prints the human-readable one-scenario summary simload
// shows after each run.
func (r *Report) WriteSummary(w io.Writer) {
	status := "PASS"
	if !r.SLO.Pass {
		status = "MISS"
	}
	fmt.Fprintf(w, "scenario %-18s seed=%d  %s\n", r.Scenario, r.Seed, status)
	fmt.Fprintf(w, "  requests %d (%.1f rps) over %.1fs: %d ok, %d x429, %d x5xx, %d x4xx, %d transport\n",
		r.Requests, r.ThroughputRPS, r.DurationSeconds,
		r.OK, r.Rejected429, r.Errors5xx, r.Errors4xx, r.TransportErrors)
	fmt.Fprintf(w, "  latency p50 %.1fms (target %.0f), p99 %.1fms (target %.0f), max %.1fms\n",
		r.Latency.P50Ms, r.SLO.SLO.P50TargetMs, r.Latency.P99Ms, r.SLO.SLO.P99TargetMs, r.Latency.MaxMs)
	fmt.Fprintf(w, "  attainment %.1f%% <= %.0fms (target %.0f%%), errors %.2f%% (budget %.1f%%)\n",
		r.SLO.AttainmentPct, r.SLO.SLO.AttainMs, r.SLO.SLO.AttainTargetPct,
		r.SLO.ErrorPct, r.SLO.SLO.MaxErrorPct)
	fmt.Fprintf(w, "  cache hit rate %.3f (%d hits / %d misses / %d coalesced), %d engine queries, %d epoch advances\n",
		r.Cache.HitRate, r.Cache.Hits, r.Cache.Misses, r.Cache.Coalesced, r.EngineQueries, r.EpochAdvances)
	if m := r.Metrics; m != nil {
		stages := make([]string, 0, len(m.EngineStageSeconds))
		for name := range m.EngineStageSeconds {
			stages = append(stages, name)
		}
		sort.Strings(stages)
		fmt.Fprintf(w, "  engine time")
		for _, name := range stages {
			fmt.Fprintf(w, " %s %.3fs", name, m.EngineStageSeconds[name])
		}
		fmt.Fprintf(w, "; admission waits %d (%.3fs queued)\n", m.AdmissionWaits, m.AdmissionWaitSeconds)
	}
	for _, c := range r.Classes {
		fmt.Fprintf(w, "  class %-16s %6d req, %5d ok, %4d err, %4d mut, p50 %.1fms p99 %.1fms\n",
			c.Class, c.Requests, c.OK, c.Errors, c.Mutations, c.Latency.P50Ms, c.Latency.P99Ms)
	}
}
