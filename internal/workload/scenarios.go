package workload

import (
	"fmt"
	"sort"
	"time"
)

// DefaultSeed seeds preset scenarios when the caller does not choose one
// (simload prints the effective seed on every run either way).
const DefaultSeed uint64 = 0x51e9a8

// scenarioBuilder constructs one preset for a given window, seed and
// rate scale.
type scenarioBuilder struct {
	describe string
	build    func(d time.Duration, seed uint64, rate float64) *Spec
}

// scenarios are the shipped presets. Each models one production traffic
// shape from the paper's motivation (realtime single-source SimRank
// under live queries and mutations) with its own SLO.
var scenarios = map[string]scenarioBuilder{
	// A social feed ranking friends-of-friends: read-heavy top-k over a
	// heavily skewed (Zipfian) node popularity, no writes. The cache
	// should absorb most of this; the SLO is correspondingly tight.
	"social-feed": {
		describe: "read-heavy Zipfian top-k feed ranking (no mutations)",
		build: func(d time.Duration, seed uint64, rate float64) *Spec {
			return &Spec{
				Name:        "social-feed",
				Description: "read-heavy Zipfian top-k feed ranking (no mutations)",
				Duration:    Duration(d),
				Seed:        seed,
				Classes: []ClassSpec{{
					Name:       "feed-readers",
					Arrival:    ArrivalSpec{Process: "poisson", RateRPS: 80 * rate},
					Popularity: PopularitySpec{Dist: "zipf", S: 1.05},
					Mix: []OpMix{
						{Op: OpTopK, Weight: 0.75},
						{Op: OpSingleSource, Weight: 0.15},
						{Op: OpPair, Weight: 0.10},
					},
					K: 10,
				}},
				SLO: SLO{
					P50TargetMs: 50, P99TargetMs: 250,
					AttainMs: 100, AttainTargetPct: 95,
					MaxErrorPct: 1,
				},
			}
		},
	},
	// Fraud analysts exploring the neighborhood of flagged accounts in
	// bursts, over a graph that ingests a steady stream of new edges.
	// Every mutation advances the epoch, so this preset measures how
	// serving survives cache churn — the ROADMAP's epoch-delta item is
	// judged against exactly this trajectory.
	"fraud-neighbors": {
		describe: "bursty single-source probes + steady edge ingest (epoch churn)",
		build: func(d time.Duration, seed uint64, rate float64) *Spec {
			return &Spec{
				Name:        "fraud-neighbors",
				Description: "bursty single-source probes + steady edge ingest (epoch churn)",
				Duration:    Duration(d),
				Seed:        seed,
				Classes: []ClassSpec{
					{
						Name: "analyst-bursts",
						Arrival: ArrivalSpec{
							Process: "bursty",
							RateRPS: 5 * rate, BurstRateRPS: 60 * rate,
							OnMean: Duration(2 * time.Second), OffMean: Duration(4 * time.Second),
						},
						Popularity: PopularitySpec{Dist: "zipf", S: 0.8},
						Mix:        []OpMix{{Op: OpSingleSource, Weight: 1}},
					},
					{
						Name:       "edge-ingest",
						Arrival:    ArrivalSpec{Process: "poisson", RateRPS: 4 * rate},
						Popularity: PopularitySpec{Dist: "uniform"},
						Mix: []OpMix{
							{Op: OpAddEdge, Weight: 0.9},
							{Op: OpRemoveEdge, Weight: 0.1},
						},
					},
				},
				SLO: SLO{
					P50TargetMs: 100, P99TargetMs: 500,
					AttainMs: 250, AttainTargetPct: 90,
					MaxErrorPct: 5,
				},
			}
		},
	},
	// A recommendation pipeline: periodic batch refreshes of many users'
	// similarity rows on a diurnal curve, interleaved with online pair
	// checks ("is item v similar to what u liked?").
	"recommendation": {
		describe: "diurnal batch row refreshes + online pair checks",
		build: func(d time.Duration, seed uint64, rate float64) *Spec {
			return &Spec{
				Name:        "recommendation",
				Description: "diurnal batch row refreshes + online pair checks",
				Duration:    Duration(d),
				Seed:        seed,
				Classes: []ClassSpec{
					{
						Name: "batch-refresh",
						Arrival: ArrivalSpec{
							Process: "diurnal", RateRPS: 4 * rate,
							// One full "day" compressed into the run window.
							Period: Duration(d), MinFrac: 0.2,
						},
						Popularity: PopularitySpec{Dist: "zipf", S: 0.9},
						Mix:        []OpMix{{Op: OpBatch, Weight: 1}},
						Batch:      16,
						K:          10,
					},
					{
						Name:       "pair-checks",
						Arrival:    ArrivalSpec{Process: "poisson", RateRPS: 30 * rate},
						Popularity: PopularitySpec{Dist: "zipf", S: 1.1},
						Mix:        []OpMix{{Op: OpPair, Weight: 1}},
					},
				},
				SLO: SLO{
					P50TargetMs: 150, P99TargetMs: 1000,
					AttainMs: 500, AttainTargetPct: 90,
					MaxErrorPct: 2,
				},
			}
		},
	},
}

// ScenarioNames lists the preset names, sorted.
func ScenarioNames() []string {
	names := make([]string, 0, len(scenarios))
	for name := range scenarios {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// ScenarioDescription returns the one-line description of a preset.
func ScenarioDescription(name string) string { return scenarios[name].describe }

// Scenario builds a preset spec. d is the run window (0 = 30s), seed 0
// selects DefaultSeed, rateScale scales every class's arrival rate
// (0 = 1.0) so one preset stretches from CI smoke to saturation runs.
func Scenario(name string, d time.Duration, seed uint64, rateScale float64) (*Spec, error) {
	b, ok := scenarios[name]
	if !ok {
		return nil, fmt.Errorf("workload: unknown scenario %q (have %v)", name, ScenarioNames())
	}
	if d <= 0 {
		d = 30 * time.Second
	}
	if seed == 0 {
		seed = DefaultSeed
	}
	if rateScale <= 0 {
		rateScale = 1
	}
	spec := b.build(d, seed, rateScale)
	if err := spec.Validate(); err != nil {
		return nil, fmt.Errorf("workload: preset %s is invalid: %w", name, err)
	}
	return spec, nil
}
