// Package workload is the declarative workload-model subsystem behind
// cmd/simload (and the deprecated simbench -http shim): it turns a
// compact JSON/flag spec — traffic classes with arrival processes, node
// popularity distributions and endpoint mixes — into a fully replayable
// request trace, drives a running simrankd or simproxy over HTTP, and
// scores the observed latency/error behaviour against per-scenario SLOs.
//
// Determinism contract: the same (Spec, Seed) pair generates a
// byte-identical request trace on every run, on any GOMAXPROCS — every
// random draw flows from rnd.Source substreams derived off the spec seed
// with the same splitmix64 chain idiom internal/walk uses for its worker
// substreams. What the *server* does with the trace (latencies, 429s)
// varies run to run; what the client *sends* does not.
package workload

import (
	"encoding/json"
	"fmt"
	"os"
	"time"
)

// Op names one request kind a traffic class can issue. The query ops map
// 1:1 onto simrankd endpoints; the mutation ops drive /v1/edges.
type Op string

const (
	OpSingleSource Op = "single-source"
	OpTopK         Op = "topk"
	OpPair         Op = "pair"
	OpBatch        Op = "batch"
	OpAddEdge      Op = "add-edge"
	OpRemoveEdge   Op = "remove-edge"
)

func (o Op) valid() bool {
	switch o {
	case OpSingleSource, OpTopK, OpPair, OpBatch, OpAddEdge, OpRemoveEdge:
		return true
	}
	return false
}

// isMutation reports whether the op writes to the graph. Mutations are
// replayed in trace order through one serialized lane (see runner.go) so
// a remove never races ahead of the add it refers to.
func (o Op) isMutation() bool { return o == OpAddEdge || o == OpRemoveEdge }

// Duration is a time.Duration that marshals as a Go duration string
// ("1m30s") so specs stay human-editable.
type Duration time.Duration

func (d Duration) MarshalJSON() ([]byte, error) {
	return json.Marshal(time.Duration(d).String())
}

func (d *Duration) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err == nil {
		parsed, perr := time.ParseDuration(s)
		if perr != nil {
			return fmt.Errorf("workload: bad duration %q: %w", s, perr)
		}
		*d = Duration(parsed)
		return nil
	}
	var ns int64
	if err := json.Unmarshal(b, &ns); err != nil {
		return fmt.Errorf("workload: duration must be a string like %q or nanoseconds", "30s")
	}
	*d = Duration(ns)
	return nil
}

// Spec is one complete workload: a named set of traffic classes run for
// a fixed window from one seed, scored against one SLO.
type Spec struct {
	Name        string      `json:"name"`
	Description string      `json:"description,omitempty"`
	Duration    Duration    `json:"duration"`
	Seed        uint64      `json:"seed"`
	Classes     []ClassSpec `json:"classes"`
	SLO         SLO         `json:"slo"`
}

// ClassSpec is one traffic class: how often it sends (Arrival), which
// nodes it asks about (Popularity), and what it asks (Mix).
type ClassSpec struct {
	Name       string         `json:"name"`
	Arrival    ArrivalSpec    `json:"arrival"`
	Popularity PopularitySpec `json:"popularity"`
	Mix        []OpMix        `json:"mix"`

	// K is the k of topk requests (default 10).
	K int `json:"k,omitempty"`
	// Batch is the node count of batch requests (default 16).
	Batch int `json:"batch,omitempty"`
	// Eps is a per-request eps override (0 = server default).
	Eps float64 `json:"eps,omitempty"`

	// SeedPolicy controls the per-request ?seed parameter, which is part
	// of the server's cache key:
	//
	//   pinned     seed is a pure function of the node → repeats of a hot
	//              node are cache-identical (default; realistic for
	//              product traffic that doesn't set seeds at all)
	//   fresh      every request draws a new seed → every query misses
	//   hot-pinned pinned for nodes drawn from the hot set, fresh
	//              otherwise (the historical simbench -http behaviour)
	SeedPolicy string `json:"seed_policy,omitempty"`
}

// OpMix is one weighted entry of a class's endpoint mix.
type OpMix struct {
	Op     Op      `json:"op"`
	Weight float64 `json:"weight"`
}

// ArrivalSpec selects and parameterizes a class's arrival process.
type ArrivalSpec struct {
	// Process: poisson | bursty | diurnal | closed.
	Process string `json:"process"`

	// RateRPS is the mean request rate: the Poisson rate, the bursty
	// off-phase (baseline) rate, or the diurnal peak rate.
	RateRPS float64 `json:"rate_rps,omitempty"`

	// Bursty (Markov-modulated on/off): during an on-phase the class
	// sends at BurstRateRPS, otherwise at RateRPS; phase lengths are
	// exponential with means OnMean and OffMean.
	BurstRateRPS float64  `json:"burst_rate_rps,omitempty"`
	OnMean       Duration `json:"on_mean,omitempty"`
	OffMean      Duration `json:"off_mean,omitempty"`

	// Diurnal: the rate follows one sinusoid of the given Period scaled
	// between MinFrac×RateRPS (trough) and RateRPS (peak). A 24h curve
	// compressed into a 30s run uses Period: "30s".
	Period  Duration `json:"period,omitempty"`
	MinFrac float64  `json:"min_frac,omitempty"`

	// Closed: a closed loop of Concurrency workers, each sending its
	// next request the moment the previous response lands. No
	// pregenerated trace (issue times depend on the server); the request
	// *sequence* per worker is still deterministic.
	Concurrency int `json:"concurrency,omitempty"`
}

// PopularitySpec selects which nodes a class queries.
type PopularitySpec struct {
	// Dist: zipf | hotset | uniform.
	Dist string `json:"dist"`

	// S is the Zipf skew exponent (> 0); higher concentrates more mass
	// on low-numbered nodes.
	S float64 `json:"s,omitempty"`

	// Hotset: a request draws uniformly from nodes [0, Hot) with
	// probability HotFrac, else uniformly from the whole graph.
	Hot     int     `json:"hot,omitempty"`
	HotFrac float64 `json:"hot_frac,omitempty"`
}

// SLO is the per-scenario service-level objective the report scores
// against. All latency targets are client-observed milliseconds.
type SLO struct {
	// P50TargetMs / P99TargetMs bound the aggregate latency percentiles.
	P50TargetMs float64 `json:"p50_target_ms"`
	P99TargetMs float64 `json:"p99_target_ms"`

	// Attainment: at least AttainTargetPct percent of successful
	// requests must finish within AttainMs.
	AttainMs        float64 `json:"attain_ms"`
	AttainTargetPct float64 `json:"attain_target_pct"`

	// MaxErrorPct bounds the request-weighted share of 429s, 5xx and
	// transport errors.
	MaxErrorPct float64 `json:"max_error_pct"`
}

// Validate checks the spec for structural errors before any traffic is
// generated, so a bad spec fails fast instead of mid-run.
func (s *Spec) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("workload: spec needs a name")
	}
	if s.Duration <= 0 {
		return fmt.Errorf("workload %s: duration must be positive", s.Name)
	}
	if len(s.Classes) == 0 {
		return fmt.Errorf("workload %s: at least one traffic class is required", s.Name)
	}
	seen := make(map[string]bool, len(s.Classes))
	for i := range s.Classes {
		c := &s.Classes[i]
		if c.Name == "" {
			return fmt.Errorf("workload %s: class %d needs a name", s.Name, i)
		}
		if seen[c.Name] {
			return fmt.Errorf("workload %s: duplicate class name %q", s.Name, c.Name)
		}
		seen[c.Name] = true
		if err := c.Arrival.validate(); err != nil {
			return fmt.Errorf("workload %s, class %s: %w", s.Name, c.Name, err)
		}
		if err := c.Popularity.validate(); err != nil {
			return fmt.Errorf("workload %s, class %s: %w", s.Name, c.Name, err)
		}
		if len(c.Mix) == 0 {
			return fmt.Errorf("workload %s, class %s: empty endpoint mix", s.Name, c.Name)
		}
		total := 0.0
		for _, m := range c.Mix {
			if !m.Op.valid() {
				return fmt.Errorf("workload %s, class %s: unknown op %q", s.Name, c.Name, m.Op)
			}
			if m.Weight <= 0 {
				return fmt.Errorf("workload %s, class %s: op %s weight must be positive", s.Name, c.Name, m.Op)
			}
			total += m.Weight
		}
		if total <= 0 {
			return fmt.Errorf("workload %s, class %s: mix weights sum to zero", s.Name, c.Name)
		}
		if c.K < 0 || c.Batch < 0 || c.Eps < 0 {
			return fmt.Errorf("workload %s, class %s: k, batch and eps must be non-negative", s.Name, c.Name)
		}
		switch c.SeedPolicy {
		case "", "pinned", "fresh", "hot-pinned":
		default:
			return fmt.Errorf("workload %s, class %s: unknown seed_policy %q", s.Name, c.Name, c.SeedPolicy)
		}
	}
	return nil
}

func (a *ArrivalSpec) validate() error {
	switch a.Process {
	case "poisson":
		if a.RateRPS <= 0 {
			return fmt.Errorf("poisson arrival needs rate_rps > 0")
		}
	case "bursty":
		if a.RateRPS < 0 || a.BurstRateRPS <= 0 {
			return fmt.Errorf("bursty arrival needs burst_rate_rps > 0 and rate_rps >= 0")
		}
		if a.BurstRateRPS <= a.RateRPS {
			return fmt.Errorf("bursty arrival needs burst_rate_rps > rate_rps")
		}
		if a.OnMean <= 0 || a.OffMean <= 0 {
			return fmt.Errorf("bursty arrival needs positive on_mean and off_mean")
		}
	case "diurnal":
		if a.RateRPS <= 0 {
			return fmt.Errorf("diurnal arrival needs rate_rps > 0 (the peak rate)")
		}
		if a.Period <= 0 {
			return fmt.Errorf("diurnal arrival needs a positive period")
		}
		if a.MinFrac < 0 || a.MinFrac > 1 {
			return fmt.Errorf("diurnal min_frac must be in [0, 1]")
		}
	case "closed":
		if a.Concurrency <= 0 {
			return fmt.Errorf("closed arrival needs concurrency > 0")
		}
	case "":
		return fmt.Errorf("arrival process is required (poisson|bursty|diurnal|closed)")
	default:
		return fmt.Errorf("unknown arrival process %q (want poisson|bursty|diurnal|closed)", a.Process)
	}
	return nil
}

func (p *PopularitySpec) validate() error {
	switch p.Dist {
	case "zipf":
		if p.S <= 0 {
			return fmt.Errorf("zipf popularity needs skew s > 0")
		}
	case "hotset":
		if p.Hot <= 0 {
			return fmt.Errorf("hotset popularity needs hot > 0")
		}
		if p.HotFrac < 0 || p.HotFrac > 1 {
			return fmt.Errorf("hotset hot_frac must be in [0, 1]")
		}
	case "uniform":
	case "":
		return fmt.Errorf("popularity dist is required (zipf|hotset|uniform)")
	default:
		return fmt.Errorf("unknown popularity dist %q (want zipf|hotset|uniform)", p.Dist)
	}
	return nil
}

// closed reports whether every class runs a closed loop. Open-loop and
// closed-loop classes cannot mix in one spec: the former replay a timed
// trace, the latter are paced by the server.
func (s *Spec) closed() (bool, error) {
	nClosed := 0
	for i := range s.Classes {
		if s.Classes[i].Arrival.Process == "closed" {
			nClosed++
		}
	}
	switch nClosed {
	case 0:
		return false, nil
	case len(s.Classes):
		return true, nil
	default:
		return false, fmt.Errorf("workload %s: open-loop and closed-loop classes cannot mix in one spec", s.Name)
	}
}

// LoadSpec reads and validates a JSON spec file.
func LoadSpec(path string) (*Spec, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("workload: reading spec: %w", err)
	}
	var s Spec
	if err := json.Unmarshal(raw, &s); err != nil {
		return nil, fmt.Errorf("workload: parsing spec %s: %w", path, err)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}
