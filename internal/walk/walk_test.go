package walk

import (
	"math"
	"testing"

	"github.com/simrank/simpush/internal/gen"
	"github.com/simrank/simpush/internal/graph"
	"github.com/simrank/simpush/internal/rnd"
)

const testC = 0.6

func TestWalkStopsAtDangling(t *testing.T) {
	// Path 0->1->2: in-neighbor chains run 2 -> 1 -> 0; node 0 has no
	// in-neighbors so every walk from 2 has length <= 2.
	g := gen.Path(3)
	w := NewWalker(g, testC, rnd.New(1))
	for i := 0; i < 1000; i++ {
		steps := w.Sample(2)
		if len(steps) > 2 {
			t.Fatalf("walk exceeded reachable depth: %v", steps)
		}
		for j, v := range steps {
			if v != 2-int32(j+1) {
				t.Fatalf("walk stepped off the in-chain: %v", steps)
			}
		}
	}
}

func TestWalkLengthGeometric(t *testing.T) {
	// On a cycle every node has exactly one in-neighbor, so walk length is
	// geometric with success probability 1-√c: E[len] = √c/(1-√c).
	g := gen.Cycle(10)
	w := NewWalker(g, testC, rnd.New(2))
	const n = 200000
	var total float64
	for i := 0; i < n; i++ {
		total += float64(len(w.Sample(0)))
	}
	sqrtC := math.Sqrt(testC)
	want := sqrtC / (1 - sqrtC)
	got := total / n
	if math.Abs(got-want) > 0.05 {
		t.Fatalf("mean walk length %v, want %v", got, want)
	}
}

func TestSampleTruncated(t *testing.T) {
	g := gen.Cycle(5)
	w := NewWalker(g, 0.99, rnd.New(3))
	for i := 0; i < 100; i++ {
		if got := len(w.SampleTruncated(0, 4)); got > 4 {
			t.Fatalf("truncated walk of length %d", got)
		}
	}
}

func TestMeetSameNode(t *testing.T) {
	g := gen.Cycle(4)
	w := NewWalker(g, testC, rnd.New(4))
	if !w.Meet(2, 2) {
		t.Fatal("Meet(v,v) must be true")
	}
}

func TestMeetProbabilityOnCycle(t *testing.T) {
	// On a directed n-cycle, walks from distinct nodes stay at a constant
	// cyclic distance, so they can never meet: s(u,v) = 0 for u != v.
	g := gen.Cycle(6)
	w := NewWalker(g, testC, rnd.New(5))
	for i := 0; i < 2000; i++ {
		if w.Meet(0, 3) {
			t.Fatal("distinct cycle nodes met")
		}
	}
}

func TestMeetProbabilityOnStarLeaves(t *testing.T) {
	// Star with hub 0: leaves have no in-neighbors... walks from leaves stop
	// immediately, so leaves never meet.
	g := gen.Star(5)
	w := NewWalker(g, testC, rnd.New(6))
	for i := 0; i < 100; i++ {
		if w.Meet(1, 2) {
			t.Fatal("star leaves met")
		}
	}
	// Hub walks jump to leaves: two hub-walks... u==v is trivially true.
	// Instead check hub-vs-leaf: leaf walk stops at step 0; hub walk needs
	// step>=1; they can never coincide at the same step.
	for i := 0; i < 100; i++ {
		if w.Meet(0, 1) {
			t.Fatal("hub met leaf")
		}
	}
}

// Exact SimRank on the 2-clique {0,1} (edges both ways): s(0,1) satisfies
// s = c * s(1,0)... by symmetry s(0,1) = c/(2-c)... Let's derive: I(0)={1},
// I(1)={0}. s(0,1) = c * s(1,0) = c * s(0,1)?? No: s(0,1) = c/(1*1) * s(1,0)
// where s(1,0)=s(0,1) unless 1==0. Actually s(0,1) = c * s(1,0) requires
// s(0,1)(1-c)=0 => 0? No — careful: s(1,0) means SimRank between the
// in-neighbors, which are (1's in-neighbor)=0 and (0's in-neighbor)=1, so
// s(0,1) = c*s(1,0) = c*s(0,1) only if s(1,0)=s(0,1) — giving s(0,1)=0??
// The √c-walk view: walks from 0 and 1 alternate deterministically
// 0->1->0... and 1->0->1..., never equal at the same step => s(0,1)=0. Yes.
func TestMeetTwoClique(t *testing.T) {
	b := gen.Cycle(2) // 0->1, 1->0 is exactly the 2-cycle
	w := NewWalker(b, testC, rnd.New(7))
	for i := 0; i < 1000; i++ {
		if w.Meet(0, 1) {
			t.Fatal("2-cycle nodes met; walks should alternate forever")
		}
	}
}

func TestMeetOnSharedParent(t *testing.T) {
	// Nodes 1 and 2 both have single in-neighbor 0; walks from 1 and 2 meet
	// at 0 at step 1 iff both walks take a first step: probability c.
	g := gen.Star(3) // edges 1->0, 2->0: in-neighbors of 1,2 are empty! star is leaves->hub.
	// Build the opposite: hub 0 -> leaves. Then In(leaf) = {0}.
	_ = g
	gr := graph.MustFromPairs([2]int32{0, 1}, [2]int32{0, 2})
	w := NewWalker(gr, testC, rnd.New(8))
	const n = 100000
	hits := 0
	for i := 0; i < n; i++ {
		if w.Meet(1, 2) {
			hits++
		}
	}
	got := float64(hits) / n
	if math.Abs(got-testC) > 0.01 {
		t.Fatalf("meet probability %v, want c=%v", got, testC)
	}
}

func TestLevelCounter(t *testing.T) {
	lc := NewLevelCounter(10)
	lc.Add(1, 3)
	lc.Add(1, 3)
	lc.Add(2, 5)
	if lc.Count(1, 3) != 2 {
		t.Fatalf("count = %d", lc.Count(1, 3))
	}
	if lc.Count(1, 5) != 0 || lc.Count(9, 0) != 0 {
		t.Fatal("phantom counts")
	}
	if lc.MaxLevels() != 3 {
		t.Fatalf("MaxLevels = %d", lc.MaxLevels())
	}
	if lc.MaxCountAt(1) != 2 || lc.MaxCountAt(2) != 1 || lc.MaxCountAt(7) != 0 {
		t.Fatal("MaxCountAt wrong")
	}
	lc.Reset()
	if lc.Count(1, 3) != 0 || lc.MaxCountAt(1) != 0 {
		t.Fatal("reset incomplete")
	}
	lc.Add(1, 3)
	if lc.Count(1, 3) != 1 {
		t.Fatal("counter unusable after reset")
	}
}

func TestSplitWalkerIndependent(t *testing.T) {
	g := gen.Cycle(8)
	w := NewWalker(g, testC, rnd.New(11))
	w2 := w.Split()
	if w2.SqrtC() != w.SqrtC() {
		t.Fatal("split changed decay")
	}
	// Both should work without interfering.
	a := len(w.Sample(0))
	b := len(w2.Sample(0))
	_ = a
	_ = b
}

func BenchmarkSample(b *testing.B) {
	g, err := gen.CopyingModel(50000, 10, 0.3, 1)
	if err != nil {
		b.Fatal(err)
	}
	w := NewWalker(g, testC, rnd.New(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.Sample(int32(i) % g.N())
	}
}

func BenchmarkMeet(b *testing.B) {
	g, err := gen.CopyingModel(50000, 10, 0.3, 1)
	if err != nil {
		b.Fatal(err)
	}
	w := NewWalker(g, testC, rnd.New(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.Meet(int32(i)%g.N(), int32(i+1)%g.N())
	}
}

func TestLevelCounterForEach(t *testing.T) {
	lc := NewLevelCounter(10)
	lc.Add(1, 3)
	lc.Add(1, 3)
	lc.Add(1, 7)
	got := map[int32]int32{}
	lc.ForEach(1, func(v, c int32) { got[v] = c })
	if len(got) != 2 || got[3] != 2 || got[7] != 1 {
		t.Fatalf("ForEach = %v", got)
	}
	// out-of-range level is a no-op
	lc.ForEach(9, func(v, c int32) { t.Fatal("phantom level") })
	lc.Reset()
	lc.ForEach(1, func(v, c int32) { t.Fatal("survived reset") })
}

// Rebind must swap the traversed graph while the random stream continues;
// walks after a rebind stay within the new graph's node range.
func TestWalkerRebind(t *testing.T) {
	small := gen.Cycle(4)
	big := gen.Cycle(64)
	w := NewWalker(small, testC, rnd.New(1))
	for i := 0; i < 50; i++ {
		w.Sample(2)
	}
	w.Rebind(big)
	for i := 0; i < 500; i++ {
		for _, v := range w.Sample(40) {
			if v < 0 || v >= big.N() {
				t.Fatalf("post-rebind walk left the graph: node %d", v)
			}
		}
	}
	// Rebinding to a smaller graph works the same way.
	w.Rebind(small)
	for i := 0; i < 500; i++ {
		for _, v := range w.Sample(2) {
			if v < 0 || v >= small.N() {
				t.Fatalf("post-shrink walk left the graph: node %d", v)
			}
		}
	}
}

// Grow must extend allocated levels in place with zeroed entries and keep
// counts accumulated so far.
func TestLevelCounterGrow(t *testing.T) {
	lc := NewLevelCounter(3)
	lc.Add(1, 2)
	lc.Add(1, 2)
	lc.Grow(10)
	if got := lc.Count(1, 2); got != 2 {
		t.Fatalf("count lost across Grow: %d", got)
	}
	// New ids are addressable at already-allocated levels without panics.
	lc.Add(1, 9)
	if got := lc.Count(1, 9); got != 1 {
		t.Fatalf("count at grown id = %d", got)
	}
	// Levels allocated after Grow use the new size.
	lc.Add(2, 7)
	if got := lc.Count(2, 7); got != 1 {
		t.Fatalf("count at new level = %d", got)
	}
	lc.Reset()
	for _, probe := range [][2]int32{{1, 2}, {1, 9}, {2, 7}} {
		if got := lc.Count(int(probe[0]), probe[1]); got != 0 {
			t.Fatalf("count (%d,%d) survived Reset: %d", probe[0], probe[1], got)
		}
	}
	// Shrink keeps the larger arrays; ids below the new n remain valid.
	lc.Grow(5)
	lc.Add(1, 4)
	if got := lc.Count(1, 4); got != 1 {
		t.Fatalf("count after shrink = %d", got)
	}
}
