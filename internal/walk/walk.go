// Package walk implements √c-walk sampling (Definition 2 of the SimPush
// paper): a random walk that at each node stops with probability 1−√c and
// otherwise jumps to a uniformly random in-neighbor. A node with no
// in-neighbors forces the walk to stop.
//
// √c-walks underlie the SimRank decomposition s(u,v) = Σ_ℓ Σ_w κ^(ℓ)(u,v,w)
// used by SimPush, SLING, PRSim, ProbeSim and READS.
package walk

import (
	"math"

	"github.com/simrank/simpush/internal/graph"
	"github.com/simrank/simpush/internal/rnd"
)

// Walker samples √c-walks over a fixed graph with a fixed decay factor.
// Not safe for concurrent use (owns its RNG); use Split for workers.
type Walker struct {
	g     *graph.Graph
	sqrtC float64
	rng   *rnd.Source
	buf   []int32
}

// NewWalker returns a Walker for graph g with decay factor c (the SimRank
// decay, not its square root) and the given RNG.
func NewWalker(g *graph.Graph, c float64, rng *rnd.Source) *Walker {
	return &Walker{g: g, sqrtC: math.Sqrt(c), rng: rng, buf: make([]int32, 0, 64)}
}

// SqrtC returns the per-step continuation probability √c.
func (w *Walker) SqrtC() float64 {
	return w.sqrtC
}

// Split returns a Walker over the same graph with an independent RNG,
// suitable for handing to another goroutine.
func (w *Walker) Split() *Walker {
	return &Walker{g: w.g, sqrtC: w.sqrtC, rng: w.rng.Split(), buf: make([]int32, 0, 64)}
}

// DeriveSeed draws the next value of the walker's stream for seeding a
// worker substream. Each draw advances the parent stream, so a set of k
// substreams is deterministic in (parent state, k) — the foundation of
// the engine's fixed-(seed, parallelism) reproducibility contract.
func (w *Walker) DeriveSeed() uint64 {
	return w.rng.Uint64()
}

// Rebind points the walker at a new graph snapshot. The random stream
// continues where it left off — rebinding changes what the walks traverse,
// not how they are sampled.
func (w *Walker) Rebind(g *graph.Graph) {
	w.g = g
}

// Reseed resets the walker's random stream, making everything sampled
// afterwards deterministic in seed alone.
func (w *Walker) Reseed(seed uint64) {
	w.rng.Seed(seed)
}

// PushSeed reseeds the walker for a bounded scope and returns a restore
// function that resumes the original stream exactly where it left off —
// the seeded scope leaves no trace on later sampling.
func (w *Walker) PushSeed(seed uint64) (restore func()) {
	a, b, c, d := w.rng.State()
	w.rng.Seed(seed)
	return func() { w.rng.Restore(a, b, c, d) }
}

// Next performs one step of a √c-walk currently at v. It returns the next
// node and true, or (v, false) if the walk stops (decay or dangling node).
func (w *Walker) Next(v int32) (int32, bool) {
	if w.rng.Float64() >= w.sqrtC {
		return v, false
	}
	in := w.g.In(v)
	if len(in) == 0 {
		return v, false
	}
	return in[w.rng.Intn(len(in))], true
}

// Sample generates a complete √c-walk from u. The returned slice contains
// the visited nodes from step 1 onward (u itself, step 0, is excluded) and
// is only valid until the next call on this Walker.
func (w *Walker) Sample(u int32) []int32 {
	w.buf = w.buf[:0]
	v := u
	for {
		nv, ok := w.Next(v)
		if !ok {
			return w.buf
		}
		v = nv
		w.buf = append(w.buf, v)
	}
}

// SampleTruncated is Sample with a hard cap on the number of steps.
func (w *Walker) SampleTruncated(u int32, maxSteps int) []int32 {
	w.buf = w.buf[:0]
	v := u
	for len(w.buf) < maxSteps {
		nv, ok := w.Next(v)
		if !ok {
			break
		}
		v = nv
		w.buf = append(w.buf, v)
	}
	return w.buf
}

// Meet simulates two independent √c-walks from u and v and reports whether
// they ever occupy the same node at the same step (the first-meeting event
// whose probability is exactly s(u,v); see Eq. 5 of the paper).
func (w *Walker) Meet(u, v int32) bool {
	if u == v {
		return true
	}
	a, b := u, v
	for {
		na, okA := w.Next(a)
		nb, okB := w.Next(b)
		if !okA || !okB {
			// One walk stopped: with per-step synchronized decay the pair
			// can no longer meet at a common step.
			return false
		}
		a, b = na, nb
		if a == b {
			return true
		}
	}
}

// LevelCounter accumulates per-(step, node) visit counts of √c-walks, the
// H^(ℓ)(u,v) statistics of Source-Push (Algorithm 2 lines 1-3). Counters
// are allocated per level on demand and reset in O(touched).
type LevelCounter struct {
	n       int32
	counts  [][]int32 // counts[ℓ][v]
	touched [][]int32 // touched[ℓ] lists nodes with counts[ℓ][v] > 0
}

// NewLevelCounter returns a counter for a graph with n nodes.
func NewLevelCounter(n int32) *LevelCounter {
	return &LevelCounter{n: n}
}

// Grow resizes the counter for a graph that now has n nodes, extending
// already-allocated per-level arrays in place (appended entries are zero,
// preserving the reset invariant). Shrinking keeps the larger arrays —
// node ids below the new n stay valid and nothing reallocates.
func (lc *LevelCounter) Grow(n int32) {
	if n > lc.n {
		for l, c := range lc.counts {
			if c == nil || int32(len(c)) >= n {
				continue
			}
			lc.counts[l] = append(c, make([]int32, n-int32(len(c)))...)
		}
	}
	lc.n = n
}

// Add records a visit of v at step ℓ (ℓ >= 1).
func (lc *LevelCounter) Add(level int, v int32) {
	for len(lc.counts) <= level {
		lc.counts = append(lc.counts, nil)
		lc.touched = append(lc.touched, nil)
	}
	if lc.counts[level] == nil {
		lc.counts[level] = make([]int32, lc.n)
	}
	if lc.counts[level][v] == 0 {
		lc.touched[level] = append(lc.touched[level], v)
	}
	lc.counts[level][v]++
}

// MaxMergedCountAt merges sharded per-worker counters for threshold
// detection: it returns the maximum, over candidate nodes, of the visit
// count at the given level summed across all shards. Candidates are nodes
// holding at least minShare visits in some shard — a node whose merged
// total reaches T must hold ≥ ⌈T/k⌉ in at least one of k shards, so a
// caller testing "does any merged count reach T?" can pass
// minShare = ⌈T/k⌉ and compare the result against T without ever
// materializing the merged counter. Non-candidate nodes are skipped with
// one compare each, making the merge O(total touched) compares plus
// O(candidates·k) summations; the returned value may undercount nodes
// below the candidate bar, all of which are below T by construction.
// Sums are order-independent, so sharding never perturbs detection.
func MaxMergedCountAt(shards []*LevelCounter, level int, minShare int32) int32 {
	var mx int32
	for _, s := range shards {
		if level >= len(s.counts) || s.counts[level] == nil {
			continue
		}
		for _, v := range s.touched[level] {
			if s.counts[level][v] < minShare {
				continue
			}
			var total int32
			for _, s2 := range shards {
				total += s2.Count(level, v)
			}
			if total > mx {
				mx = total
			}
		}
	}
	return mx
}

// MaxLevels returns the number of levels that received any visit.
func (lc *LevelCounter) MaxLevels() int {
	return len(lc.counts)
}

// Count returns the visit count of v at the given level.
func (lc *LevelCounter) Count(level int, v int32) int32 {
	if level >= len(lc.counts) || lc.counts[level] == nil {
		return 0
	}
	return lc.counts[level][v]
}

// ForEach invokes fn for every node with a nonzero count at the level.
func (lc *LevelCounter) ForEach(level int, fn func(v int32, count int32)) {
	if level >= len(lc.counts) || lc.counts[level] == nil {
		return
	}
	for _, v := range lc.touched[level] {
		if c := lc.counts[level][v]; c > 0 {
			fn(v, c)
		}
	}
}

// MaxCountAt returns the maximum count observed at the given level.
func (lc *LevelCounter) MaxCountAt(level int) int32 {
	if level >= len(lc.counts) {
		return 0
	}
	var mx int32
	for _, v := range lc.touched[level] {
		if c := lc.counts[level][v]; c > mx {
			mx = c
		}
	}
	return mx
}

// Reset clears all counters in O(total touched).
func (lc *LevelCounter) Reset() {
	for l := range lc.counts {
		if lc.counts[l] == nil {
			continue
		}
		for _, v := range lc.touched[l] {
			lc.counts[l][v] = 0
		}
		lc.touched[l] = lc.touched[l][:0]
	}
}
