// Package mc implements Monte Carlo SimRank estimation via paired √c-walks.
//
// s(u,v) equals the probability that two independent √c-walks from u and v
// meet (occupy the same node at the same step); see Eq. 5 of the SimPush
// paper. Sampling that event directly yields an unbiased estimator, which
// is how the paper generates ground truth (§5.1, following [21, 33]).
package mc

import (
	"fmt"
	"math"
	"runtime"
	"sync"

	"github.com/simrank/simpush/internal/graph"
	"github.com/simrank/simpush/internal/rnd"
	"github.com/simrank/simpush/internal/walk"
)

// Estimator samples paired √c-walks on a fixed graph.
type Estimator struct {
	g *graph.Graph
	c float64
}

// New returns an Estimator with decay factor c.
func New(g *graph.Graph, c float64) *Estimator {
	return &Estimator{g: g, c: c}
}

// Pair estimates s(u, v) from the given number of walk-pair samples.
func (e *Estimator) Pair(u, v int32, samples int, seed uint64) float64 {
	if u == v {
		return 1
	}
	w := walk.NewWalker(e.g, e.c, rnd.New(seed))
	hits := 0
	for i := 0; i < samples; i++ {
		if w.Meet(u, v) {
			hits++
		}
	}
	return float64(hits) / float64(samples)
}

// PairParallel estimates s(u, v) splitting samples across all CPUs.
func (e *Estimator) PairParallel(u, v int32, samples int, seed uint64) float64 {
	if u == v {
		return 1
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > samples {
		workers = 1
	}
	per := samples / workers
	results := make([]int, workers)
	var wg sync.WaitGroup
	for k := 0; k < workers; k++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			w := walk.NewWalker(e.g, e.c, rnd.New(seed+uint64(k)*0x9e3779b97f4a7c15+1))
			n := per
			if k == workers-1 {
				n = samples - per*(workers-1)
			}
			hits := 0
			for i := 0; i < n; i++ {
				if w.Meet(u, v) {
					hits++
				}
			}
			results[k] = hits
		}(k)
	}
	wg.Wait()
	total := 0
	for _, h := range results {
		total += h
	}
	return float64(total) / float64(samples)
}

// Pairs estimates s(u, v) for every (u, v) pair with v in targets,
// parallelizing across targets. Used by the pooled ground-truth protocol.
func (e *Estimator) Pairs(u int32, targets []int32, samples int, seed uint64) []float64 {
	out := make([]float64, len(targets))
	workers := runtime.GOMAXPROCS(0)
	if workers > len(targets) {
		workers = len(targets)
	}
	if workers < 1 {
		workers = 1
	}
	var next int64
	var mu sync.Mutex
	var wg sync.WaitGroup
	for k := 0; k < workers; k++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			w := walk.NewWalker(e.g, e.c, rnd.New(seed^(uint64(k)+1)*0xd1342543de82ef95))
			for {
				mu.Lock()
				i := next
				next++
				mu.Unlock()
				if int(i) >= len(targets) {
					return
				}
				v := targets[i]
				if v == u {
					out[i] = 1
					continue
				}
				hits := 0
				for s := 0; s < samples; s++ {
					if w.Meet(u, v) {
						hits++
					}
				}
				out[i] = float64(hits) / float64(samples)
			}
		}(k)
	}
	wg.Wait()
	return out
}

// SingleSource estimates the full SimRank row of u by running Pair against
// every node. Θ(n·samples) walk pairs: only for small graphs and tests.
func (e *Estimator) SingleSource(u int32, samples int, seed uint64) ([]float64, error) {
	n := e.g.N()
	if !e.g.HasNode(u) {
		return nil, fmt.Errorf("mc: node %d out of range", u)
	}
	targets := make([]int32, n)
	for v := int32(0); v < n; v++ {
		targets[v] = v
	}
	return e.Pairs(u, targets, samples, seed), nil
}

// SamplesForError returns the Hoeffding sample count for additive error eps
// with failure probability delta: n >= ln(2/δ)/(2ε²).
func SamplesForError(eps, delta float64) int {
	if eps <= 0 || delta <= 0 {
		return 1
	}
	n := int(math.Log(2/delta) / (2 * eps * eps))
	if n < 1 {
		n = 1
	}
	return n
}
