package mc

import (
	"math"
	"testing"

	"github.com/simrank/simpush/internal/exact"
	"github.com/simrank/simpush/internal/gen"
	"github.com/simrank/simpush/internal/graph"
)

const c = 0.6

func TestPairSelf(t *testing.T) {
	g := gen.Cycle(4)
	if got := New(g, c).Pair(2, 2, 10, 1); got != 1 {
		t.Fatalf("s(v,v) = %v", got)
	}
}

func TestPairSharedParent(t *testing.T) {
	g := graph.MustFromPairs([2]int32{0, 1}, [2]int32{0, 2})
	got := New(g, c).Pair(1, 2, 200000, 7)
	if math.Abs(got-c) > 0.01 {
		t.Fatalf("MC s(1,2) = %v, want %v", got, c)
	}
}

func TestPairParallelMatches(t *testing.T) {
	g := graph.MustFromPairs([2]int32{0, 1}, [2]int32{0, 2})
	e := New(g, c)
	got := e.PairParallel(1, 2, 200000, 11)
	if math.Abs(got-c) > 0.01 {
		t.Fatalf("parallel MC s(1,2) = %v, want %v", got, c)
	}
	if e.PairParallel(1, 1, 10, 1) != 1 {
		t.Fatal("parallel self similarity")
	}
}

// MC must agree with the exact power method on a random graph.
func TestAgreesWithExact(t *testing.T) {
	g, err := gen.CopyingModel(80, 4, 0.35, 5)
	if err != nil {
		t.Fatal(err)
	}
	ex, err := exact.AllPairs(g, exact.Options{C: c})
	if err != nil {
		t.Fatal(err)
	}
	e := New(g, c)
	const samples = 60000
	// check a handful of pairs including high-similarity ones
	pairs := [][2]int32{{1, 2}, {10, 20}, {5, 50}, {30, 31}, {60, 61}, {3, 70}}
	for _, p := range pairs {
		got := e.Pair(p[0], p[1], samples, 13)
		want := ex.At(p[0], p[1])
		tol := 4*math.Sqrt(want*(1-want)/samples) + 0.004
		if math.Abs(got-want) > tol {
			t.Errorf("s(%d,%d): MC %v vs exact %v (tol %v)", p[0], p[1], got, want, tol)
		}
	}
}

func TestPairsVector(t *testing.T) {
	g, err := gen.ErdosRenyi(50, 400, 3)
	if err != nil {
		t.Fatal(err)
	}
	e := New(g, c)
	targets := []int32{0, 5, 7, 7, 49}
	got := e.Pairs(7, targets, 5000, 17)
	if len(got) != len(targets) {
		t.Fatalf("len = %d", len(got))
	}
	if got[2] != 1 || got[3] != 1 {
		t.Fatal("self pair not 1")
	}
	for i, v := range got {
		if v < 0 || v > 1 {
			t.Fatalf("score %d out of range: %v", i, v)
		}
	}
}

func TestSingleSource(t *testing.T) {
	g := graph.MustFromPairs([2]int32{0, 1}, [2]int32{0, 2}, [2]int32{1, 3}, [2]int32{2, 4})
	e := New(g, c)
	row, err := e.SingleSource(3, 60000, 19)
	if err != nil {
		t.Fatal(err)
	}
	if row[3] != 1 {
		t.Fatal("self != 1")
	}
	// s(3,4) = c² (two-hop chain, see exact tests)
	if math.Abs(row[4]-c*c) > 0.01 {
		t.Fatalf("s(3,4) = %v, want %v", row[4], c*c)
	}
	if _, err := e.SingleSource(-1, 10, 1); err == nil {
		t.Fatal("negative node accepted")
	}
}

func TestSamplesForError(t *testing.T) {
	if n := SamplesForError(0.01, 0.01); n < 10000 {
		t.Fatalf("too few samples: %d", n)
	}
	if n := SamplesForError(0, 0.5); n != 1 {
		t.Fatalf("degenerate eps should clamp to 1, got %d", n)
	}
}

func TestDeterministicSeed(t *testing.T) {
	g, err := gen.ErdosRenyi(30, 150, 9)
	if err != nil {
		t.Fatal(err)
	}
	e := New(g, c)
	a := e.Pair(1, 2, 10000, 42)
	b := e.Pair(1, 2, 10000, 42)
	if a != b {
		t.Fatal("same seed produced different estimates")
	}
}
