package bench

import (
	"fmt"
	"io"
	"sort"
	"time"

	"github.com/simrank/simpush/internal/core"
	"github.com/simrank/simpush/internal/gen"
	"github.com/simrank/simpush/internal/graph"
)

// writeRows emits harness rows as a TSV block with the named metric pair —
// one line per (method, setting), grouped per dataset, mirroring one panel
// of a paper figure.
func writeRows(w io.Writer, rows []Row, xName, yName string, x, y func(Row) string) {
	fmt.Fprintf(w, "dataset\tmethod\tsetting\t%s\t%s\tnote\n", xName, yName)
	sorted := append([]Row(nil), rows...)
	sort.Slice(sorted, func(a, b int) bool {
		if sorted[a].Dataset != sorted[b].Dataset {
			return sorted[a].Dataset < sorted[b].Dataset
		}
		if sorted[a].Method != sorted[b].Method {
			return sorted[a].Method < sorted[b].Method
		}
		return sorted[a].Rank < sorted[b].Rank
	})
	for _, r := range sorted {
		if r.Excluded {
			fmt.Fprintf(w, "%s\t%s\t%s\t-\t-\texcluded: %s\n", r.Dataset, r.Method, r.Setting, r.Reason)
			continue
		}
		fmt.Fprintf(w, "%s\t%s\t%s\t%s\t%s\t\n", r.Dataset, r.Method, r.Setting, x(r), y(r))
	}
}

// Figure4 reproduces "Average error vs. query time" (paper Figure 4):
// AvgError@50 on the x-axis, per-query seconds on the y-axis, five points
// per method per dataset.
func Figure4(w io.Writer, opt Options, datasets []gen.Dataset) error {
	fmt.Fprintln(w, "== Figure 4: AvgError@50 vs query time ==")
	for _, ds := range datasets {
		rows, err := RunDataset(opt, ds)
		if err != nil {
			return err
		}
		writeRows(w, rows, "avg_error@50", "query_time_s",
			func(r Row) string { return fmt.Sprintf("%.6f", r.AvgErrK) },
			func(r Row) string { return fmt.Sprintf("%.6f", r.QueryTime.Seconds()) })
	}
	return nil
}

// Figure5 reproduces "Precision vs. query time" (paper Figure 5).
func Figure5(w io.Writer, opt Options, datasets []gen.Dataset) error {
	fmt.Fprintln(w, "== Figure 5: Precision@50 vs query time ==")
	for _, ds := range datasets {
		rows, err := RunDataset(opt, ds)
		if err != nil {
			return err
		}
		writeRows(w, rows, "precision@50", "query_time_s",
			func(r Row) string { return fmt.Sprintf("%.4f", r.PrecK) },
			func(r Row) string { return fmt.Sprintf("%.6f", r.QueryTime.Seconds()) })
	}
	return nil
}

// Figure6 reproduces "Average error vs. peak memory usage" (paper
// Figure 6): AvgError@50 vs graph+index memory in GB.
func Figure6(w io.Writer, opt Options, datasets []gen.Dataset) error {
	fmt.Fprintln(w, "== Figure 6: AvgError@50 vs peak memory ==")
	for _, ds := range datasets {
		rows, err := RunDataset(opt, ds)
		if err != nil {
			return err
		}
		writeRows(w, rows, "avg_error@50", "memory_gb",
			func(r Row) string { return fmt.Sprintf("%.6f", r.AvgErrK) },
			func(r Row) string { return fmt.Sprintf("%.4f", float64(r.Memory)/(1<<30)) })
	}
	return nil
}

// Figures456 runs the sweep once per dataset and emits the three metric
// views of Figures 4, 5 and 6 from the same rows. RunDataset dominates the
// cost, so this is ~3x cheaper than running the figures separately; it is
// what cmd/simbench -exp figs and the recorded EXPERIMENTS.md runs use.
func Figures456(w io.Writer, opt Options, datasets []gen.Dataset) error {
	for _, ds := range datasets {
		rows, err := RunDataset(opt, ds)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "== Figure 4 panel (%s): AvgError@50 vs query time ==\n", ds.Name)
		writeRows(w, rows, "avg_error@50", "query_time_s",
			func(r Row) string { return fmt.Sprintf("%.6f", r.AvgErrK) },
			func(r Row) string { return fmt.Sprintf("%.6f", r.QueryTime.Seconds()) })
		fmt.Fprintf(w, "== Figure 5 panel (%s): Precision@50 vs query time ==\n", ds.Name)
		writeRows(w, rows, "precision@50", "query_time_s",
			func(r Row) string { return fmt.Sprintf("%.4f", r.PrecK) },
			func(r Row) string { return fmt.Sprintf("%.6f", r.QueryTime.Seconds()) })
		fmt.Fprintf(w, "== Figure 6 panel (%s): AvgError@50 vs peak memory ==\n", ds.Name)
		writeRows(w, rows, "avg_error@50", "memory_gb",
			func(r Row) string { return fmt.Sprintf("%.6f", r.AvgErrK) },
			func(r Row) string { return fmt.Sprintf("%.4f", float64(r.Memory)/(1<<30)) })
		fmt.Fprintf(w, "== build times (%s) ==\n", ds.Name)
		writeRows(w, rows, "build_s", "query_time_s",
			func(r Row) string { return fmt.Sprintf("%.3f", r.BuildTime.Seconds()) },
			func(r Row) string { return fmt.Sprintf("%.6f", r.QueryTime.Seconds()) })
	}
	return nil
}

// Figure7 reproduces the billion-node ClueWeb evaluation (paper Figure 7)
// on the clueweb-sim stand-in. As in the paper, only SimPush, PRSim and
// ProbeSim run — the other four methods exceed the memory budget at this
// scale (our harness enforces that with a deliberately low index cap).
func Figure7(w io.Writer, opt Options) error {
	opt.Fill()
	fmt.Fprintln(w, "== Figure 7: clueweb-sim (largest stand-in) ==")
	opt.Methods = []string{"SimPush", "PRSim", "ProbeSim"}
	ds, err := gen.ByName("clueweb-sim")
	if err != nil {
		return err
	}
	rows, err := RunDataset(opt, ds)
	if err != nil {
		return err
	}
	writeRows(w, rows, "avg_error@50", "query_time_s",
		func(r Row) string { return fmt.Sprintf("%.6f", r.AvgErrK) },
		func(r Row) string { return fmt.Sprintf("%.6f", r.QueryTime.Seconds()) })
	writeRows(w, rows, "precision@50", "query_time_s",
		func(r Row) string { return fmt.Sprintf("%.4f", r.PrecK) },
		func(r Row) string { return fmt.Sprintf("%.6f", r.QueryTime.Seconds()) })
	writeRows(w, rows, "avg_error@50", "memory_gb",
		func(r Row) string { return fmt.Sprintf("%.6f", r.AvgErrK) },
		func(r Row) string { return fmt.Sprintf("%.4f", float64(r.Memory)/(1<<30)) })
	return nil
}

// Table4 reproduces the dataset-statistics table (paper Table 4) for the
// nine synthetic stand-ins.
func Table4(w io.Writer, opt Options) error {
	opt.Fill()
	fmt.Fprintln(w, "== Table 4: datasets ==")
	fmt.Fprintln(w, "name\tn\tm\ttype\tavg_deg\tmax_in_deg\talpha\tstands_for")
	for _, ds := range gen.Roster {
		g, err := ds.Generate(opt.Scale)
		if err != nil {
			return err
		}
		s := graph.ComputeStats(g)
		kind := "directed"
		if s.Symmetric {
			kind = "undirected"
		}
		fmt.Fprintf(w, "%s\t%d\t%d\t%s\t%.1f\t%d\t%.2f\t%s\n",
			ds.Name, s.N, s.M, kind, s.AvgInDeg, s.MaxInDeg, s.PowerLawAlpha, ds.PaperRef)
	}
	return nil
}

// LevelStats reproduces the in-text statistics of §5.2: the average max
// level L of the source graph and the average number of attention nodes
// at ε = 0.02 (the paper reports e.g. L=2.76 on Twitter, L=9.0 on DBLP,
// and attention counts in the dozens to hundreds).
func LevelStats(w io.Writer, opt Options, datasets []gen.Dataset) error {
	opt.Fill()
	fmt.Fprintln(w, "== Level statistics (SimPush, eps=0.02) ==")
	fmt.Fprintln(w, "dataset\tavg_L\tavg_attention\tavg_source_graph_nodes\tavg_query_s")
	for _, ds := range datasets {
		g, err := ds.Generate(opt.Scale)
		if err != nil {
			return err
		}
		sp, err := core.New(g, core.Options{Epsilon: 0.02, Seed: opt.Seed})
		if err != nil {
			return err
		}
		queries := PickQueries(g, opt.Queries, opt.Seed)
		var sumL, sumAtt, sumGu, sumT float64
		for _, u := range queries {
			t0 := time.Now()
			res, err := sp.Query(u)
			if err != nil {
				return err
			}
			sumT += time.Since(t0).Seconds()
			sumL += float64(res.L)
			sumAtt += float64(len(res.Attention))
			sumGu += float64(res.SourceGraphSize)
		}
		q := float64(len(queries))
		fmt.Fprintf(w, "%s\t%.2f\t%.1f\t%.1f\t%.4f\n", ds.Name, sumL/q, sumAtt/q, sumGu/q, sumT/q)
	}
	return nil
}
