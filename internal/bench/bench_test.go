package bench

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"github.com/simrank/simpush/internal/gen"
)

// tinyOptions keeps harness tests fast: minimum-size datasets, few
// queries, small truth samples.
func tinyOptions() Options {
	return Options{
		Scale:         0.02, // datasets floor at 1000 nodes
		Queries:       2,
		K:             10,
		TruthSamples:  3000,
		WalkCap:       20000,
		MaxIndexBytes: 1 << 30,
		MaxQueryTime:  20 * time.Second,
		Seed:          7,
	}
}

func TestPickQueries(t *testing.T) {
	g := gen.Cycle(50)
	q := PickQueries(g, 10, 3)
	if len(q) != 10 {
		t.Fatalf("got %d queries", len(q))
	}
	seen := map[int32]bool{}
	for _, u := range q {
		if u < 0 || u >= 50 || seen[u] {
			t.Fatalf("bad query set %v", q)
		}
		seen[u] = true
	}
	// More queries than nodes clamps.
	if got := PickQueries(gen.Cycle(3), 10, 1); len(got) != 3 {
		t.Fatalf("clamp failed: %v", got)
	}
}

func TestRunDatasetSmoke(t *testing.T) {
	opt := tinyOptions()
	opt.Methods = []string{"SimPush", "TopSim"} // two cheap methods
	ds := gen.Roster[0]
	rows, err := RunDataset(opt, ds)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 10 {
		t.Fatalf("rows = %d, want 2 methods x 5 settings", len(rows))
	}
	ran := 0
	for _, r := range rows {
		if r.Excluded {
			continue
		}
		ran++
		if r.QueryTime <= 0 {
			t.Errorf("%s/%s: no query time", r.Method, r.Setting)
		}
		if r.PrecK < 0 || r.PrecK > 1 {
			t.Errorf("%s/%s: precision %v", r.Method, r.Setting, r.PrecK)
		}
		if r.AvgErrK < 0 || r.AvgErrK > 1 {
			t.Errorf("%s/%s: error %v", r.Method, r.Setting, r.AvgErrK)
		}
		if r.Memory <= 0 {
			t.Errorf("%s/%s: memory %d", r.Method, r.Setting, r.Memory)
		}
	}
	if ran == 0 {
		t.Fatal("every configuration was excluded")
	}
}

// SimPush at its finest setting should reach high precision on a small
// stand-in — the qualitative anchor of Figures 4-5.
func TestSimPushHighPrecision(t *testing.T) {
	opt := tinyOptions()
	opt.Queries = 3
	opt.TruthSamples = 20000
	opt.Methods = []string{"SimPush"}
	rows, err := RunDataset(opt, gen.Roster[0])
	if err != nil {
		t.Fatal(err)
	}
	finest := rows[len(rows)-1]
	if finest.Excluded {
		t.Fatalf("finest setting excluded: %s", finest.Reason)
	}
	if finest.PrecK < 0.8 {
		t.Fatalf("SimPush finest precision = %v", finest.PrecK)
	}
	if finest.AvgErrK > 0.01 {
		t.Fatalf("SimPush finest avg error = %v", finest.AvgErrK)
	}
}

func TestIndexCapExcludes(t *testing.T) {
	opt := tinyOptions()
	opt.MaxIndexBytes = 1 << 12 // 4 KiB: every READS index exceeds this
	opt.Methods = []string{"READS"}
	rows, err := RunDataset(opt, gen.Roster[0])
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if !r.Excluded {
			t.Fatalf("%s/%s survived a 4 KiB cap", r.Method, r.Setting)
		}
	}
}

func TestTable4(t *testing.T) {
	var buf bytes.Buffer
	if err := Table4(&buf, tinyOptions()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, ds := range gen.Roster {
		if !strings.Contains(out, ds.Name) {
			t.Fatalf("Table 4 missing %s:\n%s", ds.Name, out)
		}
	}
}

func TestTable1(t *testing.T) {
	var buf bytes.Buffer
	opt := tinyOptions()
	opt.Queries = 2
	if err := Table1(&buf, opt); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "SimPush") || !strings.Contains(out, "empirical scaling") {
		t.Fatalf("Table 1 incomplete:\n%s", out)
	}
}

func TestLevelStats(t *testing.T) {
	var buf bytes.Buffer
	opt := tinyOptions()
	if err := LevelStats(&buf, opt, gen.Roster[:2]); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), gen.Roster[0].Name) {
		t.Fatalf("LevelStats output:\n%s", buf.String())
	}
}

func TestAblations(t *testing.T) {
	var buf bytes.Buffer
	opt := tinyOptions()
	if err := Ablations(&buf, opt, gen.Roster[:1]); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, v := range []string{"full", "no-gamma", "hoeffding-walks", "deterministic-L"} {
		if !strings.Contains(out, v) {
			t.Fatalf("ablation output missing %q:\n%s", v, out)
		}
	}
}

func TestFigure7RestrictsMethods(t *testing.T) {
	var buf bytes.Buffer
	opt := tinyOptions()
	opt.Methods = nil // Figure7 overrides
	if err := Figure7(&buf, opt); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, banned := range []string{"READS", "TSF", "SLING", "TopSim"} {
		if strings.Contains(out, banned) {
			t.Fatalf("Figure 7 ran %s:\n%s", banned, out)
		}
	}
	if !strings.Contains(out, "SimPush") {
		t.Fatalf("Figure 7 missing SimPush:\n%s", out)
	}
}

func TestFiguresEmitters(t *testing.T) {
	opt := tinyOptions()
	opt.Methods = []string{"SimPush"}
	ds := []gen.Dataset{gen.Roster[0]}
	for name, fn := range map[string]func() error{
		"fig4": func() error { var b bytes.Buffer; return Figure4(&b, opt, ds) },
		"fig5": func() error { var b bytes.Buffer; return Figure5(&b, opt, ds) },
		"fig6": func() error { var b bytes.Buffer; return Figure6(&b, opt, ds) },
	} {
		if err := fn(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
}

func TestFigures456Combined(t *testing.T) {
	opt := tinyOptions()
	opt.Methods = []string{"SimPush"}
	var buf bytes.Buffer
	if err := Figures456(&buf, opt, []gen.Dataset{gen.Roster[0]}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Figure 4 panel", "Figure 5 panel", "Figure 6 panel", "build times"} {
		if !strings.Contains(out, want) {
			t.Fatalf("combined output missing %q", want)
		}
	}
}

func TestWriteRowsExcluded(t *testing.T) {
	var buf bytes.Buffer
	rows := []Row{
		{Dataset: "d", Method: "m", Setting: "s", Excluded: true, Reason: "index over memory cap"},
		{Dataset: "d", Method: "m", Setting: "s2", AvgErrK: 0.1, QueryTime: time.Millisecond},
	}
	writeRows(&buf, rows, "x", "y",
		func(r Row) string { return "1" }, func(r Row) string { return "2" })
	out := buf.String()
	if !strings.Contains(out, "excluded: index over memory cap") {
		t.Fatalf("excluded row not marked:\n%s", out)
	}
}
