// Package bench is the experiment harness that regenerates every table and
// figure of the SimPush paper's evaluation (§5) on the synthetic dataset
// stand-ins, following the paper's protocol: per-method parameter sweeps,
// uniformly random query nodes, pooled Monte-Carlo ground truth,
// AvgError@50 / Precision@50 / peak-memory metrics, and exclusion of
// configurations that exceed the memory or time budgets.
package bench

import (
	"context"
	"errors"
	"fmt"
	"io"
	"time"

	"github.com/simrank/simpush/internal/engine"
	"github.com/simrank/simpush/internal/eval"
	"github.com/simrank/simpush/internal/gen"
	"github.com/simrank/simpush/internal/graph"
	"github.com/simrank/simpush/internal/limits"
	"github.com/simrank/simpush/internal/rnd"
)

// Options configures a harness run.
type Options struct {
	// Scale shrinks/grows the dataset roster (1.0 = the default stand-in
	// sizes in gen.Roster).
	Scale float64
	// Queries per dataset (the paper uses 100; default 10 to keep full
	// sweeps in commodity time budgets — adjustable via flags).
	Queries int
	// K is the top-k cutoff of the metrics (the paper reports k=50).
	K int
	// TruthSamples is the Monte-Carlo walk-pair count per pooled node.
	TruthSamples int
	// MaxIndexBytes excludes index-based settings whose index exceeds it.
	MaxIndexBytes int64
	// WalkCap bounds per-query walk samples of sampling-based baselines.
	WalkCap int
	// MaxQueryTime excludes a setting after its first query exceeds it.
	MaxQueryTime time.Duration
	// Methods filters the sweep (nil = all seven).
	Methods []string
	// Seed drives query selection and all engines.
	Seed uint64
	// Log receives progress lines (nil = quiet).
	Log io.Writer
}

// Fill applies defaults.
func (o *Options) Fill() {
	if o.Scale == 0 {
		o.Scale = 1.0
	}
	if o.Queries == 0 {
		o.Queries = 10
	}
	if o.K == 0 {
		o.K = 50
	}
	if o.TruthSamples == 0 {
		o.TruthSamples = 200000
	}
	if o.MaxIndexBytes == 0 {
		o.MaxIndexBytes = 4 << 30
	}
	if o.WalkCap == 0 {
		o.WalkCap = 2_000_000
	}
	if o.MaxQueryTime == 0 {
		o.MaxQueryTime = 30 * time.Second
	}
	if o.Seed == 0 {
		o.Seed = 0x51e9a7
	}
	if len(o.Methods) == 0 {
		o.Methods = engine.MethodNames
	}
}

func (o *Options) logf(format string, args ...any) {
	if o.Log != nil {
		fmt.Fprintf(o.Log, format+"\n", args...)
	}
}

// Row is one (dataset, method, setting) measurement — one point of one
// curve in Figures 4-6 (and 7).
type Row struct {
	Dataset  string
	Method   string
	Setting  string
	Rank     int
	Excluded bool
	Reason   string

	BuildTime time.Duration
	QueryTime time.Duration // mean per query
	AvgErrK   float64       // AvgError@K, mean over queries
	PrecK     float64       // Precision@K, mean over queries
	Memory    int64         // graph + index + per-query heap estimate
}

// RunDataset runs the full sweep on one dataset and computes metrics
// against pooled ground truth.
func RunDataset(opt Options, ds gen.Dataset) ([]Row, error) {
	opt.Fill()
	g, err := ds.Generate(opt.Scale)
	if err != nil {
		return nil, fmt.Errorf("bench: generating %s: %w", ds.Name, err)
	}
	opt.logf("# %s: n=%d m=%d", ds.Name, g.N(), g.M())
	queries := PickQueries(g, opt.Queries, opt.Seed)

	caps := engine.Caps{MaxIndexBytes: opt.MaxIndexBytes, WalkCap: opt.WalkCap}
	var cfgs []engine.Config
	for _, m := range opt.Methods {
		sw, err := engine.Sweep(m, caps)
		if err != nil {
			return nil, err
		}
		cfgs = append(cfgs, sw...)
	}

	rows := make([]Row, len(cfgs))
	// scores[i][q] is config i's score vector for query q (nil if excluded).
	scores := make([][][]float64, len(cfgs))
	// Once a setting of a method exceeds the time budget, every finer
	// setting of that method is excluded too (cost is monotone in the
	// precision knob), mirroring the paper's missing curve points.
	timeExcluded := map[string]int{}

	for i, cfg := range cfgs {
		rows[i] = Row{Dataset: ds.Name, Method: cfg.Method, Setting: cfg.Setting, Rank: cfg.Rank}
		row := &rows[i]
		if rank, hit := timeExcluded[cfg.Method]; hit && cfg.Rank > rank {
			row.Excluded = true
			row.Reason = "coarser setting already over time budget"
			opt.logf("  %s/%s excluded: %s", cfg.Method, cfg.Setting, row.Reason)
			continue
		}
		eng, err := cfg.Make(g, opt.Seed+uint64(i)*7919)
		if err != nil {
			row.Excluded = true
			row.Reason = err.Error()
			continue
		}
		t0 := time.Now()
		if err := eng.Build(); err != nil {
			row.Excluded = true
			var tooBig *limits.ErrIndexTooLarge
			if errors.As(err, &tooBig) {
				row.Reason = "index over memory cap"
			} else {
				row.Reason = err.Error()
			}
			opt.logf("  %s/%s excluded: %s", cfg.Method, cfg.Setting, row.Reason)
			continue
		}
		row.BuildTime = time.Since(t0)
		if ts, ok := eng.(limits.TimeoutSettable); ok {
			ts.SetQueryTimeout(opt.MaxQueryTime)
		}

		scores[i] = make([][]float64, len(queries))
		var queryTotal time.Duration
		for q, u := range queries {
			// Enforce the per-query budget both cooperatively (engines
			// implementing TimeoutSettable) and via context deadline.
			qctx, cancel := context.Background(), context.CancelFunc(func() {})
			if opt.MaxQueryTime > 0 {
				qctx, cancel = context.WithTimeout(context.Background(), opt.MaxQueryTime)
			}
			qt0 := time.Now()
			s, err := eng.Query(qctx, u)
			qt := time.Since(qt0)
			cancel()
			if err != nil {
				row.Excluded = true
				if errors.Is(err, limits.ErrQueryTimeout) || errors.Is(err, context.DeadlineExceeded) {
					row.Reason = "query over time budget"
					timeExcluded[cfg.Method] = cfg.Rank
				} else {
					row.Reason = err.Error()
				}
				break
			}
			queryTotal += qt
			scores[i][q] = s
			if q == 0 && qt > opt.MaxQueryTime {
				row.Excluded = true
				row.Reason = fmt.Sprintf("query time %.1fs over budget", qt.Seconds())
				timeExcluded[cfg.Method] = cfg.Rank
				break
			}
		}
		if row.Excluded {
			scores[i] = nil
			opt.logf("  %s/%s excluded: %s", cfg.Method, cfg.Setting, row.Reason)
			continue
		}
		row.QueryTime = queryTotal / time.Duration(len(queries))
		row.Memory = g.MemoryBytes() + eng.IndexBytes()
		opt.logf("  %s/%s: build=%v query=%v", cfg.Method, cfg.Setting, row.BuildTime, row.QueryTime)
	}

	// Pooled ground truth per query (paper §5.1), then metrics per config.
	for q, u := range queries {
		var pool [][]float64
		for i := range cfgs {
			if scores[i] != nil && scores[i][q] != nil {
				pool = append(pool, scores[i][q])
			}
		}
		if len(pool) == 0 {
			continue
		}
		gt := eval.BuildPooledTruth(g, 0.6, u, pool, opt.K, opt.TruthSamples, opt.Seed^uint64(u)<<1)
		for i := range cfgs {
			if scores[i] == nil || scores[i][q] == nil {
				continue
			}
			rows[i].AvgErrK += eval.AvgErrorAtK(gt, scores[i][q])
			rows[i].PrecK += eval.PrecisionAtK(gt, scores[i][q])
		}
		opt.logf("  truth for query %d/%d done", q+1, len(queries))
	}
	for i := range rows {
		if !rows[i].Excluded {
			rows[i].AvgErrK /= float64(len(queries))
			rows[i].PrecK /= float64(len(queries))
		}
	}
	return rows, nil
}

// PickQueries samples query nodes uniformly at random (without
// replacement), matching the paper's query-set generation.
func PickQueries(g *graph.Graph, count int, seed uint64) []int32 {
	r := rnd.New(seed ^ 0xabcd1234)
	n := g.N()
	if int32(count) > n {
		count = int(n)
	}
	seen := make(map[int32]struct{}, count)
	out := make([]int32, 0, count)
	for len(out) < count {
		v := r.Int31n(n)
		if _, dup := seen[v]; dup {
			continue
		}
		seen[v] = struct{}{}
		out = append(out, v)
	}
	return out
}
