package bench

import (
	"context"
	"fmt"
	"io"
	"time"

	"github.com/simrank/simpush/internal/core"
	"github.com/simrank/simpush/internal/gen"
	"github.com/simrank/simpush/internal/probesim"
)

// Table1 reproduces the complexity comparison (paper Table 1) in two
// parts: the analytic table as printed in the paper, and an empirical
// scaling sweep that measures SimPush and ProbeSim query time on
// copying-model web graphs of doubling size at fixed ε, validating the
// asymptotic shapes (SimPush ~ m·log(1/ε)/ε + log(1/δ)/ε²; ProbeSim ~
// n·log(n/δ)/ε² probe work).
func Table1(w io.Writer, opt Options) error {
	opt.Fill()
	fmt.Fprintln(w, "== Table 1: complexity comparison ==")
	fmt.Fprintln(w, "algorithm\tquery_time\tindex_size\tpreprocessing")
	for _, row := range [][4]string{
		{"SimPush", "O(m·log(1/eps)/eps + log(1/delta)/eps^2 + 1/eps^3)", "-", "-"},
		{"TSF", "O(n·log(n/delta)/eps^2)", "O(n·log(n/delta)/eps^2)", "O(n·log(n/delta)/eps^2)"},
		{"READS", "O(n·log(n/delta)/eps^2)", "O(n·log(n/delta)/eps^2)", "O(n·log(n/delta)/eps^2)"},
		{"ProbeSim", "O(n·log(n/delta)/eps^2)", "-", "-"},
		{"SLING", "O(n/eps)", "O(n/eps)", "O(m/eps + n·log(n/delta)/eps^2)"},
		{"PRSim", "O(n·log(n/delta)/eps^2)", "O(min{n/eps, m})", "O(m/eps)"},
	} {
		fmt.Fprintf(w, "%s\t%s\t%s\t%s\n", row[0], row[1], row[2], row[3])
	}

	fmt.Fprintln(w, "\n-- empirical scaling (copying-model web graphs, eps=0.02 / eps_a=0.05) --")
	fmt.Fprintln(w, "n\tm\tsimpush_query_s\tprobesim_query_s")
	sizes := []int32{10000, 20000, 40000, 80000, 160000}
	if opt.Scale < 1 {
		for i := range sizes {
			sizes[i] = int32(float64(sizes[i]) * opt.Scale)
			if sizes[i] < 1000 {
				sizes[i] = 1000
			}
		}
	}
	for _, n := range sizes {
		g, err := gen.CopyingModel(n, 10, 0.3, 0xbeef+uint64(n))
		if err != nil {
			return err
		}
		queries := PickQueries(g, opt.Queries, opt.Seed)

		sp, err := core.New(g, core.Options{Epsilon: 0.02, Seed: opt.Seed})
		if err != nil {
			return err
		}
		spTime := timeQueries(len(queries), func(i int) error {
			_, err := sp.Query(queries[i])
			return err
		})

		pb, err := probesim.New(g, probesim.Params{EpsA: 0.05, Seed: opt.Seed, WalkCap: opt.WalkCap})
		if err != nil {
			return err
		}
		pbTime := timeQueries(len(queries), func(i int) error {
			_, err := pb.Query(context.Background(), queries[i])
			return err
		})

		fmt.Fprintf(w, "%d\t%d\t%.6f\t%.6f\n", g.N(), g.M(), spTime.Seconds(), pbTime.Seconds())
	}
	return nil
}

// timeQueries runs fn count times and returns the mean duration; the
// first error aborts with a zero duration.
func timeQueries(count int, fn func(i int) error) time.Duration {
	t0 := time.Now()
	for i := 0; i < count; i++ {
		if err := fn(i); err != nil {
			return 0
		}
	}
	return time.Since(t0) / time.Duration(count)
}
