package bench

import (
	"fmt"
	"io"
	"time"

	"github.com/simrank/simpush/internal/core"
	"github.com/simrank/simpush/internal/eval"
	"github.com/simrank/simpush/internal/gen"
)

// Ablations quantifies the design choices DESIGN.md calls out:
//
//  1. the last-meeting correction γ (Algorithms 3-4) on vs off — without
//     it, repeated meetings are double counted and error rises;
//  2. Chernoff vs paper-literal Hoeffding sizing of the level-detection
//     walk sample — same accuracy, very different walk counts.
func Ablations(w io.Writer, opt Options, datasets []gen.Dataset) error {
	opt.Fill()
	fmt.Fprintln(w, "== Ablation: gamma correction and level-detection sampling ==")
	fmt.Fprintln(w, "dataset\tvariant\tavg_error@50\tprecision@50\tavg_query_s\twalks")
	variants := []struct {
		name string
		opts core.Options
	}{
		{"full", core.Options{Epsilon: 0.02}},
		{"no-gamma", core.Options{Epsilon: 0.02, DisableGamma: true}},
		{"hoeffding-walks", core.Options{Epsilon: 0.02, LevelDetect: core.LevelDetectHoeffding}},
		{"deterministic-L", core.Options{Epsilon: 0.02, LevelDetect: core.LevelDetectDeterministic}},
	}
	for _, ds := range datasets {
		g, err := ds.Generate(opt.Scale)
		if err != nil {
			return err
		}
		queries := PickQueries(g, opt.Queries, opt.Seed)

		type acc struct {
			scores [][]float64
			total  time.Duration
			walks  int
			errK   float64
			prec   float64
		}
		runs := make([]acc, len(variants))
		for vi, v := range variants {
			o := v.opts
			o.Seed = opt.Seed
			o.MaxWalks = opt.WalkCap
			sp, err := core.New(g, o)
			if err != nil {
				return err
			}
			runs[vi].scores = make([][]float64, len(queries))
			for qi, u := range queries {
				t0 := time.Now()
				res, err := sp.Query(u)
				if err != nil {
					return err
				}
				runs[vi].total += time.Since(t0)
				runs[vi].scores[qi] = res.Scores
				runs[vi].walks = res.Walks
			}
		}
		for qi, u := range queries {
			pool := make([][]float64, len(runs))
			for vi := range runs {
				pool[vi] = runs[vi].scores[qi]
			}
			gt := eval.BuildPooledTruth(g, 0.6, u, pool, opt.K, opt.TruthSamples, opt.Seed^uint64(u))
			for vi := range runs {
				runs[vi].errK += eval.AvgErrorAtK(gt, runs[vi].scores[qi])
				runs[vi].prec += eval.PrecisionAtK(gt, runs[vi].scores[qi])
			}
		}
		q := float64(len(queries))
		for vi, v := range variants {
			r := runs[vi]
			fmt.Fprintf(w, "%s\t%s\t%.6f\t%.4f\t%.6f\t%d\n",
				ds.Name, v.name, r.errK/q, r.prec/q,
				(r.total / time.Duration(len(queries))).Seconds(), r.walks)
		}
	}
	return nil
}
