// Package limits holds resource-cap types shared by the index-based
// engines and the experiment harness.
package limits

import (
	"errors"
	"fmt"
	"time"
)

// Sentinel errors of the query APIs, shared by SimPush core and the
// baseline engines so callers can classify failures with errors.Is
// across every method.
var (
	// ErrNodeOutOfRange reports a query or target node id outside [0, n).
	ErrNodeOutOfRange = errors.New("node out of range")
	// ErrInvalidOptions reports engine options or per-query overrides with
	// out-of-domain values.
	ErrInvalidOptions = errors.New("invalid options")
)

// ErrIndexTooLarge is returned by an engine's Build when the index would
// exceed the configured cap. The harness treats such settings exactly like
// the paper treats out-of-memory configurations: it excludes them from the
// figures.
type ErrIndexTooLarge struct {
	Need, Cap int64
}

func (e *ErrIndexTooLarge) Error() string {
	return fmt.Sprintf("index would need ~%d bytes, cap is %d", e.Need, e.Cap)
}

// ErrQueryTimeout is returned by engines that support cooperative query
// deadlines (SetQueryTimeout) when a query exceeds its budget. The harness
// excludes the configuration, mirroring the paper's per-query time rule
// (configurations over 1000 s are dropped).
var ErrQueryTimeout = fmt.Errorf("query exceeded its time budget")

// TimeoutSettable is implemented by engines whose long query loops check
// a cooperative deadline.
type TimeoutSettable interface {
	SetQueryTimeout(budget time.Duration) // 0 disables
}
