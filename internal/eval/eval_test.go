package eval

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/simrank/simpush/internal/exact"
	"github.com/simrank/simpush/internal/gen"
	"github.com/simrank/simpush/internal/graph"
)

func TestTopK(t *testing.T) {
	scores := []float64{0.1, 0.9, 0.5, 0.9, 0.2}
	got := TopK(scores, 3, -1)
	want := []int32{1, 3, 2} // ties by id
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("TopK = %v, want %v", got, want)
		}
	}
}

func TestTopKExcludes(t *testing.T) {
	scores := []float64{1, 0.5, 0.4}
	got := TopK(scores, 2, 0)
	if got[0] != 1 || got[1] != 2 {
		t.Fatalf("TopK with exclusion = %v", got)
	}
}

func TestTopKShort(t *testing.T) {
	scores := []float64{0.3, 0.1}
	got := TopK(scores, 10, 1)
	if len(got) != 1 || got[0] != 0 {
		t.Fatalf("TopK on short input = %v", got)
	}
}

func TestAvgErrorAtK(t *testing.T) {
	gt := &GroundTruth{
		U:     0,
		TopK:  []int32{1, 2},
		Value: map[int32]float64{1: 0.5, 2: 0.3},
	}
	scores := []float64{1, 0.45, 0.35}
	got := AvgErrorAtK(gt, scores)
	if math.Abs(got-0.05) > 1e-12 {
		t.Fatalf("AvgError = %v, want 0.05", got)
	}
}

func TestPrecisionAtK(t *testing.T) {
	gt := &GroundTruth{
		U:     0,
		TopK:  []int32{1, 2, 3},
		Value: map[int32]float64{1: 0.5, 2: 0.3, 3: 0.2},
	}
	scores := []float64{1, 0.9, 0.8, 0.0, 0.7} // top-3 excluding 0: {1,2,4}
	got := PrecisionAtK(gt, scores)
	if math.Abs(got-2.0/3.0) > 1e-12 {
		t.Fatalf("Precision = %v, want 2/3", got)
	}
}

func TestEmptyGroundTruth(t *testing.T) {
	gt := &GroundTruth{U: 0}
	if AvgErrorAtK(gt, []float64{1}) != 0 {
		t.Fatal("empty AvgError")
	}
	if PrecisionAtK(gt, []float64{1}) != 1 {
		t.Fatal("empty Precision")
	}
}

// Pooled MC ground truth must agree with the exact oracle on a small graph.
func TestBuildPooledTruthMatchesExact(t *testing.T) {
	g, err := gen.CopyingModel(80, 4, 0.3, 3)
	if err != nil {
		t.Fatal(err)
	}
	const c = 0.6
	ex, err := exact.AllPairs(g, exact.Options{C: c})
	if err != nil {
		t.Fatal(err)
	}
	u := int32(5)
	row := ex.Row(u)
	// Use the exact row itself as the single "method" feeding the pool.
	gt := BuildPooledTruth(g, c, u, [][]float64{row}, 10, 80000, 7)
	if len(gt.TopK) == 0 {
		t.Fatal("empty pool")
	}
	for _, v := range gt.TopK {
		if math.Abs(gt.Value[v]-row[v]) > 0.02 {
			t.Fatalf("pooled MC value for %d = %v, exact %v", v, gt.Value[v], row[v])
		}
	}
	// Exact truth variant
	egt := ExactTruth(u, row, 10)
	if len(egt.TopK) != 10 {
		t.Fatalf("exact truth topk = %d", len(egt.TopK))
	}
	if AvgErrorAtK(egt, row) != 0 {
		t.Fatal("exact scores vs exact truth should have zero error")
	}
	if PrecisionAtK(egt, row) != 1 {
		t.Fatal("exact scores vs exact truth should have precision 1")
	}
}

func TestPoolMergesMethods(t *testing.T) {
	g := graph.MustFromPairs([2]int32{0, 1}, [2]int32{0, 2}, [2]int32{0, 3})
	// Two fake methods that disagree on top nodes.
	m1 := []float64{1, 0.9, 0, 0}
	m2 := []float64{1, 0, 0.9, 0}
	gt := BuildPooledTruth(g, 0.6, 0, [][]float64{m1, m2}, 1, 1000, 1)
	if len(gt.Value) < 2 {
		t.Fatalf("pool did not merge methods: %v", gt.Value)
	}
}

func TestMemoryUsage(t *testing.T) {
	m := MemoryUsage{GraphBytes: 10, IndexBytes: 20, HeapBytes: 30}
	if m.Total() != 60 {
		t.Fatal("total wrong")
	}
	if LiveHeap() <= 0 {
		t.Fatal("live heap not measured")
	}
}

// Property: TopK returns exactly min(k, n-1) nodes, sorted by descending
// score, never containing the excluded node.
func TestQuickTopK(t *testing.T) {
	f := func(raw []float64, kRaw uint8, exclRaw uint8) bool {
		if len(raw) == 0 {
			return true
		}
		scores := make([]float64, len(raw))
		for i, v := range raw {
			// map arbitrary floats into a sane score range
			scores[i] = math.Abs(math.Mod(v, 1))
			if math.IsNaN(scores[i]) {
				scores[i] = 0
			}
		}
		k := int(kRaw%16) + 1
		excl := int32(int(exclRaw) % len(scores))
		got := TopK(scores, k, excl)
		want := len(scores) - 1
		if want > k {
			want = k
		}
		if len(got) != want {
			return false
		}
		prev := math.Inf(1)
		for _, v := range got {
			if v == excl {
				return false
			}
			if scores[v] > prev {
				return false
			}
			prev = scores[v]
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: precision is 1 when a method returns the exact truth ranking
// and decreases monotonically as the top of the ranking is corrupted.
func TestPrecisionCorruption(t *testing.T) {
	scores := make([]float64, 50)
	for i := range scores {
		scores[i] = float64(50-i) / 50
	}
	gt := ExactTruth(0, scores, 10)
	if PrecisionAtK(gt, scores) != 1 {
		t.Fatal("self precision")
	}
	corrupted := append([]float64(nil), scores...)
	for i := 1; i <= 5; i++ {
		corrupted[i] = 0 // drop 5 of the true top-10 out of the ranking
	}
	p := PrecisionAtK(gt, corrupted)
	if p != 0.5 {
		t.Fatalf("precision after corruption = %v, want 0.5", p)
	}
}
