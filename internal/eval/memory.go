package eval

import "runtime"

// MemoryUsage describes the memory attributed to one (method, setting,
// dataset) combination in the Figure 6/7 reproduction: the input graph,
// the method's index plus persistent scratch, and the process heap
// observed around the run.
type MemoryUsage struct {
	GraphBytes int64
	IndexBytes int64
	HeapBytes  int64 // live heap after the run (post-GC)
}

// Total is the peak-memory figure the harness reports: graph + index +
// per-query transient heap. It approximates the paper's
// rusage.ru_maxrss measurement at library granularity (Go's GC makes RSS
// itself an unstable measurement for per-configuration attribution).
func (m MemoryUsage) Total() int64 {
	return m.GraphBytes + m.IndexBytes + m.HeapBytes
}

// LiveHeap runs a GC and returns the current live-heap size.
func LiveHeap() int64 {
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return int64(ms.HeapAlloc)
}
