// Package eval implements the evaluation protocol of the SimPush paper
// (§5.1): AvgError@k and Precision@k against pooled Monte-Carlo ground
// truth, plus top-k extraction and memory accounting.
package eval

import (
	"math"
	"sort"

	"github.com/simrank/simpush/internal/graph"
	"github.com/simrank/simpush/internal/mc"
)

// TopK returns the k nodes with the highest scores, excluding `exclude`
// (normally the query node, whose similarity is trivially 1). Ties break
// by node id for determinism. If fewer than k nonzero candidates exist,
// zero-score nodes fill the tail (still excluding `exclude`).
func TopK(scores []float64, k int, exclude int32) []int32 {
	if k < 0 {
		k = 0
	}
	type cand struct {
		v int32
		s float64
	}
	cands := make([]cand, 0, len(scores))
	for v, s := range scores {
		if int32(v) == exclude {
			continue
		}
		cands = append(cands, cand{int32(v), s})
	}
	if k > len(cands) {
		k = len(cands)
	}
	sort.Slice(cands, func(a, b int) bool {
		if cands[a].s != cands[b].s {
			return cands[a].s > cands[b].s
		}
		return cands[a].v < cands[b].v
	})
	out := make([]int32, k)
	for i := 0; i < k; i++ {
		out[i] = cands[i].v
	}
	return out
}

// GroundTruth holds pooled ground-truth values for one query node.
type GroundTruth struct {
	U     int32
	TopK  []int32           // V_k: the true top-k nodes (by pooled MC value)
	Value map[int32]float64 // s(u, v) for every pooled node
}

// BuildPooledTruth implements the paper's pooling protocol: merge the
// top-k nodes returned by every method, deduplicate, estimate s(u, v) for
// each pooled node by Monte Carlo with `samples` walk pairs, and declare
// the k pool nodes with the highest estimates the true top-k set V_k.
func BuildPooledTruth(g *graph.Graph, c float64, u int32, methodScores [][]float64, k, samples int, seed uint64) *GroundTruth {
	poolSet := map[int32]struct{}{}
	for _, scores := range methodScores {
		for _, v := range TopK(scores, k, u) {
			poolSet[v] = struct{}{}
		}
	}
	pool := make([]int32, 0, len(poolSet))
	for v := range poolSet {
		pool = append(pool, v)
	}
	sort.Slice(pool, func(a, b int) bool { return pool[a] < pool[b] })

	est := mc.New(g, c)
	vals := est.Pairs(u, pool, samples, seed)
	gt := &GroundTruth{U: u, Value: make(map[int32]float64, len(pool))}
	for i, v := range pool {
		gt.Value[v] = vals[i]
	}
	idx := make([]int, len(pool))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		if vals[idx[a]] != vals[idx[b]] {
			return vals[idx[a]] > vals[idx[b]]
		}
		return pool[idx[a]] < pool[idx[b]]
	})
	kk := k
	if kk > len(pool) {
		kk = len(pool)
	}
	gt.TopK = make([]int32, kk)
	for i := 0; i < kk; i++ {
		gt.TopK[i] = pool[idx[i]]
	}
	return gt
}

// ExactTruth builds ground truth from an exact single-source row (used on
// small graphs where the power method is feasible).
func ExactTruth(u int32, row []float64, k int) *GroundTruth {
	gt := &GroundTruth{U: u, Value: make(map[int32]float64, len(row))}
	for v, s := range row {
		gt.Value[int32(v)] = s
	}
	gt.TopK = TopK(row, k, u)
	return gt
}

// AvgErrorAtK is the paper's AvgError@k: the mean absolute estimation error
// over the true top-k nodes V_k.
func AvgErrorAtK(gt *GroundTruth, scores []float64) float64 {
	if len(gt.TopK) == 0 {
		return 0
	}
	var sum float64
	for _, v := range gt.TopK {
		sum += math.Abs(scores[v] - gt.Value[v])
	}
	return sum / float64(len(gt.TopK))
}

// PrecisionAtK is the paper's Precision@k: |V_k ∩ V'_k| / k, where V'_k is
// the evaluated method's top-k.
func PrecisionAtK(gt *GroundTruth, scores []float64) float64 {
	k := len(gt.TopK)
	if k == 0 {
		return 1
	}
	mine := TopK(scores, k, gt.U)
	inTrue := make(map[int32]struct{}, k)
	for _, v := range gt.TopK {
		inTrue[v] = struct{}{}
	}
	hits := 0
	for _, v := range mine {
		if _, ok := inTrue[v]; ok {
			hits++
		}
	}
	return float64(hits) / float64(k)
}
