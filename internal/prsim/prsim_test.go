package prsim

import (
	"context"
	"math"
	"testing"

	"github.com/simrank/simpush/internal/exact"
	"github.com/simrank/simpush/internal/gen"
	"github.com/simrank/simpush/internal/graph"
)

const c = 0.6

func built(t testing.TB, g *graph.Graph, p Params) *Engine {
	t.Helper()
	e, err := New(g, p)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Build(); err != nil {
		t.Fatal(err)
	}
	return e
}

func TestValidation(t *testing.T) {
	g := gen.Cycle(4)
	if _, err := New(g, Params{C: 2}); err == nil {
		t.Fatal("c=2 accepted")
	}
	if _, err := New(g, Params{EpsA: 7}); err == nil {
		t.Fatal("eps=7 accepted")
	}
	e, err := New(g, Params{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Query(context.Background(), 0); err == nil {
		t.Fatal("query before build accepted")
	}
}

func TestMetadata(t *testing.T) {
	e := built(t, gen.Cycle(5), Params{EpsA: 0.1, Seed: 1})
	if e.Name() != "PRSim" || !e.Indexed() || e.Setting() == "" {
		t.Fatal("metadata wrong")
	}
	if e.IndexBytes() <= 0 {
		t.Fatal("index bytes missing")
	}
	if e.NumWalks() < 1 {
		t.Fatal("no walks")
	}
	if _, err := e.Query(context.Background(), 99); err == nil {
		t.Fatal("bad node accepted")
	}
}

func TestHubSelection(t *testing.T) {
	// Star: node 0 has the top in-degree and must be the first hub.
	e := built(t, gen.Star(50), Params{EpsA: 0.1, NumHubs: 3, Seed: 2})
	if e.hubs[0] != 0 {
		t.Fatalf("top hub = %d, want 0", e.hubs[0])
	}
	if len(e.hubs) != 3 {
		t.Fatalf("hub count %d", len(e.hubs))
	}
	if e.hubIdx[0] != 0 {
		t.Fatal("hubIdx broken")
	}
}

func TestDefaultHubCount(t *testing.T) {
	g, err := gen.ErdosRenyi(100, 500, 3)
	if err != nil {
		t.Fatal(err)
	}
	e := built(t, g, Params{EpsA: 0.2, Seed: 3})
	if len(e.hubs) != 10 { // ⌈√100⌉
		t.Fatalf("default hubs = %d, want 10", len(e.hubs))
	}
}

func TestSharedParent(t *testing.T) {
	g := graph.MustFromPairs([2]int32{0, 1}, [2]int32{0, 2})
	e := built(t, g, Params{EpsA: 0.02, Seed: 4})
	s, err := e.Query(context.Background(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s[2]-c) > 0.05 {
		t.Fatalf("s(1,2) = %v, want %v", s[2], c)
	}
}

func TestAccuracyVsExact(t *testing.T) {
	g, err := gen.CopyingModel(120, 5, 0.3, 4)
	if err != nil {
		t.Fatal(err)
	}
	ex, err := exact.AllPairs(g, exact.Options{C: c})
	if err != nil {
		t.Fatal(err)
	}
	const epsA = 0.02
	e := built(t, g, Params{EpsA: epsA, Seed: 5})
	for _, u := range []int32{3, 40, 99} {
		s, err := e.Query(context.Background(), u)
		if err != nil {
			t.Fatal(err)
		}
		var worst, sum float64
		for v := int32(0); v < g.N(); v++ {
			if v == u {
				continue
			}
			d := math.Abs(ex.At(u, v) - s[v])
			sum += d
			if d > worst {
				worst = d
			}
		}
		avg := sum / float64(g.N()-1)
		if avg > epsA {
			t.Fatalf("u=%d: avg error %v exceeds %v", u, avg, epsA)
		}
		if worst > 6*epsA {
			t.Fatalf("u=%d: worst error %v too large", u, worst)
		}
	}
}

func TestWalkCap(t *testing.T) {
	g := gen.Cycle(10)
	e, err := New(g, Params{EpsA: 0.005, WalkCap: 123})
	if err != nil {
		t.Fatal(err)
	}
	if e.NumWalks() != 123 {
		t.Fatalf("walk cap ignored: %d", e.NumWalks())
	}
}
