// Package prsim implements PRSim (Wei et al., SIGMOD 2019 [33]), the
// index-based state of the art that SimPush is benchmarked against.
//
// PRSim links SimRank to reverse personalized PageRank: with
// π^(ℓ)(v,w) = (1-√c)·h^(ℓ)(v,w), Eq. 4 of the SimPush paper is exactly
// the SLING decomposition. PRSim's insight is that on power-law graphs
// most of the random-walk mass from any query node concentrates on a small
// set of high in-degree hub nodes, so it precomputes reverse vectors for
// j₀ = √n hubs only and handles the long tail with online backward pushes.
//
// Build:  select j₀ hubs by in-degree; for each hub, backward-push reverse
//
//	hitting lists (threshold ε_a) and estimate η by paired walks.
//
// Query:  sample √c-walks from u to estimate h^(ℓ)(u,w); join hubs against
//
//	the index; for non-hubs run an online backward push whose
//	threshold adapts to the visit frequency (rarely visited nodes
//	get shallow, cheap pushes), and estimate η on the fly.
package prsim

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"
	"time"

	"github.com/simrank/simpush/internal/graph"
	"github.com/simrank/simpush/internal/limits"
	"github.com/simrank/simpush/internal/push"
	"github.com/simrank/simpush/internal/rnd"
	"github.com/simrank/simpush/internal/walk"
)

// Params configures PRSim. EpsA is the error knob swept by the paper
// ({0.5, 0.1, 0.05, 0.01, 0.005}); NumHubs defaults to ⌈√n⌉.
type Params struct {
	C       float64
	EpsA    float64
	Delta   float64
	Seed    uint64
	NumHubs int32 // 0 = ⌈√n⌉ (the paper's default j₀)
	// WalkCap caps the per-query walk sample (0 = no cap).
	WalkCap int
	// EtaSamples caps η sampling per hub at build time; default 5000.
	EtaSamples int
	// EtaOnlineSamples is the paired-walk budget for non-hub η at query
	// time; default 200.
	EtaOnlineSamples int
	// MaxIndexBytes aborts Build with limits.ErrIndexTooLarge (0 = off).
	MaxIndexBytes int64
}

func (p *Params) fill() {
	if p.C == 0 {
		p.C = 0.6
	}
	if p.EpsA == 0 {
		p.EpsA = 0.1
	}
	if p.Delta == 0 {
		p.Delta = 1e-4
	}
	if p.EtaSamples == 0 {
		p.EtaSamples = 5000
	}
	if p.EtaOnlineSamples == 0 {
		p.EtaOnlineSamples = 200
	}
}

type entry struct {
	level int32
	v     int32
	h     float64
}

// Engine is a PRSim engine; Build must run before Query.
type Engine struct {
	g *graph.Graph
	p Params

	maxDepth int
	nWalks   int
	built    bool

	hubIdx  []int32 // node -> hub ordinal, or -1
	hubs    []int32 // hub ordinal -> node
	hubEta  []float64
	hubOff  []int64
	hubList []entry

	walker  *walk.Walker
	etaRng  *walk.Walker
	counter *walk.LevelCounter
	prober  *push.Prober
	timeout time.Duration
}

// SetQueryTimeout arms a cooperative per-query deadline (0 disables);
// a query that exceeds it returns limits.ErrQueryTimeout.
func (e *Engine) SetQueryTimeout(budget time.Duration) { e.timeout = budget }

// New returns an unbuilt PRSim engine.
func New(g *graph.Graph, p Params) (*Engine, error) {
	p.fill()
	if p.C <= 0 || p.C >= 1 {
		return nil, fmt.Errorf("prsim: c must be in (0,1), got %v", p.C)
	}
	if p.EpsA <= 0 || p.EpsA >= 1 {
		return nil, fmt.Errorf("prsim: eps_a must be in (0,1), got %v", p.EpsA)
	}
	e := &Engine{g: g, p: p, maxDepth: push.MaxLevels(p.C, p.EpsA)}
	n := float64(g.N())
	if n < 2 {
		n = 2
	}
	e.nWalks = int(math.Ceil(math.Log(2*n/p.Delta) / (2 * p.EpsA * p.EpsA)))
	if p.WalkCap > 0 && e.nWalks > p.WalkCap {
		e.nWalks = p.WalkCap
	}
	if e.nWalks < 1 {
		e.nWalks = 1
	}
	return e, nil
}

// Name implements engine.Engine.
func (e *Engine) Name() string { return "PRSim" }

// Setting implements engine.Engine.
func (e *Engine) Setting() string { return fmt.Sprintf("eps_a=%g", e.p.EpsA) }

// Indexed implements engine.Engine.
func (e *Engine) Indexed() bool { return true }

// IndexBytes implements engine.Engine.
func (e *Engine) IndexBytes() int64 {
	b := int64(len(e.hubIdx))*4 + int64(len(e.hubs))*4 + int64(len(e.hubEta))*8
	b += int64(len(e.hubOff))*8 + int64(len(e.hubList))*16
	if e.prober != nil {
		b += e.prober.MemoryBytes()
	}
	return b
}

// NumWalks returns the per-query walk sample size.
func (e *Engine) NumWalks() int { return e.nWalks }

// Build selects hubs by in-degree and materializes their reverse lists and
// η values.
func (e *Engine) Build() error {
	n := e.g.N()
	j0 := e.p.NumHubs
	if j0 <= 0 {
		j0 = int32(math.Ceil(math.Sqrt(float64(n))))
	}
	if j0 > n {
		j0 = n
	}
	// top-j0 nodes by in-degree
	order := make([]int32, n)
	for i := range order {
		order[i] = int32(i)
	}
	sort.Slice(order, func(a, b int) bool {
		return e.g.InDeg(order[a]) > e.g.InDeg(order[b])
	})
	e.hubs = make([]int32, j0)
	copy(e.hubs, order[:j0])
	e.hubIdx = make([]int32, n)
	for i := range e.hubIdx {
		e.hubIdx[i] = -1
	}
	for i, h := range e.hubs {
		e.hubIdx[h] = int32(i)
	}

	// η for hubs (paired-walk sampling, parallel).
	e.hubEta = make([]float64, j0)
	etaCnt := e.etaBuildSamples()
	workers := runtime.GOMAXPROCS(0)
	var wg sync.WaitGroup
	var next int32
	var mu sync.Mutex
	lists := make([][]entry, j0)
	var size int64
	var buildErr error
	for k := 0; k < workers; k++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			wlk := walk.NewWalker(e.g, e.p.C, rnd.New(seed))
			pr := push.NewProber(e.g, e.p.C)
			for {
				mu.Lock()
				i := next
				next++
				over := buildErr != nil
				mu.Unlock()
				if i >= j0 || over {
					return
				}
				w := e.hubs[i]
				never := 0
				for s := 0; s < etaCnt; s++ {
					if !pairNeverMeets(wlk, w) {
						never++
					}
				}
				e.hubEta[i] = float64(never) / float64(etaCnt)
				var list []entry
				pr.Push(w, e.maxDepth, e.p.EpsA, nil, func(d int, nodes []int32, vals []float64) {
					for j, v := range nodes {
						if vals[j] >= e.p.EpsA {
							list = append(list, entry{level: int32(d), v: v, h: vals[j]})
						}
					}
				})
				lists[i] = list
				mu.Lock()
				size += int64(len(list)) * 16
				if e.p.MaxIndexBytes > 0 && size > e.p.MaxIndexBytes && buildErr == nil {
					buildErr = &limits.ErrIndexTooLarge{Need: size, Cap: e.p.MaxIndexBytes}
				}
				mu.Unlock()
			}
		}(e.p.Seed + uint64(k)*0xd1342543de82ef95 + 11)
	}
	wg.Wait()
	if buildErr != nil {
		e.hubs, e.hubIdx, e.hubEta, e.hubOff, e.hubList = nil, nil, nil, nil, nil
		return buildErr
	}
	e.hubOff = make([]int64, j0+1)
	total := 0
	for i := int32(0); i < j0; i++ {
		total += len(lists[i])
		e.hubOff[i+1] = int64(total)
	}
	e.hubList = make([]entry, 0, total)
	for i := int32(0); i < j0; i++ {
		e.hubList = append(e.hubList, lists[i]...)
	}

	e.walker = walk.NewWalker(e.g, e.p.C, rnd.New(e.p.Seed^0xabcdef9876543210))
	e.etaRng = walk.NewWalker(e.g, e.p.C, rnd.New(e.p.Seed^0x1234567890abcdef))
	e.counter = walk.NewLevelCounter(n)
	e.prober = push.NewProber(e.g, e.p.C)
	e.built = true
	return nil
}

func (e *Engine) etaBuildSamples() int {
	half := e.p.EpsA / 2
	j0 := float64(len(e.hubs))
	if j0 < 2 {
		j0 = 2
	}
	cnt := int(math.Ceil(math.Log(2*j0/e.p.Delta) / (2 * half * half)))
	if cnt > e.p.EtaSamples {
		cnt = e.p.EtaSamples
	}
	if cnt < 16 {
		cnt = 16
	}
	return cnt
}

func pairNeverMeets(w *walk.Walker, v int32) bool {
	a, b := v, v
	for {
		na, okA := w.Next(a)
		nb, okB := w.Next(b)
		if !okA || !okB {
			return true
		}
		a, b = na, nb
		if a == b {
			return false
		}
	}
}

// Query estimates s(u, ·). Cancellation is checked between walk batches
// of stage 1 and between join batches of stage 2.
func (e *Engine) Query(ctx context.Context, u int32) ([]float64, error) {
	if !e.built {
		return nil, fmt.Errorf("prsim: Query before Build")
	}
	if !e.g.HasNode(u) {
		return nil, fmt.Errorf("prsim: %w: node %d not in [0, %d)", limits.ErrNodeOutOfRange, u, e.g.N())
	}
	n := e.g.N()
	scores := make([]float64, n)
	var deadline time.Time
	if e.timeout > 0 {
		deadline = time.Now().Add(e.timeout)
	}

	// Stage 1: estimate h^(ℓ)(u, w) by walk aggregation.
	e.counter.Reset()
	for i := 0; i < e.nWalks; i++ {
		if i&1023 == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			if e.timeout > 0 && time.Now().After(deadline) {
				return nil, limits.ErrQueryTimeout
			}
		}
		v := u
		for step := 1; step <= e.maxDepth; step++ {
			nv, ok := e.walker.Next(v)
			if !ok {
				break
			}
			v = nv
			e.counter.Add(step, v)
		}
	}

	// Stage 2: join each visited (ℓ, w) — hubs via the index, the tail via
	// adaptive online pushes.
	// Per-query η memo over the one snapshot this query is pinned to; it
	// dies with the query, so it can never serve a value across epochs.
	etaCache := map[int32]float64{} //lint:allow epochkey per-query memo on one pinned snapshot, freed at query end

	invWalks := 1 / float64(e.nWalks)
	// expected number of meeting levels: √c/(1-√c)
	levelMass := math.Sqrt(e.p.C) / (1 - math.Sqrt(e.p.C))
	var timedOut bool
	var ctxErr error
	joined := 0
	for l := 1; l < e.counter.MaxLevels(); l++ {
		if timedOut || ctxErr != nil {
			break
		}
		e.counter.ForEach(l, func(w int32, cnt int32) {
			if timedOut || ctxErr != nil {
				return
			}
			joined++
			if joined&63 == 0 {
				if err := ctx.Err(); err != nil {
					ctxErr = err
					return
				}
				if e.timeout > 0 && time.Now().After(deadline) {
					timedOut = true
					return
				}
			}
			pHat := float64(cnt) * invWalks
			if pHat <= 0 {
				return
			}
			if hi := e.hubIdx[w]; hi >= 0 {
				factor := pHat * e.hubEta[hi]
				for _, ent := range e.hubList[e.hubOff[hi]:e.hubOff[hi+1]] {
					if ent.level == int32(l) {
						scores[ent.v] += factor * ent.h
					}
				}
				return
			}
			// Non-hub: adaptive threshold keeps total tail error ≤ ~ε_a.
			theta := e.p.EpsA / (pHat * levelMass)
			if theta >= 1 {
				return // contribution provably below ε_a
			}
			eta, ok := etaCache[w]
			if !ok {
				never := 0
				for s := 0; s < e.p.EtaOnlineSamples; s++ {
					if pairNeverMeets(e.etaRng, w) {
						never++
					}
				}
				eta = float64(never) / float64(e.p.EtaOnlineSamples)
				etaCache[w] = eta
			}
			factor := pHat * eta
			e.prober.Push(w, l, theta, nil, func(d int, nodes []int32, vals []float64) {
				if d != l {
					return
				}
				for i, v := range nodes {
					scores[v] += factor * vals[i]
				}
			})
		})
	}
	if ctxErr != nil {
		return nil, ctxErr
	}
	if timedOut {
		return nil, limits.ErrQueryTimeout
	}
	scores[u] = 1
	return scores, nil
}
