package probesim

import (
	"context"
	"errors"
	"math"
	"testing"
	"time"

	"github.com/simrank/simpush/internal/limits"

	"github.com/simrank/simpush/internal/exact"
	"github.com/simrank/simpush/internal/gen"
	"github.com/simrank/simpush/internal/graph"
)

const c = 0.6

func TestParamValidation(t *testing.T) {
	g := gen.Cycle(4)
	if _, err := New(g, Params{C: 1.2}); err == nil {
		t.Fatal("c=1.2 accepted")
	}
	if _, err := New(g, Params{EpsA: 1.5}); err == nil {
		t.Fatal("eps=1.5 accepted")
	}
}

func TestInterfaceMetadata(t *testing.T) {
	g := gen.Cycle(4)
	e, err := New(g, Params{EpsA: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if e.Name() != "ProbeSim" || e.Indexed() {
		t.Fatal("metadata wrong")
	}
	if e.Setting() == "" || e.IndexBytes() <= 0 {
		t.Fatal("setting/memory missing")
	}
	if err := e.Build(); err != nil {
		t.Fatal(err)
	}
	if e.NumWalks() < 1 {
		t.Fatal("no walks")
	}
}

func TestQueryValidation(t *testing.T) {
	g := gen.Cycle(4)
	e, err := New(g, Params{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Query(context.Background(), 99); err == nil {
		t.Fatal("bad node accepted")
	}
}

func TestSelfScore(t *testing.T) {
	g, err := gen.ErdosRenyi(50, 300, 1)
	if err != nil {
		t.Fatal(err)
	}
	e, err := New(g, Params{EpsA: 0.5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	s, err := e.Query(context.Background(), 7)
	if err != nil {
		t.Fatal(err)
	}
	if s[7] != 1 {
		t.Fatal("self score != 1")
	}
}

func TestCycleZero(t *testing.T) {
	g := gen.Cycle(10)
	e, err := New(g, Params{EpsA: 0.1, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	s, err := e.Query(context.Background(), 0)
	if err != nil {
		t.Fatal(err)
	}
	for v := 1; v < 10; v++ {
		if s[v] != 0 {
			t.Fatalf("cycle s(0,%d) = %v", v, s[v])
		}
	}
}

func TestSharedParent(t *testing.T) {
	g := graph.MustFromPairs([2]int32{0, 1}, [2]int32{0, 2})
	e, err := New(g, Params{EpsA: 0.05, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	s, err := e.Query(context.Background(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s[2]-c) > 0.05 {
		t.Fatalf("s(1,2) = %v, want %v", s[2], c)
	}
}

func TestAccuracyVsExact(t *testing.T) {
	g, err := gen.CopyingModel(120, 5, 0.3, 4)
	if err != nil {
		t.Fatal(err)
	}
	ex, err := exact.AllPairs(g, exact.Options{C: c})
	if err != nil {
		t.Fatal(err)
	}
	const epsA = 0.05
	e, err := New(g, Params{EpsA: epsA, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	for _, u := range []int32{3, 40, 99} {
		s, err := e.Query(context.Background(), u)
		if err != nil {
			t.Fatal(err)
		}
		worst := 0.0
		for v := int32(0); v < g.N(); v++ {
			if v == u {
				continue
			}
			if d := math.Abs(ex.At(u, v) - s[v]); d > worst {
				worst = d
			}
		}
		// εa plus slack for the probe pruning bias and sampling noise.
		if worst > epsA+0.02 {
			t.Fatalf("u=%d worst error %v exceeds %v", u, worst, epsA)
		}
	}
}

func TestWalkCap(t *testing.T) {
	g := gen.Cycle(10)
	e, err := New(g, Params{EpsA: 0.005, WalkCap: 100})
	if err != nil {
		t.Fatal(err)
	}
	if e.NumWalks() != 100 {
		t.Fatalf("walk cap ignored: %d", e.NumWalks())
	}
}

func TestFinerEpsMoreWalks(t *testing.T) {
	g := gen.Cycle(10)
	a, _ := New(g, Params{EpsA: 0.1})
	b, _ := New(g, Params{EpsA: 0.01})
	if b.NumWalks() <= a.NumWalks() {
		t.Fatalf("finer eps should need more walks: %d vs %d", b.NumWalks(), a.NumWalks())
	}
}

func BenchmarkQuery10k(b *testing.B) {
	g, err := gen.CopyingModel(10000, 8, 0.3, 1)
	if err != nil {
		b.Fatal(err)
	}
	e, err := New(g, Params{EpsA: 0.1, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Query(context.Background(), int32(i)%g.N()); err != nil {
			b.Fatal(err)
		}
	}
}

func TestQueryTimeout(t *testing.T) {
	g, err := gen.CopyingModel(3000, 8, 0.3, 21)
	if err != nil {
		t.Fatal(err)
	}
	e, err := New(g, Params{EpsA: 0.005, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	e.SetQueryTimeout(time.Millisecond)
	if _, err := e.Query(context.Background(), 5); !errors.Is(err, limits.ErrQueryTimeout) {
		t.Fatalf("expected timeout, got %v", err)
	}
	// disabling the budget makes the query run again
	e.SetQueryTimeout(0)
	if _, err := e.Query(context.Background(), 5); err != nil {
		t.Fatal(err)
	}
}
