// Package probesim implements ProbeSim (Liu et al., PVLDB 2017 [21]), the
// state-of-the-art index-free baseline of the SimPush paper.
//
// For a query u, ProbeSim samples n_r √c-walks from u. For each walk
// W = (w₁, …, w_t) and each step ℓ it runs a probe: a reverse push from
// w_ℓ that computes, for every v, the probability that a √c-walk from v
// reaches w_ℓ at step ℓ without coinciding with W at any earlier step
// (the first-meeting exclusion). Averaging probe values over walks yields
// an unbiased estimate of s(u, v) = Σ_ℓ Σ_w f^(ℓ)(u, v, w) (Eq. 5).
//
// The probe cost — one bounded reverse push per walk step — is what makes
// ProbeSim an order of magnitude slower than SimPush at equal accuracy.
package probesim

import (
	"context"
	"fmt"
	"math"
	"time"

	"github.com/simrank/simpush/internal/graph"
	"github.com/simrank/simpush/internal/limits"
	"github.com/simrank/simpush/internal/push"
	"github.com/simrank/simpush/internal/rnd"
	"github.com/simrank/simpush/internal/walk"
)

// Params configures ProbeSim. EpsA is the absolute error parameter ε_a
// swept in the paper's experiments ({0.5, 0.1, 0.05, 0.01, 0.005}).
type Params struct {
	C     float64 // decay factor; default 0.6
	EpsA  float64 // absolute error target; default 0.1
	Delta float64 // failure probability; default 1e-4
	Seed  uint64
	// WalkCap optionally caps the number of sampled walks per query
	// (0 = no cap). Capping voids the accuracy guarantee.
	WalkCap int
	// PruneFraction scales the per-layer probe pruning threshold relative
	// to ε_a; the released ProbeSim implementation prunes similarly.
	// Default 0.25.
	PruneFraction float64
}

func (p *Params) fill() {
	if p.C == 0 {
		p.C = 0.6
	}
	if p.EpsA == 0 {
		p.EpsA = 0.1
	}
	if p.Delta == 0 {
		p.Delta = 1e-4
	}
	if p.PruneFraction == 0 {
		p.PruneFraction = 0.25
	}
}

// Engine is a ProbeSim query engine (index-free).
type Engine struct {
	g      *graph.Graph
	p      Params
	walker *walk.Walker
	prober *push.Prober

	nWalks    int
	maxDepth  int
	threshold float64
	timeout   time.Duration
}

// SetQueryTimeout arms a cooperative per-query deadline (0 disables);
// a query that exceeds it returns limits.ErrQueryTimeout.
func (e *Engine) SetQueryTimeout(budget time.Duration) { e.timeout = budget }

// New returns a ProbeSim engine for g.
func New(g *graph.Graph, p Params) (*Engine, error) {
	p.fill()
	if p.C <= 0 || p.C >= 1 {
		return nil, fmt.Errorf("probesim: c must be in (0,1), got %v", p.C)
	}
	if p.EpsA <= 0 || p.EpsA >= 1 {
		return nil, fmt.Errorf("probesim: eps_a must be in (0,1), got %v", p.EpsA)
	}
	e := &Engine{
		g:      g,
		p:      p,
		walker: walk.NewWalker(g, p.C, rnd.New(p.Seed^0x9ec7a1b3c5d7e9f1)),
		prober: push.NewProber(g, p.C),
	}
	// Hoeffding over per-walk probe contributions, union bound over n:
	// n_r = ln(2n/δ)/(2·ε_a²).
	n := float64(g.N())
	if n < 2 {
		n = 2
	}
	e.nWalks = int(math.Ceil(math.Log(2*n/p.Delta) / (2 * p.EpsA * p.EpsA)))
	if e.nWalks < 1 {
		e.nWalks = 1
	}
	if p.WalkCap > 0 && e.nWalks > p.WalkCap {
		e.nWalks = p.WalkCap
	}
	e.maxDepth = push.MaxLevels(p.C, p.EpsA)
	e.threshold = p.EpsA * p.PruneFraction
	return e, nil
}

// Name implements engine.Engine.
func (e *Engine) Name() string { return "ProbeSim" }

// Setting implements engine.Engine.
func (e *Engine) Setting() string { return fmt.Sprintf("eps_a=%g", e.p.EpsA) }

// Indexed implements engine.Engine: ProbeSim is index-free.
func (e *Engine) Indexed() bool { return false }

// Build implements engine.Engine (no preprocessing).
func (e *Engine) Build() error { return nil }

// IndexBytes implements engine.Engine.
func (e *Engine) IndexBytes() int64 { return e.prober.MemoryBytes() }

// NumWalks returns the per-query walk sample size.
func (e *Engine) NumWalks() int { return e.nWalks }

// Query estimates s(u, ·). Cancellation is checked between walk probes.
func (e *Engine) Query(ctx context.Context, u int32) ([]float64, error) {
	if !e.g.HasNode(u) {
		return nil, fmt.Errorf("probesim: %w: node %d not in [0, %d)", limits.ErrNodeOutOfRange, u, e.g.N())
	}
	var deadline time.Time
	if e.timeout > 0 {
		deadline = time.Now().Add(e.timeout)
	}
	scores := make([]float64, e.g.N())
	inv := 1 / float64(e.nWalks)
	for i := 0; i < e.nWalks; i++ {
		if i&255 == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			if e.timeout > 0 && time.Now().After(deadline) {
				return nil, limits.ErrQueryTimeout
			}
		}
		w := e.walker.SampleTruncated(u, e.maxDepth)
		e.probeWalk(u, w, inv, scores)
	}
	scores[u] = 1
	return scores, nil
}

// probeWalk probes every step of one sampled walk. steps[ℓ-1] is the node
// at step ℓ. For the probe of step ℓ, reverse layer d corresponds to
// forward step ℓ-d, so the exclusion at layer d removes the walk's own
// node w_{ℓ-d} (for 1 ≤ d ≤ ℓ-1) and the query node u at layer ℓ
// (a walk from v=u is the trivial pair, handled by scores[u]=1).
func (e *Engine) probeWalk(u int32, steps []int32, weight float64, scores []float64) {
	for l := 1; l <= len(steps); l++ {
		target := steps[l-1]
		exclude := func(d int) int32 {
			if d == l {
				return u
			}
			return steps[l-d-1]
		}
		e.prober.Push(target, l, e.threshold, exclude, func(d int, nodes []int32, vals []float64) {
			if d != l {
				return
			}
			for i, v := range nodes {
				scores[v] += weight * vals[i]
			}
		})
	}
}
