package graph

import (
	"bytes"
	"sort"
	"strings"
	"testing"
	"testing/quick"

	"github.com/simrank/simpush/internal/rnd"
)

func TestEmptyGraph(t *testing.T) {
	g, err := NewBuilder(BuildOptions{}).Build()
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 0 || g.M() != 0 {
		t.Fatalf("empty graph has n=%d m=%d", g.N(), g.M())
	}
	if !ComputeStats(g).Symmetric {
		t.Fatal("empty graph should be symmetric")
	}
}

func TestSingleNode(t *testing.T) {
	b := NewBuilder(BuildOptions{})
	b.SetN(1)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 1 || g.M() != 0 {
		t.Fatalf("got n=%d m=%d", g.N(), g.M())
	}
	if g.InDeg(0) != 0 || g.OutDeg(0) != 0 {
		t.Fatal("isolated node has edges")
	}
}

func TestBasicAdjacency(t *testing.T) {
	g := MustFromPairs([2]int32{0, 1}, [2]int32{0, 2}, [2]int32{1, 2}, [2]int32{2, 0})
	if g.N() != 3 || g.M() != 4 {
		t.Fatalf("got n=%d m=%d", g.N(), g.M())
	}
	wantOut := map[int32][]int32{0: {1, 2}, 1: {2}, 2: {0}}
	wantIn := map[int32][]int32{0: {2}, 1: {0}, 2: {0, 1}}
	for v := int32(0); v < 3; v++ {
		if got := sorted(g.Out(v)); !equal(got, wantOut[v]) {
			t.Errorf("Out(%d) = %v, want %v", v, got, wantOut[v])
		}
		if got := sorted(g.In(v)); !equal(got, wantIn[v]) {
			t.Errorf("In(%d) = %v, want %v", v, got, wantIn[v])
		}
	}
}

func TestUndirectedSymmetrization(t *testing.T) {
	b := NewBuilder(BuildOptions{Undirected: true})
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if g.M() != 4 {
		t.Fatalf("undirected m = %d, want 4", g.M())
	}
	if !ComputeStats(g).Symmetric {
		t.Fatal("symmetrized graph not detected as symmetric")
	}
}

func TestDropSelfLoops(t *testing.T) {
	b := NewBuilder(BuildOptions{DropSelfLoops: true})
	b.AddEdge(0, 0)
	b.AddEdge(0, 1)
	b.AddEdge(1, 1)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if g.M() != 1 {
		t.Fatalf("m = %d after self-loop removal, want 1", g.M())
	}
}

func TestDedup(t *testing.T) {
	b := NewBuilder(BuildOptions{Dedup: true})
	for i := 0; i < 5; i++ {
		b.AddEdge(0, 1)
	}
	b.AddEdge(1, 0)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if g.M() != 2 {
		t.Fatalf("m = %d after dedup, want 2", g.M())
	}
}

func TestNegativeIDRejected(t *testing.T) {
	b := NewBuilder(BuildOptions{})
	b.AddEdge(-1, 2)
	if _, err := b.Build(); err == nil {
		t.Fatal("negative id accepted")
	}
}

func TestFromEdgeListMismatch(t *testing.T) {
	if _, err := FromEdgeList([]int32{1}, []int32{}, BuildOptions{}); err == nil {
		t.Fatal("mismatched slices accepted")
	}
}

func TestTranspose(t *testing.T) {
	g := MustFromPairs([2]int32{0, 1}, [2]int32{1, 2}, [2]int32{2, 0}, [2]int32{0, 2})
	tr := g.Transpose()
	if tr.M() != g.M() || tr.N() != g.N() {
		t.Fatal("transpose changed size")
	}
	for v := int32(0); v < g.N(); v++ {
		if !equal(sorted(g.Out(v)), sorted(tr.In(v))) {
			t.Fatalf("transpose Out/In mismatch at %d", v)
		}
		if !equal(sorted(g.In(v)), sorted(tr.Out(v))) {
			t.Fatalf("transpose In/Out mismatch at %d", v)
		}
	}
}

// Property: for random edge sets, degree sums equal m and CSR round-trips
// the multiset of edges.
func TestCSRInvariants(t *testing.T) {
	src := rnd.New(12345)
	f := func(seed uint16) bool {
		r := rnd.New(uint64(seed) ^ src.Uint64())
		n := int32(r.Intn(40) + 1)
		m := r.Intn(200)
		type edge struct{ f, t int32 }
		want := map[edge]int{}
		b := NewBuilder(BuildOptions{})
		b.SetN(n)
		for i := 0; i < m; i++ {
			e := edge{r.Int31n(n), r.Int31n(n)}
			want[e]++
			b.AddEdge(e.f, e.t)
		}
		g, err := b.Build()
		if err != nil {
			return false
		}
		if g.M() != int64(m) {
			return false
		}
		var sumIn, sumOut int64
		for v := int32(0); v < g.N(); v++ {
			sumIn += int64(g.InDeg(v))
			sumOut += int64(g.OutDeg(v))
		}
		if sumIn != int64(m) || sumOut != int64(m) {
			return false
		}
		got := map[edge]int{}
		g.Edges(func(from, to int32) { got[edge{from, to}]++ })
		if len(got) != len(want) {
			return false
		}
		for e, c := range want {
			if got[e] != c {
				return false
			}
		}
		// In-adjacency must be consistent with out-adjacency.
		gotIn := map[edge]int{}
		for v := int32(0); v < g.N(); v++ {
			for _, w := range g.In(v) {
				gotIn[edge{w, v}]++
			}
		}
		for e, c := range want {
			if gotIn[e] != c {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestEdgeListRoundTrip(t *testing.T) {
	g := MustFromPairs([2]int32{0, 1}, [2]int32{3, 2}, [2]int32{2, 2}, [2]int32{1, 0})
	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadEdgeList(&buf, BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if g2.N() != g.N() || g2.M() != g.M() {
		t.Fatalf("round trip changed size: %v vs %v", g2, g)
	}
}

func TestEdgeListComments(t *testing.T) {
	in := "# comment\n% another\n\n0 1\n1 2\n"
	g, err := ReadEdgeList(strings.NewReader(in), BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if g.M() != 2 {
		t.Fatalf("m = %d, want 2", g.M())
	}
}

func TestEdgeListNoTrailingNewline(t *testing.T) {
	g, err := ReadEdgeList(strings.NewReader("0 1\n5 3"), BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if g.M() != 2 || g.N() != 6 {
		t.Fatalf("got %v", g)
	}
}

func TestEdgeListMalformed(t *testing.T) {
	cases := []string{
		"0\n",
		"a b\n",
		"0 b\n",
		"1 2 garbage\n",
		"99999999999999999999 1\n",
	}
	for _, in := range cases {
		if _, err := ReadEdgeList(strings.NewReader(in), BuildOptions{}); err == nil {
			t.Errorf("input %q accepted", in)
		}
	}
}

func TestEdgeListTrailingWeightTolerated(t *testing.T) {
	g, err := ReadEdgeList(strings.NewReader("0 1 7\n"), BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if g.M() != 1 {
		t.Fatalf("m = %d", g.M())
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	r := rnd.New(777)
	b := NewBuilder(BuildOptions{})
	b.SetN(100)
	for i := 0; i < 500; i++ {
		b.AddEdge(r.Int31n(100), r.Int31n(100))
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteBinary(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.N() != g.N() || g2.M() != g.M() {
		t.Fatal("binary round trip changed size")
	}
	for v := int32(0); v < g.N(); v++ {
		if !equal(g.Out(v), g2.Out(v)) || !equal(g.In(v), g2.In(v)) {
			t.Fatalf("adjacency mismatch at %d", v)
		}
	}
}

func TestBinaryBadMagic(t *testing.T) {
	if _, err := ReadBinary(bytes.NewReader([]byte("NOTAGRAPH"))); err == nil {
		t.Fatal("bad magic accepted")
	}
}

func TestBinaryTruncated(t *testing.T) {
	g := MustFromPairs([2]int32{0, 1})
	var buf bytes.Buffer
	if err := WriteBinary(&buf, g); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	if _, err := ReadBinary(bytes.NewReader(raw[:len(raw)-3])); err == nil {
		t.Fatal("truncated stream accepted")
	}
}

func TestStats(t *testing.T) {
	// Star: 0 <- {1..5}
	b := NewBuilder(BuildOptions{})
	for i := int32(1); i <= 5; i++ {
		b.AddEdge(i, 0)
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	s := ComputeStats(g)
	if s.MaxInDeg != 5 {
		t.Fatalf("MaxInDeg = %d", s.MaxInDeg)
	}
	if s.DanglingIn != 5 {
		t.Fatalf("DanglingIn = %d", s.DanglingIn)
	}
	if s.DanglingOut != 1 {
		t.Fatalf("DanglingOut = %d", s.DanglingOut)
	}
	if s.Symmetric {
		t.Fatal("star marked symmetric")
	}
	if s.String() == "" {
		t.Fatal("empty stats string")
	}
}

func TestMemoryBytesPositive(t *testing.T) {
	g := MustFromPairs([2]int32{0, 1})
	if g.MemoryBytes() <= 0 {
		t.Fatal("non-positive memory estimate")
	}
}

func sorted(s []int32) []int32 {
	c := make([]int32, len(s))
	copy(c, s)
	sort.Slice(c, func(i, j int) bool { return c[i] < c[j] })
	return c
}

func equal(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func BenchmarkBuild(b *testing.B) {
	r := rnd.New(1)
	const n, m = 10000, 100000
	froms := make([]int32, m)
	tos := make([]int32, m)
	for i := range froms {
		froms[i] = r.Int31n(n)
		tos[i] = r.Int31n(n)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := FromEdgeList(froms, tos, BuildOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}
