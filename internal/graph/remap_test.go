package graph

import (
	"strings"
	"testing"
)

func TestRemappedLoad(t *testing.T) {
	in := "# sparse ids\n1000000000000 5\n5 7\n7 1000000000000\n"
	g, remap, err := ReadEdgeListRemapped(strings.NewReader(in), BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 3 || g.M() != 3 {
		t.Fatalf("got %v", g)
	}
	if remap.Len() != 3 {
		t.Fatalf("remap len %d", remap.Len())
	}
	// first-seen order: 1000000000000 -> 0, 5 -> 1, 7 -> 2
	if remap.External(0) != 1000000000000 || remap.External(1) != 5 || remap.External(2) != 7 {
		t.Fatalf("external ids wrong: %d %d %d", remap.External(0), remap.External(1), remap.External(2))
	}
	v, ok := remap.Internal(7)
	if !ok || v != 2 {
		t.Fatalf("Internal(7) = %d,%v", v, ok)
	}
	if _, ok := remap.Internal(12345); ok {
		t.Fatal("phantom internal id")
	}
	// adjacency respects the mapping: 5 -> 7 becomes 1 -> 2
	if out := g.Out(1); len(out) != 1 || out[0] != 2 {
		t.Fatalf("Out(1) = %v", out)
	}
}

func TestRemappedMalformed(t *testing.T) {
	for _, in := range []string{"abc def\n", "1\n", "1 x\n"} {
		if _, _, err := ReadEdgeListRemapped(strings.NewReader(in), BuildOptions{}); err == nil {
			t.Errorf("input %q accepted", in)
		}
	}
}

func TestRemappedUndirected(t *testing.T) {
	g, _, err := ReadEdgeListRemapped(strings.NewReader("9 4\n"), BuildOptions{Undirected: true})
	if err != nil {
		t.Fatal(err)
	}
	if g.M() != 2 {
		t.Fatalf("m = %d", g.M())
	}
}
