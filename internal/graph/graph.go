// Package graph provides the directed-graph substrate shared by SimPush and
// all baseline SimRank algorithms.
//
// Graphs are stored in compressed sparse row (CSR) form twice: once over
// out-edges and once over in-edges. SimRank computations walk in-edges
// (a √c-walk jumps to a uniformly random in-neighbor), while reverse pushes
// follow out-edges, so both directions must be O(1)-indexable.
//
// Node identifiers are dense int32 values in [0, N()). Construction goes
// through Builder, which accepts arbitrary edge streams and performs
// optional normalization (self-loop removal, deduplication, undirected
// symmetrization).
package graph

import "fmt"

// Graph is an immutable directed graph in dual-CSR form.
//
// The zero value is an empty graph. Concurrent readers are safe; the
// structure is never mutated after construction.
type Graph struct {
	n int32

	// CSR over out-edges: outAdj[outOff[v]:outOff[v+1]] lists v's out-neighbors.
	outOff []int64
	outAdj []int32

	// CSR over in-edges: inAdj[inOff[v]:inOff[v+1]] lists v's in-neighbors.
	inOff []int64
	inAdj []int32

	// invInDeg[v] = 1/d_I(v), or 0 for nodes with no in-edges. Both push
	// stages divide by the in-degree once per edge; precomputing the
	// reciprocal turns those divisions into multiplications.
	invInDeg []float64
}

// N returns the number of nodes.
func (g *Graph) N() int32 {
	return g.n
}

// M returns the number of directed edges.
func (g *Graph) M() int64 {
	return int64(len(g.outAdj))
}

// OutDeg returns the out-degree of v.
func (g *Graph) OutDeg(v int32) int32 {
	return int32(g.outOff[v+1] - g.outOff[v])
}

// InDeg returns the in-degree of v.
func (g *Graph) InDeg(v int32) int32 {
	return int32(g.inOff[v+1] - g.inOff[v])
}

// Out returns v's out-neighbors as a shared slice. Callers must not modify it.
func (g *Graph) Out(v int32) []int32 {
	return g.outAdj[g.outOff[v]:g.outOff[v+1]]
}

// In returns v's in-neighbors as a shared slice. Callers must not modify it.
func (g *Graph) In(v int32) []int32 {
	return g.inAdj[g.inOff[v]:g.inOff[v+1]]
}

// InvInDeg returns 1/d_I(v), or 0 when v has no in-edges.
func (g *Graph) InvInDeg(v int32) float64 {
	return g.invInDeg[v]
}

// InvInDegs returns the full reciprocal in-degree table as a shared slice
// (entry v is 1/d_I(v), 0 for dangling-in nodes). Callers must not modify
// it; it exists so per-edge inner loops can hoist the bounds check.
func (g *Graph) InvInDegs() []float64 {
	return g.invInDeg
}

// buildInvInDeg fills the reciprocal in-degree table from the in-CSR.
// Every constructor must call it once the offsets are final.
func (g *Graph) buildInvInDeg() {
	g.invInDeg = make([]float64, g.n)
	for v := int32(0); v < g.n; v++ {
		if d := g.inOff[v+1] - g.inOff[v]; d > 0 {
			g.invInDeg[v] = 1 / float64(d)
		}
	}
}

// GraphSnapshot returns the graph itself at epoch 0, implementing the
// root package's GraphSource interface: an immutable Graph is a source
// that never changes, so every snapshot is the same committed state.
func (g *Graph) GraphSnapshot() (*Graph, uint64, error) {
	return g, 0, nil
}

// HasNode reports whether v is a valid node identifier.
func (g *Graph) HasNode(v int32) bool {
	return v >= 0 && v < g.n
}

// MemoryBytes returns the in-memory footprint of the CSR arrays and the
// reciprocal in-degree table.
func (g *Graph) MemoryBytes() int64 {
	return int64(len(g.outOff))*8 + int64(len(g.inOff))*8 +
		int64(len(g.outAdj))*4 + int64(len(g.inAdj))*4 +
		int64(len(g.invInDeg))*8
}

// String summarizes the graph for diagnostics.
func (g *Graph) String() string {
	return fmt.Sprintf("graph{n=%d m=%d}", g.n, g.M())
}

// Transpose returns a new Graph with every edge reversed. The CSR arrays
// are reused with the roles of the in- and out-directions swapped; only
// the O(n) reciprocal in-degree table is rebuilt.
func (g *Graph) Transpose() *Graph {
	t := &Graph{
		n:      g.n,
		outOff: g.inOff,
		outAdj: g.inAdj,
		inOff:  g.outOff,
		inAdj:  g.outAdj,
	}
	t.buildInvInDeg()
	return t
}

// Edges invokes fn for every directed edge (from, to). Iteration is in
// CSR order: sorted by source, then by insertion order of targets.
func (g *Graph) Edges(fn func(from, to int32)) {
	for v := int32(0); v < g.n; v++ {
		for _, w := range g.Out(v) {
			fn(v, w)
		}
	}
}
