package graph

import "sort"

// EpochDelta describes one committed epoch advance of a Dynamic graph:
// which epoch was superseded, which epoch the mutations committed at, and
// a conservative over-approximation of the nodes whose single-source
// SimRank results can differ between the two states.
//
// The affected set is what lets a serving cache survive mutations: a
// cached single-source result whose source node is outside Affected is
// bit-identical to a fresh computation at ToEpoch (for the same seed and
// options), because SimPush never reads a mutated adjacency list,
// reciprocal in-degree, or walk transition while answering it — so the
// entry can be re-keyed to the new epoch instead of abandoned.
type EpochDelta struct {
	// FromEpoch is the superseded epoch (0 when nothing was ever
	// committed before this batch).
	FromEpoch uint64
	// ToEpoch is the epoch the batch committed at.
	ToEpoch uint64
	// Affected lists the affected nodes, sorted ascending, deduplicated.
	// Only meaningful when Total is false.
	Affected []int32
	// Total is the explicit fallback: every node must be treated as
	// affected. Raised when the affected frontier exceeded the size
	// budget, when the node count changed (cached dense rows have the
	// wrong length), or when there is no previous snapshot to diff
	// against.
	Total bool
}

// AffectedNodes over-approximates the set of source nodes whose SimPush
// single-source results can change when the listed edge endpoints are
// mutated between oldG and newG.
//
// The shape follows the algorithm's own read set. A query from u reads
// (a) the in-adjacency of nodes its √c-walks and Source-Push visit —
// nodes a with a path a→…→u of length ≤ depth — and (b) the
// out-adjacency and in-degrees of nodes its Reverse-Push sweeps from
// attention nodes reach. Both reads factor through a common ancestor a
// with d_out(a, u) ≤ depth and d_out(a, endpoint) ≤ depth, so the
// affected sources are covered by a reverse BFS of depth `depth` from
// the endpoints (over in-edges, collecting candidate ancestors) composed
// with a forward BFS of depth `depth` from those ancestors (over
// out-edges). depth is the engine's walk-depth truncation bound L*;
// anything the engine reads is within it.
//
// The composition is computed on the old and the new graph separately
// and unioned, because a carried entry was computed on the old graph
// while its fresh counterpart runs on the new one. Endpoints outside a
// graph's node range (edges that add new nodes) are skipped on that
// graph.
//
// ok reports success; ok == false means the affected set exceeded budget
// nodes and the caller must fall back to EpochDelta.Total. budget <= 0
// means unbounded.
func AffectedNodes(oldG, newG *Graph, endpoints []int32, depth, budget int) (affected []int32, ok bool) {
	if depth < 1 {
		depth = 1
	}
	set := make(map[int32]struct{}, len(endpoints)*2)
	for _, g := range [2]*Graph{oldG, newG} {
		if g == nil {
			continue
		}
		if !affectedOn(g, endpoints, depth, budget, set) {
			return nil, false
		}
	}
	affected = make([]int32, 0, len(set))
	for v := range set {
		affected = append(affected, v)
	}
	sort.Slice(affected, func(i, j int) bool { return affected[i] < affected[j] })
	return affected, true
}

// affectedOn accumulates out_depth(in_depth(endpoints)) on one graph into
// set, returning false as soon as the union would exceed budget. The two
// BFS phases use graph-local visited maps — dedup against the shared set
// would truncate this graph's expansion at nodes the other graph already
// reached, even though their adjacency differs between the two.
func affectedOn(g *Graph, endpoints []int32, depth, budget int, set map[int32]struct{}) bool {
	// Phase 1: reverse closure — every candidate common ancestor a with
	// d_out(a, endpoint) ≤ depth, discovered by walking in-edges.
	ancestors := make(map[int32]struct{}, len(endpoints))
	frontier := make([]int32, 0, len(endpoints))
	for _, v := range endpoints {
		if !g.HasNode(v) {
			continue
		}
		if _, seen := ancestors[v]; !seen {
			ancestors[v] = struct{}{}
			frontier = append(frontier, v)
		}
	}
	var next []int32
	for hop := 0; hop < depth && len(frontier) > 0; hop++ {
		next = next[:0]
		for _, v := range frontier {
			for _, w := range g.In(v) {
				if _, seen := ancestors[w]; !seen {
					ancestors[w] = struct{}{}
					next = append(next, w)
				}
			}
		}
		frontier, next = next, frontier
		if budget > 0 && len(ancestors) > budget {
			return false // ancestors ⊆ affected, so the budget is already blown
		}
	}

	// Phase 2: forward closure from every ancestor over out-edges. The
	// ancestors themselves are affected (d_out(a, a) = 0).
	reached := ancestors // ancestors ⊆ affected; reuse the map as visited
	frontier = frontier[:0]
	for a := range reached {
		frontier = append(frontier, a)
	}
	for hop := 0; hop < depth && len(frontier) > 0; hop++ {
		next = next[:0]
		for _, v := range frontier {
			for _, w := range g.Out(v) {
				if _, seen := reached[w]; !seen {
					reached[w] = struct{}{}
					next = append(next, w)
				}
			}
		}
		frontier, next = next, frontier
		if budget > 0 && len(reached) > budget {
			return false
		}
	}
	for v := range reached {
		set[v] = struct{}{}
	}
	if budget > 0 && len(set) > budget {
		return false
	}
	return true
}
