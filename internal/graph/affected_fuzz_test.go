package graph_test

import (
	"math"
	"math/rand"
	"testing"

	"github.com/simrank/simpush/internal/exact"
	"github.com/simrank/simpush/internal/graph"
)

// FuzzAffectedOverApproximation checks the carry-forward soundness
// invariant on small random graphs: after one committed mutation batch,
// every node whose exact SimRank row (power method, K iterations)
// changes must be contained in the EpochDelta's affected set, provided
// the affected-set BFS ran at depth ≥ K. A violation means the delta
// would let the serving cache carry (and keep serving) a result the
// mutation actually changed — the one failure mode carry-forward must
// never have.
//
// The K-iteration oracle matches the engine's situation exactly: SimPush
// truncates all walks and pushes at L*, and the hook runs the BFS at
// that same depth, so "score change within K iterations ⇒ affected at
// depth K" is the precise containment the production path relies on.
func FuzzAffectedOverApproximation(f *testing.F) {
	for s := uint64(1); s <= 24; s++ {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, seed uint64) {
		rng := rand.New(rand.NewSource(int64(seed)))
		n := int32(4 + rng.Intn(9))
		m := 3 + rng.Intn(3*int(n))
		d := graph.NewDynamic(n, m)
		for i := 0; i < m; i++ {
			if err := d.AddEdge(rng.Int31n(n), rng.Int31n(n)); err != nil {
				t.Fatal(err)
			}
		}
		oldG, _, err := d.SnapshotEpoch()
		if err != nil {
			t.Fatal(err)
		}

		// K = the power method's iteration count at this tolerance; the
		// BFS must run at least that deep for containment to be promised.
		const c, tol = 0.6, 0.05
		iters := int(math.Ceil(math.Log(tol*(1-c)) / math.Log(c)))
		var delta *graph.EpochDelta
		d.SetCommitHook(func(ed graph.EpochDelta) { cp := ed; delta = &cp }, iters, 0)

		// One batch: 1-3 mutations, mixing inserts (within the existing
		// node range, so the delta is not a trivial Total) and removals of
		// edges that exist (each picked at most once so the batch commits).
		var edges [][2]int32
		oldG.Edges(func(from, to int32) { edges = append(edges, [2]int32{from, to}) })
		var adds, removes [][2]int32
		for i, nMut := 0, 1+rng.Intn(3); i < nMut; i++ {
			if len(edges) > 0 && rng.Intn(2) == 0 {
				j := rng.Intn(len(edges))
				removes = append(removes, edges[j])
				edges[j] = edges[len(edges)-1]
				edges = edges[:len(edges)-1]
			} else {
				adds = append(adds, [2]int32{rng.Int31n(n), rng.Int31n(n)})
			}
		}
		newG, _, err := d.ApplyEdges(adds, removes)
		if err != nil {
			t.Fatalf("ApplyEdges(%v, %v): %v", adds, removes, err)
		}
		if delta == nil {
			t.Fatal("commit hook did not fire")
		}
		if delta.Total {
			return // every node treated as affected: trivially sound
		}
		aff := make(map[int32]struct{}, len(delta.Affected))
		for _, v := range delta.Affected {
			aff[v] = struct{}{}
		}

		eo, err := exact.AllPairs(oldG, exact.Options{C: c, Tolerance: tol})
		if err != nil {
			t.Fatal(err)
		}
		en, err := exact.AllPairs(newG, exact.Options{C: c, Tolerance: tol})
		if err != nil {
			t.Fatal(err)
		}
		for u := int32(0); u < n; u++ {
			ro, rn := eo.Row(u), en.Row(u)
			for i := range ro {
				if ro[i] != rn[i] {
					if _, ok := aff[u]; !ok {
						t.Fatalf("node %d: exact score s(%d,%d) changed %v -> %v but %d is not in Affected %v (adds=%v removes=%v)",
							u, u, i, ro[i], rn[i], u, delta.Affected, adds, removes)
					}
					break
				}
			}
		}
	})
}
