package graph

import (
	"errors"
	"fmt"
	"sort"
)

// BuildOptions controls edge-stream normalization in Builder.
type BuildOptions struct {
	// Undirected inserts the reverse of every added edge, mirroring the
	// paper's convention of converting undirected graphs into pairs of
	// opposing directed edges.
	Undirected bool
	// DropSelfLoops discards edges (v, v).
	DropSelfLoops bool
	// Dedup removes duplicate (from, to) pairs.
	Dedup bool
}

// Builder accumulates edges and produces an immutable Graph.
//
// The zero value is unusable; construct with NewBuilder. Nodes are created
// implicitly: adding edge (u, v) extends the node range to max(u, v)+1.
// SetN can reserve isolated trailing nodes.
type Builder struct {
	opts  BuildOptions
	n     int32
	froms []int32
	tos   []int32
}

// NewBuilder returns a Builder with the given normalization options.
func NewBuilder(opts BuildOptions) *Builder {
	return &Builder{opts: opts}
}

// SetN declares that the graph has at least n nodes (ids 0..n-1), allowing
// isolated nodes beyond the maximum id seen in edges.
func (b *Builder) SetN(n int32) {
	if n > b.n {
		b.n = n
	}
}

// Grow reserves capacity for m additional edges.
func (b *Builder) Grow(m int) {
	if cap(b.froms)-len(b.froms) < m {
		nf := make([]int32, len(b.froms), len(b.froms)+m)
		copy(nf, b.froms)
		b.froms = nf
		nt := make([]int32, len(b.tos), len(b.tos)+m)
		copy(nt, b.tos)
		b.tos = nt
	}
}

// AddEdge records the directed edge (from, to). Negative ids are rejected
// at Build time.
func (b *Builder) AddEdge(from, to int32) {
	b.froms = append(b.froms, from)
	b.tos = append(b.tos, to)
	if from >= b.n {
		b.n = from + 1
	}
	if to >= b.n {
		b.n = to + 1
	}
}

// NumEdgesAdded returns the number of AddEdge calls so far (before
// normalization such as dedup or symmetrization).
func (b *Builder) NumEdgesAdded() int {
	return len(b.froms)
}

// Build finalizes the edge stream into an immutable Graph.
// The Builder remains valid and can keep accumulating edges for a later
// Build (used by the dynamic-graph example to rebuild after updates).
func (b *Builder) Build() (*Graph, error) {
	for i := range b.froms {
		if b.froms[i] < 0 || b.tos[i] < 0 {
			return nil, fmt.Errorf("graph: negative node id in edge (%d, %d)", b.froms[i], b.tos[i])
		}
	}
	froms, tos := b.froms, b.tos
	if b.opts.Undirected {
		froms = make([]int32, 0, 2*len(b.froms))
		tos = make([]int32, 0, 2*len(b.tos))
		for i := range b.froms {
			froms = append(froms, b.froms[i], b.tos[i])
			tos = append(tos, b.tos[i], b.froms[i])
		}
	}
	if b.opts.DropSelfLoops {
		ff := froms[:0:0]
		tt := tos[:0:0]
		for i := range froms {
			if froms[i] != tos[i] {
				ff = append(ff, froms[i])
				tt = append(tt, tos[i])
			}
		}
		froms, tos = ff, tt
	}
	if b.opts.Dedup {
		froms, tos = dedupEdges(froms, tos)
	}
	return fromEdges(b.n, froms, tos)
}

// dedupEdges sorts the edge list by (from, to) and removes duplicates.
func dedupEdges(froms, tos []int32) ([]int32, []int32) {
	idx := make([]int32, len(froms))
	for i := range idx {
		idx[i] = int32(i)
	}
	sort.Slice(idx, func(a, c int) bool {
		ia, ic := idx[a], idx[c]
		if froms[ia] != froms[ic] {
			return froms[ia] < froms[ic]
		}
		return tos[ia] < tos[ic]
	})
	ff := make([]int32, 0, len(froms))
	tt := make([]int32, 0, len(tos))
	for _, i := range idx {
		k := len(ff)
		if k > 0 && ff[k-1] == froms[i] && tt[k-1] == tos[i] {
			continue
		}
		ff = append(ff, froms[i])
		tt = append(tt, tos[i])
	}
	return ff, tt
}

// fromEdges builds the dual CSR via two counting sorts.
func fromEdges(n int32, froms, tos []int32) (*Graph, error) {
	if n < 0 {
		return nil, errors.New("graph: negative node count")
	}
	// Ids must fit in [0, n). The builder normally guarantees this, but
	// id MaxInt32 overflows its n = id+1 bookkeeping, so check here
	// rather than index out of range below.
	for i := range froms {
		if froms[i] < 0 || froms[i] >= n || tos[i] < 0 || tos[i] >= n {
			return nil, fmt.Errorf("graph: edge (%d, %d) outside node range [0, %d)", froms[i], tos[i], n)
		}
	}
	g := &Graph{n: n}
	m := len(froms)
	g.outOff = make([]int64, n+1)
	g.inOff = make([]int64, n+1)
	for i := 0; i < m; i++ {
		g.outOff[froms[i]+1]++
		g.inOff[tos[i]+1]++
	}
	for v := int32(0); v < n; v++ {
		g.outOff[v+1] += g.outOff[v]
		g.inOff[v+1] += g.inOff[v]
	}
	g.outAdj = make([]int32, m)
	g.inAdj = make([]int32, m)
	outCursor := make([]int64, n)
	inCursor := make([]int64, n)
	for i := 0; i < m; i++ {
		f, t := froms[i], tos[i]
		g.outAdj[g.outOff[f]+outCursor[f]] = t
		outCursor[f]++
		g.inAdj[g.inOff[t]+inCursor[t]] = f
		inCursor[t]++
	}
	g.buildInvInDeg()
	return g, nil
}

// FromEdgeList is a convenience wrapper: it builds a graph from parallel
// from/to slices with the given options.
func FromEdgeList(froms, tos []int32, opts BuildOptions) (*Graph, error) {
	if len(froms) != len(tos) {
		return nil, fmt.Errorf("graph: mismatched edge slices (%d vs %d)", len(froms), len(tos))
	}
	b := NewBuilder(opts)
	b.Grow(len(froms))
	for i := range froms {
		b.AddEdge(froms[i], tos[i])
	}
	return b.Build()
}

// MustFromPairs builds a directed graph from (from, to) pairs and panics on
// error. It is intended for tests and examples with literal edge lists.
func MustFromPairs(pairs ...[2]int32) *Graph {
	b := NewBuilder(BuildOptions{})
	for _, p := range pairs {
		b.AddEdge(p[0], p[1])
	}
	g, err := b.Build()
	if err != nil {
		panic(err)
	}
	return g
}
