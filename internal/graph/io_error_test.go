package graph

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// failingWriter errors after a fixed number of bytes, exercising the error
// paths of the writers.
type failingWriter struct {
	remaining int
}

func (f *failingWriter) Write(p []byte) (int, error) {
	if f.remaining <= 0 {
		return 0, errors.New("injected write failure")
	}
	n := len(p)
	if n > f.remaining {
		n = f.remaining
		f.remaining = 0
		return n, errors.New("injected write failure")
	}
	f.remaining -= n
	return n, nil
}

// failingReader errors after the prefix is consumed.
type failingReader struct {
	data []byte
	pos  int
}

func (f *failingReader) Read(p []byte) (int, error) {
	if f.pos >= len(f.data) {
		return 0, errors.New("injected read failure")
	}
	n := copy(p, f.data[f.pos:])
	f.pos += n
	return n, nil
}

func bigTestGraph(t testing.TB) *Graph {
	t.Helper()
	b := NewBuilder(BuildOptions{})
	for i := int32(0); i < 2000; i++ {
		b.AddEdge(i, (i+1)%2000)
		b.AddEdge(i, (i*7+3)%2000)
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestWriteEdgeListFailure(t *testing.T) {
	g := bigTestGraph(t)
	if err := WriteEdgeList(&failingWriter{remaining: 10}, g); err == nil {
		t.Fatal("write failure not propagated")
	}
}

func TestWriteBinaryFailure(t *testing.T) {
	g := bigTestGraph(t)
	for _, budget := range []int{0, 4, 20, 100} {
		if err := WriteBinary(&failingWriter{remaining: budget}, g); err == nil {
			t.Fatalf("write failure not propagated at budget %d", budget)
		}
	}
}

func TestReadEdgeListMidStreamFailure(t *testing.T) {
	if _, err := ReadEdgeList(&failingReader{data: []byte("0 1\n1 2\n")}, BuildOptions{}); err == nil {
		t.Fatal("read failure not propagated")
	}
}

func TestReadBinaryCorruptHeader(t *testing.T) {
	g := MustFromPairs([2]int32{0, 1})
	var buf bytes.Buffer
	if err := WriteBinary(&buf, g); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	// negative node count
	bad := append([]byte(nil), raw...)
	for i := 8; i < 16; i++ {
		bad[i] = 0xff
	}
	if _, err := ReadBinary(bytes.NewReader(bad)); err == nil {
		t.Fatal("corrupt n accepted")
	}
	// inconsistent offsets
	bad2 := append([]byte(nil), raw...)
	bad2[24]++ // first outOff entry
	if _, err := ReadBinary(bytes.NewReader(bad2)); err == nil {
		t.Fatal("corrupt offsets accepted")
	}
}

func TestSaveLoadBinaryFile(t *testing.T) {
	g := bigTestGraph(t)
	path := filepath.Join(t.TempDir(), "g.spg")
	if err := SaveBinaryFile(path, g); err != nil {
		t.Fatal(err)
	}
	g2, err := LoadBinaryFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if g2.M() != g.M() {
		t.Fatal("file round trip changed graph")
	}
	if _, err := LoadBinaryFile(filepath.Join(t.TempDir(), "missing.spg")); err == nil {
		t.Fatal("missing file accepted")
	}
	if err := SaveBinaryFile(filepath.Join(t.TempDir(), "no", "such", "dir", "g.spg"), g); err == nil {
		t.Fatal("bad path accepted")
	}
}

func TestLoadEdgeListFileMissing(t *testing.T) {
	if _, err := LoadEdgeListFile("/nonexistent/file.txt", BuildOptions{}); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestLoadEdgeListFileRemapped(t *testing.T) {
	path := filepath.Join(t.TempDir(), "g.txt")
	if err := os.WriteFile(path, []byte("100 200\n200 300\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	g, remap, err := LoadEdgeListFileRemapped(path, BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 3 || remap.Len() != 3 {
		t.Fatalf("g=%v remap=%d", g, remap.Len())
	}
	if _, _, err := LoadEdgeListFileRemapped("/nonexistent", BuildOptions{}); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestRemapLongLine(t *testing.T) {
	// a line longer than the default scanner buffer must still parse
	var sb strings.Builder
	sb.WriteString("1 2")
	for i := 0; i < 100; i++ {
		sb.WriteString("   ")
	}
	sb.WriteString("\n3 4\n")
	g, _, err := ReadEdgeListRemapped(strings.NewReader(sb.String()), BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if g.M() != 2 {
		t.Fatalf("m = %d", g.M())
	}
}
