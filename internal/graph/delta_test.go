package graph

import (
	"reflect"
	"testing"
)

// chainDyn builds 0→1→2→3→4 as a committed dynamic graph.
func chainDyn(t *testing.T) *Dynamic {
	t.Helper()
	d := NewDynamic(5, 4)
	for i := int32(0); i < 4; i++ {
		if err := d.AddEdge(i, i+1); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := d.Snapshot(); err != nil {
		t.Fatal(err)
	}
	return d
}

func TestAffectedNodesChain(t *testing.T) {
	g, err := chainDyn(t).Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	// Mutating edge (2,3) at depth 1: ancestors within one hop of the
	// endpoints over in-edges are {1,2,3}; one forward hop from them
	// reaches {1,2,3,4}. Node 0 is out of range of any depth-1 read.
	aff, ok := AffectedNodes(g, g, []int32{2, 3}, 1, 0)
	if !ok {
		t.Fatal("unexpected budget fallback")
	}
	if want := []int32{1, 2, 3, 4}; !reflect.DeepEqual(aff, want) {
		t.Fatalf("affected = %v, want %v", aff, want)
	}
	// Deep enough, the whole chain is affected.
	aff, ok = AffectedNodes(g, g, []int32{2, 3}, 4, 0)
	if !ok || len(aff) != 5 {
		t.Fatalf("depth-4 affected = %v ok=%v, want all 5 nodes", aff, ok)
	}
}

func TestAffectedNodesBudget(t *testing.T) {
	g, err := chainDyn(t).Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := AffectedNodes(g, g, []int32{2, 3}, 4, 3); ok {
		t.Fatal("budget 3 must fail: the affected set has 5 nodes")
	}
	if aff, ok := AffectedNodes(g, g, []int32{2, 3}, 4, 5); !ok || len(aff) != 5 {
		t.Fatalf("budget 5 should fit exactly: aff=%v ok=%v", aff, ok)
	}
	// Endpoints outside the node range (edge adding new nodes) are
	// skipped, not crashed on.
	if aff, ok := AffectedNodes(g, g, []int32{99}, 2, 0); !ok || len(aff) != 0 {
		t.Fatalf("out-of-range endpoints: aff=%v ok=%v, want empty", aff, ok)
	}
}

// TestAffectedNodesPerGraphVisited is the regression test for the shared
// visited-set bug: the old and new graphs must each run their BFS to full
// depth even through nodes the other graph already reached, because their
// adjacency differs.
func TestAffectedNodesPerGraphVisited(t *testing.T) {
	// Old graph: 0→1 only. New graph: 0→1 plus 1→2 — so on the new graph
	// the forward closure from ancestor 0 must pass through 1 (already
	// reached on the old graph) and continue to 2.
	mk := func(withTail bool) *Graph {
		d := NewDynamic(3, 2)
		if err := d.AddEdge(0, 1); err != nil {
			t.Fatal(err)
		}
		if withTail {
			if err := d.AddEdge(1, 2); err != nil {
				t.Fatal(err)
			}
		}
		g, err := d.Snapshot()
		if err != nil {
			t.Fatal(err)
		}
		return g
	}
	oldG, newG := mk(false), mk(true)
	aff, ok := AffectedNodes(oldG, newG, []int32{0, 1}, 2, 0)
	if !ok {
		t.Fatal("unexpected budget fallback")
	}
	if want := []int32{0, 1, 2}; !reflect.DeepEqual(aff, want) {
		t.Fatalf("affected = %v, want %v (node 2 reachable only on the new graph)", aff, want)
	}
}

func TestCommitHookDeltas(t *testing.T) {
	d := NewDynamic(5, 8)
	for i := int32(0); i < 4; i++ {
		if err := d.AddEdge(i, i+1); err != nil {
			t.Fatal(err)
		}
	}
	var got []EpochDelta
	d.SetCommitHook(func(ed EpochDelta) { got = append(got, ed) }, 2, 0)

	// First commit: no previous snapshot, must be a Total delta 0→1.
	if _, epoch, err := d.SnapshotEpoch(); err != nil || epoch != 1 {
		t.Fatalf("first snapshot: epoch=%d err=%v", epoch, err)
	}
	if len(got) != 1 || !got[0].Total || got[0].FromEpoch != 0 || got[0].ToEpoch != 1 {
		t.Fatalf("first delta = %+v, want Total 0→1", got)
	}

	// Legacy AddEdge path between existing nodes: real affected set.
	if err := d.AddEdge(0, 2); err != nil {
		t.Fatal(err)
	}
	if _, _, err := d.SnapshotEpoch(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("hook fired %d times, want 2", len(got))
	}
	d2 := got[1]
	if d2.Total || d2.FromEpoch != 1 || d2.ToEpoch != 2 {
		t.Fatalf("second delta = %+v, want non-Total 1→2", d2)
	}
	for _, want := range []int32{0, 2} {
		if !containsNode(d2.Affected, want) {
			t.Fatalf("affected %v misses mutated endpoint %d", d2.Affected, want)
		}
	}

	// Cached snapshot: no new commit, no new delta.
	if _, _, err := d.SnapshotEpoch(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("cached snapshot fired the hook: %d deltas", len(got))
	}

	// ApplyEdges path, with a removal: endpoints of removed edges seed
	// the BFS too.
	if _, _, err := d.ApplyEdges(nil, [][2]int32{{0, 2}}); err != nil {
		t.Fatal(err)
	}
	d3 := got[len(got)-1]
	if d3.Total || d3.FromEpoch != 2 || d3.ToEpoch != 3 {
		t.Fatalf("removal delta = %+v, want non-Total 2→3", d3)
	}
	if !containsNode(d3.Affected, 0) || !containsNode(d3.Affected, 2) {
		t.Fatalf("removal affected %v misses endpoints", d3.Affected)
	}

	// Growing the node range voids dense-row compatibility: Total.
	if err := d.AddEdge(4, 7); err != nil {
		t.Fatal(err)
	}
	if _, _, err := d.SnapshotEpoch(); err != nil {
		t.Fatal(err)
	}
	if d4 := got[len(got)-1]; !d4.Total {
		t.Fatalf("node-count change delta = %+v, want Total", d4)
	}
}

func TestCommitHookBudgetFallsBackToTotal(t *testing.T) {
	d := chainDyn(t)
	var got []EpochDelta
	d.SetCommitHook(func(ed EpochDelta) { got = append(got, ed) }, 4, 2)
	if err := d.AddEdge(2, 3); err != nil {
		t.Fatal(err)
	}
	if _, _, err := d.SnapshotEpoch(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || !got[0].Total {
		t.Fatalf("delta = %+v, want Total (budget 2 < 5 affected)", got)
	}
}

func TestDiscardedDeletionsCount(t *testing.T) {
	d := chainDyn(t)
	if n := d.DiscardedDeletions(); n != 0 {
		t.Fatalf("fresh graph discarded = %d", n)
	}
	d.RemoveEdge(3, 0) // never existed
	if _, err := d.Snapshot(); err == nil {
		t.Fatal("snapshot after bad removal must fail once")
	}
	if n := d.DiscardedDeletions(); n != 1 {
		t.Fatalf("discarded = %d, want 1", n)
	}
	// Recovered: the next snapshot succeeds and the count is stable.
	if _, err := d.Snapshot(); err != nil {
		t.Fatalf("recovery snapshot: %v", err)
	}
	if n := d.DiscardedDeletions(); n != 1 {
		t.Fatalf("discarded after recovery = %d, want 1", n)
	}
	// Double removal of an edge that exists once: one excess discarded.
	d.RemoveEdge(0, 1)
	d.RemoveEdge(0, 1)
	if _, err := d.Snapshot(); err == nil {
		t.Fatal("excess removal must fail once")
	}
	if n := d.DiscardedDeletions(); n != 2 {
		t.Fatalf("discarded = %d, want 2", n)
	}
}

func containsNode(s []int32, v int32) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}
