package graph

import (
	"bytes"
	"encoding/binary"
	"strings"
	"testing"
)

// FuzzReadEdgeList hardens the fast edge-list parser: arbitrary input must
// either parse into a consistent graph or return an error — never panic,
// and a successful parse must round-trip through WriteEdgeList.
func FuzzReadEdgeList(f *testing.F) {
	f.Add("0 1\n1 2\n")
	f.Add("# comment\n% other\n\n5 3 7\n")
	f.Add("  12\t14 \n")
	f.Add("-1 2\n")
	f.Add("99999999999999999999 0\n")
	f.Add("0 1")
	f.Add("a b\n0 1\n")
	f.Fuzz(func(t *testing.T, input string) {
		g, err := ReadEdgeList(strings.NewReader(input), BuildOptions{})
		if err != nil {
			return
		}
		var sumIn, sumOut int64
		for v := int32(0); v < g.N(); v++ {
			sumIn += int64(g.InDeg(v))
			sumOut += int64(g.OutDeg(v))
		}
		if sumIn != g.M() || sumOut != g.M() {
			t.Fatalf("degree sums %d/%d != m %d", sumIn, sumOut, g.M())
		}
		var buf bytes.Buffer
		if err := WriteEdgeList(&buf, g); err != nil {
			t.Fatal(err)
		}
		g2, err := ReadEdgeList(&buf, BuildOptions{})
		if err != nil {
			t.Fatalf("round trip failed: %v", err)
		}
		if g2.M() != g.M() {
			t.Fatalf("round trip changed m: %d vs %d", g2.M(), g.M())
		}
	})
}

// FuzzReadBinary hardens the binary loader against corrupt bytes.
func FuzzReadBinary(f *testing.F) {
	g := MustFromPairs([2]int32{0, 1}, [2]int32{1, 2}, [2]int32{2, 0})
	var buf bytes.Buffer
	if err := WriteBinary(&buf, g); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:len(valid)-1])
	f.Add([]byte("garbage"))
	corrupted := append([]byte(nil), valid...)
	corrupted[10] ^= 0xff
	f.Add(corrupted)
	f.Fuzz(func(t *testing.T, data []byte) {
		g, err := ReadBinary(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Any accepted graph must be safe to traverse.
		g.Edges(func(from, to int32) {
			if !g.HasNode(from) || !g.HasNode(to) {
				t.Fatalf("edge (%d,%d) out of range", from, to)
			}
		})
	})
}

// FuzzFromEdges hardens the CSR builder pipeline (AddEdge → normalize →
// fromEdges) against arbitrary edge streams and option combinations. The
// raw bytes decode into (from, to) int32 pairs, so the fuzzer reaches
// negative ids, id overflow near MaxInt32, self loops, and duplicates.
// Any accepted graph must satisfy the CSR invariants the engines rely on:
// degree sums equal to m and every adjacency entry in range.
func FuzzFromEdges(f *testing.F) {
	pack := func(pairs ...[2]int32) []byte {
		buf := make([]byte, 0, 8*len(pairs))
		for _, p := range pairs {
			buf = binary.LittleEndian.AppendUint32(buf, uint32(p[0]))
			buf = binary.LittleEndian.AppendUint32(buf, uint32(p[1]))
		}
		return buf
	}
	f.Add(pack([2]int32{0, 1}, [2]int32{1, 2}, [2]int32{2, 0}), false, false, false)
	f.Add(pack([2]int32{3, 3}, [2]int32{3, 3}, [2]int32{0, 3}), true, true, true)
	f.Add(pack([2]int32{-1, 2}), false, false, false)
	f.Add(pack([2]int32{1<<31 - 1, 0}), false, false, true)
	f.Fuzz(func(t *testing.T, data []byte, undirected, dropLoops, dedup bool) {
		n := len(data) / 8
		froms := make([]int32, n)
		tos := make([]int32, n)
		for i := 0; i < n; i++ {
			froms[i] = int32(binary.LittleEndian.Uint32(data[8*i:]))
			tos[i] = int32(binary.LittleEndian.Uint32(data[8*i+4:]))
		}
		g, err := FromEdgeList(froms, tos, BuildOptions{
			Undirected:    undirected,
			DropSelfLoops: dropLoops,
			Dedup:         dedup,
		})
		if err != nil {
			return
		}
		var sumIn, sumOut int64
		for v := int32(0); v < g.N(); v++ {
			sumIn += int64(g.InDeg(v))
			sumOut += int64(g.OutDeg(v))
		}
		if sumIn != g.M() || sumOut != g.M() {
			t.Fatalf("degree sums %d/%d != m %d", sumIn, sumOut, g.M())
		}
		edges := int64(0)
		g.Edges(func(from, to int32) {
			edges++
			if !g.HasNode(from) || !g.HasNode(to) {
				t.Fatalf("edge (%d,%d) out of range (n=%d)", from, to, g.N())
			}
			if dropLoops && from == to {
				t.Fatalf("self loop (%d,%d) survived DropSelfLoops", from, to)
			}
		})
		if edges != g.M() {
			t.Fatalf("Edges visited %d edges, m = %d", edges, g.M())
		}
	})
}

// FuzzRemappedParser hardens the sparse-id loader.
func FuzzRemappedParser(f *testing.F) {
	f.Add("10000000000 5\n5 7\n")
	f.Add("x y\n")
	f.Add("1\n")
	f.Fuzz(func(t *testing.T, input string) {
		g, remap, err := ReadEdgeListRemapped(strings.NewReader(input), BuildOptions{})
		if err != nil {
			return
		}
		if int32(remap.Len()) != g.N() {
			t.Fatalf("remap len %d != n %d", remap.Len(), g.N())
		}
		for v := int32(0); v < g.N(); v++ {
			ext := remap.External(v)
			back, ok := remap.Internal(ext)
			if !ok || back != v {
				t.Fatalf("remap not bijective at %d", v)
			}
		}
	})
}
