package graph

import (
	"fmt"
	"math"
	"sort"
)

// Stats summarizes structural properties of a graph. It backs the Table 4
// (dataset statistics) reproduction and sanity checks on generators.
type Stats struct {
	N             int32
	M             int64
	AvgInDeg      float64
	AvgOutDeg     float64
	MaxInDeg      int32
	MaxOutDeg     int32
	MedianInDeg   int32
	DanglingIn    int32 // nodes with in-degree 0 (√c-walk dead ends)
	DanglingOut   int32 // nodes with out-degree 0
	Symmetric     bool  // true if the edge set is symmetric (undirected)
	GiniInDegree  float64
	PowerLawAlpha float64 // MLE exponent fit of the in-degree tail (xmin=minimum positive degree)
}

// ComputeStats scans the graph once per metric family.
func ComputeStats(g *Graph) Stats {
	n := g.N()
	s := Stats{N: n, M: g.M()}
	if n == 0 {
		s.Symmetric = true
		return s
	}
	s.AvgInDeg = float64(s.M) / float64(n)
	s.AvgOutDeg = s.AvgInDeg
	inDegs := make([]int32, n)
	for v := int32(0); v < n; v++ {
		in, out := g.InDeg(v), g.OutDeg(v)
		inDegs[v] = in
		if in > s.MaxInDeg {
			s.MaxInDeg = in
		}
		if out > s.MaxOutDeg {
			s.MaxOutDeg = out
		}
		if in == 0 {
			s.DanglingIn++
		}
		if out == 0 {
			s.DanglingOut++
		}
	}
	sort.Slice(inDegs, func(i, j int) bool { return inDegs[i] < inDegs[j] })
	s.MedianInDeg = inDegs[n/2]
	s.GiniInDegree = gini(inDegs)
	s.PowerLawAlpha = powerLawAlpha(inDegs)
	s.Symmetric = isSymmetric(g)
	return s
}

// gini computes the Gini coefficient of a sorted non-negative sequence.
func gini(sorted []int32) float64 {
	n := len(sorted)
	if n == 0 {
		return 0
	}
	var cum, total float64
	for i, d := range sorted {
		cum += float64(i+1) * float64(d)
		total += float64(d)
	}
	if total == 0 {
		return 0
	}
	return (2*cum)/(float64(n)*total) - float64(n+1)/float64(n)
}

// powerLawAlpha is the Clauset-Shalizi-Newman MLE exponent for the degree
// tail, using the smallest positive degree as xmin. It is a descriptive
// statistic only (the paper cites [3]: strict power laws are rare).
func powerLawAlpha(sorted []int32) float64 {
	// find xmin = smallest positive degree
	i := sort.Search(len(sorted), func(i int) bool { return sorted[i] > 0 })
	tail := sorted[i:]
	if len(tail) < 2 {
		return 0
	}
	xmin := float64(tail[0])
	var sum float64
	for _, d := range tail {
		sum += math.Log(float64(d) / xmin)
	}
	if sum == 0 {
		return 0
	}
	return 1 + float64(len(tail))/sum
}

// isSymmetric reports whether for every edge (u,v) the edge (v,u) exists.
// Runs in O(m log d) via binary search over sorted copies of the out-lists.
func isSymmetric(g *Graph) bool {
	if g.M() == 0 {
		return true
	}
	// Sorted copy of each out-adjacency for binary search.
	sortedOut := make([][]int32, g.N())
	for v := int32(0); v < g.N(); v++ {
		out := g.Out(v)
		cp := make([]int32, len(out))
		copy(cp, out)
		sort.Slice(cp, func(i, j int) bool { return cp[i] < cp[j] })
		sortedOut[v] = cp
	}
	sym := true
	g.Edges(func(from, to int32) {
		if !sym {
			return
		}
		rev := sortedOut[to]
		k := sort.Search(len(rev), func(i int) bool { return rev[i] >= from })
		if k >= len(rev) || rev[k] != from {
			sym = false
		}
	})
	return sym
}

// String renders the stats as a single table row.
func (s Stats) String() string {
	kind := "directed"
	if s.Symmetric {
		kind = "undirected"
	}
	return fmt.Sprintf("n=%d m=%d avg_deg=%.2f max_in=%d dangling_in=%d type=%s alpha=%.2f",
		s.N, s.M, s.AvgInDeg, s.MaxInDeg, s.DanglingIn, kind, s.PowerLawAlpha)
}
