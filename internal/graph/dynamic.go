package graph

import (
	"fmt"
	"sync"
)

// Dynamic is a mutable directed graph that supports the evolving-graph
// scenario motivating index-free SimRank (paper §1): edges arrive and
// depart continuously, and queries must always see the newest state.
//
// Mutations are buffered; Snapshot materializes an immutable CSR Graph,
// rebuilding lazily and amortized — repeated Snapshot calls without
// intervening mutations return the same *Graph, so query engines can be
// constructed directly on the result. Every materialized snapshot is
// stamped with a monotonically increasing epoch (SnapshotEpoch); the
// epoch only advances when a rebuild actually observes new mutations, so
// it identifies distinct committed graph states. All methods are safe for
// concurrent use.
type Dynamic struct {
	mu      sync.Mutex
	n       int32
	froms   []int32
	tos     []int32
	deleted map[[2]int32]int // pending deletion counts per edge
	snap    *Graph           // cached snapshot; nil when dirty
	epoch   uint64           // epoch of the cached snapshot; bumped per rebuild

	// prev is the most recently materialized snapshot regardless of
	// dirtiness — the "old" side of the next epoch delta.
	prev *Graph
	// pendEndpoints collects the endpoints of every edge mutated since
	// the last committed snapshot; they seed the affected-set BFS.
	pendEndpoints []int32
	// discardedDeletions counts RemoveEdge calls for never-existing edges
	// that a rebuild discarded after reporting the error once — silent
	// no-ops from the caller's perspective, surfaced via /statsz.
	discardedDeletions uint64

	hook       func(EpochDelta) // commit hook; see SetCommitHook
	hookDepth  int
	hookBudget int
}

// NewDynamic returns an empty dynamic graph. nHint reserves node ids
// [0, nHint) up front (exactly like AddNode(nHint)), and mHint presizes
// the edge buffer, so a caller that knows the eventual size pays no
// regrowth during the initial load.
func NewDynamic(nHint int32, mHint int) *Dynamic {
	if nHint < 0 {
		nHint = 0
	}
	if mHint < 0 {
		mHint = 0
	}
	return &Dynamic{
		froms:   make([]int32, 0, mHint),
		tos:     make([]int32, 0, mHint),
		deleted: map[[2]int32]int{},
		n:       nHint,
	}
}

// FromGraph seeds a dynamic graph with an existing immutable graph.
func FromGraph(g *Graph) *Dynamic {
	d := NewDynamic(g.N(), int(g.M()))
	g.Edges(func(f, t int32) {
		d.froms = append(d.froms, f)
		d.tos = append(d.tos, t)
	})
	return d
}

// AddEdge inserts a directed edge; node range grows as needed.
func (d *Dynamic) AddEdge(from, to int32) error {
	if from < 0 || to < 0 {
		return fmt.Errorf("graph: negative node id (%d, %d)", from, to)
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	d.froms = append(d.froms, from)
	d.tos = append(d.tos, to)
	if from >= d.n {
		d.n = from + 1
	}
	if to >= d.n {
		d.n = to + 1
	}
	d.pendEndpoints = append(d.pendEndpoints, from, to)
	d.snap = nil
	return nil
}

// RemoveEdge marks one occurrence of (from, to) for deletion. Validation
// is deferred: removing an edge that does not exist is reported as an
// error by the next Snapshot, which then discards the unmatched deletion —
// exactly one snapshot fails and the source recovers, so a long-lived
// Client serving this graph is never permanently poisoned by a bad (or
// raced) removal.
func (d *Dynamic) RemoveEdge(from, to int32) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.deleted[[2]int32{from, to}]++
	d.pendEndpoints = append(d.pendEndpoints, from, to)
	d.snap = nil
}

// AddNode reserves node ids up to n-1 even if isolated.
func (d *Dynamic) AddNode(n int32) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if n > d.n {
		d.n = n
	}
	d.snap = nil
}

// PendingEdges returns the count of buffered edge insertions (before
// deletions are applied).
func (d *Dynamic) PendingEdges() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.froms)
}

// Snapshot materializes the current graph. The rebuild applies pending
// deletions, compacts the edge buffer and caches the result until the
// next mutation.
func (d *Dynamic) Snapshot() (*Graph, error) {
	g, _, err := d.SnapshotEpoch()
	return g, err
}

// Epoch returns the epoch of the most recently materialized snapshot.
// Epochs start at 0 (nothing materialized yet) and advance by one each
// time a Snapshot observes mutations; a Snapshot that hits the cache
// keeps its epoch. Pending, not-yet-snapshotted mutations do not advance
// the epoch — it versions committed states only.
func (d *Dynamic) Epoch() uint64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.epoch
}

// GraphSnapshot materializes the current graph together with its epoch,
// implementing the root package's GraphSource interface.
func (d *Dynamic) GraphSnapshot() (*Graph, uint64, error) {
	return d.SnapshotEpoch()
}

// SnapshotEpoch is Snapshot plus the snapshot's epoch stamp. The pair is
// consistent: the returned graph is exactly the state committed at the
// returned epoch, even under concurrent mutation.
func (d *Dynamic) SnapshotEpoch() (*Graph, uint64, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.snap != nil {
		return d.snap, d.epoch, nil
	}
	return d.rebuildLocked()
}

// rebuildLocked materializes a fresh snapshot with d.mu held.
func (d *Dynamic) rebuildLocked() (*Graph, uint64, error) {
	if len(d.deleted) > 0 {
		// Validate before mutating: every pending deletion must match an
		// existing buffered edge. An unmatched deletion fails this one
		// rebuild, but its excess is dropped so the next Snapshot recovers
		// — a bad removal must not poison the source forever.
		avail := make(map[[2]int32]int, len(d.deleted))
		for i := range d.froms {
			key := [2]int32{d.froms[i], d.tos[i]}
			if _, tracked := d.deleted[key]; tracked {
				avail[key]++
			}
		}
		var badKey [2]int32
		bad := false
		for key, cnt := range d.deleted {
			if avail[key] < cnt {
				if !bad {
					badKey, bad = key, true
				}
				d.discardedDeletions += uint64(cnt - avail[key])
				if avail[key] == 0 {
					delete(d.deleted, key)
				} else {
					d.deleted[key] = avail[key]
				}
			}
		}
		if bad {
			return nil, 0, fmt.Errorf("graph: removing nonexistent edge (%d, %d)", badKey[0], badKey[1])
		}
		ff := d.froms[:0]
		tt := d.tos[:0]
		for i := range d.froms {
			key := [2]int32{d.froms[i], d.tos[i]}
			if cnt := d.deleted[key]; cnt > 0 {
				d.deleted[key] = cnt - 1
				continue
			}
			ff = append(ff, d.froms[i])
			tt = append(tt, d.tos[i])
		}
		for key := range d.deleted {
			delete(d.deleted, key)
		}
		d.froms, d.tos = ff, tt
	}
	g, err := fromEdges(d.n, d.froms, d.tos)
	if err != nil {
		return nil, 0, err
	}
	old, oldEpoch := d.prev, d.epoch
	endpoints := d.pendEndpoints
	d.snap, d.prev = g, g
	d.pendEndpoints = nil
	d.epoch++
	if d.hook != nil {
		// The hook runs with d.mu held: no concurrent SnapshotEpoch can
		// observe the new epoch until it returns, so a cache carry-forward
		// inside the hook completes before any request can pin (and sweep
		// at) the new epoch.
		d.hook(d.buildDeltaLocked(old, g, oldEpoch, endpoints))
	}
	return g, d.epoch, nil
}

// buildDeltaLocked assembles the EpochDelta for one committed rebuild.
// Total is raised when there is no previous snapshot to diff against,
// when the node count changed (cached dense rows have the wrong length),
// or when the affected frontier exceeds the configured budget.
func (d *Dynamic) buildDeltaLocked(old, g *Graph, oldEpoch uint64, endpoints []int32) EpochDelta {
	delta := EpochDelta{FromEpoch: oldEpoch, ToEpoch: d.epoch}
	if old == nil || old.N() != g.N() {
		delta.Total = true
		return delta
	}
	affected, ok := AffectedNodes(old, g, endpoints, d.hookDepth, d.hookBudget)
	if !ok {
		delta.Total = true
		return delta
	}
	delta.Affected = affected
	return delta
}

// SetCommitHook registers fn to run on every committed epoch advance,
// with the delta between the superseded and the new snapshot. depth is
// the affected-set BFS depth (the engine's walk-depth truncation bound
// L*); budget caps the affected set's size, beyond which the delta falls
// back to Total (budget <= 0 = unbounded).
//
// The hook runs with the graph's mutex held, after the new snapshot is
// materialized but before its epoch is observable through SnapshotEpoch —
// the window in which a serving cache can re-key entries without racing
// requests that pin the new epoch. The hook must be fast and must not
// call back into the Dynamic. At most one hook is supported; nil
// unregisters.
func (d *Dynamic) SetCommitHook(fn func(EpochDelta), depth, budget int) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.hook = fn
	d.hookDepth = depth
	d.hookBudget = budget
}

// DiscardedDeletions returns how many RemoveEdge calls named an edge that
// never existed and were discarded by a rebuild after failing exactly one
// snapshot. The count surfaces silent no-ops to operators: the error is
// reported once on the failing snapshot and the source then recovers, so
// without this counter a steady trickle of bad removals is invisible.
func (d *Dynamic) DiscardedDeletions() uint64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.discardedDeletions
}

// ApplyEdges applies one batch of insertions and removals atomically and
// materializes the resulting snapshot before returning: the batch commits
// as exactly one epoch advance, with no concurrent Snapshot observing a
// half-applied state. This is the replication primitive — a leader and a
// follower that start from the same graph and apply the same batches in
// the same order walk through identical (graph, epoch) sequences.
//
// Unlike AddEdge/RemoveEdge, validation is eager and all-or-nothing:
// negative node ids or a removal without a matching edge (counting this
// batch's insertions, net of deletions already pending) reject the whole
// batch without mutating anything, so a bad batch can never leave the two
// sides of a replication stream in different states.
func (d *Dynamic) ApplyEdges(adds, removes [][2]int32) (*Graph, uint64, error) {
	for _, e := range adds {
		if e[0] < 0 || e[1] < 0 {
			return nil, 0, fmt.Errorf("graph: negative node id (%d, %d)", e[0], e[1])
		}
	}
	for _, e := range removes {
		if e[0] < 0 || e[1] < 0 {
			return nil, 0, fmt.Errorf("graph: negative node id (%d, %d)", e[0], e[1])
		}
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if len(removes) > 0 {
		need := make(map[[2]int32]int, len(removes))
		for _, e := range removes {
			need[e]++
		}
		avail := make(map[[2]int32]int, len(need))
		for i := range d.froms {
			key := [2]int32{d.froms[i], d.tos[i]}
			if _, tracked := need[key]; tracked {
				avail[key]++
			}
		}
		for _, e := range adds {
			if _, tracked := need[e]; tracked {
				avail[e]++
			}
		}
		for key, cnt := range need {
			if avail[key]-d.deleted[key] < cnt {
				return nil, 0, fmt.Errorf("graph: removing nonexistent edge (%d, %d)", key[0], key[1])
			}
		}
	}
	for _, e := range adds {
		d.froms = append(d.froms, e[0])
		d.tos = append(d.tos, e[1])
		if e[0] >= d.n {
			d.n = e[0] + 1
		}
		if e[1] >= d.n {
			d.n = e[1] + 1
		}
		d.pendEndpoints = append(d.pendEndpoints, e[0], e[1])
	}
	for _, e := range removes {
		d.deleted[e]++
		d.pendEndpoints = append(d.pendEndpoints, e[0], e[1])
	}
	d.snap = nil
	return d.rebuildLocked()
}
