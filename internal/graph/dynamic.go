package graph

import (
	"fmt"
	"sync"
)

// Dynamic is a mutable directed graph that supports the evolving-graph
// scenario motivating index-free SimRank (paper §1): edges arrive and
// depart continuously, and queries must always see the newest state.
//
// Mutations are buffered; Snapshot materializes an immutable CSR Graph,
// rebuilding lazily and amortized — repeated Snapshot calls without
// intervening mutations return the same *Graph, so query engines can be
// constructed directly on the result. All methods are safe for concurrent
// use.
type Dynamic struct {
	mu      sync.Mutex
	n       int32
	froms   []int32
	tos     []int32
	deleted map[[2]int32]int // pending deletion counts per edge
	snap    *Graph           // cached snapshot; nil when dirty
}

// NewDynamic returns an empty dynamic graph with capacity hints.
func NewDynamic(nHint int32, mHint int) *Dynamic {
	return &Dynamic{
		froms:   make([]int32, 0, mHint),
		tos:     make([]int32, 0, mHint),
		deleted: map[[2]int32]int{},
		n:       0,
	}
}

// FromGraph seeds a dynamic graph with an existing immutable graph.
func FromGraph(g *Graph) *Dynamic {
	d := NewDynamic(g.N(), int(g.M()))
	d.n = g.N()
	g.Edges(func(f, t int32) {
		d.froms = append(d.froms, f)
		d.tos = append(d.tos, t)
	})
	return d
}

// AddEdge inserts a directed edge; node range grows as needed.
func (d *Dynamic) AddEdge(from, to int32) error {
	if from < 0 || to < 0 {
		return fmt.Errorf("graph: negative node id (%d, %d)", from, to)
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	d.froms = append(d.froms, from)
	d.tos = append(d.tos, to)
	if from >= d.n {
		d.n = from + 1
	}
	if to >= d.n {
		d.n = to + 1
	}
	d.snap = nil
	return nil
}

// RemoveEdge marks one occurrence of (from, to) for deletion. Removing an
// absent edge is reported at the next Snapshot.
func (d *Dynamic) RemoveEdge(from, to int32) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.deleted[[2]int32{from, to}]++
	d.snap = nil
}

// AddNode reserves node ids up to n-1 even if isolated.
func (d *Dynamic) AddNode(n int32) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if n > d.n {
		d.n = n
	}
	d.snap = nil
}

// PendingEdges returns the count of buffered edge insertions (before
// deletions are applied).
func (d *Dynamic) PendingEdges() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.froms)
}

// Snapshot materializes the current graph. The rebuild applies pending
// deletions, compacts the edge buffer and caches the result until the
// next mutation.
func (d *Dynamic) Snapshot() (*Graph, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.snap != nil {
		return d.snap, nil
	}
	if len(d.deleted) > 0 {
		// Validate before mutating: every pending deletion must match an
		// existing buffered edge.
		avail := make(map[[2]int32]int, len(d.deleted))
		for i := range d.froms {
			key := [2]int32{d.froms[i], d.tos[i]}
			if _, tracked := d.deleted[key]; tracked {
				avail[key]++
			}
		}
		for key, cnt := range d.deleted {
			if avail[key] < cnt {
				return nil, fmt.Errorf("graph: removing nonexistent edge (%d, %d)", key[0], key[1])
			}
		}
		ff := d.froms[:0]
		tt := d.tos[:0]
		for i := range d.froms {
			key := [2]int32{d.froms[i], d.tos[i]}
			if cnt := d.deleted[key]; cnt > 0 {
				d.deleted[key] = cnt - 1
				continue
			}
			ff = append(ff, d.froms[i])
			tt = append(tt, d.tos[i])
		}
		for key := range d.deleted {
			delete(d.deleted, key)
		}
		d.froms, d.tos = ff, tt
	}
	g, err := fromEdges(d.n, d.froms, d.tos)
	if err != nil {
		return nil, err
	}
	d.snap = g
	return g, nil
}
