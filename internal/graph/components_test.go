package graph

import "testing"

func TestWCCSingleComponent(t *testing.T) {
	// directed path is one weak component
	b := NewBuilder(BuildOptions{})
	for i := int32(0); i < 9; i++ {
		b.AddEdge(i, i+1)
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	labels, count := WeaklyConnectedComponents(g)
	if count != 1 {
		t.Fatalf("count = %d", count)
	}
	for v, l := range labels {
		if l != 0 {
			t.Fatalf("label[%d] = %d", v, l)
		}
	}
}

func TestWCCMultipleComponents(t *testing.T) {
	b := NewBuilder(BuildOptions{})
	b.AddEdge(0, 1)
	b.AddEdge(2, 3)
	b.SetN(6) // nodes 4, 5 isolated
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	labels, count := WeaklyConnectedComponents(g)
	if count != 4 {
		t.Fatalf("count = %d, want 4", count)
	}
	if labels[0] != labels[1] || labels[2] != labels[3] {
		t.Fatal("edges do not share components")
	}
	if labels[0] == labels[2] || labels[4] == labels[5] {
		t.Fatal("separate components merged")
	}
}

func TestWCCEmpty(t *testing.T) {
	g, err := NewBuilder(BuildOptions{}).Build()
	if err != nil {
		t.Fatal(err)
	}
	if _, count := WeaklyConnectedComponents(g); count != 0 {
		t.Fatalf("count = %d", count)
	}
	if LargestComponent(g) != 0 {
		t.Fatal("largest component of empty graph")
	}
}

func TestLargestComponent(t *testing.T) {
	b := NewBuilder(BuildOptions{})
	// component A: 0-1-2 ; component B: 3-4
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(3, 4)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if got := LargestComponent(g); got != 3 {
		t.Fatalf("largest = %d", got)
	}
}
