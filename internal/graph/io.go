package graph

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"strings"
)

// ReadEdgeList parses a whitespace-separated edge-list stream: one
// "from to" pair per line. Lines that are empty or start with '#' or '%'
// (comment conventions of SNAP and LAW dumps) are skipped.
func ReadEdgeList(r io.Reader, opts BuildOptions) (*Graph, error) {
	b := NewBuilder(opts)
	br := bufio.NewReaderSize(r, 1<<20)
	lineNo := 0
	for {
		line, err := br.ReadString('\n')
		if len(line) > 0 {
			lineNo++
			if perr := parseEdgeLine(line, lineNo, b); perr != nil {
				return nil, perr
			}
		}
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
	}
	return b.Build()
}

// parseEdgeLine parses a single "from to" line into the builder.
func parseEdgeLine(line string, lineNo int, b *Builder) error {
	s := strings.TrimSpace(line)
	if s == "" || s[0] == '#' || s[0] == '%' {
		return nil
	}
	from, rest, err := parseInt32Field(s)
	if err != nil {
		return fmt.Errorf("graph: line %d: %v", lineNo, err)
	}
	to, rest, err := parseInt32Field(rest)
	if err != nil {
		return fmt.Errorf("graph: line %d: %v", lineNo, err)
	}
	if strings.TrimSpace(rest) != "" {
		// Tolerate trailing weight columns, reject garbage.
		if _, _, werr := parseInt32Field(strings.TrimSpace(rest)); werr != nil {
			return fmt.Errorf("graph: line %d: trailing garbage %q", lineNo, rest)
		}
	}
	b.AddEdge(from, to)
	return nil
}

// parseInt32Field reads one base-10 int32 from the front of s and returns
// the remainder. It avoids strconv to keep large loads allocation-free.
func parseInt32Field(s string) (int32, string, error) {
	i := 0
	for i < len(s) && (s[i] == ' ' || s[i] == '\t') {
		i++
	}
	if i == len(s) {
		return 0, "", fmt.Errorf("missing integer field")
	}
	neg := false
	if s[i] == '-' {
		neg = true
		i++
	}
	start := i
	var v int64
	for i < len(s) && s[i] >= '0' && s[i] <= '9' {
		v = v*10 + int64(s[i]-'0')
		if v > 1<<32 {
			return 0, "", fmt.Errorf("integer overflow in %q", s)
		}
		i++
	}
	if i == start {
		return 0, "", fmt.Errorf("malformed integer in %q", s)
	}
	if neg {
		v = -v
	}
	if v < -(1<<31) || v >= 1<<31 {
		return 0, "", fmt.Errorf("node id %d out of int32 range", v)
	}
	return int32(v), s[i:], nil
}

// WriteEdgeList emits the graph as "from to" lines in CSR order.
func WriteEdgeList(w io.Writer, g *Graph) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	var err error
	g.Edges(func(from, to int32) {
		if err == nil {
			_, err = fmt.Fprintf(bw, "%d %d\n", from, to)
		}
	})
	if err != nil {
		return err
	}
	return bw.Flush()
}

// LoadEdgeListFile reads an edge-list file from disk.
func LoadEdgeListFile(path string, opts BuildOptions) (*Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadEdgeList(f, opts)
}

// binaryMagic identifies the binary graph format; the trailing byte is a
// format version.
var binaryMagic = [8]byte{'S', 'P', 'G', 'R', 'A', 'P', 'H', 1}

// WriteBinary serializes the graph in a little-endian binary format that
// round-trips exactly and loads without re-sorting.
func WriteBinary(w io.Writer, g *Graph) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	if _, err := bw.Write(binaryMagic[:]); err != nil {
		return err
	}
	hdr := [2]int64{int64(g.n), g.M()}
	if err := binary.Write(bw, binary.LittleEndian, hdr[:]); err != nil {
		return err
	}
	for _, arr64 := range [][]int64{g.outOff, g.inOff} {
		if err := binary.Write(bw, binary.LittleEndian, arr64); err != nil {
			return err
		}
	}
	for _, arr32 := range [][]int32{g.outAdj, g.inAdj} {
		if err := binary.Write(bw, binary.LittleEndian, arr32); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadBinary loads a graph written by WriteBinary.
func ReadBinary(r io.Reader) (*Graph, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	var magic [8]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("graph: reading magic: %w", err)
	}
	if magic != binaryMagic {
		return nil, fmt.Errorf("graph: bad magic %q", magic[:])
	}
	var hdr [2]int64
	if err := binary.Read(br, binary.LittleEndian, hdr[:]); err != nil {
		return nil, err
	}
	n, m := hdr[0], hdr[1]
	if n < 0 || m < 0 || n >= 1<<31 {
		return nil, fmt.Errorf("graph: corrupt header n=%d m=%d", n, m)
	}
	g := &Graph{n: int32(n)}
	g.outOff = make([]int64, n+1)
	g.inOff = make([]int64, n+1)
	g.outAdj = make([]int32, m)
	g.inAdj = make([]int32, m)
	if err := binary.Read(br, binary.LittleEndian, g.outOff); err != nil {
		return nil, err
	}
	if err := binary.Read(br, binary.LittleEndian, g.inOff); err != nil {
		return nil, err
	}
	if err := binary.Read(br, binary.LittleEndian, g.outAdj); err != nil {
		return nil, err
	}
	if err := binary.Read(br, binary.LittleEndian, g.inAdj); err != nil {
		return nil, err
	}
	if err := validateOffsets(g.outOff, m, "out"); err != nil {
		return nil, err
	}
	if err := validateOffsets(g.inOff, m, "in"); err != nil {
		return nil, err
	}
	for _, arr := range [][]int32{g.outAdj, g.inAdj} {
		for _, v := range arr {
			if v < 0 || int64(v) >= n {
				return nil, fmt.Errorf("graph: corrupt adjacency entry %d (n=%d)", v, n)
			}
		}
	}
	g.buildInvInDeg()
	return g, nil
}

// validateOffsets checks that a CSR offset array starts at 0, is
// non-decreasing and ends at m.
func validateOffsets(off []int64, m int64, dir string) error {
	if off[0] != 0 {
		return fmt.Errorf("graph: corrupt %s offsets: first entry %d", dir, off[0])
	}
	for i := 1; i < len(off); i++ {
		if off[i] < off[i-1] {
			return fmt.Errorf("graph: corrupt %s offsets: decreasing at %d", dir, i)
		}
	}
	if off[len(off)-1] != m {
		return fmt.Errorf("graph: corrupt %s offsets: total %d, want %d", dir, off[len(off)-1], m)
	}
	return nil
}

// SaveBinaryFile writes the binary format to path.
func SaveBinaryFile(path string, g *Graph) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteBinary(f, g); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadBinaryFile reads the binary format from path.
func LoadBinaryFile(path string) (*Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadBinary(f)
}
