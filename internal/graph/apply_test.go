package graph

import (
	"sync"
	"testing"
)

// TestApplyEdgesCommitsOneEpochPerBatch: a batch of several mutations
// advances the epoch exactly once, and the returned snapshot already
// reflects every edge of the batch.
func TestApplyEdgesCommitsOneEpochPerBatch(t *testing.T) {
	d := NewDynamic(0, 0)
	if _, e0, err := d.SnapshotEpoch(); err != nil || e0 != 1 {
		t.Fatalf("boot snapshot: epoch=%d err=%v", e0, err)
	}
	g, e, err := d.ApplyEdges([][2]int32{{0, 1}, {1, 2}, {2, 0}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if e != 2 {
		t.Fatalf("batch of 3 adds advanced epoch to %d, want 2", e)
	}
	if g.M() != 3 {
		t.Fatalf("snapshot has m=%d, want 3", g.M())
	}
	g, e, err = d.ApplyEdges([][2]int32{{0, 2}}, [][2]int32{{2, 0}})
	if err != nil {
		t.Fatal(err)
	}
	if e != 3 || g.M() != 3 {
		t.Fatalf("mixed batch: epoch=%d m=%d, want 3/3", e, g.M())
	}
}

// TestApplyEdgesRejectsWithoutMutating: an invalid batch (unmatched
// removal or negative id) must leave graph, epoch and pending state
// untouched — all-or-nothing is what keeps replication streams in
// lockstep.
func TestApplyEdgesRejectsWithoutMutating(t *testing.T) {
	d := NewDynamic(0, 0)
	if _, _, err := d.ApplyEdges([][2]int32{{0, 1}}, nil); err != nil {
		t.Fatal(err)
	}
	gBefore, eBefore, _ := d.SnapshotEpoch()

	if _, _, err := d.ApplyEdges([][2]int32{{2, 3}}, [][2]int32{{5, 6}}); err == nil {
		t.Fatal("unmatched removal must reject the batch")
	}
	if _, _, err := d.ApplyEdges([][2]int32{{-1, 0}}, nil); err == nil {
		t.Fatal("negative id must reject the batch")
	}
	if _, _, err := d.ApplyEdges(nil, [][2]int32{{0, -2}}); err == nil {
		t.Fatal("negative id in removal must reject the batch")
	}
	g, e, err := d.SnapshotEpoch()
	if err != nil {
		t.Fatalf("source poisoned by rejected batch: %v", err)
	}
	if e != eBefore || g != gBefore {
		t.Fatalf("rejected batch mutated state: epoch %d -> %d", eBefore, e)
	}
	// The add from the rejected batch must not linger in the buffer.
	if g.M() != 1 {
		t.Fatalf("m=%d after rejected batches, want 1", g.M())
	}
}

// TestApplyEdgesRemovalSeesBatchAdds: a removal may match an insertion
// from the same batch (net effect applied atomically).
func TestApplyEdgesRemovalSeesBatchAdds(t *testing.T) {
	d := NewDynamic(3, 0)
	g, _, err := d.ApplyEdges([][2]int32{{0, 1}, {0, 1}}, [][2]int32{{0, 1}})
	if err != nil {
		t.Fatal(err)
	}
	if g.M() != 1 {
		t.Fatalf("m=%d, want 1 (two adds, one remove, same batch)", g.M())
	}
}

// TestApplyEdgesDeterministicAcrossInstances: two dynamics seeded the same
// and fed the same batches commit identical (epoch, graph) sequences —
// the invariant leader→follower replication is built on.
func TestApplyEdgesDeterministicAcrossInstances(t *testing.T) {
	batches := []struct{ adds, removes [][2]int32 }{
		{adds: [][2]int32{{0, 1}, {1, 2}}},
		{adds: [][2]int32{{2, 3}}, removes: [][2]int32{{0, 1}}},
		{adds: [][2]int32{{3, 0}, {0, 1}}},
		{removes: [][2]int32{{1, 2}, {2, 3}}},
	}
	a, b := NewDynamic(0, 0), NewDynamic(0, 0)
	a.SnapshotEpoch()
	b.SnapshotEpoch()
	for i, batch := range batches {
		ga, ea, errA := a.ApplyEdges(batch.adds, batch.removes)
		gb, eb, errB := b.ApplyEdges(batch.adds, batch.removes)
		if (errA == nil) != (errB == nil) {
			t.Fatalf("batch %d: errors diverge: %v vs %v", i, errA, errB)
		}
		if errA != nil {
			continue
		}
		if ea != eb {
			t.Fatalf("batch %d: epochs diverge: %d vs %d", i, ea, eb)
		}
		if ga.N() != gb.N() || ga.M() != gb.M() {
			t.Fatalf("batch %d: graphs diverge: n=%d/%d m=%d/%d", i, ga.N(), gb.N(), ga.M(), gb.M())
		}
		edgesA := map[[2]int32]int{}
		ga.Edges(func(f, to int32) { edgesA[[2]int32{f, to}]++ })
		gb.Edges(func(f, to int32) {
			edgesA[[2]int32{f, to}]--
		})
		for k, v := range edgesA {
			if v != 0 {
				t.Fatalf("batch %d: edge multiset diverges at %v", i, k)
			}
		}
	}
}

// TestApplyEdgesConcurrentWithSnapshots: concurrent snapshot readers never
// observe a half-applied batch (epoch advances exactly once per batch even
// with readers racing the writer).
func TestApplyEdgesConcurrentWithSnapshots(t *testing.T) {
	d := NewDynamic(4, 0)
	d.SnapshotEpoch()
	const batches = 50
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			g, _, err := d.SnapshotEpoch()
			if err != nil {
				t.Errorf("snapshot: %v", err)
				return
			}
			// Edges only arrive in add+remove pairs below, so a committed
			// snapshot always holds an even edge count plus the seed edge.
			if m := g.M(); m%2 != 1 && m != 0 {
				t.Errorf("observed half-applied batch: m=%d", m)
				return
			}
		}
	}()
	if _, _, err := d.ApplyEdges([][2]int32{{0, 1}}, nil); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < batches; i++ {
		if _, _, err := d.ApplyEdges([][2]int32{{1, 2}, {2, 3}}, nil); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
	if got := d.Epoch(); got != uint64(2+batches) {
		t.Fatalf("epoch=%d after %d batches, want %d", got, batches+1, 2+batches)
	}
}
