package graph

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Remapping records the translation between external node identifiers
// (arbitrary, possibly sparse 64-bit values as found in SNAP/LAW dumps)
// and the dense int32 ids used internally.
type Remapping struct {
	toExternal []int64
	toInternal map[int64]int32
}

// External returns the original identifier of internal node v.
func (r *Remapping) External(v int32) int64 {
	return r.toExternal[v]
}

// Internal returns the dense id for an external identifier.
func (r *Remapping) Internal(ext int64) (int32, bool) {
	v, ok := r.toInternal[ext]
	return v, ok
}

// Len returns the number of mapped nodes.
func (r *Remapping) Len() int {
	return len(r.toExternal)
}

// ReadEdgeListRemapped parses an edge list whose node identifiers are
// arbitrary 64-bit integers, assigning dense internal ids in first-seen
// order. Real-world edge dumps routinely have sparse id spaces; loading
// them through ReadEdgeList would allocate maxID+1 nodes.
func ReadEdgeListRemapped(rd io.Reader, opts BuildOptions) (*Graph, *Remapping, error) {
	b := NewBuilder(opts)
	remap := &Remapping{toInternal: make(map[int64]int32)}
	intern := func(ext int64) int32 {
		if v, ok := remap.toInternal[ext]; ok {
			return v
		}
		v := int32(len(remap.toExternal))
		remap.toExternal = append(remap.toExternal, ext)
		remap.toInternal[ext] = v
		return v
	}
	sc := bufio.NewScanner(rd)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || line[0] == '#' || line[0] == '%' {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return nil, nil, fmt.Errorf("graph: line %d: expected two node ids, got %q", lineNo, line)
		}
		from, err := strconv.ParseInt(fields[0], 10, 64)
		if err != nil {
			return nil, nil, fmt.Errorf("graph: line %d: %v", lineNo, err)
		}
		to, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return nil, nil, fmt.Errorf("graph: line %d: %v", lineNo, err)
		}
		b.AddEdge(intern(from), intern(to))
	}
	if err := sc.Err(); err != nil {
		return nil, nil, err
	}
	g, err := b.Build()
	if err != nil {
		return nil, nil, err
	}
	return g, remap, nil
}

// LoadEdgeListFileRemapped reads a remapped edge list from disk.
func LoadEdgeListFileRemapped(path string, opts BuildOptions) (*Graph, *Remapping, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	return ReadEdgeListRemapped(f, opts)
}
