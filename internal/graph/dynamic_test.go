package graph

import (
	"sync"
	"testing"
)

func TestDynamicBasic(t *testing.T) {
	d := NewDynamic(0, 4)
	if err := d.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := d.AddEdge(1, 2); err != nil {
		t.Fatal(err)
	}
	g, err := d.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 3 || g.M() != 2 {
		t.Fatalf("snapshot %v", g)
	}
}

func TestDynamicNegativeEdge(t *testing.T) {
	d := NewDynamic(0, 0)
	if err := d.AddEdge(-1, 0); err == nil {
		t.Fatal("negative edge accepted")
	}
}

func TestDynamicSnapshotCached(t *testing.T) {
	d := NewDynamic(0, 0)
	if err := d.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	a, err := d.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	b, err := d.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("snapshot not cached without mutation")
	}
	if err := d.AddEdge(1, 2); err != nil {
		t.Fatal(err)
	}
	c, err := d.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if c == a {
		t.Fatal("snapshot not invalidated by mutation")
	}
	if c.M() != 2 {
		t.Fatalf("m = %d", c.M())
	}
}

func TestDynamicRemoveEdge(t *testing.T) {
	d := NewDynamic(0, 0)
	for i := 0; i < 3; i++ {
		if err := d.AddEdge(0, 1); err != nil {
			t.Fatal(err)
		}
	}
	d.RemoveEdge(0, 1)
	g, err := d.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if g.M() != 2 {
		t.Fatalf("m = %d after one deletion of a triple edge", g.M())
	}
}

func TestDynamicRemoveMissing(t *testing.T) {
	d := NewDynamic(0, 0)
	if err := d.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	d.RemoveEdge(5, 6)
	if _, err := d.Snapshot(); err == nil {
		t.Fatal("removal of missing edge not reported")
	}
	// Exactly one snapshot fails: the unmatched deletion is discarded and
	// the source recovers instead of being poisoned forever.
	g, err := d.Snapshot()
	if err != nil {
		t.Fatalf("source did not recover: %v", err)
	}
	if g.M() != 1 {
		t.Fatalf("recovered m = %d, want 1", g.M())
	}
	// Excess removals of an existing edge drop only the excess: the one
	// matched deletion still applies on recovery.
	d.RemoveEdge(0, 1)
	d.RemoveEdge(0, 1)
	if _, err := d.Snapshot(); err == nil {
		t.Fatal("excess removal not reported")
	}
	g, err = d.Snapshot()
	if err != nil {
		t.Fatalf("source did not recover from excess removal: %v", err)
	}
	if g.M() != 0 {
		t.Fatalf("recovered m = %d, want 0 (matched deletion applied)", g.M())
	}
}

func TestDynamicFromGraph(t *testing.T) {
	base := MustFromPairs([2]int32{0, 1}, [2]int32{1, 2})
	d := FromGraph(base)
	if err := d.AddEdge(2, 0); err != nil {
		t.Fatal(err)
	}
	g, err := d.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if g.M() != 3 || g.N() != 3 {
		t.Fatalf("snapshot %v", g)
	}
}

func TestDynamicAddNode(t *testing.T) {
	d := NewDynamic(0, 0)
	d.AddNode(10)
	g, err := d.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 10 || g.M() != 0 {
		t.Fatalf("snapshot %v", g)
	}
}

func TestDynamicPendingEdges(t *testing.T) {
	d := NewDynamic(0, 0)
	if d.PendingEdges() != 0 {
		t.Fatal("fresh graph has pending edges")
	}
	if err := d.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	if d.PendingEdges() != 1 {
		t.Fatalf("pending = %d", d.PendingEdges())
	}
}

func TestDynamicConcurrent(t *testing.T) {
	d := NewDynamic(0, 0)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				if err := d.AddEdge(int32(w), int32(i%50)); err != nil {
					t.Error(err)
					return
				}
				if i%50 == 0 {
					if _, err := d.Snapshot(); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	g, err := d.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if g.M() != 800 {
		t.Fatalf("m = %d, want 800", g.M())
	}
}

// NewDynamic must honor both capacity hints: nHint reserves node ids like
// AddNode, and mHint presizes the edge buffer.
func TestNewDynamicHints(t *testing.T) {
	d := NewDynamic(10, 64)
	if got := cap(d.froms); got < 64 {
		t.Fatalf("edge buffer cap = %d, want >= 64", got)
	}
	g, err := d.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 10 || g.M() != 0 {
		t.Fatalf("snapshot %v, want n=10 m=0", g)
	}
	// Hints are floors, not caps: the graph still grows past them.
	if err := d.AddEdge(20, 21); err != nil {
		t.Fatal(err)
	}
	g, err = d.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 22 {
		t.Fatalf("n = %d after growth past nHint", g.N())
	}
	// Negative hints are clamped, not panics.
	if g, err := NewDynamic(-3, -5).Snapshot(); err != nil || g.N() != 0 {
		t.Fatalf("negative hints: %v, %v", g, err)
	}
}

// Epochs must be monotonic, advance exactly once per materialized rebuild,
// and stay put across cached snapshots.
func TestDynamicEpoch(t *testing.T) {
	d := NewDynamic(0, 0)
	if d.Epoch() != 0 {
		t.Fatalf("fresh epoch = %d", d.Epoch())
	}
	if err := d.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	g1, e1, err := d.SnapshotEpoch()
	if err != nil {
		t.Fatal(err)
	}
	if e1 != 1 {
		t.Fatalf("first epoch = %d, want 1", e1)
	}
	// Cached snapshot: same graph, same epoch.
	g2, e2, err := d.SnapshotEpoch()
	if err != nil {
		t.Fatal(err)
	}
	if g2 != g1 || e2 != e1 {
		t.Fatalf("cached snapshot changed: epoch %d vs %d", e2, e1)
	}
	if d.Epoch() != e1 {
		t.Fatalf("Epoch() = %d, want %d", d.Epoch(), e1)
	}
	// A mutation alone does not advance the committed epoch...
	if err := d.AddEdge(1, 2); err != nil {
		t.Fatal(err)
	}
	if d.Epoch() != e1 {
		t.Fatalf("pending mutation advanced epoch to %d", d.Epoch())
	}
	// ...the next snapshot does, by exactly one.
	g3, e3, err := d.SnapshotEpoch()
	if err != nil {
		t.Fatal(err)
	}
	if g3 == g1 || e3 != e1+1 {
		t.Fatalf("rebuild epoch = %d, want %d", e3, e1+1)
	}
	// GraphSnapshot is the same observation.
	g4, e4, err := d.GraphSnapshot()
	if err != nil || g4 != g3 || e4 != e3 {
		t.Fatalf("GraphSnapshot = (%v, %d, %v)", g4, e4, err)
	}
}

// A failed snapshot must not consume an epoch: the recovery rebuild that
// follows is still one past the last committed state.
func TestDynamicEpochSkipsFailedRebuild(t *testing.T) {
	d := NewDynamic(0, 0)
	if err := d.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	if _, e, err := d.SnapshotEpoch(); err != nil || e != 1 {
		t.Fatalf("seed snapshot: epoch %d, %v", e, err)
	}
	d.RemoveEdge(7, 8) // nonexistent: next rebuild fails once
	if _, _, err := d.SnapshotEpoch(); err == nil {
		t.Fatal("bad deletion not reported")
	}
	if d.Epoch() != 1 {
		t.Fatalf("failed rebuild advanced epoch to %d", d.Epoch())
	}
	if _, e, err := d.SnapshotEpoch(); err != nil || e != 2 {
		t.Fatalf("recovery snapshot: epoch %d, %v", e, err)
	}
}

// The immutable Graph is a GraphSource frozen at epoch 0.
func TestStaticGraphSnapshot(t *testing.T) {
	g := MustFromPairs([2]int32{0, 1})
	s, e, err := g.GraphSnapshot()
	if err != nil || s != g || e != 0 {
		t.Fatalf("GraphSnapshot = (%v, %d, %v)", s, e, err)
	}
}

func TestDynamicDeletionThenReuse(t *testing.T) {
	d := NewDynamic(0, 0)
	for i := int32(0); i < 10; i++ {
		if err := d.AddEdge(i, (i+1)%10); err != nil {
			t.Fatal(err)
		}
	}
	d.RemoveEdge(3, 4)
	g1, err := d.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if g1.M() != 9 {
		t.Fatalf("m = %d", g1.M())
	}
	// deletions consumed: another snapshot after a new edge is consistent
	if err := d.AddEdge(3, 4); err != nil {
		t.Fatal(err)
	}
	g2, err := d.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if g2.M() != 10 {
		t.Fatalf("m = %d after re-adding", g2.M())
	}
}
