package graph

import (
	"sync"
	"testing"
)

func TestDynamicBasic(t *testing.T) {
	d := NewDynamic(0, 4)
	if err := d.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := d.AddEdge(1, 2); err != nil {
		t.Fatal(err)
	}
	g, err := d.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 3 || g.M() != 2 {
		t.Fatalf("snapshot %v", g)
	}
}

func TestDynamicNegativeEdge(t *testing.T) {
	d := NewDynamic(0, 0)
	if err := d.AddEdge(-1, 0); err == nil {
		t.Fatal("negative edge accepted")
	}
}

func TestDynamicSnapshotCached(t *testing.T) {
	d := NewDynamic(0, 0)
	if err := d.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	a, err := d.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	b, err := d.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("snapshot not cached without mutation")
	}
	if err := d.AddEdge(1, 2); err != nil {
		t.Fatal(err)
	}
	c, err := d.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if c == a {
		t.Fatal("snapshot not invalidated by mutation")
	}
	if c.M() != 2 {
		t.Fatalf("m = %d", c.M())
	}
}

func TestDynamicRemoveEdge(t *testing.T) {
	d := NewDynamic(0, 0)
	for i := 0; i < 3; i++ {
		if err := d.AddEdge(0, 1); err != nil {
			t.Fatal(err)
		}
	}
	d.RemoveEdge(0, 1)
	g, err := d.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if g.M() != 2 {
		t.Fatalf("m = %d after one deletion of a triple edge", g.M())
	}
}

func TestDynamicRemoveMissing(t *testing.T) {
	d := NewDynamic(0, 0)
	if err := d.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	d.RemoveEdge(5, 6)
	if _, err := d.Snapshot(); err == nil {
		t.Fatal("removal of missing edge not reported")
	}
}

func TestDynamicFromGraph(t *testing.T) {
	base := MustFromPairs([2]int32{0, 1}, [2]int32{1, 2})
	d := FromGraph(base)
	if err := d.AddEdge(2, 0); err != nil {
		t.Fatal(err)
	}
	g, err := d.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if g.M() != 3 || g.N() != 3 {
		t.Fatalf("snapshot %v", g)
	}
}

func TestDynamicAddNode(t *testing.T) {
	d := NewDynamic(0, 0)
	d.AddNode(10)
	g, err := d.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 10 || g.M() != 0 {
		t.Fatalf("snapshot %v", g)
	}
}

func TestDynamicPendingEdges(t *testing.T) {
	d := NewDynamic(0, 0)
	if d.PendingEdges() != 0 {
		t.Fatal("fresh graph has pending edges")
	}
	if err := d.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	if d.PendingEdges() != 1 {
		t.Fatalf("pending = %d", d.PendingEdges())
	}
}

func TestDynamicConcurrent(t *testing.T) {
	d := NewDynamic(0, 0)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				if err := d.AddEdge(int32(w), int32(i%50)); err != nil {
					t.Error(err)
					return
				}
				if i%50 == 0 {
					if _, err := d.Snapshot(); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	g, err := d.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if g.M() != 800 {
		t.Fatalf("m = %d, want 800", g.M())
	}
}

func TestDynamicDeletionThenReuse(t *testing.T) {
	d := NewDynamic(0, 0)
	for i := int32(0); i < 10; i++ {
		if err := d.AddEdge(i, (i+1)%10); err != nil {
			t.Fatal(err)
		}
	}
	d.RemoveEdge(3, 4)
	g1, err := d.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if g1.M() != 9 {
		t.Fatalf("m = %d", g1.M())
	}
	// deletions consumed: another snapshot after a new edge is consistent
	if err := d.AddEdge(3, 4); err != nil {
		t.Fatal(err)
	}
	g2, err := d.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if g2.M() != 10 {
		t.Fatalf("m = %d after re-adding", g2.M())
	}
}
