package graph

// WeaklyConnectedComponents labels each node with a component id in
// [0, count) treating every edge as undirected, and returns the labels
// with the component count. Useful when preparing graphs for SimRank:
// query nodes in tiny components have near-empty similarity rows.
func WeaklyConnectedComponents(g *Graph) (labels []int32, count int32) {
	n := g.N()
	labels = make([]int32, n)
	for i := range labels {
		labels[i] = -1
	}
	var queue []int32
	for start := int32(0); start < n; start++ {
		if labels[start] >= 0 {
			continue
		}
		labels[start] = count
		queue = append(queue[:0], start)
		for len(queue) > 0 {
			v := queue[len(queue)-1]
			queue = queue[:len(queue)-1]
			for _, w := range g.Out(v) {
				if labels[w] < 0 {
					labels[w] = count
					queue = append(queue, w)
				}
			}
			for _, w := range g.In(v) {
				if labels[w] < 0 {
					labels[w] = count
					queue = append(queue, w)
				}
			}
		}
		count++
	}
	return labels, count
}

// LargestComponent returns the node count of the largest weakly connected
// component.
func LargestComponent(g *Graph) int64 {
	labels, count := WeaklyConnectedComponents(g)
	if count == 0 {
		return 0
	}
	sizes := make([]int64, count)
	for _, l := range labels {
		sizes[l]++
	}
	var max int64
	for _, s := range sizes {
		if s > max {
			max = s
		}
	}
	return max
}
