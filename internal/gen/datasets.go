package gen

import (
	"fmt"

	"github.com/simrank/simpush/internal/graph"
)

// Dataset describes one of the nine synthetic stand-ins for the paper's
// Table 4 datasets. Scale 1.0 reproduces the default roster below; smaller
// scales shrink n proportionally (never below 1000 nodes) so tests and
// quick bench runs stay fast.
type Dataset struct {
	Name     string // stand-in name, e.g. "in2004-sim"
	PaperRef string // the real dataset it substitutes
	Kind     string // generator family
	N        int32  // node count at scale 1.0
	Directed bool
	Build    func(n int32, seed uint64) (*graph.Graph, error)
}

// Roster is the ordered list of the nine dataset stand-ins, mirroring
// Table 4 of the paper (same order, same directedness, matched m/n ratio
// and degree-distribution family, reduced scale).
var Roster = []Dataset{
	{
		Name: "in2004-sim", PaperRef: "In-2004 (web, 1.4M/16.5M)", Kind: "copying",
		N: 40000, Directed: true,
		Build: func(n int32, seed uint64) (*graph.Graph, error) {
			return CopyingModel(n, 12, 0.35, seed) // avg deg ~12 like In-2004
		},
	},
	{
		Name: "dblp-sim", PaperRef: "DBLP (collab, 5.4M/17.3M, undirected)", Kind: "ba",
		N: 60000, Directed: false,
		Build: func(n int32, seed uint64) (*graph.Graph, error) {
			return BarabasiAlbert(n, 2, seed) // m/n ~ 3.2 like DBLP
		},
	},
	{
		Name: "pokec-sim", PaperRef: "Pokec (social, 1.6M/30.6M)", Kind: "sbm",
		N: 40000, Directed: true,
		Build: func(n int32, seed uint64) (*graph.Graph, error) {
			return SBM(n, 40, 14, 5, seed) // avg deg ~18.8 like Pokec
		},
	},
	{
		Name: "livejournal-sim", PaperRef: "LiveJournal (social, 4.8M/68.5M)", Kind: "forestfire",
		N: 60000, Directed: true,
		Build: func(n int32, seed uint64) (*graph.Graph, error) {
			return ForestFire(n, 0.48, seed) // avg deg ~14 like LiveJournal
		},
	},
	{
		Name: "it2004-sim", PaperRef: "IT-2004 (web, 41.3M/1.14B)", Kind: "copying",
		N: 120000, Directed: true,
		Build: func(n int32, seed uint64) (*graph.Graph, error) {
			return CopyingModel(n, 27, 0.3, seed) // avg deg ~27.5 like IT-2004
		},
	},
	{
		Name: "twitter-sim", PaperRef: "Twitter (social, 41.7M/1.47B)", Kind: "pa",
		N: 100000, Directed: true,
		Build: func(n int32, seed uint64) (*graph.Graph, error) {
			// High preferential-attachment bias: heavy in-degree tail and
			// dense celebrity neighborhoods, the structure PRSim [33] calls
			// "hard" for SimRank.
			return PreferentialAttachment(n, 35, 0.85, seed)
		},
	},
	{
		Name: "friendster-sim", PaperRef: "Friendster (social, 65.6M/3.6B, undirected)", Kind: "ba",
		N: 120000, Directed: false,
		Build: func(n int32, seed uint64) (*graph.Graph, error) {
			return BarabasiAlbert(n, 27, seed) // avg (directed) deg ~55 like Friendster
		},
	},
	{
		Name: "uk-sim", PaperRef: "UK (web, 133.6M/5.48B)", Kind: "copying",
		N: 200000, Directed: true,
		Build: func(n int32, seed uint64) (*graph.Graph, error) {
			return CopyingModel(n, 40, 0.25, seed) // avg deg ~41 like UK
		},
	},
	{
		Name: "clueweb-sim", PaperRef: "ClueWeb (web, 1.68B/7.94B)", Kind: "copying",
		N: 400000, Directed: true,
		Build: func(n int32, seed uint64) (*graph.Graph, error) {
			return CopyingModel(n, 5, 0.3, seed) // very sparse: avg deg ~4.7 like ClueWeb
		},
	},
}

// ByName returns the roster entry with the given name.
func ByName(name string) (Dataset, error) {
	for _, d := range Roster {
		if d.Name == name {
			return d, nil
		}
	}
	return Dataset{}, fmt.Errorf("gen: unknown dataset %q", name)
}

// Generate builds the dataset at the given scale with a fixed per-dataset
// seed (stable across runs, distinct across datasets).
func (d Dataset) Generate(scale float64) (*graph.Graph, error) {
	n := int32(float64(d.N) * scale)
	if n < 1000 {
		n = 1000
	}
	seed := uint64(0x5157_0000)
	for _, c := range d.Name {
		seed = seed*131 + uint64(c)
	}
	return d.Build(n, seed)
}

// SmallEight returns the first eight datasets (the paper's Figures 4-6
// cover all but ClueWeb, which Figure 7 treats separately).
func SmallEight() []Dataset {
	return Roster[:8]
}
