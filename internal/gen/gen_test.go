package gen

import (
	"testing"

	"github.com/simrank/simpush/internal/graph"
)

func TestErdosRenyi(t *testing.T) {
	g, err := ErdosRenyi(100, 500, 1)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 100 || g.M() != 500 {
		t.Fatalf("got %v", g)
	}
	g.Edges(func(f, to int32) {
		if f == to {
			t.Fatalf("self loop %d", f)
		}
	})
}

func TestErdosRenyiDeterministic(t *testing.T) {
	a, _ := ErdosRenyi(50, 200, 9)
	b, _ := ErdosRenyi(50, 200, 9)
	for v := int32(0); v < 50; v++ {
		if len(a.Out(v)) != len(b.Out(v)) {
			t.Fatal("same seed produced different graphs")
		}
	}
	c, _ := ErdosRenyi(50, 200, 10)
	diff := false
	for v := int32(0); v < 50 && !diff; v++ {
		if len(a.Out(v)) != len(c.Out(v)) {
			diff = true
		}
	}
	if !diff {
		t.Log("warning: different seeds produced identical degree sequences (possible but unlikely)")
	}
}

func TestErdosRenyiErrors(t *testing.T) {
	if _, err := ErdosRenyi(1, 1, 0); err == nil {
		t.Fatal("n=1 accepted")
	}
	if _, err := ErdosRenyi(3, 100, 0); err == nil {
		t.Fatal("m > n(n-1) accepted")
	}
}

func TestBarabasiAlbertSymmetric(t *testing.T) {
	g, err := BarabasiAlbert(500, 3, 7)
	if err != nil {
		t.Fatal(err)
	}
	s := graph.ComputeStats(g)
	if !s.Symmetric {
		t.Fatal("BA graph not symmetric")
	}
	if s.MaxInDeg < 10 {
		t.Fatalf("BA graph lacks hubs: max in-degree %d", s.MaxInDeg)
	}
	if g.N() != 500 {
		t.Fatalf("n = %d", g.N())
	}
}

func TestBarabasiAlbertErrors(t *testing.T) {
	if _, err := BarabasiAlbert(1, 1, 0); err == nil {
		t.Fatal("n=1 accepted")
	}
	if _, err := BarabasiAlbert(10, 0, 0); err == nil {
		t.Fatal("k=0 accepted")
	}
}

func TestPreferentialAttachmentSkew(t *testing.T) {
	g, err := PreferentialAttachment(2000, 5, 0.85, 3)
	if err != nil {
		t.Fatal(err)
	}
	s := graph.ComputeStats(g)
	if s.Symmetric {
		t.Fatal("PA graph should be directed")
	}
	// Heavy tail: max in-degree should far exceed the average.
	if float64(s.MaxInDeg) < 10*s.AvgInDeg {
		t.Fatalf("in-degree tail too light: max=%d avg=%.1f", s.MaxInDeg, s.AvgInDeg)
	}
}

func TestCopyingModelPowerLaw(t *testing.T) {
	g, err := CopyingModel(5000, 10, 0.3, 11)
	if err != nil {
		t.Fatal(err)
	}
	s := graph.ComputeStats(g)
	if float64(s.MaxInDeg) < 5*s.AvgInDeg {
		t.Fatalf("copying model lacks power-law tail: max=%d avg=%.1f", s.MaxInDeg, s.AvgInDeg)
	}
	if s.AvgOutDeg < 5 || s.AvgOutDeg > 11 {
		t.Fatalf("avg out-degree %v out of expected band", s.AvgOutDeg)
	}
}

func TestCopyingModelErrors(t *testing.T) {
	if _, err := CopyingModel(100, 5, 0, 0); err == nil {
		t.Fatal("beta=0 accepted")
	}
	if _, err := CopyingModel(100, 5, 1, 0); err == nil {
		t.Fatal("beta=1 accepted")
	}
}

func TestSBMCommunityStructure(t *testing.T) {
	g, err := SBM(1000, 10, 8, 2, 5)
	if err != nil {
		t.Fatal(err)
	}
	// Count within- vs cross-block edges; within should dominate.
	blockSize := int32(100)
	within, cross := 0, 0
	g.Edges(func(f, to int32) {
		if f/blockSize == to/blockSize {
			within++
		} else {
			cross++
		}
	})
	if within <= cross {
		t.Fatalf("SBM: within=%d cross=%d", within, cross)
	}
}

func TestForestFire(t *testing.T) {
	g, err := ForestFire(2000, 0.4, 21)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 2000 {
		t.Fatalf("n=%d", g.N())
	}
	if g.M() < 2000 {
		t.Fatalf("forest fire too sparse: m=%d", g.M())
	}
}

func TestForestFireErrors(t *testing.T) {
	if _, err := ForestFire(1, 0.4, 0); err == nil {
		t.Fatal("n=1 accepted")
	}
	if _, err := ForestFire(10, 1.5, 0); err == nil {
		t.Fatal("p=1.5 accepted")
	}
}

func TestToyGraphs(t *testing.T) {
	if g := Cycle(5); g.M() != 5 || g.InDeg(0) != 1 {
		t.Fatalf("cycle: %v", g)
	}
	if g := Star(6); g.InDeg(0) != 5 || g.OutDeg(0) != 0 {
		t.Fatalf("star: %v", g)
	}
	if g := Complete(4); g.M() != 12 {
		t.Fatalf("complete: %v", g)
	}
	if g := Path(4); g.M() != 3 {
		t.Fatalf("path: %v", g)
	}
	if g := Grid(3, 4); g.N() != 12 || g.M() != int64(2*3*4-3-4) {
		t.Fatalf("grid: %v", g)
	}
}

func TestPaperFigure1Levels(t *testing.T) {
	g := PaperFigure1()
	// u=0 must have in-neighbors wa=1, wb=2, wc=3.
	if g.InDeg(0) != 3 {
		t.Fatalf("u in-degree = %d, want 3", g.InDeg(0))
	}
	// we=5 must point at both wa=1 and wb=2.
	outs := map[int32]bool{}
	for _, w := range g.Out(5) {
		outs[w] = true
	}
	if !outs[1] || !outs[2] {
		t.Fatalf("we out-neighbors = %v", g.Out(5))
	}
}

func TestRosterGenerates(t *testing.T) {
	for _, d := range Roster {
		g, err := d.Generate(0.02) // tiny scale for CI speed (min 1000 nodes)
		if err != nil {
			t.Fatalf("%s: %v", d.Name, err)
		}
		if g.N() < 1000 {
			t.Fatalf("%s: n=%d below floor", d.Name, g.N())
		}
		s := graph.ComputeStats(g)
		if d.Directed == s.Symmetric {
			t.Fatalf("%s: directedness mismatch (want directed=%v, symmetric=%v)", d.Name, d.Directed, s.Symmetric)
		}
	}
}

func TestRosterStable(t *testing.T) {
	d := Roster[0]
	a, err := d.Generate(0.02)
	if err != nil {
		t.Fatal(err)
	}
	b, err := d.Generate(0.02)
	if err != nil {
		t.Fatal(err)
	}
	if a.M() != b.M() {
		t.Fatal("dataset generation not deterministic")
	}
}

func TestByName(t *testing.T) {
	if _, err := ByName("uk-sim"); err != nil {
		t.Fatal(err)
	}
	if _, err := ByName("nope"); err == nil {
		t.Fatal("unknown dataset accepted")
	}
}
