// Package gen generates the synthetic graphs used as stand-ins for the
// paper's nine real datasets (Table 4), plus toy graphs for unit tests.
//
// The paper evaluates on real web graphs (In-2004, IT-2004, UK, ClueWeb),
// social networks (Pokec, LiveJournal, Twitter, Friendster) and a
// collaboration network (DBLP). Those corpora are not redistributable at
// laptop scale, so each generator below reproduces the structural property
// that drives SimRank algorithm behaviour on its family:
//
//   - CopyingModel: Kumar et al.'s linear-growth copying model; yields
//     power-law in-degrees and the link-locality of web graphs.
//   - PreferentialAttachment: directed Barabási–Albert-style growth for
//     follower networks (Twitter-like heavy in-degree tails).
//   - BarabasiAlbert: undirected preferential attachment (DBLP/Friendster
//     style collaboration/friendship networks; symmetrized at build time).
//   - SBM: stochastic block model with community structure (Pokec-like).
//   - ForestFire: Leskovec et al.'s forest-fire model; produces the dense
//     local community structure that makes Twitter "hard" per PRSim [33].
//   - ErdosRenyi: G(n, m) baseline without degree skew.
//
// All generators are deterministic in (parameters, seed).
package gen

import (
	"fmt"

	"github.com/simrank/simpush/internal/graph"
	"github.com/simrank/simpush/internal/rnd"
)

// ErdosRenyi samples a directed multigraph-free G(n, m): m distinct directed
// edges chosen uniformly at random, no self loops.
func ErdosRenyi(n int32, m int64, seed uint64) (*graph.Graph, error) {
	if n <= 1 {
		return nil, fmt.Errorf("gen: ErdosRenyi needs n > 1, got %d", n)
	}
	maxM := int64(n) * int64(n-1)
	if m > maxM {
		return nil, fmt.Errorf("gen: ErdosRenyi m=%d exceeds n(n-1)=%d", m, maxM)
	}
	r := rnd.New(seed)
	b := graph.NewBuilder(graph.BuildOptions{})
	b.SetN(n)
	b.Grow(int(m))
	seen := make(map[int64]struct{}, m)
	for int64(len(seen)) < m {
		f := r.Int31n(n)
		t := r.Int31n(n)
		if f == t {
			continue
		}
		key := int64(f)*int64(n) + int64(t)
		if _, dup := seen[key]; dup {
			continue
		}
		seen[key] = struct{}{}
		b.AddEdge(f, t)
	}
	return b.Build()
}

// BarabasiAlbert grows an undirected preferential-attachment graph: each new
// node attaches to k existing nodes chosen proportionally to degree.
// The result is symmetrized (each undirected edge becomes two directed ones).
func BarabasiAlbert(n int32, k int, seed uint64) (*graph.Graph, error) {
	if n < 2 || k < 1 {
		return nil, fmt.Errorf("gen: BarabasiAlbert needs n >= 2, k >= 1 (got n=%d k=%d)", n, k)
	}
	r := rnd.New(seed)
	b := graph.NewBuilder(graph.BuildOptions{Undirected: true, Dedup: true, DropSelfLoops: true})
	b.SetN(n)
	// endpoint multiset for degree-proportional sampling
	endpoints := make([]int32, 0, 2*int(n)*k)
	// seed clique of k+1 nodes
	m0 := int32(k + 1)
	if m0 > n {
		m0 = n
	}
	for i := int32(0); i < m0; i++ {
		for j := i + 1; j < m0; j++ {
			b.AddEdge(i, j)
			endpoints = append(endpoints, i, j)
		}
	}
	for v := m0; v < n; v++ {
		for e := 0; e < k; e++ {
			var target int32
			if len(endpoints) == 0 {
				target = r.Int31n(v)
			} else {
				target = endpoints[r.Intn(len(endpoints))]
			}
			if target == v {
				target = r.Int31n(v)
			}
			b.AddEdge(v, target)
			endpoints = append(endpoints, v, target)
		}
	}
	return b.Build()
}

// PreferentialAttachment grows a directed follower-style graph: each new
// node emits k edges; with probability pPref the target is chosen
// proportionally to in-degree (rich-get-richer), otherwise uniformly.
func PreferentialAttachment(n int32, k int, pPref float64, seed uint64) (*graph.Graph, error) {
	if n < 2 || k < 1 {
		return nil, fmt.Errorf("gen: PreferentialAttachment needs n >= 2, k >= 1")
	}
	r := rnd.New(seed)
	b := graph.NewBuilder(graph.BuildOptions{DropSelfLoops: true, Dedup: true})
	b.SetN(n)
	b.Grow(int(n) * k)
	targets := make([]int32, 0, int(n)*k)
	b.AddEdge(1, 0)
	targets = append(targets, 0)
	for v := int32(2); v < n; v++ {
		for e := 0; e < k; e++ {
			var t int32
			if len(targets) > 0 && r.Bernoulli(pPref) {
				t = targets[r.Intn(len(targets))]
			} else {
				t = r.Int31n(v)
			}
			if t == v {
				continue
			}
			b.AddEdge(v, t)
			targets = append(targets, t)
		}
	}
	return b.Build()
}

// CopyingModel implements the Kumar et al. linear-growth copying model for
// web graphs. Each new node v picks a random prototype p among earlier
// nodes; each of v's k out-links copies the corresponding out-link of p
// with probability 1-beta, and links to a uniform random earlier node with
// probability beta. In-degrees follow a power law with exponent ~(2-beta)/(1-beta).
func CopyingModel(n int32, k int, beta float64, seed uint64) (*graph.Graph, error) {
	if n < 2 || k < 1 {
		return nil, fmt.Errorf("gen: CopyingModel needs n >= 2, k >= 1")
	}
	if beta <= 0 || beta >= 1 {
		return nil, fmt.Errorf("gen: CopyingModel beta must be in (0,1), got %v", beta)
	}
	r := rnd.New(seed)
	b := graph.NewBuilder(graph.BuildOptions{DropSelfLoops: true, Dedup: true})
	b.SetN(n)
	b.Grow(int(n) * k)
	// outLinks[v] holds v's chosen out-targets for prototype copying.
	outLinks := make([][]int32, n)
	outLinks[0] = nil
	for v := int32(1); v < n; v++ {
		proto := r.Int31n(v)
		links := make([]int32, 0, k)
		for e := 0; e < k; e++ {
			var t int32
			if !r.Bernoulli(beta) && e < len(outLinks[proto]) {
				t = outLinks[proto][e]
			} else {
				t = r.Int31n(v)
			}
			if t == v {
				continue
			}
			links = append(links, t)
			b.AddEdge(v, t)
		}
		outLinks[v] = links
	}
	return b.Build()
}

// SBM samples a stochastic block model with `blocks` equal-size communities.
// Expected within-community out-degree is kIn and cross-community out-degree
// is kOut per node; edges are directed.
func SBM(n int32, blocks int32, kIn, kOut float64, seed uint64) (*graph.Graph, error) {
	if n < 2 || blocks < 1 || blocks > n {
		return nil, fmt.Errorf("gen: SBM needs 1 <= blocks <= n")
	}
	r := rnd.New(seed)
	b := graph.NewBuilder(graph.BuildOptions{DropSelfLoops: true, Dedup: true})
	b.SetN(n)
	blockSize := n / blocks
	if blockSize == 0 {
		blockSize = 1
	}
	for v := int32(0); v < n; v++ {
		bv := v / blockSize
		if bv >= blocks {
			bv = blocks - 1
		}
		lo := bv * blockSize
		hi := lo + blockSize
		if bv == blocks-1 {
			hi = n
		}
		// Within-community edges: Poisson-ish via fixed count with jitter.
		din := int(kIn)
		if r.Float64() < kIn-float64(din) {
			din++
		}
		for e := 0; e < din && hi-lo > 1; e++ {
			t := lo + r.Int31n(hi-lo)
			if t != v {
				b.AddEdge(v, t)
			}
		}
		dout := int(kOut)
		if r.Float64() < kOut-float64(dout) {
			dout++
		}
		for e := 0; e < dout; e++ {
			t := r.Int31n(n)
			if t/blockSize != bv && t != v {
				b.AddEdge(v, t)
			}
		}
	}
	return b.Build()
}

// ForestFire implements Leskovec et al.'s forest-fire model with forward
// and backward burning. Each new node picks an ambassador and "burns"
// through its neighborhood — following out-links with geometric(pFwd)
// fan-out and in-links with geometric(0.6·pFwd) fan-out — then links to
// every burned node. Larger pFwd yields denser, more clustered graphs
// with the community structure of social networks.
func ForestFire(n int32, pFwd float64, seed uint64) (*graph.Graph, error) {
	if n < 2 {
		return nil, fmt.Errorf("gen: ForestFire needs n >= 2")
	}
	if pFwd <= 0 || pFwd >= 1 {
		return nil, fmt.Errorf("gen: ForestFire pFwd must be in (0,1)")
	}
	r := rnd.New(seed)
	b := graph.NewBuilder(graph.BuildOptions{DropSelfLoops: true, Dedup: true})
	b.SetN(n)
	// Out- and in-adjacency mirrors for burning through settled nodes.
	adj := make([][]int32, n)
	radj := make([][]int32, n)
	b.AddEdge(1, 0)
	adj[1] = []int32{0}
	radj[0] = []int32{1}
	visited := make([]int32, n) // visit stamp per node
	stamp := int32(0)
	pBwd := 0.6 * pFwd
	const maxBurn = 200 // cap burn size to keep generation near-linear
	// spread follows a geometric(p) number of unvisited neighbors of x.
	spread := func(links []int32, p float64, stamp int32, queue []int32) []int32 {
		nf := 0
		for r.Bernoulli(p) {
			nf++
		}
		for i := 0; i < nf && len(links) > 0; i++ {
			t := links[r.Intn(len(links))]
			if visited[t] != stamp {
				visited[t] = stamp
				queue = append(queue, t)
			}
		}
		return queue
	}
	for v := int32(2); v < n; v++ {
		stamp++
		amb := r.Int31n(v)
		queue := []int32{amb}
		visited[amb] = stamp
		burned := []int32{}
		for len(queue) > 0 && len(burned) < maxBurn {
			x := queue[0]
			queue = queue[1:]
			burned = append(burned, x)
			queue = spread(adj[x], pFwd, stamp, queue)
			queue = spread(radj[x], pBwd, stamp, queue)
		}
		links := make([]int32, 0, len(burned))
		for _, t := range burned {
			b.AddEdge(v, t)
			links = append(links, t)
			radj[t] = append(radj[t], v)
		}
		adj[v] = links
	}
	return b.Build()
}

// --- Toy graphs for tests and examples ---

// Cycle returns the directed n-cycle 0->1->...->n-1->0.
func Cycle(n int32) *graph.Graph {
	b := graph.NewBuilder(graph.BuildOptions{})
	b.SetN(n)
	for v := int32(0); v < n; v++ {
		b.AddEdge(v, (v+1)%n)
	}
	g, err := b.Build()
	if err != nil {
		panic(err)
	}
	return g
}

// Star returns a directed star with leaves 1..n-1 pointing at hub 0.
func Star(n int32) *graph.Graph {
	b := graph.NewBuilder(graph.BuildOptions{})
	b.SetN(n)
	for v := int32(1); v < n; v++ {
		b.AddEdge(v, 0)
	}
	g, err := b.Build()
	if err != nil {
		panic(err)
	}
	return g
}

// Complete returns the complete directed graph on n nodes (no self loops).
func Complete(n int32) *graph.Graph {
	b := graph.NewBuilder(graph.BuildOptions{})
	b.SetN(n)
	for v := int32(0); v < n; v++ {
		for w := int32(0); w < n; w++ {
			if v != w {
				b.AddEdge(v, w)
			}
		}
	}
	g, err := b.Build()
	if err != nil {
		panic(err)
	}
	return g
}

// Path returns the directed path 0->1->...->n-1.
func Path(n int32) *graph.Graph {
	b := graph.NewBuilder(graph.BuildOptions{})
	b.SetN(n)
	for v := int32(0); v+1 < n; v++ {
		b.AddEdge(v, v+1)
	}
	g, err := b.Build()
	if err != nil {
		panic(err)
	}
	return g
}

// Grid returns a directed rows x cols grid with edges right and down.
func Grid(rows, cols int32) *graph.Graph {
	b := graph.NewBuilder(graph.BuildOptions{})
	b.SetN(rows * cols)
	id := func(r, c int32) int32 { return r*cols + c }
	for r := int32(0); r < rows; r++ {
		for c := int32(0); c < cols; c++ {
			if c+1 < cols {
				b.AddEdge(id(r, c), id(r, c+1))
			}
			if r+1 < rows {
				b.AddEdge(id(r, c), id(r+1, c))
			}
		}
	}
	g, err := b.Build()
	if err != nil {
		panic(err)
	}
	return g
}

// PaperFigure1 reconstructs the running example of the paper (Fig. 1(a)):
// a query node u whose source graph has three levels, with the exact hitting
// probabilities listed in the figure:
//
//	h¹(u,wa)=h¹(u,wb)=h¹(u,wc)=0.258, h²(u,wd)=h²(u,wf)=h²(u,wg)=0.1,
//	h²(u,we)=0.3, h³(u,wh)=0.194, h³(u,wp)=0.155, h³(u,wc)=0.039,
//
// and with ε_h = 0.12: A⁽¹⁾={wa,wb,wc}, A⁽²⁾={we}, A⁽³⁾={wh,wp}, L=3.
//
// Node ids: u=0, wa=1, wb=2, wc=3, wd=4, we=5, wf=6, wg=7, wh=8, wp=9,
// wx=10 (an auxiliary level-3 node required so that d_I(wf)=d_I(wg)=2,
// which the figure's printed values imply).
func PaperFigure1() *graph.Graph {
	b := graph.NewBuilder(graph.BuildOptions{})
	b.SetN(11)
	// level 1: in-neighbors of u are wa, wb, wc  => edges wa->u etc.
	for _, w := range []int32{1, 2, 3} {
		b.AddEdge(w, 0)
	}
	// level 2: I(wa)={wd,we}, I(wb)={we}, I(wc)={wf,wg}
	b.AddEdge(4, 1)
	b.AddEdge(5, 1)
	b.AddEdge(5, 2)
	b.AddEdge(6, 3)
	b.AddEdge(7, 3)
	// level 3: I(wd)={wh}, I(we)={wh,wp}, I(wf)={wp,wx}, I(wg)={wc,wx}
	b.AddEdge(8, 4)
	b.AddEdge(8, 5)
	b.AddEdge(9, 5)
	b.AddEdge(9, 6)
	b.AddEdge(10, 6)
	b.AddEdge(3, 7)
	b.AddEdge(10, 7)
	g, err := b.Build()
	if err != nil {
		panic(err)
	}
	return g
}
