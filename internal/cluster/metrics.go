package cluster

import (
	"context"
	"net/http"
	"time"

	"github.com/simrank/simpush/internal/obs"
)

// GET /metricsz renders the proxy's own counters plus one series per
// replica (under a "replica" label) in Prometheus text format. Like
// /statsz it refreshes the probe state first (bounded) so the
// per-replica numbers are current.
func (p *Proxy) handleMetricsz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		writeProxyError(w, http.StatusMethodNotAllowed, "method_not_allowed", "method not allowed")
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), 2*time.Second)
	p.set.ProbeOnce(ctx)
	cancel()
	st := p.Stats()

	w.Header().Set("Content-Type", obs.ContentType)
	mw := obs.NewMetricsWriter(w)

	mw.Gauge("simproxy_uptime_seconds", "Seconds since the proxy started.")
	mw.Sample("simproxy_uptime_seconds", nil, st.UptimeSeconds)
	mw.Counter("simproxy_requests_total", "Requests accepted by the proxy.")
	mw.Sample("simproxy_requests_total", nil, float64(st.Requests))
	mw.Counter("simproxy_writes_total", "Mutations forwarded to the leader.")
	mw.Sample("simproxy_writes_total", nil, float64(st.Writes))
	mw.Counter("simproxy_retries_total", "Reads retried on a second replica.")
	mw.Sample("simproxy_retries_total", nil, float64(st.Retries))
	mw.Counter("simproxy_failovers_total", "Reads answered by the retry replica.")
	mw.Sample("simproxy_failovers_total", nil, float64(st.Failovers))
	mw.Counter("simproxy_no_replica_total", "Requests rejected with 503 (no routable replica or leader).")
	mw.Sample("simproxy_no_replica_total", nil, float64(st.NoReplica))
	mw.Counter("simproxy_bad_gateway_total", "Requests answered 502 after transport failures.")
	mw.Sample("simproxy_bad_gateway_total", nil, float64(st.BadGateway))
	mw.Gauge("simproxy_routable_replicas", "Replicas reads may currently be routed to.")
	mw.Sample("simproxy_routable_replicas", nil, float64(st.Routable))
	mw.Gauge("simproxy_replicas", "Configured roster size.")
	mw.Sample("simproxy_replicas", nil, float64(len(st.Replicas)))
	mw.Gauge("simproxy_epoch", "Highest epoch among routable replicas.")
	mw.Sample("simproxy_epoch", nil, float64(st.Epoch))

	mw.Gauge("simproxy_replica_up", "1 when the replica's /healthz answers 200.")
	for _, rs := range st.Replicas {
		mw.Sample("simproxy_replica_up", obs.L("replica", rs.Name), b2f(rs.Healthy))
	}
	mw.Gauge("simproxy_replica_routable", "1 when reads may be routed to the replica.")
	for _, rs := range st.Replicas {
		mw.Sample("simproxy_replica_routable", obs.L("replica", rs.Name), b2f(rs.Routable))
	}
	mw.Gauge("simproxy_replica_leader", "1 on the replica claiming the leader role.")
	for _, rs := range st.Replicas {
		mw.Sample("simproxy_replica_leader", obs.L("replica", rs.Name), b2f(rs.Leader))
	}
	mw.Gauge("simproxy_replica_epoch", "Last probed applied epoch of the replica.")
	for _, rs := range st.Replicas {
		mw.Sample("simproxy_replica_epoch", obs.L("replica", rs.Name), float64(rs.Epoch))
	}
	mw.Gauge("simproxy_replica_lag", "Replication lag (epochs) behind the leader.")
	for _, rs := range st.Replicas {
		mw.Sample("simproxy_replica_lag", obs.L("replica", rs.Name), float64(rs.Lag))
	}
	mw.Gauge("simproxy_replica_in_flight", "Open requests against the replica (probe + local).")
	for _, rs := range st.Replicas {
		mw.Sample("simproxy_replica_in_flight", obs.L("replica", rs.Name), float64(rs.InFlight))
	}
	mw.Counter("simproxy_replica_requests_proxied_total", "Requests this proxy has sent to the replica.")
	for _, rs := range st.Replicas {
		mw.Sample("simproxy_replica_requests_proxied_total", obs.L("replica", rs.Name), float64(rs.Proxied))
	}
	mw.Counter("simproxy_replica_cache_hits_total", "Result-cache hits on the replica (from its last probe).")
	for _, rs := range st.Replicas {
		mw.Sample("simproxy_replica_cache_hits_total", obs.L("replica", rs.Name), float64(rs.Cache.Hits))
	}
	mw.Counter("simproxy_replica_cache_misses_total", "Result-cache misses on the replica (from its last probe).")
	for _, rs := range st.Replicas {
		mw.Sample("simproxy_replica_cache_misses_total", obs.L("replica", rs.Name), float64(rs.Cache.Misses))
	}
	mw.Counter("simproxy_replica_engine_queries_total", "Engine queries run by the replica (from its last probe).")
	for _, rs := range st.Replicas {
		mw.Sample("simproxy_replica_engine_queries_total", obs.L("replica", rs.Name), float64(rs.EngineQueries))
	}

	if err := mw.Err(); err != nil {
		p.logger.Warn("writing /metricsz", "error", err)
	}
}

func b2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}
