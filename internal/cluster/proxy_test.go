package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/simrank/simpush"
	"github.com/simrank/simpush/internal/obs"
	"github.com/simrank/simpush/internal/server"
)

// clusterFixture is a live leader + two followers behind a proxy, all on
// httptest listeners.
type clusterFixture struct {
	proxy        *httptest.Server
	set          *Set
	leader       *httptest.Server
	followers    []*httptest.Server
	followerSrvs []*server.Server
}

func (c *clusterFixture) leaderName() string { return strings.TrimPrefix(c.leader.URL, "http://") }

// newReplicaServer builds one simrankd-equivalent server over the shared
// deterministic base graph.
func newReplicaServer(t *testing.T, role server.Role, leaderURL string) *server.Server {
	t.Helper()
	g, err := simpush.SyntheticWebGraph(300, 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	client, err := simpush.NewClient(simpush.DynamicFromGraph(g), simpush.Options{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { client.Close() })
	srv, err := server.New(server.Config{Client: client, Role: role, LeaderURL: leaderURL, TraceRing: 16})
	if err != nil {
		t.Fatal(err)
	}
	return srv
}

// startCluster brings up leader + 2 followers + proxy and waits until
// every replica is routable.
func startCluster(t *testing.T, policy string) *clusterFixture {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	t.Cleanup(cancel)

	leaderSrv := newReplicaServer(t, server.RoleLeader, "")
	lts := httptest.NewServer(leaderSrv.Handler())
	t.Cleanup(lts.Close)

	c := &clusterFixture{leader: lts}
	urls := []string{lts.URL}
	for i := 0; i < 2; i++ {
		fsrv := newReplicaServer(t, server.RoleFollower, lts.URL)
		fsrv.StartReplication(ctx)
		fts := httptest.NewServer(fsrv.Handler())
		t.Cleanup(fts.Close)
		c.followers = append(c.followers, fts)
		c.followerSrvs = append(c.followerSrvs, fsrv)
		urls = append(urls, fts.URL)
	}

	set, err := NewSet(SetConfig{Replicas: urls, ProbeTimeout: 2 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	c.set = set
	p, err := New(Config{Set: set, Policy: policy})
	if err != nil {
		t.Fatal(err)
	}
	c.proxy = httptest.NewServer(p.Handler())
	t.Cleanup(c.proxy.Close)

	waitFor(t, 10*time.Second, "all replicas routable", func() bool {
		set.ProbeOnce(ctx)
		return len(set.Routable()) == 3 && set.Leader() != nil
	})
	// Cleanups run LIFO: cancel the replication loops first so the
	// httptest servers don't wait out a parked long-poll on Close.
	t.Cleanup(cancel)
	return c
}

func waitFor(t *testing.T, timeout time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// get fetches url and returns status, the replica header and the decoded
// JSON body.
func get(t *testing.T, url string) (int, string, map[string]any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	var body map[string]any
	raw, _ := io.ReadAll(resp.Body)
	if len(raw) > 0 {
		if err := json.Unmarshal(raw, &body); err != nil {
			t.Fatalf("GET %s: bad JSON %q: %v", url, raw, err)
		}
	}
	return resp.StatusCode, resp.Header.Get(ReplicaHeader), body
}

func post(t *testing.T, url, body string) (int, string, map[string]any) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	var decoded map[string]any
	raw, _ := io.ReadAll(resp.Body)
	if len(raw) > 0 {
		json.Unmarshal(raw, &decoded)
	}
	return resp.StatusCode, resp.Header.Get(ReplicaHeader), decoded
}

// TestClusterWriteConvergesBitIdentical is the tentpole cluster test
// (run under -race in CI): a POST /v1/edges through the proxy lands on
// the leader, streams to every follower, and once lag drains the same
// seeded query returns the same epoch and bit-identical scores on all
// three replicas.
func TestClusterWriteConvergesBitIdentical(t *testing.T) {
	c := startCluster(t, "hash")

	status, via, body := post(t, c.proxy.URL+"/v1/edges", `{"edges":[{"from":1,"to":200},{"from":200,"to":3}]}`)
	if status != http.StatusOK {
		t.Fatalf("proxied write = %d (%v)", status, body)
	}
	if via != c.leaderName() {
		t.Fatalf("write served by %q, want leader %q", via, c.leaderName())
	}
	wantEpoch := body["epoch"].(float64)
	if wantEpoch != 2 {
		t.Fatalf("write committed at epoch %v, want 2 (boot=1)", wantEpoch)
	}

	// Every follower must reach the write's epoch.
	for i, f := range c.followers {
		f := f
		waitFor(t, 10*time.Second, fmt.Sprintf("follower %d at epoch %v", i, wantEpoch), func() bool {
			code, _, stats := get(t, f.URL+"/statsz")
			if code != http.StatusOK {
				return false
			}
			rep, ok := stats["replication"].(map[string]any)
			return ok && rep["applied_epoch"].(float64) == wantEpoch && rep["lag"].(float64) == 0
		})
	}

	// Same-epoch scores are bit-identical across all three replicas.
	const q = "/v1/single-source?node=1&seed=42&dense=1"
	var ref []any
	for i, ts := range append([]*httptest.Server{c.leader}, c.followers...) {
		code, _, body := get(t, ts.URL+q)
		if code != http.StatusOK {
			t.Fatalf("replica %d query = %d", i, code)
		}
		if got := body["epoch"].(float64); got != wantEpoch {
			t.Fatalf("replica %d answered at epoch %v, want %v", i, got, wantEpoch)
		}
		scores := body["dense_scores"].([]any)
		if i == 0 {
			ref = scores
			continue
		}
		if len(scores) != len(ref) {
			t.Fatalf("replica %d score length %d != %d", i, len(scores), len(ref))
		}
		for j := range ref {
			if scores[j].(float64) != ref[j].(float64) {
				t.Fatalf("replica %d diverges from leader at node %d: %v vs %v", i, j, scores[j], ref[j])
			}
		}
	}
}

// TestProxyCacheAffinityIsSticky: under the hash policy, repeated
// queries for one node always land on the same replica, and different
// nodes spread across more than one replica.
func TestProxyCacheAffinityIsSticky(t *testing.T) {
	c := startCluster(t, "hash")
	owners := map[int]string{}
	for round := 0; round < 3; round++ {
		for node := 0; node < 12; node++ {
			code, via, _ := get(t, fmt.Sprintf("%s/v1/single-source?node=%d&seed=1", c.proxy.URL, node))
			if code != http.StatusOK {
				t.Fatalf("node %d round %d = %d", node, round, code)
			}
			if round == 0 {
				owners[node] = via
			} else if owners[node] != via {
				t.Fatalf("node %d moved from %s to %s with a stable roster", node, owners[node], via)
			}
		}
	}
	distinct := map[string]bool{}
	for _, v := range owners {
		distinct[v] = true
	}
	if len(distinct) < 2 {
		t.Fatalf("12 nodes all routed to one replica %v — no affinity spread", owners)
	}
}

// TestProxyFailsOverOnReplicaError: a replica that accepts probes but
// fails queries gets one retry on another replica; the client sees 200.
func TestProxyFailsOverOnReplicaError(t *testing.T) {
	good := newReplicaServer(t, server.RoleStandalone, "")
	gts := httptest.NewServer(good.Handler())
	defer gts.Close()

	bad := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.URL.Path {
		case "/healthz":
			fmt.Fprint(w, `{"status":"ok"}`)
		case "/statsz":
			fmt.Fprint(w, `{"epoch":1}`)
		default:
			http.Error(w, "boom", http.StatusInternalServerError)
		}
	}))
	defer bad.Close()

	set, err := NewSet(SetConfig{Replicas: []string{bad.URL, gts.URL}})
	if err != nil {
		t.Fatal(err)
	}
	set.ProbeOnce(context.Background())
	p, err := New(Config{Set: set, Policy: "round-robin"})
	if err != nil {
		t.Fatal(err)
	}
	pts := httptest.NewServer(p.Handler())
	defer pts.Close()

	goodName := strings.TrimPrefix(gts.URL, "http://")
	for i := 0; i < 6; i++ { // round-robin guarantees some first-hit the bad one
		code, via, body := get(t, pts.URL+"/v1/single-source?node=1&seed=1")
		if code != http.StatusOK {
			t.Fatalf("request %d = %d (%v)", i, code, body)
		}
		if via != goodName {
			t.Fatalf("request %d served by %q, want failover to %q", i, via, goodName)
		}
	}
	if st := p.Stats(); st.Retries == 0 || st.Failovers == 0 {
		t.Fatalf("stats = retries %d failovers %d, want both > 0", st.Retries, st.Failovers)
	}
}

// TestProxyAvoidsDrainingReplica: a draining replica (healthz 503) drops
// out of the read set after the next probe and reads keep succeeding.
func TestProxyAvoidsDrainingReplica(t *testing.T) {
	c := startCluster(t, "round-robin")

	// Drain follower 0 the way SIGTERM does.
	resp, err := http.Get(c.followers[0].URL + "/healthz")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("pre-drain healthz: %v %v", err, resp)
	}
	resp.Body.Close()
	c.followerSrvs[0].Drain()
	drained := strings.TrimPrefix(c.followers[0].URL, "http://")
	waitFor(t, 5*time.Second, "drained follower out of the read set", func() bool {
		c.set.ProbeOnce(context.Background())
		return len(c.set.Routable()) == 2
	})
	for i := 0; i < 9; i++ {
		code, via, _ := get(t, fmt.Sprintf("%s/v1/single-source?node=%d&seed=1", c.proxy.URL, i))
		if code != http.StatusOK {
			t.Fatalf("read %d after drain = %d", i, code)
		}
		if via == drained {
			t.Fatalf("read %d routed to the draining replica", i)
		}
	}

	// Proxy health stays up with 2/3 replicas routable.
	code, _, body := get(t, c.proxy.URL+"/healthz")
	if code != http.StatusOK || body["routable"].(float64) != 2 {
		t.Fatalf("proxy healthz after drain = %d %v, want 200 with 2 routable", code, body)
	}
}

// TestProxyStatszAggregates: the proxy's /statsz carries the aggregate
// counters plus one block per replica, with top-level names simbench
// already understands.
func TestProxyStatszAggregates(t *testing.T) {
	c := startCluster(t, "hash")
	for i := 0; i < 4; i++ {
		if code, _, _ := get(t, fmt.Sprintf("%s/v1/single-source?node=%d&seed=1", c.proxy.URL, i)); code != 200 {
			t.Fatalf("warm-up read %d failed", i)
		}
	}
	code, _, body := get(t, c.proxy.URL+"/statsz")
	if code != http.StatusOK {
		t.Fatalf("proxy statsz = %d", code)
	}
	if body["proxy"] != true || body["policy"] != "hash" {
		t.Fatalf("statsz identity = proxy:%v policy:%v", body["proxy"], body["policy"])
	}
	if got := body["requests"].(float64); got < 4 {
		t.Fatalf("requests = %v, want >= 4", got)
	}
	if got := body["graph_n"].(float64); got != 300 {
		t.Fatalf("graph_n = %v, want 300", got)
	}
	reps := body["replicas"].([]any)
	if len(reps) != 3 {
		t.Fatalf("statsz lists %d replicas, want 3", len(reps))
	}
	var leaders, proxied int
	for _, r := range reps {
		rm := r.(map[string]any)
		if rm["leader"] == true {
			leaders++
		}
		proxied += int(rm["requests_proxied"].(float64))
		if rm["status"] != "ok" {
			t.Fatalf("replica %v status = %v, want ok", rm["name"], rm["status"])
		}
	}
	if leaders != 1 {
		t.Fatalf("%d replicas claim leadership, want exactly 1", leaders)
	}
	if proxied < 4 {
		t.Fatalf("per-replica proxied counts sum to %d, want >= 4", proxied)
	}
}

// TestProxyNoRoutableReplica: with nothing routable the proxy sheds with
// 503 no_replica rather than hanging or guessing.
func TestProxyNoRoutableReplica(t *testing.T) {
	set, err := NewSet(SetConfig{Replicas: []string{"127.0.0.1:1"}, ProbeTimeout: 200 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	set.ProbeOnce(context.Background())
	p, err := New(Config{Set: set})
	if err != nil {
		t.Fatal(err)
	}
	rec := httptest.NewRecorder()
	p.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/single-source?node=1", nil))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("read with empty cluster = %d, want 503", rec.Code)
	}
	rec = httptest.NewRecorder()
	p.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/v1/edges", strings.NewReader(`{"from":0,"to":1}`)))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("write with no leader = %d, want 503", rec.Code)
	}
}

// TestProxyRequestIDPropagation: a client-supplied X-Request-Id survives
// proxy → replica → response, and the serving replica's /debug/queries
// records the trace under that id with per-stage engine spans.
func TestProxyRequestIDPropagation(t *testing.T) {
	c := startCluster(t, "hash")

	req, err := http.NewRequest(http.MethodGet, c.proxy.URL+"/v1/single-source?node=9&seed=1", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(obs.RequestIDHeader, "prop-test-1")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("proxied read = %d", resp.StatusCode)
	}
	if got := resp.Header.Get(obs.RequestIDHeader); got != "prop-test-1" {
		t.Fatalf("response request id = %q, want the client's prop-test-1", got)
	}
	via := resp.Header.Get(ReplicaHeader)
	if via == "" {
		t.Fatal("response missing the replica header")
	}

	// The serving replica's trace ring must hold the id, with the engine
	// stages of the computed query spelled out.
	code, _, dbg := get(t, "http://"+via+"/debug/queries")
	if code != http.StatusOK {
		t.Fatalf("replica /debug/queries = %d", code)
	}
	queries, _ := dbg["queries"].([]any)
	var trace map[string]any
	for _, q := range queries {
		qm := q.(map[string]any)
		if qm["request_id"] == "prop-test-1" {
			trace = qm
			break
		}
	}
	if trace == nil {
		t.Fatalf("replica %s trace ring has no record for prop-test-1: %v", via, dbg)
	}
	if trace["cache"] != "computed" {
		t.Errorf("trace cache outcome = %v, want computed", trace["cache"])
	}
	spans := map[string]bool{}
	if ss, ok := trace["spans"].([]any); ok {
		for _, sp := range ss {
			spans[sp.(map[string]any)["name"].(string)] = true
		}
	}
	for _, want := range []string{"walk", "source_push", "gamma", "reverse_push"} {
		if !spans[want] {
			t.Errorf("trace missing engine span %q (has %v)", want, spans)
		}
	}

	// Without a client id the proxy mints one and still echoes it.
	resp2, err := http.Get(c.proxy.URL + "/v1/topk?node=4&k=3&seed=1")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp2.Body)
	resp2.Body.Close()
	if resp2.Header.Get(obs.RequestIDHeader) == "" {
		t.Error("proxy did not mint a request id for an id-less request")
	}
}

// TestAffinityNodeExtraction covers the routing-key parser.
func TestAffinityNodeExtraction(t *testing.T) {
	cases := []struct {
		path, body string
		want       int32
		ok         bool
	}{
		{"/v1/single-source?node=17", "", 17, true},
		{"/v1/topk?node=3&k=10", "", 3, true},
		{"/v1/pair?u=5&v=9", "", 5, true},
		{"/v1/batch", `{"nodes":[8,1,2]}`, 8, true},
		{"/v1/batch", `{"nodes":[]}`, 0, false},
		{"/v1/single-source", "", 0, false},
		{"/v1/single-source?node=bogus", "", 0, false},
	}
	for _, tc := range cases {
		r := httptest.NewRequest(http.MethodGet, tc.path, nil)
		node, ok := affinityNode(r, []byte(tc.body))
		if node != tc.want || ok != tc.ok {
			t.Errorf("affinityNode(%s, %q) = (%d, %v), want (%d, %v)", tc.path, tc.body, node, ok, tc.want, tc.ok)
		}
	}
}
