package cluster

import (
	"fmt"
	"testing"
)

// testSet builds a Set of n synthetic replicas (no network involved).
func testSet(t *testing.T, n int) *Set {
	t.Helper()
	urls := make([]string, n)
	for i := range urls {
		urls[i] = fmt.Sprintf("replica-%d:70%02d", i, i)
	}
	s, err := NewSet(SetConfig{Replicas: urls})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewPolicyNames(t *testing.T) {
	reps := testSet(t, 3).Replicas()
	for _, name := range []string{"hash", "cache-affinity", "affinity", "least-loaded", "round-robin"} {
		if _, err := NewPolicy(name, reps); err != nil {
			t.Errorf("NewPolicy(%q) = %v", name, err)
		}
	}
	if _, err := NewPolicy("random", reps); err == nil {
		t.Error("unknown policy name must be rejected")
	}
}

func TestRoundRobinCyclesUniformly(t *testing.T) {
	reps := testSet(t, 3).Replicas()
	p, _ := NewPolicy("round-robin", reps)
	counts := map[string]int{}
	for i := 0; i < 300; i++ {
		counts[p.Pick(int32(i), true, reps).Name]++
	}
	for _, r := range reps {
		if counts[r.Name] != 100 {
			t.Fatalf("round-robin spread = %v, want exactly 100 each", counts)
		}
	}
}

func TestLeastLoadedPicksMinAndBreaksTiesByIndex(t *testing.T) {
	reps := testSet(t, 3).Replicas()
	p, _ := NewPolicy("least-loaded", reps)

	// All idle: the tie must break to the lowest registration index, not
	// whichever candidate happens to come first in an arbitrary order.
	if got := p.Pick(0, true, []*Replica{reps[2], reps[1], reps[0]}); got != reps[0] {
		t.Fatalf("idle tie-break picked %s, want %s", got.Name, reps[0].Name)
	}

	reps[0].inFlight.Store(5)
	reps[1].inFlight.Store(2)
	reps[2].inFlight.Store(9)
	if got := p.Pick(0, true, reps); got != reps[1] {
		t.Fatalf("least-loaded picked %s (load %d), want %s", got.Name, got.Load(), reps[1].Name)
	}

	// Proxy-local outstanding requests count toward load between probes.
	reps[1].outstanding.Store(10)
	if got := p.Pick(0, true, reps); got != reps[0] {
		t.Fatalf("least-loaded ignored local outstanding: picked %s", got.Name)
	}
}

// TestConsistentHashIsDeterministic: the same node always lands on the
// same replica while the candidate set is stable.
func TestConsistentHashIsDeterministic(t *testing.T) {
	reps := testSet(t, 4).Replicas()
	p, _ := NewPolicy("hash", reps)
	for node := int32(0); node < 1000; node++ {
		a := p.Pick(node, true, reps)
		b := p.Pick(node, true, reps)
		if a != b {
			t.Fatalf("node %d routed to %s then %s", node, a.Name, b.Name)
		}
	}
}

// TestConsistentHashStability is the cache-affinity contract: growing the
// roster from N to N+1 replicas must remap only about 1/(N+1) of the key
// space, so existing replicas keep most of their warm cache slices.
func TestConsistentHashStability(t *testing.T) {
	const nodes = 10000
	small := testSet(t, 4)
	// The grown roster shares the first 4 names so ring points for the
	// surviving replicas are identical.
	grown := testSet(t, 5)

	pSmall, _ := NewPolicy("hash", small.Replicas())
	pGrown, _ := NewPolicy("hash", grown.Replicas())

	remapped := 0
	for node := int32(0); node < nodes; node++ {
		before := pSmall.Pick(node, true, small.Replicas())
		after := pGrown.Pick(node, true, grown.Replicas())
		if before.Name != after.Name {
			remapped++
		}
	}
	frac := float64(remapped) / nodes
	// Ideal is 1/5 = 20%; vnode placement noise allows some slack, but
	// anything near (N-1)/N would mean the ring is not consistent at all.
	if frac > 0.35 {
		t.Fatalf("adding a 5th replica remapped %.1f%% of nodes, want ~20%%", frac*100)
	}
	if remapped == 0 {
		t.Fatal("adding a replica remapped nothing — the new replica gets no keys")
	}
}

// TestConsistentHashFailoverPreservesMapping: when one replica drops out
// of the candidate set, only its keys move; every other node keeps its
// original owner.
func TestConsistentHashFailoverPreservesMapping(t *testing.T) {
	set := testSet(t, 4)
	reps := set.Replicas()
	p, _ := NewPolicy("hash", reps)

	before := make(map[int32]*Replica)
	for node := int32(0); node < 2000; node++ {
		before[node] = p.Pick(node, true, reps)
	}
	down := reps[1]
	up := []*Replica{reps[0], reps[2], reps[3]}
	for node := int32(0); node < 2000; node++ {
		got := p.Pick(node, true, up)
		if got == down {
			t.Fatalf("node %d routed to the failed replica", node)
		}
		if before[node] != down && got != before[node] {
			t.Fatalf("node %d moved from %s to %s though its owner is up", node, before[node].Name, got.Name)
		}
	}
}

func TestConsistentHashFallsBackWithoutAffinityKey(t *testing.T) {
	reps := testSet(t, 3).Replicas()
	p, _ := NewPolicy("hash", reps)
	seen := map[string]bool{}
	for i := 0; i < 30; i++ {
		seen[p.Pick(0, false, reps).Name] = true
	}
	if len(seen) != len(reps) {
		t.Fatalf("no-affinity fallback used %d replicas, want all %d (round-robin)", len(seen), len(reps))
	}
}
