// Package cluster is the coordination tier that turns N simrankd
// replicas into one serving surface. It contains the three pieces the
// simproxy router is built from:
//
//   - a replica Set with a background health prober that tracks each
//     replica's /healthz state and /statsz counters (role, epoch,
//     replication lag, in-flight work, cache counters);
//   - pluggable RoutingPolicy implementations — consistent-hash on the
//     query node (cache affinity), least-loaded, round-robin;
//   - the Proxy handler itself, which routes reads through the policy,
//     sends writes only to the leader, fails over away from draining or
//     lagging replicas, and retries reads once on another replica.
//
// The cache-affinity argument: simrankd's result cache is keyed by
// (epoch, kind, node, params), so routing every query for node u to the
// same replica makes each replica's cache concentrate on its own slice of
// the hot set — aggregate hit rate rises with replica count instead of
// staying flat as every replica caches every node.
package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/url"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/simrank/simpush/internal/obs"
	"github.com/simrank/simpush/internal/server"
)

// Replica is one simrankd process as seen by the proxy. All fields
// updated by the prober and the request path are atomic; a Replica is
// safe for concurrent use.
type Replica struct {
	Name string // host:port, the stable display and hash-ring identity
	URL  string // base URL, no trailing slash
	idx  int    // registration order; deterministic tie-breaks

	healthy     atomic.Bool  // /healthz answered 200
	routable    atomic.Bool  // healthy, not draining, lag within bound
	leader      atomic.Bool  // /statsz replication.role == leader
	status      atomic.Value // string: ok | draining | catching_up | diverged | unreachable | unknown
	epoch       atomic.Uint64
	lag         atomic.Int64
	inFlight    atomic.Int64 // replica-reported engine in-flight (last probe)
	outstanding atomic.Int64 // requests this proxy has open against it
	proxied     atomic.Uint64
	stats       atomic.Pointer[server.StatsSnapshot] // last good /statsz
}

// Load is the least-loaded signal: the replica's own in-flight engine
// count from the last probe plus the requests this proxy currently has
// open against it (the local term keeps the signal live between probes).
func (r *Replica) Load() int64 { return r.inFlight.Load() + r.outstanding.Load() }

// Routable reports whether reads may be sent here.
func (r *Replica) Routable() bool { return r.routable.Load() }

// Status returns the last probed status string.
func (r *Replica) Status() string {
	if s, ok := r.status.Load().(string); ok {
		return s
	}
	return "unknown"
}

// SetConfig parameterizes a replica Set.
type SetConfig struct {
	// Replicas is the list of simrankd base URLs (scheme optional;
	// "host:port" is normalized to "http://host:port"). Required.
	Replicas []string

	// MaxLag is the replication lag (in epochs) beyond which a follower
	// is failed out of the read set until it drains (default 16).
	MaxLag int64

	// ProbeInterval is the background health-probe cadence (default 1s).
	ProbeInterval time.Duration

	// ProbeTimeout bounds one probe round-trip (default 2s).
	ProbeTimeout time.Duration

	// Logger receives one structured line per replica state transition.
	// nil discards them.
	Logger *slog.Logger
}

// Set is a fixed roster of replicas plus the prober that keeps their
// health and stats fresh.
type Set struct {
	replicas []*Replica
	cfg      SetConfig
	client   *http.Client
}

// NewSet builds a Set from the configured replica URLs.
func NewSet(cfg SetConfig) (*Set, error) {
	if len(cfg.Replicas) == 0 {
		return nil, fmt.Errorf("cluster: at least one replica is required")
	}
	if cfg.MaxLag <= 0 {
		cfg.MaxLag = 16
	}
	if cfg.ProbeInterval <= 0 {
		cfg.ProbeInterval = time.Second
	}
	if cfg.ProbeTimeout <= 0 {
		cfg.ProbeTimeout = 2 * time.Second
	}
	if cfg.Logger == nil {
		cfg.Logger = obs.Discard()
	}
	s := &Set{cfg: cfg, client: &http.Client{Timeout: cfg.ProbeTimeout}}
	seen := map[string]bool{}
	for i, raw := range cfg.Replicas {
		base := strings.TrimRight(strings.TrimSpace(raw), "/")
		if base == "" {
			return nil, fmt.Errorf("cluster: empty replica URL at position %d", i)
		}
		if !strings.Contains(base, "://") {
			base = "http://" + base
		}
		u, err := url.Parse(base)
		if err != nil || u.Host == "" {
			return nil, fmt.Errorf("cluster: bad replica URL %q", raw)
		}
		if seen[base] {
			return nil, fmt.Errorf("cluster: duplicate replica %q", raw)
		}
		seen[base] = true
		rep := &Replica{Name: u.Host, URL: base, idx: i}
		rep.status.Store("unknown")
		s.replicas = append(s.replicas, rep)
	}
	return s, nil
}

// Replicas returns the full roster in registration order.
func (s *Set) Replicas() []*Replica { return s.replicas }

// Routable returns the replicas reads may currently be sent to, in
// registration order.
func (s *Set) Routable() []*Replica {
	out := make([]*Replica, 0, len(s.replicas))
	for _, r := range s.replicas {
		if r.routable.Load() {
			out = append(out, r)
		}
	}
	return out
}

// Leader returns the replica currently claiming the leader role (lowest
// registration index wins if several do), or nil.
func (s *Set) Leader() *Replica {
	for _, r := range s.replicas {
		if r.leader.Load() && r.healthy.Load() {
			return r
		}
	}
	return nil
}

// Start launches the background prober; it stops when ctx is cancelled.
func (s *Set) Start(ctx context.Context) {
	go func() {
		ticker := time.NewTicker(s.cfg.ProbeInterval)
		defer ticker.Stop()
		for {
			select {
			case <-ticker.C:
				s.ProbeOnce(ctx)
			case <-ctx.Done():
				return
			}
		}
	}()
}

// ProbeOnce probes every replica concurrently and waits for the sweep to
// finish. It is called by the background prober, at proxy startup so the
// first request already sees health state, and by /statsz for fresh
// counters.
func (s *Set) ProbeOnce(ctx context.Context) {
	var wg sync.WaitGroup
	for _, r := range s.replicas {
		wg.Add(1)
		go func(r *Replica) {
			defer wg.Done()
			s.probe(ctx, r)
		}(r)
	}
	wg.Wait()
}

// healthzBody is the /healthz payload (we only need the status string).
type healthzBody struct {
	Status string `json:"status"`
}

// probe refreshes one replica: /healthz decides routability, /statsz
// refreshes counters, role and lag.
func (s *Set) probe(ctx context.Context, r *Replica) {
	pctx, cancel := context.WithTimeout(ctx, s.cfg.ProbeTimeout)
	defer cancel()

	status := "unreachable"
	healthOK := false
	if body, code, err := s.get(pctx, r.URL+"/healthz"); err == nil {
		var hb healthzBody
		if json.Unmarshal(body, &hb) == nil && hb.Status != "" {
			status = hb.Status
		} else if code == http.StatusOK {
			status = "ok"
		}
		healthOK = code == http.StatusOK
	}

	var lag int64
	if body, code, err := s.get(pctx, r.URL+"/statsz"); err == nil && code == http.StatusOK {
		var snap server.StatsSnapshot
		if json.Unmarshal(body, &snap) == nil {
			r.stats.Store(&snap)
			r.epoch.Store(snap.Epoch)
			r.inFlight.Store(int64(snap.Admission.InFlight))
			isLeader := false
			if rep := snap.Replication; rep != nil {
				lag = rep.Lag
				isLeader = rep.Role == server.RoleLeader
				r.epoch.Store(rep.AppliedEpoch)
			}
			r.leader.Store(isLeader)
		}
	}
	r.lag.Store(lag)

	routable := healthOK && lag <= s.cfg.MaxLag
	if healthOK && lag > s.cfg.MaxLag {
		status = "lagging"
	}
	prev := r.Status()
	wasRoutable := r.routable.Load()
	r.healthy.Store(healthOK)
	r.routable.Store(routable)
	r.status.Store(status)
	if prev != status || wasRoutable != routable {
		s.cfg.Logger.Info("replica state change",
			"replica", r.Name, "from", prev, "to", status, "routable", routable, "lag", lag)
	}
}

func (s *Set) get(ctx context.Context, url string) ([]byte, int, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return nil, 0, err
	}
	resp, err := s.client.Do(req)
	if err != nil {
		return nil, 0, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	return body, resp.StatusCode, err
}
