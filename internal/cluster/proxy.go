package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"github.com/simrank/simpush/internal/cache"
	"github.com/simrank/simpush/internal/obs"
	"github.com/simrank/simpush/internal/server"
)

// ReplicaHeader names the response header the proxy stamps with the
// replica that served each request — smoke tests and operators use it to
// see routing decisions without log-diving.
const ReplicaHeader = "X-Simproxy-Replica"

// Config parameterizes a Proxy.
type Config struct {
	// Set is the probed replica roster. Required.
	Set *Set

	// Policy is the read-routing policy name: "hash" (cache affinity,
	// the default), "least-loaded" or "round-robin".
	Policy string

	// Timeout caps one proxied request round-trip (default 90s — above
	// the replicas' own MaxTimeout so the replica-side deadline, with its
	// more precise 504, fires first).
	Timeout time.Duration

	// Logger receives the proxy's structured logs (failovers, bad
	// gateways). nil discards them.
	Logger *slog.Logger
}

// Proxy is the simproxy HTTP handler: it fronts a replica Set, routes
// reads by policy, sends writes to the leader only, and fails over.
type Proxy struct {
	set    *Set
	policy RoutingPolicy
	client *http.Client
	mux    *http.ServeMux
	start  time.Time
	logger *slog.Logger

	requests  counter
	writes    counter
	retries   counter
	failovers counter // requests answered by the retry replica
	noReplica counter
	badGW     counter
}

type counter struct{ v atomic.Uint64 }

// New builds a Proxy over cfg.Set.
func New(cfg Config) (*Proxy, error) {
	if cfg.Set == nil {
		return nil, fmt.Errorf("cluster: Config.Set is required")
	}
	if cfg.Policy == "" {
		cfg.Policy = "hash"
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 90 * time.Second
	}
	if cfg.Logger == nil {
		cfg.Logger = obs.Discard()
	}
	policy, err := NewPolicy(cfg.Policy, cfg.Set.Replicas())
	if err != nil {
		return nil, err
	}
	p := &Proxy{
		set:    cfg.Set,
		policy: policy,
		client: &http.Client{Timeout: cfg.Timeout},
		mux:    http.NewServeMux(),
		start:  time.Now(),
		logger: cfg.Logger,
	}
	p.mux.HandleFunc("/v1/single-source", p.handleRead)
	p.mux.HandleFunc("/v1/topk", p.handleRead)
	p.mux.HandleFunc("/v1/pair", p.handleRead)
	p.mux.HandleFunc("/v1/batch", p.handleRead)
	p.mux.HandleFunc("/v1/edges", p.handleWrite)
	p.mux.HandleFunc("/healthz", p.handleHealthz)
	p.mux.HandleFunc("/statsz", p.handleStatsz)
	p.mux.HandleFunc("/metricsz", p.handleMetricsz)
	return p, nil
}

// Handler returns the proxy's root handler.
func (p *Proxy) Handler() http.Handler { return p.mux }

func (p *Proxy) ServeHTTP(w http.ResponseWriter, r *http.Request) { p.mux.ServeHTTP(w, r) }

// Policy returns the active routing policy.
func (p *Proxy) Policy() RoutingPolicy { return p.policy }

// ensureRequestID establishes the request's correlation id: a sane
// client-supplied X-Request-Id is kept, anything else replaced by a
// minted one. The id is set on both the inbound request header (so
// forwarding to a replica propagates it) and the response header (so the
// client sees it even on proxy-originated errors).
func ensureRequestID(w http.ResponseWriter, r *http.Request) string {
	id := obs.SanitizeRequestID(r.Header.Get(obs.RequestIDHeader))
	if id == "" {
		id = obs.NewRequestID()
	}
	r.Header.Set(obs.RequestIDHeader, id)
	w.Header().Set(obs.RequestIDHeader, id)
	return id
}

func writeProxyError(w http.ResponseWriter, status int, code, format string, args ...any) {
	body := map[string]string{"error": fmt.Sprintf(format, args...), "code": code}
	if id := w.Header().Get(obs.RequestIDHeader); id != "" {
		body["request_id"] = id
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(body)
}

// affinityNode extracts the routing key of a read: the source node of
// the query (?node, pair's ?u, or a batch body's first node).
func affinityNode(r *http.Request, body []byte) (int32, bool) {
	name := "node"
	if r.URL.Path == "/v1/pair" {
		name = "u"
	}
	if v := r.URL.Query().Get(name); v != "" {
		if n, err := strconv.ParseInt(v, 10, 32); err == nil {
			return int32(n), true
		}
		return 0, false
	}
	if len(body) > 0 {
		var b struct {
			Nodes []int32 `json:"nodes"`
		}
		if json.Unmarshal(body, &b) == nil && len(b.Nodes) > 0 {
			return b.Nodes[0], true
		}
	}
	return 0, false
}

// do forwards one request to rep and returns the replica's response. The
// request id rides along so the replica's trace and logs correlate with
// the proxy's.
func (p *Proxy) do(ctx context.Context, rep *Replica, method, uri, contentType, requestID string, body []byte) (*http.Response, error) {
	var rd io.Reader
	if len(body) > 0 {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, rep.URL+uri, rd)
	if err != nil {
		return nil, err
	}
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	if requestID != "" {
		req.Header.Set(obs.RequestIDHeader, requestID)
	}
	rep.proxied.Add(1)
	rep.outstanding.Add(1)
	resp, err := p.client.Do(req)
	rep.outstanding.Add(-1)
	return resp, err
}

// relay copies a replica response to the client, stamped with the
// replica that served it.
func (p *Proxy) relay(w http.ResponseWriter, resp *http.Response, rep *Replica) {
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "" {
		w.Header().Set("Content-Type", ct)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "" {
		w.Header().Set("Retry-After", ra)
	}
	w.Header().Set(ReplicaHeader, rep.Name)
	w.WriteHeader(resp.StatusCode)
	io.Copy(w, resp.Body)
}

// retryable reports whether a read should fail over to another replica:
// transport failure, load shedding (429) or a server-side error (5xx).
func retryable(resp *http.Response, err error) bool {
	return err != nil || resp.StatusCode == http.StatusTooManyRequests || resp.StatusCode >= 500
}

// handleRead routes one query through the policy, failing over once to
// another routable replica on 429/5xx or a transport error.
func (p *Proxy) handleRead(w http.ResponseWriter, r *http.Request) {
	p.requests.v.Add(1)
	id := ensureRequestID(w, r)
	var body []byte
	if r.Body != nil {
		b, err := io.ReadAll(r.Body)
		if err != nil {
			writeProxyError(w, http.StatusBadRequest, "bad_body", "reading request body: %v", err)
			return
		}
		body = b
	}
	candidates := p.set.Routable()
	if len(candidates) == 0 {
		p.noReplica.v.Add(1)
		writeProxyError(w, http.StatusServiceUnavailable, "no_replica", "no routable replica (all draining, lagging or unreachable)")
		return
	}
	node, hasNode := affinityNode(r, body)
	rep := p.policy.Pick(node, hasNode, candidates)
	uri := r.URL.RequestURI()
	ct := r.Header.Get("Content-Type")

	resp, err := p.do(r.Context(), rep, r.Method, uri, ct, id, body)
	if retryable(resp, err) && len(candidates) > 1 {
		rest := make([]*Replica, 0, len(candidates)-1)
		for _, c := range candidates {
			if c != rep {
				rest = append(rest, c)
			}
		}
		p.retries.v.Add(1)
		rep2 := p.policy.Pick(node, hasNode, rest)
		firstStatus := 0
		if err == nil {
			firstStatus = resp.StatusCode
		}
		p.logger.Warn("read retry",
			"request_id", id, "uri", uri, "replica", rep.Name,
			"status", firstStatus, "error", errString(err), "retry_replica", rep2.Name)
		resp2, err2 := p.do(r.Context(), rep2, r.Method, uri, ct, id, body)
		if err2 == nil && (err != nil || !retryable(resp2, nil) || resp2.StatusCode <= resp.StatusCode) {
			// Prefer the retry's answer unless it is strictly worse than
			// what the first replica already said.
			if err == nil {
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
			resp, err, rep = resp2, nil, rep2
			p.failovers.v.Add(1)
		} else if err2 == nil {
			io.Copy(io.Discard, resp2.Body)
			resp2.Body.Close()
		}
	}
	if err != nil {
		p.badGW.v.Add(1)
		p.logger.Warn("bad gateway", "request_id", id, "uri", uri, "replica", rep.Name, "error", err.Error())
		writeProxyError(w, http.StatusBadGateway, "bad_gateway", "replica %s: %v", rep.Name, err)
		return
	}
	p.relay(w, resp, rep)
}

// errString renders an error for a log attribute ("" when nil).
func errString(err error) string {
	if err == nil {
		return ""
	}
	return err.Error()
}

// handleWrite forwards a mutation to the leader. Writes are never
// retried: the proxy cannot know whether a failed round-trip applied the
// batch, and replaying it would commit the mutation twice.
func (p *Proxy) handleWrite(w http.ResponseWriter, r *http.Request) {
	p.requests.v.Add(1)
	p.writes.v.Add(1)
	id := ensureRequestID(w, r)
	leader := p.set.Leader()
	if leader == nil {
		p.noReplica.v.Add(1)
		writeProxyError(w, http.StatusServiceUnavailable, "no_leader", "no replica currently claims the leader role")
		return
	}
	body, err := io.ReadAll(r.Body)
	if err != nil {
		writeProxyError(w, http.StatusBadRequest, "bad_body", "reading request body: %v", err)
		return
	}
	resp, err := p.do(r.Context(), leader, r.Method, r.URL.RequestURI(), r.Header.Get("Content-Type"), id, body)
	if err != nil {
		p.badGW.v.Add(1)
		p.logger.Warn("bad gateway", "request_id", id, "uri", r.URL.RequestURI(), "replica", leader.Name, "error", err.Error())
		writeProxyError(w, http.StatusBadGateway, "bad_gateway", "leader %s: %v", leader.Name, err)
		return
	}
	p.relay(w, resp, leader)
}

func (p *Proxy) handleHealthz(w http.ResponseWriter, r *http.Request) {
	routable := len(p.set.Routable())
	status := http.StatusOK
	state := "ok"
	if routable == 0 {
		status = http.StatusServiceUnavailable
		state = "no_replica"
	}
	body := map[string]any{
		"status":   state,
		"routable": routable,
		"replicas": len(p.set.Replicas()),
	}
	if leader := p.set.Leader(); leader != nil {
		body["leader"] = leader.Name
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(body)
}

// ReplicaStats is one replica's block in the proxy's /statsz.
type ReplicaStats struct {
	Name          string      `json:"name"`
	URL           string      `json:"url"`
	Healthy       bool        `json:"healthy"`
	Routable      bool        `json:"routable"`
	Leader        bool        `json:"leader"`
	Status        string      `json:"status"`
	Epoch         uint64      `json:"epoch"`
	Lag           int64       `json:"lag"`
	InFlight      int64       `json:"in_flight"`
	Proxied       uint64      `json:"requests_proxied"`
	Cache         cache.Stats `json:"cache"`
	EngineQueries uint64      `json:"engine_queries"`
}

// StatsSnapshot is the proxy's /statsz payload. The top-level field
// names (graph_n, epoch, cache, client) deliberately mirror a replica's
// /statsz so tooling that reads either — simbench -http in particular —
// works against both; aggregates are summed over the roster and Replicas
// carries the per-replica breakdown.
type StatsSnapshot struct {
	Proxy         bool               `json:"proxy"`
	Policy        string             `json:"policy"`
	UptimeSeconds float64            `json:"uptime_seconds"`
	GraphN        int32              `json:"graph_n"`
	GraphM        int64              `json:"graph_m"`
	Epoch         uint64             `json:"epoch"`
	Requests      uint64             `json:"requests"`
	Writes        uint64             `json:"writes"`
	Retries       uint64             `json:"retries"`
	Failovers     uint64             `json:"failovers"`
	NoReplica     uint64             `json:"no_replica_503"`
	BadGateway    uint64             `json:"bad_gateway_502"`
	Routable      int                `json:"routable"`
	Cache         cache.Stats        `json:"cache"`
	Client        server.ClientStats `json:"client"`
	Replicas      []ReplicaStats     `json:"replicas"`
}

// Stats assembles the aggregate + per-replica snapshot from the last
// probe results (call Set.ProbeOnce first for fresh numbers).
func (p *Proxy) Stats() StatsSnapshot {
	snap := StatsSnapshot{
		Proxy:         true,
		Policy:        p.policy.Name(),
		UptimeSeconds: time.Since(p.start).Seconds(),
		Requests:      p.requests.v.Load(),
		Writes:        p.writes.v.Load(),
		Retries:       p.retries.v.Load(),
		Failovers:     p.failovers.v.Load(),
		NoReplica:     p.noReplica.v.Load(),
		BadGateway:    p.badGW.v.Load(),
	}
	for _, r := range p.set.Replicas() {
		rs := ReplicaStats{
			Name:     r.Name,
			URL:      r.URL,
			Healthy:  r.healthy.Load(),
			Routable: r.routable.Load(),
			Leader:   r.leader.Load(),
			Status:   r.Status(),
			Epoch:    r.epoch.Load(),
			Lag:      r.lag.Load(),
			InFlight: r.Load(),
			Proxied:  r.proxied.Load(),
		}
		if st := r.stats.Load(); st != nil {
			rs.Cache = st.Cache
			rs.EngineQueries = st.Client.Queries
			snap.Cache.Hits += st.Cache.Hits
			snap.Cache.Misses += st.Cache.Misses
			snap.Cache.Coalesced += st.Cache.Coalesced
			snap.Cache.Evictions += st.Cache.Evictions
			snap.Cache.Entries += st.Cache.Entries
			snap.Client.Queries += st.Client.Queries
			snap.Client.Errors += st.Client.Errors
			snap.Client.InFlight += st.Client.InFlight
			if snap.GraphN == 0 {
				snap.GraphN, snap.GraphM = st.GraphN, st.GraphM
			}
		}
		if rs.Routable {
			snap.Routable++
			if rs.Epoch > snap.Epoch {
				snap.Epoch = rs.Epoch
			}
		}
		snap.Replicas = append(snap.Replicas, rs)
	}
	return snap
}

// handleStatsz refreshes the probe state (bounded to 2s) so the counters
// are current, then reports the aggregate + per-replica snapshot.
func (p *Proxy) handleStatsz(w http.ResponseWriter, r *http.Request) {
	ctx, cancel := context.WithTimeout(r.Context(), 2*time.Second)
	p.set.ProbeOnce(ctx)
	cancel()
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	enc.Encode(p.Stats())
}
