package cluster

import (
	"fmt"
	"sort"
	"sync/atomic"
)

// A RoutingPolicy picks the replica a read is sent to. candidates is the
// currently routable subset (never empty) in registration order; node is
// the query's source node when the request has one (hasNode false for
// requests without an affinity key, e.g. a batch whose body failed to
// parse). Implementations must be safe for concurrent use.
type RoutingPolicy interface {
	Name() string
	Pick(node int32, hasNode bool, candidates []*Replica) *Replica
}

// NewPolicy builds a policy by flag name over the full replica roster
// (the consistent-hash ring is built from all replicas, not just the
// currently healthy ones, so health flaps don't remap the whole ring).
func NewPolicy(name string, all []*Replica) (RoutingPolicy, error) {
	switch name {
	case "hash", "cache-affinity", "affinity":
		return newConsistentHash(all), nil
	case "least-loaded":
		return leastLoaded{}, nil
	case "round-robin":
		return &roundRobin{}, nil
	}
	return nil, fmt.Errorf("cluster: unknown routing policy %q (want hash, least-loaded or round-robin)", name)
}

// roundRobin cycles through the candidates in order. With a stable
// candidate set the spread is exactly uniform; it ignores both node
// affinity and load.
type roundRobin struct{ next atomic.Uint64 }

func (p *roundRobin) Name() string { return "round-robin" }

func (p *roundRobin) Pick(_ int32, _ bool, candidates []*Replica) *Replica {
	return candidates[(p.next.Add(1)-1)%uint64(len(candidates))]
}

// leastLoaded picks the candidate with the fewest in-flight requests
// (replica-reported engine in-flight plus this proxy's open requests).
// Ties break to the lowest registration index, so a freshly started
// cluster routes deterministically instead of by map order.
type leastLoaded struct{}

func (leastLoaded) Name() string { return "least-loaded" }

func (leastLoaded) Pick(_ int32, _ bool, candidates []*Replica) *Replica {
	best := candidates[0]
	bestLoad := best.Load()
	for _, r := range candidates[1:] {
		if l := r.Load(); l < bestLoad || (l == bestLoad && r.idx < best.idx) {
			best, bestLoad = r, l
		}
	}
	return best
}

// consistentHash routes each node to a stable replica via a hash ring
// with virtual nodes: adding a replica to an N-replica ring remaps only
// ~1/(N+1) of the key space, so replica caches stay warm through roster
// changes. Unrouteable owners (not in candidates) fall through to the
// next point clockwise, which preserves the rest of the mapping when one
// replica fails out.
type consistentHash struct {
	points   []ringPoint
	fallback roundRobin // for requests with no affinity key
}

type ringPoint struct {
	hash uint64
	rep  *Replica
}

// vnodes spreads each replica over the ring; 64 keeps the per-replica
// share within a few percent of uniform at single-digit cluster sizes.
const vnodes = 64

func newConsistentHash(all []*Replica) *consistentHash {
	ch := &consistentHash{points: make([]ringPoint, 0, len(all)*vnodes)}
	for _, r := range all {
		for v := 0; v < vnodes; v++ {
			ch.points = append(ch.points, ringPoint{
				hash: hashString(fmt.Sprintf("%s#%d", r.Name, v)),
				rep:  r,
			})
		}
	}
	sort.Slice(ch.points, func(i, j int) bool { return ch.points[i].hash < ch.points[j].hash })
	return ch
}

func (ch *consistentHash) Name() string { return "hash" }

func (ch *consistentHash) Pick(node int32, hasNode bool, candidates []*Replica) *Replica {
	if !hasNode || len(ch.points) == 0 {
		return ch.fallback.Pick(node, hasNode, candidates)
	}
	h := hashNode(node)
	start := sort.Search(len(ch.points), func(i int) bool { return ch.points[i].hash >= h })
	for i := 0; i < len(ch.points); i++ {
		rep := ch.points[(start+i)%len(ch.points)].rep
		for _, c := range candidates {
			if c == rep {
				return rep
			}
		}
	}
	return ch.fallback.Pick(node, hasNode, candidates)
}

// hashString is FNV-1a finalized with mix64, used for ring point
// placement. Raw FNV leaves too little avalanche for near-identical
// keys like "replica-0#17" / "replica-1#17", which clumps vnode points
// and skews replica shares well away from uniform.
func hashString(s string) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime
	}
	return mix64(h)
}

// hashNode maps a node id to a well-mixed ring position so sequential
// ids land far apart.
func hashNode(node int32) uint64 {
	return mix64(uint64(uint32(node)) + 0x9e3779b97f4a7c15)
}

// mix64 is the splitmix64 finalizer.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}
