package rnd

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds produced %d identical outputs", same)
	}
}

func TestFloat64Range(t *testing.T) {
	s := New(7)
	for i := 0; i < 100000; i++ {
		f := s.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	s := New(99)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += s.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.005 {
		t.Fatalf("Float64 mean %v too far from 0.5", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	s := New(3)
	if err := quick.Check(func(raw uint16) bool {
		n := int(raw%1000) + 1
		v := s.Intn(n)
		return v >= 0 && v < n
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIntnUniform(t *testing.T) {
	s := New(5)
	const buckets = 10
	const samples = 100000
	var counts [buckets]int
	for i := 0; i < samples; i++ {
		counts[s.Intn(buckets)]++
	}
	want := float64(samples) / buckets
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Fatalf("bucket %d count %d deviates from %v", i, c, want)
		}
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestUint64nPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Uint64n(0) did not panic")
		}
	}()
	New(1).Uint64n(0)
}

func TestInt31n(t *testing.T) {
	s := New(11)
	for i := 0; i < 10000; i++ {
		v := s.Int31n(17)
		if v < 0 || v >= 17 {
			t.Fatalf("Int31n out of range: %d", v)
		}
	}
}

func TestBernoulli(t *testing.T) {
	s := New(13)
	const n = 100000
	hits := 0
	for i := 0; i < n; i++ {
		if s.Bernoulli(0.3) {
			hits++
		}
	}
	p := float64(hits) / n
	if math.Abs(p-0.3) > 0.01 {
		t.Fatalf("Bernoulli(0.3) frequency %v", p)
	}
}

func TestPerm(t *testing.T) {
	s := New(17)
	p := s.Perm(100)
	seen := make([]bool, 100)
	for _, v := range p {
		if v < 0 || v >= 100 || seen[v] {
			t.Fatalf("Perm not a permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestShuffleIsPermutation(t *testing.T) {
	s := New(19)
	vals := make([]int, 50)
	for i := range vals {
		vals[i] = i
	}
	s.Shuffle(len(vals), func(i, j int) { vals[i], vals[j] = vals[j], vals[i] })
	seen := make([]bool, 50)
	for _, v := range vals {
		if seen[v] {
			t.Fatalf("Shuffle duplicated %d", v)
		}
		seen[v] = true
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(23)
	child := parent.Split()
	// The child stream should not mirror the parent stream.
	same := 0
	for i := 0; i < 100; i++ {
		if parent.Uint64() == child.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("child stream mirrors parent (%d collisions)", same)
	}
}

func TestSeedZeroUsable(t *testing.T) {
	s := New(0)
	if s.Uint64() == 0 && s.Uint64() == 0 && s.Uint64() == 0 {
		t.Fatal("seed 0 produced a degenerate stream")
	}
}

func BenchmarkUint64(b *testing.B) {
	s := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += s.Uint64()
	}
	_ = sink
}

func BenchmarkFloat64(b *testing.B) {
	s := New(1)
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += s.Float64()
	}
	_ = sink
}

func BenchmarkInt31n(b *testing.B) {
	s := New(1)
	var sink int32
	for i := 0; i < b.N; i++ {
		sink += s.Int31n(12345)
	}
	_ = sink
}
