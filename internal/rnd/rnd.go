// Package rnd provides fast, deterministic pseudo-random number generation
// for the SimPush library and its baselines.
//
// The generator is xoshiro256++ seeded through splitmix64, the combination
// recommended by Blackman and Vigna. It is not safe for concurrent use; each
// goroutine should own its own *Source (see Split).
//
// All samplers in this repository accept a *Source so that every experiment
// is reproducible from a single uint64 seed.
package rnd

import "math/bits"

// Source is a xoshiro256++ pseudo-random number generator.
// The zero value is not usable; construct with New.
type Source struct {
	s0, s1, s2, s3 uint64
}

// splitmix64 advances x and returns the next splitmix64 output.
// It is used only for seeding, per Vigna's recommendation.
func splitmix64(x *uint64) uint64 {
	*x += 0x9e3779b97f4a7c15
	z := *x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// New returns a Source deterministically derived from seed.
// Distinct seeds yield independent-looking streams.
func New(seed uint64) *Source {
	var s Source
	s.Seed(seed)
	return &s
}

// Seed resets the generator state from seed.
func (s *Source) Seed(seed uint64) {
	x := seed
	s.s0 = splitmix64(&x)
	s.s1 = splitmix64(&x)
	s.s2 = splitmix64(&x)
	s.s3 = splitmix64(&x)
	// xoshiro must not start from the all-zero state; splitmix64 of any
	// seed cannot produce four zero words, but guard anyway.
	if s.s0|s.s1|s.s2|s.s3 == 0 {
		s.s3 = 0x9e3779b97f4a7c15
	}
}

// State returns the generator's internal state; pass it to Restore to
// resume the stream exactly where State was taken.
func (s *Source) State() (a, b, c, d uint64) {
	return s.s0, s.s1, s.s2, s.s3
}

// Restore resets the generator to a state previously returned by State.
func (s *Source) Restore(a, b, c, d uint64) {
	if a|b|c|d == 0 {
		// Never adopt the forbidden all-zero state.
		d = 0x9e3779b97f4a7c15
	}
	s.s0, s.s1, s.s2, s.s3 = a, b, c, d
}

// Uint64 returns the next 64 uniformly distributed bits.
func (s *Source) Uint64() uint64 {
	r := bits.RotateLeft64(s.s0+s.s3, 23) + s.s0
	t := s.s1 << 17
	s.s2 ^= s.s0
	s.s3 ^= s.s1
	s.s1 ^= s.s2
	s.s0 ^= s.s3
	s.s2 ^= t
	s.s3 = bits.RotateLeft64(s.s3, 45)
	return r
}

// Float64 returns a uniform float64 in [0, 1).
func (s *Source) Float64() float64 {
	return float64(s.Uint64()>>11) * (1.0 / (1 << 53))
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (s *Source) Intn(n int) int {
	if n <= 0 {
		panic("rnd: Intn called with non-positive n")
	}
	return int(s.Uint64n(uint64(n)))
}

// Int31n returns a uniform int32 in [0, n). It panics if n <= 0.
func (s *Source) Int31n(n int32) int32 {
	if n <= 0 {
		panic("rnd: Int31n called with non-positive n")
	}
	return int32(s.Uint64n(uint64(n)))
}

// Uint64n returns a uniform uint64 in [0, n) using Lemire's
// multiply-shift rejection method. It panics if n == 0.
func (s *Source) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("rnd: Uint64n called with zero n")
	}
	hi, lo := bits.Mul64(s.Uint64(), n)
	if lo < n {
		thresh := -n % n
		for lo < thresh {
			hi, lo = bits.Mul64(s.Uint64(), n)
		}
	}
	return hi
}

// Bernoulli reports true with probability p.
func (s *Source) Bernoulli(p float64) bool {
	return s.Float64() < p
}

// Split derives a new independent Source from the current stream.
// It is the supported way to hand generators to worker goroutines.
func (s *Source) Split() *Source {
	return New(s.Uint64())
}

// Perm returns a pseudo-random permutation of [0, n) as an []int32.
func (s *Source) Perm(n int) []int32 {
	p := make([]int32, n)
	for i := range p {
		p[i] = int32(i)
	}
	for i := n - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle pseudo-randomly permutes the first n elements using swap.
func (s *Source) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		swap(i, j)
	}
}
