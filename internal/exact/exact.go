// Package exact computes exact SimRank values with the power method
// (Jeh & Widom [10]; matrix form S = (c·Pᵀ·S·P) ∨ I of Kusumoto et al. [14]).
//
// It is the correctness oracle for every approximate algorithm in this
// repository. Cost is Θ(n·m) time per iteration and Θ(n²) memory, so it is
// only suitable for graphs up to a few thousand nodes.
package exact

import (
	"fmt"
	"math"

	"github.com/simrank/simpush/internal/graph"
)

// Result holds an exact all-pairs SimRank matrix.
type Result struct {
	N int32
	s []float64 // row-major n x n
}

// At returns s(u, v).
func (r *Result) At(u, v int32) float64 {
	return r.s[int64(u)*int64(r.N)+int64(v)]
}

// Row returns the single-source SimRank vector of u as a copy.
func (r *Result) Row(u int32) []float64 {
	out := make([]float64, r.N)
	copy(out, r.s[int64(u)*int64(r.N):int64(u+1)*int64(r.N)])
	return out
}

// Options configures the power-method iteration.
type Options struct {
	C         float64 // decay factor; default 0.6
	Tolerance float64 // iterate until c^k/(1-c) < Tolerance; default 1e-9
	MaxNodes  int32   // safety bound on n; default 5000
}

func (o *Options) fill() {
	if o.C == 0 {
		o.C = 0.6
	}
	if o.Tolerance == 0 {
		o.Tolerance = 1e-9
	}
	if o.MaxNodes == 0 {
		o.MaxNodes = 5000
	}
}

// AllPairs runs the power method to convergence and returns the exact
// SimRank matrix (up to the requested tolerance).
//
// The iteration is S_{k+1}(u,v) = c/(d_I(u)·d_I(v)) Σ_{u'∈I(u)} Σ_{v'∈I(v)}
// S_k(u',v') for u≠v with the diagonal pinned to 1, computed as two
// sparse-dense products per iteration: A = S·Wᵀ then S' = c·W·A, where W is
// the row-normalized in-adjacency operator (W[u][u'] = 1/d_I(u)).
func AllPairs(g *graph.Graph, opts Options) (*Result, error) {
	opts.fill()
	n := g.N()
	if n > opts.MaxNodes {
		return nil, fmt.Errorf("exact: n=%d exceeds MaxNodes=%d (power method is Θ(n²) memory)", n, opts.MaxNodes)
	}
	if opts.C <= 0 || opts.C >= 1 {
		return nil, fmt.Errorf("exact: c must be in (0,1), got %v", opts.C)
	}
	nn := int64(n) * int64(n)
	s := make([]float64, nn)
	a := make([]float64, nn)
	next := make([]float64, nn)
	for i := int32(0); i < n; i++ {
		s[int64(i)*int64(n)+int64(i)] = 1
	}
	iters := int(math.Ceil(math.Log(opts.Tolerance*(1-opts.C)) / math.Log(opts.C)))
	if iters < 1 {
		iters = 1
	}
	for k := 0; k < iters; k++ {
		// A(x, v) = (1/d_I(v)) Σ_{v'∈I(v)} S(x, v')
		for i := range a {
			a[i] = 0
		}
		for v := int32(0); v < n; v++ {
			in := g.In(v)
			if len(in) == 0 {
				continue
			}
			inv := 1 / float64(len(in))
			for x := int32(0); x < n; x++ {
				row := s[int64(x)*int64(n):]
				var sum float64
				for _, vp := range in {
					sum += row[vp]
				}
				a[int64(x)*int64(n)+int64(v)] = sum * inv
			}
		}
		// S'(u, v) = c · (1/d_I(u)) Σ_{u'∈I(u)} A(u', v); diagonal = 1.
		for i := range next {
			next[i] = 0
		}
		for u := int32(0); u < n; u++ {
			in := g.In(u)
			outRow := next[int64(u)*int64(n):]
			if len(in) > 0 {
				scale := opts.C / float64(len(in))
				for _, up := range in {
					aRow := a[int64(up)*int64(n):]
					for v := int32(0); v < n; v++ {
						outRow[v] += aRow[v]
					}
				}
				for v := int32(0); v < n; v++ {
					outRow[v] *= scale
				}
			}
			outRow[u] = 1
		}
		s, next = next, s
	}
	return &Result{N: n, s: s}, nil
}

// SingleSource returns the exact SimRank row of u. It currently runs the
// all-pairs power method (the recursion couples all pairs), so the same
// size limits apply.
func SingleSource(g *graph.Graph, u int32, opts Options) ([]float64, error) {
	if !g.HasNode(u) {
		return nil, fmt.Errorf("exact: node %d out of range", u)
	}
	r, err := AllPairs(g, opts)
	if err != nil {
		return nil, err
	}
	return r.Row(u), nil
}
