package exact

import (
	"math"
	"testing"

	"github.com/simrank/simpush/internal/gen"
	"github.com/simrank/simpush/internal/graph"
)

const c = 0.6

func TestDiagonalIsOne(t *testing.T) {
	g, err := gen.ErdosRenyi(50, 300, 1)
	if err != nil {
		t.Fatal(err)
	}
	r, err := AllPairs(g, Options{C: c})
	if err != nil {
		t.Fatal(err)
	}
	for v := int32(0); v < g.N(); v++ {
		if r.At(v, v) != 1 {
			t.Fatalf("s(%d,%d) = %v", v, v, r.At(v, v))
		}
	}
}

func TestSymmetry(t *testing.T) {
	g, err := gen.ErdosRenyi(40, 200, 2)
	if err != nil {
		t.Fatal(err)
	}
	r, err := AllPairs(g, Options{C: c})
	if err != nil {
		t.Fatal(err)
	}
	for u := int32(0); u < g.N(); u++ {
		for v := int32(0); v < g.N(); v++ {
			if math.Abs(r.At(u, v)-r.At(v, u)) > 1e-12 {
				t.Fatalf("s(%d,%d)=%v != s(%d,%d)=%v", u, v, r.At(u, v), v, u, r.At(v, u))
			}
		}
	}
}

func TestRange(t *testing.T) {
	g, err := gen.CopyingModel(100, 4, 0.3, 3)
	if err != nil {
		t.Fatal(err)
	}
	r, err := AllPairs(g, Options{C: c})
	if err != nil {
		t.Fatal(err)
	}
	for u := int32(0); u < g.N(); u++ {
		for v := int32(0); v < g.N(); v++ {
			s := r.At(u, v)
			if s < 0 || s > 1+1e-12 {
				t.Fatalf("s(%d,%d) = %v out of range", u, v, s)
			}
		}
	}
}

// On the directed cycle, distinct nodes never meet: s(u,v) = 0.
func TestCycleZero(t *testing.T) {
	g := gen.Cycle(8)
	r, err := AllPairs(g, Options{C: c})
	if err != nil {
		t.Fatal(err)
	}
	for u := int32(0); u < 8; u++ {
		for v := int32(0); v < 8; v++ {
			if u != v && r.At(u, v) != 0 {
				t.Fatalf("cycle s(%d,%d) = %v, want 0", u, v, r.At(u, v))
			}
		}
	}
}

// Two children of a shared parent: s(1,2) = c (walks meet at parent with
// probability c at step 1; from the parent the walks coincide forever, so
// no further terms).
func TestSharedParent(t *testing.T) {
	g := graph.MustFromPairs([2]int32{0, 1}, [2]int32{0, 2})
	r, err := AllPairs(g, Options{C: c})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.At(1, 2)-c) > 1e-9 {
		t.Fatalf("s(1,2) = %v, want %v", r.At(1, 2), c)
	}
	// The parent has no in-neighbors: s(0, 1) = 0.
	if r.At(0, 1) != 0 {
		t.Fatalf("s(0,1) = %v, want 0", r.At(0, 1))
	}
}

// Three children of a shared parent: same argument, s(i,j) = c for i != j.
func TestThreeSiblings(t *testing.T) {
	g := graph.MustFromPairs([2]int32{0, 1}, [2]int32{0, 2}, [2]int32{0, 3})
	r, err := AllPairs(g, Options{C: c})
	if err != nil {
		t.Fatal(err)
	}
	for _, pair := range [][2]int32{{1, 2}, {1, 3}, {2, 3}} {
		if math.Abs(r.At(pair[0], pair[1])-c) > 1e-9 {
			t.Fatalf("s(%v) = %v, want %v", pair, r.At(pair[0], pair[1]), c)
		}
	}
}

// Hand-derivable chain: 0 -> 1, 0 -> 2, 1 -> 3, 2 -> 4.
// s(3,4): I(3)={1}, I(4)={2}; s(3,4) = c·s(1,2) = c·c = c².
func TestTwoHopChain(t *testing.T) {
	g := graph.MustFromPairs([2]int32{0, 1}, [2]int32{0, 2}, [2]int32{1, 3}, [2]int32{2, 4})
	r, err := AllPairs(g, Options{C: c})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.At(3, 4)-c*c) > 1e-9 {
		t.Fatalf("s(3,4) = %v, want %v", r.At(3, 4), c*c)
	}
}

// Fixed-point verification: the converged matrix must satisfy the SimRank
// recurrence on every off-diagonal pair.
func TestFixedPoint(t *testing.T) {
	g, err := gen.CopyingModel(60, 3, 0.4, 9)
	if err != nil {
		t.Fatal(err)
	}
	r, err := AllPairs(g, Options{C: c, Tolerance: 1e-12})
	if err != nil {
		t.Fatal(err)
	}
	n := g.N()
	for u := int32(0); u < n; u++ {
		for v := int32(0); v < n; v++ {
			if u == v {
				continue
			}
			inU, inV := g.In(u), g.In(v)
			want := 0.0
			if len(inU) > 0 && len(inV) > 0 {
				var sum float64
				for _, a := range inU {
					for _, b := range inV {
						sum += r.At(a, b)
					}
				}
				want = c * sum / (float64(len(inU)) * float64(len(inV)))
			}
			if math.Abs(r.At(u, v)-want) > 1e-9 {
				t.Fatalf("recurrence violated at (%d,%d): have %v want %v", u, v, r.At(u, v), want)
			}
		}
	}
}

func TestRowMatchesAt(t *testing.T) {
	g, err := gen.ErdosRenyi(30, 120, 4)
	if err != nil {
		t.Fatal(err)
	}
	r, err := AllPairs(g, Options{C: c})
	if err != nil {
		t.Fatal(err)
	}
	row := r.Row(7)
	for v := int32(0); v < g.N(); v++ {
		if row[v] != r.At(7, v) {
			t.Fatal("Row/At mismatch")
		}
	}
}

func TestSingleSource(t *testing.T) {
	g := gen.Star(5)
	row, err := SingleSource(g, 0, Options{C: c})
	if err != nil {
		t.Fatal(err)
	}
	if row[0] != 1 {
		t.Fatal("self similarity != 1")
	}
	if _, err := SingleSource(g, 99, Options{C: c}); err == nil {
		t.Fatal("out-of-range node accepted")
	}
}

func TestSizeGuard(t *testing.T) {
	g, err := gen.ErdosRenyi(100, 200, 5)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := AllPairs(g, Options{C: c, MaxNodes: 50}); err == nil {
		t.Fatal("size guard did not trip")
	}
}

func TestBadC(t *testing.T) {
	g := gen.Cycle(4)
	if _, err := AllPairs(g, Options{C: 1.5}); err == nil {
		t.Fatal("c=1.5 accepted")
	}
	if _, err := AllPairs(g, Options{C: -0.2}); err == nil {
		t.Fatal("c=-0.2 accepted")
	}
}

func BenchmarkAllPairs200(b *testing.B) {
	g, err := gen.CopyingModel(200, 5, 0.3, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := AllPairs(g, Options{C: c}); err != nil {
			b.Fatal(err)
		}
	}
}
