package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// DetMerge guards the bit-identical determinism contract of the engine
// packages (docs/performance.md): for a fixed (seed, parallelism) a query
// must produce byte-identical scores across runs, GOMAXPROCS values, and
// replicas — followers replay the leader's mutations and are asserted
// equal at equal epochs, so any scheduling- or hash-order dependence in a
// score path is a replication bug, not just flakiness.
//
// Three rules, in internal/core, internal/walk, and internal/push only:
//
//  1. no range over a map that feeds score accumulation — Go randomizes
//     map iteration order, so float reductions in map order differ run
//     to run by rounding;
//  2. no ambient nondeterminism: global math/rand (any use) and
//     time.Now — sampling must come from the engine's seed-derived
//     Walker substreams;
//  3. no scheduling-ordered goroutine collection: results gathered by
//     ranging over a channel or select-looping arrive in completion
//     order — workers must write into index-addressed slots merged in
//     worker order (see runWorkers / shard in internal/core).
var DetMerge = &Analyzer{
	Name: "detmerge",
	Doc:  "deterministic packages must not merge scores in map, scheduling, or wall-clock order",
	PackageSuffixes: []string{
		"internal/core", "internal/walk", "internal/push",
	},
	Run: runDetMerge,
}

func runDetMerge(pass *Pass) {
	for _, f := range pass.Files {
		if isTestFile(pass.Fset, f) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.RangeStmt:
				checkRangeMerge(pass, n)
			case *ast.SelectorExpr:
				checkAmbient(pass, n)
			case *ast.ForStmt:
				checkSelectCollect(pass, n)
			}
			return true
		})
	}
}

// checkRangeMerge flags rules 1 and 3 for range statements.
func checkRangeMerge(pass *Pass, rs *ast.RangeStmt) {
	t := pass.TypeOf(rs.X)
	if t == nil {
		return
	}
	switch t.Underlying().(type) {
	case *types.Map:
		if accumulates(pass, rs.Body) {
			pass.Reportf(rs.Pos(),
				"range over map feeds score accumulation: iteration order is randomized, so the float reduction differs run to run — iterate an ordered slice (e.g. a touched list) instead")
		}
	case *types.Chan:
		if accumulates(pass, rs.Body) || appendsAny(pass, rs.Body) {
			pass.Reportf(rs.Pos(),
				"goroutine results collected in channel-arrival order: completion order is scheduling-dependent — have workers write index-addressed slots and merge in worker order")
		}
	}
}

// checkSelectCollect flags select-loop collection (rule 3): a for loop
// whose select receives from a channel and accumulates or appends.
func checkSelectCollect(pass *Pass, fs *ast.ForStmt) {
	for _, st := range fs.Body.List {
		sel, ok := st.(*ast.SelectStmt)
		if !ok {
			continue
		}
		for _, cl := range sel.Body.List {
			comm, ok := cl.(*ast.CommClause)
			if !ok || comm.Comm == nil {
				continue
			}
			if !isRecv(pass, comm.Comm) {
				continue
			}
			body := &ast.BlockStmt{List: comm.Body}
			if accumulates(pass, body) || appendsAny(pass, body) {
				pass.Reportf(sel.Pos(),
					"select-loop collects goroutine results in completion order: scheduling decides the merge order — have workers write index-addressed slots and merge in worker order")
			}
		}
	}
}

// isRecv reports whether the comm statement receives from a channel.
func isRecv(pass *Pass, comm ast.Stmt) bool {
	switch c := comm.(type) {
	case *ast.AssignStmt:
		for _, r := range c.Rhs {
			if u, ok := r.(*ast.UnaryExpr); ok && u.Op == token.ARROW {
				return true
			}
		}
	case *ast.ExprStmt:
		if u, ok := c.X.(*ast.UnaryExpr); ok && u.Op == token.ARROW {
			return true
		}
	}
	return false
}

// accumulates reports whether the block performs float accumulation:
// x += ..., x -= ..., x *= ..., x /= ... on a float, x = x + ... on a
// float, or append to a float-bearing slice.
func accumulates(pass *Pass, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || found {
			return !found
		}
		switch as.Tok {
		case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
			if len(as.Lhs) == 1 && isFloat(pass.TypeOf(as.Lhs[0])) {
				found = true
			}
		case token.ASSIGN:
			if len(as.Lhs) == 1 && len(as.Rhs) == 1 && isFloat(pass.TypeOf(as.Lhs[0])) &&
				selfReferential(as.Lhs[0], as.Rhs[0]) {
				found = true
			}
		}
		if !found {
			for _, r := range as.Rhs {
				if call, ok := r.(*ast.CallExpr); ok && isAppend(pass, call) &&
					containsFloat(pass.TypeOf(call)) {
					found = true
				}
			}
		}
		return !found
	})
	return found
}

// appendsAny reports whether the block appends to any slice — for
// channel-collection loops the element type doesn't matter, arrival
// order already corrupts the merge.
func appendsAny(pass *Pass, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok && isAppend(pass, call) {
			found = true
		}
		return !found
	})
	return found
}

// isAppend reports whether call is the builtin append.
func isAppend(pass *Pass, call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := pass.Info.Uses[id].(*types.Builtin)
	return ok && b.Name() == "append"
}

// selfReferential reports whether rhs mentions the lhs expression (the
// x = x + y accumulation shape), compared textually.
func selfReferential(lhs, rhs ast.Expr) bool {
	want := types.ExprString(lhs)
	found := false
	ast.Inspect(rhs, func(n ast.Node) bool {
		if e, ok := n.(ast.Expr); ok && types.ExprString(e) == want {
			found = true
		}
		return !found
	})
	return found
}

// checkAmbient flags rule 2: any math/rand use and time.Now.
func checkAmbient(pass *Pass, sel *ast.SelectorExpr) {
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return
	}
	p := pkgNameOf(pass.Info, id)
	if p == nil {
		return
	}
	switch p.Path() {
	case "math/rand", "math/rand/v2":
		pass.Reportf(sel.Pos(),
			"math/rand in a deterministic package: ambient randomness breaks fixed-(seed, parallelism) reproducibility — draw from the engine's seed-derived Walker substreams (internal/rnd)")
	case "time":
		if sel.Sel.Name == "Now" {
			pass.Reportf(sel.Pos(),
				"time.Now in a deterministic package: wall-clock reads must not influence results — confine timing to an annotated observability helper")
		}
	}
}
