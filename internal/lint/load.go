package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
)

// A Package is one loaded, type-checked package ready for analysis.
type Package struct {
	Path   string // import path
	Fset   *token.FileSet
	Syntax []*ast.File
	Types  *types.Package
	Info   *types.Info
}

// listedPackage is the subset of `go list -json` output the loader needs.
type listedPackage struct {
	ImportPath string
	Dir        string
	Export     string
	Standard   bool
	DepOnly    bool
	GoFiles    []string
	Error      *struct{ Err string }
}

// Load lists, parses, and type-checks the packages matching patterns,
// rooted at dir (the module root). Dependencies resolve through compiler
// export data produced by `go list -export`, so loading stays offline and
// dependency-free. Test files are not loaded: the invariants the suite
// guards live in production code, and `go vet`-driven runs cover tests
// separately.
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{"list", "-deps", "-export",
		"-json=ImportPath,Dir,Export,Standard,DepOnly,GoFiles,Error"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("lint: go list failed: %v\n%s", err, stderr.String())
	}

	exports := map[string]string{}
	var targets []*listedPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("lint: decoding go list output: %v", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("lint: %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly && !p.Standard {
			pkg := p
			targets = append(targets, &pkg)
		}
	}

	fset := token.NewFileSet()
	imp := exportImporter(fset, exports)
	var pkgs []*Package
	for _, t := range targets {
		pkg, err := typecheck(fset, imp, t.ImportPath, t.Dir, t.GoFiles)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// LoadFixture parses and type-checks the .go files in dir as one package
// with import path asPath, resolving imports (standard library and this
// module alike) through the enclosing module's build cache. It exists for
// analysistest-style fixture tests: asPath controls which analyzers
// consider the package theirs, so a fixture can impersonate
// internal/core without living there.
func LoadFixture(dir, asPath string) (*Package, error) {
	root, err := ModuleRoot()
	if err != nil {
		return nil, err
	}
	args := []string{"list", "-deps", "-export",
		"-json=ImportPath,Export,Error",
		"./...", "context", "fmt", "math/rand", "net", "net/http", "sort", "sync", "time"}
	cmd := exec.Command("go", args...)
	cmd.Dir = root
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("lint: go list failed: %v\n%s", err, stderr.String())
	}
	exports := map[string]string{}
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, err
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var goFiles []string
	for _, e := range entries {
		if !e.IsDir() && filepath.Ext(e.Name()) == ".go" {
			goFiles = append(goFiles, e.Name())
		}
	}
	fset := token.NewFileSet()
	return typecheck(fset, exportImporter(fset, exports), asPath, dir, goFiles)
}

// ModuleRoot locates the enclosing module's directory.
func ModuleRoot() (string, error) {
	out, err := exec.Command("go", "env", "GOMOD").Output()
	if err != nil {
		return "", fmt.Errorf("lint: go env GOMOD: %v", err)
	}
	gomod := string(bytes.TrimSpace(out))
	if gomod == "" || gomod == os.DevNull {
		return "", fmt.Errorf("lint: not inside a module")
	}
	return filepath.Dir(gomod), nil
}

// exportImporter resolves import paths against compiler export data files.
func exportImporter(fset *token.FileSet, exports map[string]string) types.Importer {
	return importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("lint: no export data for %q", path)
		}
		return os.Open(f)
	})
}

// typecheck parses and type-checks one package from source.
func typecheck(fset *token.FileSet, imp types.Importer, path, dir string, goFiles []string) (*Package, error) {
	var files []*ast.File
	for _, name := range goFiles {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("lint: %v", err)
		}
		files = append(files, f)
	}
	info := newInfo()
	conf := types.Config{
		Importer: imp,
		Sizes:    types.SizesFor("gc", build.Default.GOARCH),
	}
	tpkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %v", path, err)
	}
	return &Package{Path: path, Fset: fset, Syntax: files, Types: tpkg, Info: info}, nil
}

// newInfo allocates a fully populated types.Info.
func newInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Implicits:  map[ast.Node]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
		Instances:  map[*ast.Ident]types.Instance{},
	}
}
