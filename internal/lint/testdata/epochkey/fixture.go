// Fixture for the epochkey analyzer: cache keys must flow from an
// epoch-bearing value, and score-shaped caches must not appear outside
// internal/cache.
package fixture

import (
	"context"

	"github.com/simrank/simpush/internal/cache"
)

type view struct{ e uint64 }

func (v view) Epoch() uint64 { return v.e }

// True positive: the key literal never sets Epoch, so every epoch shares
// one entry and the first mutation starts serving stale scores.
func missingEpochField(c *cache.Cache, u int32) {
	key := cache.Key{Kind: "single-source", Node: u} // want "does not flow from an epoch-bearing value"
	c.Put(key, nil)
}

// True positive: Epoch is set, but from nothing epoch-bearing.
func hardcodedEpoch(c *cache.Cache, u int32) (any, bool) {
	return c.Get(cache.Key{Epoch: 0, Kind: "topk", Node: u}) // want "does not flow from an epoch-bearing value"
}

// True positive: Do's key (second argument) is checked too.
func doWithoutEpoch(ctx context.Context, c *cache.Cache, u int32) {
	c.Do(ctx, cache.Key{Kind: "pair", Node: u}, func(context.Context) (any, error) { // want "does not flow from an epoch-bearing value"
		return nil, nil
	})
}

// Correct negative: the key flows from view.Epoch().
func epochFromView(c *cache.Cache, v view, u int32) {
	key := cache.Key{Epoch: v.Epoch(), Kind: "pair", Node: u}
	c.Put(key, 1.0)
}

// Correct negative: the key flows from an epoch-named variable.
func epochFromParam(c *cache.Cache, epoch uint64, u int32) (any, bool) {
	return c.Get(cache.Key{Epoch: epoch, Kind: "single-source", Node: u})
}

// Correct negative: a prebuilt key parameter is the caller's
// responsibility — its construction site is checked where it occurs.
func putPrebuilt(c *cache.Cache, key cache.Key, v any) {
	c.Put(key, v)
}

// True positive: a score-shaped map announcing caching intent, outside
// the epoch-keyed cache.
type engine struct {
	scoreCache map[int32]float64 // want "score map .scoreCache. outside internal/cache"
	scratch    []float64         // plain scratch is fine
}

// True positive: package-level memo of score slices.
var resultMemo = map[string][]float64{} // want "score map .resultMemo. outside internal/cache"

// Correct negative: an accumulator map is not a cache — nothing in the
// name claims results outlive the computation.
func accumulate(n int) map[int32]float64 {
	acc := map[int32]float64{}
	for i := 0; i < n; i++ {
		acc[int32(i)] += 1
	}
	return acc
}

// Correct negative: cache-named, but holds no scores.
var statusCache = map[string]string{}

// True positive: re-keying a stored key's epoch outside the audited
// CarryForward path re-labels a result as computed on a graph state it
// never saw.
func rekeyEpoch(key *cache.Key, epoch uint64) {
	key.Epoch = epoch // want "re-keying a cache entry's epoch outside internal/cache"
}

// True positive: value receivers are no safer — the copy is usually
// stored right back under the new epoch.
func rekeyEpochCopy(key cache.Key) cache.Key {
	key.Epoch = key.Epoch + 1 // want "re-keying a cache entry's epoch outside internal/cache"
	return key
}

// Correct negative: assigning any other key field is retargeting, not
// epoch re-labeling.
func retarget(key *cache.Key, u int32) {
	key.Node = u
}

// Correct negative: setting Epoch on an unrelated type is not a cache
// re-key.
type notAKey struct{ Epoch uint64 }

func bumpOther(k *notAKey) {
	k.Epoch = 7
}
