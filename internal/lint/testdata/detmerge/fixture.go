// Fixture for the detmerge analyzer: no map-order score merges, no
// ambient nondeterminism, no scheduling-ordered goroutine collection in
// the deterministic engine packages.
package fixture

import (
	"math/rand"
	"sort"
	"sync"
	"time"
)

// True positive: float accumulation in map-iteration order — the
// reduction differs run to run by rounding.
func mapMerge(parts map[int32]float64, out []float64) {
	for v, s := range parts { // want "range over map feeds score accumulation"
		out[v] += s
	}
}

// True positive: the x = x + y accumulation shape counts too.
func mapMergeAssign(parts map[int32]float64, total float64) float64 {
	for _, s := range parts { // want "range over map feeds score accumulation"
		total = total + s
	}
	return total
}

// Correct negative: collecting keys is order-insensitive once sorted
// before the float reduction — the canonical fix.
func orderedMerge(parts map[int32]float64, out []float64) {
	keys := make([]int32, 0, len(parts))
	for v := range parts {
		keys = append(keys, v)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	for _, v := range keys {
		out[v] += parts[v]
	}
}

// True positive: ambient randomness breaks fixed-(seed, k) replay.
func ambient(n int) int {
	return rand.Intn(n) // want "math/rand in a deterministic package"
}

// True positive: wall-clock read.
func stamp() int64 {
	return time.Now().UnixNano() // want "time.Now in a deterministic package"
}

// Correct negative: measuring a caller-supplied instant reads no clock
// here.
func since(start, end time.Time) time.Duration {
	return end.Sub(start)
}

// Correct negative: an injected clock (the core.Clock pattern the engine
// uses for stage timing) is not an ambient wall-clock read — the caller
// decides what "now" is, so observability spans stay out of the
// deterministic result path.
type clock interface{ Now() time.Time }

func timedStage(clk clock, work func()) time.Duration {
	start := clk.Now()
	work()
	return clk.Now().Sub(start)
}

// True positive: channel-arrival collection order is scheduling order.
func channelCollect(parts chan []float64, out []float64) {
	for part := range parts { // want "channel-arrival order"
		for i, s := range part {
			out[i] += s
		}
	}
}

// True positive: select-loop collection is the same bug with extra steps.
func selectCollect(results chan float64, done chan struct{}) float64 {
	var sum float64
	for {
		select { // want "select-loop collects goroutine results"
		case r := <-results:
			sum += r
		case <-done:
			return sum
		}
	}
}

// Correct negative: workers write index-addressed slots; the merge reads
// them in worker order, so scheduling never touches the reduction.
func indexedCollect(k int, compute func(int) float64) float64 {
	out := make([]float64, k)
	var wg sync.WaitGroup
	for i := 0; i < k; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			out[i] = compute(i)
		}(i)
	}
	wg.Wait()
	var sum float64
	for _, s := range out {
		sum += s
	}
	return sum
}
