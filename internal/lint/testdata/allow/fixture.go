// Fixture for //lint:allow directive handling, type-checked as a
// deterministic package so detmerge findings are available to suppress.
// Expectations live in directives_test.go rather than want comments: the
// directives under test would swallow same-line want markers.
package fixture

import "time"

// Suppressed: a valid same-line allow.
func stamped() int64 {
	return time.Now().UnixNano() //lint:allow detmerge fixture observability helper
}

// Suppressed: a valid allow on the line directly above.
func stampedAbove() int64 {
	//lint:allow detmerge fixture observability helper
	return time.Now().UnixNano()
}

// Stale: there is nothing to suppress on this line or the next.
var one = 1 //lint:allow detmerge nothing here to forgive

// Unknown analyzer name.
var two = 2 //lint:allow typosquat reasons do not save a bad name

// Missing reason: malformed, and therefore also fails to suppress the
// finding on its line.
func bare() int64 {
	return time.Now().UnixNano() //lint:allow detmerge
}

// Wrong analyzer: an allow for one analyzer never suppresses another's
// finding — and is itself stale when its own analyzer stays quiet.
func mismatched() int64 {
	return time.Now().UnixNano() //lint:allow epochkey this finding is detmerge's, not epochkey's
}
