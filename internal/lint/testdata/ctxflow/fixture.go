// Fixture for the ctxflow analyzer: exported functions that accept a
// context must let it interrupt their loops, at least once per batch.
package fixture

import "context"

func work(int) {}

func process(ctx context.Context, x int) {}

// True positive: the loop runs to completion no matter what the caller's
// context says.
func Uninterruptible(ctx context.Context, n int) {
	for i := 0; i < n; i++ { // want "never observes it"
		work(i)
	}
}

// True positive: methods on exported types are part of the API too.
type Engine struct{}

func (Engine) Run(ctx context.Context, n int) {
	for i := 0; i < n; i++ { // want "never observes it"
		work(i)
	}
}

// Correct negative: a per-iteration ctx.Err() check.
func Interruptible(ctx context.Context, n int) error {
	for i := 0; i < n; i++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		work(i)
	}
	return nil
}

// Correct negative: the outer loop checks per batch, which covers the
// inner loop — the repo's documented cancellation granularity.
func Batched(ctx context.Context, batches [][]int) error {
	for _, b := range batches {
		if err := ctx.Err(); err != nil {
			return err
		}
		for _, x := range b {
			work(x)
		}
	}
	return nil
}

// Correct negative: passing ctx to the callee delegates the check.
func Delegates(ctx context.Context, items []int) {
	for _, it := range items {
		process(ctx, it)
	}
}

// Correct negative: option application — a range over a slice of
// functions is configuration, not work.
type Option func(*config)

type config struct{ eps float64 }

func Configure(ctx context.Context, opts ...Option) *config {
	c := &config{}
	for _, o := range opts {
		o(c)
	}
	return c
}

// Correct negative: straight-line arithmetic cannot block; builtins and
// conversions don't count as calls.
func Sum(ctx context.Context, xs []float64) float64 {
	var s float64
	for i, x := range xs {
		s += x * float64(len(xs)-i)
	}
	return s
}

// Correct negative: unexported functions are internal plumbing, checked
// through their exported callers.
func churn(ctx context.Context, n int) {
	for i := 0; i < n; i++ {
		work(i)
	}
}

// Correct negative: an exported method on an unexported type is not
// reachable API.
type engine struct{}

func (engine) Run(ctx context.Context, n int) {
	for i := 0; i < n; i++ {
		work(i)
	}
}
