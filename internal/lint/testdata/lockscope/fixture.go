// Fixture for the lockscope analyzer: no network round-trips or graph
// commits while holding a mutex.
package fixture

import (
	"net"
	"net/http"
	"sync"
)

type prober struct {
	mu     sync.Mutex
	client *http.Client
	state  string
}

// True positive: a round-trip under the lock wedges everything that
// needs p.mu for as long as the peer cares to dawdle.
func (p *prober) probeLocked(url string) {
	p.mu.Lock()
	resp, err := p.client.Get(url) // want "while holding p.mu"
	_, _ = resp, err
	p.mu.Unlock()
}

// True positive: a deferred unlock holds the lock to function end.
func (p *prober) probeDeferred(url string) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	_, err := http.Get(url) // want "while holding p.mu"
	return err
}

// Correct negative: snapshot under the lock, release, then talk to the
// network.
func (p *prober) probeReleased(url string) {
	p.mu.Lock()
	p.state = "probing"
	p.mu.Unlock()
	resp, err := http.Get(url)
	_, _ = resp, err
}

// Correct negative: a goroutine body starts with a clean slate — it does
// not inherit the creator's locks.
func (p *prober) probeAsync(url string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	go func() {
		resp, err := http.Get(url)
		_, _ = resp, err
	}()
}

type dyn struct{ mu sync.Mutex }

func (d *dyn) ApplyEdges(add, remove [][2]int32) error { return nil }

// True positive: committing a mutation batch while holding a lock the
// serving path needs is the long-poll deadlock shape.
func (d *dyn) commitLocked() {
	d.mu.Lock()
	defer d.mu.Unlock()
	_ = d.ApplyEdges(nil, nil) // want "ApplyEdges while holding d.mu"
}

// Correct negative: commit after release.
func (d *dyn) commitReleased() {
	d.mu.Lock()
	d.mu.Unlock()
	_ = d.ApplyEdges(nil, nil)
}

// True positive: dialing under a read lock blocks writers behind a
// network peer.
func dialLocked(mu *sync.RWMutex, addr string) {
	mu.RLock()
	defer mu.RUnlock()
	conn, err := net.Dial("tcp", addr) // want "net.Dial while holding mu"
	_, _ = conn, err
}
