package lint_test

import (
	"testing"

	"github.com/simrank/simpush/internal/lint"
	"github.com/simrank/simpush/internal/lint/linttest"
)

// The fixture packages impersonate repo packages via their import path:
// analyzers scope themselves by path suffix, so a fixture type-checked as
// internal/core is inside detmerge's jurisdiction without living there.
const (
	asServing = "github.com/simrank/simpush/internal/server"
	asEngine  = "github.com/simrank/simpush/internal/core"
)

func TestEpochKeyFixture(t *testing.T) {
	linttest.Run(t, []*lint.Analyzer{lint.EpochKey}, "testdata/epochkey", asServing)
}

func TestDetMergeFixture(t *testing.T) {
	linttest.Run(t, []*lint.Analyzer{lint.DetMerge}, "testdata/detmerge", asEngine)
}

func TestCtxFlowFixture(t *testing.T) {
	linttest.Run(t, []*lint.Analyzer{lint.CtxFlow}, "testdata/ctxflow", asServing)
}

func TestLockScopeFixture(t *testing.T) {
	linttest.Run(t, []*lint.Analyzer{lint.LockScope}, "testdata/lockscope", asServing)
}

// TestDetMergeOutOfScope proves the package filter: the same fixture that
// produces detmerge findings as internal/core is silent when it loads as
// a serving-side package — baselines and handlers may use maps and
// clocks freely.
func TestDetMergeOutOfScope(t *testing.T) {
	pkg, err := lint.LoadFixture("testdata/detmerge", asServing)
	if err != nil {
		t.Fatal(err)
	}
	if diags := lint.Check(pkg, []*lint.Analyzer{lint.DetMerge}); len(diags) != 0 {
		t.Fatalf("detmerge ran outside its packages: %v", diags)
	}
}

// TestTreeIsClean is the in-test form of `make lint`: the repo's own
// source must stay free of findings (modulo checked allows). A failure
// here means a PR reintroduced an invariant violation.
func TestTreeIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	root, err := lint.ModuleRoot()
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := lint.Load(root, "./...")
	if err != nil {
		t.Fatal(err)
	}
	for _, pkg := range pkgs {
		for _, d := range lint.Check(pkg, lint.Analyzers()) {
			t.Errorf("%s", d)
		}
	}
}
