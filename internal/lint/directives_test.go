package lint_test

import (
	"strings"
	"testing"

	"github.com/simrank/simpush/internal/lint"
)

// TestAllowDirectives exercises the full //lint:allow contract on
// testdata/allow: valid allows suppress exactly their analyzer's finding
// on their line (trailing or standalone-above), and every degenerate
// directive — stale, unknown analyzer, missing reason, wrong analyzer —
// is itself reported. The expectations live here rather than in want
// comments because the directives under test would swallow same-line
// markers.
func TestAllowDirectives(t *testing.T) {
	pkg, err := lint.LoadFixture("testdata/allow", "github.com/simrank/simpush/internal/core")
	if err != nil {
		t.Fatal(err)
	}
	diags := lint.Check(pkg, lint.Analyzers())

	type want struct {
		analyzer string
		contains string
	}
	wants := []want{
		// var one: a detmerge allow with nothing to suppress.
		{"allow", "stale lint:allow"},
		// var two: unknown analyzer name.
		{"allow", `unknown analyzer "typosquat"`},
		// bare(): the malformed (reasonless) allow does not suppress...
		{"detmerge", "time.Now"},
		// ...and is reported itself.
		{"allow", "missing a reason"},
		// mismatched(): wrong analyzer does not suppress...
		{"detmerge", "time.Now"},
		// ...and counts as stale for its own analyzer.
		{"allow", "stale lint:allow"},
	}

	if len(diags) != len(wants) {
		t.Errorf("got %d diagnostics, want %d:", len(diags), len(wants))
		for _, d := range diags {
			t.Logf("  %s", d)
		}
	}
	used := make([]bool, len(diags))
	for _, w := range wants {
		found := false
		for i, d := range diags {
			if used[i] || d.Analyzer != w.analyzer || !strings.Contains(d.Message, w.contains) {
				continue
			}
			used[i] = true
			found = true
			break
		}
		if !found {
			t.Errorf("missing %s diagnostic containing %q", w.analyzer, w.contains)
		}
	}

	// The two valid allows must have suppressed their findings: no
	// diagnostic may point at stamped or stampedAbove (lines 10-18).
	for _, d := range diags {
		if d.Pos.Line <= 18 {
			t.Errorf("diagnostic on a suppressed line: %s", d)
		}
	}
}
