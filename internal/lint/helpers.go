package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// isTestFile reports whether the file node comes from a _test.go file.
// Analyzers skip test files: the guarded invariants are production
// properties, and tests legitimately use maps, fixed epochs, and ad-hoc
// goroutine collection.
func isTestFile(fset *token.FileSet, f *ast.File) bool {
	return strings.HasSuffix(fset.Position(f.Pos()).Filename, "_test.go")
}

// pkgNameOf returns the imported package if id is a package qualifier
// (e.g. the "rand" in rand.Intn), or nil.
func pkgNameOf(info *types.Info, id *ast.Ident) *types.Package {
	if pn, ok := info.Uses[id].(*types.PkgName); ok {
		return pn.Imported()
	}
	return nil
}

// isPkgFunc reports whether call invokes the package-level function
// pkgPath.name (e.g. "time".Now).
func isPkgFunc(info *types.Info, call *ast.CallExpr, pkgPath, name string) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != name {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	p := pkgNameOf(info, id)
	return p != nil && p.Path() == pkgPath
}

// methodOn returns the receiver's named type if call is a method call
// whose defining package path ends with pkgSuffix, or nil.
func methodRecvNamed(info *types.Info, call *ast.CallExpr) (*types.Named, string) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return nil, ""
	}
	s, ok := info.Selections[sel]
	if !ok || s.Kind() != types.MethodVal {
		return nil, ""
	}
	recv := s.Recv()
	if p, ok := recv.(*types.Pointer); ok {
		recv = p.Elem()
	}
	named, ok := recv.(*types.Named)
	if !ok {
		return nil, ""
	}
	return named, sel.Sel.Name
}

// namedIs reports whether n is the named type pkgPath.name (pkgPath may
// be a suffix, so module-qualified internal paths match).
func namedIs(n *types.Named, pkgSuffix, name string) bool {
	if n == nil || n.Obj().Pkg() == nil {
		return false
	}
	return strings.HasSuffix(n.Obj().Pkg().Path(), pkgSuffix) && n.Obj().Name() == name
}

// isFloat reports whether t's underlying type is a floating-point type.
func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// containsFloat reports whether t is a float, a slice/array of floats, or
// a map whose values (recursively) contain floats — the shapes a score
// container takes.
func containsFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	switch u := t.Underlying().(type) {
	case *types.Basic:
		return u.Info()&types.IsFloat != 0
	case *types.Slice:
		return containsFloat(u.Elem())
	case *types.Array:
		return containsFloat(u.Elem())
	case *types.Map:
		return containsFloat(u.Elem())
	case *types.Pointer:
		return containsFloat(u.Elem())
	}
	return false
}

// isMap reports whether t's underlying type is a map.
func isMap(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// mentionsEpoch reports whether any identifier or selector inside e has a
// name containing "epoch" (case-insensitive) — the flow heuristic behind
// epochkey: a key expression is epoch-bearing when something named after
// the epoch feeds it.
func mentionsEpoch(e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if strings.Contains(strings.ToLower(id.Name), "epoch") {
				found = true
				return false
			}
		}
		return !found
	})
	return found
}

// localAssignment finds the last assignment or declaration of the
// variable obj lexically before pos within body, returning its RHS
// expression, or nil.
func localAssignment(info *types.Info, body *ast.BlockStmt, obj types.Object, pos token.Pos) ast.Expr {
	var rhs ast.Expr
	ast.Inspect(body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			if st.Pos() >= pos {
				return false
			}
			for i, lhs := range st.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok {
					continue
				}
				if info.Defs[id] == obj || info.Uses[id] == obj {
					if i < len(st.Rhs) {
						rhs = st.Rhs[i]
					} else if len(st.Rhs) == 1 {
						rhs = st.Rhs[0]
					}
				}
			}
		case *ast.ValueSpec:
			if st.Pos() >= pos {
				return false
			}
			for i, id := range st.Names {
				if info.Defs[id] == obj {
					if i < len(st.Values) {
						rhs = st.Values[i]
					}
				}
			}
		}
		return true
	})
	return rhs
}

// enclosingFuncBody returns the body of the innermost function declaration
// or literal in file that contains pos.
func enclosingFuncBody(file *ast.File, pos token.Pos) *ast.BlockStmt {
	var body *ast.BlockStmt
	ast.Inspect(file, func(n ast.Node) bool {
		if n == nil {
			return false
		}
		if pos < n.Pos() || pos >= n.End() {
			return false
		}
		switch fn := n.(type) {
		case *ast.FuncDecl:
			if fn.Body != nil {
				body = fn.Body
			}
		case *ast.FuncLit:
			body = fn.Body
		}
		return true
	})
	return body
}
