package lint

import (
	"go/ast"
	"go/types"
)

// CtxFlow guards cancellation plumbing: an exported function that accepts
// a context.Context promises callers that deadlines and disconnects
// interrupt it. A loop inside such a function that neither consults the
// context nor calls anything that takes it can run to completion after
// the caller has gone — the bug class PR 1 fixed by hand across all six
// baseline algorithms (walk batches, push levels, gamma loops all check
// ctx per batch now). This keeps it fixed.
//
// A loop passes if anything inside it uses a context-typed value: a
// ctx.Err()/ctx.Done() check, passing ctx (or a derived context) to a
// callee, or a select on ctx.Done. The check honors the repo's per-batch
// granularity: an inner loop is exempt when an enclosing loop observes
// the context each iteration — the enclosing check bounds the stale work
// to one batch, which is the documented contract (docs/performance.md).
// Loops that cannot block are also exempt: bodies whose only calls are
// builtins or conversions, with no nested loops or channel operations,
// and ranges over slices of functions (option-application loops).
var CtxFlow = &Analyzer{
	Name: "ctxflow",
	Doc:  "exported ctx-taking functions must let the context interrupt their loops",
	SkipPackageSuffixes: []string{
		"internal/lint", // the linter itself is driven by a CLI, not servers
	},
	Run: runCtxFlow,
}

func runCtxFlow(pass *Pass) {
	for _, f := range pass.Files {
		if isTestFile(pass.Fset, f) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !fd.Name.IsExported() {
				continue
			}
			if !exportedReceiver(fd) {
				continue
			}
			if !takesContext(pass, fd) {
				continue
			}
			checkLoops(pass, fd)
		}
	}
}

// exportedReceiver reports whether fd is a plain function or a method on
// an exported type; exported methods of unexported types are not part of
// the package API.
func exportedReceiver(fd *ast.FuncDecl) bool {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return true
	}
	t := fd.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if idx, ok := t.(*ast.IndexExpr); ok { // generic receiver
		t = idx.X
	}
	id, ok := t.(*ast.Ident)
	return ok && id.IsExported()
}

// takesContext reports whether fd has a context.Context parameter.
func takesContext(pass *Pass, fd *ast.FuncDecl) bool {
	for _, p := range fd.Type.Params.List {
		if isContextType(pass.TypeOf(p.Type)) {
			return true
		}
	}
	return false
}

// checkLoops flags every loop in fd that could block without observing
// the context, honoring per-batch coverage from enclosing loops.
func checkLoops(pass *Pass, fd *ast.FuncDecl) {
	var visit func(n ast.Node, covered bool)
	visit = func(n ast.Node, covered bool) {
		var body *ast.BlockStmt
		skip := false
		switch loop := n.(type) {
		case *ast.ForStmt:
			body = loop.Body
		case *ast.RangeStmt:
			skip = funcSliceRange(pass, loop)
			body = loop.Body
		default:
			children(n, func(c ast.Node) { visit(c, covered) })
			return
		}
		ok := covered || usesContext(pass, body)
		if !ok && !skip && !trivialLoop(pass, body) {
			pass.Reportf(n.Pos(),
				"%s accepts a context but this loop never observes it: a cancelled caller keeps paying for the work — check ctx.Err() per iteration batch or pass ctx into the loop body", fd.Name.Name)
		}
		children(body, func(c ast.Node) { visit(c, ok) })
	}
	for _, st := range fd.Body.List {
		visit(st, false)
	}
}

// funcSliceRange reports whether rs ranges over a slice of functions —
// the variadic-option application idiom, exempt by design.
func funcSliceRange(pass *Pass, rs *ast.RangeStmt) bool {
	t := pass.TypeOf(rs.X)
	if t == nil {
		return false
	}
	sl, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	_, isFunc := sl.Elem().Underlying().(*types.Signature)
	return isFunc
}

// trivialLoop reports whether the body cannot meaningfully block: no
// calls other than builtins and type conversions, no channel operations,
// no nested loops.
func trivialLoop(pass *Pass, body *ast.BlockStmt) bool {
	blocking := false
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if !builtinOrConversion(pass, n) {
				blocking = true
			}
		case *ast.ForStmt, *ast.RangeStmt, *ast.SelectStmt, *ast.SendStmt, *ast.GoStmt:
			blocking = true
		case *ast.UnaryExpr:
			if n.Op.String() == "<-" {
				blocking = true
			}
		}
		return !blocking
	})
	return !blocking
}

// builtinOrConversion reports whether call invokes a builtin (len, cap,
// append, ...) or is a type conversion — neither can block.
func builtinOrConversion(pass *Pass, call *ast.CallExpr) bool {
	if tv, ok := pass.Info.Types[call.Fun]; ok && tv.IsType() {
		return true
	}
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		if _, ok := pass.Info.Uses[fun].(*types.Builtin); ok {
			return true
		}
	case *ast.SelectorExpr:
		if tv, ok := pass.Info.Types[fun]; ok && tv.IsType() {
			return true
		}
	}
	return false
}

// usesContext reports whether any identifier of type context.Context is
// used inside the node — covering ctx.Err()/ctx.Done() checks, passing
// ctx to callees, and selects on derived contexts alike.
func usesContext(pass *Pass, n ast.Node) bool {
	found := false
	ast.Inspect(n, func(m ast.Node) bool {
		id, ok := m.(*ast.Ident)
		if !ok {
			return !found
		}
		if obj := pass.Info.Uses[id]; obj != nil && isContextType(obj.Type()) {
			found = true
		}
		return !found
	})
	return found
}
