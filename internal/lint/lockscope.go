package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// LockScope guards against slow or re-entrant work under a mutex: an HTTP
// round-trip, a net.Dial, or a graph commit (ApplyEdges) made while
// holding a sync.Mutex/RWMutex. The cluster tier makes this shape a real
// deadlock, not a style nit — the replication feed long-polls with the
// commit path on the other end, so a leader that commits (or a prober
// that probes) while holding a lock the serving path needs can wedge the
// whole replica set. PR 6's prober and repLog were written to release
// locks around every round-trip; this keeps them that way.
//
// The analysis is intra-procedural and source-ordered: Lock()/RLock()
// marks the receiver held, Unlock()/RUnlock() releases it, a deferred
// unlock holds it to function end. Function literals start with a clean
// slate (goroutines and handlers do not inherit the creator's locks).
var LockScope = &Analyzer{
	Name: "lockscope",
	Doc:  "no network round-trips or graph commits while holding a mutex",
	Run:  runLockScope,
}

func runLockScope(pass *Pass) {
	for _, f := range pass.Files {
		if isTestFile(pass.Fset, f) {
			continue
		}
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				checkLockedCalls(pass, fd.Body)
			}
		}
	}
}

// checkLockedCalls walks one function body in source order, tracking the
// set of held mutexes and flagging slow calls made while any is held.
// Nested function literals are analyzed independently.
func checkLockedCalls(pass *Pass, body *ast.BlockStmt) {
	held := map[string]bool{}
	var walk func(n ast.Node)
	walk = func(n ast.Node) {
		switch n := n.(type) {
		case nil:
			return
		case *ast.FuncLit:
			checkLockedCalls(pass, n.Body)
			return
		case *ast.DeferStmt:
			if recv, op, ok := mutexOp(pass, n.Call); ok {
				switch op {
				case "Lock", "RLock":
					held[recv] = true
				}
				// A deferred unlock runs at return: the lock stays held
				// for the remainder of the source text, so nothing to do.
				_ = recv
				return
			}
			walk(n.Call)
			return
		case *ast.CallExpr:
			if recv, op, ok := mutexOp(pass, n); ok {
				switch op {
				case "Lock", "RLock":
					held[recv] = true
				case "Unlock", "RUnlock":
					delete(held, recv)
				}
				return
			}
			if len(held) > 0 {
				if what := slowCall(pass, n); what != "" {
					pass.Reportf(n.Pos(),
						"%s while holding %s: release the lock before network or commit work — a blocked round-trip under a lock wedges every path that needs it (long-poll deadlock shape)", what, heldNames(held))
				}
			}
		}
		// Recurse in source order through all children.
		children(n, walk)
	}
	for _, st := range body.List {
		walk(st)
	}
}

// children invokes walk on each direct child of n, in source order.
func children(n ast.Node, walk func(ast.Node)) {
	first := true
	ast.Inspect(n, func(m ast.Node) bool {
		if first {
			first = false
			return true
		}
		if m != nil {
			walk(m)
		}
		return false
	})
}

// mutexOp reports whether call is a Lock/RLock/Unlock/RUnlock on a
// sync.Mutex or sync.RWMutex, returning the canonical receiver text.
func mutexOp(pass *Pass, call *ast.CallExpr) (recv, op string, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	name := sel.Sel.Name
	switch name {
	case "Lock", "RLock", "Unlock", "RUnlock":
	default:
		return "", "", false
	}
	s, isMethod := pass.Info.Selections[sel]
	if !isMethod {
		return "", "", false
	}
	obj := s.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return "", "", false
	}
	return types.ExprString(sel.X), name, true
}

// slowCall classifies calls that must not run under a lock, returning a
// human-readable description or "".
func slowCall(pass *Pass, call *ast.CallExpr) string {
	// Package-level net/http and net dialers.
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		if id, ok := sel.X.(*ast.Ident); ok {
			if p := pkgNameOf(pass.Info, id); p != nil {
				switch {
				case p.Path() == "net/http":
					switch sel.Sel.Name {
					case "Get", "Head", "Post", "PostForm":
						return "http." + sel.Sel.Name
					}
				case p.Path() == "net" && strings.HasPrefix(sel.Sel.Name, "Dial"):
					return "net." + sel.Sel.Name
				}
			}
		}
	}
	// Methods: *http.Client round-trips and graph commits.
	named, method := methodRecvNamed(pass.Info, call)
	if named != nil {
		if namedIs(named, "net/http", "Client") {
			switch method {
			case "Do", "Get", "Head", "Post", "PostForm":
				return "(*http.Client)." + method
			}
		}
		if method == "ApplyEdges" {
			return named.Obj().Name() + ".ApplyEdges"
		}
	}
	return ""
}

// heldNames renders the held-lock set deterministically.
func heldNames(held map[string]bool) string {
	names := make([]string, 0, len(held))
	for n := range held {
		names = append(names, n)
	}
	if len(names) == 1 {
		return names[0]
	}
	// Small set; insertion sort keeps the message stable.
	for i := 1; i < len(names); i++ {
		for j := i; j > 0 && names[j] < names[j-1]; j-- {
			names[j], names[j-1] = names[j-1], names[j]
		}
	}
	return strings.Join(names, ", ")
}
