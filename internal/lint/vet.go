package lint

import (
	"encoding/json"
	"fmt"
	"go/importer"
	"go/token"
	"io"
	"os"
)

// vetConfig is the per-package configuration file the go command hands a
// -vettool (the same JSON the x/tools unitchecker consumes). Only the
// fields this suite needs are decoded.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	ImportMap                 map[string]string // source import path -> canonical path
	PackageFile               map[string]string // canonical path -> export data file
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// RunVet executes one `go vet -vettool` unit of work: load the package
// described by cfgPath, run the suite, print findings to stderr in the
// standard file:line:col format, and write the (empty) facts file the go
// command expects. It returns the process exit code: 0 clean, 1
// findings, 2 operational error.
func RunVet(cfgPath string) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "simlint:", err)
		return 2
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintln(os.Stderr, "simlint: parsing vet config:", err)
		return 2
	}
	// The suite computes no cross-package facts, but the go command
	// requires the facts file to exist before it will cache the result.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte("simlint-no-facts\n"), 0o666); err != nil {
			fmt.Fprintln(os.Stderr, "simlint:", err)
			return 2
		}
	}
	if cfg.VetxOnly {
		// Dependency visited only for facts; nothing to report.
		return 0
	}

	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		f, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("simlint: no export data for %q", path)
		}
		return os.Open(f)
	})
	pkg, err := typecheck(fset, imp, cfg.ImportPath, "", cfg.GoFiles)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	diags := Check(pkg, Analyzers())
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s:%d:%d: %s: %s\n", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
	}
	if len(diags) > 0 {
		return 1
	}
	return 0
}
