package lint

import (
	"go/token"
	"strings"
)

// A directive is one parsed //lint:allow comment. It suppresses
// diagnostics of the named analyzer on its own line and on the line
// directly below (so it works both as a trailing comment and as a
// standalone comment above the offending statement).
type directive struct {
	pos      token.Position
	analyzer string
	reason   string
	used     bool
}

const allowPrefix = "//lint:allow"

// parseDirectives extracts every //lint:allow directive from the
// package's comments.
func parseDirectives(pkg *Package) []*directive {
	var ds []*directive
	for _, f := range pkg.Syntax {
		if isTestFile(pkg.Fset, f) {
			// Analyzers skip test files, so allows there could only ever
			// be stale; ignore them entirely.
			continue
		}
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, allowPrefix) {
					continue
				}
				rest := strings.TrimSpace(strings.TrimPrefix(c.Text, allowPrefix))
				name, reason, _ := strings.Cut(rest, " ")
				ds = append(ds, &directive{
					pos:      pkg.Fset.Position(c.Pos()),
					analyzer: name,
					reason:   strings.TrimSpace(reason),
				})
			}
		}
	}
	return ds
}

// applyDirectives filters raw findings through the package's //lint:allow
// directives and appends directive errors: unknown analyzer names, missing
// reasons, and stale allows that suppress nothing. known holds the valid
// analyzer names.
func applyDirectives(pkg *Package, raw []Diagnostic, known map[string]bool) []Diagnostic {
	ds := parseDirectives(pkg)
	var out []Diagnostic
	for _, d := range raw {
		suppressed := false
		for _, dir := range ds {
			if dir.analyzer != d.Analyzer || dir.pos.Filename != d.Pos.Filename {
				continue
			}
			if dir.pos.Line == d.Pos.Line || dir.pos.Line == d.Pos.Line-1 {
				// Malformed directives never suppress; they are reported
				// below instead.
				if known[dir.analyzer] && dir.reason != "" {
					dir.used = true
					suppressed = true
				}
			}
		}
		if !suppressed {
			out = append(out, d)
		}
	}
	for _, dir := range ds {
		switch {
		case !known[dir.analyzer]:
			out = append(out, Diagnostic{
				Analyzer: "allow",
				Pos:      dir.pos,
				Message:  "lint:allow names unknown analyzer " + quoteName(dir.analyzer),
			})
		case dir.reason == "":
			out = append(out, Diagnostic{
				Analyzer: "allow",
				Pos:      dir.pos,
				Message:  "lint:allow " + dir.analyzer + " is missing a reason",
			})
		case !dir.used:
			out = append(out, Diagnostic{
				Analyzer: "allow",
				Pos:      dir.pos,
				Message:  "stale lint:allow: no " + dir.analyzer + " finding on this or the next line; remove the directive",
			})
		}
	}
	return out
}

// quoteName quotes a possibly-empty name for a diagnostic message.
func quoteName(s string) string {
	if s == "" {
		return "(none)"
	}
	return "\"" + s + "\""
}
