// Package lint is the repo's static-analysis suite: four analyzers that
// machine-check the invariants the realtime contract depends on but the
// compiler cannot see.
//
//   - epochkey: every serving-cache key must flow from a graph epoch, and
//     score caches must not grow outside internal/cache (the epoch-in-key
//     design is what makes mutation safe without an invalidation protocol);
//   - detmerge: the deterministic engine packages must not iterate maps
//     into score accumulation, draw from ambient randomness or wall clocks,
//     or collect goroutine results in scheduling order — fixed (seed, k)
//     must stay bit-identical, the property replication correctness and
//     the race suite assert;
//   - ctxflow: exported functions that accept a context must actually let
//     it interrupt their loops;
//   - lockscope: no network round-trips or graph commits while holding a
//     mutex — the deadlock shape long-polling replication must avoid.
//
// The framework deliberately mirrors golang.org/x/tools/go/analysis
// (Analyzer, Pass, Reportf) but is built on the standard library alone:
// packages load through `go list -export` and type-check against compiler
// export data, so the suite runs in the same offline, zero-dependency
// environment as the rest of the module. Swapping to the real
// multichecker later is a mechanical change.
//
// Intentional violations are annotated in the source with
//
//	//lint:allow <analyzer> <reason>
//
// on (or immediately above) the offending line. Allows are themselves
// checked: an allow that suppresses nothing, names an unknown analyzer,
// or omits the reason is reported as an error, so stale suppressions
// cannot accumulate.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer is one named check over a type-checked package.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and //lint:allow
	// directives. Lower-case, no spaces.
	Name string

	// Doc is a one-paragraph description of the invariant it guards.
	Doc string

	// PackageSuffixes, when non-empty, restricts the analyzer to packages
	// whose import path ends with one of the suffixes. Empty = all
	// packages.
	PackageSuffixes []string

	// SkipPackageSuffixes excludes packages (checked before
	// PackageSuffixes; used by epochkey to exempt internal/cache itself).
	SkipPackageSuffixes []string

	// Run performs the check and reports findings through the pass.
	Run func(*Pass)
}

// appliesTo reports whether the analyzer should run on the package with
// the given import path.
func (a *Analyzer) appliesTo(path string) bool {
	for _, s := range a.SkipPackageSuffixes {
		if strings.HasSuffix(path, s) {
			return false
		}
	}
	if len(a.PackageSuffixes) == 0 {
		return true
	}
	for _, s := range a.PackageSuffixes {
		if strings.HasSuffix(path, s) {
			return true
		}
	}
	return false
}

// A Pass carries one analyzer's view of one package.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	report func(Diagnostic)
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// TypeOf returns the static type of e, or nil.
func (p *Pass) TypeOf(e ast.Expr) types.Type {
	return p.Info.TypeOf(e)
}

// A Diagnostic is one finding, positioned in the source.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Analyzers returns the full suite in stable order.
func Analyzers() []*Analyzer {
	return []*Analyzer{EpochKey, DetMerge, CtxFlow, LockScope}
}

// Check runs every applicable analyzer over pkg, applies the package's
// //lint:allow directives, and returns the surviving diagnostics: unsuppressed
// findings plus directive errors (stale allow, unknown analyzer, missing
// reason). The result is sorted by position.
func Check(pkg *Package, analyzers []*Analyzer) []Diagnostic {
	var raw []Diagnostic
	for _, a := range analyzers {
		if !a.appliesTo(pkg.Path) {
			continue
		}
		pass := &Pass{
			Analyzer: a,
			Fset:     pkg.Fset,
			Files:    pkg.Syntax,
			Pkg:      pkg.Types,
			Info:     pkg.Info,
			report:   func(d Diagnostic) { raw = append(raw, d) },
		}
		a.Run(pass)
	}
	known := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		known[a.Name] = true
	}
	out := applyDirectives(pkg, raw, known)
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].Pos, out[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Column < b.Column
	})
	return out
}
