package lint

import (
	"go/ast"
	"go/types"
	"regexp"
)

// EpochKey guards the structural-invalidation contract of the serving
// cache (docs/http-api.md, internal/cache): a cached result is only safe
// to return because the graph epoch it was computed on is part of its
// key. A key built without the epoch silently serves stale scores after
// the first mutation — the exact failure mode the epoch-in-key design
// exists to make unrepresentable.
//
// Three rules:
//
//  1. every internal/cache Put/Get/Do call site must build its key from
//     an epoch-bearing value (an identifier, field, or call with "epoch"
//     in its name, e.g. view.Epoch());
//  2. no new score-shaped map caches outside internal/cache: a variable
//     or field named like a cache (cache/memo) whose type is a map
//     holding floats bypasses the epoch key entirely;
//  3. no assignment to the Epoch field of an existing cache.Key outside
//     internal/cache: re-keying an entry to a different epoch re-labels
//     a result as computed on a graph state it never saw. The one
//     audited re-key path is Cache.CarryForward, which only re-keys
//     entries its caller proved bit-identical across the epoch advance —
//     everything else must build a fresh key and recompute.
var EpochKey = &Analyzer{
	Name: "epochkey",
	Doc:  "cache keys must embed the graph epoch; score caches belong in internal/cache",
	SkipPackageSuffixes: []string{
		"internal/cache", // the cache itself manipulates keys structurally
		"internal/lint",  // this package quotes the patterns it flags
	},
	Run: runEpochKey,
}

// cacheNameRE matches identifiers that announce caching intent.
var cacheNameRE = regexp.MustCompile(`(?i)(cache|memo)`)

func runEpochKey(pass *Pass) {
	for _, f := range pass.Files {
		if isTestFile(pass.Fset, f) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkCacheCall(pass, f, n)
			case *ast.ValueSpec:
				for _, id := range n.Names {
					checkScoreMap(pass, id)
				}
			case *ast.AssignStmt:
				for _, lhs := range n.Lhs {
					if id, ok := lhs.(*ast.Ident); ok {
						checkScoreMap(pass, id)
					}
					checkEpochRekey(pass, lhs)
				}
			case *ast.Field:
				for _, id := range n.Names {
					checkScoreMap(pass, id)
				}
			}
			return true
		})
	}
}

// checkScoreMap flags cache-named float-map declarations (rule 2).
func checkScoreMap(pass *Pass, id *ast.Ident) {
	obj := pass.Info.Defs[id]
	if obj == nil || !cacheNameRE.MatchString(id.Name) {
		return
	}
	t := obj.Type()
	if !isMap(t) || !containsFloat(t) {
		return
	}
	pass.Reportf(id.Pos(),
		"score map %q outside internal/cache: cached scores must live in the epoch-keyed serving cache (or carry a lint:allow with the epoch-safety argument)", id.Name)
}

// checkEpochRekey flags assignments to the Epoch field of a cache.Key
// (rule 3): outside the audited CarryForward path, mutating a key's
// epoch re-labels a cached result as belonging to a graph state it was
// never computed on.
func checkEpochRekey(pass *Pass, lhs ast.Expr) {
	sel, ok := lhs.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Epoch" {
		return
	}
	t := pass.Info.TypeOf(sel.X)
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || !namedIs(named, "internal/cache", "Key") {
		return
	}
	pass.Reportf(sel.Sel.Pos(),
		"re-keying a cache entry's epoch outside internal/cache: only the audited CarryForward path may move an entry between epochs (build a fresh key and recompute instead)")
}

// checkCacheCall flags cache.Cache Put/Get/Do calls whose key does not
// flow from an epoch-bearing value (rule 1).
func checkCacheCall(pass *Pass, file *ast.File, call *ast.CallExpr) {
	named, method := methodRecvNamed(pass.Info, call)
	if !namedIs(named, "internal/cache", "Cache") {
		return
	}
	var keyArg ast.Expr
	switch method {
	case "Put", "Get":
		if len(call.Args) < 1 {
			return
		}
		keyArg = call.Args[0]
	case "Do":
		if len(call.Args) < 2 {
			return
		}
		keyArg = call.Args[1]
	default:
		return
	}
	if expr, ok := epochFlow(pass, file, keyArg); !ok {
		pass.Reportf(expr.Pos(),
			"cache %s key does not flow from an epoch-bearing value: a key without the graph epoch serves stale scores after the first mutation", method)
	}
}

// epochFlow decides whether the key expression is epoch-bearing. It
// resolves one level of local assignment, then requires a composite
// literal to set an Epoch field from something named after the epoch.
// Expressions it cannot resolve (parameters, helper-call results) pass:
// their construction sites are checked where they occur.
//
// The returned expression is the best position to report: the Epoch field
// value when one exists, otherwise the key expression itself.
func epochFlow(pass *Pass, file *ast.File, key ast.Expr) (ast.Expr, bool) {
	if id, ok := key.(*ast.Ident); ok {
		obj := pass.Info.Uses[id]
		if obj == nil {
			return key, true
		}
		body := enclosingFuncBody(file, key.Pos())
		if body == nil {
			return key, true
		}
		rhs := localAssignment(pass.Info, body, obj, key.Pos())
		if rhs == nil {
			return key, true // parameter or package-level: checked at its source
		}
		key = rhs
	}
	lit, ok := key.(*ast.CompositeLit)
	if !ok {
		// Calls, selectors, etc.: epoch-bearing if anything epoch-named
		// appears; otherwise assume a helper whose own body is checked.
		return key, true
	}
	for _, el := range lit.Elts {
		kv, ok := el.(*ast.KeyValueExpr)
		if !ok {
			// Positional literal: accept if any element mentions the epoch.
			if mentionsEpoch(el) {
				return key, true
			}
			continue
		}
		if fid, ok := kv.Key.(*ast.Ident); ok && fid.Name == "Epoch" {
			if mentionsEpoch(kv.Value) {
				return kv.Value, true
			}
			return kv.Value, false
		}
	}
	return key, false
}
