// Package linttest runs internal/lint analyzers over fixture packages and
// compares their findings against expectations embedded in the fixtures —
// the same contract as golang.org/x/tools/go/analysis/analysistest, built
// on the standard library.
//
// A fixture is a directory of .go files. Expected findings are trailing
// comments of the form
//
//	code // want "regexp"
//	code // want "first" "second"
//
// where each quoted string is a regular expression that must match the
// message of a diagnostic reported on that line. Every reported
// diagnostic must be expected and every expectation must be matched,
// otherwise the test fails with a position-by-position account.
package linttest

import (
	"fmt"
	"regexp"
	"strings"
	"testing"

	"github.com/simrank/simpush/internal/lint"
)

// expectation is one want-regexp at a file:line.
type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	used bool
}

// wantRE pulls the quoted regexps off a `// want "..." "..."` comment.
var wantRE = regexp.MustCompile(`"((?:[^"\\]|\\.)*)"`)

// Run checks the fixture in dir, type-checked under import path asPath,
// against the given analyzers. asPath decides which analyzers consider
// the package in scope (e.g. a detmerge fixture impersonates
// "github.com/simrank/simpush/internal/core").
func Run(t *testing.T, analyzers []*lint.Analyzer, dir, asPath string) {
	t.Helper()
	pkg, err := lint.LoadFixture(dir, asPath)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", dir, err)
	}
	expects := collectExpectations(t, pkg)
	diags := lint.Check(pkg, analyzers)

	for _, d := range diags {
		if !consume(expects, d) {
			t.Errorf("%s: unexpected diagnostic:\n  %s: %s", shortPos(d), d.Analyzer, d.Message)
		}
	}
	for _, e := range expects {
		if !e.used {
			t.Errorf("%s:%d: expected a diagnostic matching %q, got none", e.file, e.line, e.re)
		}
	}
}

// collectExpectations scans every fixture file for want comments.
func collectExpectations(t *testing.T, pkg *lint.Package) []*expectation {
	t.Helper()
	var out []*expectation
	for _, f := range pkg.Syntax {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, "// want ") {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				matches := wantRE.FindAllStringSubmatch(c.Text, -1)
				if len(matches) == 0 {
					t.Fatalf("%s:%d: malformed want comment %q", pos.Filename, pos.Line, c.Text)
				}
				for _, m := range matches {
					re, err := regexp.Compile(m[1])
					if err != nil {
						t.Fatalf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, m[1], err)
					}
					out = append(out, &expectation{file: pos.Filename, line: pos.Line, re: re})
				}
			}
		}
	}
	return out
}

// consume marks the first matching unused expectation for d.
func consume(expects []*expectation, d lint.Diagnostic) bool {
	for _, e := range expects {
		if e.used || e.file != d.Pos.Filename || e.line != d.Pos.Line {
			continue
		}
		if e.re.MatchString(d.Message) {
			e.used = true
			return true
		}
	}
	return false
}

// shortPos renders a diagnostic position for failure messages.
func shortPos(d lint.Diagnostic) string {
	return fmt.Sprintf("%s:%d:%d", d.Pos.Filename, d.Pos.Line, d.Pos.Column)
}
