package core

import (
	"context"
	"errors"
	"math"
	"runtime"
	"testing"
	"testing/quick"
	"time"

	"github.com/simrank/simpush/internal/gen"
	"github.com/simrank/simpush/internal/graph"
)

func parallelTestGraph(t testing.TB) *graph.Graph {
	t.Helper()
	g, err := gen.CopyingModel(3000, 8, 0.3, 42)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func queryScores(t *testing.T, g *graph.Graph, opt Options, u int32) *Result {
	t.Helper()
	sp := mustEngine(t, g, opt)
	res, err := sp.Query(u)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// Fixed (seed, k) must give bit-identical scores across runs: the shard
// layout, worker substreams and merge order are functions of k alone.
func TestParallelDeterministicAcrossRuns(t *testing.T) {
	g := parallelTestGraph(t)
	for _, k := range []int{2, 3, 8} {
		opt := Options{Epsilon: 0.05, Seed: 7, Parallelism: k}
		a := queryScores(t, g, opt, 17)
		b := queryScores(t, g, opt, 17)
		for v := range a.Scores {
			if a.Scores[v] != b.Scores[v] {
				t.Fatalf("k=%d: run-to-run mismatch at v=%d: %v vs %v", k, v, a.Scores[v], b.Scores[v])
			}
		}
		if a.L != b.L || a.Walks != b.Walks {
			t.Fatalf("k=%d: metadata mismatch: L %d vs %d, walks %d vs %d", k, a.L, b.L, a.Walks, b.Walks)
		}
	}
}

// Fixed (seed, k) must give bit-identical scores regardless of GOMAXPROCS:
// scheduling may interleave workers arbitrarily, but nothing in the result
// may depend on it.
func TestParallelDeterministicAcrossGOMAXPROCS(t *testing.T) {
	g := parallelTestGraph(t)
	opt := Options{Epsilon: 0.05, Seed: 11, Parallelism: 4}

	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)

	var ref *Result
	for _, procs := range []int{1, 2, prev} {
		runtime.GOMAXPROCS(procs)
		res := queryScores(t, g, opt, 5)
		if ref == nil {
			ref = res
			continue
		}
		if res.L != ref.L {
			t.Fatalf("GOMAXPROCS=%d changed detected L: %d vs %d", procs, res.L, ref.L)
		}
		for v := range ref.Scores {
			if res.Scores[v] != ref.Scores[v] {
				t.Fatalf("GOMAXPROCS=%d changed score at v=%d: %v vs %v", procs, v, res.Scores[v], ref.Scores[v])
			}
		}
	}
}

// A per-query WithParallelism-style override must behave exactly like the
// engine-level option and leave later serial queries on the engine
// unchanged relative to a serial-only engine that ran the same seeded
// queries (the seeded scope restores the walk stream).
func TestParallelQueryOverride(t *testing.T) {
	g := parallelTestGraph(t)
	engOpt := Options{Epsilon: 0.05, Seed: 3}

	viaEngine := queryScores(t, g, Options{Epsilon: 0.05, Seed: 3, Parallelism: 4}, 9)

	sp := mustEngine(t, g, engOpt)
	viaOverride, err := sp.QueryCtx(context.Background(), 9,
		QueryOpts{Seed: 3, HasSeed: true, Parallelism: 4, HasParallelism: true})
	if err != nil {
		t.Fatal(err)
	}
	for v := range viaEngine.Scores {
		if viaEngine.Scores[v] != viaOverride.Scores[v] {
			t.Fatalf("override differs from engine option at v=%d: %v vs %v",
				v, viaEngine.Scores[v], viaOverride.Scores[v])
		}
	}
}

func TestParallelismValidation(t *testing.T) {
	g := gen.Cycle(3)
	if _, err := New(g, Options{Parallelism: -1}); !errors.Is(err, ErrInvalidOptions) {
		t.Fatalf("negative parallelism accepted: %v", err)
	}
	sp := mustEngine(t, g, Options{})
	if _, err := sp.QueryCtx(context.Background(), 0, QueryOpts{Parallelism: -2, HasParallelism: true}); !errors.Is(err, ErrInvalidOptions) {
		t.Fatalf("negative per-query parallelism accepted: %v", err)
	}
}

// Parallel queries observe cancellation inside the stages, and an
// interrupted parallel query leaves the engine reusable.
func TestParallelCancellation(t *testing.T) {
	g := parallelTestGraph(t)
	sp := mustEngine(t, g, Options{Epsilon: 0.01, Seed: 1, Parallelism: 4})
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	cancel()
	if _, err := sp.QueryCtx(ctx, 3, QueryOpts{}); !errors.Is(err, context.Canceled) && !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("expected context error, got %v", err)
	}
	// The engine must still answer correctly after the abort.
	res, err := sp.Query(3)
	if err != nil {
		t.Fatal(err)
	}
	if res.Scores[3] != 1 {
		t.Fatalf("post-abort self score %v", res.Scores[3])
	}
}

// Property: parallel scores match serial scores within the theoretical
// budget on arbitrary random graphs — both are ε-approximations of the
// same exact SimRank (Theorem 1), so they can differ by at most 2ε (the
// walk substreams and reduction order differ, the guarantee does not).
func TestQuickParallelMatchesSerial(t *testing.T) {
	f := func(token uint32, queryTok uint32) bool {
		g := randomGraph(token)
		u := int32(queryTok % uint32(g.N()))
		const eps = 0.05
		serial, err := New(g, Options{Epsilon: eps, Seed: uint64(token)})
		if err != nil {
			return false
		}
		par, err := New(g, Options{Epsilon: eps, Seed: uint64(token), Parallelism: 3})
		if err != nil {
			return false
		}
		a, err := serial.Query(u)
		if err != nil {
			return false
		}
		b, err := par.Query(u)
		if err != nil {
			return false
		}
		for v := range a.Scores {
			if math.Abs(a.Scores[v]-b.Scores[v]) > 2*eps {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// Parallel queries are pure: interleaving a different parallel query on
// the same engine leaves a repeated seeded query bit-identical (worker
// scratch is fully reset between queries).
func TestParallelQueryIdempotent(t *testing.T) {
	g := parallelTestGraph(t)
	sp := mustEngine(t, g, Options{Epsilon: 0.05, Seed: 5, Parallelism: 4})
	seeded := QueryOpts{Seed: 99, HasSeed: true}
	a, err := sp.QueryCtx(context.Background(), 7, seeded)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sp.Query(123); err != nil { // dirty the scratch
		t.Fatal(err)
	}
	b, err := sp.QueryCtx(context.Background(), 7, seeded)
	if err != nil {
		t.Fatal(err)
	}
	for v := range a.Scores {
		if a.Scores[v] != b.Scores[v] {
			t.Fatalf("seeded parallel query not idempotent at v=%d: %v vs %v", v, a.Scores[v], b.Scores[v])
		}
	}
}
