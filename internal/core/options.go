// Package core implements SimPush, the index-free single-source SimRank
// algorithm of Shi et al. (PVLDB 2020): Source-Push attention-node
// discovery (Algorithm 2), deterministic last-meeting correction within the
// source graph (Algorithms 3-4), and Reverse-Push score accumulation
// (Algorithm 5).
package core

import (
	"fmt"
	"math"
	"time"
)

// LevelDetectMode selects the sample-size rule for the max-level detection
// phase of Source-Push (Algorithm 2, lines 1-8).
type LevelDetectMode int

const (
	// LevelDetectChernoff sizes the walk sample by multiplicative Chernoff
	// bounds: n_w = ⌈12·ln(1/((1−√c)·ε_h·δ))/ε_h⌉ with count threshold
	// n_w·ε_h/2. Detecting whether some node's hitting probability exceeds
	// ε_h only requires relative-error concentration around the mean ε_h,
	// so the 1/ε_h² Hoeffding sample of the paper's pseudocode is loose;
	// this is the default and keeps small-ε settings realtime.
	LevelDetectChernoff LevelDetectMode = iota
	// LevelDetectHoeffding uses the paper-literal sample size
	// n_w = ⌈2·ln(1/((1−√c)·ε_h·δ))/ε_h²⌉ (Algorithm 2 line 2) with the
	// corrected count threshold ln(…)/ε_h = n_w·ε_h/2 implied by the
	// Hoeffding argument in the proof of Lemma 5. (The threshold printed
	// in Algorithm 2 line 6, ln(…)/ε_h², equals half the walk count — an
	// empirical frequency of ½ — which contradicts that proof.)
	LevelDetectHoeffding
	// LevelDetectDeterministic skips the sampling phase entirely and
	// pushes to the worst-case depth L* = ⌊log_{1/√c}(1/ε_h)⌋ (Lemma 2).
	// The guarantee becomes deterministic (no δ), but Source-Push explores
	// every level up to L* instead of the usually much smaller true L —
	// the ablation that shows why Algorithm 2 samples walks at all.
	LevelDetectDeterministic
)

// Clock supplies the stage timestamps behind Result.Durations. It is an
// interface rather than a func type on purpose: Options must stay
// comparable (the root package's batch dispatcher uses it inside a map
// key), and interface values holding comparable implementations are.
// Implementations must be cheap — Now is called a handful of times per
// query, never inside a stage loop.
type Clock interface {
	Now() time.Time
}

// Options configures a SimPush engine. The zero value of each field selects
// the paper's defaults.
type Options struct {
	// C is the SimRank decay factor. Default 0.6 (the paper's setting).
	C float64
	// Epsilon is the maximum absolute error ε of Definition 1. Default 0.02.
	Epsilon float64
	// Delta is the failure probability δ. Default 1e-4 (the paper's setting).
	Delta float64
	// LevelDetect selects the walk-sampling rule (see the mode docs).
	LevelDetect LevelDetectMode
	// DisableGamma skips the last-meeting correction (sets γ ≡ 1). This is
	// an ablation switch: scores then overestimate SimRank by counting
	// repeated meetings, quantifying how much Algorithms 3-4 buy.
	DisableGamma bool
	// Seed drives the level-detection walks. Queries with the same seed,
	// graph and options are deterministic.
	Seed uint64
	// MaxWalks optionally caps the level-detection sample size (0 = no cap).
	// Intended for experiments; capping voids the δ guarantee.
	MaxWalks int
	// Parallelism is the intra-query worker count: level-detection walk
	// sampling, the γ loop, and Reverse-Push level sweeps fan out across
	// this many goroutines. 0 and 1 both run every stage serially (the
	// default) and are interchangeable. Results are deterministic in
	// (seed, Parallelism) — independent of GOMAXPROCS —
	// but different worker counts produce slightly different (equally
	// valid) estimates, because walk substreams and floating-point
	// reduction order depend on the shard layout.
	Parallelism int
	// Clock overrides the wall clock behind Result.Durations — injected
	// by tests and the observability layer so the engine itself performs
	// no ambient time.Now reads (the detmerge invariant). nil uses the
	// process clock. Timestamps never reach scores or control flow.
	Clock Clock
}

func (o Options) withDefaults() Options {
	if o.C == 0 {
		o.C = 0.6
	}
	if o.Epsilon == 0 {
		o.Epsilon = 0.02
	}
	if o.Delta == 0 {
		o.Delta = 1e-4
	}
	return o
}

func (o Options) validate() error {
	if o.C <= 0 || o.C >= 1 {
		return fmt.Errorf("core: %w: decay factor c must be in (0,1), got %v", ErrInvalidOptions, o.C)
	}
	if o.Epsilon <= 0 || o.Epsilon >= 1 {
		return fmt.Errorf("core: %w: epsilon must be in (0,1), got %v", ErrInvalidOptions, o.Epsilon)
	}
	if o.Delta <= 0 || o.Delta >= 1 {
		return fmt.Errorf("core: %w: delta must be in (0,1), got %v", ErrInvalidOptions, o.Delta)
	}
	if o.Parallelism < 0 {
		return fmt.Errorf("core: %w: parallelism must be >= 0, got %d", ErrInvalidOptions, o.Parallelism)
	}
	return nil
}

// MaxLevelBound returns the walk-depth truncation bound
// L* = ⌊log_{1/√c}(1/ε_h)⌋ (Lemma 2) implied by the options, with
// defaults applied to zero fields. Every adjacency list, reciprocal
// in-degree and walk transition a query reads lies within L* hops of the
// nodes its pushes and walks visit, so L* is the BFS depth at which an
// affected-node over-approximation for cache carry-forward is sound.
func (o Options) MaxLevelBound() int {
	return deriveParams(o.withDefaults()).lStar
}

// QueryOpts carries per-query overrides of the engine Options. The zero
// value inherits every engine setting; a set field replaces the engine
// value for one query only, with the derived quantities (ε_h, L*, walk
// counts) recomputed from the merged options. The engine scratch is sized
// to the graph, not to the parameters, so overrides reuse it fully.
type QueryOpts struct {
	// Epsilon overrides the error bound ε when nonzero.
	Epsilon float64
	// Delta overrides the failure probability δ when nonzero.
	Delta float64
	// Seed, when HasSeed is set, reseeds the level-detection walk stream at
	// the start of the query, making the query deterministic regardless of
	// what ran before on the same engine.
	Seed    uint64
	HasSeed bool
	// MaxWalks, when HasMaxWalks is set, replaces the engine walk cap
	// (0 removes the cap).
	MaxWalks    int
	HasMaxWalks bool
	// Parallelism, when HasParallelism is set, replaces the engine's
	// intra-query worker count for one query (0 or 1 = serial).
	Parallelism    int
	HasParallelism bool
}

// IsZero reports whether the overrides leave every engine setting intact.
func (q QueryOpts) IsZero() bool {
	return q == QueryOpts{}
}

// merge returns the engine options with the per-query overrides applied.
func (o Options) merge(q QueryOpts) Options {
	if q.Epsilon != 0 {
		o.Epsilon = q.Epsilon // negative values fail validate, not silently drop
	}
	if q.Delta != 0 {
		o.Delta = q.Delta
	}
	if q.HasSeed {
		o.Seed = q.Seed
	}
	if q.HasMaxWalks {
		o.MaxWalks = q.MaxWalks
	}
	if q.HasParallelism {
		o.Parallelism = q.Parallelism
	}
	return o
}

// params holds the quantities derived from Options that the three stages
// share (Table 2 of the paper).
type params struct {
	c     float64
	sqrtC float64
	eps   float64
	epsH  float64 // ε_h = (1−√c)/(3√c)·ε  (Definition 3 / Lemma 4)
	delta float64
	lStar int // L* = ⌊log_{1/√c}(1/ε_h)⌋  (Lemma 2)

	nWalks    int   // level-detection sample size
	countThld int32 // per-(level,node) count threshold for detecting L
}

func deriveParams(o Options) params {
	p := params{c: o.C, sqrtC: math.Sqrt(o.C), eps: o.Epsilon, delta: o.Delta}
	p.epsH = (1 - p.sqrtC) / (3 * p.sqrtC) * p.eps
	p.lStar = int(math.Floor(math.Log(1/p.epsH) / math.Log(1/p.sqrtC)))
	if p.lStar < 1 {
		p.lStar = 1
	}
	// X = 1/((1−√c)·ε_h·δ): the union-bound term of Lemma 5.
	logX := math.Log(1 / ((1 - p.sqrtC) * p.epsH * p.delta))
	if logX < 1 {
		logX = 1
	}
	switch o.LevelDetect {
	case LevelDetectHoeffding:
		p.nWalks = int(math.Ceil(2 * logX / (p.epsH * p.epsH)))
	case LevelDetectDeterministic:
		p.nWalks = 0
	default:
		p.nWalks = int(math.Ceil(12 * logX / p.epsH))
	}
	if o.MaxWalks > 0 && p.nWalks > o.MaxWalks {
		p.nWalks = o.MaxWalks
	}
	p.countThld = int32(math.Ceil(float64(p.nWalks) * p.epsH / 2))
	if p.countThld < 1 {
		p.countThld = 1
	}
	return p
}

// MaxAttentionNodes returns the Lemma 2 bound ⌊√c/((1−√c)·ε_h)⌋ on |A_u|.
func (p params) MaxAttentionNodes() int {
	return int(math.Floor(p.sqrtC / ((1 - p.sqrtC) * p.epsH)))
}
