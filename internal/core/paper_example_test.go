package core

import (
	"context"
	"math"
	"testing"

	"github.com/simrank/simpush/internal/gen"
)

// newPaperExampleEngine builds a SimPush engine tuned to the paper's
// running example: ε_h = 0.12 (Figure 1 uses this threshold directly; it
// does not correspond to a valid ε, so the derived parameters are
// overridden for the test).
func newPaperExampleEngine(t *testing.T) *SimPush {
	t.Helper()
	g := gen.PaperFigure1()
	sp, err := New(g, Options{C: 0.6, Epsilon: 0.5, Delta: 1e-4, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	sp.p.epsH = 0.12
	sp.p.lStar = 8
	sp.p.nWalks = 20000
	sp.p.countThld = int32(20000 * 0.12 / 2)
	return sp
}

// Node ids in gen.PaperFigure1.
const (
	nU  = 0
	nWa = 1
	nWb = 2
	nWc = 3
	nWd = 4
	nWe = 5
	nWf = 6
	nWg = 7
	nWh = 8
	nWp = 9
	nWx = 10
)

func runExampleQueryState(t *testing.T, sp *SimPush) *queryState {
	t.Helper()
	qs := testQueryState(sp, nU)
	sp.sourcePush(context.Background(), qs)
	if qs.L != 3 {
		t.Fatalf("detected L = %d, want 3", qs.L)
	}
	return qs
}

func levelH(qs *queryState, l int, node int32) float64 {
	lv := qs.levels[l]
	for i, v := range lv.nodes {
		if v == node {
			return lv.h[i]
		}
	}
	return 0
}

// TestPaperFigure1Hitting verifies every hitting probability printed in
// Figure 1(a) of the paper.
func TestPaperFigure1Hitting(t *testing.T) {
	sp := newPaperExampleEngine(t)
	qs := runExampleQueryState(t, sp)
	defer sp.resetSlots(qs)

	sqrtC := math.Sqrt(0.6)
	want := []struct {
		l    int
		node int32
		h    float64
	}{
		{1, nWa, sqrtC / 3}, // 0.258
		{1, nWb, sqrtC / 3},
		{1, nWc, sqrtC / 3},
		{2, nWd, 0.1},
		{2, nWe, 0.3},
		{2, nWf, 0.1},
		{2, nWg, 0.1},
		{3, nWh, 0.194},
		{3, nWp, 0.155},
		{3, nWc, 0.039},
	}
	for _, w := range want {
		got := levelH(qs, w.l, w.node)
		if math.Abs(got-w.h) > 5e-4 {
			t.Errorf("h^(%d)(u, %d) = %v, want %v", w.l, w.node, got, w.h)
		}
	}
}

// TestPaperFigure1Attention verifies the attention sets of Figure 1(a):
// A⁽¹⁾ = {wa, wb, wc}, A⁽²⁾ = {we}, A⁽³⁾ = {wh, wp}.
func TestPaperFigure1Attention(t *testing.T) {
	sp := newPaperExampleEngine(t)
	qs := runExampleQueryState(t, sp)
	defer sp.resetSlots(qs)

	got := map[int]map[int32]bool{}
	for _, a := range qs.att {
		l := int(a.level)
		if got[l] == nil {
			got[l] = map[int32]bool{}
		}
		got[l][a.node] = true
	}
	want := map[int]map[int32]bool{
		1: {nWa: true, nWb: true, nWc: true},
		2: {nWe: true},
		3: {nWh: true, nWp: true},
	}
	if len(got) != len(want) {
		t.Fatalf("attention levels = %v, want %v", got, want)
	}
	for l, nodes := range want {
		if len(got[l]) != len(nodes) {
			t.Fatalf("A^(%d) = %v, want %v", l, got[l], nodes)
		}
		for v := range nodes {
			if !got[l][v] {
				t.Errorf("A^(%d) missing node %d", l, v)
			}
		}
	}
}

// TestPaperFigure2Hitting verifies the within-G_u hitting probabilities
// listed in Figure 2 of the paper (between attention nodes and the
// non-attention intermediary w°d).
func TestPaperFigure2Hitting(t *testing.T) {
	sp := newPaperExampleEngine(t)
	qs := runExampleQueryState(t, sp)
	defer sp.resetSlots(qs)
	sp.computeHittingVecs(context.Background(), qs)

	attIdxOf := func(l int, node int32) int32 {
		for i, a := range qs.att {
			if int(a.level) == l && a.node == node {
				return int32(i)
			}
		}
		t.Fatalf("no attention node (%d, %d)", l, node)
		return -1
	}
	hTilde := func(holderLevel int, holder int32, targetLevel int, target int32) float64 {
		slot := sp.slots[holderLevel][holder]
		if slot < 0 {
			t.Fatalf("node %d not at level %d", holder, holderLevel)
		}
		ti := attIdxOf(targetLevel, target)
		for _, e := range qs.vecs[holderLevel][slot] {
			if e.a == ti {
				return e.v
			}
		}
		return 0
	}

	sqrtC := math.Sqrt(0.6)
	checks := []struct {
		hl   int
		h    int32
		tl   int
		tn   int32
		want float64
	}{
		{2, nWd, 3, nWh, sqrtC},     // h̃¹(w°d, wh) = 0.775
		{2, nWe, 3, nWh, sqrtC / 2}, // 0.387
		{2, nWe, 3, nWp, sqrtC / 2},
		{2, nWf, 3, nWp, sqrtC / 2},
		{1, nWa, 2, nWe, sqrtC / 2},
		{1, nWa, 3, nWh, 0.45},
		{1, nWa, 3, nWp, 0.15},
		{1, nWb, 2, nWe, sqrtC},
		{1, nWb, 3, nWh, 0.3},
		{1, nWb, 3, nWp, 0.3},
		{1, nWc, 3, nWp, 0.15},
		{1, nWc, 3, nWh, 0},
	}
	for _, c := range checks {
		got := hTilde(c.hl, c.h, c.tl, c.tn)
		if math.Abs(got-c.want) > 1e-9 {
			t.Errorf("h̃(level %d node %d -> level %d node %d) = %v, want %v",
				c.hl, c.h, c.tl, c.tn, got, c.want)
		}
	}
}

// TestPaperExampleGamma verifies the last-meeting probabilities derived by
// hand from Eqs. 9-11 on the running example:
// γ³(wh)=γ³(wp)=1, γ²(we)=0.7, γ¹(wa)=0.67, γ¹(wb)=0.4, γ¹(wc)=0.9775.
func TestPaperExampleGamma(t *testing.T) {
	sp := newPaperExampleEngine(t)
	qs := runExampleQueryState(t, sp)
	defer sp.resetSlots(qs)
	sp.computeHittingVecs(context.Background(), qs)
	testGammas(t, sp, qs)

	want := map[[2]int32]float64{
		{3, nWh}: 1,
		{3, nWp}: 1,
		{2, nWe}: 0.7,
		{1, nWa}: 0.67,
		{1, nWb}: 0.4,
		{1, nWc}: 0.9775,
	}
	for i := range qs.att {
		a := qs.att[i]
		g := a.gamma
		key := [2]int32{a.level, a.node}
		w, ok := want[key]
		if !ok {
			t.Errorf("unexpected attention node %v", key)
			continue
		}
		if math.Abs(g-w) > 1e-9 {
			t.Errorf("γ^(%d)(%d) = %v, want %v", a.level, a.node, g, w)
		}
	}
}

// TestPaperExampleRho verifies ρ²(wa, wh) = 0.18 (the worked subtraction
// in Section 4.2) indirectly through γ¹(wa) plus the direct components.
func TestPaperExampleScores(t *testing.T) {
	sp := newPaperExampleEngine(t)
	res, err := sp.Query(nU)
	if err != nil {
		t.Fatal(err)
	}
	if res.Scores[nU] != 1 {
		t.Fatal("self score != 1")
	}
	if res.L != 3 {
		t.Fatalf("L = %d", res.L)
	}
	if len(res.Attention) != 6 {
		t.Fatalf("attention count = %d, want 6", len(res.Attention))
	}
	for v, s := range res.Scores {
		if s < 0 || s > 1 {
			t.Fatalf("score[%d] = %v out of range", v, s)
		}
	}
}
