package core

import (
	"context"
	"math"
	"testing"

	"github.com/simrank/simpush/internal/exact"
	"github.com/simrank/simpush/internal/gen"
	"github.com/simrank/simpush/internal/graph"
)

const testC = 0.6

func mustEngine(t testing.TB, g *graph.Graph, opt Options) *SimPush {
	t.Helper()
	sp, err := New(g, opt)
	if err != nil {
		t.Fatal(err)
	}
	return sp
}

// testQueryState builds a query state with the engine's effective options,
// for tests and benchmarks that drive the unexported stages directly.
func testQueryState(sp *SimPush, u int32) *queryState {
	return &queryState{u: u, opt: sp.opt, p: sp.p}
}

// testGammas runs Algorithm 4 over all attention nodes of qs, the way
// QueryCtx does between Algorithms 3 and 5.
func testGammas(t testing.TB, sp *SimPush, qs *queryState) {
	t.Helper()
	if err := sp.computeGammas(context.Background(), qs); err != nil {
		t.Fatal(err)
	}
}

func TestInvalidOptions(t *testing.T) {
	g := gen.Cycle(3)
	bad := []Options{
		{C: 1.2},
		{C: -1},
		{Epsilon: 2},
		{Epsilon: -0.1},
		{Delta: 3},
	}
	for _, o := range bad {
		if _, err := New(g, o); err == nil {
			t.Errorf("options %+v accepted", o)
		}
	}
}

func TestQueryNodeValidation(t *testing.T) {
	sp := mustEngine(t, gen.Cycle(3), Options{})
	if _, err := sp.Query(-1); err == nil {
		t.Fatal("negative node accepted")
	}
	if _, err := sp.Query(3); err == nil {
		t.Fatal("out-of-range node accepted")
	}
}

func TestSelfScoreAlwaysOne(t *testing.T) {
	g, err := gen.ErdosRenyi(100, 600, 1)
	if err != nil {
		t.Fatal(err)
	}
	sp := mustEngine(t, g, Options{Epsilon: 0.05, Seed: 1})
	for _, u := range []int32{0, 17, 99} {
		res, err := sp.Query(u)
		if err != nil {
			t.Fatal(err)
		}
		if res.Scores[u] != 1 {
			t.Fatalf("s(%d,%d) = %v", u, u, res.Scores[u])
		}
	}
}

// The paper's guarantee (Theorem 1): s(u,v) − s̃(u,v) ≤ ε w.p. ≥ 1−δ, and
// the estimate never overshoots (Lemmas 1, 3, 4 are one-sided).
func TestAccuracyVsExact(t *testing.T) {
	graphs := []struct {
		name string
		g    func() (*graph.Graph, error)
	}{
		{"er", func() (*graph.Graph, error) { return gen.ErdosRenyi(120, 700, 3) }},
		{"copying", func() (*graph.Graph, error) { return gen.CopyingModel(150, 5, 0.3, 4) }},
		{"ba", func() (*graph.Graph, error) { return gen.BarabasiAlbert(120, 3, 5) }},
		{"sbm", func() (*graph.Graph, error) { return gen.SBM(120, 4, 6, 2, 6) }},
		{"forestfire", func() (*graph.Graph, error) { return gen.ForestFire(120, 0.4, 7) }},
	}
	for _, tc := range graphs {
		t.Run(tc.name, func(t *testing.T) {
			g, err := tc.g()
			if err != nil {
				t.Fatal(err)
			}
			ex, err := exact.AllPairs(g, exact.Options{C: testC})
			if err != nil {
				t.Fatal(err)
			}
			const eps = 0.02
			sp := mustEngine(t, g, Options{Epsilon: eps, Seed: 11})
			for _, u := range []int32{0, 5, 50, 100} {
				res, err := sp.Query(u)
				if err != nil {
					t.Fatal(err)
				}
				for v := int32(0); v < g.N(); v++ {
					if v == u {
						continue
					}
					want := ex.At(u, v)
					got := res.Scores[v]
					if want-got > eps {
						t.Errorf("u=%d v=%d: underestimate too large: exact %v simpush %v", u, v, want, got)
					}
					if got-want > 1e-6 {
						t.Errorf("u=%d v=%d: overestimate: exact %v simpush %v", u, v, want, got)
					}
				}
			}
		})
	}
}

// Smaller ε must not hurt accuracy (and usually improves it).
func TestAccuracyImprovesWithEpsilon(t *testing.T) {
	g, err := gen.CopyingModel(200, 5, 0.3, 9)
	if err != nil {
		t.Fatal(err)
	}
	ex, err := exact.AllPairs(g, exact.Options{C: testC})
	if err != nil {
		t.Fatal(err)
	}
	u := int32(7)
	maxErr := func(eps float64) float64 {
		sp := mustEngine(t, g, Options{Epsilon: eps, Seed: 3})
		res, err := sp.Query(u)
		if err != nil {
			t.Fatal(err)
		}
		worst := 0.0
		for v := int32(0); v < g.N(); v++ {
			if v == u {
				continue
			}
			if d := math.Abs(ex.At(u, v) - res.Scores[v]); d > worst {
				worst = d
			}
		}
		return worst
	}
	coarse := maxErr(0.1)
	fine := maxErr(0.005)
	if fine > 0.005 {
		t.Fatalf("eps=0.005 worst error %v exceeds bound", fine)
	}
	if coarse > 0.1 {
		t.Fatalf("eps=0.1 worst error %v exceeds bound", coarse)
	}
	if fine > coarse+1e-9 {
		t.Fatalf("finer epsilon degraded accuracy: %v vs %v", fine, coarse)
	}
}

func TestHoeffdingModeMatches(t *testing.T) {
	g, err := gen.CopyingModel(100, 4, 0.35, 13)
	if err != nil {
		t.Fatal(err)
	}
	ex, err := exact.AllPairs(g, exact.Options{C: testC})
	if err != nil {
		t.Fatal(err)
	}
	sp := mustEngine(t, g, Options{Epsilon: 0.05, Seed: 5, LevelDetect: LevelDetectHoeffding})
	res, err := sp.Query(3)
	if err != nil {
		t.Fatal(err)
	}
	for v := int32(0); v < g.N(); v++ {
		if v == 3 {
			continue
		}
		if d := ex.At(3, v) - res.Scores[v]; d > 0.05 || d < -1e-6 {
			t.Fatalf("hoeffding mode error at v=%d: %v", v, d)
		}
	}
}

// Ablation: disabling the γ correction can only raise scores (repeated
// meetings are no longer discounted), and must keep them above the
// corrected estimates.
func TestDisableGammaOverestimates(t *testing.T) {
	g, err := gen.BarabasiAlbert(200, 4, 17)
	if err != nil {
		t.Fatal(err)
	}
	u := int32(9)
	withG := mustEngine(t, g, Options{Epsilon: 0.02, Seed: 7})
	noG := mustEngine(t, g, Options{Epsilon: 0.02, Seed: 7, DisableGamma: true})
	a, err := withG.Query(u)
	if err != nil {
		t.Fatal(err)
	}
	b, err := noG.Query(u)
	if err != nil {
		t.Fatal(err)
	}
	raised := false
	for v := int32(0); v < g.N(); v++ {
		if b.Scores[v] < a.Scores[v]-1e-12 {
			t.Fatalf("γ-free score below corrected at v=%d: %v < %v", v, b.Scores[v], a.Scores[v])
		}
		if b.Scores[v] > a.Scores[v]+1e-9 {
			raised = true
		}
	}
	if !raised {
		t.Fatal("disabling γ changed nothing; ablation is vacuous on this graph")
	}
}

func TestDanglingQueryNode(t *testing.T) {
	// Node 0 of a star has in-degree 5; leaves have in-degree 0.
	g := gen.Star(6)
	sp := mustEngine(t, g, Options{Epsilon: 0.02, Seed: 1})
	res, err := sp.Query(1) // leaf: no in-neighbors => s(1, v) = 0 for v != 1
	if err != nil {
		t.Fatal(err)
	}
	for v := int32(0); v < 6; v++ {
		want := 0.0
		if v == 1 {
			want = 1
		}
		if res.Scores[v] != want {
			t.Fatalf("s(1,%d) = %v, want %v", v, res.Scores[v], want)
		}
	}
	if res.L != 0 || len(res.Attention) != 0 {
		t.Fatalf("dangling query built a source graph: L=%d att=%d", res.L, len(res.Attention))
	}
}

func TestCycleAllZero(t *testing.T) {
	g := gen.Cycle(12)
	sp := mustEngine(t, g, Options{Epsilon: 0.01, Seed: 2})
	res, err := sp.Query(4)
	if err != nil {
		t.Fatal(err)
	}
	for v := int32(0); v < 12; v++ {
		if v == 4 {
			continue
		}
		if res.Scores[v] != 0 {
			t.Fatalf("cycle s(4,%d) = %v, want 0", v, res.Scores[v])
		}
	}
}

func TestSharedParentScore(t *testing.T) {
	g := graph.MustFromPairs([2]int32{0, 1}, [2]int32{0, 2})
	sp := mustEngine(t, g, Options{Epsilon: 0.005, Seed: 3})
	res, err := sp.Query(1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Scores[2]-testC) > 0.005 {
		t.Fatalf("s(1,2) = %v, want %v", res.Scores[2], testC)
	}
}

func TestSingleNodeGraph(t *testing.T) {
	b := graph.NewBuilder(graph.BuildOptions{})
	b.SetN(1)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	sp := mustEngine(t, g, Options{})
	res, err := sp.Query(0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Scores[0] != 1 {
		t.Fatal("single node self score")
	}
}

func TestDeterministicQueries(t *testing.T) {
	g, err := gen.CopyingModel(300, 6, 0.3, 19)
	if err != nil {
		t.Fatal(err)
	}
	a := mustEngine(t, g, Options{Epsilon: 0.02, Seed: 99})
	b := mustEngine(t, g, Options{Epsilon: 0.02, Seed: 99})
	ra, err := a.Query(42)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := b.Query(42)
	if err != nil {
		t.Fatal(err)
	}
	if ra.L != rb.L || len(ra.Attention) != len(rb.Attention) {
		t.Fatal("same seed, different structure")
	}
	for v := range ra.Scores {
		if ra.Scores[v] != rb.Scores[v] {
			t.Fatalf("same seed, different score at %d", v)
		}
	}
}

// Scratch reuse across queries must not leak state.
func TestRepeatedQueriesClean(t *testing.T) {
	g, err := gen.CopyingModel(300, 6, 0.3, 23)
	if err != nil {
		t.Fatal(err)
	}
	sp := mustEngine(t, g, Options{Epsilon: 0.02, Seed: 4})
	first, err := sp.Query(10)
	if err != nil {
		t.Fatal(err)
	}
	for u := int32(0); u < 20; u++ {
		if _, err := sp.Query(u); err != nil {
			t.Fatal(err)
		}
	}
	again, err := sp.Query(10)
	if err != nil {
		t.Fatal(err)
	}
	for v := range first.Scores {
		if first.Scores[v] != again.Scores[v] {
			t.Fatalf("query not reproducible after scratch reuse at v=%d", v)
		}
	}
}

// Lemma 2: |A_u| ≤ ⌊√c/((1−√c)·ε_h)⌋ and attention nodes live within L* steps.
func TestAttentionBounds(t *testing.T) {
	g, err := gen.BarabasiAlbert(400, 5, 29)
	if err != nil {
		t.Fatal(err)
	}
	sp := mustEngine(t, g, Options{Epsilon: 0.05, Seed: 6})
	bound := sp.p.MaxAttentionNodes()
	for u := int32(0); u < 30; u++ {
		res, err := sp.Query(u)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Attention) > bound {
			t.Fatalf("u=%d: %d attention nodes exceeds Lemma 2 bound %d", u, len(res.Attention), bound)
		}
		if res.L > sp.p.lStar {
			t.Fatalf("u=%d: L=%d exceeds L*=%d", u, res.L, sp.p.lStar)
		}
		for _, a := range res.Attention {
			if a.H < sp.p.epsH {
				t.Fatalf("attention node below threshold: %+v", a)
			}
			if a.Gamma < 0 || a.Gamma > 1 {
				t.Fatalf("γ out of range: %+v", a)
			}
		}
	}
}

// Push conservation: on a graph with no dangling nodes, Σ_w h^(ℓ)(u,w) = √c^ℓ.
func TestHittingProbabilityConservation(t *testing.T) {
	g := gen.Complete(30)
	sp := mustEngine(t, g, Options{Epsilon: 0.02, Seed: 8})
	qs := testQueryState(sp, 3)
	sp.sourcePush(context.Background(), qs)
	defer sp.resetSlots(qs)
	sqrtC := math.Sqrt(testC)
	for l, lv := range qs.levels {
		var sum float64
		for _, h := range lv.h {
			sum += h
		}
		want := math.Pow(sqrtC, float64(l))
		if math.Abs(sum-want) > 1e-9 {
			t.Fatalf("level %d mass %v, want %v", l, sum, want)
		}
	}
}

func TestResultMetadata(t *testing.T) {
	g, err := gen.CopyingModel(500, 8, 0.3, 31)
	if err != nil {
		t.Fatal(err)
	}
	sp := mustEngine(t, g, Options{Epsilon: 0.02, Seed: 9})
	res, err := sp.Query(100)
	if err != nil {
		t.Fatal(err)
	}
	if res.Walks != sp.p.nWalks {
		t.Fatal("walk count not reported")
	}
	if res.SourceGraphSize <= 0 {
		t.Fatal("source graph size missing")
	}
	if res.Durations.SourcePush <= 0 {
		t.Fatal("stage durations missing")
	}
	if sp.MemoryBytes() <= 0 {
		t.Fatal("memory estimate missing")
	}
	if sp.Epsilon() != 0.02 || sp.Graph() != g {
		t.Fatal("accessors broken")
	}
	if sp.Options().Delta != 1e-4 {
		t.Fatal("defaulted options not visible")
	}
}

func TestMaxWalksCap(t *testing.T) {
	g := gen.Cycle(10)
	sp := mustEngine(t, g, Options{Epsilon: 0.005, MaxWalks: 500, Seed: 10})
	if sp.p.nWalks != 500 {
		t.Fatalf("walk cap ignored: %d", sp.p.nWalks)
	}
}

func TestParamsDerivation(t *testing.T) {
	p := deriveParams(Options{C: 0.6, Epsilon: 0.02, Delta: 1e-4}.withDefaults())
	sqrtC := math.Sqrt(0.6)
	wantEpsH := (1 - sqrtC) / (3 * sqrtC) * 0.02
	if math.Abs(p.epsH-wantEpsH) > 1e-12 {
		t.Fatalf("epsH = %v, want %v", p.epsH, wantEpsH)
	}
	if p.lStar < 20 || p.lStar > 30 {
		t.Fatalf("lStar = %d looks wrong for eps=0.02", p.lStar)
	}
	// Chernoff default must be far cheaper than Hoeffding.
	ph := deriveParams(Options{C: 0.6, Epsilon: 0.02, Delta: 1e-4, LevelDetect: LevelDetectHoeffding}.withDefaults())
	if p.nWalks*10 > ph.nWalks {
		t.Fatalf("chernoff %d vs hoeffding %d: expected >10x gap", p.nWalks, ph.nWalks)
	}
	if p.countThld < 1 || ph.countThld < 1 {
		t.Fatal("zero count threshold")
	}
}

func BenchmarkQueryCopying50k(b *testing.B) {
	g, err := gen.CopyingModel(50000, 10, 0.3, 1)
	if err != nil {
		b.Fatal(err)
	}
	sp := mustEngine(b, g, Options{Epsilon: 0.02, Seed: 1})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sp.Query(int32(i) % g.N()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkQueryBA50k(b *testing.B) {
	g, err := gen.BarabasiAlbert(50000, 5, 1)
	if err != nil {
		b.Fatal(err)
	}
	sp := mustEngine(b, g, Options{Epsilon: 0.02, Seed: 1})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sp.Query(int32(i) % g.N()); err != nil {
			b.Fatal(err)
		}
	}
}

func TestDeterministicLevelMode(t *testing.T) {
	g, err := gen.CopyingModel(150, 5, 0.3, 33)
	if err != nil {
		t.Fatal(err)
	}
	ex, err := exact.AllPairs(g, exact.Options{C: testC})
	if err != nil {
		t.Fatal(err)
	}
	sp := mustEngine(t, g, Options{Epsilon: 0.05, Seed: 1, LevelDetect: LevelDetectDeterministic})
	res, err := sp.Query(9)
	if err != nil {
		t.Fatal(err)
	}
	if res.Walks != 0 {
		t.Fatalf("deterministic mode sampled %d walks", res.Walks)
	}
	// L is L* unless the push frontier dies earlier (every in-path of this
	// generated graph eventually reaches the seed nodes, which have no
	// in-neighbors, so early death is legitimate).
	if res.L > sp.p.lStar {
		t.Fatalf("L = %d exceeds L* = %d", res.L, sp.p.lStar)
	}
	for v := int32(0); v < g.N(); v++ {
		if v == 9 {
			continue
		}
		if d := ex.At(9, v) - res.Scores[v]; d > 0.05 || d < -1e-6 {
			t.Fatalf("deterministic mode error at v=%d: %v", v, d)
		}
	}
}

// Deterministic mode explores at least as deep as sampled mode, so its
// scores dominate (less truncation of Eq. 8's level sum).
func TestDeterministicModeDominates(t *testing.T) {
	g, err := gen.BarabasiAlbert(300, 3, 35)
	if err != nil {
		t.Fatal(err)
	}
	sampled := mustEngine(t, g, Options{Epsilon: 0.05, Seed: 2})
	det := mustEngine(t, g, Options{Epsilon: 0.05, Seed: 2, LevelDetect: LevelDetectDeterministic})
	a, err := sampled.Query(4)
	if err != nil {
		t.Fatal(err)
	}
	b, err := det.Query(4)
	if err != nil {
		t.Fatal(err)
	}
	if b.L < a.L {
		t.Fatalf("deterministic L=%d < sampled L=%d", b.L, a.L)
	}
}
