package core

import (
	"context"
	"fmt"
	"time"

	"github.com/simrank/simpush/internal/graph"
	"github.com/simrank/simpush/internal/rnd"
	"github.com/simrank/simpush/internal/walk"
)

// walkerSeedMix decorrelates the walk stream from other consumers of the
// same user-visible seed.
const walkerSeedMix = 0x51a97c15deadbeef

// SimPush answers approximate single-source SimRank queries on a fixed
// graph with no precomputation (Algorithm 1 of the paper).
//
// A SimPush engine owns reusable query scratch and is therefore not safe
// for concurrent queries; create one engine per goroutine (construction is
// cheap — there is no index).
type SimPush struct {
	g   *graph.Graph
	opt Options
	p   params

	walker  *walk.Walker
	counter *walk.LevelCounter

	// hScratch accumulates hitting probabilities for the level currently
	// being pushed into; reset via the touched list after compression.
	hScratch []float64
	hTouched []int32
	// slots[l][v] is v's index within level l of G_u, or -1.
	slots [][]int32

	// Algorithm 3 scratch: dense accumulator over attention indices.
	attScratch []float64
	attTouched []int32

	// Algorithm 4 scratch: ρ values over attention indices (serial path).
	gamma gammaScratch

	// Algorithm 5 scratch: residues for the current and next level.
	rCur, rNxt             []float64
	curTouched, nxtTouched []int32

	// workers carries the per-goroutine scratch of intra-query parallelism
	// (see parallel.go); grown lazily to the largest Parallelism queried.
	workers []*pworker
}

// ventry is one sparse-vector entry: hitting probability from the holding
// (level, node) to the attention node with index a.
type ventry struct {
	a int32
	v float64
}

// level holds the nodes of one level of the source graph G_u together with
// their exact hitting probabilities h^(ℓ)(u, ·) from the query node.
type level struct {
	nodes  []int32
	h      []float64
	attIdx []int32 // parallel: attention index, or -1
}

// attNode is one attention node (Definition 3): a (level, node) pair with
// h^(ℓ)(u, node) ≥ ε_h.
type attNode struct {
	level int32
	node  int32
	slot  int32 // index within its level
	h     float64
	gamma float64
}

// queryState carries all per-query intermediate structures, including the
// effective options and derived parameters of this query (the engine values
// merged with any QueryOpts overrides).
type queryState struct {
	u          int32
	opt        Options
	p          params
	L          int
	levels     []level
	att        []attNode
	attByLevel [][]int32 // attention indices per level (1..L)
	vecs       [][][]ventry
	tWalkDone  time.Time // walk-sampling → push boundary, for Durations
}

// AttentionInfo describes one attention node of a query, for diagnostics
// and for the paper's in-text statistics (avg L, |A_u|).
type AttentionInfo struct {
	Level int
	Node  int32
	H     float64 // h^(ℓ)(u, Node)
	Gamma float64 // γ^(ℓ)(Node)
}

// StageDurations reports per-stage wall time of one query: the √c-walk
// level-detection sample (Algorithm 2 lines 1-8), the Source-Push
// frontier expansion (rest of Algorithm 2), the last-meeting γ
// correction (Algorithms 3-4), and the Reverse-Push accumulation
// (Algorithm 5). Timestamps come from Options.Clock.
type StageDurations struct {
	Walk        time.Duration
	SourcePush  time.Duration
	Gamma       time.Duration
	ReversePush time.Duration
}

// Result is the answer to a single-source SimRank query.
type Result struct {
	// Scores[v] estimates s(u, v); Scores[u] == 1.
	Scores []float64
	// L is the detected max level of the source graph.
	L int
	// Walks is the number of √c-walks sampled for level detection.
	Walks int
	// SourceGraphSize is the total number of (level, node) entries in G_u.
	SourceGraphSize int
	// Attention lists all attention nodes with their γ values.
	Attention []AttentionInfo
	// Durations breaks the query into the three algorithm stages.
	Durations StageDurations
}

// New constructs a SimPush engine for g. It performs no preprocessing
// beyond allocating O(n) scratch.
func New(g *graph.Graph, opt Options) (*SimPush, error) {
	opt = opt.withDefaults()
	if err := opt.validate(); err != nil {
		return nil, err
	}
	p := deriveParams(opt)
	sp := &SimPush{
		g:       g,
		opt:     opt,
		p:       p,
		walker:  walk.NewWalker(g, opt.C, rnd.New(opt.Seed^walkerSeedMix)),
		counter: walk.NewLevelCounter(g.N()),
	}
	sp.hScratch = make([]float64, g.N())
	return sp, nil
}

// Rebind points the engine at a new graph snapshot in place, reusing the
// existing walk and push scratch instead of reconstructing the engine.
// When the node count is unchanged nothing is allocated at all; when the
// graph grew, each scratch array is extended (appended entries carry the
// clean-state sentinel, so the between-queries invariants hold); when it
// shrank, the larger arrays are kept. The walker's random stream continues
// uninterrupted, so a single-goroutine query sequence across rebinds is
// deterministic in (snapshot sequence, options, seed).
//
// Rebind must not run concurrently with a query on the same engine; like
// queries themselves, it requires exclusive ownership of the engine.
func (sp *SimPush) Rebind(g *graph.Graph) {
	if g == sp.g {
		return
	}
	sp.g = g
	sp.walker.Rebind(g)
	sp.counter.Grow(g.N())
	n := int(g.N())
	if n > len(sp.hScratch) {
		sp.hScratch = append(sp.hScratch, make([]float64, n-len(sp.hScratch))...)
	}
	for l, s := range sp.slots {
		if len(s) >= n {
			continue
		}
		grown := append(s, make([]int32, n-len(s))...)
		for i := len(s); i < n; i++ {
			grown[i] = -1
		}
		sp.slots[l] = grown
	}
	// rCur/rNxt need no handling here: reversePush sizes them lazily
	// against the bound graph on every query.
}

// Options returns the engine's effective (defaulted) options.
func (sp *SimPush) Options() Options {
	return sp.opt
}

// Epsilon returns the effective error parameter.
func (sp *SimPush) Epsilon() float64 {
	return sp.p.eps
}

// Graph returns the underlying graph.
func (sp *SimPush) Graph() *graph.Graph {
	return sp.g
}

// MemoryBytes estimates the engine's persistent scratch footprint (the
// graph itself is excluded; there is no index). Worker scratch counts:
// intra-query parallelism trades O(k·n) memory for latency.
func (sp *SimPush) MemoryBytes() int64 {
	var b int64
	b += int64(len(sp.hScratch)) * 8
	for _, s := range sp.slots {
		b += int64(len(s)) * 4
	}
	b += int64(len(sp.rCur)+len(sp.rNxt)) * 8
	b += int64(len(sp.attScratch)) * 8
	b += sp.gamma.memoryBytes()
	for _, w := range sp.workers {
		b += int64(len(w.acc))*8 + int64(cap(w.accT))*4 + w.gamma.memoryBytes()
	}
	return b
}

// Query computes s̃(u, v) for every v (Algorithm 1) with the engine's
// configured options and no cancellation.
func (sp *SimPush) Query(u int32) (*Result, error) {
	return sp.QueryCtx(context.Background(), u, QueryOpts{})
}

// gammaCtxStride is how many Algorithm 4 invocations run between two
// cancellation checks during the γ stage.
const gammaCtxStride = 64

// QueryCtx computes s̃(u, v) for every v (Algorithm 1), honoring ctx and
// per-query parameter overrides. Cancellation is observed at stage
// boundaries and inside each stage — between walk batches of level
// detection, between Source-Push levels, between γ computations, and
// between Reverse-Push level sweeps — so an expired deadline interrupts
// the query mid-flight rather than after the fact. The returned error is
// ctx.Err() itself, compatible with errors.Is(err, context.Canceled) and
// errors.Is(err, context.DeadlineExceeded). An interrupted query leaves
// the engine scratch clean; the engine remains usable.
func (sp *SimPush) QueryCtx(ctx context.Context, u int32, qo QueryOpts) (*Result, error) {
	if !sp.g.HasNode(u) {
		return nil, fmt.Errorf("core: %w: query node %d not in [0, %d)", ErrNodeOutOfRange, u, sp.g.N())
	}
	opt, p := sp.opt, sp.p
	if !qo.IsZero() {
		opt = opt.merge(qo)
		if err := opt.validate(); err != nil {
			return nil, err
		}
		p = deriveParams(opt)
		if qo.HasSeed {
			// Seed a bounded scope: the engine's own stream resumes
			// untouched afterwards, so a seeded query never perturbs (or
			// correlates) the walk streams of later unseeded queries.
			restore := sp.walker.PushSeed(opt.Seed ^ walkerSeedMix)
			defer restore()
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	qs := &queryState{u: u, opt: opt, p: p}
	clk := sp.opt.clock()

	t0 := clk.Now()
	if err := sp.sourcePush(ctx, qs); err != nil { // Algorithm 2
		sp.resetSlots(qs)
		return nil, err
	}
	t1 := clk.Now()

	if opt.DisableGamma {
		for i := range qs.att {
			qs.att[i].gamma = 1
		}
	} else {
		if err := sp.computeHittingVecs(ctx, qs); err != nil { // Algorithm 3
			sp.resetSlots(qs)
			return nil, err
		}
		if err := sp.computeGammas(ctx, qs); err != nil { // Algorithm 4
			sp.resetSlots(qs)
			return nil, err
		}
	}
	t2 := clk.Now()

	scores := make([]float64, sp.g.N())
	if err := sp.reversePush(ctx, qs, scores); err != nil { // Algorithm 5
		sp.resetSlots(qs)
		return nil, err
	}
	t3 := clk.Now()

	res := &Result{
		Scores: scores,
		L:      qs.L,
		Walks:  p.nWalks,
		Durations: StageDurations{
			Walk:        qs.tWalkDone.Sub(t0),
			SourcePush:  t1.Sub(qs.tWalkDone),
			Gamma:       t2.Sub(t1),
			ReversePush: t3.Sub(t2),
		},
	}
	for _, lv := range qs.levels {
		res.SourceGraphSize += len(lv.nodes)
	}
	res.Attention = make([]AttentionInfo, len(qs.att))
	for i, a := range qs.att {
		res.Attention[i] = AttentionInfo{Level: int(a.level), Node: a.node, H: a.h, Gamma: a.gamma}
	}

	sp.resetSlots(qs)
	return res, nil
}

// resetSlots restores the -1 sentinel for every slot the query touched.
func (sp *SimPush) resetSlots(qs *queryState) {
	for l, lv := range qs.levels {
		s := sp.slots[l]
		for _, v := range lv.nodes {
			s[v] = -1
		}
	}
}

// slotLevel returns the slot array for level l, growing lazily.
func (sp *SimPush) slotLevel(l int) []int32 {
	for len(sp.slots) <= l {
		s := make([]int32, sp.g.N())
		for i := range s {
			s[i] = -1
		}
		sp.slots = append(sp.slots, s)
	}
	return sp.slots[l]
}
