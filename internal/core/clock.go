package core

import "time"

// stageNow is the engine's only wall-clock read. Stage timings feed
// Result.Durations — observability surfaced in /statsz and simbench —
// and never influence scores, sampling, or control flow, so they are
// compatible with the fixed-(seed, parallelism) determinism contract.
// Confining the read here keeps detmerge's no-wall-clock rule meaningful
// for the rest of the package: any other time.Now is a real violation.
func stageNow() time.Time {
	return time.Now() //lint:allow detmerge stage-duration observability only; the value never reaches scores or control flow
}

// sysClock is the default Clock: the process wall clock through
// stageNow, this package's single annotated time.Now read.
type sysClock struct{}

func (sysClock) Now() time.Time { return stageNow() }

// clock resolves the effective Clock (Options.Clock, defaulting to the
// system clock).
func (o Options) clock() Clock {
	if o.Clock != nil {
		return o.Clock
	}
	return sysClock{}
}
