package core

import (
	"testing"
	"time"

	"github.com/simrank/simpush/internal/graph"
)

// tickClock advances one millisecond per Now call, making the stage
// timestamps — and therefore Result.Durations — fully deterministic.
type tickClock struct{ ticks *int }

func (c tickClock) Now() time.Time {
	*c.ticks++
	return time.Unix(0, 0).Add(time.Duration(*c.ticks) * time.Millisecond)
}

func TestInjectedClockDrivesStageDurations(t *testing.T) {
	g := graph.MustFromPairs([2]int32{0, 1}, [2]int32{1, 2}, [2]int32{2, 3}, [2]int32{3, 4}, [2]int32{4, 0}, [2]int32{1, 0})
	ticks := 0
	sp, err := New(g, Options{Seed: 7, Clock: tickClock{ticks: &ticks}})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sp.Query(0)
	if err != nil {
		t.Fatal(err)
	}
	// QueryCtx reads the clock exactly five times: before/after walk
	// sampling and after each of the three remaining stages, so every
	// stage measures exactly one tick.
	if ticks != 5 {
		t.Fatalf("clock read %d times, want 5", ticks)
	}
	d := res.Durations
	for name, got := range map[string]time.Duration{
		"walk": d.Walk, "source_push": d.SourcePush, "gamma": d.Gamma, "reverse_push": d.ReversePush,
	} {
		if got != time.Millisecond {
			t.Errorf("stage %s = %v, want exactly 1ms from the injected clock", name, got)
		}
	}

	// The injected clock must not perturb scores: an identically seeded
	// engine on the default clock returns bit-identical results.
	sp2, err := New(g, Options{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	res2, err := sp2.Query(0)
	if err != nil {
		t.Fatal(err)
	}
	for v := range res.Scores {
		if res.Scores[v] != res2.Scores[v] {
			t.Fatalf("score[%d] differs under injected clock: %v vs %v", v, res.Scores[v], res2.Scores[v])
		}
	}

	// Options carrying a Clock must stay comparable — the root package's
	// batch dispatcher uses Options inside a map key.
	opts := Options{Seed: 7, Clock: tickClock{ticks: &ticks}}
	if opts != (Options{Seed: 7, Clock: tickClock{ticks: &ticks}}) {
		t.Error("identical Options with equal clocks compare unequal")
	}
	_ = map[Options]bool{opts: true}
}
