package core

import (
	"math"
	"testing"

	"github.com/simrank/simpush/internal/gen"
	"github.com/simrank/simpush/internal/graph"
)

// Reverse-Push on a two-level chain must reproduce the closed form:
// graph 0->1, 0->2, 1->3, 2->4 (query 3): the only attention chain is
// 3 <- 1 <- 0 with meeting at 0 against node 4's chain 4 <- 2 <- 0.
func TestReversePushClosedForm(t *testing.T) {
	g := graph.MustFromPairs([2]int32{0, 1}, [2]int32{0, 2}, [2]int32{1, 3}, [2]int32{2, 4})
	sp := mustEngine(t, g, Options{Epsilon: 0.01, Seed: 2})
	res, err := sp.Query(3)
	if err != nil {
		t.Fatal(err)
	}
	// s(3,4) = c²  (two-hop chain; no repeated meetings possible)
	if math.Abs(res.Scores[4]-0.36) > 0.01 {
		t.Fatalf("s(3,4) = %v, want 0.36", res.Scores[4])
	}
	// s(3,1): walks from 3 (3->1->0 stops) and from 1 (1->0): can meet at
	// 0 at step... 3's walk is at 1 after one step, at 0 after two; 1's
	// walk is at 0 after one step and stops... different steps => 0.
	if res.Scores[1] != 0 {
		t.Fatalf("s(3,1) = %v, want 0", res.Scores[1])
	}
}

// The ε_h pruning must actually drop residues: with a huge epsilon every
// residue falls below the threshold and only near-certain mass survives.
func TestReversePushPruning(t *testing.T) {
	g, err := gen.CopyingModel(500, 5, 0.3, 3)
	if err != nil {
		t.Fatal(err)
	}
	coarse := mustEngine(t, g, Options{Epsilon: 0.5, Seed: 4})
	fine := mustEngine(t, g, Options{Epsilon: 0.005, Seed: 4})
	u := int32(7)
	rc, err := coarse.Query(u)
	if err != nil {
		t.Fatal(err)
	}
	rf, err := fine.Query(u)
	if err != nil {
		t.Fatal(err)
	}
	var massCoarse, massFine float64
	for v := int32(0); v < g.N(); v++ {
		if v == u {
			continue
		}
		massCoarse += rc.Scores[v]
		massFine += rf.Scores[v]
	}
	if massCoarse > massFine+1e-9 {
		t.Fatalf("coarse run recovered more mass: %v vs %v", massCoarse, massFine)
	}
}

// A query whose L is 1 must skip Algorithms 3-4 entirely (no vectors) and
// still produce correct level-1 contributions.
func TestSingleLevelQuery(t *testing.T) {
	// u=1 and sibling 2 share parent 0; nothing deeper exists.
	g := graph.MustFromPairs([2]int32{0, 1}, [2]int32{0, 2})
	sp := mustEngine(t, g, Options{Epsilon: 0.02, Seed: 5})
	res, err := sp.Query(1)
	if err != nil {
		t.Fatal(err)
	}
	if res.L != 1 {
		t.Fatalf("L = %d, want 1", res.L)
	}
	for _, a := range res.Attention {
		if a.Gamma != 1 {
			t.Fatalf("level-1-only query should have γ=1, got %v", a.Gamma)
		}
	}
	if math.Abs(res.Scores[2]-0.6) > 0.02 {
		t.Fatalf("s(1,2) = %v", res.Scores[2])
	}
}

// Self-loops are legal graph inputs; the query node with a self-loop must
// not corrupt level bookkeeping.
func TestSelfLoopGraph(t *testing.T) {
	b := graph.NewBuilder(graph.BuildOptions{})
	b.AddEdge(0, 0)
	b.AddEdge(0, 1)
	b.AddEdge(1, 0)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	sp := mustEngine(t, g, Options{Epsilon: 0.05, Seed: 6})
	for u := int32(0); u < 2; u++ {
		res, err := sp.Query(u)
		if err != nil {
			t.Fatal(err)
		}
		if res.Scores[u] != 1 {
			t.Fatal("self score")
		}
		for _, s := range res.Scores {
			if s < 0 || s > 1 {
				t.Fatalf("score out of range: %v", s)
			}
		}
	}
}

// Gamma must be exactly 1 for attention nodes at the deepest level L.
func TestGammaAtDeepestLevel(t *testing.T) {
	g, err := gen.BarabasiAlbert(300, 3, 7)
	if err != nil {
		t.Fatal(err)
	}
	sp := mustEngine(t, g, Options{Epsilon: 0.05, Seed: 7})
	res, err := sp.Query(11)
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range res.Attention {
		if a.Level == res.L && a.Gamma != 1 {
			t.Fatalf("deepest-level attention node has γ=%v", a.Gamma)
		}
	}
}
