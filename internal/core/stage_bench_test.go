package core

import (
	"context"
	"testing"

	"github.com/simrank/simpush/internal/gen"
	"github.com/simrank/simpush/internal/graph"
)

// Per-stage benchmarks: the complexity table (paper Table 3) splits
// SimPush into Source-Push, γ computation, and Reverse-Push. These
// benchmarks measure each stage on a mid-size web graph.

func stageGraph(b *testing.B) *graph.Graph {
	b.Helper()
	g, err := gen.CopyingModel(50000, 10, 0.3, 1)
	if err != nil {
		b.Fatal(err)
	}
	return g
}

func BenchmarkStageSourcePush(b *testing.B) {
	g := stageGraph(b)
	sp := mustEngine(b, g, Options{Epsilon: 0.02, Seed: 1})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		qs := sp.newQueryState(int32(i) % g.N())
		sp.sourcePush(context.Background(), qs)
		sp.resetSlots(qs)
	}
}

func BenchmarkStageGamma(b *testing.B) {
	g := stageGraph(b)
	sp := mustEngine(b, g, Options{Epsilon: 0.02, Seed: 1})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		qs := sp.newQueryState(int32(i) % g.N())
		sp.sourcePush(context.Background(), qs)
		sp.computeHittingVecs(context.Background(), qs)
		sp.ensureGammaScratch(len(qs.att))
		for j := range qs.att {
			qs.att[j].gamma = sp.computeGamma(qs, int32(j))
		}
		sp.resetSlots(qs)
	}
}

func BenchmarkStageReversePush(b *testing.B) {
	g := stageGraph(b)
	sp := mustEngine(b, g, Options{Epsilon: 0.02, Seed: 1})
	// Prepare one query state outside the timed loop.
	qs := sp.newQueryState(123)
	sp.sourcePush(context.Background(), qs)
	sp.computeHittingVecs(context.Background(), qs)
	sp.ensureGammaScratch(len(qs.att))
	for j := range qs.att {
		qs.att[j].gamma = sp.computeGamma(qs, int32(j))
	}
	scores := make([]float64, g.N())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for v := range scores {
			scores[v] = 0
		}
		sp.reversePush(context.Background(), qs, scores)
	}
	b.StopTimer()
	sp.resetSlots(qs)
}

func BenchmarkLevelDetection(b *testing.B) {
	g := stageGraph(b)
	for _, mode := range []struct {
		name string
		m    LevelDetectMode
	}{
		{"chernoff", LevelDetectChernoff},
		{"hoeffding", LevelDetectHoeffding},
	} {
		b.Run(mode.name, func(b *testing.B) {
			sp := mustEngine(b, g, Options{Epsilon: 0.05, Seed: 1, LevelDetect: mode.m, MaxWalks: 3_000_000})
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sp.detectMaxLevel(context.Background(), sp.newQueryState(int32(i)%g.N()))
			}
		})
	}
}
