package core

import (
	"context"
	"fmt"
	"runtime"
	"testing"

	"github.com/simrank/simpush/internal/gen"
	"github.com/simrank/simpush/internal/graph"
)

// Per-stage benchmarks: the complexity table (paper Table 3) splits
// SimPush into Source-Push, γ computation, and Reverse-Push. These
// benchmarks measure each stage on a mid-size web graph, serial vs
// parallel (Options.Parallelism = NumCPU); scripts/bench.sh turns the
// ratio into the BENCH_PR5.json perf trajectory.

func stageGraph(b *testing.B) *graph.Graph {
	b.Helper()
	g, err := gen.CopyingModel(50000, 10, 0.3, 1)
	if err != nil {
		b.Fatal(err)
	}
	return g
}

// benchWidths returns the serial baseline plus the machine's full width
// (deduplicated on single-core machines).
func benchWidths() []int {
	if n := runtime.NumCPU(); n > 1 {
		return []int{1, n}
	}
	return []int{1}
}

func BenchmarkStageSourcePush(b *testing.B) {
	g := stageGraph(b)
	for _, k := range benchWidths() {
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			sp := mustEngine(b, g, Options{Epsilon: 0.02, Seed: 1, Parallelism: k})
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				qs := testQueryState(sp, int32(i)%g.N())
				sp.sourcePush(context.Background(), qs)
				sp.resetSlots(qs)
			}
		})
	}
}

func BenchmarkStageGamma(b *testing.B) {
	g := stageGraph(b)
	for _, k := range benchWidths() {
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			sp := mustEngine(b, g, Options{Epsilon: 0.02, Seed: 1, Parallelism: k})
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				qs := testQueryState(sp, int32(i)%g.N())
				sp.sourcePush(context.Background(), qs)
				sp.computeHittingVecs(context.Background(), qs)
				sp.computeGammas(context.Background(), qs)
				sp.resetSlots(qs)
			}
		})
	}
}

func BenchmarkStageReversePush(b *testing.B) {
	g := stageGraph(b)
	for _, k := range benchWidths() {
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			sp := mustEngine(b, g, Options{Epsilon: 0.02, Seed: 1, Parallelism: k})
			// Prepare one query state outside the timed loop.
			qs := testQueryState(sp, 123)
			sp.sourcePush(context.Background(), qs)
			sp.computeHittingVecs(context.Background(), qs)
			sp.computeGammas(context.Background(), qs)
			scores := make([]float64, g.N())
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for v := range scores {
					scores[v] = 0
				}
				sp.reversePush(context.Background(), qs, scores)
			}
			b.StopTimer()
			sp.resetSlots(qs)
		})
	}
}

// BenchmarkQueryParallelism is the end-to-end serial-vs-parallel
// comparison behind the PR 5 acceptance criterion: one full single-source
// query at k=1 vs k=NumCPU on the synthetic benchmark graph.
func BenchmarkQueryParallelism(b *testing.B) {
	g := stageGraph(b)
	widths := []int{1, 2, 4, runtime.NumCPU()}
	seen := map[int]bool{}
	for _, k := range widths {
		if k < 1 || seen[k] {
			continue
		}
		seen[k] = true
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			sp := mustEngine(b, g, Options{Epsilon: 0.02, Seed: 1, Parallelism: k})
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := sp.Query(int32(i) % g.N()); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkLevelDetection(b *testing.B) {
	g := stageGraph(b)
	for _, mode := range []struct {
		name string
		m    LevelDetectMode
	}{
		{"chernoff", LevelDetectChernoff},
		{"hoeffding", LevelDetectHoeffding},
	} {
		b.Run(mode.name, func(b *testing.B) {
			sp := mustEngine(b, g, Options{Epsilon: 0.05, Seed: 1, LevelDetect: mode.m, MaxWalks: 3_000_000})
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sp.detectMaxLevel(context.Background(), testQueryState(sp, int32(i)%g.N()))
			}
		})
	}
}
