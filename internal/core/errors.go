package core

import "github.com/simrank/simpush/internal/limits"

// Sentinel errors of the query API, shared with the baseline engines via
// internal/limits. All validation failures wrap one of these, so callers
// can classify failures with errors.Is instead of matching message
// strings.
var (
	// ErrNodeOutOfRange reports a query or target node id outside [0, n).
	ErrNodeOutOfRange = limits.ErrNodeOutOfRange
	// ErrInvalidOptions reports engine options or per-query overrides with
	// out-of-domain values (c, ε or δ outside (0,1), and so on).
	ErrInvalidOptions = limits.ErrInvalidOptions
)
