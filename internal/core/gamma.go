package core

import "context"

// gammaScratch is the Algorithm 4 working set: dense ρ values over
// attention indices plus the touched list that resets them in O(touched).
// The engine owns one for the serial path; each parallel worker owns its
// own, so concurrent computeGamma calls never share state.
type gammaScratch struct {
	rhoVal     []float64
	rhoIn      []bool
	rhoTouched []int32
}

// ensure sizes the scratch to the number of attention nodes (bounded by
// Lemma 2, but sized to the actual count).
func (gs *gammaScratch) ensure(numAtt int) {
	if len(gs.rhoVal) < numAtt {
		gs.rhoVal = make([]float64, numAtt)
		gs.rhoIn = make([]bool, numAtt)
	}
}

// memoryBytes estimates the scratch footprint.
func (gs *gammaScratch) memoryBytes() int64 {
	return int64(len(gs.rhoVal))*8 + int64(len(gs.rhoIn)) + int64(cap(gs.rhoTouched))*4
}

// computeGammas runs Algorithm 4 for every attention node — serially, or
// sharded across the query's workers (the invocations are independent:
// each reads only the shared hitting vectors and writes one gamma field).
func (sp *SimPush) computeGammas(ctx context.Context, qs *queryState) error {
	k := qs.workers()
	if k > len(qs.att) {
		k = len(qs.att)
	}
	if k > 1 {
		return sp.computeGammasParallel(ctx, qs, k)
	}
	sp.gamma.ensure(len(qs.att))
	for i := range qs.att {
		if i%gammaCtxStride == 0 {
			if err := ctx.Err(); err != nil {
				return err
			}
		}
		qs.att[i].gamma = computeGamma(qs, int32(i), &sp.gamma)
	}
	return nil
}

// computeGamma is Algorithm 4: the last-meeting probability γ^(ℓ)(w) of
// attention node w within G_u (Definition 4), via the first-meeting
// recursion of Eqs. 9-11:
//
//	ρ^(1)(w, w₁) = h̃^(1)(w, w₁)²
//	ρ^(i)(w, wᵢ) = h̃^(i)(w, wᵢ)² − Σ_{j<i} Σ_{wⱼ} ρ^(j)(w, wⱼ)·h̃^(i−j)(wⱼ, wᵢ)²
//	γ^(ℓ)(w)     = 1 − Σ_i Σ_{wᵢ} ρ^(i)(w, wᵢ)
//
// ρ values are finalized in increasing level order: every subtraction into
// a level-(ℓ+i) target comes from a strictly shallower attention node, so a
// single forward sweep suffices.
//
// Numerical note: ignoring first meetings at non-attention nodes can drive
// an individual ρ slightly negative; negative ρ values are clamped to zero
// both when used as sources and when summed into γ (they represent
// probabilities), and γ itself is clamped to [0, 1]. The tests
// cross-validate the resulting scores against exact SimRank.
func computeGamma(qs *queryState, attIdx int32, gs *gammaScratch) float64 {
	a := &qs.att[attIdx]
	dl := qs.L - int(a.level)
	if dl <= 0 || qs.vecs == nil {
		return 1
	}
	vec := qs.vecs[a.level][a.slot]
	if len(vec) == 0 {
		return 1
	}

	// Initialize ρ(w, x) = h̃(w, x)² for every attention target of w.
	for _, e := range vec {
		if qs.att[e.a].level == a.level {
			continue // gap-0 self entry
		}
		gs.rhoVal[e.a] = e.v * e.v
		gs.rhoIn[e.a] = true
		gs.rhoTouched = append(gs.rhoTouched, e.a)
	}

	// Forward sweep over intermediate levels ℓ+1 .. L-1. Note: read only
	// the immutable fields of qs.att entries (level, slot) — never copy
	// the struct, whose gamma field a concurrent worker may be writing.
	for j := 1; j < dl; j++ {
		lvl := a.level + int32(j)
		for _, wj := range gs.rhoTouched {
			if qs.att[wj].level != lvl {
				continue
			}
			r := gs.rhoVal[wj]
			if r <= 0 {
				continue
			}
			for _, e := range qs.vecs[lvl][qs.att[wj].slot] {
				if qs.att[e.a].level == lvl {
					continue // wⱼ's self entry
				}
				// Targets unreachable from w have exactly zero meeting
				// probability; do not create spurious negative entries.
				if !gs.rhoIn[e.a] {
					continue
				}
				gs.rhoVal[e.a] -= r * e.v * e.v
			}
		}
	}

	gamma := 1.0
	for _, idx := range gs.rhoTouched {
		if v := gs.rhoVal[idx]; v > 0 {
			gamma -= v
		}
		gs.rhoVal[idx] = 0
		gs.rhoIn[idx] = false
	}
	gs.rhoTouched = gs.rhoTouched[:0]
	if gamma < 0 {
		return 0
	}
	if gamma > 1 {
		return 1
	}
	return gamma
}
