package core

// computeGamma is Algorithm 4: the last-meeting probability γ^(ℓ)(w) of
// attention node w within G_u (Definition 4), via the first-meeting
// recursion of Eqs. 9-11:
//
//	ρ^(1)(w, w₁) = h̃^(1)(w, w₁)²
//	ρ^(i)(w, wᵢ) = h̃^(i)(w, wᵢ)² − Σ_{j<i} Σ_{wⱼ} ρ^(j)(w, wⱼ)·h̃^(i−j)(wⱼ, wᵢ)²
//	γ^(ℓ)(w)     = 1 − Σ_i Σ_{wᵢ} ρ^(i)(w, wᵢ)
//
// ρ values are finalized in increasing level order: every subtraction into
// a level-(ℓ+i) target comes from a strictly shallower attention node, so a
// single forward sweep suffices.
//
// Numerical note: ignoring first meetings at non-attention nodes can drive
// an individual ρ slightly negative; negative ρ values are clamped to zero
// both when used as sources and when summed into γ (they represent
// probabilities), and γ itself is clamped to [0, 1]. The tests
// cross-validate the resulting scores against exact SimRank.
func (sp *SimPush) computeGamma(qs *queryState, attIdx int32) float64 {
	a := &qs.att[attIdx]
	dl := qs.L - int(a.level)
	if dl <= 0 || qs.vecs == nil {
		return 1
	}
	vec := qs.vecs[a.level][a.slot]
	if len(vec) == 0 {
		return 1
	}

	// Initialize ρ(w, x) = h̃(w, x)² for every attention target of w.
	for _, e := range vec {
		if qs.att[e.a].level == a.level {
			continue // gap-0 self entry
		}
		sp.rhoVal[e.a] = e.v * e.v
		sp.rhoIn[e.a] = true
		sp.rhoTouched = append(sp.rhoTouched, e.a)
	}

	// Forward sweep over intermediate levels ℓ+1 .. L-1.
	for j := 1; j < dl; j++ {
		lvl := a.level + int32(j)
		for _, wj := range sp.rhoTouched {
			aj := qs.att[wj]
			if aj.level != lvl {
				continue
			}
			r := sp.rhoVal[wj]
			if r <= 0 {
				continue
			}
			for _, e := range qs.vecs[lvl][aj.slot] {
				if qs.att[e.a].level == lvl {
					continue // wⱼ's self entry
				}
				// Targets unreachable from w have exactly zero meeting
				// probability; do not create spurious negative entries.
				if !sp.rhoIn[e.a] {
					continue
				}
				sp.rhoVal[e.a] -= r * e.v * e.v
			}
		}
	}

	gamma := 1.0
	for _, idx := range sp.rhoTouched {
		if v := sp.rhoVal[idx]; v > 0 {
			gamma -= v
		}
		sp.rhoVal[idx] = 0
		sp.rhoIn[idx] = false
	}
	sp.rhoTouched = sp.rhoTouched[:0]
	if gamma < 0 {
		return 0
	}
	if gamma > 1 {
		return 1
	}
	return gamma
}
