package core

import "context"

// walkCtxBatch is how many level-detection √c-walks run between two
// cancellation checks.
const walkCtxBatch = 256

// sourcePush is Algorithm 2: it detects the max level L by √c-walk
// sampling, then computes the exact hitting probabilities h^(ℓ)(u, ·) for
// ℓ = 0..L by deterministic residue propagation over in-edges, recording
// the source graph G_u level by level, and finally extracts the attention
// sets A_u^(ℓ) = {w : h^(ℓ)(u, w) ≥ ε_h}. The instant between the two
// halves is recorded in qs.tWalkDone so QueryCtx can report the walk
// sample and the push as separate Durations stages.
//
// Cancellation is checked between walk batches and between levels; an
// abort happens only at those boundaries, where the engine scratch
// (hScratch, hTouched, slots) is consistent with qs.levels, so the caller
// can clean up with resetSlots alone.
func (sp *SimPush) sourcePush(ctx context.Context, qs *queryState) error {
	L, err := sp.detectMaxLevel(ctx, qs)
	if err != nil {
		return err
	}
	qs.L = L
	qs.tWalkDone = sp.opt.clock().Now()

	// Level 0 holds only the query node with h^(0)(u, u) = 1.
	sp.slotLevel(0)[qs.u] = 0
	qs.levels = append(qs.levels, level{
		nodes:  []int32{qs.u},
		h:      []float64{1},
		attIdx: []int32{-1},
	})

	// Push levels 0 .. L-1 (Algorithm 2 lines 9-19). Every node v in the
	// frontier sends √c·h^(ℓ)(u,v)/d_I(v) to each in-neighbor; in-neighbors
	// form level ℓ+1.
	for l := 0; l < qs.L; l++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		cur := &qs.levels[l]
		for i, v := range cur.nodes {
			in := sp.g.In(v)
			if len(in) == 0 {
				continue
			}
			w := qs.p.sqrtC * cur.h[i] * sp.g.InvInDeg(v)
			for _, vp := range in {
				if sp.hScratch[vp] == 0 {
					sp.hTouched = append(sp.hTouched, vp)
				}
				sp.hScratch[vp] += w
			}
		}
		if len(sp.hTouched) == 0 {
			// Frontier died (all nodes dangling): G_u ends here.
			qs.L = l
			break
		}
		next := level{
			nodes:  make([]int32, len(sp.hTouched)),
			h:      make([]float64, len(sp.hTouched)),
			attIdx: make([]int32, len(sp.hTouched)),
		}
		slots := sp.slotLevel(l + 1)
		for i, v := range sp.hTouched {
			next.nodes[i] = v
			next.h[i] = sp.hScratch[v]
			next.attIdx[i] = -1
			sp.hScratch[v] = 0
			slots[v] = int32(i)
		}
		sp.hTouched = sp.hTouched[:0]
		qs.levels = append(qs.levels, next)
	}

	// Attention sets (Algorithm 2 lines 20-21). Level 0 is excluded: the
	// ℓ = 0 term of Eq. 7 is the trivial self-meeting.
	qs.attByLevel = make([][]int32, len(qs.levels))
	for l := 1; l < len(qs.levels); l++ {
		lv := &qs.levels[l]
		for i, hv := range lv.h {
			if hv >= qs.p.epsH {
				idx := int32(len(qs.att))
				qs.att = append(qs.att, attNode{
					level: int32(l),
					node:  lv.nodes[i],
					slot:  int32(i),
					h:     hv,
					gamma: 1,
				})
				lv.attIdx[i] = idx
				qs.attByLevel[l] = append(qs.attByLevel[l], idx)
			}
		}
	}
	return nil
}

// detectMaxLevel samples n_w √c-walks from u and returns the deepest level
// at which some node was visited at least countThld times (Algorithm 2
// lines 1-8), capped at L*. In deterministic mode (n_w = 0) it returns L*
// directly. With intra-query parallelism the sample is sharded across
// seed-derived worker substreams (see parallel.go).
func (sp *SimPush) detectMaxLevel(ctx context.Context, qs *queryState) (int, error) {
	if qs.p.nWalks == 0 {
		return qs.p.lStar, nil
	}
	if k := min(qs.workers(), qs.p.nWalks); k > 1 {
		return sp.detectMaxLevelParallel(ctx, qs, k)
	}
	sp.counter.Reset()
	for i := 0; i < qs.p.nWalks; i++ {
		if i%walkCtxBatch == 0 {
			if err := ctx.Err(); err != nil {
				return 0, err
			}
		}
		v := qs.u
		for step := 1; step <= qs.p.lStar; step++ {
			nv, ok := sp.walker.Next(v)
			if !ok {
				break
			}
			v = nv
			sp.counter.Add(step, v)
		}
	}
	return sp.levelFromCounts(qs), nil
}

// levelFromCounts reads the detected max level off the engine's (merged)
// visit counters: the deepest level where some node reached countThld.
func (sp *SimPush) levelFromCounts(qs *queryState) int {
	L := 0
	for l := 1; l < sp.counter.MaxLevels(); l++ {
		if sp.counter.MaxCountAt(l) >= qs.p.countThld {
			L = l
		}
	}
	if L > qs.p.lStar {
		L = qs.p.lStar
	}
	return L
}
