package core

import (
	"context"
	"math"
	"testing"
	"testing/quick"

	"github.com/simrank/simpush/internal/gen"
	"github.com/simrank/simpush/internal/graph"
	"github.com/simrank/simpush/internal/rnd"
)

// randomGraph draws a small random graph from one of several families,
// deterministically from a uint32 token.
func randomGraph(token uint32) *graph.Graph {
	r := rnd.New(uint64(token)*0x9e3779b97f4a7c15 + 0x1234)
	n := int32(20 + r.Intn(120))
	var g *graph.Graph
	var err error
	switch token % 4 {
	case 0:
		g, err = gen.ErdosRenyi(n, int64(n)*int64(2+r.Intn(5)), r.Uint64())
	case 1:
		g, err = gen.CopyingModel(n, 2+r.Intn(5), 0.2+r.Float64()*0.5, r.Uint64())
	case 2:
		g, err = gen.BarabasiAlbert(n, 1+r.Intn(3), r.Uint64())
	default:
		g, err = gen.ForestFire(n, 0.2+r.Float64()*0.25, r.Uint64())
	}
	if err != nil {
		panic(err)
	}
	return g
}

// Property: scores are in [0,1], the self score is 1, and every structural
// bound of Lemma 2 holds, on arbitrary random graphs and query nodes.
func TestQuickScoreInvariants(t *testing.T) {
	sp := func(token uint32, queryTok uint32) bool {
		g := randomGraph(token)
		eng, err := New(g, Options{Epsilon: 0.05, Seed: uint64(token)})
		if err != nil {
			return false
		}
		u := int32(queryTok % uint32(g.N()))
		res, err := eng.Query(u)
		if err != nil {
			return false
		}
		if res.Scores[u] != 1 {
			return false
		}
		for _, s := range res.Scores {
			if s < 0 || s > 1 || math.IsNaN(s) {
				return false
			}
		}
		if len(res.Attention) > eng.p.MaxAttentionNodes() {
			return false
		}
		if res.L > eng.p.lStar || res.L < 0 {
			return false
		}
		for _, a := range res.Attention {
			if a.Gamma < 0 || a.Gamma > 1 || a.H < eng.p.epsH {
				return false
			}
			if a.Level < 1 || a.Level > res.L {
				return false
			}
		}
		return true
	}
	if err := quick.Check(sp, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Property: per-level hitting-probability mass never exceeds √c^ℓ (it is
// exactly √c^ℓ when no dangling node truncates a walk).
func TestQuickLevelMassBound(t *testing.T) {
	f := func(token uint32) bool {
		g := randomGraph(token)
		eng, err := New(g, Options{Epsilon: 0.05, Seed: uint64(token)})
		if err != nil {
			return false
		}
		qs := testQueryState(eng, int32(token%uint32(g.N())))
		eng.sourcePush(context.Background(), qs)
		defer eng.resetSlots(qs)
		sqrtC := math.Sqrt(eng.opt.C)
		for l, lv := range qs.levels {
			var sum float64
			for _, h := range lv.h {
				sum += h
			}
			if sum > math.Pow(sqrtC, float64(l))+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Property: γ-corrected scores never exceed γ-free scores (the correction
// only removes double-counted meeting mass).
func TestQuickGammaMonotone(t *testing.T) {
	f := func(token uint32) bool {
		g := randomGraph(token)
		u := int32((token >> 3) % uint32(g.N()))
		with, err := New(g, Options{Epsilon: 0.05, Seed: uint64(token)})
		if err != nil {
			return false
		}
		without, err := New(g, Options{Epsilon: 0.05, Seed: uint64(token), DisableGamma: true})
		if err != nil {
			return false
		}
		a, err := with.Query(u)
		if err != nil {
			return false
		}
		b, err := without.Query(u)
		if err != nil {
			return false
		}
		for v := range a.Scores {
			if a.Scores[v] > b.Scores[v]+1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// Property: queries are pure — running the same query twice on one engine
// yields identical output (scratch is fully reset).
func TestQuickQueryIdempotent(t *testing.T) {
	f := func(token uint32) bool {
		g := randomGraph(token)
		u := int32((token >> 5) % uint32(g.N()))
		eng, err := New(g, Options{Epsilon: 0.02, Seed: uint64(token)})
		if err != nil {
			return false
		}
		a, err := eng.Query(u)
		if err != nil {
			return false
		}
		// interleave a query from a different node to dirty the scratch
		if _, err := eng.Query((u + 1) % g.N()); err != nil {
			return false
		}
		b, err := eng.Query(u)
		if err != nil {
			return false
		}
		for v := range a.Scores {
			if a.Scores[v] != b.Scores[v] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

// Property: on graphs whose SimRank is identically zero off-diagonal
// (directed cycles), SimPush returns exactly zero everywhere.
func TestQuickCycleZero(t *testing.T) {
	f := func(raw uint8) bool {
		n := int32(raw%60) + 3
		g := gen.Cycle(n)
		eng, err := New(g, Options{Epsilon: 0.02, Seed: uint64(raw)})
		if err != nil {
			return false
		}
		res, err := eng.Query(int32(raw) % n)
		if err != nil {
			return false
		}
		for v, s := range res.Scores {
			if int32(v) == int32(raw)%n {
				continue
			}
			if s != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
