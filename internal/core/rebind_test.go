package core

import (
	"context"
	"testing"

	"github.com/simrank/simpush/internal/gen"
	"github.com/simrank/simpush/internal/graph"
)

// seededQuery runs a query with a pinned walk seed, so results depend only
// on (graph, options, seed) — comparable across engines and histories.
func seededQuery(t *testing.T, sp *SimPush, u int32, seed uint64) *Result {
	t.Helper()
	res, err := sp.QueryCtx(context.Background(), u, QueryOpts{Seed: seed, HasSeed: true})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// A rebound engine must answer exactly like a fresh engine built on the
// same snapshot: rebinding changes the graph, not the algorithm.
func TestRebindMatchesFreshEngine(t *testing.T) {
	small, err := gen.ErdosRenyi(200, 1200, 1)
	if err != nil {
		t.Fatal(err)
	}
	big, err := gen.ErdosRenyi(3000, 24000, 2)
	if err != nil {
		t.Fatal(err)
	}
	opt := Options{Epsilon: 0.02, Seed: 3}
	sp := mustEngine(t, small, opt)
	// Warm the scratch (slots, counters, residues) on the small graph.
	for _, u := range []int32{0, 17, 42} {
		if _, err := sp.Query(u); err != nil {
			t.Fatal(err)
		}
	}

	// Grow: rebind to a 15x larger graph and compare against a fresh engine.
	sp.Rebind(big)
	if sp.Graph() != big {
		t.Fatal("Rebind did not swap the graph")
	}
	fresh := mustEngine(t, big, opt)
	for _, u := range []int32{5, 1234, 2999} {
		got := seededQuery(t, sp, u, 77)
		want := seededQuery(t, fresh, u, 77)
		if got.L != want.L || len(got.Attention) != len(want.Attention) {
			t.Fatalf("u=%d: L=%d att=%d, fresh L=%d att=%d",
				u, got.L, len(got.Attention), want.L, len(want.Attention))
		}
		if len(got.Scores) != int(big.N()) {
			t.Fatalf("u=%d: score vector sized %d, want %d", u, len(got.Scores), big.N())
		}
		for v := range got.Scores {
			if got.Scores[v] != want.Scores[v] {
				t.Fatalf("u=%d v=%d: rebound %v fresh %v", u, v, got.Scores[v], want.Scores[v])
			}
		}
	}

	// Shrink: rebind back down; scratch larger than n must not leak state.
	sp.Rebind(small)
	freshSmall := mustEngine(t, small, opt)
	got := seededQuery(t, sp, 42, 9)
	want := seededQuery(t, freshSmall, 42, 9)
	if len(got.Scores) != int(small.N()) {
		t.Fatalf("shrunk score vector sized %d, want %d", len(got.Scores), small.N())
	}
	for v := range got.Scores {
		if got.Scores[v] != want.Scores[v] {
			t.Fatalf("after shrink, v=%d: rebound %v fresh %v", v, got.Scores[v], want.Scores[v])
		}
	}
}

// Rebinding when n is stable must not reallocate any persistent scratch.
func TestRebindStableNReusesScratch(t *testing.T) {
	a, err := gen.ErdosRenyi(500, 4000, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Same node count, different edges.
	b, err := gen.ErdosRenyi(500, 4000, 5)
	if err != nil {
		t.Fatal(err)
	}
	sp := mustEngine(t, a, Options{Epsilon: 0.02, Seed: 6})
	if _, err := sp.Query(7); err != nil {
		t.Fatal(err)
	}
	before := sp.MemoryBytes()
	hBefore := &sp.hScratch[0]
	sp.Rebind(b)
	if &sp.hScratch[0] != hBefore {
		t.Fatal("stable-n rebind reallocated hScratch")
	}
	if sp.MemoryBytes() != before {
		t.Fatalf("stable-n rebind changed scratch footprint: %d -> %d", before, sp.MemoryBytes())
	}
	if _, err := sp.Query(7); err != nil {
		t.Fatal(err)
	}
	// Rebind to the identical snapshot is a no-op.
	sp.Rebind(b)
	if sp.Graph() != b {
		t.Fatal("self-rebind lost the graph")
	}
}

// A rebound engine must see the new edges: a node that gains a sibling
// gets a nonzero similarity that did not exist before the rebind.
func TestRebindObservesNewEdges(t *testing.T) {
	g1 := graph.MustFromPairs([2]int32{0, 1})
	sp := mustEngine(t, g1, Options{Epsilon: 0.005, Seed: 1})
	res, err := sp.Query(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Scores) != 2 {
		t.Fatalf("initial n = %d", len(res.Scores))
	}
	// Add node 2 as a sibling of 1 under parent 0: s(1,2) = c = 0.6.
	g2 := graph.MustFromPairs([2]int32{0, 1}, [2]int32{0, 2})
	sp.Rebind(g2)
	res, err = sp.Query(1)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Scores[2]; got < 0.59 || got > 0.61 {
		t.Fatalf("s(1,2) after rebind = %v, want ~0.6", got)
	}
}
