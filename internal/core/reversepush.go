package core

import "context"

// reversePush is Algorithm 5: starting from the residues r^(ℓ)(w) =
// h^(ℓ)(u,w)·γ^(ℓ)(w) of all attention nodes, residues are propagated
// level-by-level along out-edges of G (each target v receives
// √c·r/d_I(v)), with residues whose push value √c·r falls below ε_h
// dropped. Residues reaching level 0 are exactly the estimates
// h^(ℓ)(u,w)·γ^(ℓ)(w)·ĥ^(ℓ)(v,w) summed into s̃(u, v) (Eq. 8).
//
// Residues arriving at a node that also carries an initial attention
// residue at that level are combined and pushed together (the paper's
// "combine the push" optimization), which the level-synchronous sweep
// below gives for free.
//
// With intra-query parallelism, each level sweep partitions the current
// frontier across workers; workers accumulate into private next-frontier
// arrays that are merged in worker order between levels, so the sweep
// stays level-synchronous ("combine the push" still holds: a level's
// entire frontier is merged before any of it is pushed further) and the
// result is deterministic in (seed, worker count).
//
// Cancellation is checked once per level sweep; on abort the residue
// scratch is zeroed before returning so the engine stays reusable.
func (sp *SimPush) reversePush(ctx context.Context, qs *queryState, scores []float64) error {
	n := sp.g.N()
	if len(sp.rCur) < int(n) {
		sp.rCur = make([]float64, n)
		sp.rNxt = make([]float64, n)
	}
	k := qs.workers()
	var ws []*pworker
	if k > 1 {
		ws = sp.ensureWorkers(k)
		for _, w := range ws {
			if len(w.acc) < int(n) {
				w.acc = make([]float64, n)
			}
		}
	}
	inv := sp.g.InvInDegs()
	cur, nxt := sp.rCur, sp.rNxt
	curT, nxtT := sp.curTouched[:0], sp.nxtTouched[:0]

	for l := qs.L; l >= 1; l-- {
		if err := ctx.Err(); err != nil {
			// Drop pending residues: the scratch must be clean for the
			// next query on this engine.
			for _, v := range curT {
				cur[v] = 0
			}
			sp.rCur, sp.rNxt = cur, nxt
			sp.curTouched, sp.nxtTouched = curT[:0], nxtT[:0]
			return err
		}
		// Inject the initial residues of level-l attention nodes.
		if l < len(qs.attByLevel) {
			for _, ai := range qs.attByLevel[l] {
				a := qs.att[ai]
				r := a.h * a.gamma
				if r == 0 {
					continue
				}
				if cur[a.node] == 0 {
					curT = append(curT, a.node)
				}
				cur[a.node] += r
			}
		}
		if k > 1 && len(curT) >= minParallelFrontier {
			nxtT = sp.sweepParallel(qs, ws, k, l, cur, curT, nxt, nxtT, scores, inv)
		} else {
			for _, v := range curT {
				r := cur[v]
				cur[v] = 0
				pr := qs.p.sqrtC * r
				if pr < qs.p.epsH {
					continue // prune: residue too small to matter (Lemma 4)
				}
				if l > 1 {
					for _, t := range sp.g.Out(v) {
						if nxt[t] == 0 {
							nxtT = append(nxtT, t)
						}
						nxt[t] += pr * inv[t]
					}
				} else {
					for _, t := range sp.g.Out(v) {
						scores[t] += pr * inv[t]
					}
				}
			}
		}
		curT = curT[:0]
		cur, nxt = nxt, cur
		curT, nxtT = nxtT, curT
	}
	// Leftover residues in cur (possible only if the loop exited with
	// pending level-0 mass, which cannot happen: l==1 writes to scores) —
	// still, clear defensively so the scratch stays clean across queries.
	for _, v := range curT {
		cur[v] = 0
	}
	sp.rCur, sp.rNxt = cur, nxt
	sp.curTouched, sp.nxtTouched = curT[:0], nxtT[:0]

	scores[qs.u] = 1 // Algorithm 5 line 10
	return nil
}

// sweepParallel pushes one level's frontier across k workers. Each worker
// owns a contiguous shard of the frontier: it zeroes the shard's cur
// entries (each node belongs to exactly one worker) and accumulates pushes
// into its private acc/accT. Shards are then merged in worker order — into
// (nxt, nxtT) for l > 1 or directly into scores at l == 1 — which fixes
// the floating-point reduction order as a function of (frontier, k) alone.
// The updated next-frontier touched list is returned.
func (sp *SimPush) sweepParallel(qs *queryState, ws []*pworker, k, l int, cur []float64, curT []int32, nxt []float64, nxtT []int32, scores, inv []float64) []int32 {
	runWorkers(k, func(wi int) {
		w := ws[wi]
		lo, hi := shard(len(curT), k, wi)
		for _, v := range curT[lo:hi] {
			r := cur[v]
			cur[v] = 0
			pr := qs.p.sqrtC * r
			if pr < qs.p.epsH {
				continue
			}
			for _, t := range sp.g.Out(v) {
				if w.acc[t] == 0 {
					w.accT = append(w.accT, t)
				}
				w.acc[t] += pr * inv[t]
			}
		}
	})
	for _, w := range ws {
		if l > 1 {
			for _, t := range w.accT {
				if nxt[t] == 0 {
					nxtT = append(nxtT, t)
				}
				nxt[t] += w.acc[t]
				w.acc[t] = 0
			}
		} else {
			for _, t := range w.accT {
				scores[t] += w.acc[t]
				w.acc[t] = 0
			}
		}
		w.accT = w.accT[:0]
	}
	return nxtT
}
