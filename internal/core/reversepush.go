package core

import "context"

// reversePush is Algorithm 5: starting from the residues r^(ℓ)(w) =
// h^(ℓ)(u,w)·γ^(ℓ)(w) of all attention nodes, residues are propagated
// level-by-level along out-edges of G (each target v receives
// √c·r/d_I(v)), with residues whose push value √c·r falls below ε_h
// dropped. Residues reaching level 0 are exactly the estimates
// h^(ℓ)(u,w)·γ^(ℓ)(w)·ĥ^(ℓ)(v,w) summed into s̃(u, v) (Eq. 8).
//
// Residues arriving at a node that also carries an initial attention
// residue at that level are combined and pushed together (the paper's
// "combine the push" optimization), which the level-synchronous sweep
// below gives for free.
//
// Cancellation is checked once per level sweep; on abort the residue
// scratch is zeroed before returning so the engine stays reusable.
func (sp *SimPush) reversePush(ctx context.Context, qs *queryState, scores []float64) error {
	n := sp.g.N()
	if len(sp.rCur) < int(n) {
		sp.rCur = make([]float64, n)
		sp.rNxt = make([]float64, n)
	}
	cur, nxt := sp.rCur, sp.rNxt
	curT, nxtT := sp.curTouched[:0], sp.nxtTouched[:0]

	for l := qs.L; l >= 1; l-- {
		if err := ctx.Err(); err != nil {
			// Drop pending residues: the scratch must be clean for the
			// next query on this engine.
			for _, v := range curT {
				cur[v] = 0
			}
			sp.rCur, sp.rNxt = cur, nxt
			sp.curTouched, sp.nxtTouched = curT[:0], nxtT[:0]
			return err
		}
		// Inject the initial residues of level-l attention nodes.
		if l < len(qs.attByLevel) {
			for _, ai := range qs.attByLevel[l] {
				a := qs.att[ai]
				r := a.h * a.gamma
				if r == 0 {
					continue
				}
				if cur[a.node] == 0 {
					curT = append(curT, a.node)
				}
				cur[a.node] += r
			}
		}
		for _, v := range curT {
			r := cur[v]
			cur[v] = 0
			pr := qs.p.sqrtC * r
			if pr < qs.p.epsH {
				continue // prune: residue too small to matter (Lemma 4)
			}
			if l > 1 {
				for _, t := range sp.g.Out(v) {
					if nxt[t] == 0 {
						nxtT = append(nxtT, t)
					}
					nxt[t] += pr / float64(sp.g.InDeg(t))
				}
			} else {
				for _, t := range sp.g.Out(v) {
					scores[t] += pr / float64(sp.g.InDeg(t))
				}
			}
		}
		curT = curT[:0]
		cur, nxt = nxt, cur
		curT, nxtT = nxtT, curT
	}
	// Leftover residues in cur (possible only if the loop exited with
	// pending level-0 mass, which cannot happen: l==1 writes to scores) —
	// still, clear defensively so the scratch stays clean across queries.
	for _, v := range curT {
		cur[v] = 0
	}
	sp.rCur, sp.rNxt = cur, nxt
	sp.curTouched, sp.nxtTouched = curT[:0], nxtT[:0]

	scores[qs.u] = 1 // Algorithm 5 line 10
	return nil
}
