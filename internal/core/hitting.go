package core

import "context"

// computeHittingVecs is Algorithm 3: it computes, for every (level, node)
// of G_u, the hitting probabilities h̃^(i) within G_u to every attention
// node at deeper levels (Definition 5, Eq. 12).
//
// The paper's pseudocode pushes from each level-ℓ node to its out-neighbors
// in G_u; we run the equivalent pull form — for each target v at level ℓ-1,
// aggregate the vectors of its in-neighbors (which all live at level ℓ,
// because Source-Push expanded v's complete in-neighborhood) and scale by
// √c/d_I(v). This needs no materialized G_u edge set.
//
// Vectors are keyed by global attention index, so they are h̃ restricted to
// attention-node targets — exactly what Algorithm 4 consumes. Non-attention
// holders participate as intermediaries, as in the paper's Figure 2
// (e.g. h̃^(1)(w°d, wh)).
// Cancellation is checked once per level; aborts happen at level
// boundaries only, where attScratch is zeroed and attTouched empty.
func (sp *SimPush) computeHittingVecs(ctx context.Context, qs *queryState) error {
	if qs.L < 2 {
		return nil
	}
	if len(sp.attScratch) < len(qs.att) {
		sp.attScratch = make([]float64, len(qs.att))
	}
	qs.vecs = make([][][]ventry, len(qs.levels))
	for l := range qs.levels {
		qs.vecs[l] = make([][]ventry, len(qs.levels[l].nodes))
	}

	for l := qs.L; l >= 2; l-- {
		if err := ctx.Err(); err != nil {
			return err
		}
		// Self entries h̃^(0)(w, w) = 1 for attention nodes at level l
		// (Algorithm 3 lines 2-3). Gap-0 entries cannot already exist:
		// pulls only create entries to strictly deeper levels.
		for _, ai := range qs.attByLevel[l] {
			a := qs.att[ai]
			qs.vecs[l][a.slot] = append(qs.vecs[l][a.slot], ventry{a: ai, v: 1})
		}

		// Pull from level l into level l-1 (Algorithm 3 lines 4-7).
		src := qs.vecs[l]
		srcSlots := sp.slots[l]
		tgt := &qs.levels[l-1]
		for i, v := range tgt.nodes {
			in := sp.g.In(v)
			if len(in) == 0 {
				continue
			}
			for _, vp := range in {
				for _, e := range src[srcSlots[vp]] {
					if sp.attScratch[e.a] == 0 {
						sp.attTouched = append(sp.attTouched, e.a)
					}
					sp.attScratch[e.a] += e.v
				}
			}
			if len(sp.attTouched) == 0 {
				continue
			}
			scale := qs.p.sqrtC * sp.g.InvInDeg(v)
			vec := make([]ventry, len(sp.attTouched))
			for k, a := range sp.attTouched {
				vec[k] = ventry{a: a, v: sp.attScratch[a] * scale}
				sp.attScratch[a] = 0
			}
			sp.attTouched = sp.attTouched[:0]
			qs.vecs[l-1][i] = vec
		}
	}
	return nil
}
