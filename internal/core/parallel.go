package core

import (
	"context"
	"sync"

	"github.com/simrank/simpush/internal/rnd"
	"github.com/simrank/simpush/internal/walk"
)

// Intra-query parallelism. Three of Algorithm 1's hot paths are
// embarrassingly parallel and fan out across Options.Parallelism workers:
//
//  1. level-detection √c-walk sampling — walks are independent; each
//     worker samples a deterministic contiguous shard of n_w on its own
//     seed-derived substream into a private LevelCounter, merged in
//     O(touched) (integer sums, order-independent);
//  2. the Algorithm 4 γ loop — attention nodes are independent; workers
//     take contiguous shards of qs.att over the shared read-only hitting
//     vectors with private ρ scratch;
//  3. Reverse-Push — each level sweep partitions the current frontier,
//     workers accumulate into private next-frontier arrays, and the
//     shards are merged between levels in worker order, preserving the
//     level-synchronous "combine the push" semantics.
//
// Determinism contract: for a fixed (seed, Parallelism) the result is
// bit-identical across runs and across GOMAXPROCS values — shard
// boundaries, substream seeds, and merge order depend only on the worker
// count, never on scheduling. Different worker counts yield slightly
// different (equally valid within ε) estimates, because the walk set and
// the floating-point reduction order change with the shard layout.

// minParallelFrontier is the smallest Reverse-Push frontier worth fanning
// out; below it the per-level goroutine and merge overhead dominates. The
// threshold depends only on deterministic state (frontier size), so it
// never breaks the fixed-(seed, k) contract.
const minParallelFrontier = 64

// pworker owns one worker's scratch: a walker substream and level counter
// for stage 1, ρ scratch for stage 2, and a residue accumulator with its
// touched list for stage 3. Workers persist on the engine across queries,
// so parallel queries allocate nothing steady-state.
type pworker struct {
	walker  *walk.Walker
	counter *walk.LevelCounter
	gamma   gammaScratch
	acc     []float64
	accT    []int32
}

// workers returns the effective intra-query worker count of this query.
func (qs *queryState) workers() int {
	if qs.opt.Parallelism > 1 {
		return qs.opt.Parallelism
	}
	return 1
}

// ensureWorkers sizes the engine's worker set to k and binds every worker
// to the current graph. Worker walkers are constructed with a placeholder
// seed — every parallel stage reseeds them from the engine stream before
// use — so creating a worker never perturbs the main walk stream.
func (sp *SimPush) ensureWorkers(k int) []*pworker {
	for len(sp.workers) < k {
		sp.workers = append(sp.workers, &pworker{
			walker:  walk.NewWalker(sp.g, sp.opt.C, rnd.New(0)),
			counter: walk.NewLevelCounter(sp.g.N()),
		})
	}
	ws := sp.workers[:k]
	for _, w := range ws {
		w.walker.Rebind(sp.g)
		w.counter.Grow(sp.g.N())
	}
	return ws
}

// runWorkers runs fn(0..k-1) across k goroutines (the calling goroutine
// takes shard 0) and waits for all of them.
func runWorkers(k int, fn func(w int)) {
	var wg sync.WaitGroup
	wg.Add(k - 1)
	for i := 1; i < k; i++ {
		go func(i int) {
			defer wg.Done()
			fn(i)
		}(i)
	}
	fn(0)
	wg.Wait()
}

// shard returns the half-open index range [lo, hi) that worker w owns when
// n items are split across k workers: contiguous, balanced within one, and
// a pure function of (n, k, w) — the determinism contract hangs on that.
func shard(n, k, w int) (lo, hi int) {
	q, r := n/k, n%k
	lo = w*q + min(w, r)
	hi = lo + q
	if w < r {
		hi++
	}
	return lo, hi
}

// firstError returns the first non-nil entry (worker errors are all
// ctx.Err() values; "first" keeps the report deterministic).
func firstError(errs []error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// detectMaxLevelParallel is the fan-out form of Algorithm 2 lines 1-8:
// worker w samples its shard of the n_w walks on a substream seeded from
// the engine's walk stream (k draws, so the derivation is deterministic
// in (stream state, k)), counting into a private LevelCounter. Detection
// then merges the shards lazily: a node can reach the merged count
// threshold only if some shard holds ≥ ⌈threshold/k⌉ of it, so the scan
// skips the long tail of low-count nodes with one compare each instead of
// materializing a merged counter — keeping the serial fraction of the
// stage small (Amdahl) without changing the detected L.
func (sp *SimPush) detectMaxLevelParallel(ctx context.Context, qs *queryState, k int) (int, error) {
	ws := sp.ensureWorkers(k)
	counters := make([]*walk.LevelCounter, k)
	for i, w := range ws {
		w.walker.Reseed(sp.walker.DeriveSeed())
		w.counter.Reset()
		counters[i] = w.counter
	}
	errs := make([]error, k)
	runWorkers(k, func(wi int) {
		w := ws[wi]
		lo, hi := shard(qs.p.nWalks, k, wi)
		for i := lo; i < hi; i++ {
			if (i-lo)%walkCtxBatch == 0 {
				if err := ctx.Err(); err != nil {
					errs[wi] = err
					return
				}
			}
			v := qs.u
			for step := 1; step <= qs.p.lStar; step++ {
				nv, ok := w.walker.Next(v)
				if !ok {
					break
				}
				v = nv
				w.counter.Add(step, v)
			}
		}
	})
	if err := firstError(errs); err != nil {
		return 0, err
	}
	maxLv := 0
	for _, c := range counters {
		if m := c.MaxLevels(); m > maxLv {
			maxLv = m
		}
	}
	minShare := (qs.p.countThld + int32(k) - 1) / int32(k)
	if minShare < 1 {
		minShare = 1
	}
	L := 0
	for l := 1; l < maxLv; l++ {
		if walk.MaxMergedCountAt(counters, l, minShare) >= qs.p.countThld {
			L = l
		}
	}
	if L > qs.p.lStar {
		L = qs.p.lStar
	}
	return L, nil
}

// computeGammasParallel shards the independent Algorithm 4 invocations
// across k workers. Hitting vectors and attention metadata are read-only;
// each worker writes only the gamma fields of its own shard with private
// ρ scratch, so the computed values are identical to the serial loop.
func (sp *SimPush) computeGammasParallel(ctx context.Context, qs *queryState, k int) error {
	ws := sp.ensureWorkers(k)
	errs := make([]error, k)
	runWorkers(k, func(wi int) {
		gs := &ws[wi].gamma
		gs.ensure(len(qs.att))
		lo, hi := shard(len(qs.att), k, wi)
		for i := lo; i < hi; i++ {
			if (i-lo)%gammaCtxStride == 0 {
				if err := ctx.Err(); err != nil {
					errs[wi] = err
					return
				}
			}
			qs.att[i].gamma = computeGamma(qs, int32(i), gs)
		}
	})
	return firstError(errs)
}
