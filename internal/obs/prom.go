package obs

import (
	"fmt"
	"io"
	"strconv"
	"strings"
)

// MetricsWriter emits the Prometheus text exposition format (version
// 0.0.4) without any client-library dependency. The caller is expected
// to write each metric family once: Counter/Gauge/HistogramType emit the
// # HELP / # TYPE header, then Sample (or Histogram) emits the series.
type MetricsWriter struct {
	w   io.Writer
	err error
}

// Labels is an ordered label set; ordering keeps output deterministic
// for tests and diffable for humans.
type Labels [][2]string

// L is shorthand for a single-label set.
func L(name, value string) Labels { return Labels{{name, value}} }

// L appends one more label, enabling obs.L("a", "1").L("b", "2") chains.
func (l Labels) L(name, value string) Labels {
	return append(append(Labels{}, l...), [2]string{name, value})
}

// ContentType is the /metricsz response content type.
const ContentType = "text/plain; version=0.0.4; charset=utf-8"

// NewMetricsWriter wraps w.
func NewMetricsWriter(w io.Writer) *MetricsWriter { return &MetricsWriter{w: w} }

// Err returns the first write error, if any.
func (m *MetricsWriter) Err() error { return m.err }

func (m *MetricsWriter) printf(format string, args ...any) {
	if m.err != nil {
		return
	}
	_, m.err = fmt.Fprintf(m.w, format, args...)
}

func (m *MetricsWriter) header(name, help, typ string) {
	m.printf("# HELP %s %s\n# TYPE %s %s\n", name, escapeHelp(help), name, typ)
}

// Counter emits the header of a counter family.
func (m *MetricsWriter) Counter(name, help string) { m.header(name, help, "counter") }

// Gauge emits the header of a gauge family.
func (m *MetricsWriter) Gauge(name, help string) { m.header(name, help, "gauge") }

// HistogramType emits the header of a histogram family.
func (m *MetricsWriter) HistogramType(name, help string) { m.header(name, help, "histogram") }

// Sample emits one series line: name{labels} value.
func (m *MetricsWriter) Sample(name string, labels Labels, v float64) {
	m.printf("%s%s %s\n", name, formatLabels(labels), formatFloat(v))
}

// Histogram emits one histogram series from fixed millisecond bucket
// upper bounds and per-bucket counts (counts carries one trailing
// overflow bucket beyond upperMs). Bounds are converted to seconds, the
// Prometheus base unit, and buckets are emitted cumulatively with the
// mandatory +Inf bucket, _sum and _count.
func (m *MetricsWriter) Histogram(name string, labels Labels, upperMs []float64, counts []uint64, sumMs float64) {
	var cum uint64
	for i, ub := range upperMs {
		if i < len(counts) {
			cum += counts[i]
		}
		le := append(append(Labels{}, labels...), [2]string{"le", formatFloat(ub / 1000)})
		m.printf("%s_bucket%s %d\n", name, formatLabels(le), cum)
	}
	for i := len(upperMs); i < len(counts); i++ {
		cum += counts[i]
	}
	inf := append(append(Labels{}, labels...), [2]string{"le", "+Inf"})
	m.printf("%s_bucket%s %d\n", name, formatLabels(inf), cum)
	m.printf("%s_sum%s %s\n", name, formatLabels(labels), formatFloat(sumMs/1000))
	m.printf("%s_count%s %d\n", name, formatLabels(labels), cum)
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func formatLabels(labels Labels) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, kv := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(kv[0])
		b.WriteString(`="`)
		b.WriteString(escapeLabel(kv[1]))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

var labelEscaper = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)

func escapeLabel(v string) string { return labelEscaper.Replace(v) }

var helpEscaper = strings.NewReplacer(`\`, `\\`, "\n", `\n`)

func escapeHelp(v string) string { return helpEscaper.Replace(v) }
