package obs

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Sample is one parsed exposition line: simload's metrics_delta and the
// tests use this to read /metricsz back without a client library.
type Sample struct {
	Name   string
	Labels map[string]string
	Value  float64
}

// ParseProm parses the Prometheus text exposition format: comment and
// blank lines are skipped, every other line must be
// name[{labels}] value [timestamp]. It is a consumer, not a validator —
// the format-grammar check lives in scripts/obs_smoke.sh.
func ParseProm(r io.Reader) ([]Sample, error) {
	var out []Sample
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		s, err := parseSampleLine(line)
		if err != nil {
			return nil, fmt.Errorf("obs: metrics line %d: %w", lineNo, err)
		}
		out = append(out, s)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

func parseSampleLine(line string) (Sample, error) {
	var s Sample
	i := strings.IndexAny(line, "{ ")
	if i <= 0 {
		return s, fmt.Errorf("no metric name in %q", line)
	}
	s.Name = line[:i]
	rest := line[i:]
	if rest[0] == '{' {
		end := -1
		inQuote, escaped := false, false
		for j := 1; j < len(rest); j++ {
			c := rest[j]
			switch {
			case escaped:
				escaped = false
			case inQuote && c == '\\':
				escaped = true
			case c == '"':
				inQuote = !inQuote
			case !inQuote && c == '}':
				end = j
			}
			if end >= 0 {
				break
			}
		}
		if end < 0 {
			return s, fmt.Errorf("unterminated label set in %q", line)
		}
		labels, err := parseLabels(rest[1:end])
		if err != nil {
			return s, err
		}
		s.Labels = labels
		rest = rest[end+1:]
	}
	fields := strings.Fields(rest)
	if len(fields) < 1 {
		return s, fmt.Errorf("no value in %q", line)
	}
	v, err := strconv.ParseFloat(fields[0], 64)
	if err != nil {
		return s, fmt.Errorf("value %q: %v", fields[0], err)
	}
	s.Value = v
	return s, nil
}

func parseLabels(body string) (map[string]string, error) {
	labels := make(map[string]string)
	for body != "" {
		eq := strings.IndexByte(body, '=')
		if eq < 0 {
			return nil, fmt.Errorf("label without '=' in %q", body)
		}
		name := strings.TrimSpace(body[:eq])
		rest := body[eq+1:]
		if len(rest) == 0 || rest[0] != '"' {
			return nil, fmt.Errorf("unquoted label value for %q", name)
		}
		var b strings.Builder
		j, closed := 1, false
		for ; j < len(rest); j++ {
			c := rest[j]
			if c == '\\' && j+1 < len(rest) {
				j++
				switch rest[j] {
				case 'n':
					b.WriteByte('\n')
				default:
					b.WriteByte(rest[j])
				}
				continue
			}
			if c == '"' {
				closed = true
				break
			}
			b.WriteByte(c)
		}
		if !closed {
			return nil, fmt.Errorf("unterminated value for label %q", name)
		}
		labels[name] = b.String()
		body = strings.TrimPrefix(strings.TrimSpace(rest[j+1:]), ",")
		body = strings.TrimSpace(body)
	}
	return labels, nil
}

// FindSample returns the value of the first sample with the given name
// whose labels include every entry of match (nil matches any labels).
func FindSample(samples []Sample, name string, match map[string]string) (float64, bool) {
	for _, s := range samples {
		if s.Name != name {
			continue
		}
		ok := true
		for k, v := range match {
			if s.Labels[k] != v {
				ok = false
				break
			}
		}
		if ok {
			return s.Value, true
		}
	}
	return 0, false
}
