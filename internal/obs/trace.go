package obs

import (
	"context"
	"sync"
	"time"
)

// Span is one timed segment of a request: admission wait, the cache
// lookup/single-flight window, or an engine stage. Offsets are relative
// to the trace start so a record is self-contained.
type Span struct {
	Name    string  `json:"name"`
	StartMs float64 `json:"start_ms"`
	DurMs   float64 `json:"duration_ms"`
}

// Trace accumulates the spans of one request. A nil *Trace is the
// disabled state: every method is nil-safe and free, so handlers thread
// one pointer through the request path unconditionally.
//
// The mutex exists for the single-flight path — a leader's compute
// closure records engine spans while the owning request may concurrently
// finish on cancellation — and is uncontended in the common case.
type Trace struct {
	mu       sync.Mutex
	id       string
	endpoint string
	query    string
	start    time.Time
	epoch    uint64
	cache    string
	spans    []Span
}

// TraceRecord is a completed trace: the JSON element of /debug/queries
// and the payload of a slow-query log line.
type TraceRecord struct {
	RequestID  string    `json:"request_id"`
	Endpoint   string    `json:"endpoint"`
	Query      string    `json:"query,omitempty"`
	Epoch      uint64    `json:"epoch,omitempty"`
	Cache      string    `json:"cache,omitempty"`
	Status     int       `json:"status"`
	Start      time.Time `json:"start"`
	DurationMs float64   `json:"duration_ms"`
	Spans      []Span    `json:"spans,omitempty"`
}

// NewTrace starts a trace for one request.
func NewTrace(id, endpoint, query string) *Trace {
	return &Trace{id: id, endpoint: endpoint, query: query, start: time.Now()}
}

// Enabled reports whether the trace records anything (false on nil).
func (t *Trace) Enabled() bool { return t != nil }

// ID returns the request id ("" on nil).
func (t *Trace) ID() string {
	if t == nil {
		return ""
	}
	return t.id
}

// Now returns the wall clock when tracing is enabled and the zero time
// otherwise — the pattern for spans timed inline:
//
//	start := tr.Now()          // no clock read when disabled
//	...work...
//	tr.SpanSince("cache", start)
func (t *Trace) Now() time.Time {
	if t == nil {
		return time.Time{}
	}
	return time.Now()
}

// Span records one completed span with an explicit start and duration.
func (t *Trace) Span(name string, start time.Time, d time.Duration) {
	if t == nil || start.IsZero() {
		return
	}
	t.mu.Lock()
	t.spans = append(t.spans, Span{
		Name:    name,
		StartMs: durMs(start.Sub(t.start)),
		DurMs:   durMs(d),
	})
	t.mu.Unlock()
}

// SpanSince records a span from start to now. A zero start (tracing was
// disabled when Now was called) is a no-op.
func (t *Trace) SpanSince(name string, start time.Time) {
	if t == nil || start.IsZero() {
		return
	}
	t.Span(name, start, time.Since(start))
}

// EngineStages appends the four engine-stage spans, back-computing their
// start offsets from the present instant (the stages just finished).
func (t *Trace) EngineStages(walk, sourcePush, gamma, reversePush time.Duration) {
	if t == nil {
		return
	}
	start := time.Now().Add(-(walk + sourcePush + gamma + reversePush))
	t.Span("walk", start, walk)
	start = start.Add(walk)
	t.Span("source_push", start, sourcePush)
	start = start.Add(sourcePush)
	t.Span("gamma", start, gamma)
	start = start.Add(gamma)
	t.Span("reverse_push", start, reversePush)
}

// SetEpoch records the graph epoch the request pinned.
func (t *Trace) SetEpoch(epoch uint64) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.epoch = epoch
	t.mu.Unlock()
}

// SetCache records the cache outcome (computed / hit / shared).
func (t *Trace) SetCache(outcome string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.cache = outcome
	t.mu.Unlock()
}

// Finish seals the trace into its record. The trace must not be used
// afterwards.
func (t *Trace) Finish(status int) TraceRecord {
	t.mu.Lock()
	defer t.mu.Unlock()
	return TraceRecord{
		RequestID:  t.id,
		Endpoint:   t.endpoint,
		Query:      t.query,
		Epoch:      t.epoch,
		Cache:      t.cache,
		Status:     status,
		Start:      t.start,
		DurationMs: durMs(time.Since(t.start)),
		Spans:      t.spans,
	}
}

func durMs(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

type traceKey struct{}

// WithTrace attaches a trace to ctx. Attaching nil is a no-op, keeping
// the off path allocation-free.
func WithTrace(ctx context.Context, t *Trace) context.Context {
	if t == nil {
		return ctx
	}
	return context.WithValue(ctx, traceKey{}, t)
}

// FromContext returns the request's trace, or nil when tracing is
// disabled. Nil is safe to use directly: every Trace method accepts it.
func FromContext(ctx context.Context) *Trace {
	t, _ := ctx.Value(traceKey{}).(*Trace)
	return t
}
