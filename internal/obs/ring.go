package obs

import "sync"

// Ring retains the last N completed trace records for /debug/queries.
// A nil *Ring is the disabled state: Add and Snapshot are nil-safe.
type Ring struct {
	mu   sync.Mutex
	buf  []TraceRecord
	next int // index the next record lands in
	full bool
}

// NewRing builds a ring of capacity n; n <= 0 returns nil (disabled).
func NewRing(n int) *Ring {
	if n <= 0 {
		return nil
	}
	return &Ring{buf: make([]TraceRecord, n)}
}

// Enabled reports whether records are retained.
func (r *Ring) Enabled() bool { return r != nil }

// Add appends a record, evicting the oldest when full.
func (r *Ring) Add(rec TraceRecord) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.buf[r.next] = rec
	r.next++
	if r.next == len(r.buf) {
		r.next, r.full = 0, true
	}
	r.mu.Unlock()
}

// Snapshot returns the retained records, newest first.
func (r *Ring) Snapshot() []TraceRecord {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	n := r.next
	if r.full {
		n = len(r.buf)
	}
	out := make([]TraceRecord, 0, n)
	for i := 1; i <= n; i++ {
		out = append(out, r.buf[(r.next-i+len(r.buf))%len(r.buf)])
	}
	return out
}
