// Package obs is the dependency-free observability layer shared by the
// serving stack (simproxy → simrankd → engine): request-scoped traces
// with per-stage spans, a ring buffer of completed traces for
// /debug/queries, a Prometheus-text-format writer and parser for
// /metricsz, request-id minting/propagation, and log/slog construction
// helpers.
//
// The package imports only the standard library and nothing from the
// rest of the repository, so every layer — including internal/core via
// the Clock interface — can depend on it without cycles.
//
// Tracing is zero-allocation when disabled: all *Trace methods are
// nil-safe, so a handler carries a nil trace on the off path and every
// recording call reduces to one pointer test — no allocation, no clock
// read.
package obs

import (
	crand "crypto/rand"
	"encoding/binary"
	"encoding/hex"
	"strconv"
	"sync/atomic"
	"time"
)

// RequestIDHeader is the correlation header minted by the outermost
// layer (simproxy when present, simrankd otherwise) and echoed on every
// response, including errors.
const RequestIDHeader = "X-Request-Id"

// SystemClock reads the process wall clock. It is a comparable struct —
// deliberately not a func type — so option structs carrying a Clock stay
// usable as map keys (internal/core's Options is one).
type SystemClock struct{}

// Now returns the current wall-clock time.
func (SystemClock) Now() time.Time { return time.Now() }

// ridPrefix makes ids from concurrent processes (a proxy and its
// replicas, say) collision-free without coordination; the per-process
// counter makes them unique and cheap.
var ridPrefix = func() string {
	var b [6]byte
	if _, err := crand.Read(b[:]); err != nil {
		binary.LittleEndian.PutUint32(b[:4], uint32(time.Now().UnixNano()))
	}
	return hex.EncodeToString(b[:])
}()

var ridCounter atomic.Uint64

// NewRequestID mints a process-unique request id: a random per-process
// prefix plus a counter. One small string allocation, no syscalls.
func NewRequestID() string {
	return ridPrefix + "-" + strconv.FormatUint(ridCounter.Add(1), 16)
}

// maxRequestIDLen bounds accepted client-supplied ids so a hostile
// header cannot bloat logs and trace records.
const maxRequestIDLen = 128

// SanitizeRequestID validates a client-supplied request id: printable
// ASCII without spaces or quotes, at most 128 bytes. It returns "" when
// the id is unusable, telling the caller to mint a fresh one.
func SanitizeRequestID(id string) string {
	if id == "" || len(id) > maxRequestIDLen {
		return ""
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		if c <= ' ' || c > '~' || c == '"' || c == '\\' {
			return ""
		}
	}
	return id
}
