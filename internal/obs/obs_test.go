package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"log/slog"
	"strings"
	"testing"
	"time"
)

func TestRequestIDs(t *testing.T) {
	a, b := NewRequestID(), NewRequestID()
	if a == b {
		t.Fatalf("consecutive ids collide: %q", a)
	}
	if SanitizeRequestID(a) != a {
		t.Errorf("minted id %q did not survive sanitization", a)
	}
	bad := []string{
		"", "has space", "has\"quote", `back\slash`, "ctrl\x01char",
		strings.Repeat("x", maxRequestIDLen+1),
	}
	for _, id := range bad {
		if got := SanitizeRequestID(id); got != "" {
			t.Errorf("SanitizeRequestID(%q) = %q, want rejection", id, got)
		}
	}
	if got := SanitizeRequestID("client-id_42.A"); got != "client-id_42.A" {
		t.Errorf("plain id rejected: %q", got)
	}
}

func TestNilTraceIsSafeAndFree(t *testing.T) {
	var tr *Trace
	if tr.Enabled() {
		t.Fatal("nil trace reports enabled")
	}
	if !tr.Now().IsZero() {
		t.Fatal("nil trace read the clock")
	}
	// Every recording method must be a no-op on nil.
	tr.Span("x", time.Now(), time.Second)
	tr.SpanSince("x", tr.Now())
	tr.EngineStages(1, 2, 3, 4)
	tr.SetEpoch(7)
	tr.SetCache("hit")
	if id := tr.ID(); id != "" {
		t.Fatalf("nil trace id = %q", id)
	}
	ctx := WithTrace(context.Background(), nil)
	if FromContext(ctx) != nil {
		t.Fatal("nil trace attached to context")
	}

	allocs := testing.AllocsPerRun(100, func() {
		start := tr.Now()
		tr.SpanSince("cache", start)
		tr.EngineStages(1, 2, 3, 4)
		tr.SetCache("hit")
	})
	if allocs != 0 {
		t.Errorf("disabled tracing allocates %.1f per request, want 0", allocs)
	}
}

func TestTraceRecord(t *testing.T) {
	tr := NewTrace("rid-1", "single-source", "GET /v1/single-source?node=3")
	ctx := WithTrace(context.Background(), tr)
	if FromContext(ctx) != tr {
		t.Fatal("trace did not round-trip through context")
	}
	tr.SetEpoch(5)
	tr.SetCache("computed")
	start := tr.Now()
	time.Sleep(time.Millisecond)
	tr.SpanSince("cache", start)
	tr.EngineStages(time.Millisecond, 2*time.Millisecond, 3*time.Millisecond, 4*time.Millisecond)

	rec := tr.Finish(200)
	if rec.RequestID != "rid-1" || rec.Endpoint != "single-source" || rec.Status != 200 {
		t.Fatalf("record header wrong: %+v", rec)
	}
	if rec.Epoch != 5 || rec.Cache != "computed" {
		t.Fatalf("record context wrong: %+v", rec)
	}
	if rec.DurationMs <= 0 {
		t.Fatalf("duration %v, want > 0", rec.DurationMs)
	}
	want := []string{"cache", "walk", "source_push", "gamma", "reverse_push"}
	if len(rec.Spans) != len(want) {
		t.Fatalf("spans = %+v, want %v", rec.Spans, want)
	}
	for i, name := range want {
		if rec.Spans[i].Name != name {
			t.Errorf("span %d = %q, want %q", i, rec.Spans[i].Name, name)
		}
	}
	if rec.Spans[1].DurMs != 1 || rec.Spans[4].DurMs != 4 {
		t.Errorf("stage durations wrong: %+v", rec.Spans)
	}
	// Consecutive engine stages tile: each starts where the previous ended.
	for i := 2; i < 5; i++ {
		prevEnd := rec.Spans[i-1].StartMs + rec.Spans[i-1].DurMs
		if diff := rec.Spans[i].StartMs - prevEnd; diff > 1e-9 || diff < -1e-9 {
			t.Errorf("span %d starts at %.6f, previous ended at %.6f", i, rec.Spans[i].StartMs, prevEnd)
		}
	}
	if _, err := json.Marshal(rec); err != nil {
		t.Fatalf("record does not marshal: %v", err)
	}
}

func TestRing(t *testing.T) {
	if NewRing(0) != nil || NewRing(-1) != nil {
		t.Fatal("non-positive capacity must disable the ring")
	}
	var disabled *Ring
	disabled.Add(TraceRecord{}) // must not panic
	if disabled.Snapshot() != nil || disabled.Enabled() {
		t.Fatal("nil ring is not inert")
	}

	r := NewRing(3)
	for i := 1; i <= 5; i++ {
		r.Add(TraceRecord{RequestID: fmt.Sprintf("r%d", i)})
	}
	got := r.Snapshot()
	want := []string{"r5", "r4", "r3"} // newest first, oldest evicted
	if len(got) != len(want) {
		t.Fatalf("snapshot has %d records, want %d", len(got), len(want))
	}
	for i, w := range want {
		if got[i].RequestID != w {
			t.Errorf("snapshot[%d] = %q, want %q", i, got[i].RequestID, w)
		}
	}
}

func TestMetricsWriterAndParserRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	m := NewMetricsWriter(&buf)
	m.Counter("x_requests_total", "Requests served.")
	m.Sample("x_requests_total", L("endpoint", "single-source"), 42)
	m.Sample("x_requests_total", L("endpoint", `we"ird\pa`+"\n"+`th`), 1)
	m.Gauge("x_depth", "Queue depth.")
	m.Sample("x_depth", nil, 3.5)
	m.HistogramType("x_latency_seconds", "Latency.")
	m.Histogram("x_latency_seconds", L("path", "engine"),
		[]float64{0.1, 0.2, 0.4}, []uint64{1, 2, 0, 3}, 260)
	if err := m.Err(); err != nil {
		t.Fatalf("writer error: %v", err)
	}

	samples, err := ParseProm(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("parsing own output: %v\n%s", err, buf.String())
	}
	if v, ok := FindSample(samples, "x_requests_total", map[string]string{"endpoint": "single-source"}); !ok || v != 42 {
		t.Errorf("counter sample = %v,%v", v, ok)
	}
	if v, ok := FindSample(samples, "x_requests_total", map[string]string{"endpoint": "we\"ird\\pa\nth"}); !ok || v != 1 {
		t.Errorf("escaped label did not round-trip: %v,%v", v, ok)
	}
	if v, ok := FindSample(samples, "x_depth", nil); !ok || v != 3.5 {
		t.Errorf("gauge sample = %v,%v", v, ok)
	}
	// Histogram: cumulative buckets, +Inf == count, sum in seconds.
	if v, ok := FindSample(samples, "x_latency_seconds_bucket", map[string]string{"le": "0.0002"}); !ok || v != 3 {
		t.Errorf("cumulative bucket le=0.0002 = %v,%v, want 3", v, ok)
	}
	if v, ok := FindSample(samples, "x_latency_seconds_bucket", map[string]string{"le": "+Inf"}); !ok || v != 6 {
		t.Errorf("+Inf bucket = %v,%v, want 6", v, ok)
	}
	if v, ok := FindSample(samples, "x_latency_seconds_count", nil); !ok || v != 6 {
		t.Errorf("count = %v,%v, want 6", v, ok)
	}
	if v, ok := FindSample(samples, "x_latency_seconds_sum", nil); !ok || v != 0.26 {
		t.Errorf("sum = %v,%v, want 0.26 (seconds)", v, ok)
	}
}

func TestParsePromRejectsGarbage(t *testing.T) {
	for _, in := range []string{
		"no_value\n",
		"bad value notafloat\n",
		`unterminated{a="x value 1` + "\n",
	} {
		if _, err := ParseProm(strings.NewReader(in)); err == nil {
			t.Errorf("ParseProm(%q) accepted garbage", in)
		}
	}
}

func TestNewLogger(t *testing.T) {
	var buf bytes.Buffer
	lg, err := NewLogger(&buf, "debug", "json", "simrankd")
	if err != nil {
		t.Fatal(err)
	}
	lg.Debug("hello", "request_id", "r1")
	var rec map[string]any
	if err := json.Unmarshal(buf.Bytes(), &rec); err != nil {
		t.Fatalf("log line is not JSON: %v (%q)", err, buf.String())
	}
	if rec["component"] != "simrankd" || rec["request_id"] != "r1" {
		t.Errorf("log line missing fields: %v", rec)
	}

	buf.Reset()
	lg, err = NewLogger(&buf, "warn", "text", "x")
	if err != nil {
		t.Fatal(err)
	}
	lg.Info("suppressed")
	if buf.Len() != 0 {
		t.Errorf("info leaked past warn level: %q", buf.String())
	}
	lg.Warn("kept")
	if !strings.Contains(buf.String(), "kept") {
		t.Errorf("warn line missing: %q", buf.String())
	}

	if _, err := NewLogger(&buf, "loud", "text", "x"); err == nil {
		t.Error("bad level accepted")
	}
	if _, err := NewLogger(&buf, "info", "xml", "x"); err == nil {
		t.Error("bad format accepted")
	}

	// Discard must swallow output without panicking.
	Discard().Error("dropped")

	// SystemClock satisfies a structural clock interface and is comparable
	// (usable inside map keys, the constraint core.Options relies on).
	var clk interface{ Now() time.Time } = SystemClock{}
	if clk.Now().IsZero() {
		t.Error("SystemClock returned the zero time")
	}
	_ = map[SystemClock]bool{{}: true}
	var _ slog.Handler = slog.DiscardHandler
}
