package obs

import (
	"fmt"
	"io"
	"log/slog"
	"strings"
)

// NewLogger builds the daemons' structured logger: level is one of
// debug/info/warn/error, format one of text/json, and component tags
// every record (simrankd, simproxy, simload) so merged log streams stay
// attributable.
func NewLogger(w io.Writer, level, format, component string) (*slog.Logger, error) {
	var lv slog.Level
	switch strings.ToLower(level) {
	case "", "info":
		lv = slog.LevelInfo
	case "debug":
		lv = slog.LevelDebug
	case "warn", "warning":
		lv = slog.LevelWarn
	case "error":
		lv = slog.LevelError
	default:
		return nil, fmt.Errorf("obs: unknown log level %q (want debug, info, warn or error)", level)
	}
	opts := &slog.HandlerOptions{Level: lv}
	var h slog.Handler
	switch strings.ToLower(format) {
	case "", "text":
		h = slog.NewTextHandler(w, opts)
	case "json":
		h = slog.NewJSONHandler(w, opts)
	default:
		return nil, fmt.Errorf("obs: unknown log format %q (want text or json)", format)
	}
	return slog.New(h).With("component", component), nil
}

// Discard is a logger that drops everything — the default for library
// layers when the caller doesn't wire one.
func Discard() *slog.Logger { return slog.New(slog.DiscardHandler) }
