// Package engine defines the uniform interface that SimPush and all six
// baseline algorithms implement, so the experiment harness can sweep over
// methods and parameter settings generically.
package engine

import (
	"context"

	"github.com/simrank/simpush/internal/limits"
)

// Engine is a single-source SimRank solver bound to one graph and one
// parameter setting.
//
// Engines are not required to be safe for concurrent queries; the harness
// serializes queries per engine (matching the paper's per-query timing).
//
// Engines assume the graph they were constructed on never mutates: the
// index-based baselines bake its topology into their index at Build time,
// so serving a changed graph requires a new engine and a full rebuild —
// exactly the maintenance cost the paper's index-free design avoids. Live
// graphs are served through the root package's Client/GraphSource API,
// whose SimPush engines rebind to fresh snapshots in place instead.
type Engine interface {
	// Name identifies the algorithm, e.g. "SimPush" or "ProbeSim".
	Name() string
	// Setting is a short human-readable parameter label, e.g. "eps=0.02".
	Setting() string
	// Indexed reports whether Build performs real preprocessing.
	Indexed() bool
	// Build runs preprocessing. Index-free engines return nil immediately.
	Build() error
	// Query returns the estimated SimRank row s̃(u, ·). Cancellation of ctx
	// is observed at the engine's main loop boundaries; the error is then
	// ctx.Err(). A node outside the graph wraps limits.ErrNodeOutOfRange.
	Query(ctx context.Context, u int32) ([]float64, error)
	// IndexBytes estimates the memory held by the index and persistent
	// query scratch, excluding the input graph.
	IndexBytes() int64
}

// ErrIndexTooLarge is returned by Build when an engine projects its index
// to exceed the configured cap. The harness treats such settings exactly
// like the paper treats out-of-memory configurations: it excludes them.
type ErrIndexTooLarge = limits.ErrIndexTooLarge
