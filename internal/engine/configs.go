package engine

import (
	"context"
	"fmt"

	"github.com/simrank/simpush/internal/core"
	"github.com/simrank/simpush/internal/graph"
	"github.com/simrank/simpush/internal/probesim"
	"github.com/simrank/simpush/internal/prsim"
	"github.com/simrank/simpush/internal/reads"
	"github.com/simrank/simpush/internal/sling"
	"github.com/simrank/simpush/internal/topsim"
	"github.com/simrank/simpush/internal/tsf"
)

// simPushEngine adapts core.SimPush to the Engine interface.
type simPushEngine struct {
	sp *core.SimPush
}

// NewSimPush wraps a SimPush engine.
func NewSimPush(g *graph.Graph, opt core.Options) (Engine, error) {
	sp, err := core.New(g, opt)
	if err != nil {
		return nil, err
	}
	return &simPushEngine{sp: sp}, nil
}

func (e *simPushEngine) Name() string { return "SimPush" }
func (e *simPushEngine) Setting() string {
	return fmt.Sprintf("eps=%g", e.sp.Options().Epsilon)
}
func (e *simPushEngine) Indexed() bool     { return false }
func (e *simPushEngine) Build() error      { return nil }
func (e *simPushEngine) IndexBytes() int64 { return e.sp.MemoryBytes() }
func (e *simPushEngine) Query(ctx context.Context, u int32) ([]float64, error) {
	res, err := e.sp.QueryCtx(ctx, u, core.QueryOpts{})
	if err != nil {
		return nil, err
	}
	return res.Scores, nil
}

// Unwrap exposes the underlying core engine for stage-level statistics.
func (e *simPushEngine) Unwrap() *core.SimPush { return e.sp }

// SimPushStats is implemented by engines that can report SimPush internals.
type SimPushStats interface {
	Unwrap() *core.SimPush
}

// Config describes one (method, parameter-setting) combination of the
// paper's sweep (§5.1). Make binds it to a graph.
type Config struct {
	Method  string
	Setting string
	// Rank orders settings from coarsest (0) to finest (4), matching the
	// "from right to left" curves in Figures 4-6.
	Rank int
	Make func(g *graph.Graph, seed uint64) (Engine, error)
}

// Caps bound resource use per configuration, mirroring the paper's
// exclusion rules (out of memory / over time budget).
type Caps struct {
	MaxIndexBytes int64
	// WalkCap bounds per-query walk samples of the sampling-based methods
	// (0 = theoretical counts). It deliberately trades the δ guarantee for
	// bounded experiment time, like the released implementations do.
	WalkCap int
}

// SimPushEpsilons is the paper's SimPush sweep.
var SimPushEpsilons = []float64{0.05, 0.02, 0.01, 0.005, 0.002}

// AbsErrSweep is the ε_a sweep shared by PRSim, SLING and ProbeSim.
var AbsErrSweep = []float64{0.5, 0.1, 0.05, 0.01, 0.005}

// ReadsSweep is the (r, t) sweep of READS.
var ReadsSweep = [][2]int{{10, 2}, {50, 5}, {100, 10}, {500, 10}, {1000, 20}}

// TSFSweep is the (Rg, Rq) sweep of TSF.
var TSFSweep = [][2]int{{10, 2}, {100, 20}, {200, 30}, {300, 40}, {600, 80}}

// TopSimSweep is the (T, 1/h) sweep of TopSim (H=100, η=0.001 fixed).
var TopSimSweep = [][2]int{{1, 10}, {3, 100}, {3, 1000}, {3, 10000}, {4, 10000}}

// MethodNames lists all seven methods in the paper's legend order.
var MethodNames = []string{"SimPush", "ProbeSim", "PRSim", "SLING", "READS", "TSF", "TopSim"}

// Sweep returns the paper's five parameter settings for the given method.
func Sweep(method string, caps Caps) ([]Config, error) {
	var out []Config
	switch method {
	case "SimPush":
		for i, eps := range SimPushEpsilons {
			eps := eps
			out = append(out, Config{
				Method: "SimPush", Setting: fmt.Sprintf("eps=%g", eps), Rank: i,
				Make: func(g *graph.Graph, seed uint64) (Engine, error) {
					return NewSimPush(g, core.Options{Epsilon: eps, Seed: seed})
				},
			})
		}
	case "ProbeSim":
		for i, eps := range AbsErrSweep {
			eps := eps
			out = append(out, Config{
				Method: "ProbeSim", Setting: fmt.Sprintf("eps_a=%g", eps), Rank: i,
				Make: func(g *graph.Graph, seed uint64) (Engine, error) {
					return probesim.New(g, probesim.Params{EpsA: eps, Seed: seed, WalkCap: caps.WalkCap})
				},
			})
		}
	case "PRSim":
		for i, eps := range AbsErrSweep {
			eps := eps
			out = append(out, Config{
				Method: "PRSim", Setting: fmt.Sprintf("eps_a=%g", eps), Rank: i,
				Make: func(g *graph.Graph, seed uint64) (Engine, error) {
					return prsim.New(g, prsim.Params{EpsA: eps, Seed: seed,
						WalkCap: caps.WalkCap, MaxIndexBytes: caps.MaxIndexBytes})
				},
			})
		}
	case "SLING":
		for i, eps := range AbsErrSweep {
			eps := eps
			out = append(out, Config{
				Method: "SLING", Setting: fmt.Sprintf("eps_a=%g", eps), Rank: i,
				Make: func(g *graph.Graph, seed uint64) (Engine, error) {
					return sling.New(g, sling.Params{EpsA: eps, Seed: seed,
						MaxIndexBytes: caps.MaxIndexBytes})
				},
			})
		}
	case "READS":
		for i, rt := range ReadsSweep {
			r, t := rt[0], rt[1]
			out = append(out, Config{
				Method: "READS", Setting: fmt.Sprintf("r=%d,t=%d", r, t), Rank: i,
				Make: func(g *graph.Graph, seed uint64) (Engine, error) {
					return reads.New(g, reads.Params{R: r, T: t, Seed: seed,
						MaxIndexBytes: caps.MaxIndexBytes})
				},
			})
		}
	case "TSF":
		for i, rr := range TSFSweep {
			rg, rq := rr[0], rr[1]
			out = append(out, Config{
				Method: "TSF", Setting: fmt.Sprintf("Rg=%d,Rq=%d", rg, rq), Rank: i,
				Make: func(g *graph.Graph, seed uint64) (Engine, error) {
					return tsf.New(g, tsf.Params{Rg: rg, Rq: rq, Seed: seed,
						MaxIndexBytes: caps.MaxIndexBytes})
				},
			})
		}
	case "TopSim":
		for i, th := range TopSimSweep {
			t, invH := th[0], th[1]
			out = append(out, Config{
				Method: "TopSim", Setting: fmt.Sprintf("T=%d,1/h=%d", t, invH), Rank: i,
				Make: func(g *graph.Graph, seed uint64) (Engine, error) {
					return topsim.New(g, topsim.Params{T: t, InvH: int32(invH)})
				},
			})
		}
	default:
		return nil, fmt.Errorf("engine: unknown method %q", method)
	}
	return out, nil
}

// AllSweeps returns the full 7-method × 5-setting grid.
func AllSweeps(caps Caps) ([]Config, error) {
	var out []Config
	for _, m := range MethodNames {
		cfgs, err := Sweep(m, caps)
		if err != nil {
			return nil, err
		}
		out = append(out, cfgs...)
	}
	return out, nil
}
