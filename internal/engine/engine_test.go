package engine

import (
	"context"
	"errors"
	"math"
	"testing"

	"github.com/simrank/simpush/internal/core"
	"github.com/simrank/simpush/internal/eval"
	"github.com/simrank/simpush/internal/exact"
	"github.com/simrank/simpush/internal/gen"
)

func TestSimPushAdapter(t *testing.T) {
	g, err := gen.CopyingModel(200, 5, 0.3, 1)
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewSimPush(g, core.Options{Epsilon: 0.02, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if e.Name() != "SimPush" || e.Indexed() {
		t.Fatal("adapter metadata")
	}
	if err := e.Build(); err != nil {
		t.Fatal(err)
	}
	s, err := e.Query(context.Background(), 5)
	if err != nil {
		t.Fatal(err)
	}
	if s[5] != 1 {
		t.Fatal("self score")
	}
	if _, ok := e.(SimPushStats); !ok {
		t.Fatal("adapter does not expose internals")
	}
}

func TestSweepsComplete(t *testing.T) {
	cfgs, err := AllSweeps(Caps{})
	if err != nil {
		t.Fatal(err)
	}
	if len(cfgs) != 7*5 {
		t.Fatalf("grid size = %d, want 35", len(cfgs))
	}
	seen := map[string]int{}
	for _, c := range cfgs {
		seen[c.Method]++
		if c.Setting == "" {
			t.Fatalf("empty setting for %s", c.Method)
		}
	}
	for _, m := range MethodNames {
		if seen[m] != 5 {
			t.Fatalf("%s has %d settings", m, seen[m])
		}
	}
	if _, err := Sweep("Nope", Caps{}); err == nil {
		t.Fatal("unknown method accepted")
	}
}

// Every method at a mid-tier setting must beat a trivial baseline on a
// small graph: AvgError well under the coarsest knob and all engines
// runnable end to end through the common interface.
func TestAllEnginesEndToEnd(t *testing.T) {
	g, err := gen.CopyingModel(150, 5, 0.3, 5)
	if err != nil {
		t.Fatal(err)
	}
	ex, err := exact.AllPairs(g, exact.Options{C: 0.6})
	if err != nil {
		t.Fatal(err)
	}
	u := int32(10)
	row := ex.Row(u)
	cfgs, err := AllSweeps(Caps{WalkCap: 200000})
	if err != nil {
		t.Fatal(err)
	}
	for _, cfg := range cfgs {
		if cfg.Rank != 2 { // mid setting per method
			continue
		}
		e, err := cfg.Make(g, 99)
		if err != nil {
			t.Fatalf("%s/%s: %v", cfg.Method, cfg.Setting, err)
		}
		if err := e.Build(); err != nil {
			t.Fatalf("%s/%s build: %v", cfg.Method, cfg.Setting, err)
		}
		s, err := e.Query(context.Background(), u)
		if err != nil {
			t.Fatalf("%s/%s query: %v", cfg.Method, cfg.Setting, err)
		}
		var sum float64
		for v := int32(0); v < g.N(); v++ {
			if v != u {
				sum += math.Abs(row[v] - s[v])
			}
		}
		avg := sum / float64(g.N()-1)
		if avg > 0.1 {
			t.Errorf("%s/%s: avg error %v", cfg.Method, cfg.Setting, avg)
		}
		if e.IndexBytes() < 0 {
			t.Errorf("%s/%s: negative index size", cfg.Method, cfg.Setting)
		}
	}
}

func TestIndexCapPropagates(t *testing.T) {
	g, err := gen.CopyingModel(2000, 8, 0.3, 7)
	if err != nil {
		t.Fatal(err)
	}
	cfgs, err := Sweep("READS", Caps{MaxIndexBytes: 1 << 10})
	if err != nil {
		t.Fatal(err)
	}
	e, err := cfgs[4].Make(g, 1) // (1000, 20): way over 1 KiB
	if err != nil {
		t.Fatal(err)
	}
	err = e.Build()
	var tooBig *ErrIndexTooLarge
	if !errors.As(err, &tooBig) {
		t.Fatalf("cap not propagated: %v", err)
	}
	if tooBig.Error() == "" {
		t.Fatal("empty error text")
	}
}

// All seven methods at their finest settings must largely agree on the
// top-10 of a small graph — a cross-implementation consistency check that
// catches systematic ranking bugs no single-method test would.
func TestCrossMethodTopKConsensus(t *testing.T) {
	g, err := gen.CopyingModel(400, 6, 0.3, 41)
	if err != nil {
		t.Fatal(err)
	}
	ex, err := exact.AllPairs(g, exact.Options{C: 0.6})
	if err != nil {
		t.Fatal(err)
	}
	const u = int32(33)
	trueTop := eval.TopK(ex.Row(u), 10, u)
	trueSet := map[int32]bool{}
	for _, v := range trueTop {
		trueSet[v] = true
	}
	cfgs, err := AllSweeps(Caps{WalkCap: 300000})
	if err != nil {
		t.Fatal(err)
	}
	for _, cfg := range cfgs {
		if cfg.Rank != 4 { // finest setting per method
			continue
		}
		eng, err := cfg.Make(g, 17)
		if err != nil {
			t.Fatalf("%s: %v", cfg.Method, err)
		}
		if err := eng.Build(); err != nil {
			t.Fatalf("%s build: %v", cfg.Method, err)
		}
		s, err := eng.Query(context.Background(), u)
		if err != nil {
			t.Fatalf("%s query: %v", cfg.Method, err)
		}
		got := eval.TopK(s, 10, u)
		hits := 0
		for _, v := range got {
			if trueSet[v] {
				hits++
			}
		}
		// TSF/TopSim are known-biased; require weaker agreement there.
		minHits := 7
		if cfg.Method == "TSF" || cfg.Method == "TopSim" || cfg.Method == "READS" {
			minHits = 5
		}
		if hits < minHits {
			t.Errorf("%s finest setting: only %d/10 of the true top-10", cfg.Method, hits)
		}
	}
}
