// Package push provides the reverse (backward) residue-propagation
// primitive shared by several SimRank algorithms: given a target node w,
// it computes hitting probabilities h^(d)(v, w) — the probability that a
// √c-walk from v reaches w at exactly step d — for all v, level by level.
//
// A √c-walk moves from a node to a uniformly random in-neighbor, so paths
// into w are enumerated from w along out-edges: layer d+1 receives
// √c·layer_d(x)/d_I(y) for every out-neighbor y of x.
//
// ProbeSim probes, SLING/PRSim index construction and TopSim scoring are
// all built on this primitive.
package push

import (
	"math"

	"github.com/simrank/simpush/internal/graph"
)

// Prober owns the dense scratch for reverse pushes over one graph.
// Not safe for concurrent use.
type Prober struct {
	g          *graph.Graph
	sqrtC      float64
	cur, nxt   []float64
	curT, nxtT []int32
	// report buffers reused across layers; valid only during onLayer.
	repNodes []int32
	repVals  []float64
}

// NewProber returns a Prober for g with SimRank decay factor c.
func NewProber(g *graph.Graph, c float64) *Prober {
	return &Prober{
		g:     g,
		sqrtC: math.Sqrt(c),
		cur:   make([]float64, g.N()),
		nxt:   make([]float64, g.N()),
	}
}

// MemoryBytes reports the scratch footprint.
func (p *Prober) MemoryBytes() int64 {
	return int64(len(p.cur)+len(p.nxt)) * 8
}

// Push seeds layer 0 with value 1 at w and propagates `levels` steps.
// After computing each layer d (1 ≤ d ≤ levels) it invokes
// onLayer(d, nodes, vals); the slices are only valid during the callback.
//
// threshold prunes entries below it during propagation (0 disables).
// excludeAt, if non-nil, names one node per layer whose mass is removed
// after the layer is reported — the first-meeting exclusion of ProbeSim
// (return a negative node to exclude nothing). The excluded node is zeroed
// before the layer is reported, since walks through it met earlier.
func (p *Prober) Push(w int32, levels int, threshold float64,
	excludeAt func(d int) int32, onLayer func(d int, nodes []int32, vals []float64)) {
	p.PushSeeds([]int32{w}, []float64{1}, levels, threshold, excludeAt, onLayer)
}

// PushSeeds is Push with arbitrary initial mass on several seed nodes
// (layer 0). It is the multi-source form used by TopSim-style scoring.
func (p *Prober) PushSeeds(seeds []int32, mass []float64, levels int, threshold float64,
	excludeAt func(d int) int32, onLayer func(d int, nodes []int32, vals []float64)) {
	cur, nxt := p.cur, p.nxt
	curT, nxtT := p.curT[:0], p.nxtT[:0]
	for i, s := range seeds {
		if mass[i] == 0 {
			continue
		}
		if cur[s] == 0 {
			curT = append(curT, s)
		}
		cur[s] += mass[i]
	}
	for d := 1; d <= levels && len(curT) > 0; d++ {
		for _, x := range curT {
			val := cur[x]
			cur[x] = 0
			if val < threshold {
				continue
			}
			pv := p.sqrtC * val
			for _, y := range p.g.Out(x) {
				if nxt[y] == 0 {
					nxtT = append(nxtT, y)
				}
				nxt[y] += pv / float64(p.g.InDeg(y))
			}
		}
		curT = curT[:0]
		cur, nxt = nxt, cur
		curT, nxtT = nxtT, curT

		if excludeAt != nil {
			if ex := excludeAt(d); ex >= 0 && cur[ex] != 0 {
				cur[ex] = 0
				// The touched list keeps the entry; zero value is skipped
				// by consumers and by the next propagation round.
			}
		}
		if onLayer != nil {
			p.reportLayer(d, cur, curT, onLayer)
		}
	}
	// Clear any remaining mass so the scratch is clean for the next call.
	for _, x := range curT {
		cur[x] = 0
	}
	p.cur, p.nxt = cur, nxt
	p.curT, p.nxtT = curT[:0], nxtT[:0]
}

// reportLayer invokes onLayer with compacted (nodes, vals) slices. The
// slices are reused across layers; callers must not retain them.
func (p *Prober) reportLayer(d int, cur []float64, curT []int32, onLayer func(int, []int32, []float64)) {
	nodes := p.repNodes[:0]
	vals := p.repVals[:0]
	for _, v := range curT {
		if cur[v] != 0 {
			nodes = append(nodes, v)
			vals = append(vals, cur[v])
		}
	}
	p.repNodes, p.repVals = nodes, vals
	onLayer(d, nodes, vals)
}

// MaxLevels returns the deepest level worth probing for contribution
// threshold eps: beyond L = ⌈log_{1/√c}(1/eps)⌉ every hitting probability
// is below eps.
func MaxLevels(c, eps float64) int {
	if eps <= 0 || eps >= 1 {
		return 1
	}
	sqrtC := math.Sqrt(c)
	l := int(math.Ceil(math.Log(1/eps) / math.Log(1/sqrtC)))
	if l < 1 {
		l = 1
	}
	return l
}
