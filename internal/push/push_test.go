package push

import (
	"math"
	"testing"

	"github.com/simrank/simpush/internal/gen"
	"github.com/simrank/simpush/internal/graph"
)

const c = 0.6

// On the shared-parent graph 0->1, 0->2: h^(1)(1, 0) = √c (walk from 1 has
// a single in-neighbor 0).
func TestPushSingleLevel(t *testing.T) {
	g := graph.MustFromPairs([2]int32{0, 1}, [2]int32{0, 2})
	p := NewProber(g, c)
	got := map[int32]float64{}
	p.Push(0, 1, 0, nil, func(d int, nodes []int32, vals []float64) {
		if d != 1 {
			t.Fatalf("unexpected layer %d", d)
		}
		for i, v := range nodes {
			got[v] = vals[i]
		}
	})
	sqrtC := math.Sqrt(c)
	if math.Abs(got[1]-sqrtC) > 1e-12 || math.Abs(got[2]-sqrtC) > 1e-12 {
		t.Fatalf("layer 1 = %v, want √c at both children", got)
	}
}

// Two-hop chain: 0->1->3 and 0->2->4. h^(2)(3, 0) = c.
func TestPushTwoLevels(t *testing.T) {
	g := graph.MustFromPairs([2]int32{0, 1}, [2]int32{0, 2}, [2]int32{1, 3}, [2]int32{2, 4})
	p := NewProber(g, c)
	var l2 map[int32]float64
	p.Push(0, 2, 0, nil, func(d int, nodes []int32, vals []float64) {
		if d == 2 {
			l2 = map[int32]float64{}
			for i, v := range nodes {
				l2[v] = vals[i]
			}
		}
	})
	if math.Abs(l2[3]-c) > 1e-12 || math.Abs(l2[4]-c) > 1e-12 {
		t.Fatalf("layer 2 = %v, want c", l2)
	}
}

// Cross-check Push against a direct forward computation of h^(d)(v, w) on a
// random graph: h^(d)(v, w) computed by pushing from v along in-edges.
func TestPushMatchesForwardHitting(t *testing.T) {
	g, err := gen.ErdosRenyi(60, 400, 3)
	if err != nil {
		t.Fatal(err)
	}
	sqrtC := math.Sqrt(c)
	// forward[d][x] = h^(d)(v0, x) via in-edge propagation from v0.
	const v0 = int32(7)
	const depth = 4
	forward := make([][]float64, depth+1)
	forward[0] = make([]float64, g.N())
	forward[0][v0] = 1
	for d := 0; d < depth; d++ {
		nxt := make([]float64, g.N())
		for x := int32(0); x < g.N(); x++ {
			if forward[d][x] == 0 {
				continue
			}
			in := g.In(x)
			if len(in) == 0 {
				continue
			}
			w := sqrtC * forward[d][x] / float64(len(in))
			for _, y := range in {
				nxt[y] += w
			}
		}
		forward[d+1] = nxt
	}
	// Pick a few targets w; Push from w must reproduce forward[d][w] at v0.
	p := NewProber(g, c)
	for _, w := range []int32{0, 13, 42} {
		byLayer := make([]map[int32]float64, depth+1)
		p.Push(w, depth, 0, nil, func(d int, nodes []int32, vals []float64) {
			m := map[int32]float64{}
			for i, v := range nodes {
				m[v] = vals[i]
			}
			byLayer[d] = m
		})
		for d := 1; d <= depth; d++ {
			want := forward[d][w]
			got := 0.0
			if byLayer[d] != nil {
				got = byLayer[d][v0]
			}
			if math.Abs(got-want) > 1e-12 {
				t.Fatalf("h^(%d)(%d,%d): push %v forward %v", d, v0, w, got, want)
			}
		}
	}
}

func TestPushThresholdPrunes(t *testing.T) {
	g, err := gen.BarabasiAlbert(200, 3, 5)
	if err != nil {
		t.Fatal(err)
	}
	p := NewProber(g, c)
	full, pruned := 0, 0
	p.Push(0, 3, 0, nil, func(d int, nodes []int32, vals []float64) { full += len(nodes) })
	p.Push(0, 3, 0.1, nil, func(d int, nodes []int32, vals []float64) { pruned += len(nodes) })
	if pruned >= full {
		t.Fatalf("threshold did not prune: %d vs %d", pruned, full)
	}
}

func TestPushExclusion(t *testing.T) {
	// Walks from node 0 reach 3 in two steps along in-edges via 1 or via 2,
	// which requires edges 3->1, 1->0, 3->2, 2->0. Excluding node 1 at
	// reverse layer 1 removes exactly half of h^(2)(0, 3).
	g := graph.MustFromPairs([2]int32{3, 1}, [2]int32{1, 0}, [2]int32{3, 2}, [2]int32{2, 0})
	p := NewProber(g, c)
	endVal := func(exclude func(int) int32) float64 {
		var got float64
		p.Push(3, 2, 0, exclude, func(d int, nodes []int32, vals []float64) {
			if d != 2 {
				return
			}
			for i, v := range nodes {
				if v == 0 {
					got = vals[i]
				}
			}
		})
		return got
	}
	full := endVal(nil)
	half := endVal(func(d int) int32 {
		if d == 1 {
			return 1 // remove the path through node 1
		}
		return -1
	})
	if math.Abs(full-2*half) > 1e-12 || half == 0 {
		t.Fatalf("exclusion wrong: full=%v half=%v", full, half)
	}
}

func TestPushSeedsLinearity(t *testing.T) {
	g, err := gen.CopyingModel(100, 4, 0.3, 9)
	if err != nil {
		t.Fatal(err)
	}
	p := NewProber(g, c)
	collect := func(seeds []int32, mass []float64) map[int32]float64 {
		out := map[int32]float64{}
		p.PushSeeds(seeds, mass, 2, 0, nil, func(d int, nodes []int32, vals []float64) {
			if d == 2 {
				for i, v := range nodes {
					out[v] = vals[i]
				}
			}
		})
		return out
	}
	a := collect([]int32{5}, []float64{1})
	b := collect([]int32{9}, []float64{1})
	ab := collect([]int32{5, 9}, []float64{1, 1})
	for v, val := range ab {
		if math.Abs(val-(a[v]+b[v])) > 1e-12 {
			t.Fatalf("linearity violated at %d: %v vs %v + %v", v, val, a[v], b[v])
		}
	}
}

func TestScratchCleanAcrossCalls(t *testing.T) {
	g, err := gen.CopyingModel(100, 4, 0.3, 11)
	if err != nil {
		t.Fatal(err)
	}
	p := NewProber(g, c)
	sum := func() float64 {
		var s float64
		p.Push(3, 3, 0, nil, func(d int, nodes []int32, vals []float64) {
			for _, v := range vals {
				s += v
			}
		})
		return s
	}
	a := sum()
	// Interleave a different probe, then repeat.
	p.Push(7, 5, 0, nil, nil)
	b := sum()
	if a != b {
		t.Fatalf("scratch leaked state: %v vs %v", a, b)
	}
}

func TestMaxLevels(t *testing.T) {
	if l := MaxLevels(0.6, 0.02); l < 10 || l > 25 {
		t.Fatalf("MaxLevels(0.6, 0.02) = %d", l)
	}
	if l := MaxLevels(0.6, 0); l != 1 {
		t.Fatalf("degenerate eps: %d", l)
	}
	if MaxLevels(0.6, 0.9) < 1 {
		t.Fatal("MaxLevels must be >= 1")
	}
}
