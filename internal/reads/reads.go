// Package reads implements READS (Jiang et al., PVLDB 2017 [12]), the
// random-walk-index baseline (its static variant, the fastest of the three
// algorithms in the paper, which is what the SimPush evaluation uses).
//
// Build samples r √c-walks of depth at most t from every node. The walks
// of one sample group are stored as inverted buckets keyed by (step, node):
// bucket(i, ℓ, w) lists every source v whose i-th walk visits w at step ℓ —
// the flattened equivalent of READS' SA-forest, with identical query
// semantics. A query retrieves u's i-th walk and harvests the buckets along
// it; the first coincidence per (v, i) is a meeting, so
//
//	s̃(u,v) = (1/r)·|{i : walk_i(u) first-meets walk_i(v)}|.
//
// Index memory is Θ(n·r·E[min(len,t)]) — the reason READS runs out of
// memory on large graphs in the paper's experiments.
package reads

import (
	"context"
	"fmt"
	"sort"

	"github.com/simrank/simpush/internal/graph"
	"github.com/simrank/simpush/internal/limits"
	"github.com/simrank/simpush/internal/rnd"
	"github.com/simrank/simpush/internal/walk"
)

// Params configures READS. The paper sweeps (R, T) over
// {(10,2), (50,5), (100,10), (500,10), (1000,20)}.
type Params struct {
	C    float64
	R    int // walks per node; default 100
	T    int // max walk depth; default 10
	Seed uint64
	// MaxIndexBytes aborts Build with limits.ErrIndexTooLarge (0 = off).
	MaxIndexBytes int64
}

func (p *Params) fill() {
	if p.C == 0 {
		p.C = 0.6
	}
	if p.R == 0 {
		p.R = 100
	}
	if p.T == 0 {
		p.T = 10
	}
}

// bucketGroup holds, for one (sample i, step ℓ), all (w, v) pairs sorted by
// w: positions[lo:hi] are the sources v whose walk visits w at this step.
type bucketGroup struct {
	walkNode []int32 // sorted walk positions w (one per source, duplicated)
	source   []int32 // parallel: the source v
}

// Engine is a READS engine; Build must run before Query.
type Engine struct {
	g     *graph.Graph
	p     Params
	built bool

	// uWalks[i] is the concatenated walk array for sample i of every node:
	// uWalkOff[i][v]..uWalkOff[i][v+1] is v's walk (steps 1..len).
	uWalkOff [][]int32
	uWalks   [][]int32
	// buckets[i][ℓ-1] is the inverted index for sample i, step ℓ.
	buckets [][]bucketGroup

	met      []int32 // per-query stamp array for first-meeting tracking
	metStamp int32
}

// New returns an unbuilt READS engine.
func New(g *graph.Graph, p Params) (*Engine, error) {
	p.fill()
	if p.C <= 0 || p.C >= 1 {
		return nil, fmt.Errorf("reads: c must be in (0,1), got %v", p.C)
	}
	if p.R < 1 || p.T < 1 {
		return nil, fmt.Errorf("reads: need R >= 1 and T >= 1")
	}
	return &Engine{g: g, p: p}, nil
}

// Name implements engine.Engine.
func (e *Engine) Name() string { return "READS" }

// Setting implements engine.Engine.
func (e *Engine) Setting() string { return fmt.Sprintf("r=%d,t=%d", e.p.R, e.p.T) }

// Indexed implements engine.Engine.
func (e *Engine) Indexed() bool { return true }

// IndexBytes implements engine.Engine.
func (e *Engine) IndexBytes() int64 {
	var b int64
	for i := range e.uWalks {
		b += int64(len(e.uWalks[i]))*4 + int64(len(e.uWalkOff[i]))*4
	}
	for i := range e.buckets {
		for _, bg := range e.buckets[i] {
			b += int64(len(bg.walkNode))*4 + int64(len(bg.source))*4
		}
	}
	b += int64(len(e.met)) * 4
	return b
}

// Build samples the walk index.
func (e *Engine) Build() error {
	n := e.g.N()
	// Projected size: n·R·E[len]·8B. E[len] ≈ min(√c/(1-√c), T).
	expLen := 0.9 / (1 - 0.775) // √c/(1-√c) for c=0.6 ≈ 3.44, conservative
	if float64(e.p.T) < expLen {
		expLen = float64(e.p.T)
	}
	projected := int64(float64(n) * float64(e.p.R) * expLen * 8)
	if e.p.MaxIndexBytes > 0 && projected > e.p.MaxIndexBytes {
		return &limits.ErrIndexTooLarge{Need: projected, Cap: e.p.MaxIndexBytes}
	}

	w := walk.NewWalker(e.g, e.p.C, rnd.New(e.p.Seed^0x5ca1ab1edeadbeef))
	e.uWalkOff = make([][]int32, e.p.R)
	e.uWalks = make([][]int32, e.p.R)
	e.buckets = make([][]bucketGroup, e.p.R)
	var size int64
	for i := 0; i < e.p.R; i++ {
		off := make([]int32, n+1)
		var flat []int32
		perStep := make([][]int32, e.p.T) // (w, v) pair lists per step
		for v := int32(0); v < n; v++ {
			steps := w.SampleTruncated(v, e.p.T)
			off[v+1] = off[v] + int32(len(steps))
			flat = append(flat, steps...)
			for l, node := range steps {
				perStep[l] = append(perStep[l], node, v)
			}
		}
		e.uWalkOff[i] = off
		e.uWalks[i] = flat
		groups := make([]bucketGroup, e.p.T)
		for l := 0; l < e.p.T; l++ {
			pairs := perStep[l]
			k := len(pairs) / 2
			idx := make([]int32, k)
			for j := range idx {
				idx[j] = int32(j)
			}
			sort.Slice(idx, func(a, b int) bool {
				return pairs[2*idx[a]] < pairs[2*idx[b]]
			})
			bg := bucketGroup{
				walkNode: make([]int32, k),
				source:   make([]int32, k),
			}
			for j, id := range idx {
				bg.walkNode[j] = pairs[2*id]
				bg.source[j] = pairs[2*id+1]
			}
			groups[l] = bg
			size += int64(k) * 8
		}
		e.buckets[i] = groups
		if e.p.MaxIndexBytes > 0 && size > e.p.MaxIndexBytes {
			e.uWalkOff, e.uWalks, e.buckets = nil, nil, nil
			return &limits.ErrIndexTooLarge{Need: size, Cap: e.p.MaxIndexBytes}
		}
	}
	e.met = make([]int32, n)
	e.built = true
	return nil
}

// Query intersects u's stored walks with the inverted buckets.
// Cancellation is checked between walk-set intersections.
func (e *Engine) Query(ctx context.Context, u int32) ([]float64, error) {
	if !e.built {
		return nil, fmt.Errorf("reads: Query before Build")
	}
	if !e.g.HasNode(u) {
		return nil, fmt.Errorf("reads: %w: node %d not in [0, %d)", limits.ErrNodeOutOfRange, u, e.g.N())
	}
	n := e.g.N()
	scores := make([]float64, n)
	inc := 1 / float64(e.p.R)
	for i := 0; i < e.p.R; i++ {
		if i&63 == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		e.metStamp++
		stamp := e.metStamp
		off := e.uWalkOff[i]
		myWalk := e.uWalks[i][off[u]:off[u+1]]
		for l, wNode := range myWalk {
			bg := &e.buckets[i][l]
			lo := sort.Search(len(bg.walkNode), func(j int) bool { return bg.walkNode[j] >= wNode })
			for j := lo; j < len(bg.walkNode) && bg.walkNode[j] == wNode; j++ {
				v := bg.source[j]
				if v == u || e.met[v] == stamp {
					continue
				}
				e.met[v] = stamp
				scores[v] += inc
			}
		}
	}
	scores[u] = 1
	return scores, nil
}
