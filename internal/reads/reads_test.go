package reads

import (
	"context"
	"errors"
	"math"
	"testing"

	"github.com/simrank/simpush/internal/exact"
	"github.com/simrank/simpush/internal/gen"
	"github.com/simrank/simpush/internal/graph"
	"github.com/simrank/simpush/internal/limits"
)

const c = 0.6

func built(t testing.TB, g *graph.Graph, p Params) *Engine {
	t.Helper()
	e, err := New(g, p)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Build(); err != nil {
		t.Fatal(err)
	}
	return e
}

func TestValidation(t *testing.T) {
	g := gen.Cycle(4)
	if _, err := New(g, Params{C: 3}); err == nil {
		t.Fatal("c=3 accepted")
	}
	if _, err := New(g, Params{R: -1}); err == nil {
		t.Fatal("R=-1 accepted")
	}
	e, err := New(g, Params{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Query(context.Background(), 0); err == nil {
		t.Fatal("query before build accepted")
	}
}

func TestMetadata(t *testing.T) {
	e := built(t, gen.Cycle(5), Params{R: 10, T: 3, Seed: 1})
	if e.Name() != "READS" || !e.Indexed() || e.Setting() == "" {
		t.Fatal("metadata wrong")
	}
	if e.IndexBytes() <= 0 {
		t.Fatal("index bytes missing")
	}
	if _, err := e.Query(context.Background(), 55); err == nil {
		t.Fatal("bad node accepted")
	}
}

func TestSharedParent(t *testing.T) {
	g := graph.MustFromPairs([2]int32{0, 1}, [2]int32{0, 2})
	e := built(t, g, Params{R: 5000, T: 5, Seed: 2})
	s, err := e.Query(context.Background(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s[2]-c) > 0.03 {
		t.Fatalf("s(1,2) = %v, want %v", s[2], c)
	}
	if s[1] != 1 {
		t.Fatal("self score")
	}
}

func TestCycleZero(t *testing.T) {
	e := built(t, gen.Cycle(10), Params{R: 200, T: 10, Seed: 3})
	s, err := e.Query(context.Background(), 0)
	if err != nil {
		t.Fatal(err)
	}
	for v := 1; v < 10; v++ {
		if s[v] != 0 {
			t.Fatalf("cycle s(0,%d) = %v", v, s[v])
		}
	}
}

func TestAccuracyVsExact(t *testing.T) {
	g, err := gen.CopyingModel(120, 5, 0.3, 4)
	if err != nil {
		t.Fatal(err)
	}
	ex, err := exact.AllPairs(g, exact.Options{C: c})
	if err != nil {
		t.Fatal(err)
	}
	e := built(t, g, Params{R: 2000, T: 12, Seed: 5})
	for _, u := range []int32{3, 40, 99} {
		s, err := e.Query(context.Background(), u)
		if err != nil {
			t.Fatal(err)
		}
		var worst, sum float64
		for v := int32(0); v < g.N(); v++ {
			if v == u {
				continue
			}
			d := math.Abs(ex.At(u, v) - s[v])
			sum += d
			if d > worst {
				worst = d
			}
		}
		if avg := sum / float64(g.N()-1); avg > 0.01 {
			t.Fatalf("u=%d: avg error %v", u, avg)
		}
		if worst > 0.06 { // sampling std at R=2000 is ~0.011
			t.Fatalf("u=%d: worst error %v", u, worst)
		}
	}
}

func TestFirstMeetingOnly(t *testing.T) {
	// Complete graph: repeated meetings are common; READS must still count
	// each sample at most once (scores bounded by 1).
	e := built(t, gen.Complete(20), Params{R: 500, T: 10, Seed: 7})
	s, err := e.Query(context.Background(), 0)
	if err != nil {
		t.Fatal(err)
	}
	for v, val := range s {
		if val < 0 || val > 1 {
			t.Fatalf("score[%d] = %v out of [0,1]", v, val)
		}
	}
}

func TestIndexCap(t *testing.T) {
	g, err := gen.CopyingModel(1000, 5, 0.3, 9)
	if err != nil {
		t.Fatal(err)
	}
	e, err := New(g, Params{R: 1000, T: 20, MaxIndexBytes: 1 << 10})
	if err != nil {
		t.Fatal(err)
	}
	err = e.Build()
	var tooBig *limits.ErrIndexTooLarge
	if !errors.As(err, &tooBig) {
		t.Fatalf("expected ErrIndexTooLarge, got %v", err)
	}
}

func TestDeterministicIndex(t *testing.T) {
	g, err := gen.ErdosRenyi(50, 300, 11)
	if err != nil {
		t.Fatal(err)
	}
	a := built(t, g, Params{R: 50, T: 5, Seed: 42})
	b := built(t, g, Params{R: 50, T: 5, Seed: 42})
	sa, _ := a.Query(context.Background(), 7)
	sb, _ := b.Query(context.Background(), 7)
	for v := range sa {
		if sa[v] != sb[v] {
			t.Fatal("same seed produced different indexes")
		}
	}
}
