package simpush

import (
	"context"
	"fmt"

	"github.com/simrank/simpush/internal/eval"
)

// AdaptiveTopK is the result of an adaptive top-k search: the ranked
// answer, the precision it was accepted at, and how many query rounds ran.
type AdaptiveTopK struct {
	Results []Ranked
	Epsilon float64 // accepted precision
	Rounds  int     // number of queries executed
}

// TopKAdaptive answers a top-k single-source query with automatic
// precision selection: it starts from a coarse error bound and halves it
// until the top-k set is provably stable — every returned node's score
// exceeds the (k+1)-th score by more than twice the current bound, or the
// floor epsilon is reached. For top-k workloads this is typically several
// times faster than always querying at the finest setting.
//
// All rounds run on a single pooled engine via per-query ε overrides, so
// the search reuses one set of scratch instead of building an engine per
// round — and the whole search is pinned to one snapshot, so the 2ε
// stability certificate always speaks about a single committed graph
// state even while the source keeps mutating. startEps and floorEps bound
// the search (defaults 0.08 and 0.002 when zero); other QueryOption values
// apply to every round, except that WithEpsilon is overridden by the
// round's ε.
func (c *Client) TopKAdaptive(ctx context.Context, u int32, k int, startEps, floorEps float64, opts ...QueryOption) (*AdaptiveTopK, error) {
	g, _, err := c.snapshot()
	if err != nil {
		return nil, err
	}
	return c.topKAdaptiveOn(ctx, g, u, k, startEps, floorEps, opts)
}

func (c *Client) topKAdaptiveOn(ctx context.Context, g *Graph, u int32, k int, startEps, floorEps float64, opts []QueryOption) (_ *AdaptiveTopK, err error) {
	if k < 1 {
		return nil, fmt.Errorf("simpush: %w: k must be >= 1, got %d", ErrInvalidOptions, k)
	}
	if err := c.begin(); err != nil {
		return nil, err
	}
	defer func() { c.end(err) }()
	if startEps == 0 {
		startEps = 0.08
	}
	if floorEps == 0 {
		floorEps = 0.002
	}
	if startEps < floorEps {
		startEps = floorEps
	}
	eng, err := c.acquireAt(g)
	if err != nil {
		return nil, err
	}
	defer c.release(eng)

	base := buildQueryOpts(opts)
	out := &AdaptiveTopK{}
	for eps := startEps; ; eps /= 2 {
		qo := base
		qo.Epsilon = eps
		c.stats.queries.Add(1)
		res, err := eng.QueryCtx(ctx, u, qo)
		if err != nil {
			return nil, err
		}
		out.Rounds++
		out.Epsilon = eps
		ids := eval.TopK(res.Scores, k+1, u)
		out.Results = rankedFrom(res.Scores, ids, k)
		if eps <= floorEps {
			return out, nil
		}
		if stableTopK(res.Scores, ids, k, eps) {
			return out, nil
		}
	}
}

// TopKAdaptive runs the adaptive top-k search from u.
//
// Deprecated: use Client.TopKAdaptive.
func (e *Engine) TopKAdaptive(u int32, k int, startEps, floorEps float64) (*AdaptiveTopK, error) {
	return e.c.TopKAdaptive(context.Background(), u, k, startEps, floorEps)
}

// stableTopK reports whether the gap between the k-th and (k+1)-th scores
// exceeds 2ε: since every estimate is within ε of the truth (one-sided
// underestimates within ε, no overestimate), a 2ε gap certifies the set.
func stableTopK(scores []float64, ids []int32, k int, eps float64) bool {
	if len(ids) <= k {
		return true // fewer than k+1 candidates exist at all
	}
	kth := scores[ids[k-1]]
	next := scores[ids[k]]
	return kth-next > 2*eps
}

// rankedFrom materializes Ranked entries for at most k of the given ids;
// k <= 0 yields an empty slice.
func rankedFrom(scores []float64, ids []int32, k int) []Ranked {
	if k < 0 {
		k = 0
	}
	if len(ids) > k {
		ids = ids[:k]
	}
	out := make([]Ranked, len(ids))
	for i, v := range ids {
		out[i] = Ranked{Node: v, Score: scores[v]}
	}
	return out
}
