// Benchmarks reproducing the SimPush paper's evaluation, one testing.B
// benchmark per table/figure. Each iteration runs the corresponding
// experiment at reduced scale (so `go test -bench=.` stays in commodity
// time budgets); cmd/simbench runs the same experiments at full scale.
package simpush

import (
	"context"
	"io"
	"testing"
	"time"

	"github.com/simrank/simpush/internal/bench"
	"github.com/simrank/simpush/internal/core"
	"github.com/simrank/simpush/internal/engine"
	"github.com/simrank/simpush/internal/gen"
)

// benchOptions are the reduced-scale harness settings used by the
// per-figure benchmarks below.
func benchOptions() bench.Options {
	return bench.Options{
		Scale:         0.05,
		Queries:       2,
		K:             20,
		TruthSamples:  5000,
		MaxIndexBytes: 2 << 30,
		WalkCap:       20000,
		MaxQueryTime:  10 * time.Second,
		Seed:          0xbe9c,
	}
}

// benchDatasets are the stand-ins exercised by the figure benchmarks: one
// web graph and one social graph (the full eight run via cmd/simbench).
func benchDatasets() []gen.Dataset {
	return []gen.Dataset{gen.Roster[0], gen.Roster[2]}
}

func BenchmarkTable1Scaling(b *testing.B) {
	opt := benchOptions()
	opt.Scale = 0.25
	for i := 0; i < b.N; i++ {
		if err := bench.Table1(io.Discard, opt); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable4Datasets(b *testing.B) {
	opt := benchOptions()
	for i := 0; i < b.N; i++ {
		if err := bench.Table4(io.Discard, opt); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure4ErrorVsTime(b *testing.B) {
	opt := benchOptions()
	for i := 0; i < b.N; i++ {
		if err := bench.Figure4(io.Discard, opt, benchDatasets()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure5PrecisionVsTime(b *testing.B) {
	opt := benchOptions()
	for i := 0; i < b.N; i++ {
		if err := bench.Figure5(io.Discard, opt, benchDatasets()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure6ErrorVsMemory(b *testing.B) {
	opt := benchOptions()
	for i := 0; i < b.N; i++ {
		if err := bench.Figure6(io.Discard, opt, benchDatasets()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure7ClueWeb(b *testing.B) {
	opt := benchOptions()
	for i := 0; i < b.N; i++ {
		if err := bench.Figure7(io.Discard, opt); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLevelStats(b *testing.B) {
	opt := benchOptions()
	for i := 0; i < b.N; i++ {
		if err := bench.LevelStats(io.Discard, opt, benchDatasets()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationGammaAndWalks(b *testing.B) {
	opt := benchOptions()
	for i := 0; i < b.N; i++ {
		if err := bench.Ablations(io.Discard, opt, benchDatasets()[:1]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimPushQuery measures the headline metric: one single-source
// query on a web graph, per epsilon setting.
func BenchmarkSimPushQuery(b *testing.B) {
	g, err := SyntheticWebGraph(100000, 10, 1)
	if err != nil {
		b.Fatal(err)
	}
	for _, eps := range engine.SimPushEpsilons {
		b.Run(settingName("eps", eps), func(b *testing.B) {
			sp, err := core.New(g, core.Options{Epsilon: eps, Seed: 1})
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := sp.Query(int32(i) % g.N()); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkMethodsQuery compares one query per method at the middle
// parameter setting on a common web graph — the per-method spread behind
// Figure 4's vertical axis.
func BenchmarkMethodsQuery(b *testing.B) {
	g, err := SyntheticWebGraph(20000, 8, 3)
	if err != nil {
		b.Fatal(err)
	}
	for _, name := range Baselines() {
		b.Run(name, func(b *testing.B) {
			m, err := NewMethod(name, g, 2, 7)
			if err != nil {
				b.Fatal(err)
			}
			if err := m.Build(); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := m.Query(context.Background(), int32(i)%g.N()); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func settingName(prefix string, v float64) string {
	switch v {
	case 0.05:
		return prefix + "_0.05"
	case 0.02:
		return prefix + "_0.02"
	case 0.01:
		return prefix + "_0.01"
	case 0.005:
		return prefix + "_0.005"
	default:
		return prefix + "_0.002"
	}
}

// BenchmarkIndexBuild measures preprocessing cost of the index-based
// methods at their middle setting — the cost paid on every graph update,
// which SimPush avoids entirely (the motivation of paper §1).
func BenchmarkIndexBuild(b *testing.B) {
	g, err := SyntheticWebGraph(20000, 8, 3)
	if err != nil {
		b.Fatal(err)
	}
	for _, name := range []string{"PRSim", "SLING", "READS", "TSF"} {
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				m, err := NewMethod(name, g, 2, uint64(i))
				if err != nil {
					b.Fatal(err)
				}
				if err := m.Build(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkDynamicRequery measures the serving cost of an insert-then-query
// workload on an evolving graph, comparing the old orchestration (snapshot,
// throw the Client away, rebuild every engine's O(n) scratch) against the
// live-graph API (one long-lived Client whose engines rebind in place).
// The delta is the allocation churn the GraphSource redesign removes from
// every update cycle.
func BenchmarkDynamicRequery(b *testing.B) {
	const (
		n       = 50000
		workers = 4
	)
	ctx := context.Background()
	opt := Options{Epsilon: 0.05, Seed: 11}
	seedDynamic := func(b *testing.B) *DynamicGraph {
		b.Helper()
		base, err := SyntheticWebGraph(n, 10, 11)
		if err != nil {
			b.Fatal(err)
		}
		return DynamicFromGraph(base)
	}
	mutate := func(b *testing.B, d *DynamicGraph, i int) {
		b.Helper()
		f := int32(i*2654435761) % n
		if f < 0 {
			f = -f
		}
		if err := d.AddEdge(f, (f+1)%n); err != nil {
			b.Fatal(err)
		}
	}
	queries := func(i int) []int32 {
		qs := make([]int32, workers)
		for j := range qs {
			qs[j] = int32((i*workers + j) * 6151 % n)
		}
		return qs
	}

	b.Run("rebuild-client", func(b *testing.B) {
		d := seedDynamic(b)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			mutate(b, d, i)
			g, err := d.Snapshot()
			if err != nil {
				b.Fatal(err)
			}
			c, err := NewClient(g, opt)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := c.BatchSingleSource(ctx, queries(i), workers); err != nil {
				b.Fatal(err)
			}
		}
	})

	b.Run("rebind", func(b *testing.B) {
		d := seedDynamic(b)
		c, err := NewClient(d, opt)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			mutate(b, d, i)
			if _, err := c.BatchSingleSource(ctx, queries(i), workers); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkBatchThroughput measures multi-query throughput of the batch
// API with all cores.
func BenchmarkBatchThroughput(b *testing.B) {
	g, err := SyntheticWebGraph(50000, 10, 9)
	if err != nil {
		b.Fatal(err)
	}
	queries := make([]int32, 8)
	for i := range queries {
		queries[i] = int32((i + 1) * 6151 % int(g.N()))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := BatchSingleSource(g, queries, Options{Epsilon: 0.02, Seed: uint64(i)}, 0); err != nil {
			b.Fatal(err)
		}
	}
}
