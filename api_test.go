package simpush

import (
	"context"
	"math"
	"os"
	"path/filepath"
	"testing"
)

func TestQuickstartFlow(t *testing.T) {
	g, err := SyntheticWebGraph(2000, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := New(g, Options{Epsilon: 0.02, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.SingleSource(100)
	if err != nil {
		t.Fatal(err)
	}
	if res.Scores[100] != 1 {
		t.Fatal("self score != 1")
	}
	top, err := eng.TopK(100, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(top) != 10 {
		t.Fatalf("topk len = %d", len(top))
	}
	for i := 1; i < len(top); i++ {
		if top[i].Score > top[i-1].Score {
			t.Fatal("topk not sorted")
		}
		if top[i].Node == 100 {
			t.Fatal("query node in topk")
		}
	}
	if eng.Graph() != g {
		t.Fatal("graph accessor")
	}
}

func TestAccuracyAgainstOracles(t *testing.T) {
	g, err := SyntheticWebGraph(1500, 6, 3)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := New(g, Options{Epsilon: 0.01, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	u := int32(7)
	res, err := eng.SingleSource(u)
	if err != nil {
		t.Fatal(err)
	}
	exactRow, err := ExactSingleSource(g, u, 0.6)
	if err != nil {
		t.Fatal(err)
	}
	for v := int32(0); v < g.N(); v++ {
		if v == u {
			continue
		}
		if d := exactRow[v] - res.Scores[v]; d > 0.01 || d < -1e-6 {
			t.Fatalf("v=%d: exact %v simpush %v", v, exactRow[v], res.Scores[v])
		}
	}
	// Monte Carlo spot check on the strongest pair.
	top := TopK(res.Scores, 1, u)
	if len(top) == 1 && top[0].Score > 0.05 {
		mcVal := MonteCarloPair(g, u, top[0].Node, 0.6, 100000, 5)
		if math.Abs(mcVal-exactRow[top[0].Node]) > 0.02 {
			t.Fatalf("MC %v vs exact %v", mcVal, exactRow[top[0].Node])
		}
	}
}

func TestEdgeListRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "g.txt")
	if err := os.WriteFile(path, []byte("# comment\n0 1\n1 2\n2 0\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	g, err := LoadEdgeList(path, false)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 3 || g.M() != 3 {
		t.Fatalf("loaded %v", g)
	}
	gu, err := LoadEdgeList(path, true)
	if err != nil {
		t.Fatal(err)
	}
	if gu.M() != 6 {
		t.Fatalf("undirected m = %d", gu.M())
	}
}

func TestFromEdges(t *testing.T) {
	g, err := FromEdges([]int32{0, 1}, []int32{1, 2}, false)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 3 || g.M() != 2 {
		t.Fatalf("%v", g)
	}
	if _, err := FromEdges([]int32{0}, []int32{}, false); err == nil {
		t.Fatal("mismatch accepted")
	}
}

func TestNewMethodAll(t *testing.T) {
	g, err := SyntheticWebGraph(1200, 5, 9)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range Baselines() {
		m, err := NewMethod(name, g, 1, 42)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := m.Build(); err != nil {
			t.Fatalf("%s build: %v", name, err)
		}
		s, err := m.Query(context.Background(), 10)
		if err != nil {
			t.Fatalf("%s query: %v", name, err)
		}
		if s[10] != 1 {
			t.Fatalf("%s: self score %v", name, s[10])
		}
	}
	if _, err := NewMethod("SimPush", g, 9, 1); err == nil {
		t.Fatal("rank 9 accepted")
	}
	if _, err := NewMethod("Unknown", g, 0, 1); err == nil {
		t.Fatal("unknown method accepted")
	}
}

func TestDatasets(t *testing.T) {
	names := DatasetNames()
	if len(names) != 9 {
		t.Fatalf("dataset count = %d", len(names))
	}
	g, err := Dataset(names[0], 0.02)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() < 1000 {
		t.Fatalf("tiny dataset n = %d", g.N())
	}
	if _, err := Dataset("nope", 1); err == nil {
		t.Fatal("unknown dataset accepted")
	}
}

func TestSyntheticSocialGraph(t *testing.T) {
	g, err := SyntheticSocialGraph(2000, 10, 7)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 2000 {
		t.Fatalf("n = %d", g.N())
	}
}

func TestSortRankedStable(t *testing.T) {
	rs := []Ranked{{3, 0.5}, {1, 0.9}, {2, 0.5}}
	SortRankedStable(rs)
	if rs[0].Node != 1 || rs[1].Node != 2 || rs[2].Node != 3 {
		t.Fatalf("sorted = %v", rs)
	}
}

func TestPairQuery(t *testing.T) {
	g, err := FromEdges([]int32{0, 0}, []int32{1, 2}, false)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := New(g, Options{Epsilon: 0.01, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	v, err := eng.Pair(1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(v-0.6) > 0.01 {
		t.Fatalf("Pair(1,2) = %v, want 0.6", v)
	}
	if _, err := eng.Pair(1, 99); err == nil {
		t.Fatal("bad target accepted")
	}
	self, err := eng.Pair(1, 1)
	if err != nil || self != 1 {
		t.Fatalf("Pair self = %v, %v", self, err)
	}
}
