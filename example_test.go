package simpush_test

import (
	"fmt"

	simpush "github.com/simrank/simpush"
)

// The two children of a shared parent have SimRank exactly c = 0.6: their
// √c-walks meet at the parent with probability c and can never re-meet.
func Example() {
	g, err := simpush.FromEdges([]int32{0, 0}, []int32{1, 2}, false)
	if err != nil {
		panic(err)
	}
	eng, err := simpush.New(g, simpush.Options{Epsilon: 0.005, Seed: 1})
	if err != nil {
		panic(err)
	}
	s, err := eng.Pair(1, 2)
	if err != nil {
		panic(err)
	}
	fmt.Printf("s(1,2) = %.2f\n", s)
	// Output: s(1,2) = 0.60
}

func ExampleEngine_TopK() {
	// A 4-node graph: 3 and 4 are two-hop siblings via 1 and 2.
	g, err := simpush.FromEdges(
		[]int32{0, 0, 1, 2},
		[]int32{1, 2, 3, 4}, false)
	if err != nil {
		panic(err)
	}
	eng, err := simpush.New(g, simpush.Options{Epsilon: 0.005, Seed: 1})
	if err != nil {
		panic(err)
	}
	top, err := eng.TopK(3, 1)
	if err != nil {
		panic(err)
	}
	fmt.Printf("most similar to 3: node %d (%.2f)\n", top[0].Node, top[0].Score)
	// Output: most similar to 3: node 4 (0.36)
}

func ExampleBatchSingleSource() {
	g, err := simpush.FromEdges([]int32{0, 0, 0}, []int32{1, 2, 3}, false)
	if err != nil {
		panic(err)
	}
	results, err := simpush.BatchSingleSource(g, []int32{1, 2}, simpush.Options{Epsilon: 0.005, Seed: 1}, 2)
	if err != nil {
		panic(err)
	}
	fmt.Printf("s(1,2) = %.2f, s(2,3) = %.2f\n", results[0].Scores[2], results[1].Scores[3])
	// Output: s(1,2) = 0.60, s(2,3) = 0.60
}

func ExampleTopK() {
	scores := []float64{1.0, 0.2, 0.8, 0.5}
	for _, r := range simpush.TopK(scores, 2, 0) {
		fmt.Printf("%d: %.1f\n", r.Node, r.Score)
	}
	// Output:
	// 2: 0.8
	// 3: 0.5
}
