GO ?= go

.PHONY: all build test race vet lint fmt check bench bench-json serve smoke cluster-smoke cluster-bench workload-smoke obs-smoke cache-delta-bench

all: check

build:
	$(GO) build ./...

test:
	$(GO) test -shuffle=on ./...

race:
	$(GO) test -race -count=1 ./...

vet:
	$(GO) vet ./...

# Repo-specific invariant checks (epoch-keyed caching, deterministic
# merges, ctx cancellation, lock scope). Runs simlint through the vet
# driver so test files are covered too; see docs/static-analysis.md.
lint:
	$(GO) build -o bin/simlint ./cmd/simlint
	$(GO) vet -vettool=$(CURDIR)/bin/simlint ./...

# Fails if any file is not gofmt-formatted.
fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

check: fmt vet lint race obs-smoke

bench:
	$(GO) test -bench=. -benchtime=1x -run=^$$ ./...

# Serial-vs-parallel stage benchmarks → BENCH_PR5.json (perf trajectory).
bench-json:
	./scripts/bench.sh

# Serve a synthetic dataset stand-in on :8080 (override with ARGS).
serve:
	$(GO) run ./cmd/simrankd -dataset dblp-sim -scale 0.25 -addr :8080 $(ARGS)

# End-to-end smoke test of the daemon (build, start, curl, shutdown).
smoke:
	./scripts/simrankd_smoke.sh

# End-to-end smoke test of the replicated cluster: leader + 2 followers
# behind simproxy — mutation streaming, bit-identical convergence,
# follower failover.
cluster-smoke:
	./scripts/cluster_smoke.sh

# Cache-affinity routing benchmark (hash vs round-robin aggregate hit
# rate across 3 replicas) → BENCH_PR6.json.
cluster-bench:
	./scripts/cluster_bench.sh

# Workload scenario smoke: simload drives every preset against a live
# simrankd on a fixture graph → BENCH_PR8.json (SLO-scored report).
# Override with e.g. DURATION=30s RATE_SCALE=1 for a real run.
workload-smoke:
	./scripts/workload_smoke.sh

# Observability smoke: request-id echo + slow-query log + /debug/queries
# spans, Prometheus-grammar validation of both daemons' /metricsz, and a
# tracing-disabled SLO run → BENCH_PR9.json (see docs/observability.md).
obs-smoke:
	./scripts/obs_smoke.sh

# Epoch-delta cache carry-forward benchmark: carry-on vs abandon-on-epoch
# hit rate under a community-clustered mutation mix → BENCH_PR10.json.
# Fails unless carry's hit rate is >= 3x the baseline's with entries
# actually carried (see docs/cache.md).
cache-delta-bench:
	./scripts/cache_delta_bench.sh
