GO ?= go

.PHONY: all build test race vet fmt check bench

all: check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# Fails if any file is not gofmt-formatted.
fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

check: fmt vet race

bench:
	$(GO) test -bench=. -benchtime=1x -run=^$$ ./...
