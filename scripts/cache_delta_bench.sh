#!/usr/bin/env bash
# Epoch-delta cache carry-forward benchmark: a fraud-neighbors-style
# mutation mix (point mutations interleaved with a recurring read working
# set) over a clustered community graph, run twice — carry-forward on
# (default) vs the abandon-on-epoch baseline (-cache-carry=false) — and
# scored on cache hit rate. Emits BENCH_PR10.json and fails unless the
# carry configuration's hit rate is >= 3x the baseline's with
# cache_carried_total > 0. Used by CI (JSON uploaded as an artifact) and
# runnable locally: make cache-delta-bench [OUT=BENCH_PR10.json]
set -euo pipefail
cd "$(dirname "$0")/.."

OUT="${OUT:-BENCH_PR10.json}"
CLUSTERS="${CLUSTERS:-60}"
SIZE="${SIZE:-20}"
ROUNDS="${ROUNDS:-10}"
if [ "${1:-}" = "--short" ]; then CLUSTERS=24; ROUNDS=5; fi

tmp=$(mktemp -d)
pid=""
cleanup() {
  [ -n "$pid" ] && kill "$pid" 2>/dev/null || true
  rm -rf "$tmp"
}
trap cleanup EXIT

fail() {
  echo "cache delta bench: FAIL: $1"
  echo "--- daemon log ---"; tail -20 "$tmp/log" 2>/dev/null || true
  exit 1
}

# Fixture: CLUSTERS disconnected communities of SIZE nodes each (a ring
# plus hub chords). Disconnection is the workload shape carry-forward
# targets: a mutation's affected set stays inside one community, so every
# other community's cached rows are provably unchanged.
awk -v C="$CLUSTERS" -v S="$SIZE" 'BEGIN {
  for (c = 0; c < C; c++) {
    b = c * S
    for (i = 0; i < S; i++) print b + i, b + (i + 1) % S
    for (i = 2; i < S; i++) print b, b + i
  }
}' > "$tmp/g.txt"

go build -o "$tmp/simrankd" ./cmd/simrankd

start_daemon() { # $@: extra simrankd flags
  : > "$tmp/log"
  "$tmp/simrankd" -graph "$tmp/g.txt" -addr 127.0.0.1:0 -eps 0.1 "$@" 2> "$tmp/log" &
  pid=$!
  addr=""
  for _ in $(seq 1 100); do
    addr=$(sed -n 's/.* addr=\(127\.0\.0\.1:[0-9]*\).*/\1/p' "$tmp/log" | head -1)
    [ -n "$addr" ] && break
    kill -0 "$pid" 2>/dev/null || fail "daemon died at startup"
    sleep 0.1
  done
  [ -n "$addr" ] || fail "daemon never reported its address"
}

stop_daemon() {
  kill -TERM "$pid" 2>/dev/null || true
  wait "$pid" 2>/dev/null || true
  pid=""
}

# One workload pass against the running daemon; responses collected in $1.
# Seed phase: one single-source entry per community (all cold, uncounted).
# Measured phase: each round mutates one community, then re-reads the full
# working set — the epoch advances every round, so without carry-forward
# every read recomputes.
run_workload() {
  : > "$1"
  for ((c = 0; c < CLUSTERS; c++)); do
    curl -s "http://$addr/v1/single-source?node=$((c * SIZE + 3))&seed=5" > /dev/null
  done
  for ((r = 1; r <= ROUNDS; r++)); do
    mc=$(((r * 13) % CLUSTERS)); b=$((mc * SIZE))
    curl -s -X POST "http://$addr/v1/edges" \
      -d "{\"from\":$((b + 4)),\"to\":$((b + 9 + r % 5))}" > /dev/null
    for ((c = 0; c < CLUSTERS; c++)); do
      curl -s "http://$addr/v1/single-source?node=$((c * SIZE + 3))&seed=5" >> "$1"
      echo >> "$1"
    done
  done
}

total=$((ROUNDS * CLUSTERS))

start_daemon
run_workload "$tmp/carry.out"
curl -s "http://$addr/metricsz" > "$tmp/metrics.txt"
stop_daemon
carry_hits=$(grep -c '"cache":"hit"' "$tmp/carry.out" || true)
carried=$(awk '$1 == "simrankd_cache_carried_total" {print $2}' "$tmp/metrics.txt")
carry_dropped=$(awk '$1 == "simrankd_cache_carry_dropped_total" {print $2}' "$tmp/metrics.txt")
commits=$(awk '$1 == "simrankd_delta_commits_total" {print $2}' "$tmp/metrics.txt")

start_daemon -cache-carry=false
run_workload "$tmp/base.out"
stop_daemon
base_hits=$(grep -c '"cache":"hit"' "$tmp/base.out" || true)

[ -n "$carried" ] || fail "/metricsz missing simrankd_cache_carried_total"
[ "$carried" -gt 0 ] || fail "cache_carried_total is 0: carry-forward never moved an entry"
[ "$commits" -ge "$ROUNDS" ] || fail "delta commits $commits < $ROUNDS mutation rounds"

# Hit-rate gate: carry must be >= 3x baseline. The baseline legitimately
# lands at zero hits (every round strands the whole cache), so the ratio
# is computed with a guard: zero baseline passes iff carry saw any hit.
awk -v ch="$carry_hits" -v bh="$base_hits" -v t="$total" \
    -v carried="$carried" -v dropped="$carry_dropped" -v commits="$commits" \
    -v C="$CLUSTERS" -v S="$SIZE" -v R="$ROUNDS" -v out="$OUT" 'BEGIN {
  cr = ch / t; br = bh / t
  ratio = (bh > 0) ? cr / br : (ch > 0 ? "null" : 0)
  pass = (bh > 0) ? (cr >= 3 * br) : (ch > 0)
  printf "{\n" > out
  printf "  \"bench\": \"cache_delta_carry\",\n" > out
  printf "  \"graph\": {\"clusters\": %d, \"cluster_size\": %d, \"nodes\": %d},\n", C, S, C * S > out
  printf "  \"rounds\": %d, \"queries_per_config\": %d,\n", R, t > out
  printf "  \"carry\": {\"hits\": %d, \"hit_rate\": %.4f, \"cache_carried_total\": %d, \"cache_carry_dropped_total\": %d, \"delta_commits_total\": %d},\n", ch, cr, carried, dropped, commits > out
  printf "  \"baseline\": {\"hits\": %d, \"hit_rate\": %.4f},\n", bh, br > out
  printf "  \"hit_rate_ratio\": %s,\n", ratio > out
  printf "  \"pass\": %s\n}\n", pass ? "true" : "false" > out
  exit pass ? 0 : 1
}' || fail "carry hit rate $carry_hits/$total not >= 3x baseline $base_hits/$total"

echo "cache delta bench: OK ($OUT: carry $carry_hits/$total hits vs baseline $base_hits/$total, carried=$carried)"
