#!/usr/bin/env bash
# scripts/cluster_bench.sh [--short] — PR 6 perf trajectory.
#
# Measures what cache-affinity routing buys: boots a 3-replica cluster
# (leader + 2 followers) behind simproxy twice — once with round-robin
# routing, once with consistent-hash — drives the same hot repeated-query
# workload through the proxy with simbench -http, and emits
# BENCH_PR6.json with the aggregate cache hit rate per policy. Each
# replica's cache is deliberately smaller than the hot set, so
# round-robin (every replica sees every node) thrashes while hash
# routing (each replica owns a slice of the hot set) fits; the "gain"
# field records the measured advantage. The cluster is torn down and
# rebuilt cold between rounds so neither policy inherits a warm cache.
# --short shrinks the load window for CI.
set -euo pipefail
cd "$(dirname "$0")/.."

WINDOW=15s
WARMUP=5s
[ "${1:-}" = "--short" ] && { WINDOW=6s; WARMUP=3s; }
OUT=BENCH_PR6.json

# Hot-set / cache sizing that separates the policies: 96 hot nodes
# against 32 cache entries per replica (3 replicas * 32 = the hot set).
HOT=96
CACHE_ENTRIES=32

tmp=$(mktemp -d)
pids=()
stop_cluster() {
  for p in "${pids[@]:-}"; do kill "$p" 2>/dev/null || true; done
  for p in "${pids[@]:-}"; do wait "$p" 2>/dev/null || true; done
  pids=()
}
cleanup() { stop_cluster; rm -rf "$tmp"; }
trap cleanup EXIT

# A deterministic 200-node graph with enough structure to query.
awk 'BEGIN { for (i = 0; i < 200; i++) { print i, (i*7+1)%200; print i, (i*13+5)%200; print (i*3+2)%200, i } }' \
  > "$tmp/g.txt"

go build -o "$tmp/simrankd" ./cmd/simrankd
go build -o "$tmp/simproxy" ./cmd/simproxy
go build -o "$tmp/simbench" ./cmd/simbench

wait_addr() {
  local log=$1 addr=""
  for _ in $(seq 1 100); do
    addr=$(sed -n 's/.* addr=\(127\.0\.0\.1:[0-9]*\).*/\1/p' "$log" | head -1)
    [ -n "$addr" ] && { echo "$addr"; return 0; }
    sleep 0.1
  done
  return 1
}

# run_policy POLICY -> writes the simbench report to $tmp/report.$POLICY
run_policy() {
  local policy=$1
  "$tmp/simrankd" -graph "$tmp/g.txt" -addr 127.0.0.1:0 -lead \
    -cache-entries "$CACHE_ENTRIES" 2> "$tmp/leader.log" &
  pids+=($!)
  local leader
  leader=$(wait_addr "$tmp/leader.log")
  local followers=""
  for i in 1 2; do
    "$tmp/simrankd" -graph "$tmp/g.txt" -addr 127.0.0.1:0 \
      -follow "http://$leader" -cache-entries "$CACHE_ENTRIES" 2> "$tmp/follower$i.log" &
    pids+=($!)
    followers="$followers,$(wait_addr "$tmp/follower$i.log")"
  done
  "$tmp/simproxy" -addr 127.0.0.1:0 -replicas "$leader$followers" \
    -policy "$policy" -probe-interval 200ms 2> "$tmp/proxy.log" &
  pids+=($!)
  local proxy
  proxy=$(wait_addr "$tmp/proxy.log")

  for _ in $(seq 1 100); do
    if curl -s "http://$proxy/healthz" | grep -q '"routable":3'; then break; fi
    sleep 0.1
  done

  # Warm the caches under the policy being measured, then measure.
  "$tmp/simbench" -http "http://$proxy" -http-duration "$WARMUP" \
    -http-concurrency 8 -http-hot "$HOT" -http-hotfrac 1.0 -v=false > /dev/null
  "$tmp/simbench" -http "http://$proxy" -http-duration "$WINDOW" \
    -http-concurrency 8 -http-hot "$HOT" -http-hotfrac 1.0 -v=false \
    > "$tmp/report.$policy"
  stop_cluster
}

run_policy round-robin
run_policy hash

metric() { awk -F'\t' -v m="$2" '$1 == m { print $2 }' "$tmp/report.$1"; }

RR_HIT=$(metric round-robin cache_hit_rate)
HASH_HIT=$(metric hash cache_hit_rate)
RR_RPS=$(metric round-robin throughput_rps)
HASH_RPS=$(metric hash throughput_rps)

{
  echo "{"
  echo "  \"pr\": 6,"
  echo "  \"description\": \"cache-affinity routing: aggregate hit rate across a 3-replica cluster, hash vs round-robin\","
  echo "  \"replicas\": 3,"
  echo "  \"hot_nodes\": $HOT,"
  echo "  \"cache_entries_per_replica\": $CACHE_ENTRIES,"
  echo "  \"window\": \"$WINDOW\","
  echo "  \"policies\": {"
  echo "    \"round-robin\": {\"cache_hit_rate\": $RR_HIT, \"throughput_rps\": $RR_RPS},"
  echo "    \"hash\": {\"cache_hit_rate\": $HASH_HIT, \"throughput_rps\": $HASH_RPS}"
  echo "  },"
  awk -v rr="$RR_HIT" -v h="$HASH_HIT" 'BEGIN {
    printf "  \"affinity_hit_rate_gain\": %.3f\n", h - rr
  }'
  echo "}"
} > "$OUT"

echo "wrote $OUT" >&2
cat "$OUT"

# Acceptance: affinity routing must beat round-robin on aggregate hit
# rate under a hot set that exceeds one replica's cache.
awk -v rr="$RR_HIT" -v h="$HASH_HIT" 'BEGIN {
  if (h + 0 <= rr + 0) {
    printf "cluster bench: FAIL: hash hit rate %.3f is not above round-robin %.3f\n", h, rr
    exit 1
  }
  printf "cluster bench: OK: hash %.3f > round-robin %.3f\n", h, rr
}' >&2
