#!/usr/bin/env bash
# Smoke test for the replicated serving stack: build simrankd + simproxy,
# start a leader, two followers and the proxy on a fixture graph, then
# assert the cluster contract end to end —
#   * the proxy routes reads (cache-affinity) and the repeat query hits;
#   * a mutation through the proxy lands on the leader and every follower
#     converges to the same epoch with byte-identical scores;
#   * SIGTERM-ing a follower drops it from the read set while the proxy
#     stays healthy.
# Used by CI and runnable locally: make cluster-smoke
set -euo pipefail
cd "$(dirname "$0")/.."

tmp=$(mktemp -d)
pids=()
cleanup() {
  for p in "${pids[@]:-}"; do kill "$p" 2>/dev/null || true; done
  rm -rf "$tmp"
}
trap cleanup EXIT

printf '0 1\n0 2\n1 3\n2 4\n3 0\n4 0\n4 2\n2 0\n' > "$tmp/g.txt"
go build -o "$tmp/simrankd" ./cmd/simrankd
go build -o "$tmp/simproxy" ./cmd/simproxy

fail() {
  echo "cluster smoke: FAIL: $1"
  echo "--- response ---"; cat "$tmp/out" 2>/dev/null || true
  for log in "$tmp"/*.log; do echo "--- $log ---"; cat "$log"; done
  exit 1
}

# wait_addr LOGFILE -> echoes the bound 127.0.0.1:port once it appears.
wait_addr() {
  local log=$1 addr=""
  for _ in $(seq 1 100); do
    addr=$(sed -n 's/.* addr=\(127\.0\.0\.1:[0-9]*\).*/\1/p' "$log" | head -1)
    [ -n "$addr" ] && { echo "$addr"; return 0; }
    sleep 0.1
  done
  return 1
}

"$tmp/simrankd" -graph "$tmp/g.txt" -addr 127.0.0.1:0 -lead 2> "$tmp/leader.log" &
pids+=($!)
leader=$(wait_addr "$tmp/leader.log") || fail "leader never reported its address"

for i in 1 2; do
  "$tmp/simrankd" -graph "$tmp/g.txt" -addr 127.0.0.1:0 \
    -follow "http://$leader" 2> "$tmp/follower$i.log" &
  pids+=($!)
done
f1=$(wait_addr "$tmp/follower1.log") || fail "follower 1 never reported its address"
f2=$(wait_addr "$tmp/follower2.log") || fail "follower 2 never reported its address"
follower1_pid=${pids[1]}

"$tmp/simproxy" -addr 127.0.0.1:0 -replicas "$leader,$f1,$f2" \
  -policy hash -probe-interval 200ms 2> "$tmp/proxy.log" &
pids+=($!)
proxy=$(wait_addr "$tmp/proxy.log") || fail "proxy never reported its address"
base="http://$proxy"

code() { curl -s -o "$tmp/out" -w '%{http_code}' "$@"; }

# All three replicas must become routable (followers sync fast on an
# idle leader).
for _ in $(seq 1 100); do
  [ "$(code "$base/healthz")" = 200 ] && grep -q '"routable":3' "$tmp/out" && break
  sleep 0.1
done
grep -q '"routable":3' "$tmp/out" || fail "cluster never reached 3 routable replicas"

# Reads route with cache affinity: the same query lands on the same
# replica and the repeat is a cache hit there.
[ "$(code -D "$tmp/h1" "$base/v1/single-source?node=0&seed=1")" = 200 ] || fail "read via proxy not 200"
grep -q '"cache":"computed"' "$tmp/out" || fail "first query did not compute"
[ "$(code -D "$tmp/h2" "$base/v1/single-source?node=0&seed=1")" = 200 ] || fail "repeat read not 200"
grep -q '"cache":"hit"' "$tmp/out" || fail "repeat of an identical query was not a cache hit (affinity broken?)"
via1=$(sed -n 's/^X-Simproxy-Replica: \(.*\)\r$/\1/p' "$tmp/h1")
via2=$(sed -n 's/^X-Simproxy-Replica: \(.*\)\r$/\1/p' "$tmp/h2")
[ -n "$via1" ] && [ "$via1" = "$via2" ] || fail "affinity routing sent the repeat elsewhere ($via1 vs $via2)"

# A mutation through the proxy must land on the leader and commit at a
# fresh epoch.
[ "$(code -D "$tmp/hw" -X POST -d '{"edges":[{"from":1,"to":4},{"from":3,"to":2}]}' "$base/v1/edges")" = 200 ] \
  || fail "write via proxy not 200"
via_write=$(sed -n 's/^X-Simproxy-Replica: \(.*\)\r$/\1/p' "$tmp/hw")
[ "$via_write" = "$leader" ] || fail "write routed to $via_write, want leader $leader"
epoch=$(sed -n 's/.*"epoch":\([0-9]*\).*/\1/p' "$tmp/out")
[ -n "$epoch" ] && [ "$epoch" -ge 2 ] || fail "write did not report a committed epoch"

# Every follower must reach the write's epoch.
for host in "$f1" "$f2"; do
  ok=""
  for _ in $(seq 1 100); do
    if [ "$(code "http://$host/statsz")" = 200 ] \
       && grep -q "\"applied_epoch\":$epoch" "$tmp/out" \
       && grep -q '"lag":0' "$tmp/out"; then ok=1; break; fi
    sleep 0.1
  done
  [ -n "$ok" ] || fail "follower $host never converged to epoch $epoch"
done

# Same-epoch scores must be byte-identical on all three replicas (strip
# only the per-replica "cache" field, which legitimately differs).
q="/v1/single-source?node=0&seed=7&dense=1"
for host in "$leader" "$f1" "$f2"; do
  [ "$(code "http://$host$q")" = 200 ] || fail "direct query on $host not 200"
  sed 's/"cache":"[a-z]*",//' "$tmp/out" > "$tmp/scores.$host"
  grep -q "\"epoch\":$epoch" "$tmp/out" || fail "$host answered at a stale epoch"
done
diff "$tmp/scores.$leader" "$tmp/scores.$f1" > /dev/null || fail "follower 1 scores differ from the leader's"
diff "$tmp/scores.$leader" "$tmp/scores.$f2" > /dev/null || fail "follower 2 scores differ from the leader's"

# Kill follower 1: the proxy must drop it from the read set and keep
# serving. (SIGTERM drains: healthz flips 503 first, then the process
# exits — either state must push reads elsewhere.)
kill -TERM "$follower1_pid"
for _ in $(seq 1 100); do
  [ "$(code "$base/healthz")" = 200 ] && grep -q '"routable":2' "$tmp/out" && break
  sleep 0.1
done
grep -q '"routable":2' "$tmp/out" || fail "proxy never noticed the killed follower"

for i in $(seq 0 7); do
  [ "$(code -D "$tmp/hf" "$base/v1/single-source?node=$((i % 5))&seed=2")" = 200 ] || fail "read after failover not 200"
  via=$(sed -n 's/^X-Simproxy-Replica: \(.*\)\r$/\1/p' "$tmp/hf")
  [ "$via" != "$f1" ] || fail "read routed to the killed follower"
done

[ "$(code "$base/statsz")" = 200 ] || fail "proxy statsz not 200"
grep -q '"proxy":true' "$tmp/out" || fail "proxy statsz missing identity"
grep -q '"replicas":\[' "$tmp/out" || fail "proxy statsz missing per-replica breakdown"

echo "cluster smoke: OK (leader $leader, followers $f1 $f2, proxy $proxy)"
