#!/usr/bin/env bash
# Smoke test for the observability surface (docs/observability.md):
#
#  1. request ids echo on success and error responses, and a forced slow
#     query shows up — with its per-stage engine spans — in both the
#     slow-query log and /debug/queries;
#  2. /metricsz on simrankd AND simproxy parses against the Prometheus
#     text exposition grammar (plain grep/awk, no external deps);
#  3. a tracing-disabled simload run still passes end to end and its
#     report carries the /metricsz-scraped metrics_delta block
#     (-> BENCH_PR9.json, the observability-era SLO record).
#
# Used by CI and runnable locally: make obs-smoke [OUT=BENCH_PR9.json]
set -euo pipefail
cd "$(dirname "$0")/.."

OUT="${OUT:-BENCH_PR9.json}"
DURATION="${DURATION:-3s}"
RATE_SCALE="${RATE_SCALE:-0.3}"

tmp=$(mktemp -d)
pids=()
cleanup() {
  for p in "${pids[@]:-}"; do kill "$p" 2>/dev/null || true; done
  rm -rf "$tmp"
}
trap cleanup EXIT

fail() {
  echo "obs smoke: FAIL: $1"
  echo "--- last response ---"; cat "$tmp/out" 2>/dev/null || true
  echo "--- daemon log ---"; cat "$tmp/d.log" 2>/dev/null || true
  echo "--- proxy log ---"; cat "$tmp/p.log" 2>/dev/null || true
  exit 1
}

wait_addr() {
  local log=$1 addr=""
  for _ in $(seq 1 100); do
    addr=$(sed -n 's/.* addr=\(127\.0\.0\.1:[0-9]*\).*/\1/p' "$log" | head -1)
    [ -n "$addr" ] && { echo "$addr"; return 0; }
    sleep 0.1
  done
  return 1
}

# validate_prom FILE WHO: line-level Prometheus text-format (0.0.4)
# grammar check. Comment lines must be well-formed HELP/TYPE; sample
# lines must be name[{label="value",...}] number.
validate_prom() {
  local f=$1 who=$2
  [ -s "$f" ] || fail "$who /metricsz is empty"
  if grep '^#' "$f" | grep -Evq '^# (HELP|TYPE) [a-zA-Z_:][a-zA-Z0-9_:]* .+'; then
    grep '^#' "$f" | grep -Ev '^# (HELP|TYPE) [a-zA-Z_:][a-zA-Z0-9_:]* .+' | head -3
    fail "$who /metricsz has malformed comment lines"
  fi
  if grep -v '^#' "$f" | grep -Evq '^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*="[^"]*"(,[a-zA-Z_][a-zA-Z0-9_]*="[^"]*")*,?\})? (NaN|[+-]?Inf|[+-]?[0-9]+(\.[0-9]+)?([eE][+-]?[0-9]+)?)$'; then
    grep -v '^#' "$f" | grep -Ev '^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*="[^"]*"(,[a-zA-Z_][a-zA-Z0-9_]*="[^"]*")*,?\})? (NaN|[+-]?Inf|[+-]?[0-9]+(\.[0-9]+)?([eE][+-]?[0-9]+)?)$' | head -3
    fail "$who /metricsz has lines outside the exposition grammar"
  fi
  # Every TYPE'd family must use a declared type.
  if grep '^# TYPE' "$f" | awk '$4 != "counter" && $4 != "gauge" && $4 != "histogram" && $4 != "summary" && $4 != "untyped" { exit 1 }'; then :; else
    fail "$who /metricsz declares an unknown metric type"
  fi
}

# Fixture: a 200-node ring with chords (same shape workload_smoke uses),
# big enough that a default-eps query takes well over 1ms.
awk 'BEGIN { n=200; for (i=0; i<n; i++) { print i, (i+1)%n; print i, (i+7)%n; print (i+3)%n, i } }' > "$tmp/g.txt"
go build -o "$tmp/simrankd" ./cmd/simrankd
go build -o "$tmp/simproxy" ./cmd/simproxy
go build -o "$tmp/simload" ./cmd/simload

### Part 1: tracing-enabled daemon — ids, slow-query log, /debug/queries.

"$tmp/simrankd" -graph "$tmp/g.txt" -addr 127.0.0.1:0 \
  -trace-queries 32 -slow-query-ms 1 2> "$tmp/d.log" &
pids+=($!)
addr=$(wait_addr "$tmp/d.log") || fail "daemon never reported its address"
base="http://$addr"

code() { curl -s -o "$tmp/out" -w '%{http_code}' "$@"; }

# A slow query with an explicit request id: default eps on 200 nodes is
# comfortably over the 1ms slow-query bar.
[ "$(code -D "$tmp/hdr" -H 'X-Request-Id: obs-smoke-slow' \
  "$base/v1/single-source?node=0&seed=1")" = 200 ] || fail "single-source not 200"
grep -qi '^X-Request-Id: obs-smoke-slow' "$tmp/hdr" || fail "request id not echoed on success"

# The same id must appear in the slow-query log with engine spans.
grep -q 'msg="slow query"' "$tmp/d.log" || fail "slow query never logged"
grep 'msg="slow query"' "$tmp/d.log" | grep -q 'request_id=obs-smoke-slow' \
  || fail "slow-query log missing the request id"
grep 'msg="slow query"' "$tmp/d.log" | grep -q 'reverse_push' \
  || fail "slow-query log missing engine stage spans"

# ... and in the trace ring, spans and all.
[ "$(code "$base/debug/queries")" = 200 ] || fail "/debug/queries not 200"
grep -q '"enabled":true' "$tmp/out" || fail "trace ring reports disabled"
grep -q '"request_id":"obs-smoke-slow"' "$tmp/out" || fail "/debug/queries missing the traced request"
for span in walk source_push gamma reverse_push snapshot cache; do
  grep -q "\"$span\"" "$tmp/out" || fail "/debug/queries trace missing the $span span"
done

# Error responses carry the id too, in header and body.
[ "$(code -D "$tmp/hdr" -H 'X-Request-Id: obs-smoke-err' \
  "$base/v1/single-source?node=999999")" = 404 ] || fail "out-of-range node not 404"
grep -qi '^X-Request-Id: obs-smoke-err' "$tmp/hdr" || fail "request id not echoed on error"
grep -q '"request_id":"obs-smoke-err"' "$tmp/out" || fail "error body missing request_id"

# Daemon /metricsz: grammar-valid, with the families the dashboards key on.
[ "$(code "$base/metricsz")" = 200 ] || fail "daemon /metricsz not 200"
cp "$tmp/out" "$tmp/d.prom"
validate_prom "$tmp/d.prom" "simrankd"
for fam in simrankd_requests_total simrankd_cache_hits_total \
  simrankd_engine_stage_seconds_total simrankd_admission_waits_total \
  simrankd_request_duration_seconds_bucket; do
  grep -q "^$fam" "$tmp/d.prom" || fail "daemon /metricsz missing $fam"
done
grep -q '^simrankd_engine_stage_seconds_total{stage="reverse_push"} 0*\.[0-9]*[1-9]' "$tmp/d.prom" \
  || grep -q '^simrankd_engine_stage_seconds_total{stage="reverse_push"} [1-9]' "$tmp/d.prom" \
  || fail "daemon /metricsz shows no reverse_push stage time after a computed query"

### Part 2: proxy /metricsz with per-replica series.

"$tmp/simproxy" -addr 127.0.0.1:0 -replicas "$base" 2> "$tmp/p.log" &
pids+=($!)
proxy=$(wait_addr "$tmp/p.log") || fail "proxy never reported its address"

# Ids survive proxying: the proxy stamps, the replica traces it.
[ "$(code -D "$tmp/hdr" -H 'X-Request-Id: obs-smoke-via-proxy' \
  "http://$proxy/v1/topk?node=1&k=3&seed=2")" = 200 ] || fail "proxied topk not 200"
grep -qi '^X-Request-Id: obs-smoke-via-proxy' "$tmp/hdr" || fail "proxy did not echo the request id"
[ "$(code "$base/debug/queries")" = 200 ] || fail "/debug/queries not 200 after proxied query"
grep -q '"request_id":"obs-smoke-via-proxy"' "$tmp/out" \
  || fail "proxied request id never reached the replica's trace ring"

[ "$(code "http://$proxy/metricsz")" = 200 ] || fail "proxy /metricsz not 200"
cp "$tmp/out" "$tmp/p.prom"
validate_prom "$tmp/p.prom" "simproxy"
for fam in simproxy_requests_total simproxy_routable_replicas simproxy_replica_up; do
  grep -q "^$fam" "$tmp/p.prom" || fail "proxy /metricsz missing $fam"
done
grep -q '^simproxy_replica_up{replica="[^"]*"} 1' "$tmp/p.prom" \
  || fail "proxy /metricsz shows no healthy replica"

### Part 3: tracing-disabled SLO run -> BENCH_PR9.json with metrics_delta.

"$tmp/simrankd" -graph "$tmp/g.txt" -addr 127.0.0.1:0 -eps 0.1 \
  -trace-queries 0 -slow-query-ms 0 2> "$tmp/d2.log" &
pids+=($!)
addr2=$(wait_addr "$tmp/d2.log") || fail "second daemon never reported its address"

"$tmp/simload" -target "http://$addr2" -scenario social-feed \
  -duration "$DURATION" -rate-scale "$RATE_SCALE" -out "$OUT" \
  2> "$tmp/simload.log" || fail "tracing-disabled simload run errored"
[ -s "$OUT" ] || fail "no BENCH JSON written"
for field in '"metrics_delta"' '"engine_stage_seconds"' '"admission_waits"' \
  '"p50_ms"' '"attainment_pct"' '"pass"'; do
  grep -q "$field" "$OUT" || fail "BENCH JSON missing $field"
done
if grep -q '"pass": true' "$OUT"; then
  echo "obs smoke: tracing-disabled SLO verdict: PASS"
else
  # SLO misses on loaded CI runners are a perf signal, not a correctness
  # failure of the observability surface — record, don't flake.
  echo "obs smoke: tracing-disabled SLO verdict: MISS (recorded in $OUT)"
fi

echo "obs smoke: OK (daemon $addr, proxy $proxy, $OUT)"
