#!/usr/bin/env bash
# Smoke test for the workload subsystem: build simrankd + simload, boot
# the daemon on a fixture graph, run every scenario preset short-mode,
# and assert the emitted BENCH JSON parses with every SLO field present.
# Used by CI (the JSON is uploaded as an artifact) and runnable locally:
# make workload-smoke [OUT=BENCH_PR8.json]
set -euo pipefail
cd "$(dirname "$0")/.."

OUT="${OUT:-BENCH_PR8.json}"
DURATION="${DURATION:-3s}"
RATE_SCALE="${RATE_SCALE:-0.3}"

tmp=$(mktemp -d)
pid=""
cleanup() {
  [ -n "$pid" ] && kill "$pid" 2>/dev/null || true
  rm -rf "$tmp"
}
trap cleanup EXIT

# Fixture: a 200-node ring with chords, dynamic (mutations enabled).
awk 'BEGIN { n=200; for (i=0; i<n; i++) { print i, (i+1)%n; print i, (i+7)%n; print (i+3)%n, i } }' > "$tmp/g.txt"
go build -o "$tmp/simrankd" ./cmd/simrankd
go build -o "$tmp/simload" ./cmd/simload

"$tmp/simrankd" -graph "$tmp/g.txt" -addr 127.0.0.1:0 -eps 0.1 2> "$tmp/log" &
pid=$!

addr=""
for _ in $(seq 1 100); do
  addr=$(sed -n 's/.* addr=\(127\.0\.0\.1:[0-9]*\).*/\1/p' "$tmp/log" | head -1)
  [ -n "$addr" ] && break
  kill -0 "$pid" 2>/dev/null || { echo "workload smoke: daemon died at startup"; cat "$tmp/log"; exit 1; }
  sleep 0.1
done
[ -n "$addr" ] || { echo "workload smoke: daemon never reported its address"; cat "$tmp/log"; exit 1; }

fail() {
  echo "workload smoke: FAIL: $1"
  echo "--- simload ---"; cat "$tmp/simload.log" 2>/dev/null || true
  echo "--- bench json ---"; cat "$OUT" 2>/dev/null || true
  echo "--- daemon log ---"; cat "$tmp/log"
  exit 1
}

"$tmp/simload" -list | grep -q social-feed || fail "-list missing presets"

"$tmp/simload" -target "http://$addr" -scenario all \
  -duration "$DURATION" -rate-scale "$RATE_SCALE" -out "$OUT" \
  2> "$tmp/simload.log" || fail "simload run errored"

# The effective seed must be printed for every scenario (replayability).
[ "$(grep -c 'seed=' "$tmp/simload.log")" -ge 3 ] || fail "effective seed not printed per scenario"

# The BENCH JSON must parse and carry every SLO/report field for all
# three presets. go's encoding/json via simload -validate proved the
# specs; here jq-free grep assertions keep the script dependency-free.
[ -s "$OUT" ] || fail "no BENCH JSON written"
[ "$(grep -c '"scenario":' "$OUT")" -eq 3 ] || fail "want 3 scenario reports"
for field in \
  '"p50_ms"' '"p99_ms"' '"p50_target_ms"' '"p99_target_ms"' \
  '"attainment_pct"' '"attainment_met"' '"attain_target_pct"' \
  '"error_pct"' '"error_budget_met"' '"rate_429"' '"rate_5xx"' \
  '"hit_rate"' '"epoch_advances"' '"engine_queries"' '"throughput_rps"' \
  '"seed"' '"pass"' '"classes"' '"metrics_delta"' '"engine_stage_seconds"'; do
  grep -q "$field" "$OUT" || fail "BENCH JSON missing $field"
done

# fraud-neighbors mutates: at least one scenario must move the epoch.
grep -q '"epoch_advances": [1-9]' "$OUT" || fail "no scenario advanced the epoch"

# The server's latency histograms must be live after the run.
curl -s "http://$addr/statsz" > "$tmp/stats.json"
grep -q '"latency_buckets_ms"' "$tmp/stats.json" || fail "statsz missing latency buckets"
grep -q '"engine"' "$tmp/stats.json" || fail "statsz missing engine-path histogram"
grep -q '"cache_hit"' "$tmp/stats.json" || fail "statsz missing cache-hit-path histogram"
grep -q '"retry_after_s"' "$tmp/stats.json" || fail "statsz missing adaptive retry-after"

kill -TERM "$pid"
wait "$pid" || fail "daemon exited nonzero on SIGTERM"
pid=""

echo "workload smoke: OK ($OUT, $(grep -c '"scenario":' "$OUT") scenarios)"
