#!/usr/bin/env bash
# scripts/bench.sh [--short] — PR 5 perf trajectory.
#
# Runs the per-stage (Source-Push, γ, Reverse-Push) and end-to-end query
# benchmarks serial vs parallel (k=1 vs k=NumCPU; see
# internal/core/stage_bench_test.go) and emits BENCH_PR5.json with ns/op
# per benchmark plus the serial/parallel speedup per stage. --short runs
# one iteration per benchmark — the cheap CI mode that keeps the
# trajectory file fresh on every push; the default runs benchtime=5x for
# steadier numbers.
set -euo pipefail
cd "$(dirname "$0")/.."

BENCHTIME=5x
[ "${1:-}" = "--short" ] && BENCHTIME=1x
OUT=BENCH_PR5.json
RAW=$(mktemp)
trap 'rm -f "$RAW"' EXIT

go test -run '^$' \
  -bench 'BenchmarkQueryParallelism|BenchmarkStage(SourcePush|Gamma|ReversePush)' \
  -benchtime "$BENCHTIME" ./internal/core | tee "$RAW" >&2

CORES=$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 1)

awk -v cores="$CORES" -v benchtime="$BENCHTIME" '
/^Benchmark/ {
  name = $1
  sub(/-[0-9]+$/, "", name)   # strip the -GOMAXPROCS suffix
  sub(/^Benchmark/, "", name)
  ns[name] = $3
  order[n++] = name
}
END {
  printf "{\n"
  printf "  \"pr\": 5,\n"
  printf "  \"description\": \"intra-query parallelism: serial vs parallel ns/op\",\n"
  printf "  \"cores\": %d,\n", cores
  printf "  \"benchtime\": \"%s\",\n", benchtime
  printf "  \"benchmarks_ns_op\": {\n"
  for (i = 0; i < n; i++)
    printf "    \"%s\": %s%s\n", order[i], ns[order[i]], (i < n-1 ? "," : "")
  printf "  },\n"
  printf "  \"speedup\": {\n"
  m = split("QueryParallelism StageSourcePush StageGamma StageReversePush", fams, " ")
  lbl["QueryParallelism"] = "end_to_end"
  lbl["StageSourcePush"] = "source_push"
  lbl["StageGamma"] = "gamma"
  lbl["StageReversePush"] = "reverse_push"
  for (f = 1; f <= m; f++) {
    fam = fams[f]
    serial = ns[fam "/k=1"]
    best = ""; bestk = 0
    for (i = 0; i < n; i++) {
      name = order[i]
      if (index(name, fam "/k=") == 1) {
        k = substr(name, length(fam) + 4) + 0
        if (k > bestk) { bestk = k; best = ns[name] }
      }
    }
    if (serial != "" && best != "" && bestk > 1 && best + 0 > 0)
      printf "    \"%s\": {\"k\": %d, \"x\": %.2f}%s\n", lbl[fam], bestk, serial / best, (f < m ? "," : "")
    else
      printf "    \"%s\": {\"k\": 1, \"x\": 1.0}%s\n", lbl[fam], (f < m ? "," : "")
  }
  printf "  }\n"
  printf "}\n"
}' "$RAW" > "$OUT"

echo "wrote $OUT" >&2
cat "$OUT"
