#!/usr/bin/env bash
# Smoke test for the simrankd serving daemon: build it, start it on a
# fixture graph, curl every endpoint, assert 200s, assert the second
# identical query is a cache hit, and check graceful SIGTERM shutdown.
# Used by CI and runnable locally: make smoke
set -euo pipefail
cd "$(dirname "$0")/.."

tmp=$(mktemp -d)
pid=""
cleanup() {
  [ -n "$pid" ] && kill "$pid" 2>/dev/null || true
  rm -rf "$tmp"
}
trap cleanup EXIT

printf '0 1\n0 2\n1 3\n2 4\n3 0\n4 0\n' > "$tmp/g.txt"
go build -o "$tmp/simrankd" ./cmd/simrankd

"$tmp/simrankd" -graph "$tmp/g.txt" -addr 127.0.0.1:0 2> "$tmp/log" &
pid=$!

addr=""
for _ in $(seq 1 100); do
  addr=$(sed -n 's/.* addr=\(127\.0\.0\.1:[0-9]*\).*/\1/p' "$tmp/log" | head -1)
  [ -n "$addr" ] && break
  kill -0 "$pid" 2>/dev/null || { echo "smoke: daemon died at startup"; cat "$tmp/log"; exit 1; }
  sleep 0.1
done
[ -n "$addr" ] || { echo "smoke: daemon never reported its address"; cat "$tmp/log"; exit 1; }
base="http://$addr"

fail() {
  echo "smoke: FAIL: $1"
  echo "--- response ---"; cat "$tmp/out" 2>/dev/null || true
  echo "--- daemon log ---"; cat "$tmp/log"
  exit 1
}
code() { curl -s -o "$tmp/out" -w '%{http_code}' "$@"; }

[ "$(code "$base/healthz")" = 200 ] || fail "healthz not 200"

[ "$(code "$base/v1/single-source?node=0&seed=1")" = 200 ] || fail "single-source not 200"
grep -q '"cache":"computed"' "$tmp/out" || fail "first query did not compute"

[ "$(code "$base/v1/single-source?node=0&seed=1")" = 200 ] || fail "repeated single-source not 200"
grep -q '"cache":"hit"' "$tmp/out" || fail "second identical query was not a cache hit"

[ "$(code "$base/v1/topk?node=0&k=3")" = 200 ] || fail "topk not 200"
[ "$(code "$base/v1/pair?u=1&v=2")" = 200 ] || fail "pair not 200"
[ "$(code -X POST -d '{"nodes":[0,1],"k":2}' "$base/v1/batch")" = 200 ] || fail "batch not 200"

# Live mutation advances the epoch: the previously cached entry must
# become unreachable and the same query must recompute.
[ "$(code -X POST -d '{"from":4,"to":1}' "$base/v1/edges")" = 200 ] || fail "edge add not 200"
[ "$(code "$base/v1/single-source?node=0&seed=1")" = 200 ] || fail "post-mutation query not 200"
grep -q '"cache":"computed"' "$tmp/out" || fail "post-mutation query served a stale cached result"

[ "$(code "$base/statsz")" = 200 ] || fail "statsz not 200"
grep -q '"hits":' "$tmp/out" || fail "statsz missing cache counters"

kill -TERM "$pid"
if ! wait "$pid"; then
  fail "daemon exited nonzero on SIGTERM"
fi
pid=""

echo "simrankd smoke: OK ($base)"
