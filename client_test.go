package simpush

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"testing"
	"time"
)

// A single Client must serve parallel query streams from many goroutines
// with no data races (run under -race) and correct results.
func TestClientConcurrentQueries(t *testing.T) {
	g, err := SyntheticWebGraph(3000, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewClient(g, Options{Epsilon: 0.05, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	const workers = 12
	const queriesPerWorker = 8
	ctx := context.Background()
	var wg sync.WaitGroup
	errs := make([]error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for q := 0; q < queriesPerWorker; q++ {
				u := int32((w*queriesPerWorker + q) * 37 % int(g.N()))
				res, err := c.SingleSource(ctx, u)
				if err != nil {
					errs[w] = err
					return
				}
				if res.Scores[u] != 1 {
					errs[w] = errors.New("self score != 1")
					return
				}
				if _, err := c.TopK(ctx, u, 5); err != nil {
					errs[w] = err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	for w, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", w, err)
		}
	}
}

// A pre-cancelled context must fail promptly with context.Canceled, before
// any push stage runs.
func TestClientPreCancelled(t *testing.T) {
	g, err := SyntheticWebGraph(2000, 8, 2)
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewClient(g, Options{Epsilon: 0.02, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	res, err := c.SingleSource(ctx, 100)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res != nil {
		t.Fatal("result returned despite cancellation")
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("cancelled query took %v", elapsed)
	}
	// Batches propagate the caller's cancellation too.
	if _, err := c.BatchSingleSource(ctx, []int32{1, 2, 3}, 2); !errors.Is(err, context.Canceled) {
		t.Fatalf("batch err = %v, want context.Canceled", err)
	}
	// The client stays usable after an aborted query.
	if _, err := c.SingleSource(context.Background(), 100); err != nil {
		t.Fatalf("query after cancellation: %v", err)
	}
}

// An already-expired deadline must surface context.DeadlineExceeded, and a
// deadline expiring mid-query must interrupt the stages rather than let
// the query run to completion.
func TestClientDeadlineExceeded(t *testing.T) {
	g, err := SyntheticWebGraph(2000, 8, 3)
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewClient(g, Options{Epsilon: 0.02, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	// Expired before the query starts.
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	if _, err := c.SingleSource(ctx, 7); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}

	// Expiring mid-query: a fine-precision query on a larger graph takes
	// far longer than the deadline, so the stage-boundary checks must trip.
	big, err := SyntheticWebGraph(120000, 8, 4)
	if err != nil {
		t.Fatal(err)
	}
	cb, err := NewClient(big, Options{Epsilon: 0.002, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	mctx, mcancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer mcancel()
	start := time.Now()
	if _, err := cb.SingleSource(mctx, 11); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("mid-query err = %v, want context.DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("deadline ignored for %v", elapsed)
	}
	// The engine scratch survives the abort.
	res, err := cb.SingleSource(context.Background(), 11, WithEpsilon(0.05))
	if err != nil || res.Scores[11] != 1 {
		t.Fatalf("query after mid-flight abort: %v", err)
	}
}

// Per-query options change one query only and leave the client's defaults
// untouched.
func TestClientPerQueryOptions(t *testing.T) {
	g, err := SyntheticWebGraph(3000, 8, 5)
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewClient(g, Options{Epsilon: 0.02, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	base, err := c.SingleSource(ctx, 42)
	if err != nil {
		t.Fatal(err)
	}
	coarse, err := c.SingleSource(ctx, 42, WithEpsilon(0.1), WithDelta(0.01))
	if err != nil {
		t.Fatal(err)
	}
	if coarse.Walks >= base.Walks {
		t.Fatalf("coarser epsilon did not shrink the walk sample: %d vs %d", coarse.Walks, base.Walks)
	}
	capped, err := c.SingleSource(ctx, 42, WithMaxWalks(10))
	if err != nil {
		t.Fatal(err)
	}
	if capped.Walks > 10 {
		t.Fatalf("WithMaxWalks(10) ignored: %d walks", capped.Walks)
	}
	// Defaults restored on the next plain query.
	again, err := c.SingleSource(ctx, 42)
	if err != nil {
		t.Fatal(err)
	}
	if again.Walks != base.Walks {
		t.Fatalf("per-query override leaked: %d vs %d walks", again.Walks, base.Walks)
	}
	// WithSeed makes a query reproducible regardless of engine history.
	r1, err := c.SingleSource(ctx, 42, WithSeed(99))
	if err != nil {
		t.Fatal(err)
	}
	r2, err := c.SingleSource(ctx, 42, WithSeed(99))
	if err != nil {
		t.Fatal(err)
	}
	if r1.L != r2.L || len(r1.Attention) != len(r2.Attention) {
		t.Fatalf("WithSeed not deterministic: L %d vs %d", r1.L, r2.L)
	}
	for v := range r1.Scores {
		if r1.Scores[v] != r2.Scores[v] {
			t.Fatalf("WithSeed not deterministic at node %d", v)
		}
	}
	// Invalid override fails with the typed error.
	if _, err := c.SingleSource(ctx, 42, WithEpsilon(3)); !errors.Is(err, ErrInvalidOptions) {
		t.Fatalf("err = %v, want ErrInvalidOptions", err)
	}
}

// The error taxonomy must classify with errors.Is across the API surface.
func TestTypedErrors(t *testing.T) {
	g, err := FromEdges([]int32{0, 0}, []int32{1, 2}, false)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewClient(g, Options{Epsilon: 5}); !errors.Is(err, ErrInvalidOptions) {
		t.Fatalf("NewClient err = %v", err)
	}
	c, err := NewClient(g, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if _, err := c.SingleSource(ctx, 99); !errors.Is(err, ErrNodeOutOfRange) {
		t.Fatalf("SingleSource err = %v", err)
	}
	if _, err := c.Pair(ctx, 1, 99); !errors.Is(err, ErrNodeOutOfRange) {
		t.Fatalf("Pair err = %v", err)
	}
	if _, err := c.BatchSingleSource(ctx, []int32{0, 99}, 2); !errors.Is(err, ErrNodeOutOfRange) {
		t.Fatalf("Batch err = %v", err)
	}
	if _, err := c.TopKAdaptive(ctx, 0, 0, 0, 0); !errors.Is(err, ErrInvalidOptions) {
		t.Fatalf("TopKAdaptive err = %v", err)
	}
	if _, err := NewMethod("SimPush", g, 9, 1); !errors.Is(err, ErrInvalidOptions) {
		t.Fatalf("NewMethod err = %v", err)
	}
	// v1 wrapper surfaces the same taxonomy.
	eng, err := New(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Pair(1, 99); !errors.Is(err, ErrNodeOutOfRange) {
		t.Fatalf("v1 Pair err = %v", err)
	}
}

// Pair must reject an out-of-range target before running the single-source
// query (the validation is front-loaded; an invalid u is also caught).
func TestPairValidatesBeforeQuery(t *testing.T) {
	g, err := SyntheticWebGraph(2000, 8, 6)
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewClient(g, Options{Epsilon: 0.02, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	// With a cancelled context the query itself could never run, so an
	// out-of-range target error proves validation happens first.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := c.Pair(ctx, 5, 99999); !errors.Is(err, ErrNodeOutOfRange) {
		t.Fatalf("err = %v, want ErrNodeOutOfRange before query", err)
	}
}

// A seeded query must not perturb the engine's own walk stream: an
// unseeded query sequence yields identical results whether or not a
// WithSeed query ran in between.
func TestWithSeedDoesNotPerturbStream(t *testing.T) {
	g, err := SyntheticWebGraph(3000, 8, 8)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	run := func(withSeeded bool) *Result {
		c, err := NewClient(g, Options{Epsilon: 0.02, Seed: 8})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := c.SingleSource(ctx, 10); err != nil {
			t.Fatal(err)
		}
		if withSeeded {
			if _, err := c.SingleSource(ctx, 10, WithSeed(7)); err != nil {
				t.Fatal(err)
			}
		}
		res, err := c.SingleSource(ctx, 10)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	plain, interleaved := run(false), run(true)
	if plain.L != interleaved.L {
		t.Fatalf("seeded query perturbed the stream: L %d vs %d", plain.L, interleaved.L)
	}
	for v := range plain.Scores {
		if plain.Scores[v] != interleaved.Scores[v] {
			t.Fatalf("seeded query perturbed the stream at node %d", v)
		}
	}
}

// A single-goroutine stream stays reproducible across GC: the primary
// engine is pinned, so sync.Pool eviction cannot swap in a
// differently-seeded engine mid-stream.
func TestSingleGoroutineDeterministicAcrossGC(t *testing.T) {
	g, err := SyntheticWebGraph(2000, 8, 9)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	run := func(gcBetween bool) []*Result {
		c, err := NewClient(g, Options{Epsilon: 0.02, Seed: 9})
		if err != nil {
			t.Fatal(err)
		}
		var out []*Result
		for q := 0; q < 3; q++ {
			if gcBetween {
				runtime.GC()
				runtime.GC()
			}
			res, err := c.SingleSource(ctx, int32(q*11))
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, res)
		}
		return out
	}
	a, b := run(false), run(true)
	for q := range a {
		if a[q].L != b[q].L {
			t.Fatalf("query %d: L %d vs %d after GC", q, a[q].L, b[q].L)
		}
		for v := range a[q].Scores {
			if a[q].Scores[v] != b[q].Scores[v] {
				t.Fatalf("query %d not deterministic across GC at node %d", q, v)
			}
		}
	}
}

// Client batches run over the shared pool and match v1 semantics.
func TestClientBatch(t *testing.T) {
	g, err := SyntheticWebGraph(2000, 6, 7)
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewClient(g, Options{Epsilon: 0.05, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	queries := []int32{0, 5, 1999, 5}
	results, err := c.BatchSingleSource(context.Background(), queries, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i, res := range results {
		if res == nil || res.Scores[queries[i]] != 1 {
			t.Fatalf("bad result %d", i)
		}
	}
	// Back-to-back batches reuse the same pool without issue.
	if _, err := c.BatchSingleSource(context.Background(), queries, 2); err != nil {
		t.Fatal(err)
	}
}

// WithParallelism fans one query across intra-query workers: seeded
// results are deterministic in (seed, k), differ from serial only within
// the ε guarantee, and the option composes with the engine-level
// Options.Parallelism default and the batch path (whose default worker
// count divides the core budget by k instead of oversubscribing).
func TestClientWithParallelism(t *testing.T) {
	g, err := SyntheticWebGraph(2000, 6, 3)
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewClient(g, Options{Epsilon: 0.05, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx := context.Background()

	a, err := c.SingleSource(ctx, 7, WithSeed(9), WithParallelism(4))
	if err != nil {
		t.Fatal(err)
	}
	b, err := c.SingleSource(ctx, 7, WithSeed(9), WithParallelism(4))
	if err != nil {
		t.Fatal(err)
	}
	serial, err := c.SingleSource(ctx, 7, WithSeed(9))
	if err != nil {
		t.Fatal(err)
	}
	for v := range a.Scores {
		if a.Scores[v] != b.Scores[v] {
			t.Fatalf("seeded parallel query not deterministic at v=%d", v)
		}
		if d := a.Scores[v] - serial.Scores[v]; d > 0.1 || d < -0.1 {
			t.Fatalf("parallel vs serial at v=%d differ by %v", v, d)
		}
	}

	if _, err := c.SingleSource(ctx, 7, WithParallelism(-1)); !errors.Is(err, ErrInvalidOptions) {
		t.Fatalf("negative parallelism accepted: %v", err)
	}

	// Batch with per-query parallelism: the default batch width divides
	// GOMAXPROCS by k (never below one worker), and results still land.
	res, err := c.BatchSingleSource(ctx, []int32{1, 2, 3, 4}, 0, WithParallelism(runtime.GOMAXPROCS(0)))
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range res {
		if r == nil || r.Scores[[]int32{1, 2, 3, 4}[i]] != 1 {
			t.Fatalf("batch result %d missing or wrong", i)
		}
	}
}

// An engine-level Parallelism default applies to every query without
// per-query options.
func TestClientEngineParallelismDefault(t *testing.T) {
	g, err := SyntheticWebGraph(1500, 6, 5)
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewClient(g, Options{Epsilon: 0.05, Seed: 2, Parallelism: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	res, err := c.SingleSource(context.Background(), 11, WithSeed(4))
	if err != nil {
		t.Fatal(err)
	}
	if res.Scores[11] != 1 {
		t.Fatal("self score != 1")
	}
	// The same seeded query through a serial client differs only within ε.
	cs, err := NewClient(g, Options{Epsilon: 0.05, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer cs.Close()
	ser, err := cs.SingleSource(context.Background(), 11, WithSeed(4))
	if err != nil {
		t.Fatal(err)
	}
	for v := range res.Scores {
		if d := res.Scores[v] - ser.Scores[v]; d > 0.1 || d < -0.1 {
			t.Fatalf("parallel-default vs serial at v=%d differ by %v", v, d)
		}
	}
}
