package simpush

import (
	"github.com/simrank/simpush/internal/graph"
)

// A GraphSource supplies immutable graph snapshots to a Client. It is the
// serving-side abstraction behind the paper's realtime claim: because
// SimPush keeps no index, a Client bound to a source always answers on the
// source's newest committed state with zero maintenance — engines rebind
// to the current snapshot when a query checks them out.
//
// Two implementations ship with the package:
//
//   - *Graph: a static source. Every snapshot is the graph itself at
//     epoch 0.
//   - *DynamicGraph: a mutable, versioned source. Edges are added and
//     removed concurrently with queries; each materialized snapshot is
//     stamped with a monotonically increasing epoch identifying the
//     committed state.
//
// GraphSnapshot returns the current committed graph and its epoch. The
// pair must be consistent (the graph is exactly the state committed at
// that epoch) and the returned *Graph must never be mutated afterwards —
// sources publish fresh snapshots instead. Implementations must be safe
// for concurrent use; Client calls GraphSnapshot on every query.
type GraphSource interface {
	GraphSnapshot() (*Graph, uint64, error)
}

// Static-source and dynamic-source implementations live on the graph
// types themselves; assert they satisfy the interface.
var (
	_ GraphSource = (*Graph)(nil)
	_ GraphSource = (*DynamicGraph)(nil)
)

// DynamicGraph is a mutable graph for evolving workloads — the realtime
// scenario of the paper's introduction. Edges are added and removed over
// time; every materialized snapshot carries a monotonically increasing
// epoch. A DynamicGraph is a GraphSource: hand it to NewClient and every
// query observes the newest committed state automatically, with no
// caller-side snapshotting or client rebuild (use Client.View to pin one
// epoch across several calls instead). All methods are safe for
// concurrent use.
type DynamicGraph = graph.Dynamic

// EpochDelta describes one committed epoch advance of a DynamicGraph:
// the superseded and new epochs plus a conservative over-approximation
// of the nodes whose single-source results can differ between the two
// states (or Total when no usable approximation exists). Deltas are
// delivered to the commit hook registered with
// DynamicGraph.SetCommitHook; serving layers use them to carry cached
// results across epochs instead of abandoning them.
type EpochDelta = graph.EpochDelta

// NewDynamicGraph returns an empty dynamic graph. nHint reserves node ids
// [0, nHint) up front and mHint presizes the edge buffer.
func NewDynamicGraph(nHint int32, mHint int) *DynamicGraph {
	return graph.NewDynamic(nHint, mHint)
}

// DynamicFromGraph seeds a dynamic graph from an immutable one.
func DynamicFromGraph(g *Graph) *DynamicGraph {
	return graph.FromGraph(g)
}
