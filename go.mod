module github.com/simrank/simpush

go 1.24
