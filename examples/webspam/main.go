// Web-spam detection: SimRank's original motivating applications include
// link-spam analysis (Benczúr et al. [2] in the paper's references). A
// link farm is a set of pages that reference each other through shared
// booster pages, which makes farm members highly SimRank-similar: once a
// few members are known, single-source queries expose the rest.
//
// This example plants a link farm inside a normal web graph, runs SimPush
// from one known spam page, and measures how many of the other farm
// members appear in the top results.
//
//	go run ./examples/webspam
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	simpush "github.com/simrank/simpush"
)

const (
	webPages   = 30000
	farmSize   = 40 // spam pages
	boosters   = 60 // pages that link to every farm page
	avgOutDeg  = 8
	topK       = 30
	seedMember = int32(webPages) // first farm page
)

func main() {
	g, err := buildWebWithFarm()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("web graph with hidden link farm: %d pages, %d links\n", g.N(), g.M())
	fmt.Printf("farm: pages %d..%d boosted by %d booster pages\n",
		webPages, webPages+farmSize-1, boosters)

	client, err := simpush.NewClient(g, simpush.Options{Epsilon: 0.01, Seed: 3})
	if err != nil {
		log.Fatal(err)
	}
	t0 := time.Now()
	top, err := client.TopK(context.Background(), seedMember, topK)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nquery from known spam page %d: %v\n", seedMember, time.Since(t0))

	found := 0
	fmt.Println("\nrank\tpage\tSimRank\tfarm?")
	for i, r := range top {
		isFarm := r.Node >= webPages && r.Node < webPages+farmSize
		if isFarm {
			found++
		}
		mark := ""
		if isFarm {
			mark = "SPAM"
		}
		fmt.Printf("%d\t%d\t%.5f\t%s\n", i+1, r.Node, r.Score, mark)
	}
	fmt.Printf("\n%d of the %d other farm members surfaced in the top %d\n",
		found, farmSize-1, topK)
}

// buildWebWithFarm appends a link farm to a copying-model web graph:
// `boosters` pages each link to all `farmSize` spam pages (shared
// in-neighborhoods are exactly what SimRank keys on), and each booster
// also links to a couple of normal pages as camouflage.
func buildWebWithFarm() (*simpush.Graph, error) {
	base, err := simpush.SyntheticWebGraph(webPages, avgOutDeg, 17)
	if err != nil {
		return nil, err
	}
	var from, to []int32
	base.Edges(func(f, t int32) {
		from = append(from, f)
		to = append(to, t)
	})
	firstFarm := int32(webPages)
	firstBooster := firstFarm + farmSize
	for b := int32(0); b < boosters; b++ {
		booster := firstBooster + b
		for s := int32(0); s < farmSize; s++ {
			from = append(from, booster)
			to = append(to, firstFarm+s)
		}
		// camouflage links into the normal web
		from = append(from, booster, booster)
		to = append(to, b%webPages, (b*7+13)%webPages)
	}
	// farm pages link among themselves in a ring, and out to normal pages
	for s := int32(0); s < farmSize; s++ {
		from = append(from, firstFarm+s, firstFarm+s)
		to = append(to, firstFarm+(s+1)%farmSize, (s*31+5)%webPages)
	}
	return simpush.FromEdges(from, to, false)
}
