// Quickstart: run one single-source SimRank query with SimPush and verify
// the strongest result against an independent Monte-Carlo estimate.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	simpush "github.com/simrank/simpush"
)

func main() {
	// A power-law web graph: 50k pages, ~10 links per page.
	g, err := simpush.SyntheticWebGraph(50000, 10, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("graph: %d nodes, %d edges\n", g.N(), g.M())

	// No index, no preprocessing: the client is ready immediately, and one
	// client can serve any number of goroutines.
	client, err := simpush.NewClient(g, simpush.Options{Epsilon: 0.02, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}

	const u = int32(12345)
	t0 := time.Now()
	res, err := client.SingleSource(context.Background(), u)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("single-source query for node %d: %v (error bound ±0.02 w.p. 0.9999)\n", u, time.Since(t0))
	fmt.Printf("source graph: max level L=%d, %d attention nodes\n", res.L, len(res.Attention))

	top := simpush.TopK(res.Scores, 10, u)
	fmt.Println("\nrank\tnode\tSimRank")
	for i, r := range top {
		fmt.Printf("%d\t%d\t%.5f\n", i+1, r.Node, r.Score)
	}

	// Cross-check the top result with an unbiased Monte-Carlo estimate.
	if len(top) > 0 {
		mcVal := simpush.MonteCarloPair(g, u, top[0].Node, 0.6, 200000, 7)
		fmt.Printf("\nMonte-Carlo check for s(%d, %d): %.5f (SimPush: %.5f)\n",
			u, top[0].Node, mcVal, top[0].Score)
	}
}
