// Contact recommendation: the paper's introduction motivates single-source
// SimRank with social networks — "a social networking site that recommends
// new connections to a user". Users followed by similar audiences are
// similar, so the top SimRank results for a user are natural candidates.
//
// This example builds a community-structured social network (stochastic
// block model), recommends contacts for a user with SimPush, and checks
// how strongly the recommendations respect the (hidden) community — while
// filtering out users the query user already follows.
//
//	go run ./examples/recommend
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	simpush "github.com/simrank/simpush"
)

func main() {
	// pokec-sim: directed social network with 40 communities.
	g, err := simpush.Dataset("pokec-sim", 0.5)
	if err != nil {
		log.Fatal(err)
	}
	blockSize := g.N() / 40
	fmt.Printf("social network: %d users, %d follows, %d communities\n", g.N(), g.M(), 40)

	client, err := simpush.NewClient(g, simpush.Options{Epsilon: 0.01, Seed: 9})
	if err != nil {
		log.Fatal(err)
	}

	user := int32(3 * blockSize / 2) // someone in community 1
	t0 := time.Now()
	res, err := client.SingleSource(context.Background(), user)
	if err != nil {
		log.Fatal(err)
	}
	elapsed := time.Since(t0)

	// Exclude existing follows and the user; recommend the rest.
	following := map[int32]bool{}
	for _, f := range g.Out(user) {
		following[f] = true
	}
	candidates := simpush.TopK(res.Scores, 50, user)
	var recs []simpush.Ranked
	for _, r := range candidates {
		if !following[r.Node] && r.Score > 0 {
			recs = append(recs, r)
		}
		if len(recs) == 10 {
			break
		}
	}

	fmt.Printf("query: %v — recommendations for user %d (community %d):\n\n",
		elapsed, user, user/blockSize)
	fmt.Println("rank\tuser\tscore\tcommunity")
	same := 0
	for i, r := range recs {
		comm := r.Node / blockSize
		if comm == user/blockSize {
			same++
		}
		fmt.Printf("%d\t%d\t%.5f\t%d\n", i+1, r.Node, r.Score, comm)
	}
	if len(recs) > 0 {
		fmt.Printf("\n%d/%d recommendations fall in the user's own community\n", same, len(recs))
	}
}
