// Batch and adaptive querying: the paper's conclusion lists batch SimRank
// processing as future work; this library ships it. The example runs a
// batch of single-source queries across workers, then shows the adaptive
// top-k mode choosing its own precision per query.
//
//	go run ./examples/batch
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	simpush "github.com/simrank/simpush"
)

func main() {
	g, err := simpush.SyntheticWebGraph(60000, 10, 5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("graph: %d nodes, %d edges\n\n", g.N(), g.M())

	ctx := context.Background()
	client, err := simpush.NewClient(g, simpush.Options{Epsilon: 0.02, Seed: 7})
	if err != nil {
		log.Fatal(err)
	}

	// A batch of 16 queries, answered by 2 workers sharing the client's
	// engine pool.
	queries := make([]int32, 16)
	for i := range queries {
		queries[i] = int32((i + 1) * 3571 % int(g.N()))
	}
	t0 := time.Now()
	results, err := client.BatchSingleSource(ctx, queries, 2)
	if err != nil {
		log.Fatal(err)
	}
	batchTime := time.Since(t0)
	var totalAttention int
	for _, r := range results {
		totalAttention += len(r.Attention)
	}
	fmt.Printf("batch of %d single-source queries: %v total (%.1f ms/query, avg %d attention nodes)\n\n",
		len(queries), batchTime, batchTime.Seconds()*1000/float64(len(queries)),
		totalAttention/len(results))

	// Adaptive top-k: precision is raised only until the top-k set is
	// provably stable, so easy queries finish at coarse (cheap) settings.
	// Rounds reuse one pooled engine via per-query epsilon overrides.
	for _, u := range queries[:4] {
		t1 := time.Now()
		res, err := client.TopKAdaptive(ctx, u, 1, 0.08, 0.005)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("u=%-6d top match certified at eps=%-6g after %d round(s) in %v: node %d (%.4f)\n",
			u, res.Epsilon, res.Rounds, time.Since(t1),
			res.Results[0].Node, res.Results[0].Score)
	}
}
