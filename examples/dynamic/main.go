// Realtime queries on an evolving graph — the scenario that motivates
// index-free processing (paper §1): "the underlying graph can change
// frequently and unpredictably, meaning that query processing must not
// rely on heavy pre-computations whose results are expensive to update."
//
// This example interleaves batches of edge insertions with single-source
// queries. SimPush only needs the updated adjacency lists, so each query
// reflects the newest graph at zero maintenance cost; an index-based
// method (READS here) must rebuild its whole index to stay correct. The
// printed timings make the gap concrete.
//
//	go run ./examples/dynamic
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	simpush "github.com/simrank/simpush"
)

func main() {
	const n = 40000
	base, err := simpush.SyntheticSocialGraph(n, 12, 21)
	if err != nil {
		log.Fatal(err)
	}
	var from, to []int32
	base.Edges(func(f, t int32) {
		from = append(from, f)
		to = append(to, t)
	})
	fmt.Printf("social graph: %d nodes, %d edges; simulating live updates\n\n", base.N(), base.M())

	g := base
	const user = int32(777)
	rng := uint64(1)
	for round := 1; round <= 3; round++ {
		// A batch of new follow edges arrives.
		for i := 0; i < 500; i++ {
			rng = rng*6364136223846793005 + 1442695040888963407
			f := int32(rng % uint64(n))
			rng = rng*6364136223846793005 + 1442695040888963407
			t := int32(rng % uint64(n))
			if f != t {
				from = append(from, f)
				to = append(to, t)
			}
		}
		tRebuild := time.Now()
		g, err = simpush.FromEdges(from, to, false)
		if err != nil {
			log.Fatal(err)
		}
		adjRebuild := time.Since(tRebuild)

		// Index-free: query the fresh graph immediately.
		client, err := simpush.NewClient(g, simpush.Options{Epsilon: 0.02, Seed: 5})
		if err != nil {
			log.Fatal(err)
		}
		tq := time.Now()
		top, err := client.TopK(context.Background(), user, 5)
		if err != nil {
			log.Fatal(err)
		}
		simPushTotal := adjRebuild + time.Since(tq)

		// Index-based: READS must rebuild its index first.
		readsEng, err := simpush.NewMethod("READS", g, 2, 5) // r=100, t=10
		if err != nil {
			log.Fatal(err)
		}
		tb := time.Now()
		if err := readsEng.Build(); err != nil {
			log.Fatal(err)
		}
		readsBuild := time.Since(tb)
		tq2 := time.Now()
		if _, err := readsEng.Query(context.Background(), user); err != nil {
			log.Fatal(err)
		}
		readsTotal := readsBuild + time.Since(tq2)

		fmt.Printf("update round %d (m=%d):\n", round, g.M())
		fmt.Printf("  SimPush  first fresh answer in %v (adjacency rebuild %v + query)\n",
			simPushTotal, adjRebuild)
		fmt.Printf("  READS    first fresh answer in %v (index rebuild %v + query)\n",
			readsTotal, readsBuild)
		if len(top) > 0 {
			fmt.Printf("  current top match for user %d: node %d (%.4f)\n\n",
				user, top[0].Node, top[0].Score)
		}
	}
	fmt.Println("index-free processing answers on the live graph; every index-based")
	fmt.Println("method pays its full preprocessing again after each change.")
}
