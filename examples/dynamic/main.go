// Realtime queries on an evolving graph — the scenario that motivates
// index-free processing (paper §1): "the underlying graph can change
// frequently and unpredictably, meaning that query processing must not
// rely on heavy pre-computations whose results are expensive to update."
//
// One long-lived Client is bound to a DynamicGraph (a live GraphSource).
// Batches of edge insertions land concurrently with queries, and every
// query automatically answers on the newest committed state: no manual
// Snapshot(), no Client rebuild, no engine reconstruction — pooled
// engines rebind to the fresh snapshot in place. An index-based method
// (READS here) must rebuild its whole index after every batch to stay
// correct. The printed timings make the gap concrete, and the final round
// shows View pinning one epoch while the graph keeps moving.
//
//	go run ./examples/dynamic
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	simpush "github.com/simrank/simpush"
)

func main() {
	ctx := context.Background()
	const n = 40000
	base, err := simpush.SyntheticSocialGraph(n, 12, 21)
	if err != nil {
		log.Fatal(err)
	}

	// The live graph and the one client that serves it, for good.
	live := simpush.DynamicFromGraph(base)
	client, err := simpush.NewClient(live, simpush.Options{Epsilon: 0.02, Seed: 5})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("social graph: %d nodes, %d edges; serving while updates stream in\n\n",
		base.N(), base.M())

	const user = int32(777)
	rng := uint64(1)
	for round := 1; round <= 3; round++ {
		// A batch of new follow edges arrives on the live graph.
		for i := 0; i < 500; i++ {
			rng = rng*6364136223846793005 + 1442695040888963407
			f := int32(rng % uint64(n))
			rng = rng*6364136223846793005 + 1442695040888963407
			t := int32(rng % uint64(n))
			if f != t {
				if err := live.AddEdge(f, t); err != nil {
					log.Fatal(err)
				}
			}
		}

		// Index-free serving: the same client answers on the new edges
		// immediately. The first query after a batch pays the (lazy,
		// amortized) CSR snapshot; the engine itself just rebinds.
		tq := time.Now()
		top, err := client.TopK(ctx, user, 5)
		if err != nil {
			log.Fatal(err)
		}
		simPushTotal := time.Since(tq)
		epoch, err := client.Epoch()
		if err != nil {
			log.Fatal(err)
		}

		// Index-based: READS must rebuild its index on a fresh snapshot.
		g := client.Graph()
		readsEng, err := simpush.NewMethod("READS", g, 2, 5) // r=100, t=10
		if err != nil {
			log.Fatal(err)
		}
		tb := time.Now()
		if err := readsEng.Build(); err != nil {
			log.Fatal(err)
		}
		readsBuild := time.Since(tb)
		tq2 := time.Now()
		if _, err := readsEng.Query(ctx, user); err != nil {
			log.Fatal(err)
		}
		readsTotal := readsBuild + time.Since(tq2)

		fmt.Printf("update round %d (epoch %d, m=%d):\n", round, epoch, g.M())
		fmt.Printf("  SimPush  fresh answer in %v (same client, engine rebound in place)\n",
			simPushTotal)
		fmt.Printf("  READS    fresh answer in %v (index rebuild %v + query)\n",
			readsTotal, readsBuild)
		if len(top) > 0 {
			fmt.Printf("  current top match for user %d: node %d (%.4f)\n\n",
				user, top[0].Node, top[0].Score)
		}
	}

	// Consistent multi-call reads: a View pins one epoch, so the pair
	// lookup matches the ranking even if edges keep arriving in between.
	view, err := client.View(ctx)
	if err != nil {
		log.Fatal(err)
	}
	top, err := view.TopK(ctx, user, 1)
	if err != nil {
		log.Fatal(err)
	}
	if err := live.AddEdge(user, 0); err != nil { // an update lands mid-workflow
		log.Fatal(err)
	}
	if len(top) > 0 {
		s, err := view.Pair(ctx, user, top[0].Node)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("pinned view (epoch %d): s(%d, %d) = %.4f, consistent with its ranking\n",
			view.Epoch(), user, top[0].Node, s)
	}
	fmt.Println("\nindex-free serving answers on the live graph; every index-based")
	fmt.Println("method pays its full preprocessing again after each change.")
}
