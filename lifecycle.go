package simpush

import (
	"errors"
)

// begin registers one top-level query call against the client lifecycle,
// failing fast with ErrClientClosed once Close has been called. Every
// successful begin must be paired with end.
func (c *Client) begin() error {
	c.closeMu.RLock()
	defer c.closeMu.RUnlock()
	if c.closed {
		return ErrClientClosed
	}
	c.inflight.Add(1)
	c.stats.inFlight.Add(1)
	return nil
}

// end unregisters a query call and records its outcome.
func (c *Client) end(err error) {
	if err != nil && !errors.Is(err, ErrClientClosed) {
		c.stats.errors.Add(1)
	}
	c.stats.inFlight.Add(-1)
	c.inflight.Done()
}

// Close shuts the client down for serving: new queries fail immediately
// with ErrClientClosed, in-flight queries run to completion, and the
// engine pool is released once the last of them returns. Close blocks
// until the drain is complete, so when it returns no engine is running
// and the pooled scratch is collectable. Close is idempotent; repeated
// calls wait for the same drain and return nil.
//
// Close does not cancel in-flight queries — pass per-query contexts with
// deadlines to bound the drain. Non-query accessors (Graph, Epoch,
// Options, Source, Stats) keep working on a closed client.
func (c *Client) Close() error {
	c.closeMu.Lock()
	c.closed = true
	c.closeMu.Unlock()
	c.inflight.Wait()

	// No query is running and none can start, so the engine references can
	// be dropped without synchronization: the pinned primary, its free
	// slot, and every idle pooled engine become garbage now instead of
	// living as long as the Client value does.
	c.primary = nil
	c.primaryFree.Store(nil)
	c.pool.New = nil
	// Drain engines the pool still holds so they don't survive in the
	// pool's per-P caches.
	for c.pool.Get() != nil {
	}
	return nil
}

// ClientStats is a point-in-time snapshot of a client's query counters,
// the backing data of a serving layer's /statsz endpoint. Counters are
// cumulative since NewClient.
type ClientStats struct {
	// Queries counts engine query executions. Batch items and adaptive
	// top-k rounds count individually — this is the number of times the
	// SimPush algorithm ran, not the number of API calls.
	Queries uint64
	// Errors counts top-level query calls that returned a non-nil error
	// (validation failures, snapshot errors, cancellations). Queries
	// rejected because the client is closed are not counted.
	Errors uint64
	// InFlight is the number of top-level query calls currently running.
	InFlight int64
}

// Stats returns the client's current counters. It is safe to call
// concurrently with queries and after Close.
func (c *Client) Stats() ClientStats {
	return ClientStats{
		Queries:  c.stats.queries.Load(),
		Errors:   c.stats.errors.Load(),
		InFlight: c.stats.inFlight.Load(),
	}
}
