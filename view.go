package simpush

import (
	"context"
)

// A View is a pinned-epoch handle on a Client's graph source: every query
// made through it runs on the one snapshot observed when the view was
// taken, regardless of how the source mutates afterwards. Use it when a
// multi-call workflow needs internal consistency — a SingleSource followed
// by Pair lookups, a batch compared against individual queries, or
// TopKAdaptive rounds whose certificates must all speak about the same
// graph. Plain Client queries, by contrast, always chase the newest
// committed state.
//
// A View is a cheap immutable value (it pins a snapshot, not an engine);
// it is safe for concurrent use and never becomes invalid — it just grows
// stale. Take a fresh view to advance.
type View struct {
	c     *Client
	g     *Graph
	epoch uint64
}

// View pins the source's current committed snapshot and returns a handle
// whose queries all observe exactly that state. For a *DynamicGraph
// source, taking a view may materialize the snapshot (a CSR rebuild), so
// the context is honored; for a static source it is free.
func (c *Client) View(ctx context.Context) (*View, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	g, epoch, err := c.snapshot()
	if err != nil {
		return nil, err
	}
	return &View{c: c, g: g, epoch: epoch}, nil
}

// Epoch returns the epoch of the pinned snapshot (0 for a static source).
func (v *View) Epoch() uint64 { return v.epoch }

// Graph returns the pinned snapshot itself.
func (v *View) Graph() *Graph { return v.g }

// Client returns the client the view was taken from.
func (v *View) Client() *Client { return v.c }

// SingleSource estimates s(u, v) for every v on the pinned snapshot.
func (v *View) SingleSource(ctx context.Context, u int32, opts ...QueryOption) (*Result, error) {
	return v.c.singleSourceOn(ctx, v.g, u, opts)
}

// TopK runs a single-source query on the pinned snapshot and returns the
// k most similar nodes (excluding u itself) in descending score order.
func (v *View) TopK(ctx context.Context, u int32, k int, opts ...QueryOption) ([]Ranked, error) {
	res, err := v.SingleSource(ctx, u, opts...)
	if err != nil {
		return nil, err
	}
	return TopK(res.Scores, k, u), nil
}

// Pair estimates the single SimRank value s(u, v) on the pinned snapshot.
func (v *View) Pair(ctx context.Context, u, w int32, opts ...QueryOption) (float64, error) {
	return v.c.pairOn(ctx, v.g, u, w, opts)
}

// BatchSingleSource answers many single-source queries concurrently, all
// on the pinned snapshot. parallelism <= 0 selects GOMAXPROCS workers.
func (v *View) BatchSingleSource(ctx context.Context, queries []int32, parallelism int, opts ...QueryOption) ([]*Result, error) {
	return v.c.batchSingleSourceOn(ctx, v.g, queries, parallelism, opts)
}

// TopKAdaptive runs the adaptive top-k search on the pinned snapshot; see
// Client.TopKAdaptive for the search semantics.
func (v *View) TopKAdaptive(ctx context.Context, u int32, k int, startEps, floorEps float64, opts ...QueryOption) (*AdaptiveTopK, error) {
	return v.c.topKAdaptiveOn(ctx, v.g, u, k, startEps, floorEps, opts)
}
