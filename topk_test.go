package simpush

import (
	"context"
	"testing"
)

// Edge cases of top-k extraction: k <= 0, k beyond the candidate count,
// and fully tied scores.
func TestTopKEdgeCases(t *testing.T) {
	scores := []float64{1.0, 0.5, 0.5, 0.5, 0.5}

	// k <= 0 yields empty results, never a panic.
	if got := TopK(scores, 0, 0); len(got) != 0 {
		t.Fatalf("k=0: got %v", got)
	}
	if got := TopK(scores, -3, 0); len(got) != 0 {
		t.Fatalf("k=-3: got %v", got)
	}

	// k > n clamps to the candidate count (n-1 with the query excluded).
	got := TopK(scores, 100, 0)
	if len(got) != 4 {
		t.Fatalf("k>n: len = %d, want 4", len(got))
	}

	// All-tied scores break ties by ascending node id, deterministically.
	for i, r := range got {
		if r.Node != int32(i+1) || r.Score != 0.5 {
			t.Fatalf("tied ordering: %v", got)
		}
	}

	// rankedFrom guards k < 0 as well.
	if out := rankedFrom(scores, []int32{1, 2}, -1); len(out) != 0 {
		t.Fatalf("rankedFrom k=-1: %v", out)
	}

	// No exclusion when exclude is negative.
	if got := TopK(scores, 2, -1); len(got) != 2 || got[0].Node != 0 {
		t.Fatalf("exclude=-1: %v", got)
	}
}

// SortRankedStable on all-tied scores must preserve ascending id order and
// stay stable for equal (score, id)-distinct entries.
func TestSortRankedStableAllTied(t *testing.T) {
	rs := []Ranked{{4, 0.2}, {1, 0.2}, {3, 0.2}, {2, 0.2}}
	SortRankedStable(rs)
	for i, r := range rs {
		if r.Node != int32(i+1) {
			t.Fatalf("tied sort: %v", rs)
		}
	}
}

// Client.TopK mirrors the package-level clamping semantics.
func TestClientTopKEdgeCases(t *testing.T) {
	g, err := FromEdges([]int32{0, 0, 0}, []int32{1, 2, 3}, false)
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewClient(g, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if got, err := c.TopK(ctx, 1, 0); err != nil || len(got) != 0 {
		t.Fatalf("k=0: %v, %v", got, err)
	}
	if got, err := c.TopK(ctx, 1, -5); err != nil || len(got) != 0 {
		t.Fatalf("k<0: %v, %v", got, err)
	}
	got, err := c.TopK(ctx, 1, 50)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("k>n: len = %d, want 3 (n-1 candidates)", len(got))
	}
	// s(1,2) = s(1,3) = c: tied scores order by node id.
	if got[0].Node != 2 || got[1].Node != 3 {
		t.Fatalf("tied client topk: %v", got)
	}
}

func TestTopKAdaptiveMatchesFine(t *testing.T) {
	g, err := SyntheticWebGraph(5000, 8, 13)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := New(g, Options{Epsilon: 0.02, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	u := int32(321)
	adaptive, err := eng.TopKAdaptive(u, 10, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if adaptive.Rounds < 1 || len(adaptive.Results) == 0 {
		t.Fatalf("adaptive = %+v", adaptive)
	}

	fine, err := New(g, Options{Epsilon: 0.002, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	want, err := fine.TopK(u, 10)
	if err != nil {
		t.Fatal(err)
	}
	// The adaptive set must agree with the fine set on the clear part of
	// the ranking (scores can tie near the tail; compare as sets).
	wantSet := map[int32]bool{}
	for _, r := range want {
		wantSet[r.Node] = true
	}
	agree := 0
	for _, r := range adaptive.Results {
		if wantSet[r.Node] {
			agree++
		}
	}
	if agree < len(adaptive.Results)-2 {
		t.Fatalf("adaptive top-k diverges: %d/%d agree", agree, len(adaptive.Results))
	}
}

func TestTopKAdaptiveStopsEarlyOnClearGap(t *testing.T) {
	// Shared-parent graph: s(1,2)=0.6 and everything else is 0 — a huge
	// gap, so the coarsest round must already certify the answer.
	g, err := FromEdges([]int32{0, 0}, []int32{1, 2}, false)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := New(g, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.TopKAdaptive(1, 1, 0.08, 0.002)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds != 1 {
		t.Fatalf("rounds = %d, want 1 (gap is 0.6)", res.Rounds)
	}
	if len(res.Results) != 1 || res.Results[0].Node != 2 {
		t.Fatalf("results = %v", res.Results)
	}
}

func TestTopKAdaptiveValidation(t *testing.T) {
	g, err := FromEdges([]int32{0}, []int32{1}, false)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := New(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.TopKAdaptive(0, 0, 0, 0); err == nil {
		t.Fatal("k=0 accepted")
	}
	if _, err := eng.TopKAdaptive(99, 1, 0, 0); err == nil {
		t.Fatal("bad node accepted")
	}
	// startEps below floor clamps rather than erroring
	if _, err := eng.TopKAdaptive(0, 1, 0.001, 0.01); err != nil {
		t.Fatal(err)
	}
}
