package simpush

import (
	"testing"
)

func TestTopKAdaptiveMatchesFine(t *testing.T) {
	g, err := SyntheticWebGraph(5000, 8, 13)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := New(g, Options{Epsilon: 0.02, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	u := int32(321)
	adaptive, err := eng.TopKAdaptive(u, 10, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if adaptive.Rounds < 1 || len(adaptive.Results) == 0 {
		t.Fatalf("adaptive = %+v", adaptive)
	}

	fine, err := New(g, Options{Epsilon: 0.002, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	want, err := fine.TopK(u, 10)
	if err != nil {
		t.Fatal(err)
	}
	// The adaptive set must agree with the fine set on the clear part of
	// the ranking (scores can tie near the tail; compare as sets).
	wantSet := map[int32]bool{}
	for _, r := range want {
		wantSet[r.Node] = true
	}
	agree := 0
	for _, r := range adaptive.Results {
		if wantSet[r.Node] {
			agree++
		}
	}
	if agree < len(adaptive.Results)-2 {
		t.Fatalf("adaptive top-k diverges: %d/%d agree", agree, len(adaptive.Results))
	}
}

func TestTopKAdaptiveStopsEarlyOnClearGap(t *testing.T) {
	// Shared-parent graph: s(1,2)=0.6 and everything else is 0 — a huge
	// gap, so the coarsest round must already certify the answer.
	g, err := FromEdges([]int32{0, 0}, []int32{1, 2}, false)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := New(g, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.TopKAdaptive(1, 1, 0.08, 0.002)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds != 1 {
		t.Fatalf("rounds = %d, want 1 (gap is 0.6)", res.Rounds)
	}
	if len(res.Results) != 1 || res.Results[0].Node != 2 {
		t.Fatalf("results = %v", res.Results)
	}
}

func TestTopKAdaptiveValidation(t *testing.T) {
	g, err := FromEdges([]int32{0}, []int32{1}, false)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := New(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.TopKAdaptive(0, 0, 0, 0); err == nil {
		t.Fatal("k=0 accepted")
	}
	if _, err := eng.TopKAdaptive(99, 1, 0, 0); err == nil {
		t.Fatal("bad node accepted")
	}
	// startEps below floor clamps rather than erroring
	if _, err := eng.TopKAdaptive(0, 1, 0.001, 0.01); err != nil {
		t.Fatal(err)
	}
}
