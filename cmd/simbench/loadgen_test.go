package main

import (
	"context"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/simrank/simpush"
	"github.com/simrank/simpush/internal/cluster"
	"github.com/simrank/simpush/internal/server"
)

// TestHTTPLoadAgainstServer runs the load generator end to end against an
// in-process serving stack and checks the acceptance path: a
// repeated-query (hot) workload must report throughput, latency
// percentiles, and a nonzero cache hit rate.
func TestHTTPLoadAgainstServer(t *testing.T) {
	g, err := simpush.SyntheticWebGraph(400, 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	client, err := simpush.NewClient(g, simpush.Options{Epsilon: 0.05, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	srv, err := server.New(server.Config{Client: client})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()

	var out strings.Builder
	err = runHTTPLoad(&out, loadOptions{
		base:        ts.URL,
		duration:    300 * time.Millisecond,
		concurrency: 4,
		endpoint:    "single-source",
		hot:         4,   // tiny hot set:
		hotFrac:     1.0, // every request repeats → hits dominate
		timeout:     10 * time.Second,
		seed:        99,
	})
	if err != nil {
		t.Fatal(err)
	}
	report := out.String()
	for _, want := range []string{"throughput_rps", "latency_p50_ms", "latency_p99_ms", "cache_hit_rate"} {
		if !strings.Contains(report, want) {
			t.Fatalf("report missing %q:\n%s", want, report)
		}
	}
	if strings.Contains(report, "cache_hit_rate\t0.000") {
		t.Fatalf("pure hot workload reported zero cache hit rate:\n%s", report)
	}
	if strings.Contains(report, "requests\t0\n") {
		t.Fatalf("no requests issued:\n%s", report)
	}
}

func TestRunHTTPLoadValidatesEndpoint(t *testing.T) {
	var out strings.Builder
	if err := runHTTPLoad(&out, loadOptions{base: "http://127.0.0.1:1", endpoint: "bogus"}); err == nil {
		t.Fatal("bogus endpoint accepted")
	}
}

// TestHTTPLoadThroughProxyReportsReplicaShare points the load generator
// at a simproxy over two standalone replicas and expects the report to
// gain per-replica request-share and hit-rate lines.
func TestHTTPLoadThroughProxyReportsReplicaShare(t *testing.T) {
	newReplica := func() *httptest.Server {
		g, err := simpush.SyntheticWebGraph(400, 5, 1)
		if err != nil {
			t.Fatal(err)
		}
		client, err := simpush.NewClient(g, simpush.Options{Epsilon: 0.05, Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { client.Close() })
		srv, err := server.New(server.Config{Client: client})
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(srv)
		t.Cleanup(ts.Close)
		return ts
	}
	r1, r2 := newReplica(), newReplica()
	set, err := cluster.NewSet(cluster.SetConfig{Replicas: []string{r1.URL, r2.URL}})
	if err != nil {
		t.Fatal(err)
	}
	set.ProbeOnce(context.Background())
	proxy, err := cluster.New(cluster.Config{Set: set, Policy: "hash"})
	if err != nil {
		t.Fatal(err)
	}
	pts := httptest.NewServer(proxy.Handler())
	defer pts.Close()

	var out strings.Builder
	err = runHTTPLoad(&out, loadOptions{
		base:        pts.URL,
		duration:    300 * time.Millisecond,
		concurrency: 4,
		endpoint:    "single-source",
		hot:         8,
		hotFrac:     1.0,
		timeout:     10 * time.Second,
		seed:        99,
	})
	if err != nil {
		t.Fatal(err)
	}
	report := out.String()
	for _, want := range []string{"replica_share[", "replica_hit_rate[", "replica_requests["} {
		if strings.Count(report, want) != 2 {
			t.Fatalf("report should carry %q once per replica:\n%s", want, report)
		}
	}
}
