package main

import "testing"

func TestSelectDatasetsDefault(t *testing.T) {
	dss, err := selectDatasets("")
	if err != nil {
		t.Fatal(err)
	}
	if len(dss) != 8 {
		t.Fatalf("default dataset count = %d, want 8", len(dss))
	}
}

func TestSelectDatasetsFilter(t *testing.T) {
	dss, err := selectDatasets("uk-sim, dblp-sim")
	if err != nil {
		t.Fatal(err)
	}
	if len(dss) != 2 || dss[0].Name != "uk-sim" || dss[1].Name != "dblp-sim" {
		t.Fatalf("filtered = %v", dss)
	}
}

func TestSelectDatasetsUnknown(t *testing.T) {
	if _, err := selectDatasets("bogus"); err == nil {
		t.Fatal("unknown dataset accepted")
	}
}
