package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"

	"github.com/simrank/simpush/internal/cluster"
	"github.com/simrank/simpush/internal/server"
	"github.com/simrank/simpush/internal/workload"
)

// loadOptions parameterizes the HTTP load-generator mode (-http).
//
// Deprecated: -http predates the workload subsystem and survives as a
// thin shim over internal/workload — one closed-loop hot-set class, the
// historical default. New load runs should use cmd/simload, which adds
// open-loop arrival processes, Zipfian popularity, mutation traffic,
// multi-class mixes and SLO scoring.
type loadOptions struct {
	base        string        // daemon base URL
	duration    time.Duration // measurement window
	concurrency int           // concurrent request loops
	endpoint    string        // single-source | topk | pair | mix
	k           int           // k for topk requests
	hot         int           // size of the hot node set
	hotFrac     float64       // fraction of queries drawn from the hot set
	eps         float64       // per-query eps override (0 = server default)
	timeout     time.Duration // per-request client timeout
	seed        uint64
}

// spec translates the historical flag surface into a single closed-loop
// workload class with hot-pinned seeds (repeats of a hot node are
// cache-identical; cold queries draw fresh seeds).
func (opt loadOptions) spec() (*workload.Spec, error) {
	var mix []workload.OpMix
	switch opt.endpoint {
	case "single-source":
		mix = []workload.OpMix{{Op: workload.OpSingleSource, Weight: 1}}
	case "topk":
		mix = []workload.OpMix{{Op: workload.OpTopK, Weight: 1}}
	case "pair":
		mix = []workload.OpMix{{Op: workload.OpPair, Weight: 1}}
	case "mix":
		mix = []workload.OpMix{
			{Op: workload.OpSingleSource, Weight: 1},
			{Op: workload.OpTopK, Weight: 1},
			{Op: workload.OpPair, Weight: 1},
		}
	default:
		return nil, fmt.Errorf("unknown endpoint %q (want single-source|topk|pair|mix)", opt.endpoint)
	}
	pop := workload.PopularitySpec{Dist: "uniform"}
	if opt.hot > 0 {
		pop = workload.PopularitySpec{Dist: "hotset", Hot: opt.hot, HotFrac: opt.hotFrac}
	}
	conc := opt.concurrency
	if conc < 1 {
		conc = 1
	}
	spec := &workload.Spec{
		Name:     "simbench-http",
		Duration: workload.Duration(opt.duration),
		Seed:     opt.seed,
		Classes: []workload.ClassSpec{{
			Name:       "load",
			Arrival:    workload.ArrivalSpec{Process: "closed", Concurrency: conc},
			Popularity: pop,
			Mix:        mix,
			K:          opt.k,
			Eps:        opt.eps,
			SeedPolicy: "hot-pinned",
		}},
	}
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	return spec, nil
}

// fetchStats decodes /statsz. The target may be a single simrankd or a
// simproxy — the proxy mirrors the daemon's top-level field names, and
// its extra per-replica breakdown comes back in the second return (nil
// against a plain daemon).
func fetchStats(client *http.Client, base string) (server.StatsSnapshot, *cluster.StatsSnapshot, error) {
	var snap server.StatsSnapshot
	resp, err := client.Get(base + "/statsz")
	if err != nil {
		return snap, nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return snap, nil, fmt.Errorf("statsz: status %d", resp.StatusCode)
	}
	raw, err := io.ReadAll(io.LimitReader(resp.Body, 4<<20))
	if err != nil {
		return snap, nil, err
	}
	if err := json.Unmarshal(raw, &snap); err != nil {
		return snap, nil, err
	}
	var proxy cluster.StatsSnapshot
	if json.Unmarshal(raw, &proxy) == nil && proxy.Proxy {
		return snap, &proxy, nil
	}
	return snap, nil, nil
}

// runHTTPLoad drives the daemon through the workload subsystem for the
// configured window and writes the historical TSV report.
func runHTTPLoad(w io.Writer, opt loadOptions) error {
	spec, err := opt.spec()
	if err != nil {
		return err
	}
	client := &http.Client{Timeout: opt.timeout}

	// The runner reads the shared /statsz fields itself; this extra pair
	// of snapshots exists only for the proxy's per-replica breakdown.
	_, proxyBefore, err := fetchStats(client, opt.base)
	if err != nil {
		return fmt.Errorf("reaching daemon: %w", err)
	}

	fmt.Fprintf(w, "# NOTE: simbench -http is deprecated; use simload (same engine, adds open-loop arrivals, scenarios, SLO scoring)\n")
	fmt.Fprintf(w, "# effective seed: %d (replay with -seed %d)\n", spec.Seed, spec.Seed)

	rep, err := workload.Run(context.Background(), spec, workload.RunOptions{
		Target:     opt.base,
		Timeout:    opt.timeout,
		HTTPClient: client,
	})
	if err != nil {
		return err
	}

	_, proxyAfter, err := fetchStats(client, opt.base)
	if err != nil {
		return fmt.Errorf("reading final stats: %w", err)
	}
	writeLoadReport(w, opt, rep)
	writeReplicaReport(w, proxyBefore, proxyAfter)
	return nil
}

// writeReplicaReport appends the per-replica request share and cache hit
// rate over the measurement window when the target is a simproxy.
func writeReplicaReport(w io.Writer, before, after *cluster.StatsSnapshot) {
	if before == nil || after == nil {
		return
	}
	prev := make(map[string]cluster.ReplicaStats, len(before.Replicas))
	for _, r := range before.Replicas {
		prev[r.Name] = r
	}
	var totalProxied uint64
	for _, r := range after.Replicas {
		totalProxied += r.Proxied - prev[r.Name].Proxied
	}
	for _, r := range after.Replicas {
		b := prev[r.Name]
		proxied := r.Proxied - b.Proxied
		share := 0.0
		if totalProxied > 0 {
			share = float64(proxied) / float64(totalProxied)
		}
		hits := r.Cache.Hits - b.Cache.Hits
		misses := r.Cache.Misses - b.Cache.Misses
		hitRate := 0.0
		if hits+misses > 0 {
			hitRate = float64(hits) / float64(hits+misses)
		}
		fmt.Fprintf(w, "replica_requests[%s]\t%d\n", r.Name, proxied)
		fmt.Fprintf(w, "replica_share[%s]\t%.3f\n", r.Name, share)
		fmt.Fprintf(w, "replica_hit_rate[%s]\t%.3f\n", r.Name, hitRate)
	}
}

// writeLoadReport renders the workload report in the TSV shape the -http
// mode has always produced, so scripts parsing it keep working.
func writeLoadReport(w io.Writer, opt loadOptions, rep *workload.Report) {
	fmt.Fprintf(w, "# simbench HTTP load: %s for %s, %d workers, endpoint=%s, hot=%d@%.2f\n",
		opt.base, (time.Duration(rep.DurationSeconds * float64(time.Second))).Round(time.Millisecond),
		opt.concurrency, opt.endpoint, opt.hot, opt.hotFrac)
	fmt.Fprintf(w, "metric\tvalue\n")
	fmt.Fprintf(w, "requests\t%d\n", rep.Requests)
	fmt.Fprintf(w, "ok\t%d\n", rep.OK)
	fmt.Fprintf(w, "rejected_429\t%d\n", rep.Rejected429)
	fmt.Fprintf(w, "transport_errors\t%d\n", rep.TransportErrors)
	fmt.Fprintf(w, "other_status\t%d\n", rep.Errors4xx+rep.Errors5xx)
	fmt.Fprintf(w, "throughput_rps\t%.1f\n", rep.ThroughputRPS)
	fmt.Fprintf(w, "latency_p50_ms\t%.3f\n", rep.Latency.P50Ms)
	fmt.Fprintf(w, "latency_p90_ms\t%.3f\n", rep.Latency.P90Ms)
	fmt.Fprintf(w, "latency_p99_ms\t%.3f\n", rep.Latency.P99Ms)
	if rep.OK > 0 {
		fmt.Fprintf(w, "latency_max_ms\t%.3f\n", rep.Latency.MaxMs)
	}
	fmt.Fprintf(w, "cache_hits\t%d\n", rep.Cache.Hits)
	fmt.Fprintf(w, "cache_misses\t%d\n", rep.Cache.Misses)
	fmt.Fprintf(w, "cache_coalesced\t%d\n", rep.Cache.Coalesced)
	fmt.Fprintf(w, "cache_hit_rate\t%.3f\n", rep.Cache.HitRate)
	fmt.Fprintf(w, "engine_queries\t%d\n", rep.EngineQueries)
	fmt.Fprintf(w, "server_epoch\t%d\n", rep.ServerEpoch)
}
