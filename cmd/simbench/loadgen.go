package main

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/url"
	"sort"
	"sync"
	"time"

	"github.com/simrank/simpush/internal/cluster"
	"github.com/simrank/simpush/internal/server"
)

// loadOptions parameterizes the HTTP load-generator mode (-http): it
// drives a running simrankd and reports the serving-path baseline the
// library benchmarks can't see — throughput, latency percentiles, and
// cache hit rate under repeated-query traffic.
type loadOptions struct {
	base        string        // daemon base URL
	duration    time.Duration // measurement window
	concurrency int           // concurrent request loops
	endpoint    string        // single-source | topk | pair | mix
	k           int           // k for topk requests
	hot         int           // size of the hot node set
	hotFrac     float64       // fraction of queries drawn from the hot set
	eps         float64       // per-query eps override (0 = server default)
	timeout     time.Duration // per-request client timeout
	seed        uint64
}

type loadSample struct {
	latency time.Duration
	status  int
	err     error
}

// fetchStats decodes /statsz. The target may be a single simrankd or a
// simproxy — the proxy mirrors the daemon's top-level field names, and
// its extra per-replica breakdown comes back in the second return (nil
// against a plain daemon).
func fetchStats(client *http.Client, base string) (server.StatsSnapshot, *cluster.StatsSnapshot, error) {
	var snap server.StatsSnapshot
	resp, err := client.Get(base + "/statsz")
	if err != nil {
		return snap, nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return snap, nil, fmt.Errorf("statsz: status %d", resp.StatusCode)
	}
	raw, err := io.ReadAll(io.LimitReader(resp.Body, 4<<20))
	if err != nil {
		return snap, nil, err
	}
	if err := json.Unmarshal(raw, &snap); err != nil {
		return snap, nil, err
	}
	var proxy cluster.StatsSnapshot
	if json.Unmarshal(raw, &proxy) == nil && proxy.Proxy {
		return snap, &proxy, nil
	}
	return snap, nil, nil
}

// queryURL builds one request against the daemon. Hot queries are seeded
// with a constant derived from the node, so repeats are cache-identical;
// cold queries draw a fresh seed so they exercise the engine.
func queryURL(opt loadOptions, rng *rand.Rand, n int32) string {
	endpoint := opt.endpoint
	if endpoint == "mix" {
		switch rng.Intn(3) {
		case 0:
			endpoint = "single-source"
		case 1:
			endpoint = "topk"
		default:
			endpoint = "pair"
		}
	}
	hot := rng.Float64() < opt.hotFrac
	var node int32
	if hot {
		node = int32(rng.Intn(opt.hot))
	} else {
		node = rng.Int31n(n)
	}
	v := url.Values{}
	if hot {
		v.Set("seed", fmt.Sprint(uint64(node)*2654435761+1))
	} else {
		v.Set("seed", fmt.Sprint(rng.Uint64()))
	}
	if opt.eps > 0 {
		v.Set("eps", fmt.Sprint(opt.eps))
	}
	switch endpoint {
	case "topk":
		v.Set("node", fmt.Sprint(node))
		v.Set("k", fmt.Sprint(opt.k))
	case "pair":
		v.Set("u", fmt.Sprint(node))
		v.Set("v", fmt.Sprint((node+1)%n))
	default:
		v.Set("node", fmt.Sprint(node))
	}
	return opt.base + "/v1/" + endpoint + "?" + v.Encode()
}

// runHTTPLoad drives the daemon for the configured window and writes a
// TSV report.
func runHTTPLoad(w io.Writer, opt loadOptions) error {
	switch opt.endpoint {
	case "single-source", "topk", "pair", "mix":
	default:
		return fmt.Errorf("unknown endpoint %q (want single-source|topk|pair|mix)", opt.endpoint)
	}
	if opt.concurrency < 1 {
		opt.concurrency = 1
	}
	client := &http.Client{Timeout: opt.timeout}

	before, proxyBefore, err := fetchStats(client, opt.base)
	if err != nil {
		return fmt.Errorf("reaching daemon: %w", err)
	}
	n := before.GraphN
	if n < 1 {
		return fmt.Errorf("daemon reports an empty graph (n=%d)", n)
	}
	if opt.hot <= 0 || opt.hot > int(n) {
		opt.hot = int(n)
	}

	deadline := time.Now().Add(opt.duration)
	samples := make([][]loadSample, opt.concurrency)
	var wg sync.WaitGroup
	start := time.Now()
	for wkr := 0; wkr < opt.concurrency; wkr++ {
		wg.Add(1)
		go func(wkr int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(opt.seed) + int64(wkr)*7919))
			local := make([]loadSample, 0, 1024)
			for time.Now().Before(deadline) {
				target := queryURL(opt, rng, n)
				t0 := time.Now()
				resp, err := client.Get(target)
				lat := time.Since(t0)
				s := loadSample{latency: lat, err: err}
				if err == nil {
					s.status = resp.StatusCode
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
				}
				local = append(local, s)
			}
			samples[wkr] = local
		}(wkr)
	}
	wg.Wait()
	elapsed := time.Since(start)

	after, proxyAfter, err := fetchStats(client, opt.base)
	if err != nil {
		return fmt.Errorf("reading final stats: %w", err)
	}
	if err := writeLoadReport(w, opt, elapsed, samples, before, after); err != nil {
		return err
	}
	writeReplicaReport(w, proxyBefore, proxyAfter)
	return nil
}

// writeReplicaReport appends the per-replica request share and cache hit
// rate over the measurement window when the target is a simproxy.
func writeReplicaReport(w io.Writer, before, after *cluster.StatsSnapshot) {
	if before == nil || after == nil {
		return
	}
	prev := make(map[string]cluster.ReplicaStats, len(before.Replicas))
	for _, r := range before.Replicas {
		prev[r.Name] = r
	}
	var totalProxied uint64
	for _, r := range after.Replicas {
		totalProxied += r.Proxied - prev[r.Name].Proxied
	}
	for _, r := range after.Replicas {
		b := prev[r.Name]
		proxied := r.Proxied - b.Proxied
		share := 0.0
		if totalProxied > 0 {
			share = float64(proxied) / float64(totalProxied)
		}
		hits := r.Cache.Hits - b.Cache.Hits
		misses := r.Cache.Misses - b.Cache.Misses
		hitRate := 0.0
		if hits+misses > 0 {
			hitRate = float64(hits) / float64(hits+misses)
		}
		fmt.Fprintf(w, "replica_requests[%s]\t%d\n", r.Name, proxied)
		fmt.Fprintf(w, "replica_share[%s]\t%.3f\n", r.Name, share)
		fmt.Fprintf(w, "replica_hit_rate[%s]\t%.3f\n", r.Name, hitRate)
	}
}

func writeLoadReport(w io.Writer, opt loadOptions, elapsed time.Duration, samples [][]loadSample, before, after server.StatsSnapshot) error {
	var (
		lats     []float64
		ok       int
		rejected int
		failed   int
		other    int
	)
	for _, local := range samples {
		for _, s := range local {
			switch {
			case s.err != nil:
				failed++
			case s.status == http.StatusOK:
				ok++
				lats = append(lats, s.latency.Seconds()*1000)
			case s.status == http.StatusTooManyRequests:
				rejected++
			default:
				other++
			}
		}
	}
	total := ok + rejected + failed + other
	sort.Float64s(lats)
	pct := func(q float64) float64 {
		if len(lats) == 0 {
			return 0
		}
		idx := int(q * float64(len(lats)-1))
		return lats[idx]
	}

	hits := after.Cache.Hits - before.Cache.Hits
	misses := after.Cache.Misses - before.Cache.Misses
	coalesced := after.Cache.Coalesced - before.Cache.Coalesced
	hitRate := 0.0
	if hits+misses > 0 {
		hitRate = float64(hits) / float64(hits+misses)
	}
	engineQueries := after.Client.Queries - before.Client.Queries

	fmt.Fprintf(w, "# simbench HTTP load: %s for %s, %d workers, endpoint=%s, hot=%d@%.2f\n",
		opt.base, elapsed.Round(time.Millisecond), opt.concurrency, opt.endpoint, opt.hot, opt.hotFrac)
	fmt.Fprintf(w, "metric\tvalue\n")
	fmt.Fprintf(w, "requests\t%d\n", total)
	fmt.Fprintf(w, "ok\t%d\n", ok)
	fmt.Fprintf(w, "rejected_429\t%d\n", rejected)
	fmt.Fprintf(w, "transport_errors\t%d\n", failed)
	fmt.Fprintf(w, "other_status\t%d\n", other)
	fmt.Fprintf(w, "throughput_rps\t%.1f\n", float64(total)/elapsed.Seconds())
	fmt.Fprintf(w, "latency_p50_ms\t%.3f\n", pct(0.50))
	fmt.Fprintf(w, "latency_p90_ms\t%.3f\n", pct(0.90))
	fmt.Fprintf(w, "latency_p99_ms\t%.3f\n", pct(0.99))
	if len(lats) > 0 {
		fmt.Fprintf(w, "latency_max_ms\t%.3f\n", lats[len(lats)-1])
	}
	fmt.Fprintf(w, "cache_hits\t%d\n", hits)
	fmt.Fprintf(w, "cache_misses\t%d\n", misses)
	fmt.Fprintf(w, "cache_coalesced\t%d\n", coalesced)
	fmt.Fprintf(w, "cache_hit_rate\t%.3f\n", hitRate)
	fmt.Fprintf(w, "engine_queries\t%d\n", engineQueries)
	fmt.Fprintf(w, "server_epoch\t%d\n", after.Epoch)
	return nil
}
