package main

import (
	"context"
	"fmt"
	"io"
	"time"

	"github.com/simrank/simpush"
	"github.com/simrank/simpush/internal/gen"
)

// parallelOptions parameterizes the intra-query speedup experiment.
type parallelOptions struct {
	k       int
	scale   float64
	queries int
	seed    uint64
}

// stageTotals accumulates per-stage and end-to-end wall time over a query
// workload.
type stageTotals struct {
	walk, sourcePush, gamma, reversePush, total time.Duration
}

func (st *stageTotals) add(res *simpush.Result, wall time.Duration) {
	st.walk += res.Durations.Walk
	st.sourcePush += res.Durations.SourcePush
	st.gamma += res.Durations.Gamma
	st.reversePush += res.Durations.ReversePush
	st.total += wall
}

// runParallelBench reports the serial-vs-parallel speedup of the three
// SimPush stages (from Result.StageDurations) and of the end-to-end query,
// per dataset. Queries are seeded pairwise (same seed serial and parallel)
// so the comparison holds the workload fixed up to the documented
// substream difference.
func runParallelBench(w io.Writer, datasets []gen.Dataset, opt parallelOptions) error {
	fmt.Fprintf(w, "# intra-query parallelism: serial vs k=%d (%d queries per dataset)\n", opt.k, opt.queries)
	fmt.Fprintln(w, "dataset\tstage\tserial_ms\tparallel_ms\tspeedup")
	for _, ds := range datasets {
		g, err := ds.Generate(opt.scale)
		if err != nil {
			return err
		}
		client, err := simpush.NewClient(g, simpush.Options{Epsilon: 0.02, Seed: opt.seed})
		if err != nil {
			return err
		}
		var serial, parallel stageTotals
		for i := 0; i < opt.queries; i++ {
			u := int32(uint64(i) * 9973 % uint64(g.N()))
			seedOpt := simpush.WithSeed(opt.seed + uint64(i))
			t0 := time.Now()
			rs, err := client.SingleSource(context.Background(), u, seedOpt)
			if err != nil {
				return err
			}
			serial.add(rs, time.Since(t0))
			t1 := time.Now()
			rp, err := client.SingleSource(context.Background(), u, seedOpt, simpush.WithParallelism(opt.k))
			if err != nil {
				return err
			}
			parallel.add(rp, time.Since(t1))
		}
		client.Close()
		rows := []struct {
			stage    string
			ser, par time.Duration
		}{
			{"walk", serial.walk, parallel.walk},
			{"source-push", serial.sourcePush, parallel.sourcePush},
			{"gamma", serial.gamma, parallel.gamma},
			{"reverse-push", serial.reversePush, parallel.reversePush},
			{"end-to-end", serial.total, parallel.total},
		}
		for _, r := range rows {
			speedup := 0.0
			if r.par > 0 {
				speedup = float64(r.ser) / float64(r.par)
			}
			fmt.Fprintf(w, "%s\t%s\t%.2f\t%.2f\t%.2f\n",
				ds.Name, r.stage,
				float64(r.ser.Microseconds())/1e3/float64(opt.queries),
				float64(r.par.Microseconds())/1e3/float64(opt.queries),
				speedup)
		}
	}
	return nil
}
