// Command simbench regenerates every table and figure of the SimPush
// paper's evaluation (§5) on the synthetic dataset stand-ins.
//
// Experiments (select with -exp):
//
//	table1    complexity comparison + empirical scaling sweep
//	table4    dataset statistics
//	fig4      AvgError@50 vs query time, 7 methods × 5 settings × 8 graphs
//	fig5      Precision@50 vs query time
//	fig6      AvgError@50 vs peak memory
//	figs      Figures 4+5+6 from a single sweep (3x cheaper)
//	fig7      largest stand-in (clueweb-sim): SimPush vs PRSim vs ProbeSim
//	levels    §5.2 in-text stats: avg L, attention counts
//	ablation  γ on/off and Chernoff-vs-Hoeffding walk sizing
//	all       everything above
//
// Full-scale runs take tens of minutes; use -scale/-queries/-datasets to
// subsample. Output is TSV, one block per figure panel.
//
// Example:
//
//	simbench -exp fig4 -scale 0.25 -queries 5 -datasets in2004-sim,dblp-sim
//
// HTTP serving mode (-http) drives a running simrankd daemon instead of
// the in-process library, and reports the serving-path baseline:
// throughput, p50/p90/p99 latency, and cache hit rate under a
// configurable hot-node workload:
//
//	simbench -http http://localhost:8080 -http-duration 30s \
//	    -http-concurrency 16 -http-hot 32 -http-hotfrac 0.8
//
// -http is deprecated: it now runs as a closed-loop shim over the
// internal/workload subsystem and keeps its TSV report, but new load
// runs should use cmd/simload (open-loop arrival processes, Zipfian
// popularity, mutation traffic, scenario presets, SLO scoring).
//
// Parallelism mode (-parallelism k, k > 1) measures intra-query speedup:
// it runs the same seeded single-source queries serially and with
// WithParallelism(k) and prints per-stage (Source-Push, γ, Reverse-Push)
// and end-to-end serial-vs-parallel ratios from StageDurations:
//
//	simbench -parallelism 8 -datasets dblp-sim -scale 0.25 -queries 20
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"github.com/simrank/simpush/internal/bench"
	"github.com/simrank/simpush/internal/gen"
)

func main() {
	var (
		exp          = flag.String("exp", "all", "experiment: table1|table4|fig4|fig5|fig6|fig7|levels|ablation|all")
		scale        = flag.Float64("scale", 1.0, "dataset scale factor")
		queries      = flag.Int("queries", 10, "queries per dataset (paper: 100)")
		k            = flag.Int("k", 50, "top-k for AvgError@k / Precision@k")
		truthSamples = flag.Int("truth", 200000, "MC samples per pooled pair")
		maxIndexGB   = flag.Float64("maxindex", 4, "index memory cap in GB (excluded beyond, like the paper's OOM rule)")
		walkCap      = flag.Int("walkcap", 2_000_000, "per-query walk cap for sampling baselines")
		maxQuery     = flag.Duration("maxquery", 30*time.Second, "per-query time budget (excluded beyond)")
		datasets     = flag.String("datasets", "", "comma-separated dataset filter (default: the paper's eight for figures)")
		methods      = flag.String("methods", "", "comma-separated method filter")
		seed         = flag.Uint64("seed", 0x51e9a7, "random seed")
		verbose      = flag.Bool("v", true, "progress logging to stderr")
		parallelism  = flag.Int("parallelism", 0, "measure intra-query speedup: serial vs this many workers per query (>1 activates)")

		httpBase    = flag.String("http", "", "drive a running simrankd at this base URL instead of the library (deprecated: use simload)")
		httpDur     = flag.Duration("http-duration", 10*time.Second, "HTTP load window")
		httpConc    = flag.Int("http-concurrency", 8, "concurrent HTTP request loops")
		httpEP      = flag.String("http-endpoint", "single-source", "endpoint under load: single-source|topk|pair|mix")
		httpK       = flag.Int("http-k", 10, "k for HTTP topk requests")
		httpHot     = flag.Int("http-hot", 64, "hot node set size (0 = whole graph)")
		httpHotFrac = flag.Float64("http-hotfrac", 0.8, "fraction of requests drawn from the hot set")
		httpEps     = flag.Float64("http-eps", 0, "per-request eps override (0 = server default)")
		httpTimeout = flag.Duration("http-timeout", 30*time.Second, "per-request client timeout")
	)
	flag.Parse()

	if *httpBase != "" {
		err := runHTTPLoad(os.Stdout, loadOptions{
			base:        strings.TrimRight(*httpBase, "/"),
			duration:    *httpDur,
			concurrency: *httpConc,
			endpoint:    *httpEP,
			k:           *httpK,
			hot:         *httpHot,
			hotFrac:     *httpHotFrac,
			eps:         *httpEps,
			timeout:     *httpTimeout,
			seed:        *seed,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "simbench:", err)
			os.Exit(1)
		}
		return
	}

	if *parallelism > 1 {
		dss, err := selectDatasets(*datasets)
		if err != nil {
			fmt.Fprintln(os.Stderr, "simbench:", err)
			os.Exit(2)
		}
		popt := parallelOptions{k: *parallelism, scale: *scale, queries: *queries, seed: *seed}
		if err := runParallelBench(os.Stdout, dss, popt); err != nil {
			fmt.Fprintln(os.Stderr, "simbench:", err)
			os.Exit(1)
		}
		return
	}

	opt := bench.Options{
		Scale:         *scale,
		Queries:       *queries,
		K:             *k,
		TruthSamples:  *truthSamples,
		MaxIndexBytes: int64(*maxIndexGB * float64(1<<30)),
		WalkCap:       *walkCap,
		MaxQueryTime:  *maxQuery,
		Seed:          *seed,
	}
	if *verbose {
		opt.Log = os.Stderr
	}
	if *methods != "" {
		opt.Methods = strings.Split(*methods, ",")
	}

	dss, err := selectDatasets(*datasets)
	if err != nil {
		fmt.Fprintln(os.Stderr, "simbench:", err)
		os.Exit(2)
	}

	w := os.Stdout
	runErr := func() error {
		switch *exp {
		case "table1":
			return bench.Table1(w, opt)
		case "table4":
			return bench.Table4(w, opt)
		case "fig4":
			return bench.Figure4(w, opt, dss)
		case "fig5":
			return bench.Figure5(w, opt, dss)
		case "fig6":
			return bench.Figure6(w, opt, dss)
		case "figs":
			return bench.Figures456(w, opt, dss)
		case "fig7":
			return bench.Figure7(w, opt)
		case "levels":
			return bench.LevelStats(w, opt, dss)
		case "ablation":
			return bench.Ablations(w, opt, dss)
		case "all":
			if err := bench.Table4(w, opt); err != nil {
				return err
			}
			if err := bench.Table1(w, opt); err != nil {
				return err
			}
			if err := bench.LevelStats(w, opt, dss); err != nil {
				return err
			}
			if err := bench.Figure4(w, opt, dss); err != nil {
				return err
			}
			if err := bench.Figure5(w, opt, dss); err != nil {
				return err
			}
			if err := bench.Figure6(w, opt, dss); err != nil {
				return err
			}
			if err := bench.Figure7(w, opt); err != nil {
				return err
			}
			return bench.Ablations(w, opt, dss)
		default:
			return fmt.Errorf("unknown experiment %q", *exp)
		}
	}()
	if runErr != nil {
		fmt.Fprintln(os.Stderr, "simbench:", runErr)
		os.Exit(1)
	}
}

func selectDatasets(filter string) ([]gen.Dataset, error) {
	if filter == "" {
		return gen.SmallEight(), nil
	}
	var out []gen.Dataset
	for _, name := range strings.Split(filter, ",") {
		ds, err := gen.ByName(strings.TrimSpace(name))
		if err != nil {
			return nil, err
		}
		out = append(out, ds)
	}
	return out, nil
}
