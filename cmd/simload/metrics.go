package main

import (
	"io"
	"net/http"

	"github.com/simrank/simpush/internal/obs"
	"github.com/simrank/simpush/internal/workload"
)

// metricsSnapshot is the slice of a simrankd /metricsz scrape the report's
// metrics_delta is computed from.
type metricsSnapshot struct {
	stages        map[string]float64
	engineQueries float64
	waits         float64
	waitSeconds   float64
	rejected      float64
	cacheHits     float64
	cacheMisses   float64
}

// scrapeMetrics reads the target's /metricsz and extracts the counters
// metrics_delta tracks. Returns nil (no error) when the target does not
// expose them — an older daemon, or a simproxy whose aggregate surface
// uses different names — so runs against such targets simply omit the
// block instead of failing.
func scrapeMetrics(client *http.Client, base string) *metricsSnapshot {
	resp, err := client.Get(base + "/metricsz")
	if err != nil {
		return nil
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return nil
	}
	samples, err := obs.ParseProm(io.LimitReader(resp.Body, 4<<20))
	if err != nil {
		return nil
	}
	queries, ok := obs.FindSample(samples, "simrankd_client_queries_total", nil)
	if !ok {
		return nil
	}
	snap := &metricsSnapshot{stages: make(map[string]float64), engineQueries: queries}
	for _, s := range samples {
		if s.Name == "simrankd_engine_stage_seconds_total" && s.Labels["stage"] != "" {
			snap.stages[s.Labels["stage"]] = s.Value
		}
	}
	snap.waits, _ = obs.FindSample(samples, "simrankd_admission_waits_total", nil)
	snap.waitSeconds, _ = obs.FindSample(samples, "simrankd_admission_wait_seconds_total", nil)
	snap.rejected, _ = obs.FindSample(samples, "simrankd_admission_rejected_total", nil)
	snap.cacheHits, _ = obs.FindSample(samples, "simrankd_cache_hits_total", nil)
	snap.cacheMisses, _ = obs.FindSample(samples, "simrankd_cache_misses_total", nil)
	return snap
}

// metricsDelta subtracts two scrapes taken around one scenario run. Either
// side missing (target without /metricsz) yields nil and the report omits
// the block.
func metricsDelta(before, after *metricsSnapshot) *workload.MetricsDelta {
	if before == nil || after == nil {
		return nil
	}
	d := &workload.MetricsDelta{
		EngineStageSeconds:   make(map[string]float64, len(after.stages)),
		EngineQueries:        c2u(after.engineQueries - before.engineQueries),
		AdmissionWaits:       c2u(after.waits - before.waits),
		AdmissionWaitSeconds: max(after.waitSeconds-before.waitSeconds, 0),
		AdmissionRejected:    c2u(after.rejected - before.rejected),
		CacheHits:            c2u(after.cacheHits - before.cacheHits),
		CacheMisses:          c2u(after.cacheMisses - before.cacheMisses),
	}
	for name, v := range after.stages {
		d.EngineStageSeconds[name] = max(v-before.stages[name], 0)
	}
	return d
}

// c2u converts a counter difference to uint64, clamping the negative
// deltas a mid-run restart would produce.
func c2u(v float64) uint64 {
	if v <= 0 {
		return 0
	}
	return uint64(v)
}
