// Command simload drives a running simrankd or simproxy with a declarative
// workload and scores the result against the scenario's SLO.
//
// Traffic is fully replayable: the same spec and seed produce a
// byte-identical request trace on every run and at every GOMAXPROCS, so a
// regression seen under one run can be re-driven exactly. The effective
// seed is printed on every run for that reason.
//
// Presets (select with -scenario, or "all"):
//
//	social-feed       read-heavy Zipfian top-k feed ranking (no mutations)
//	fraud-neighbors   bursty single-source probes + steady edge ingest
//	recommendation    diurnal batch row refreshes + online pair checks
//
// Examples:
//
//	simload -list
//	simload -target http://localhost:8080 -scenario social-feed -duration 30s
//	simload -target http://localhost:8080 -scenario all -out BENCH_PR8.json
//	simload -spec my-workload.json -validate
//	simload -spec my-workload.json -target http://localhost:8080 -seed 7
//
// The -out file aggregates one scored Report per scenario (see
// docs/workloads.md for the schema); -strict exits nonzero when any
// scenario misses its SLO. When the target exposes /metricsz, each
// report also carries a metrics_delta block — per-stage engine seconds,
// admission waiting and cache movement over the run window (see
// docs/observability.md). Diagnostics on stderr are structured logs
// (-log-level, -log-format).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"github.com/simrank/simpush/internal/obs"
	"github.com/simrank/simpush/internal/workload"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// benchFile is the -out JSON document: one scored report per scenario
// plus the overall verdict.
type benchFile struct {
	GeneratedBy string             `json:"generated_by"`
	Target      string             `json:"target"`
	Scenarios   []*workload.Report `json:"scenarios"`
	Pass        bool               `json:"pass"`
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("simload", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		target    = fs.String("target", "", "base URL of a running simrankd or simproxy")
		scenario  = fs.String("scenario", "", `preset name, comma-separated list, or "all"`)
		specPath  = fs.String("spec", "", "path to a JSON workload spec (alternative to -scenario)")
		seed      = fs.Uint64("seed", 0, "workload seed override (0 = preset/spec default); printed on every run")
		duration  = fs.Duration("duration", 0, "run window override (0 = preset/spec default)")
		rateScale = fs.Float64("rate-scale", 1, "multiply every preset class's arrival rate (CI smoke ↔ saturation)")
		out       = fs.String("out", "", "write the aggregated BENCH JSON here (e.g. BENCH_PR8.json)")
		list      = fs.Bool("list", false, "list preset scenarios and exit")
		validate  = fs.Bool("validate", false, "validate the spec/scenario, print the resolved spec JSON, and exit")
		strict    = fs.Bool("strict", false, "exit nonzero when any scenario misses its SLO")
		timeout   = fs.Duration("timeout", 30*time.Second, "per-request client timeout")
		maxOut    = fs.Int("max-outstanding", 256, "max concurrently outstanding open-loop requests")
		logLevel  = fs.String("log-level", "info", "log level: debug | info | warn | error")
		logFormat = fs.String("log-format", "text", "log format: text | json")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	logger, err := obs.NewLogger(stderr, *logLevel, *logFormat, "simload")
	if err != nil {
		fmt.Fprintln(stderr, "simload:", err)
		return 2
	}

	if *list {
		for _, name := range workload.ScenarioNames() {
			fmt.Fprintf(stdout, "%-18s %s\n", name, workload.ScenarioDescription(name))
		}
		return 0
	}

	specs, err := resolveSpecs(*scenario, *specPath, *duration, *seed, *rateScale)
	if err != nil {
		logger.Error("resolving workload", "error", err.Error())
		return 2
	}

	if *validate {
		for _, spec := range specs {
			raw, err := json.MarshalIndent(spec, "", "  ")
			if err != nil {
				logger.Error("marshaling spec", "error", err.Error())
				return 1
			}
			fmt.Fprintf(stdout, "%s\n", raw)
		}
		return 0
	}

	if *target == "" {
		logger.Error("-target is required (or use -list / -validate)")
		return 2
	}

	// SIGINT/SIGTERM stop the run cleanly: partial results are still
	// scored and written, which is what you want from a cancelled soak.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	bench := benchFile{
		GeneratedBy: "simload",
		Target:      *target,
		Pass:        true,
	}
	scrapeClient := &http.Client{Timeout: *timeout}
	base := strings.TrimRight(*target, "/")
	for _, spec := range specs {
		logger.Info("scenario start",
			"scenario", spec.Name,
			"seed", spec.Seed,
			"duration", time.Duration(spec.Duration).String())
		before := scrapeMetrics(scrapeClient, base)
		rep, err := workload.Run(ctx, spec, workload.RunOptions{
			Target:         *target,
			Timeout:        *timeout,
			MaxOutstanding: *maxOut,
		})
		if err != nil {
			logger.Error("scenario failed", "scenario", spec.Name, "error", err.Error())
			return 1
		}
		rep.Metrics = metricsDelta(before, scrapeMetrics(scrapeClient, base))
		rep.WriteSummary(stdout)
		bench.Scenarios = append(bench.Scenarios, rep)
		if !rep.SLO.Pass {
			bench.Pass = false
		}
		if ctx.Err() != nil {
			logger.Warn("interrupted; scoring what completed")
			break
		}
	}

	if *out != "" {
		raw, err := json.MarshalIndent(bench, "", "  ")
		if err != nil {
			logger.Error("marshaling bench file", "error", err.Error())
			return 1
		}
		if err := os.WriteFile(*out, append(raw, '\n'), 0o644); err != nil {
			logger.Error("writing bench file", "error", err.Error())
			return 1
		}
		logger.Info("wrote bench file", "path", *out, "scenarios", len(bench.Scenarios))
	}

	if *strict && !bench.Pass {
		return 3
	}
	return 0
}

// resolveSpecs turns the -scenario / -spec selection into validated specs
// with the overrides applied.
func resolveSpecs(scenario, specPath string, d time.Duration, seed uint64, rateScale float64) ([]*workload.Spec, error) {
	switch {
	case scenario != "" && specPath != "":
		return nil, fmt.Errorf("-scenario and -spec are mutually exclusive")
	case scenario == "" && specPath == "":
		return nil, fmt.Errorf(`choose traffic with -scenario <name|all> or -spec <file> (see -list)`)
	}

	if specPath != "" {
		spec, err := workload.LoadSpec(specPath)
		if err != nil {
			return nil, err
		}
		if seed != 0 {
			spec.Seed = seed
		}
		if d > 0 {
			spec.Duration = workload.Duration(d)
		}
		if err := spec.Validate(); err != nil {
			return nil, err
		}
		return []*workload.Spec{spec}, nil
	}

	names := workload.ScenarioNames()
	if scenario != "all" {
		names = strings.Split(scenario, ",")
	}
	specs := make([]*workload.Spec, 0, len(names))
	for _, name := range names {
		spec, err := workload.Scenario(strings.TrimSpace(name), d, seed, rateScale)
		if err != nil {
			return nil, err
		}
		specs = append(specs, spec)
	}
	return specs, nil
}
