package main

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/simrank/simpush"
	"github.com/simrank/simpush/internal/server"
	"github.com/simrank/simpush/internal/workload"
)

func startTarget(t *testing.T) string {
	t.Helper()
	g, err := simpush.SyntheticWebGraph(400, 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	client, err := simpush.NewClient(simpush.DynamicFromGraph(g), simpush.Options{Epsilon: 0.1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { client.Close() })
	srv, err := server.New(server.Config{Client: client})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return ts.URL
}

func TestListScenarios(t *testing.T) {
	var out, errBuf bytes.Buffer
	if code := run([]string{"-list"}, &out, &errBuf); code != 0 {
		t.Fatalf("exit %d: %s", code, errBuf.String())
	}
	for _, name := range []string{"social-feed", "fraud-neighbors", "recommendation"} {
		if !strings.Contains(out.String(), name) {
			t.Errorf("-list output missing %s:\n%s", name, out.String())
		}
	}
}

func TestValidateResolvesPreset(t *testing.T) {
	var out, errBuf bytes.Buffer
	if code := run([]string{"-scenario", "social-feed", "-seed", "42", "-validate"}, &out, &errBuf); code != 0 {
		t.Fatalf("exit %d: %s", code, errBuf.String())
	}
	var spec workload.Spec
	if err := json.Unmarshal(out.Bytes(), &spec); err != nil {
		t.Fatalf("-validate did not print spec JSON: %v\n%s", err, out.String())
	}
	if spec.Seed != 42 {
		t.Fatalf("seed override not applied: %d", spec.Seed)
	}
}

// TestRunAllScenariosEmitsBench is the end-to-end acceptance: every
// preset runs against a live server and the BENCH JSON carries every SLO
// field for every scenario.
func TestRunAllScenariosEmitsBench(t *testing.T) {
	target := startTarget(t)
	outPath := filepath.Join(t.TempDir(), "BENCH_PR8.json")
	var out, errBuf bytes.Buffer
	code := run([]string{
		"-target", target,
		"-scenario", "all",
		"-duration", "1s",
		"-rate-scale", "0.3",
		"-out", outPath,
	}, &out, &errBuf)
	if code != 0 {
		t.Fatalf("exit %d\nstdout: %s\nstderr: %s", code, out.String(), errBuf.String())
	}

	// The effective seed must be printed for every scenario.
	if n := strings.Count(errBuf.String(), "seed="); n < 3 {
		t.Errorf("effective seed printed %d times, want one per scenario:\n%s", n, errBuf.String())
	}

	raw, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	var bench benchFile
	if err := json.Unmarshal(raw, &bench); err != nil {
		t.Fatalf("BENCH JSON does not parse: %v", err)
	}
	if len(bench.Scenarios) != 3 {
		t.Fatalf("want 3 scenario reports, got %d", len(bench.Scenarios))
	}
	for _, rep := range bench.Scenarios {
		if rep.Scenario == "" || rep.Seed == 0 || rep.Requests == 0 {
			t.Errorf("scenario report incomplete: %+v", rep)
		}
		if rep.SLO.SLO.P50TargetMs <= 0 || rep.SLO.SLO.P99TargetMs <= 0 {
			t.Errorf("%s: SLO targets missing from report", rep.Scenario)
		}
		if rep.SLO.AttainmentPct <= 0 && rep.OK > 0 {
			t.Errorf("%s: attainment not scored", rep.Scenario)
		}
		if rep.Latency.P50Ms <= 0 && rep.OK > 0 {
			t.Errorf("%s: latency not measured", rep.Scenario)
		}
		if rep.Metrics == nil {
			t.Errorf("%s: metrics_delta missing (target serves /metricsz)", rep.Scenario)
		} else if rep.OK > 0 && rep.Metrics.CacheHits+rep.Metrics.CacheMisses == 0 {
			t.Errorf("%s: metrics_delta shows no cache movement over %d ok requests", rep.Scenario, rep.OK)
		}
	}
	// At least one scenario computes (cache cold at start), so per-stage
	// engine seconds must have accumulated somewhere.
	var stageSum float64
	for _, rep := range bench.Scenarios {
		if rep.Metrics != nil {
			for _, v := range rep.Metrics.EngineStageSeconds {
				stageSum += v
			}
		}
	}
	if stageSum <= 0 {
		t.Error("metrics_delta engine_stage_seconds never accumulated across scenarios")
	}
	// fraud-neighbors mutates, so at least one report must show epoch
	// movement.
	advanced := false
	for _, rep := range bench.Scenarios {
		if rep.EpochAdvances > 0 {
			advanced = true
		}
	}
	if !advanced {
		t.Error("no scenario advanced the epoch (edge-ingest class missing?)")
	}
}

func TestSpecFileRun(t *testing.T) {
	target := startTarget(t)
	dir := t.TempDir()
	specPath := filepath.Join(dir, "spec.json")
	spec := `{
  "name": "custom",
  "duration": "500ms",
  "seed": 9,
  "classes": [{
    "name": "c",
    "arrival": {"process": "poisson", "rate_rps": 40},
    "popularity": {"dist": "hotset", "hot": 4, "hot_frac": 0.9},
    "mix": [{"op": "single-source", "weight": 1}]
  }],
  "slo": {"p50_target_ms": 10000, "p99_target_ms": 10000, "attain_ms": 10000, "attain_target_pct": 1, "max_error_pct": 100}
}`
	if err := os.WriteFile(specPath, []byte(spec), 0o644); err != nil {
		t.Fatal(err)
	}
	var out, errBuf bytes.Buffer
	code := run([]string{"-target", target, "-spec", specPath, "-strict"}, &out, &errBuf)
	if code != 0 {
		t.Fatalf("exit %d\nstdout: %s\nstderr: %s", code, out.String(), errBuf.String())
	}
	if !strings.Contains(out.String(), "custom") {
		t.Fatalf("summary missing scenario name:\n%s", out.String())
	}
}

func TestFlagErrors(t *testing.T) {
	var out, errBuf bytes.Buffer
	if code := run(nil, &out, &errBuf); code != 2 {
		t.Fatalf("no selection: exit %d, want 2", code)
	}
	if code := run([]string{"-scenario", "x", "-spec", "y"}, &out, &errBuf); code != 2 {
		t.Fatalf("conflicting selection: exit %d, want 2", code)
	}
	if code := run([]string{"-scenario", "nope", "-validate"}, &out, &errBuf); code != 2 {
		t.Fatalf("unknown scenario: exit %d, want 2", code)
	}
}
