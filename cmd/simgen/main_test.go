package main

import (
	"os"
	"path/filepath"
	"testing"

	"github.com/simrank/simpush/internal/graph"
)

func TestRunEdges(t *testing.T) {
	dir := t.TempDir()
	if err := run(dir, "dblp-sim", 0.02, "edges"); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "dblp-sim.txt")
	g, err := graph.LoadEdgeListFile(path, graph.BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if g.N() < 1000 {
		t.Fatalf("generated graph too small: %v", g)
	}
}

func TestRunBinary(t *testing.T) {
	dir := t.TempDir()
	if err := run(dir, "dblp-sim", 0.02, "binary"); err != nil {
		t.Fatal(err)
	}
	g, err := graph.LoadBinaryFile(filepath.Join(dir, "dblp-sim.spg"))
	if err != nil {
		t.Fatal(err)
	}
	if g.N() < 1000 {
		t.Fatalf("generated graph too small: %v", g)
	}
}

func TestRunUnknownDataset(t *testing.T) {
	if err := run(t.TempDir(), "nope", 1, "edges"); err == nil {
		t.Fatal("unknown dataset accepted")
	}
}

func TestRunUnknownFormat(t *testing.T) {
	if err := run(t.TempDir(), "dblp-sim", 0.02, "xml"); err == nil {
		t.Fatal("unknown format accepted")
	}
}

func TestRunBadDir(t *testing.T) {
	// a file path cannot be used as a directory
	f := filepath.Join(t.TempDir(), "file")
	if err := os.WriteFile(f, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(filepath.Join(f, "sub"), "dblp-sim", 0.02, "edges"); err == nil {
		t.Fatal("bad directory accepted")
	}
}
