// Command simgen generates the nine synthetic dataset stand-ins (or any
// single one) as edge-list or binary graph files.
//
// Usage:
//
//	simgen -out data/                 # all nine datasets, scale 1.0
//	simgen -dataset uk-sim -scale 0.5 -format binary -out data/
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"github.com/simrank/simpush/internal/gen"
	"github.com/simrank/simpush/internal/graph"
)

func main() {
	var (
		outDir  = flag.String("out", ".", "output directory")
		dataset = flag.String("dataset", "", "dataset name (empty = all nine)")
		scale   = flag.Float64("scale", 1.0, "size scale factor")
		format  = flag.String("format", "edges", "output format: edges | binary")
	)
	flag.Parse()
	if err := run(*outDir, *dataset, *scale, *format); err != nil {
		fmt.Fprintln(os.Stderr, "simgen:", err)
		os.Exit(1)
	}
}

func run(outDir, dataset string, scale float64, format string) error {
	roster := gen.Roster
	if dataset != "" {
		ds, err := gen.ByName(dataset)
		if err != nil {
			return err
		}
		roster = []gen.Dataset{ds}
	}
	if err := os.MkdirAll(outDir, 0o755); err != nil {
		return err
	}
	for _, ds := range roster {
		g, err := ds.Generate(scale)
		if err != nil {
			return err
		}
		var path string
		switch format {
		case "edges":
			path = filepath.Join(outDir, ds.Name+".txt")
			f, err := os.Create(path)
			if err != nil {
				return err
			}
			if err := graph.WriteEdgeList(f, g); err != nil {
				f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
		case "binary":
			path = filepath.Join(outDir, ds.Name+".spg")
			if err := graph.SaveBinaryFile(path, g); err != nil {
				return err
			}
		default:
			return fmt.Errorf("unknown format %q", format)
		}
		s := graph.ComputeStats(g)
		fmt.Printf("%s: n=%d m=%d avg_deg=%.1f -> %s\n", ds.Name, s.N, s.M, s.AvgInDeg, path)
	}
	return nil
}
