// Command simlint runs the repo's static-analysis suite (internal/lint):
// epochkey, detmerge, ctxflow, lockscope — the machine-checked forms of
// the epoch-keyed-cache, bit-identical-determinism, cancellation, and
// lock-scope invariants.
//
// Two modes:
//
//	simlint [packages]        standalone: load, check, print, exit 1 on findings
//	go vet -vettool=simlint   unitchecker: invoked per package by the go tool
//
// Standalone mode defaults to ./... relative to the current directory.
// Intentional violations are annotated in the source with
// "//lint:allow <analyzer> <reason>"; stale or malformed allows are
// themselves findings.
//
// Exit codes: 0 clean, 1 findings, 2 operational error.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"github.com/simrank/simpush/internal/lint"
)

func main() {
	// go vet handshake: version probe, flag discovery, and per-package
	// .cfg invocations.
	if len(os.Args) >= 2 {
		switch {
		case strings.HasPrefix(os.Args[1], "-V"):
			fmt.Println("simlint version v1 (epochkey,detmerge,ctxflow,lockscope)")
			return
		case os.Args[1] == "-flags":
			fmt.Println("[]") // no forwardable flags
			return
		case strings.HasSuffix(os.Args[len(os.Args)-1], ".cfg"):
			os.Exit(lint.RunVet(os.Args[len(os.Args)-1]))
		}
	}

	list := flag.Bool("list", false, "list the analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: simlint [-list] [packages]\n\nAnalyzers:\n")
		for _, a := range lint.Analyzers() {
			fmt.Fprintf(os.Stderr, "  %-10s %s\n", a.Name, a.Doc)
		}
	}
	flag.Parse()
	if *list {
		for _, a := range lint.Analyzers() {
			fmt.Printf("%-10s %s\n", a.Name, a.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := lint.Load(".", patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	findings := 0
	for _, pkg := range pkgs {
		for _, d := range lint.Check(pkg, lint.Analyzers()) {
			fmt.Println(d)
			findings++
		}
	}
	if findings > 0 {
		fmt.Fprintf(os.Stderr, "simlint: %d finding(s)\n", findings)
		os.Exit(1)
	}
}
