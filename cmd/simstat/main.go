// Command simstat prints structural statistics of a graph file: size,
// degree distribution, directedness, dangling nodes, power-law tail fit,
// and connectivity — the properties that determine SimRank algorithm
// behaviour (see DESIGN.md §6).
//
// Usage:
//
//	simstat -graph web.txt
//	simstat -graph web.spg -binary
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	simpush "github.com/simrank/simpush"
	"github.com/simrank/simpush/internal/graph"
)

func main() {
	var (
		graphPath  = flag.String("graph", "", "edge-list graph file (required)")
		binary     = flag.Bool("binary", false, "graph file is in simgen binary format")
		undirected = flag.Bool("undirected", false, "treat edges as undirected")
		remap      = flag.Bool("remap", false, "remap sparse 64-bit node ids to dense ids")
	)
	flag.Parse()
	if *graphPath == "" {
		flag.Usage()
		os.Exit(2)
	}
	if err := run(os.Stdout, *graphPath, *binary, *undirected, *remap); err != nil {
		fmt.Fprintln(os.Stderr, "simstat:", err)
		os.Exit(1)
	}
}

func run(w io.Writer, path string, binary, undirected, remap bool) error {
	var g *simpush.Graph
	var err error
	switch {
	case binary:
		g, err = graph.LoadBinaryFile(path)
	case remap:
		var mapping *graph.Remapping
		g, mapping, err = graph.LoadEdgeListFileRemapped(path, graph.BuildOptions{Undirected: undirected})
		if err == nil {
			fmt.Fprintf(w, "remapped %d external ids to dense range\n", mapping.Len())
		}
	default:
		g, err = simpush.LoadEdgeList(path, undirected)
	}
	if err != nil {
		return err
	}
	s := simpush.Stats(g)
	kind := "directed"
	if s.Symmetric {
		kind = "undirected"
	}
	fmt.Fprintf(w, "nodes:              %d\n", s.N)
	fmt.Fprintf(w, "edges:              %d (%s)\n", s.M, kind)
	fmt.Fprintf(w, "avg degree:         %.2f\n", s.AvgInDeg)
	fmt.Fprintf(w, "median in-degree:   %d\n", s.MedianInDeg)
	fmt.Fprintf(w, "max in/out degree:  %d / %d\n", s.MaxInDeg, s.MaxOutDeg)
	fmt.Fprintf(w, "dangling in/out:    %d / %d\n", s.DanglingIn, s.DanglingOut)
	fmt.Fprintf(w, "in-degree gini:     %.3f\n", s.GiniInDegree)
	fmt.Fprintf(w, "power-law alpha:    %.2f\n", s.PowerLawAlpha)
	fmt.Fprintf(w, "largest weak comp.: %d (%.1f%% of nodes)\n",
		simpush.LargestComponent(g), 100*float64(simpush.LargestComponent(g))/float64(max32(s.N, 1)))
	fmt.Fprintf(w, "graph memory:       %.1f MB\n", float64(g.MemoryBytes())/(1<<20))
	return nil
}

func max32(v int32, lo int32) int32 {
	if v < lo {
		return lo
	}
	return v
}
