package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestRunStats(t *testing.T) {
	path := filepath.Join(t.TempDir(), "g.txt")
	if err := os.WriteFile(path, []byte("0 1\n1 2\n2 0\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(os.Stdout, path, false, false, false); err != nil {
		t.Fatal(err)
	}
	if err := run(os.Stdout, path, false, true, false); err != nil {
		t.Fatal(err)
	}
}

func TestRunStatsRemap(t *testing.T) {
	path := filepath.Join(t.TempDir(), "g.txt")
	if err := os.WriteFile(path, []byte("1000000000 5\n5 7\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(os.Stdout, path, false, false, true); err != nil {
		t.Fatal(err)
	}
}

func TestRunStatsMissing(t *testing.T) {
	if err := run(os.Stdout, "/nonexistent", false, false, false); err == nil {
		t.Fatal("missing file accepted")
	}
}
