package main

import (
	"os"
	"path/filepath"
	"testing"
)

func writeTestGraph(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "g.txt")
	if err := os.WriteFile(path, []byte("0 1\n0 2\n1 3\n2 4\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestPairMode(t *testing.T) {
	path := writeTestGraph(t)
	if err := run(path, false, false, 1, 2, false, 10, 20000, 0.6, 1); err != nil {
		t.Fatal(err)
	}
}

func TestPoolMode(t *testing.T) {
	path := writeTestGraph(t)
	if err := run(path, false, false, 1, -1, true, 5, 5000, 0.6, 1); err != nil {
		t.Fatal(err)
	}
}

func TestMissingFile(t *testing.T) {
	if err := run("/nonexistent", false, false, 0, 1, false, 5, 10, 0.6, 1); err == nil {
		t.Fatal("missing file accepted")
	}
}
