// Command simtruth computes Monte-Carlo ground-truth SimRank values — a
// single pair, or the pooled top-k protocol of the paper's evaluation
// (§5.1) for a query node.
//
// Usage:
//
//	simtruth -graph web.txt -u 42 -v 87 -samples 1000000
//	simtruth -graph web.txt -u 42 -pool -k 50
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	simpush "github.com/simrank/simpush"
	"github.com/simrank/simpush/internal/eval"
	"github.com/simrank/simpush/internal/graph"
)

func main() {
	var (
		graphPath  = flag.String("graph", "", "edge-list graph file (required)")
		binary     = flag.Bool("binary", false, "graph file is in simgen binary format")
		undirected = flag.Bool("undirected", false, "treat edges as undirected")
		u          = flag.Int("u", 0, "query node")
		v          = flag.Int("v", -1, "target node (pair mode)")
		pool       = flag.Bool("pool", false, "pooled top-k ground truth mode")
		k          = flag.Int("k", 50, "top-k size for pool mode")
		samples    = flag.Int("samples", 200000, "MC walk-pair samples per pair")
		c          = flag.Float64("c", 0.6, "decay factor")
		seed       = flag.Uint64("seed", 1, "random seed")
	)
	flag.Parse()
	if *graphPath == "" || (!*pool && *v < 0) {
		flag.Usage()
		os.Exit(2)
	}
	if err := run(*graphPath, *binary, *undirected, int32(*u), int32(*v), *pool, *k, *samples, *c, *seed); err != nil {
		fmt.Fprintln(os.Stderr, "simtruth:", err)
		os.Exit(1)
	}
}

func run(path string, binary, undirected bool, u, v int32, pool bool, k, samples int, c float64, seed uint64) error {
	var g *simpush.Graph
	var err error
	if binary {
		g, err = graph.LoadBinaryFile(path)
	} else {
		g, err = simpush.LoadEdgeList(path, undirected)
	}
	if err != nil {
		return err
	}
	if !pool {
		val := simpush.MonteCarloPair(g, u, v, c, samples, seed)
		fmt.Printf("s(%d, %d) ≈ %.6f  (%d samples)\n", u, v, val, samples)
		return nil
	}
	// Pool mode: seed the pool with a high-accuracy SimPush run, then MC.
	client, err := simpush.NewClient(g, simpush.Options{Epsilon: 0.005, Seed: seed})
	if err != nil {
		return err
	}
	res, err := client.SingleSource(context.Background(), u)
	if err != nil {
		return err
	}
	gt := eval.BuildPooledTruth(g, c, u, [][]float64{res.Scores}, k, samples, seed)
	fmt.Printf("pooled ground truth for u=%d (k=%d, %d samples/pair):\n", u, k, samples)
	fmt.Println("rank\tnode\ts(u,v)")
	for i, node := range gt.TopK {
		fmt.Printf("%d\t%d\t%.6f\n", i+1, node, gt.Value[node])
	}
	return nil
}
