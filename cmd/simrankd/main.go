// Command simrankd is the SimRank serving daemon: it loads (or
// generates) a graph, wraps it in a live DynamicGraph, and exposes the
// full simpush query surface over HTTP/JSON with epoch-aware result
// caching, single-flight coalescing and admission control (see
// docs/http-api.md for the API).
//
// Endpoints:
//
//	GET    /v1/single-source  full similarity row of one node
//	GET    /v1/topk           k most similar nodes
//	GET    /v1/pair           one s(u, v) value
//	POST   /v1/batch          many single-source queries, one epoch
//	POST   /v1/edges          add edges (live source)
//	DELETE /v1/edges          remove edges (live source)
//	GET    /healthz           liveness/readiness (503 while draining)
//	GET    /statsz            serving counters as JSON
//	GET    /metricsz          Prometheus text exposition
//	GET    /debug/queries     last-N completed query traces (with -trace-queries)
//	GET    /v1/replication    leader-only mutation feed (with -lead)
//
// Observability: every response carries an X-Request-Id (client-supplied
// ids are echoed); -trace-queries keeps a ring of completed query traces
// with per-stage engine spans; -slow-query-ms logs slow queries with
// their spans; logs are structured (-log-level, -log-format);
// -debug-addr serves net/http/pprof on a separate listener (see
// docs/observability.md).
//
// Shutdown is graceful: on SIGINT/SIGTERM the daemon flips /healthz to
// 503, stops accepting connections, lets in-flight requests finish
// (bounded by -grace), then closes the query client and exits.
//
// Examples:
//
//	simrankd -graph web.txt -addr :8080
//	simrankd -dataset dblp-sim -scale 0.5 -eps 0.05
//	simrankd -graph web.txt -addr :8081 -lead
//	simrankd -graph web.txt -addr :8082 -follow http://127.0.0.1:8081
//
// With -lead the daemon is a replication leader: every write batch
// commits atomically at exactly one new epoch and is retained in a
// bounded in-memory log that followers stream via /v1/replication. With
// -follow the daemon replays that feed (rejecting direct writes with
// 409) and /healthz reports catching_up until it reaches the leader's
// epoch. Front a leader plus its followers with simproxy to get one
// serving surface.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/simrank/simpush"
	"github.com/simrank/simpush/internal/obs"
	"github.com/simrank/simpush/internal/server"
)

type daemonConfig struct {
	addr       string
	graphPath  string
	undirected bool
	dataset    string
	scale      float64
	static     bool

	eps   float64
	delta float64
	decay float64
	seed  uint64

	cacheEntries int
	cacheCarry   bool
	deltaDepth   int
	deltaBudget  int
	maxInFlight  int
	maxQueue     int
	maxParallel  int
	timeout      time.Duration
	maxTimeout   time.Duration
	maxBatch     int
	grace        time.Duration

	lead           bool
	follow         string
	replicationLog int

	traceQueries int
	slowQueryMs  int
	debugAddr    string
	logLevel     string
	logFormat    string
}

func main() {
	var cfg daemonConfig
	flag.StringVar(&cfg.addr, "addr", ":8080", "listen address")
	flag.StringVar(&cfg.graphPath, "graph", "", "edge list file to serve")
	flag.BoolVar(&cfg.undirected, "undirected", false, "symmetrize the edge list")
	flag.StringVar(&cfg.dataset, "dataset", "", "serve a synthetic dataset stand-in instead of -graph (see simgen)")
	flag.Float64Var(&cfg.scale, "scale", 1.0, "dataset scale factor (with -dataset)")
	flag.BoolVar(&cfg.static, "static", false, "serve the graph frozen (disables /v1/edges)")
	flag.Float64Var(&cfg.eps, "eps", 0.02, "default absolute error bound ε")
	flag.Float64Var(&cfg.delta, "delta", 1e-4, "default failure probability δ")
	flag.Float64Var(&cfg.decay, "c", 0.6, "SimRank decay factor")
	flag.Uint64Var(&cfg.seed, "seed", 0, "base random seed")
	flag.IntVar(&cfg.cacheEntries, "cache-entries", 0, "result cache bound (0 auto-sizes from a ~256MB budget and the graph size; negative disables caching, keeps coalescing)")
	flag.BoolVar(&cfg.cacheCarry, "cache-carry", true, "carry unaffected cache entries across graph epochs (live sources)")
	flag.IntVar(&cfg.deltaDepth, "delta-depth", 0, "affected-set BFS depth for cache carry-forward (0 = the engine's walk-depth bound L*)")
	flag.IntVar(&cfg.deltaBudget, "delta-budget", 0, "affected-set size before a mutation drops the whole cache (0 = half the graph, min 1024; negative = unbounded)")
	flag.IntVar(&cfg.maxInFlight, "max-inflight", 0, "concurrent engine computations (0 = 2×GOMAXPROCS)")
	flag.IntVar(&cfg.maxQueue, "max-queue", 0, "requests allowed to wait for a slot (0 = 4×max-inflight)")
	flag.IntVar(&cfg.maxParallel, "max-parallelism", 0, "cap on the ?parallelism intra-query worker parameter (0 = GOMAXPROCS)")
	flag.DurationVar(&cfg.timeout, "timeout", 10*time.Second, "default per-request deadline")
	flag.DurationVar(&cfg.maxTimeout, "max-timeout", time.Minute, "upper bound on the ?timeout parameter")
	flag.IntVar(&cfg.maxBatch, "max-batch", 256, "max nodes per /v1/batch request")
	flag.DurationVar(&cfg.grace, "grace", 15*time.Second, "shutdown drain budget")
	flag.BoolVar(&cfg.lead, "lead", false, "serve as the cluster's replication leader: accept writes and publish the mutation feed on /v1/replication")
	flag.StringVar(&cfg.follow, "follow", "", "serve as a follower of this leader base URL: reject direct writes and replay the leader's mutation feed")
	flag.IntVar(&cfg.replicationLog, "replication-log", 1024, "mutation batches the leader retains for followers (with -lead)")
	flag.IntVar(&cfg.traceQueries, "trace-queries", 128, "completed query traces retained for /debug/queries (0 disables the ring)")
	flag.IntVar(&cfg.slowQueryMs, "slow-query-ms", 0, "log queries at least this slow with their per-stage spans (0 disables)")
	flag.StringVar(&cfg.debugAddr, "debug-addr", "", "serve net/http/pprof on this address (empty = disabled)")
	flag.StringVar(&cfg.logLevel, "log-level", "info", "log level: debug | info | warn | error")
	flag.StringVar(&cfg.logFormat, "log-format", "text", "log format: text | json")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, cfg, nil); err != nil {
		fmt.Fprintln(os.Stderr, "simrankd:", err)
		os.Exit(1)
	}
}

// loadSource builds the graph source the daemon serves.
func loadSource(cfg daemonConfig) (simpush.GraphSource, *simpush.Graph, error) {
	var g *simpush.Graph
	var err error
	switch {
	case cfg.graphPath != "" && cfg.dataset != "":
		return nil, nil, errors.New("-graph and -dataset are mutually exclusive")
	case cfg.graphPath != "":
		g, err = simpush.LoadEdgeList(cfg.graphPath, cfg.undirected)
	case cfg.dataset != "":
		g, err = simpush.Dataset(cfg.dataset, cfg.scale)
	default:
		return nil, nil, errors.New("one of -graph or -dataset is required")
	}
	if err != nil {
		return nil, nil, err
	}
	if cfg.static {
		return g, g, nil
	}
	return simpush.DynamicFromGraph(g), g, nil
}

// run starts the daemon and blocks until ctx is cancelled (signal) or the
// listener fails. If ready is non-nil it receives the bound address once
// the server is listening — the hook the tests and :0 use.
func run(ctx context.Context, cfg daemonConfig, ready chan<- string) error {
	logger, err := obs.NewLogger(os.Stderr, cfg.logLevel, cfg.logFormat, "simrankd")
	if err != nil {
		return err
	}

	role := server.RoleStandalone
	switch {
	case cfg.lead && cfg.follow != "":
		return errors.New("-lead and -follow are mutually exclusive")
	case cfg.lead:
		role = server.RoleLeader
	case cfg.follow != "":
		role = server.RoleFollower
	}
	if role != server.RoleStandalone && cfg.static {
		return errors.New("-lead/-follow need a live graph source (drop -static)")
	}

	src, g, err := loadSource(cfg)
	if err != nil {
		return err
	}
	client, err := simpush.NewClient(src, simpush.Options{
		C: cfg.decay, Epsilon: cfg.eps, Delta: cfg.delta, Seed: cfg.seed,
	})
	if err != nil {
		return err
	}

	srv, err := server.New(server.Config{
		Client:              client,
		CacheEntries:        cfg.cacheEntries,
		DisableCarryForward: !cfg.cacheCarry,
		DeltaDepth:          cfg.deltaDepth,
		DeltaBudget:         cfg.deltaBudget,
		MaxInFlight:         cfg.maxInFlight,
		MaxQueue:            cfg.maxQueue,
		MaxParallelism:      cfg.maxParallel,
		DefaultTimeout:      cfg.timeout,
		MaxTimeout:          cfg.maxTimeout,
		MaxBatch:            cfg.maxBatch,
		Role:                role,
		LeaderURL:           cfg.follow,
		ReplicationLog:      cfg.replicationLog,
		TraceRing:           cfg.traceQueries,
		SlowQuery:           time.Duration(cfg.slowQueryMs) * time.Millisecond,
		Logger:              logger,
	})
	if err != nil {
		return err
	}
	srv.StartReplication(ctx)

	if cfg.debugAddr != "" {
		dmux := http.NewServeMux()
		dmux.HandleFunc("/debug/pprof/", pprof.Index)
		dmux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		dmux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		dmux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		dmux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		dln, err := net.Listen("tcp", cfg.debugAddr)
		if err != nil {
			return fmt.Errorf("debug listener: %w", err)
		}
		logger.Info("pprof listening", "debug_addr", dln.Addr().String())
		go http.Serve(dln, dmux)
	}

	ln, err := net.Listen("tcp", cfg.addr)
	if err != nil {
		return err
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	mode := "live"
	if cfg.static {
		mode = "static"
	}
	if role != server.RoleStandalone {
		mode += " " + string(role)
	}
	logger.Info("daemon listening",
		"addr", ln.Addr().String(),
		"mode", mode,
		"graph_n", g.N(),
		"graph_m", g.M())
	if ready != nil {
		ready <- ln.Addr().String()
	}

	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	select {
	case err := <-serveErr:
		return err
	case <-ctx.Done():
	}

	// Graceful drain: flip /healthz first so load balancers stop routing
	// here, then stop accepting and let in-flight requests finish, then
	// fail any stragglers fast by closing the client.
	logger.Info("shutdown: draining", "budget", cfg.grace.String())
	srv.Drain()
	shutdownCtx, cancel := context.WithTimeout(context.Background(), cfg.grace)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		logger.Warn("shutdown: forcing close", "error", err.Error())
		httpSrv.Close()
	}
	if err := client.Close(); err != nil {
		return err
	}
	logger.Info("shutdown: drained cleanly")
	return nil
}
