package main

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func writeTestGraph(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "g.txt")
	if err := os.WriteFile(path, []byte("0 1\n0 2\n1 3\n2 4\n3 0\n4 0\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestLoadSourceValidation(t *testing.T) {
	if _, _, err := loadSource(daemonConfig{}); err == nil {
		t.Fatal("no graph and no dataset must be rejected")
	}
	if _, _, err := loadSource(daemonConfig{graphPath: "x", dataset: "y"}); err == nil {
		t.Fatal("-graph with -dataset must be rejected")
	}
	if _, _, err := loadSource(daemonConfig{graphPath: filepath.Join(t.TempDir(), "nope")}); err == nil {
		t.Fatal("missing graph file must surface")
	}
}

// TestDaemonServesAndShutsDown boots the daemon on an ephemeral port,
// exercises the API end to end (including a cache hit on the repeated
// query and a live mutation), then cancels the context and expects a
// clean graceful shutdown.
func TestDaemonServesAndShutsDown(t *testing.T) {
	cfg := daemonConfig{
		addr:         "127.0.0.1:0",
		graphPath:    writeTestGraph(t),
		eps:          0.05,
		delta:        1e-4,
		decay:        0.6,
		cacheEntries: 128,
		timeout:      5 * time.Second,
		maxTimeout:   10 * time.Second,
		maxBatch:     16,
		grace:        5 * time.Second,
	}
	ctx, cancel := context.WithCancel(context.Background())
	ready := make(chan string, 1)
	done := make(chan error, 1)
	go func() { done <- run(ctx, cfg, ready) }()

	var base string
	select {
	case addr := <-ready:
		base = "http://" + addr
	case err := <-done:
		t.Fatalf("daemon exited before ready: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("daemon never became ready")
	}

	get := func(path string) (int, map[string]any) {
		t.Helper()
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		raw, _ := io.ReadAll(resp.Body)
		var m map[string]any
		if len(raw) > 0 {
			if err := json.Unmarshal(raw, &m); err != nil {
				t.Fatalf("decoding %s: %v", raw, err)
			}
		}
		return resp.StatusCode, m
	}

	if code, _ := get("/healthz"); code != 200 {
		t.Fatalf("healthz = %d", code)
	}
	if code, body := get("/v1/single-source?node=0&seed=1"); code != 200 || body["cache"] != "computed" {
		t.Fatalf("first query = %d %v", code, body)
	}
	if code, body := get("/v1/single-source?node=0&seed=1"); code != 200 || body["cache"] != "hit" {
		t.Fatalf("repeat query = %d %v, want cache hit", code, body)
	}
	if code, _ := get("/v1/topk?node=0&k=3"); code != 200 {
		t.Fatalf("topk = %d", code)
	}
	if code, _ := get("/v1/pair?u=1&v=2"); code != 200 {
		t.Fatalf("pair = %d", code)
	}

	resp, err := http.Post(base+"/v1/edges", "application/json", strings.NewReader(`{"from":4,"to":1}`))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("edges = %d", resp.StatusCode)
	}
	// The mutation advances the epoch, so the cached entry is unreachable
	// and the query recomputes.
	if code, body := get("/v1/single-source?node=0&seed=1"); code != 200 || body["cache"] != "computed" {
		t.Fatalf("post-mutation query = %d %v, want computed", code, body)
	}

	if code, body := get("/statsz"); code != 200 || body["requests"].(float64) < 6 {
		t.Fatalf("statsz = %d %v", code, body)
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("graceful shutdown returned %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("daemon did not shut down")
	}
}

// TestDaemonStaticMode serves a frozen graph: queries work, mutations 501.
func TestDaemonStaticMode(t *testing.T) {
	cfg := daemonConfig{
		addr:       "127.0.0.1:0",
		graphPath:  writeTestGraph(t),
		static:     true,
		eps:        0.05,
		delta:      1e-4,
		decay:      0.6,
		timeout:    5 * time.Second,
		maxTimeout: 10 * time.Second,
		grace:      5 * time.Second,
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ready := make(chan string, 1)
	done := make(chan error, 1)
	go func() { done <- run(ctx, cfg, ready) }()
	var base string
	select {
	case addr := <-ready:
		base = "http://" + addr
	case err := <-done:
		t.Fatalf("daemon exited before ready: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("daemon never became ready")
	}

	resp, err := http.Post(base+"/v1/edges", "application/json", strings.NewReader(`{"from":0,"to":1}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNotImplemented {
		raw, _ := io.ReadAll(resp.Body)
		t.Fatalf("edges on static source = %d (%s), want 501", resp.StatusCode, raw)
	}
	cancel()
	if err := <-done; err != nil {
		t.Fatalf("shutdown: %v", err)
	}
}

func TestClusterRoleValidation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	base := daemonConfig{addr: "127.0.0.1:0", graphPath: writeTestGraph(t), grace: time.Second}

	cfg := base
	cfg.lead = true
	cfg.follow = "http://127.0.0.1:1"
	if err := run(ctx, cfg, nil); err == nil {
		t.Fatal("-lead with -follow must be rejected")
	}
	cfg = base
	cfg.lead = true
	cfg.static = true
	if err := run(ctx, cfg, nil); err == nil {
		t.Fatal("-lead with -static must be rejected")
	}
}

// TestDaemonLeaderFollower boots a -lead daemon and a -follow daemon on
// ephemeral ports and checks the replication contract end to end: the
// follower turns healthy, a write to the leader raises both epochs, and
// the follower refuses direct writes.
func TestDaemonLeaderFollower(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	graph := writeTestGraph(t)
	boot := func(cfg daemonConfig) (string, chan error) {
		t.Helper()
		ready := make(chan string, 1)
		done := make(chan error, 1)
		go func() { done <- run(ctx, cfg, ready) }()
		select {
		case addr := <-ready:
			return "http://" + addr, done
		case err := <-done:
			t.Fatalf("daemon exited before ready: %v", err)
		case <-time.After(10 * time.Second):
			t.Fatal("daemon never became ready")
		}
		return "", nil
	}
	base := daemonConfig{
		addr: "127.0.0.1:0", graphPath: graph,
		eps: 0.05, delta: 1e-4, decay: 0.6,
		timeout: 5 * time.Second, maxTimeout: 10 * time.Second,
		maxBatch: 16, grace: 5 * time.Second, replicationLog: 64,
	}
	leadCfg := base
	leadCfg.lead = true
	leaderURL, _ := boot(leadCfg)

	followCfg := base
	followCfg.follow = leaderURL
	followerURL, _ := boot(followCfg)

	status := func(url string) int {
		resp, err := http.Get(url)
		if err != nil {
			return -1
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode
	}
	deadline := time.Now().Add(10 * time.Second)
	for status(followerURL+"/healthz") != 200 {
		if time.Now().After(deadline) {
			t.Fatal("follower never became healthy")
		}
		time.Sleep(25 * time.Millisecond)
	}

	resp, err := http.Post(leaderURL+"/v1/edges", "application/json", strings.NewReader(`{"from":4,"to":1}`))
	if err != nil {
		t.Fatal(err)
	}
	var applied struct {
		Epoch float64 `json:"epoch"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&applied); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 || applied.Epoch != 2 {
		t.Fatalf("leader write = %d epoch %v, want 200 at epoch 2", resp.StatusCode, applied.Epoch)
	}

	epochOf := func(url string) float64 {
		resp, err := http.Get(url + "/statsz")
		if err != nil {
			return -1
		}
		defer resp.Body.Close()
		var stats struct {
			Epoch float64 `json:"epoch"`
		}
		json.NewDecoder(resp.Body).Decode(&stats)
		return stats.Epoch
	}
	for epochOf(followerURL) != applied.Epoch {
		if time.Now().After(deadline) {
			t.Fatalf("follower stuck at epoch %v, leader at %v", epochOf(followerURL), applied.Epoch)
		}
		time.Sleep(25 * time.Millisecond)
	}

	if code := statusOfWrite(t, followerURL); code != http.StatusConflict {
		t.Fatalf("direct write on follower = %d, want 409", code)
	}
}

func statusOfWrite(t *testing.T, base string) int {
	t.Helper()
	resp, err := http.Post(base+"/v1/edges", "application/json", strings.NewReader(`{"from":0,"to":3}`))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode
}
