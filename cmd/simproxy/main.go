// Command simproxy fronts a replicated simrankd cluster with one
// serving surface. It routes read queries across the replicas by a
// pluggable policy, sends mutations only to the leader, and fails over
// away from draining, lagging or unreachable replicas (see
// docs/cluster.md).
//
// Policies (-policy):
//
//	hash          consistent-hash on the query node (default). Every
//	              query for node u lands on the same replica, so each
//	              replica's epoch-keyed result cache concentrates on its
//	              own slice of the hot set — aggregate hit rate grows
//	              with the replica count.
//	least-loaded  pick the replica with the fewest in-flight requests.
//	round-robin   cycle through the routable replicas.
//
// Endpoints: the full simrankd query surface (/v1/single-source,
// /v1/topk, /v1/pair, /v1/batch, /v1/edges) plus the proxy's own
// /healthz (503 only when no replica is routable) and /statsz
// (aggregate counters + a per-replica breakdown).
//
// Example (leader on :8081, followers on :8082/:8083):
//
//	simproxy -addr :8080 -replicas 127.0.0.1:8081,127.0.0.1:8082,127.0.0.1:8083
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"github.com/simrank/simpush/internal/cluster"
)

type proxyConfig struct {
	addr          string
	replicas      string
	policy        string
	maxLag        int64
	probeInterval time.Duration
	probeTimeout  time.Duration
	timeout       time.Duration
	grace         time.Duration
}

func main() {
	var cfg proxyConfig
	flag.StringVar(&cfg.addr, "addr", ":8080", "listen address")
	flag.StringVar(&cfg.replicas, "replicas", "", "comma-separated simrankd base URLs (required)")
	flag.StringVar(&cfg.policy, "policy", "hash", "read routing policy: hash (cache affinity), least-loaded, round-robin")
	flag.Int64Var(&cfg.maxLag, "max-lag", 16, "epochs a follower may trail the leader before reads fail over away from it")
	flag.DurationVar(&cfg.probeInterval, "probe-interval", time.Second, "replica health probe cadence")
	flag.DurationVar(&cfg.probeTimeout, "probe-timeout", 2*time.Second, "per-probe deadline")
	flag.DurationVar(&cfg.timeout, "timeout", 90*time.Second, "proxied request deadline")
	flag.DurationVar(&cfg.grace, "grace", 15*time.Second, "shutdown drain budget")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, cfg, nil); err != nil {
		fmt.Fprintln(os.Stderr, "simproxy:", err)
		os.Exit(1)
	}
}

// run starts the proxy and blocks until ctx is cancelled (signal) or the
// listener fails. If ready is non-nil it receives the bound address once
// the proxy is listening.
func run(ctx context.Context, cfg proxyConfig, ready chan<- string) error {
	logger := log.New(os.Stderr, "simproxy: ", log.LstdFlags)

	if strings.TrimSpace(cfg.replicas) == "" {
		return errors.New("-replicas is required (comma-separated simrankd base URLs)")
	}
	var urls []string
	for _, u := range strings.Split(cfg.replicas, ",") {
		if u = strings.TrimSpace(u); u != "" {
			urls = append(urls, u)
		}
	}
	set, err := cluster.NewSet(cluster.SetConfig{
		Replicas:      urls,
		MaxLag:        cfg.maxLag,
		ProbeInterval: cfg.probeInterval,
		ProbeTimeout:  cfg.probeTimeout,
		Logf:          logger.Printf,
	})
	if err != nil {
		return err
	}
	proxy, err := cluster.New(cluster.Config{Set: set, Policy: cfg.policy, Timeout: cfg.timeout})
	if err != nil {
		return err
	}

	// Probe before accepting traffic so the first request already routes
	// on real health state, then keep probing in the background.
	set.ProbeOnce(ctx)
	set.Start(ctx)

	ln, err := net.Listen("tcp", cfg.addr)
	if err != nil {
		return err
	}
	httpSrv := &http.Server{Handler: proxy.Handler()}
	logger.Printf("routing %d replicas (%d routable) by %s on %s",
		len(set.Replicas()), len(set.Routable()), proxy.Policy().Name(), ln.Addr())
	if ready != nil {
		ready <- ln.Addr().String()
	}

	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	select {
	case err := <-serveErr:
		return err
	case <-ctx.Done():
	}

	logger.Printf("shutdown: draining (budget %s)", cfg.grace)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), cfg.grace)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		logger.Printf("shutdown: %v (forcing close)", err)
		httpSrv.Close()
	}
	logger.Printf("shutdown: drained cleanly")
	return nil
}
