// Command simproxy fronts a replicated simrankd cluster with one
// serving surface. It routes read queries across the replicas by a
// pluggable policy, sends mutations only to the leader, and fails over
// away from draining, lagging or unreachable replicas (see
// docs/cluster.md).
//
// Policies (-policy):
//
//	hash          consistent-hash on the query node (default). Every
//	              query for node u lands on the same replica, so each
//	              replica's epoch-keyed result cache concentrates on its
//	              own slice of the hot set — aggregate hit rate grows
//	              with the replica count.
//	least-loaded  pick the replica with the fewest in-flight requests.
//	round-robin   cycle through the routable replicas.
//
// Endpoints: the full simrankd query surface (/v1/single-source,
// /v1/topk, /v1/pair, /v1/batch, /v1/edges) plus the proxy's own
// /healthz (503 only when no replica is routable), /statsz (aggregate
// counters + a per-replica breakdown) and /metricsz (Prometheus text,
// per-replica series under a "replica" label).
//
// Every request is stamped with an X-Request-Id (client-supplied ids
// are kept) and the id is forwarded to the chosen replica, so one grep
// follows a query across proxy and replica logs and traces. Logs are
// structured (-log-level, -log-format); -debug-addr serves net/http/pprof
// on a separate listener.
//
// Example (leader on :8081, followers on :8082/:8083):
//
//	simproxy -addr :8080 -replicas 127.0.0.1:8081,127.0.0.1:8082,127.0.0.1:8083
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"github.com/simrank/simpush/internal/cluster"
	"github.com/simrank/simpush/internal/obs"
)

type proxyConfig struct {
	addr          string
	replicas      string
	policy        string
	maxLag        int64
	probeInterval time.Duration
	probeTimeout  time.Duration
	timeout       time.Duration
	grace         time.Duration
	logLevel      string
	logFormat     string
	debugAddr     string
}

func main() {
	var cfg proxyConfig
	flag.StringVar(&cfg.addr, "addr", ":8080", "listen address")
	flag.StringVar(&cfg.replicas, "replicas", "", "comma-separated simrankd base URLs (required)")
	flag.StringVar(&cfg.policy, "policy", "hash", "read routing policy: hash (cache affinity), least-loaded, round-robin")
	flag.Int64Var(&cfg.maxLag, "max-lag", 16, "epochs a follower may trail the leader before reads fail over away from it")
	flag.DurationVar(&cfg.probeInterval, "probe-interval", time.Second, "replica health probe cadence")
	flag.DurationVar(&cfg.probeTimeout, "probe-timeout", 2*time.Second, "per-probe deadline")
	flag.DurationVar(&cfg.timeout, "timeout", 90*time.Second, "proxied request deadline")
	flag.DurationVar(&cfg.grace, "grace", 15*time.Second, "shutdown drain budget")
	flag.StringVar(&cfg.logLevel, "log-level", "info", "log level: debug | info | warn | error")
	flag.StringVar(&cfg.logFormat, "log-format", "text", "log format: text | json")
	flag.StringVar(&cfg.debugAddr, "debug-addr", "", "serve net/http/pprof on this address (empty = disabled)")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, cfg, nil); err != nil {
		fmt.Fprintln(os.Stderr, "simproxy:", err)
		os.Exit(1)
	}
}

// run starts the proxy and blocks until ctx is cancelled (signal) or the
// listener fails. If ready is non-nil it receives the bound address once
// the proxy is listening.
func run(ctx context.Context, cfg proxyConfig, ready chan<- string) error {
	logger, err := obs.NewLogger(os.Stderr, cfg.logLevel, cfg.logFormat, "simproxy")
	if err != nil {
		return err
	}

	if strings.TrimSpace(cfg.replicas) == "" {
		return errors.New("-replicas is required (comma-separated simrankd base URLs)")
	}
	var urls []string
	for _, u := range strings.Split(cfg.replicas, ",") {
		if u = strings.TrimSpace(u); u != "" {
			urls = append(urls, u)
		}
	}
	set, err := cluster.NewSet(cluster.SetConfig{
		Replicas:      urls,
		MaxLag:        cfg.maxLag,
		ProbeInterval: cfg.probeInterval,
		ProbeTimeout:  cfg.probeTimeout,
		Logger:        logger,
	})
	if err != nil {
		return err
	}
	proxy, err := cluster.New(cluster.Config{Set: set, Policy: cfg.policy, Timeout: cfg.timeout, Logger: logger})
	if err != nil {
		return err
	}

	if cfg.debugAddr != "" {
		dmux := http.NewServeMux()
		dmux.HandleFunc("/debug/pprof/", pprof.Index)
		dmux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		dmux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		dmux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		dmux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		dln, err := net.Listen("tcp", cfg.debugAddr)
		if err != nil {
			return fmt.Errorf("debug listener: %w", err)
		}
		logger.Info("pprof listening", "debug_addr", dln.Addr().String())
		go http.Serve(dln, dmux)
	}

	// Probe before accepting traffic so the first request already routes
	// on real health state, then keep probing in the background.
	set.ProbeOnce(ctx)
	set.Start(ctx)

	ln, err := net.Listen("tcp", cfg.addr)
	if err != nil {
		return err
	}
	httpSrv := &http.Server{Handler: proxy.Handler()}
	logger.Info("proxy listening",
		"addr", ln.Addr().String(),
		"replicas", len(set.Replicas()),
		"routable", len(set.Routable()),
		"policy", proxy.Policy().Name())
	if ready != nil {
		ready <- ln.Addr().String()
	}

	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	select {
	case err := <-serveErr:
		return err
	case <-ctx.Done():
	}

	logger.Info("shutdown: draining", "budget", cfg.grace.String())
	shutdownCtx, cancel := context.WithTimeout(context.Background(), cfg.grace)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		logger.Warn("shutdown: forcing close", "error", err.Error())
		httpSrv.Close()
	}
	logger.Info("shutdown: drained cleanly")
	return nil
}
