package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

func TestRunValidation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if err := run(ctx, proxyConfig{}, nil); err == nil {
		t.Fatal("missing -replicas must be rejected")
	}
	if err := run(ctx, proxyConfig{replicas: "a:1,a:1"}, nil); err == nil {
		t.Fatal("duplicate replicas must be rejected")
	}
	if err := run(ctx, proxyConfig{replicas: "a:1", policy: "random"}, nil); err == nil {
		t.Fatal("unknown policy must be rejected")
	}
}

// TestProxyServesAndShutsDown boots the proxy over one stub replica,
// routes a query through it, and expects a clean graceful shutdown.
func TestProxyServesAndShutsDown(t *testing.T) {
	replica := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		switch r.URL.Path {
		case "/healthz":
			fmt.Fprint(w, `{"status":"ok"}`)
		case "/statsz":
			fmt.Fprint(w, `{"epoch":3,"graph_n":10,"graph_m":20}`)
		case "/v1/single-source":
			fmt.Fprint(w, `{"node":1,"epoch":3}`)
		default:
			http.NotFound(w, r)
		}
	}))
	defer replica.Close()

	cfg := proxyConfig{
		addr:          "127.0.0.1:0",
		replicas:      replica.URL,
		policy:        "hash",
		maxLag:        16,
		probeInterval: 100 * time.Millisecond,
		probeTimeout:  time.Second,
		timeout:       5 * time.Second,
		grace:         5 * time.Second,
	}
	ctx, cancel := context.WithCancel(context.Background())
	ready := make(chan string, 1)
	done := make(chan error, 1)
	go func() { done <- run(ctx, cfg, ready) }()

	var base string
	select {
	case addr := <-ready:
		base = "http://" + addr
	case err := <-done:
		t.Fatalf("proxy exited before ready: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("proxy never became ready")
	}

	get := func(path string) (int, map[string]any) {
		t.Helper()
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		raw, _ := io.ReadAll(resp.Body)
		var m map[string]any
		if len(raw) > 0 {
			if err := json.Unmarshal(raw, &m); err != nil {
				t.Fatalf("decoding %s: %v", raw, err)
			}
		}
		return resp.StatusCode, m
	}

	if code, body := get("/healthz"); code != 200 || body["routable"].(float64) != 1 {
		t.Fatalf("healthz = %d %v", code, body)
	}
	if code, body := get("/v1/single-source?node=1&seed=1"); code != 200 || body["epoch"].(float64) != 3 {
		t.Fatalf("proxied query = %d %v", code, body)
	}
	if code, body := get("/statsz"); code != 200 || body["proxy"] != true || body["policy"] != "hash" {
		t.Fatalf("statsz = %d %v", code, body)
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("graceful shutdown returned %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("proxy did not shut down")
	}
}
